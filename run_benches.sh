#!/bin/bash
# Regenerates every paper table/figure. Output: bench_output.txt
set -u
cd "$(dirname "$0")"
{
  ./build/bench/bench_fig1_alloc_ratio
  ./build/bench/bench_fig3_size_locality
  ./build/bench/bench_fig5_latency
  ./build/bench/bench_fig5_throughput
  ./build/bench/bench_table1_rpc_profile
  ./build/bench/bench_fig6_cloudburst
  ./build/bench/bench_fig7_hdfs_write
  ./build/bench/bench_fig8_hbase "${FIG8_SCALE:-10}"
  ./build/bench/bench_fig6_sort "${FIG6_SCALE:-1}"
  ./build/bench/bench_ablation_pool
  ./build/bench/bench_ablation_threshold
  ./build/bench/bench_micro_buffers --benchmark_min_time=0.05
} 2>&1
