// Paper workload drivers: RandomWriter, Sort, CloudBurst (Fig. 6), the
// HDFS Write microbenchmark (Fig. 7) and the YCSB-on-HBase matrix (Fig. 8).
//
// Each driver stands up the paper's deployment shape (master node running
// NameNode+JobTracker, slave nodes running DataNode+TaskTracker /
// RegionServer) on a simulated testbed and reports job execution times or
// throughput for a given transport configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hbase/hbase.hpp"
#include "hdfs/data_transfer.hpp"
#include "net/fault.hpp"
#include "rpcoib/engine.hpp"
#include "trace/trace.hpp"
#include "ycsb/ycsb.hpp"

namespace rpcoib::workloads {

struct SortResult {
  double randomwriter_secs = 0;
  double sort_secs = 0;
};

/// Fault-injection knobs for the MapReduce drivers: a seeded FaultPlan on
/// the fabric plus the recovery mechanisms that make jobs survive it.
/// Default-constructed = no faults, no retries (legacy behavior).
struct ChaosConfig {
  std::shared_ptr<net::FaultPlan> fault;  // installed on the testbed fabric
  rpc::RpcRetryPolicy retry;              // applied to every RPC client
  rpc::OverloadConfig overload;           // admission + retry cache, every server
  rpc::SessionConfig session;             // durable sessions + reconnect recovery
  oib::UdConfig ud;                       // datagram eager path (RPCoIB only)
  sim::Dur tracker_expiry = 0;            // JobTracker task re-execution
  int pipeline_retries = 0;               // DFSClient write-pipeline recovery
};

/// Fig. 6(a): RandomWriter writes `data_bytes` of random records via
/// map-only tasks, then Sort runs over the generated data. 1 master +
/// `slaves` slaves, 8 map / 4 reduce slots per node (the paper's config).
SortResult run_randomwriter_sort(oib::RpcMode rpc_mode, int slaves,
                                 std::uint64_t data_bytes, std::uint64_t seed = 7,
                                 trace::TraceCollector* collector = nullptr,
                                 const ChaosConfig* chaos = nullptr);

struct CloudBurstResult {
  double alignment_secs = 0;
  double filtering_secs = 0;
  double total_secs = 0;
};

/// Fig. 6(b): CloudBurst short-read mapping — Alignment (240 maps /
/// 48 reduces, compute-heavy) followed by Filtering (24 / 24, small),
/// on 9 nodes (1 master + 8 slaves).
CloudBurstResult run_cloudburst(oib::RpcMode rpc_mode, std::uint64_t seed = 7);

/// Fig. 7: single-client HDFS Write of `file_bytes` with 32 DataNodes,
/// replication 3; independent data-path and RPC transports.
double run_hdfs_write(hdfs::DataMode data_mode, oib::RpcMode rpc_mode,
                      std::uint64_t file_bytes, std::uint64_t seed = 7,
                      trace::TraceCollector* collector = nullptr);

/// Deployment overrides for run_hdfs_write: bench_stream_bw shrinks the
/// cluster to a single replica pipeline and strips the NameNode chatter to
/// isolate data-path bandwidth; fig7's streamed row turns the bulk
/// streaming subsystem on over the full 32-DataNode deployment.
struct HdfsWriteSetup {
  int datanodes = 32;
  std::uint64_t block_size = 0;        // 0 = HdfsConfig default (64 MB)
  int nn_syncs_per_block = -1;         // <0 = HdfsConfig default
  oib::stream::StreamConfig stream{};  // disabled = legacy one-shot pipeline
};

double run_hdfs_write(hdfs::DataMode data_mode, oib::RpcMode rpc_mode,
                      std::uint64_t file_bytes, const HdfsWriteSetup& setup,
                      std::uint64_t seed = 7,
                      trace::TraceCollector* collector = nullptr);

struct HBaseRunResult {
  double throughput_kops = 0;
};

/// Fig. 8: YCSB over HBase — 16 region servers, 16 clients, 1 KB records,
/// `record_count` loaded then `op_count` operations at the given mix.
HBaseRunResult run_hbase_ycsb(hbase::HBaseMode hbase_mode, oib::RpcMode hadoop_rpc,
                              std::uint64_t record_count, std::uint64_t op_count,
                              double read_proportion, std::uint64_t seed = 7);

}  // namespace rpcoib::workloads
