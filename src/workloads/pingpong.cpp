#include "workloads/pingpong.hpp"

#include <memory>

#include "metrics/metrics.hpp"
#include "net/testbed.hpp"
#include "rpc/resilience.hpp"

namespace rpcoib::workloads {

namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kBenchAddr{0, 9090};
const rpc::MethodKey kPingPong{"bench.PingPongProtocol", "pingpong"};

Task latency_client(rpc::RpcClient& client, Address addr, std::size_t payload, int warmup,
                    int iters, metrics::Histogram& hist) {
  net::Bytes data(payload, net::Byte{0x5A});
  rpc::BytesWritable req(data);
  for (int i = 0; i < warmup + iters; ++i) {
    rpc::BytesWritable resp;
    const sim::Time t0 = client.host().sched().now();
    co_await client.call(addr, kPingPong, req, &resp);
    if (i >= warmup) hist.add(sim::to_us(client.host().sched().now() - t0));
  }
}

struct ThroughputCounter {
  std::uint64_t ops = 0;
  sim::Time deadline = 0;
};

Task throughput_client(rpc::RpcClient& client, Address addr, std::size_t payload,
                       ThroughputCounter& counter) {
  net::Bytes data(payload, net::Byte{0x5A});
  rpc::BytesWritable req(data);
  while (client.host().sched().now() < counter.deadline) {
    rpc::BytesWritable resp;
    co_await client.call(addr, kPingPong, req, &resp);
    if (client.host().sched().now() <= counter.deadline) ++counter.ops;
  }
}

}  // namespace

void register_pingpong(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      "bench.PingPongProtocol", "pingpong",
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

std::vector<LatencyResult> run_latency(RpcMode mode, const std::vector<std::size_t>& payloads,
                                       int warmup, int iters, std::uint64_t seed,
                                       trace::TraceCollector* collector) {
  std::vector<LatencyResult> results;
  for (std::size_t payload : payloads) {
    Scheduler s;
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.seed = seed;
    Testbed tb(s, cfg);
    tb.set_tracer(collector);
    RpcEngine engine(tb, EngineConfig{.mode = mode});
    std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(0), kBenchAddr);
    register_pingpong(*server);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(1));

    metrics::Histogram hist;
    s.spawn(latency_client(*client, kBenchAddr, payload, warmup, iters, hist));
    s.run_until(sim::seconds(120));

    results.push_back(LatencyResult{payload, hist.summary().mean(), hist.quantile(0.99)});
    server->stop();
    s.drain_tasks();
  }
  return results;
}

std::vector<ThroughputResult> run_throughput(RpcMode mode, const std::vector<int>& client_counts,
                                             int handlers, std::size_t payload,
                                             int duration_ms, std::uint64_t seed, int shards,
                                             std::string* last_report) {
  std::vector<ThroughputResult> results;
  for (int n_clients : client_counts) {
    Scheduler s;
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.seed = seed;
    Testbed tb(s, cfg);
    EngineConfig ecfg;
    ecfg.mode = mode;
    ecfg.server_handlers = handlers;
    ecfg.server_shards = shards;
    RpcEngine engine(tb, ecfg);
    std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(0), kBenchAddr);
    register_pingpong(*server);
    server->start();

    // The multiple clients are "distributed uniformly over 8 nodes".
    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    std::vector<std::unique_ptr<ThroughputCounter>> counters;
    for (int i = 0; i < n_clients; ++i) {
      cluster::Host& host = tb.host(1 + i % 8);
      clients.push_back(engine.make_client(host));
      counters.push_back(std::make_unique<ThroughputCounter>());
    }
    // Warm up connections/history, then measure a fixed virtual window.
    const sim::Time t_start = sim::millis(50);
    const sim::Time t_end = t_start + sim::millis(static_cast<std::uint64_t>(duration_ms));
    for (int i = 0; i < n_clients; ++i) {
      counters[static_cast<std::size_t>(i)]->deadline = t_end;
      s.spawn(throughput_client(*clients[static_cast<std::size_t>(i)], kBenchAddr, payload,
                                *counters[static_cast<std::size_t>(i)]));
    }
    s.run_until(t_end + sim::seconds(2));

    std::uint64_t total_ops = 0;
    for (const auto& c : counters) total_ops += c->ops;
    // Ops counted only inside [0, t_end); normalize by the full window the
    // clients were active (includes connect+warmup skew, which is small).
    const double secs = sim::to_sec(t_end);
    results.push_back(ThroughputResult{n_clients, total_ops / secs / 1000.0});
    if (last_report != nullptr && n_clients == client_counts.back()) {
      // Per-shard shard.* rows for the bench artifact (taken before stop()
      // so no dropped-on-stop noise lands in the dispatch counters).
      *last_report = rpc::resilience_report(clients.front()->stats(), nullptr,
                                            &server->stats());
    }
    server->stop();
    s.drain_tasks();
  }
  return results;
}

double run_shared_throughput(RpcMode mode, const rpc::BatchConfig& batch, int callers,
                             int shared_clients, std::size_t payload, int duration_ms,
                             std::uint64_t seed) {
  Scheduler s;
  net::TestbedConfig cfg = Testbed::cluster_b();
  cfg.seed = seed;
  Testbed tb(s, cfg);
  EngineConfig ecfg;
  ecfg.mode = mode;
  ecfg.batch = batch;
  RpcEngine engine(tb, ecfg);
  std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(0), kBenchAddr);
  register_pingpong(*server);
  server->start();

  // Callers multiplex round-robin over the shared client objects (and so
  // over their per-server connections), spread across distinct hosts.
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  for (int i = 0; i < shared_clients; ++i) {
    clients.push_back(engine.make_client(tb.host(1 + i % 8)));
  }
  std::vector<std::unique_ptr<ThroughputCounter>> counters;
  const sim::Time t_end = sim::millis(50) + sim::millis(static_cast<std::uint64_t>(duration_ms));
  for (int i = 0; i < callers; ++i) {
    counters.push_back(std::make_unique<ThroughputCounter>());
    counters.back()->deadline = t_end;
    rpc::RpcClient& client = *clients[static_cast<std::size_t>(i % shared_clients)];
    s.spawn(throughput_client(client, kBenchAddr, payload, *counters.back()));
  }
  s.run_until(t_end + sim::seconds(2));

  std::uint64_t total_ops = 0;
  for (const auto& c : counters) total_ops += c->ops;
  server->stop();
  s.drain_tasks();
  return static_cast<double>(total_ops) / sim::to_sec(t_end) / 1000.0;
}

double run_alloc_ratio(RpcMode mode, std::size_t payload, int iters) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = mode});
  std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(0), kBenchAddr);
  register_pingpong(*server);
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(1));

  metrics::Histogram hist;
  s.spawn(latency_client(*client, kBenchAddr, payload, 1, iters, hist));
  s.run_until(sim::seconds(300));

  const rpc::RpcStats& st = server->stats();
  const double ratio = st.recv_total_us.sum() > 0 ? st.recv_alloc_us.sum() / st.recv_total_us.sum()
                                                  : 0.0;
  server->stop();
  s.drain_tasks();
  return ratio;
}

}  // namespace rpcoib::workloads
