#include "workloads/hadoop_jobs.hpp"

#include <memory>

#include "mapred/mr_cluster.hpp"
#include "net/testbed.hpp"

namespace rpcoib::workloads {

using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Scheduler;
using sim::Task;

namespace {

std::vector<cluster::HostId> slave_ids(int n) {
  std::vector<cluster::HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(1 + i);
  return out;
}

/// RDMA RPC implies the native-IB data path in the paper's integrated
/// stack? No — Fig. 6 runs *stock* HDFS under both RPC modes; data stays
/// on IPoIB. Only the RPC transport changes between configurations.
hdfs::DataMode mr_data_mode() { return hdfs::DataMode::kSocketIPoIB; }

mapred::JobSpec randomwriter_spec(std::uint64_t data_bytes, int slaves) {
  mapred::JobSpec spec;
  spec.name = "randomwriter";
  // Hadoop's RandomWriter: one map per node by default, each writing
  // data/maps bytes straight to HDFS.
  spec.num_maps = slaves;
  spec.num_reduces = 0;
  spec.map_only = true;
  spec.input_bytes = 0;
  spec.map_direct_output_bytes = data_bytes / static_cast<std::uint64_t>(slaves);
  spec.map_cpu_us_per_mb = 350.0;  // random record generation
  spec.output_path = "/rw";
  return spec;
}

mapred::JobSpec sort_spec(std::uint64_t data_bytes) {
  mapred::JobSpec spec;
  spec.name = "sort";
  spec.num_maps = static_cast<int>(data_bytes / (64ULL << 20));  // one per 64MB block
  spec.num_reduces = 0;  // caller sets: 4 per slave in the paper
  spec.input_bytes = data_bytes;
  spec.map_output_ratio = 1.0;
  spec.reduce_output_ratio = 1.0;
  spec.map_cpu_us_per_mb = 900.0;    // record parse + partition + sort
  spec.reduce_cpu_us_per_mb = 700.0; // merge + write
  spec.output_path = "/sort-out";
  return spec;
}

struct MrStack {
  MrStack(Scheduler& s, RpcMode rpc_mode, int slaves, std::uint64_t seed,
          bool dn_disk_writes, const ChaosConfig* chaos = nullptr)
      : tb(s, make_cfg(slaves, seed, chaos)),
        engine(tb, make_engine_cfg(rpc_mode, chaos)),
        hdfs_cluster(engine, 0, slave_ids(slaves), mr_data_mode(),
                     make_hdfs_cfg(dn_disk_writes, chaos)),
        mr(engine, hdfs_cluster, 0, slave_ids(slaves), {}, make_jt_cfg(chaos)) {
    hdfs_cluster.start();
    mr.start();
  }
  static net::TestbedConfig make_cfg(int slaves, std::uint64_t seed,
                                     const ChaosConfig* chaos) {
    net::TestbedConfig cfg = Testbed::cluster_a(1 + slaves);
    cfg.seed = seed;
    if (chaos != nullptr) cfg.fault = chaos->fault;
    return cfg;
  }
  static EngineConfig make_engine_cfg(RpcMode rpc_mode, const ChaosConfig* chaos) {
    EngineConfig cfg;
    cfg.mode = rpc_mode;
    if (chaos != nullptr) {
      cfg.retry = chaos->retry;
      cfg.overload = chaos->overload;
      cfg.session = chaos->session;
      cfg.ud = chaos->ud;
    }
    return cfg;
  }
  static hdfs::HdfsConfig make_hdfs_cfg(bool dn_disk_writes, const ChaosConfig* chaos) {
    hdfs::HdfsConfig cfg;
    cfg.datanode_disk_writes = dn_disk_writes;
    if (chaos != nullptr) cfg.pipeline_retries = chaos->pipeline_retries;
    return cfg;
  }
  static mapred::JobTrackerConfig make_jt_cfg(const ChaosConfig* chaos) {
    mapred::JobTrackerConfig cfg;
    if (chaos != nullptr) cfg.tracker_expiry = chaos->tracker_expiry;
    return cfg;
  }
  ~MrStack() {
    mr.stop();
    hdfs_cluster.stop();
  }
  Testbed tb;
  RpcEngine engine;
  hdfs::HdfsCluster hdfs_cluster;
  mapred::MrCluster mr;
};

Task drive_jobs(MrStack& stack, std::vector<mapred::JobSpec> specs,
                std::vector<double>& out_secs) {
  std::unique_ptr<mapred::JobClient> client = stack.mr.make_client(stack.tb.host(0));
  for (const mapred::JobSpec& spec : specs) {
    const double secs = co_await client->run(spec);
    out_secs.push_back(secs);
  }
}

}  // namespace

SortResult run_randomwriter_sort(RpcMode rpc_mode, int slaves, std::uint64_t data_bytes,
                                 std::uint64_t seed, trace::TraceCollector* collector,
                                 const ChaosConfig* chaos) {
  Scheduler s;
  MrStack stack(s, rpc_mode, slaves, seed, /*dn_disk_writes=*/true, chaos);
  stack.tb.set_tracer(collector);

  mapred::JobSpec sort = sort_spec(data_bytes);
  sort.num_reduces = 4 * slaves;  // 4 reduce slots per host, as in the paper
  std::vector<double> secs;
  s.spawn(drive_jobs(stack, {randomwriter_spec(data_bytes, slaves), sort}, secs));
  s.run_until(sim::seconds(36000));
  s.drain_tasks();

  SortResult r;
  if (secs.size() == 2) {
    r.randomwriter_secs = secs[0];
    r.sort_secs = secs[1];
  }
  return r;
}

CloudBurstResult run_cloudburst(RpcMode rpc_mode, std::uint64_t seed) {
  Scheduler s;
  MrStack stack(s, rpc_mode, /*slaves=*/8, seed, /*dn_disk_writes=*/false);

  // Alignment: 240 maps / 48 reduces; seed-and-extend is compute-heavy
  // with modest data (read set + reference chunks).
  mapred::JobSpec alignment;
  alignment.name = "cloudburst-alignment";
  alignment.num_maps = 240;
  alignment.num_reduces = 48;
  alignment.input_bytes = 1536ULL << 20;
  alignment.map_output_ratio = 0.6;
  alignment.reduce_output_ratio = 0.5;
  // Seed-and-extend alignment is minutes of CPU per task over a few MB of
  // reads; calibrated so the Alignment job lands near the paper's ~150 s.
  alignment.map_cpu_us_per_mb = 4.5e6;
  alignment.reduce_cpu_us_per_mb = 1.1e6;
  alignment.output_path = "/cb-align";

  // Filtering: small 24/24 job over the alignment output.
  mapred::JobSpec filtering;
  filtering.name = "cloudburst-filtering";
  filtering.num_maps = 24;
  filtering.num_reduces = 24;
  filtering.input_bytes = 460ULL << 20;
  filtering.map_output_ratio = 0.5;
  filtering.reduce_output_ratio = 0.4;
  filtering.map_cpu_us_per_mb = 7.0e5;
  filtering.reduce_cpu_us_per_mb = 3.5e5;
  filtering.output_path = "/cb-filter";

  std::vector<double> secs;
  s.spawn(drive_jobs(stack, {alignment, filtering}, secs));
  s.run_until(sim::seconds(36000));
  s.drain_tasks();

  CloudBurstResult r;
  if (secs.size() == 2) {
    r.alignment_secs = secs[0];
    r.filtering_secs = secs[1];
    r.total_secs = secs[0] + secs[1];
  }
  return r;
}

double run_hdfs_write(hdfs::DataMode data_mode, RpcMode rpc_mode, std::uint64_t file_bytes,
                      std::uint64_t seed, trace::TraceCollector* collector) {
  return run_hdfs_write(data_mode, rpc_mode, file_bytes, HdfsWriteSetup{}, seed,
                        collector);
}

double run_hdfs_write(hdfs::DataMode data_mode, RpcMode rpc_mode, std::uint64_t file_bytes,
                      const HdfsWriteSetup& setup, std::uint64_t seed,
                      trace::TraceCollector* collector) {
  Scheduler s;
  // DataNodes + NameNode + client on separate nodes (Fig. 7 setup: 32 DNs).
  net::TestbedConfig cfg = Testbed::cluster_a(2 + setup.datanodes);
  cfg.seed = seed;
  Testbed tb(s, cfg);
  tb.set_tracer(collector);
  EngineConfig ec{.mode = rpc_mode};
  ec.stream = setup.stream;
  RpcEngine engine(tb, ec);
  std::vector<cluster::HostId> dns;
  for (int i = 2; i < 2 + setup.datanodes; ++i) dns.push_back(i);
  hdfs::HdfsConfig hcfg;
  if (setup.block_size != 0) hcfg.block_size = setup.block_size;
  if (setup.nn_syncs_per_block >= 0) hcfg.nn_syncs_per_block = setup.nn_syncs_per_block;
  hdfs::HdfsCluster cluster(engine, 0, dns, data_mode, hcfg);
  cluster.start();
  // Let registrations land before timing starts.
  s.run_until(sim::millis(500));

  double secs = 0;
  bool done = false;
  s.spawn([](Testbed& tbed, hdfs::HdfsCluster& hc, std::uint64_t bytes, double& out,
             bool& flag) -> Task {
    std::unique_ptr<hdfs::DFSClient> client = hc.make_client(tbed.host(1), "bench-writer");
    const sim::Time t0 = tbed.sched().now();
    co_await client->write_file("/bench/file", bytes);
    out = sim::to_sec(tbed.sched().now() - t0);
    flag = true;
  }(tb, cluster, file_bytes, secs, done));
  s.run_until(sim::seconds(36000));
  cluster.stop();
  s.drain_tasks();
  return done ? secs : -1;
}

HBaseRunResult run_hbase_ycsb(hbase::HBaseMode hbase_mode, RpcMode hadoop_rpc,
                              std::uint64_t record_count, std::uint64_t op_count,
                              double read_proportion, std::uint64_t seed) {
  Scheduler s;
  // 16 region servers (hosts 1..16, co-located with DataNodes), HMaster/
  // NameNode on host 0, 16 clients on hosts 17..32 (Fig. 8 setup).
  net::TestbedConfig cfg = Testbed::cluster_a(33);
  cfg.seed = seed;
  Testbed tb(s, cfg);
  RpcEngine hadoop_engine(tb, EngineConfig{.mode = hadoop_rpc});

  oib::RpcMode hbase_rpc = oib::RpcMode::kSocketIPoIB;
  switch (hbase_mode) {
    case hbase::HBaseMode::kSocket1GigE: hbase_rpc = oib::RpcMode::kSocket1GigE; break;
    case hbase::HBaseMode::kSocketIPoIB: hbase_rpc = oib::RpcMode::kSocketIPoIB; break;
    case hbase::HBaseMode::kRdma: hbase_rpc = oib::RpcMode::kRpcoIB; break;
  }
  RpcEngine hbase_engine(tb, EngineConfig{.mode = hbase_rpc});

  std::vector<cluster::HostId> rs_hosts;
  for (int i = 1; i <= 16; ++i) rs_hosts.push_back(i);
  hdfs::HdfsCluster hdfs_cluster(hadoop_engine, 0, rs_hosts, hdfs::DataMode::kSocketIPoIB);
  // The bench runs at 1/10th of the paper's record/operation counts (one
  // core drives the whole 33-node simulation); the memstore threshold is
  // scaled by the same factor so flush frequency per operation matches.
  hbase::HBaseConfig hb_cfg;
  hb_cfg.memstore_flush_bytes = 512 * 1024;
  hbase::HBaseCluster hbase_cluster(hbase_engine, hdfs_cluster, rs_hosts, hb_cfg);
  hdfs_cluster.start();
  hbase_cluster.start();
  s.run_until(sim::millis(500));

  std::vector<cluster::HostId> clients;
  for (int i = 17; i <= 32; ++i) clients.push_back(i);

  ycsb::WorkloadSpec spec;
  spec.record_count = record_count;
  spec.operation_count = op_count;
  spec.read_proportion = read_proportion;
  spec.num_clients = 16;
  spec.seed = seed;

  ycsb::WorkloadResult result;
  bool done = false;
  s.spawn([](RpcEngine& eng, hbase::HBaseCluster& hc, std::vector<cluster::HostId> hosts,
             ycsb::WorkloadSpec sp, ycsb::WorkloadResult& out, bool& flag) -> Task {
    out = co_await ycsb::run_workload(eng, hc, hosts, sp);
    flag = true;
  }(hbase_engine, hbase_cluster, clients, spec, result, done));
  s.run_until(sim::seconds(36000));
  hbase_cluster.stop();
  hdfs_cluster.stop();
  s.drain_tasks();

  HBaseRunResult r;
  r.throughput_kops = done ? result.throughput_kops : 0;
  return r;
}

}  // namespace rpcoib::workloads
