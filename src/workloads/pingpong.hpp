// Hadoop RPC micro-benchmark suite (the paper's [12], WBDB'13).
//
// Two benchmarks, exactly as Section IV-B describes:
//  * ping-pong latency — one server, one client, a `pingpong` method whose
//    parameter is a BytesWritable of the requested payload size,
//  * throughput — one server with 8 handlers, N concurrent clients spread
//    uniformly over 8 nodes, 512-byte payloads, measuring Kops/sec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpcoib/engine.hpp"
#include "trace/trace.hpp"

namespace rpcoib::workloads {

struct LatencyResult {
  std::size_t payload = 0;
  double avg_us = 0;
  double p99_us = 0;
};

struct ThroughputResult {
  int clients = 0;
  double kops = 0;
};

/// Registers the micro-benchmark's `pingpong` protocol on a server.
void register_pingpong(rpc::RpcServer& server);

/// Ping-pong latency for each payload size: client on host 0, server on
/// host 1, `warmup` unmeasured iterations then `iters` measured ones.
/// A non-null `collector` is attached to each per-payload testbed and
/// accumulates spans across all payload sizes (caller clears it).
std::vector<LatencyResult> run_latency(oib::RpcMode mode, const std::vector<std::size_t>& payloads,
                                       int warmup = 4, int iters = 16,
                                       std::uint64_t seed = 1,
                                       trace::TraceCollector* collector = nullptr);

/// Throughput at each client count: server on host 0 with `handlers`
/// handler threads split over `shards` reader shards (server.shards);
/// clients distributed round-robin over hosts 1..8, each issuing
/// back-to-back 512-byte calls for `duration_ms` of virtual time. When
/// `last_report` is non-null, the server's resilience report (including
/// the per-shard shard.* rows) at the final client count is stored there
/// before teardown.
std::vector<ThroughputResult> run_throughput(oib::RpcMode mode,
                                             const std::vector<int>& client_counts,
                                             int handlers = 8, std::size_t payload = 512,
                                             int duration_ms = 200, std::uint64_t seed = 1,
                                             int shards = 1,
                                             std::string* last_report = nullptr);

/// Server-side receive-path decomposition for Fig. 1: returns the ratio of
/// buffer-allocation time to total receive time at the given payload.
double run_alloc_ratio(oib::RpcMode mode, std::size_t payload, int iters = 12);

/// Throughput (Kops/sec) with `callers` concurrent tasks multiplexed over
/// `shared_clients` client objects — callers sharing a client share its
/// one connection per server, which is the regime where small-message
/// coalescing (BatchConfig) pays. Used by bench_fig5_batched to compare
/// batching on vs off at identical offered load.
double run_shared_throughput(oib::RpcMode mode, const rpc::BatchConfig& batch,
                             int callers = 16, int shared_clients = 2,
                             std::size_t payload = 64, int duration_ms = 200,
                             std::uint64_t seed = 1);

}  // namespace rpcoib::workloads
