#include "hdfs/hdfs_cluster.hpp"

namespace rpcoib::hdfs {

namespace {
constexpr std::uint16_t kNameNodePort = 8020;  // Hadoop's fs.default.name port
}

HdfsCluster::HdfsCluster(oib::RpcEngine& engine, cluster::HostId nn_host,
                         std::vector<cluster::HostId> dn_hosts, DataMode data_mode,
                         HdfsConfig cfg)
    : engine_(engine),
      nn_addr_{nn_host, kNameNodePort},
      data_mode_(data_mode),
      cfg_(cfg) {
  nn_ = std::make_unique<NameNode>(engine.testbed().host(nn_host), engine, nn_addr_, cfg);
  for (cluster::HostId h : dn_hosts) {
    dns_.push_back(
        std::make_unique<DataNode>(engine.testbed().host(h), engine, nn_addr_, cfg));
  }
}

void HdfsCluster::start() {
  nn_->start();
  for (auto& dn : dns_) {
    // Peer lookup enables DNA_TRANSFER re-replication between datanodes.
    dn->set_peer_lookup([this](DatanodeId id) { return datanode(id); });
    dn->start();
  }
}

void HdfsCluster::stop() {
  for (auto& dn : dns_) dn->stop();
  nn_->stop();
}

DataNode* HdfsCluster::datanode(DatanodeId id) {
  DataNode* dn = datanode_object(id);
  return dn != nullptr && dn->running() ? dn : nullptr;
}

DataNode* HdfsCluster::datanode_object(DatanodeId id) {
  for (auto& dn : dns_) {
    if (dn->id() == id) return dn.get();
  }
  return nullptr;
}

std::unique_ptr<DFSClient> HdfsCluster::make_client(cluster::Host& host, std::string name) {
  return std::make_unique<DFSClient>(host, engine_, nn_addr_, *this, data_mode_, cfg_,
                                     std::move(name));
}

}  // namespace rpcoib::hdfs
