// HDFS data-transfer path model.
//
// The block pipeline (client -> DN1 -> DN2 -> DN3) is a DATA path, not an
// RPC path; the paper's integrated experiments switch it independently:
//   socket data path over 1GigE / IPoIB  — stock HDFS,
//   RDMA data path                        — HDFSoIB [6].
// Per-packet (64 KB) host costs mirror the RPC layer's findings: the
// socket path pays JVM allocation + copies + kernel crossings per packet;
// the RDMA path pays a pooled-buffer copy and a doorbell.
#pragma once

#include <vector>

#include "cluster/cost_model.hpp"
#include "net/bytes.hpp"
#include "net/params.hpp"
#include "hdfs/types.hpp"

namespace rpcoib::hdfs {

enum class DataMode {
  kSocket1GigE,
  kSocketIPoIB,
  kRdma,  // HDFSoIB
};

inline const char* data_mode_name(DataMode m) {
  switch (m) {
    case DataMode::kSocket1GigE: return "HDFS(1GigE)";
    case DataMode::kSocketIPoIB: return "HDFS(IPoIB)";
    case DataMode::kRdma: return "HDFSoIB";
  }
  return "?";
}

inline net::Transport data_transport(DataMode m) {
  switch (m) {
    case DataMode::kSocket1GigE: return net::Transport::kOneGigE;
    case DataMode::kSocketIPoIB: return net::Transport::kIPoIB;
    case DataMode::kRdma: return net::Transport::kIBVerbs;
  }
  return net::Transport::kOneGigE;
}

/// Sender-side CPU per data packet.
inline sim::Dur data_packet_send_cost(const cluster::CostModel& cm, DataMode m,
                                      std::size_t pkt) {
  if (m == DataMode::kRdma) {
    // Copy into a pre-registered pooled buffer + doorbell (one JNI).
    return cm.direct_copy(pkt) + cm.jni_call();
  }
  // DFSOutputStream: packet heap buffer + checksum copy + heap->native +
  // syscall.
  return cm.heap_alloc(pkt) + cm.heap_copy(pkt) + cm.native_copy(pkt) + cm.syscall();
}

/// Receiver-side CPU per data packet (each pipeline datanode pays this;
/// intermediate nodes also pay the send cost to forward).
inline sim::Dur data_packet_recv_cost(const cluster::CostModel& cm, DataMode m,
                                      std::size_t pkt) {
  if (m == DataMode::kRdma) {
    return cm.jni_call() + cm.direct_copy(pkt);
  }
  return cm.heap_alloc(pkt) + cm.native_copy(pkt) + cm.syscall();
}

/// Pipeline metadata riding the kStreamOpen frame when the block pipeline
/// takes the streamed data path: the block being written plus the replicas
/// that still need it after the receiving datanode (which forwards chunk k
/// downstream while chunk k+1 is arriving).
/// Layout: [u64 block_id][u64 num_bytes][u8 ndownstream][u64 datanode_id]*
struct StreamBlockMeta {
  Block block{};
  std::vector<DatanodeId> downstream;
};

inline net::Bytes encode_stream_block_meta(const StreamBlockMeta& m) {
  net::Bytes out;
  out.reserve(17 + 8 * m.downstream.size());
  auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<net::Byte>((v >> (8 * i)) & 0xff));
  };
  put_u64(m.block.id);
  put_u64(m.block.num_bytes);
  out.push_back(static_cast<net::Byte>(m.downstream.size() & 0xff));
  for (DatanodeId d : m.downstream) put_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(d)));
  return out;
}

inline bool decode_stream_block_meta(net::ByteSpan b, StreamBlockMeta* out) {
  auto get_u64 = [&b](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
    return v;
  };
  if (b.size() < 17) return false;
  out->block.id = get_u64(0);
  out->block.num_bytes = get_u64(8);
  const std::size_t n = static_cast<std::size_t>(b[16]);
  if (b.size() < 17 + 8 * n) return false;
  out->downstream.clear();
  for (std::size_t i = 0; i < n; ++i) {
    out->downstream.push_back(
        static_cast<DatanodeId>(static_cast<std::uint32_t>(get_u64(17 + 8 * i))));
  }
  return true;
}

}  // namespace rpcoib::hdfs
