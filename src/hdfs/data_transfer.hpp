// HDFS data-transfer path model.
//
// The block pipeline (client -> DN1 -> DN2 -> DN3) is a DATA path, not an
// RPC path; the paper's integrated experiments switch it independently:
//   socket data path over 1GigE / IPoIB  — stock HDFS,
//   RDMA data path                        — HDFSoIB [6].
// Per-packet (64 KB) host costs mirror the RPC layer's findings: the
// socket path pays JVM allocation + copies + kernel crossings per packet;
// the RDMA path pays a pooled-buffer copy and a doorbell.
#pragma once

#include "cluster/cost_model.hpp"
#include "net/params.hpp"

namespace rpcoib::hdfs {

enum class DataMode {
  kSocket1GigE,
  kSocketIPoIB,
  kRdma,  // HDFSoIB
};

inline const char* data_mode_name(DataMode m) {
  switch (m) {
    case DataMode::kSocket1GigE: return "HDFS(1GigE)";
    case DataMode::kSocketIPoIB: return "HDFS(IPoIB)";
    case DataMode::kRdma: return "HDFSoIB";
  }
  return "?";
}

inline net::Transport data_transport(DataMode m) {
  switch (m) {
    case DataMode::kSocket1GigE: return net::Transport::kOneGigE;
    case DataMode::kSocketIPoIB: return net::Transport::kIPoIB;
    case DataMode::kRdma: return net::Transport::kIBVerbs;
  }
  return net::Transport::kOneGigE;
}

/// Sender-side CPU per data packet.
inline sim::Dur data_packet_send_cost(const cluster::CostModel& cm, DataMode m,
                                      std::size_t pkt) {
  if (m == DataMode::kRdma) {
    // Copy into a pre-registered pooled buffer + doorbell (one JNI).
    return cm.direct_copy(pkt) + cm.jni_call();
  }
  // DFSOutputStream: packet heap buffer + checksum copy + heap->native +
  // syscall.
  return cm.heap_alloc(pkt) + cm.heap_copy(pkt) + cm.native_copy(pkt) + cm.syscall();
}

/// Receiver-side CPU per data packet (each pipeline datanode pays this;
/// intermediate nodes also pay the send cost to forward).
inline sim::Dur data_packet_recv_cost(const cluster::CostModel& cm, DataMode m,
                                      std::size_t pkt) {
  if (m == DataMode::kRdma) {
    return cm.jni_call() + cm.direct_copy(pkt);
  }
  return cm.heap_alloc(pkt) + cm.native_copy(pkt) + cm.syscall();
}

}  // namespace rpcoib::hdfs
