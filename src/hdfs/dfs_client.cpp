#include "hdfs/dfs_client.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace rpcoib::hdfs {

using sim::Co;

namespace {
const rpc::MethodKey kGetFileInfo{kClientProtocol, "getFileInfo"};
const rpc::MethodKey kMkdirs{kClientProtocol, "mkdirs"};
const rpc::MethodKey kCreate{kClientProtocol, "create"};
const rpc::MethodKey kAddBlock{kClientProtocol, "addBlock"};
const rpc::MethodKey kAbandonBlock{kClientProtocol, "abandonBlock"};
const rpc::MethodKey kComplete{kClientProtocol, "complete"};
const rpc::MethodKey kRenewLease{kClientProtocol, "renewLease"};
const rpc::MethodKey kGetBlockLocations{kClientProtocol, "getBlockLocations"};
const rpc::MethodKey kGetListing{kClientProtocol, "getListing"};
const rpc::MethodKey kRename{kClientProtocol, "rename"};
const rpc::MethodKey kDelete{kClientProtocol, "delete"};
}  // namespace

DFSClient::DFSClient(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
                     DatanodeResolver& resolver, DataMode data_mode, HdfsConfig cfg,
                     std::string client_name)
    : host_(host),
      fabric_(engine.testbed().fabric()),
      nn_addr_(nn_addr),
      resolver_(resolver),
      data_mode_(data_mode),
      cfg_(cfg),
      rpc_(engine.make_client(host)),
      name_(std::move(client_name)) {
  // The streamed block pipeline needs registered memory on both ends, so
  // it only exists on the RDMA data path; everywhere else the legacy
  // one-shot pipeline below is the only path.
  if (engine.config().stream.enabled && data_mode_ == DataMode::kRdma) {
    stream_hub_ = std::make_unique<oib::stream::StreamHub>(
        host, engine.testbed().sockets(), engine.verbs(), engine.config().stream,
        engine.config().pool);
  }
}

sim::Co<bool> DFSClient::mkdirs(const std::string& path) {
  PathParam p(path, name_);
  rpc::BooleanWritable r;
  co_await rpc_->call(nn_addr_, kMkdirs, p, &r);
  co_return r.value;
}

sim::Co<bool> DFSClient::exists(const std::string& path) {
  FileStatusResult r = co_await get_file_info(path);
  co_return r.exists;
}

sim::Co<FileStatusResult> DFSClient::get_file_info(const std::string& path) {
  PathParam p(path, name_);
  FileStatusResult r;
  co_await rpc_->call(nn_addr_, kGetFileInfo, p, &r);
  co_return r;
}

sim::Co<bool> DFSClient::rename(const std::string& src, const std::string& dst) {
  RenameParam p;
  p.src = src;
  p.dst = dst;
  rpc::BooleanWritable r;
  co_await rpc_->call(nn_addr_, kRename, p, &r);
  co_return r.value;
}

sim::Co<bool> DFSClient::remove(const std::string& path) {
  PathParam p(path, name_);
  rpc::BooleanWritable r;
  co_await rpc_->call(nn_addr_, kDelete, p, &r);
  co_return r.value;
}

sim::Co<bool> DFSClient::renew_lease(const std::string& path) {
  PathParam p(path, name_);
  rpc::BooleanWritable r;
  co_await rpc_->call(nn_addr_, kRenewLease, p, &r);
  co_return r.value;
}

sim::Co<ListingResult> DFSClient::get_listing(const std::string& path) {
  PathParam p(path, name_);
  ListingResult r;
  co_await rpc_->call(nn_addr_, kGetListing, p, &r);
  co_return r;
}

sim::Co<LocatedBlocksResult> DFSClient::get_block_locations(const std::string& path,
                                                            std::uint64_t offset,
                                                            std::uint64_t length) {
  GetBlockLocationsParam p;
  p.path = path;
  p.offset = offset;
  p.length = length;
  LocatedBlocksResult r;
  co_await rpc_->call(nn_addr_, kGetBlockLocations, p, &r);
  co_return r;
}

sim::Co<void> DFSClient::write_block(const std::string& path, std::uint64_t nbytes) {
  trace::TraceCollector* tr0 = trace::active(host_.tracer());
  const trace::TraceContext parent =
      tr0 != nullptr ? tr0->take_ambient() : trace::TraceContext{};
  for (int attempt = 0;; ++attempt) {
    trace::activate(tr0, parent);
    bool lost_pipeline = false;  // co_await is not allowed inside a handler
    try {
      co_await write_block_attempt(path, nbytes);
      co_return;
    } catch (const rpc::RpcTransportError& e) {
      if (attempt >= cfg_.pipeline_retries) throw;
      lost_pipeline = true;
    }
    if (lost_pipeline) {
      ++pipeline_retries_;
      if (attempt_block_ != 0) {
        // Drop the half-written block from the NameNode so complete() can
        // eventually succeed on the replacement block's replicas.
        AbandonBlockParam ap;
        ap.path = path;
        ap.client = name_;
        ap.block = attempt_block_;
        attempt_block_ = 0;
        trace::activate(tr0, parent);
        co_await rpc_->call(nn_addr_, kAbandonBlock, ap, nullptr);
      }
      const sim::Time t0 = host_.sched().now();
      co_await sim::delay(host_.sched(), cfg_.pipeline_retry_backoff);
      if (tr0 != nullptr && parent.valid()) {
        tr0->add_complete("retry.pipeline", trace::Kind::kInternal,
                          trace::Category::kRetry, parent, host_.id(), t0,
                          host_.sched().now());
      }
    }
  }
}

sim::Co<void> DFSClient::write_block_attempt(const std::string& path,
                                             std::uint64_t nbytes) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope blk(tr, "hdfs.block", trace::Kind::kInternal, trace::Category::kWire,
                       tr != nullptr ? tr->take_ambient() : trace::TraceContext{},
                       host_.id());
  const trace::TraceContext ctx = blk.context();
  // addBlock -> targets.
  AddBlockParam ab;
  ab.path = path;
  ab.client = name_;
  LocatedBlockResult lb;
  attempt_block_ = 0;
  trace::activate(tr, ctx);
  co_await rpc_->call(nn_addr_, kAddBlock, ab, &lb);
  attempt_block_ = lb.located.block.id;
  lb.located.block.num_bytes = nbytes;

  // Streamed pipeline first: chunk k+1 serializes while chunk k is on the
  // wire and the head datanode forwards it downstream. Any fallback (hub
  // declined, staging pool capped, ring grant refused, bootstrap failure)
  // returns false — counted in the hub's stats — and the legacy one-shot
  // path below runs unchanged.
  if (stream_hub_ != nullptr && !lb.located.locations.empty() &&
      stream_hub_->should_stream(nbytes)) {
    const bool streamed = co_await write_block_streamed(lb.located, ctx);
    if (streamed) {
      co_await block_nn_syncs(path, nbytes, ctx);
      blk.end();
      co_return;
    }
  }

  const net::Transport t = data_transport(data_mode_);
  const net::NetParams& np = fabric_.params(t);

  // Pipeline setup: serial connection establishment hop by hop.
  for (std::size_t i = 0; i < lb.located.locations.size(); ++i) {
    co_await sim::delay(host_.sched(), 2 * np.one_way_latency);
  }

  // Stream the block: sender-side per-packet costs on the client, wire
  // time on the client's egress; the forwarding hops overlap with the
  // stream and add one store-and-forward packet + latency each.
  const std::size_t packets = static_cast<std::size_t>(
      (nbytes + cfg_.packet_size - 1) / cfg_.packet_size);
  const sim::Dur send_cpu =
      data_packet_send_cost(host_.cost(), data_mode_, cfg_.packet_size) *
      packets;
  const sim::Time t_cpu = host_.sched().now();
  co_await host_.compute(send_cpu);
  if (ctx.valid()) {
    tr->add_complete("block.send_cpu", trace::Kind::kInternal, trace::Category::kSend,
                     ctx, host_.id(), t_cpu, host_.sched().now());
  }
  co_await fabric_.transfer(host_.id(), lb.located.locations.front(), t, nbytes);

  // Forwarding: reserve intermediate egress (contends with other
  // pipelines) and pay per-hop pipelining latency.
  for (std::size_t i = 0; i + 1 < lb.located.locations.size(); ++i) {
    fabric_.reserve_egress(lb.located.locations[i], t, nbytes);
    co_await sim::delay(host_.sched(),
                        np.one_way_latency + np.wire_time(cfg_.packet_size));
  }

  // Resolve the whole pipeline before spawning any deliver task: the
  // deliver tasks capture this frame's WaitGroup by reference, so a
  // lost-node throw after the first spawn would destroy the frame while
  // detached tasks still point into it (use-after-free on done()).
  std::vector<DataNode*> pipeline;
  for (DatanodeId dn_id : lb.located.locations) {
    DataNode* dn = resolver_.datanode(dn_id);
    if (dn == nullptr) {
      if (cfg_.pipeline_retries > 0) {
        blk.end();
        throw rpc::RpcTransportError("pipeline datanode " + std::to_string(dn_id) +
                                     " lost for block " +
                                     std::to_string(lb.located.block.id));
      }
      continue;  // legacy: skip dead nodes, under-replicate silently
    }
    pipeline.push_back(dn);
  }

  // Deliver to each datanode (receive costs + blockReceived RPC).
  sim::WaitGroup wg(host_.sched());
  for (DataNode* dn : pipeline) {
    wg.add(1);
    host_.sched().spawn([](DataNode* node, Block blk, DataMode mode,
                           sim::WaitGroup& done) -> sim::Task {
      co_await node->store_block(blk, mode);
      done.done();
    }(dn, lb.located.block, data_mode_, wg));
  }
  // The client's end-of-block ack waits for the last pipeline node.
  co_await wg.wait();

  co_await block_nn_syncs(path, nbytes, ctx);
  blk.end();
}

sim::Co<bool> DFSClient::write_block_streamed(const LocatedBlock& located,
                                              const trace::TraceContext& ctx) {
  StreamBlockMeta meta;
  meta.block = located.block;
  meta.downstream.assign(located.locations.begin() + 1, located.locations.end());
  oib::stream::StreamWriterPtr w = co_await stream_hub_->open(
      {located.locations.front(), oib::stream::kHdfsStreamPort},
      encode_stream_block_meta(meta), located.block.num_bytes);
  if (w == nullptr) co_return false;  // fall back to the legacy path
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const sim::Time t0 = host_.sched().now();
  bool failed = false;  // co_await is not allowed inside a handler
  std::string why;
  try {
    co_await w->write_all();
    const std::uint8_t status = co_await w->close();
    if (status != 0) {
      failed = true;
      why = "pipeline status " + std::to_string(status);
    }
  } catch (const oib::stream::StreamAbortedError& e) {
    failed = true;
    why = e.what();
  }
  if (tr != nullptr && ctx.valid()) {
    tr->add_complete("stream.block", trace::Kind::kInternal, trace::Category::kStream,
                     ctx, host_.id(), t0, host_.sched().now());
  }
  if (failed) {
    // Same failure surface as a lost legacy pipeline: write_block abandons
    // the block and re-requests fresh targets.
    throw rpc::RpcTransportError("streamed block " + std::to_string(located.block.id) +
                                 ": " + why);
  }
  co_return true;
}

sim::Co<void> DFSClient::block_nn_syncs(const std::string& path, std::uint64_t nbytes,
                                        const trace::TraceContext& ctx) {
  // Client<->NameNode synchronization attributable to this block beyond
  // addBlock (lease renewals, packet-window bookkeeping; calibrated per
  // full block and scaled by the bytes actually written — see
  // HdfsConfig::nn_syncs_per_block and EXPERIMENTS.md).
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const int syncs = std::max(
      1, static_cast<int>(static_cast<double>(cfg_.nn_syncs_per_block) *
                          static_cast<double>(nbytes) / static_cast<double>(cfg_.block_size)));
  for (int i = 0; i < syncs; ++i) {
    PathParam p(path, name_);
    rpc::BooleanWritable ok;
    trace::activate(tr, ctx);
    co_await rpc_->call(nn_addr_, kRenewLease, p, &ok);
  }
}

sim::Co<void> DFSClient::write_file(const std::string& path, std::uint64_t nbytes) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope file(tr, "hdfs.write", trace::Kind::kInternal, trace::Category::kOther,
                        tr != nullptr ? tr->take_ambient() : trace::TraceContext{},
                        host_.id());
  const trace::TraceContext ctx = file.context();
  if (file) file.annotate("bytes", std::to_string(nbytes));
  CreateParam cp;
  cp.path = path;
  cp.client = name_;
  cp.replication = static_cast<std::uint16_t>(cfg_.replication);
  cp.block_size = cfg_.block_size;
  rpc::BooleanWritable ok;
  trace::activate(tr, ctx);
  co_await rpc_->call(nn_addr_, kCreate, cp, &ok);

  std::uint64_t remaining = nbytes;
  while (remaining > 0) {
    const std::uint64_t n = std::min(remaining, cfg_.block_size);
    trace::activate(tr, ctx);
    co_await write_block(path, n);
    remaining -= n;
  }

  // complete() polls until all blocks have at least one reported replica.
  PathParam p(path, name_);
  for (;;) {
    rpc::BooleanWritable done;
    trace::activate(tr, ctx);
    co_await rpc_->call(nn_addr_, kComplete, p, &done);
    if (done.value) break;
    co_await sim::delay(host_.sched(), sim::millis(400));  // Hadoop's retry backoff
  }
  file.end();
}

sim::Co<std::uint64_t> DFSClient::read_file(const std::string& path) {
  LocatedBlocksResult blocks =
      co_await get_block_locations(path, 0, ~0ULL);
  const net::Transport t = data_transport(data_mode_);
  std::uint64_t total = 0;
  for (const LocatedBlock& lb : blocks.blocks) {
    if (lb.locations.empty()) continue;
    const std::size_t packets = static_cast<std::size_t>(
        (lb.block.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size);
    // Reader-side per-packet cost + wire from the chosen replica.
    co_await fabric_.transfer(lb.locations.front(), host_.id(), t, lb.block.num_bytes);
    co_await host_.compute(
        data_packet_recv_cost(host_.cost(), data_mode_, cfg_.packet_size) * packets);
    total += lb.block.num_bytes;
  }
  co_return total;
}

}  // namespace rpcoib::hdfs
