#include "hdfs/datanode.hpp"

namespace rpcoib::hdfs {

using sim::Co;
using sim::Task;

namespace {
const rpc::MethodKey kRegister{kDatanodeProtocol, "register"};
const rpc::MethodKey kSendHeartbeat{kDatanodeProtocol, "sendHeartbeat"};
const rpc::MethodKey kBlockReceived{kDatanodeProtocol, "blockReceived"};
const rpc::MethodKey kBlockReport{kDatanodeProtocol, "blockReport"};
}  // namespace

DataNode::DataNode(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
                   HdfsConfig cfg)
    : host_(host),
      engine_(engine),
      nn_addr_(nn_addr),
      cfg_(cfg),
      rpc_(engine.make_client(host)) {}

DataNode::~DataNode() { stop(); }

void DataNode::start() {
  if (running_) return;
  running_ = true;
  if (engine_.config().stream.enabled) {
    // Fresh hub per start: a stopped hub cannot listen again, and restart
    // tests bring nodes back after chaos kills them.
    stream_hub_ = std::make_unique<oib::stream::StreamHub>(
        host_, engine_.testbed().sockets(), engine_.verbs(), engine_.config().stream,
        engine_.config().pool);
    stream_hub_->listen({id(), oib::stream::kHdfsStreamPort},
                        [this](oib::stream::StreamReaderPtr r, net::Bytes meta) {
                          return stream_ingest(std::move(r), std::move(meta));
                        });
  }
  host_.sched().spawn(heartbeat_loop());
  host_.sched().spawn(block_report_loop());
}

void DataNode::stop() {
  running_ = false;
  if (stream_hub_ != nullptr) stream_hub_->stop();
}

sim::Task DataNode::heartbeat_loop() {
  // Register first, then heartbeat every cfg_.heartbeat_interval.
  try {
    DatanodeRegistration reg;
    reg.id = id();
    reg.capacity_bytes = 2ULL << 40;
    rpc::BooleanWritable ok;
    co_await rpc_->call(nn_addr_, kRegister, reg, &ok);
    while (running_) {
      co_await sim::delay(host_.sched(), cfg_.heartbeat_interval);
      if (!running_) break;
      HeartbeatParam hb;
      hb.id = id();
      hb.used_bytes = used_;
      hb.remaining_bytes = reg.capacity_bytes - used_;
      hb.xceiver_count = 0;
      HeartbeatResult r;
      co_await rpc_->call(nn_addr_, kSendHeartbeat, hb, &r);
      if (r.command == 1) {
        host_.sched().spawn(replicate_block(r.replicate_target));
      }
    }
  } catch (const rpc::RpcTransportError&) {
    // NameNode went away; daemon exits.
  } catch (const rpc::RemoteException&) {
  }
}

sim::Task DataNode::block_report_loop() {
  try {
    while (running_) {
      co_await sim::delay(host_.sched(), cfg_.block_report_interval);
      if (!running_) break;
      BlockReportParam p;
      p.id = id();
      p.blocks.reserve(blocks_.size());
      for (const auto& [bid, bytes] : blocks_) p.blocks.push_back(Block{bid, bytes});
      rpc::BooleanWritable ok;
      co_await rpc_->call(nn_addr_, kBlockReport, p, &ok);
    }
  } catch (const rpc::RpcTransportError&) {
  } catch (const rpc::RemoteException&) {
  }
}

// DNA_TRANSFER: stream a local block to the target datanode, which then
// reports blockReceived, restoring the replication factor.
sim::Task DataNode::replicate_block(LocatedBlock cmd) {
  if (peer_lookup_ == nullptr || cmd.locations.empty()) co_return;
  DataNode* target = peer_lookup_(cmd.locations.front());
  if (target == nullptr || !blocks_.contains(cmd.block.id)) co_return;
  // Sender-side read + stream, then the wire, then the target's normal
  // block-ingest path (receive costs + blockReceived to the NameNode).
  const std::size_t packets =
      (cmd.block.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  co_await host_.compute(
      data_packet_send_cost(host_.cost(), DataMode::kSocketIPoIB, cfg_.packet_size) *
      packets);
  co_await engine_.testbed().fabric().transfer(host_.id(), target->host().id(),
                                               net::Transport::kIPoIB,
                                               cmd.block.num_bytes);
  co_await target->store_block(cmd.block, DataMode::kSocketIPoIB);
}

sim::Task DataNode::stream_ingest(oib::stream::StreamReaderPtr r, net::Bytes meta) {
  StreamBlockMeta m;
  if (!decode_stream_block_meta(net::ByteSpan(meta.data(), meta.size()), &m)) {
    const std::string why = "bad stream meta";
    co_await r->abort(why);
    co_return;
  }
  // Open the downstream leg as a stream too, so chunk k forwards while
  // chunk k+1 is still arriving. A refusal (capped pool, no listener)
  // falls back to a one-shot forward once the whole block has landed.
  oib::stream::StreamWriterPtr fwd;
  if (!m.downstream.empty() && stream_hub_ != nullptr) {
    StreamBlockMeta dm;
    dm.block = m.block;
    dm.downstream.assign(m.downstream.begin() + 1, m.downstream.end());
    fwd = co_await stream_hub_->open(
        {m.downstream.front(), oib::stream::kHdfsStreamPort},
        encode_stream_block_meta(dm), m.block.num_bytes);
  }
  bool ok = false;  // co_await is not allowed inside a handler
  std::string why;
  try {
    const sim::Dur per_pkt =
        data_packet_recv_cost(host_.cost(), DataMode::kRdma, cfg_.packet_size);
    const std::uint64_t nchunks = r->num_chunks();
    for (std::uint64_t i = 0; i < nchunks; ++i) {
      oib::stream::Chunk c = co_await r->next_chunk();
      const std::size_t pkts =
          (c.data.size() + cfg_.packet_size - 1) / cfg_.packet_size;
      co_await host_.compute(per_pkt * pkts);
      if (fwd != nullptr) co_await fwd->write_chunk(c.data);
      co_await r->release_chunk(c.seq);
    }
    std::uint8_t status = 0;
    if (fwd != nullptr) {
      status = co_await fwd->close();
      fwd = nullptr;
    } else if (!m.downstream.empty()) {
      co_await forward_block_legacy(m.block, m.downstream);
    }
    if (status == 0) co_await finish_streamed_block(m.block);
    co_await r->finish(status);
    ok = true;
  } catch (const std::exception& e) {
    why = e.what();
  }
  if (!ok) {
    // Tear down both directions; abort() is a no-op on an already-closed
    // stream and skips the wire on an already-failed one, so the failure's
    // origin doesn't matter here.
    if (fwd != nullptr) co_await fwd->abort(why);
    co_await r->abort(why);
  }
}

sim::Co<void> DataNode::forward_block_legacy(Block b, std::vector<DatanodeId> targets) {
  // Mirror of replicate_block: replay the block to each remaining pipeline
  // member over the socket path.
  for (DatanodeId target : targets) {
    DataNode* peer = peer_lookup_ != nullptr ? peer_lookup_(target) : nullptr;
    if (peer == nullptr) {
      if (cfg_.pipeline_retries > 0) {
        throw rpc::RpcTransportError("stream pipeline datanode " +
                                     std::to_string(target) + " lost for block " +
                                     std::to_string(b.id));
      }
      continue;  // legacy: under-replicate silently
    }
    const std::size_t packets = (b.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size;
    co_await host_.compute(
        data_packet_send_cost(host_.cost(), DataMode::kSocketIPoIB, cfg_.packet_size) *
        packets);
    co_await engine_.testbed().fabric().transfer(host_.id(), peer->host().id(),
                                                 net::Transport::kIPoIB, b.num_bytes);
    co_await peer->store_block(b, DataMode::kSocketIPoIB);
  }
}

sim::Co<void> DataNode::finish_streamed_block(Block b) {
  // The per-chunk ingest loop already charged receive CPU; only the disk
  // write, the catalog update, and blockReceived remain.
  if (cfg_.datanode_disk_writes) co_await host_.disk_io(b.num_bytes);
  blocks_[b.id] = b.num_bytes;
  used_ += b.num_bytes;
  BlockReceivedParam p;
  p.id = id();
  p.block = b;
  rpc::BooleanWritable ok;
  co_await rpc_->call(nn_addr_, kBlockReceived, p, &ok);
}

sim::Co<void> DataNode::store_block(Block b, DataMode mode) {
  // Per-packet receive costs for the whole block (checksum verify + copy
  // to the block file; page cache at benchmark scale, per the testbed).
  const std::size_t packets =
      (b.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  const sim::Dur per_pkt = data_packet_recv_cost(host_.cost(), mode, cfg_.packet_size);
  co_await host_.compute(per_pkt * packets);
  if (cfg_.datanode_disk_writes) co_await host_.disk_io(b.num_bytes);

  blocks_[b.id] = b.num_bytes;
  used_ += b.num_bytes;

  BlockReceivedParam p;
  p.id = id();
  p.block = b;
  rpc::BooleanWritable ok;
  co_await rpc_->call(nn_addr_, kBlockReceived, p, &ok);
}

}  // namespace rpcoib::hdfs
