#include "hdfs/datanode.hpp"

namespace rpcoib::hdfs {

using sim::Co;
using sim::Task;

namespace {
const rpc::MethodKey kRegister{kDatanodeProtocol, "register"};
const rpc::MethodKey kSendHeartbeat{kDatanodeProtocol, "sendHeartbeat"};
const rpc::MethodKey kBlockReceived{kDatanodeProtocol, "blockReceived"};
const rpc::MethodKey kBlockReport{kDatanodeProtocol, "blockReport"};
}  // namespace

DataNode::DataNode(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
                   HdfsConfig cfg)
    : host_(host),
      engine_(engine),
      nn_addr_(nn_addr),
      cfg_(cfg),
      rpc_(engine.make_client(host)) {}

DataNode::~DataNode() { stop(); }

void DataNode::start() {
  if (running_) return;
  running_ = true;
  host_.sched().spawn(heartbeat_loop());
  host_.sched().spawn(block_report_loop());
}

void DataNode::stop() { running_ = false; }

sim::Task DataNode::heartbeat_loop() {
  // Register first, then heartbeat every cfg_.heartbeat_interval.
  try {
    DatanodeRegistration reg;
    reg.id = id();
    reg.capacity_bytes = 2ULL << 40;
    rpc::BooleanWritable ok;
    co_await rpc_->call(nn_addr_, kRegister, reg, &ok);
    while (running_) {
      co_await sim::delay(host_.sched(), cfg_.heartbeat_interval);
      if (!running_) break;
      HeartbeatParam hb;
      hb.id = id();
      hb.used_bytes = used_;
      hb.remaining_bytes = reg.capacity_bytes - used_;
      hb.xceiver_count = 0;
      HeartbeatResult r;
      co_await rpc_->call(nn_addr_, kSendHeartbeat, hb, &r);
      if (r.command == 1) {
        host_.sched().spawn(replicate_block(r.replicate_target));
      }
    }
  } catch (const rpc::RpcTransportError&) {
    // NameNode went away; daemon exits.
  } catch (const rpc::RemoteException&) {
  }
}

sim::Task DataNode::block_report_loop() {
  try {
    while (running_) {
      co_await sim::delay(host_.sched(), cfg_.block_report_interval);
      if (!running_) break;
      BlockReportParam p;
      p.id = id();
      p.blocks.reserve(blocks_.size());
      for (const auto& [bid, bytes] : blocks_) p.blocks.push_back(Block{bid, bytes});
      rpc::BooleanWritable ok;
      co_await rpc_->call(nn_addr_, kBlockReport, p, &ok);
    }
  } catch (const rpc::RpcTransportError&) {
  } catch (const rpc::RemoteException&) {
  }
}

// DNA_TRANSFER: stream a local block to the target datanode, which then
// reports blockReceived, restoring the replication factor.
sim::Task DataNode::replicate_block(LocatedBlock cmd) {
  if (peer_lookup_ == nullptr || cmd.locations.empty()) co_return;
  DataNode* target = peer_lookup_(cmd.locations.front());
  if (target == nullptr || !blocks_.contains(cmd.block.id)) co_return;
  // Sender-side read + stream, then the wire, then the target's normal
  // block-ingest path (receive costs + blockReceived to the NameNode).
  const std::size_t packets =
      (cmd.block.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  co_await host_.compute(
      data_packet_send_cost(host_.cost(), DataMode::kSocketIPoIB, cfg_.packet_size) *
      packets);
  co_await engine_.testbed().fabric().transfer(host_.id(), target->host().id(),
                                               net::Transport::kIPoIB,
                                               cmd.block.num_bytes);
  co_await target->store_block(cmd.block, DataMode::kSocketIPoIB);
}

sim::Co<void> DataNode::store_block(Block b, DataMode mode) {
  // Per-packet receive costs for the whole block (checksum verify + copy
  // to the block file; page cache at benchmark scale, per the testbed).
  const std::size_t packets =
      (b.num_bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  const sim::Dur per_pkt = data_packet_recv_cost(host_.cost(), mode, cfg_.packet_size);
  co_await host_.compute(per_pkt * packets);
  if (cfg_.datanode_disk_writes) co_await host_.disk_io(b.num_bytes);

  blocks_[b.id] = b.num_bytes;
  used_ += b.num_bytes;

  BlockReceivedParam p;
  p.id = id();
  p.block = b;
  rpc::BooleanWritable ok;
  co_await rpc_->call(nn_addr_, kBlockReceived, p, &ok);
}

}  // namespace rpcoib::hdfs
