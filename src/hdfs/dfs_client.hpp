// DFSClient: the HDFS client library (file API + write pipeline).
//
// Drives the ClientProtocol calls from Table I (create, addBlock,
// complete, renewLease, getFileInfo, getBlockLocations, mkdirs, rename,
// delete, getListing) and the replication pipeline over the configured
// data path. Used directly by the Fig. 7 bench, by MapReduce tasks for
// input/output, and by HBase region servers for WAL/flush traffic.
#pragma once

#include <memory>
#include <string>

#include "hdfs/data_transfer.hpp"
#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"
#include "trace/trace.hpp"

namespace rpcoib::hdfs {

/// Resolves datanode ids to daemon objects for pipeline delivery.
class DatanodeResolver {
 public:
  virtual ~DatanodeResolver() = default;
  virtual DataNode* datanode(DatanodeId id) = 0;
};

class DFSClient {
 public:
  DFSClient(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
            DatanodeResolver& resolver, DataMode data_mode, HdfsConfig cfg,
            std::string client_name);

  // --- namespace operations (thin RPC wrappers) -------------------------
  sim::Co<bool> mkdirs(const std::string& path);
  sim::Co<bool> exists(const std::string& path);
  sim::Co<FileStatusResult> get_file_info(const std::string& path);
  sim::Co<bool> rename(const std::string& src, const std::string& dst);
  sim::Co<bool> remove(const std::string& path);
  sim::Co<ListingResult> get_listing(const std::string& path);
  sim::Co<LocatedBlocksResult> get_block_locations(const std::string& path,
                                                   std::uint64_t offset,
                                                   std::uint64_t length);
  sim::Co<bool> renew_lease(const std::string& path);

  // --- data operations ----------------------------------------------------
  /// create + block-by-block pipelined write of `nbytes` + complete.
  sim::Co<void> write_file(const std::string& path, std::uint64_t nbytes);

  /// getBlockLocations + streamed read of the whole file (time-modeled;
  /// reads from the first replica of each block).
  sim::Co<std::uint64_t> read_file(const std::string& path);

  cluster::Host& host() const { return host_; }
  rpc::RpcClient& rpc() { return *rpc_; }
  const std::string& name() const { return name_; }

  /// Pipeline re-establishments performed after a DataNode was lost
  /// mid-write (cfg.pipeline_retries > 0 only).
  std::uint64_t pipeline_retries_count() const { return pipeline_retries_; }

  /// Bulk-stream endpoint, for stats inspection; null when streaming is
  /// disabled or the data path is not RDMA.
  oib::stream::StreamHub* stream_hub() { return stream_hub_.get(); }

 private:
  /// One block through the replication pipeline, with recovery: on a lost
  /// pipeline DataNode the block is abandoned and re-requested (fresh
  /// addBlock targets) up to cfg.pipeline_retries times.
  sim::Co<void> write_block(const std::string& path, std::uint64_t nbytes);
  sim::Co<void> write_block_attempt(const std::string& path, std::uint64_t nbytes);
  /// Streamed pipeline: chunk the block through the stream hub to the head
  /// datanode (which forwards downstream). False = fall back to the legacy
  /// one-shot path; throws RpcTransportError if the stream failed mid-block
  /// so write_block's abandonBlock retry re-drives it.
  sim::Co<bool> write_block_streamed(const LocatedBlock& located,
                                     const trace::TraceContext& ctx);
  /// Client<->NameNode synchronization attributable to one block beyond
  /// addBlock (shared by the streamed and legacy paths).
  sim::Co<void> block_nn_syncs(const std::string& path, std::uint64_t nbytes,
                               const trace::TraceContext& ctx);

  cluster::Host& host_;
  net::Fabric& fabric_;
  net::Address nn_addr_;
  DatanodeResolver& resolver_;
  DataMode data_mode_;
  HdfsConfig cfg_;
  std::unique_ptr<rpc::RpcClient> rpc_;
  /// Bulk-stream endpoint for the block pipeline; null unless streaming is
  /// enabled and the data path is RDMA (the only path with registered
  /// memory to stream through).
  std::unique_ptr<oib::stream::StreamHub> stream_hub_;
  std::string name_;
  std::uint64_t pipeline_retries_ = 0;
  /// Block id of the attempt in flight, so a failed pipeline can
  /// abandonBlock it before re-requesting targets (0 = none allocated).
  BlockId attempt_block_ = 0;
};

}  // namespace rpcoib::hdfs
