// HDFS data model and protocol message writables.
//
// A compact port of the Hadoop 0.20.2 structures the paper's workloads
// exercise: blocks, located blocks, file status, datanode registration,
// plus the Writable request/response payloads for ClientProtocol and
// DatanodeProtocol — the protocols whose calls populate Table I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "rpc/writable.hpp"

namespace rpcoib::hdfs {

/// Protocol names exactly as Table I reports them.
inline constexpr const char* kClientProtocol = "hdfs.ClientProtocol";
inline constexpr const char* kDatanodeProtocol = "hdfs.DatanodeProtocol";

using BlockId = std::uint64_t;
using DatanodeId = std::int32_t;  // host id of the datanode

struct HdfsConfig {
  std::uint64_t block_size = 64ULL << 20;  // dfs.block.size (0.20 default)
  int replication = 3;                     // dfs.replication
  sim::Dur heartbeat_interval = sim::seconds(3);
  sim::Dur block_report_interval = sim::seconds(60);
  /// Data-transfer pipeline packet size (dfs packet, 64 KB in 0.20).
  std::size_t packet_size = 64 * 1024;
  /// Client<->NameNode synchronization rounds per written block beyond
  /// addBlock itself (pipeline recovery checks, persistBlocks-style
  /// bookkeeping, lease/queue coordination). Calibrated so the RPC share
  /// of HDFS Write matches Fig. 7; see EXPERIMENTS.md.
  int nn_syncs_per_block = 160;
  /// When true, DataNodes pay HDD time for stored blocks (MapReduce-scale
  /// datasets exceed the page cache); false models the paper's Fig. 7
  /// microbenchmark where 24 GB-RAM nodes absorb writes in cache.
  bool datanode_disk_writes = false;
  /// A DataNode whose last heartbeat is older than this is declared dead
  /// and its blocks re-replicated. (Hadoop's default is 10.5 min; scaled
  /// down so failure tests run in simulated seconds.)
  sim::Dur dn_dead_after = sim::seconds(30);
  /// How often the NameNode scans for dead DataNodes / under-replication.
  sim::Dur replication_check_interval = sim::seconds(10);
  /// Write-pipeline recovery: when a pipeline DataNode disappears
  /// mid-block, abandon the block and retry addBlock up to this many
  /// times (0 = legacy behavior, dead nodes silently skipped).
  int pipeline_retries = 0;
  /// Wait between pipeline retries (fresh targets need the NameNode to
  /// notice the dead node or pick around it).
  sim::Dur pipeline_retry_backoff = sim::millis(400);
};

/// Block with generation stamp (simplified).
struct Block {
  BlockId id = 0;
  std::uint64_t num_bytes = 0;

  void write(rpc::DataOutput& out) const {
    out.write_u64(id);
    out.write_u64(num_bytes);
  }
  void read_fields(rpc::DataInput& in) {
    id = in.read_u64();
    num_bytes = in.read_u64();
  }
};

/// A block plus the datanodes holding it.
struct LocatedBlock {
  Block block;
  std::vector<DatanodeId> locations;

  void write(rpc::DataOutput& out) const {
    block.write(out);
    out.write_vi32(static_cast<std::int32_t>(locations.size()));
    for (DatanodeId d : locations) out.write_vi32(d);
  }
  void read_fields(rpc::DataInput& in) {
    block.read_fields(in);
    locations.resize(static_cast<std::size_t>(in.read_vi32()));
    for (DatanodeId& d : locations) d = in.read_vi32();
  }
};

struct FileStatus {
  std::string path;
  bool is_dir = false;
  std::uint64_t length = 0;
  std::uint16_t replication = 0;
  std::uint64_t block_size = 0;
  std::uint64_t modification_time = 0;

  void write(rpc::DataOutput& out) const {
    out.write_text(path);
    out.write_bool(is_dir);
    out.write_u64(length);
    out.write_u16(replication);
    out.write_u64(block_size);
    out.write_u64(modification_time);
  }
  void read_fields(rpc::DataInput& in) {
    path = in.read_text();
    is_dir = in.read_bool();
    length = in.read_u64();
    replication = in.read_u16();
    block_size = in.read_u64();
    modification_time = in.read_u64();
  }
};

// --- Protocol payloads -----------------------------------------------------

/// Generic single-path request (getFileInfo, mkdirs, delete, getListing...).
struct PathParam final : rpc::Writable {
  std::string path;
  std::string client;
  PathParam() = default;
  PathParam(std::string p, std::string c) : path(std::move(p)), client(std::move(c)) {}
  void write(rpc::DataOutput& out) const override {
    out.write_text(path);
    out.write_text(client);
  }
  void read_fields(rpc::DataInput& in) override {
    path = in.read_text();
    client = in.read_text();
  }
  /// getFileInfo is the NameNode's hot read-mostly lookup: eligible for the
  /// one-sided read plane, keyed by path. Every other PathParam method
  /// (mkdirs, delete, getListing, ...) mutates or scans — RPC only.
  std::optional<std::string> onesided_key(const std::string& protocol,
                                          const std::string& method) const override {
    if (protocol == kClientProtocol && method == "getFileInfo") return path;
    return std::nullopt;
  }
};

struct RenameParam final : rpc::Writable {
  std::string src, dst;
  void write(rpc::DataOutput& out) const override {
    out.write_text(src);
    out.write_text(dst);
  }
  void read_fields(rpc::DataInput& in) override {
    src = in.read_text();
    dst = in.read_text();
  }
};

struct CreateParam final : rpc::Writable {
  std::string path;
  std::string client;
  bool overwrite = true;
  std::uint16_t replication = 3;
  std::uint64_t block_size = 64ULL << 20;
  void write(rpc::DataOutput& out) const override {
    out.write_text(path);
    out.write_text(client);
    out.write_bool(overwrite);
    out.write_u16(replication);
    out.write_u64(block_size);
  }
  void read_fields(rpc::DataInput& in) override {
    path = in.read_text();
    client = in.read_text();
    overwrite = in.read_bool();
    replication = in.read_u16();
    block_size = in.read_u64();
  }
};

struct GetBlockLocationsParam final : rpc::Writable {
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  void write(rpc::DataOutput& out) const override {
    out.write_text(path);
    out.write_u64(offset);
    out.write_u64(length);
  }
  void read_fields(rpc::DataInput& in) override {
    path = in.read_text();
    offset = in.read_u64();
    length = in.read_u64();
  }
  /// Whole-file location lookups (the DFSClient read path asks for
  /// [0, ~0)) are what the NameNode exports; ranged queries vary by
  /// offset/length and stay on RPC.
  std::optional<std::string> onesided_key(const std::string& protocol,
                                          const std::string& method) const override {
    if (protocol == kClientProtocol && method == "getBlockLocations" && offset == 0 &&
        length == ~0ULL) {
      return path;
    }
    return std::nullopt;
  }
};

struct LocatedBlocksResult final : rpc::Writable {
  std::uint64_t file_length = 0;
  std::vector<LocatedBlock> blocks;
  void write(rpc::DataOutput& out) const override {
    out.write_u64(file_length);
    out.write_vi32(static_cast<std::int32_t>(blocks.size()));
    for (const LocatedBlock& b : blocks) b.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    file_length = in.read_u64();
    blocks.resize(static_cast<std::size_t>(in.read_vi32()));
    for (LocatedBlock& b : blocks) b.read_fields(in);
  }
};

struct LocatedBlockResult final : rpc::Writable {
  LocatedBlock located;
  void write(rpc::DataOutput& out) const override { located.write(out); }
  void read_fields(rpc::DataInput& in) override { located.read_fields(in); }
};

struct FileStatusResult final : rpc::Writable {
  bool exists = false;
  FileStatus status;
  void write(rpc::DataOutput& out) const override {
    out.write_bool(exists);
    if (exists) status.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    exists = in.read_bool();
    if (exists) status.read_fields(in);
  }
};

struct ListingResult final : rpc::Writable {
  std::vector<FileStatus> entries;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(static_cast<std::int32_t>(entries.size()));
    for (const FileStatus& e : entries) e.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    entries.resize(static_cast<std::size_t>(in.read_vi32()));
    for (FileStatus& e : entries) e.read_fields(in);
  }
};

// --- DatanodeProtocol payloads ----------------------------------------------

struct DatanodeRegistration final : rpc::Writable {
  DatanodeId id = -1;
  std::uint64_t capacity_bytes = 0;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(id);
    out.write_u64(capacity_bytes);
  }
  void read_fields(rpc::DataInput& in) override {
    id = in.read_vi32();
    capacity_bytes = in.read_u64();
  }
};

struct HeartbeatParam final : rpc::Writable {
  DatanodeId id = -1;
  std::uint64_t used_bytes = 0;
  std::uint64_t remaining_bytes = 0;
  std::uint32_t xceiver_count = 0;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(id);
    out.write_u64(used_bytes);
    out.write_u64(remaining_bytes);
    out.write_u32(xceiver_count);
  }
  void read_fields(rpc::DataInput& in) override {
    id = in.read_vi32();
    used_bytes = in.read_u64();
    remaining_bytes = in.read_u64();
    xceiver_count = in.read_u32();
  }
};

/// Heartbeat response can carry commands (e.g. replicate block).
struct HeartbeatResult final : rpc::Writable {
  // command 0 = none, 1 = replicate
  std::uint8_t command = 0;
  LocatedBlock replicate_target;
  void write(rpc::DataOutput& out) const override {
    out.write_u8(command);
    if (command == 1) replicate_target.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    command = in.read_u8();
    if (command == 1) replicate_target.read_fields(in);
  }
};

struct BlockReceivedParam final : rpc::Writable {
  DatanodeId id = -1;
  Block block;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(id);
    block.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    id = in.read_vi32();
    block.read_fields(in);
  }
};

struct BlockReportParam final : rpc::Writable {
  DatanodeId id = -1;
  std::vector<Block> blocks;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(id);
    out.write_vi32(static_cast<std::int32_t>(blocks.size()));
    for (const Block& b : blocks) b.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    id = in.read_vi32();
    blocks.resize(static_cast<std::size_t>(in.read_vi32()));
    for (Block& b : blocks) b.read_fields(in);
  }
};

struct AddBlockParam final : rpc::Writable {
  std::string path;
  std::string client;
  void write(rpc::DataOutput& out) const override {
    out.write_text(path);
    out.write_text(client);
  }
  void read_fields(rpc::DataInput& in) override {
    path = in.read_text();
    client = in.read_text();
  }
};

/// abandonBlock: drop a block whose pipeline failed so the file can
/// complete once its remaining blocks are reported.
struct AbandonBlockParam final : rpc::Writable {
  std::string path;
  std::string client;
  BlockId block = 0;
  void write(rpc::DataOutput& out) const override {
    out.write_text(path);
    out.write_text(client);
    out.write_u64(block);
  }
  void read_fields(rpc::DataInput& in) override {
    path = in.read_text();
    client = in.read_text();
    block = in.read_u64();
  }
};

}  // namespace rpcoib::hdfs
