// Convenience wiring: NameNode + DataNodes on a testbed, the shape every
// integrated experiment (Figs. 6-8) starts from.
#pragma once

#include <memory>
#include <vector>

#include "hdfs/dfs_client.hpp"

namespace rpcoib::hdfs {

class HdfsCluster : public DatanodeResolver {
 public:
  /// NameNode on `nn_host`; one DataNode on each host in `dn_hosts`.
  HdfsCluster(oib::RpcEngine& engine, cluster::HostId nn_host,
              std::vector<cluster::HostId> dn_hosts, DataMode data_mode,
              HdfsConfig cfg = {});

  /// Starts daemons. Run the scheduler briefly afterwards (or rely on the
  /// first client op) so registrations land before writes begin.
  void start();
  void stop();

  /// Resolves to the daemon only while it is running: a stopped DataNode
  /// is invisible, exactly like a crashed node — the write pipeline sees
  /// nullptr and (with pipeline_retries > 0) re-requests the block.
  DataNode* datanode(DatanodeId id) override;

  /// Any DataNode object by id, running or not (tests restart/stop nodes).
  DataNode* datanode_object(DatanodeId id);

  std::unique_ptr<DFSClient> make_client(cluster::Host& host, std::string name);

  NameNode& namenode() { return *nn_; }
  const net::Address& nn_addr() const { return nn_addr_; }
  DataMode data_mode() const { return data_mode_; }
  const HdfsConfig& config() const { return cfg_; }
  std::size_t num_datanodes() const { return dns_.size(); }

 private:
  oib::RpcEngine& engine_;
  net::Address nn_addr_;
  DataMode data_mode_;
  HdfsConfig cfg_;
  std::unique_ptr<NameNode> nn_;
  std::vector<std::unique_ptr<DataNode>> dns_;
};

}  // namespace rpcoib::hdfs
