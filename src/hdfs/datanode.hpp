// DataNode: block storage daemon.
//
// Registers with the NameNode, heartbeats every 3 s, sends periodic block
// reports, stores pipeline blocks (page-cache write at benchmark scale,
// like the paper's 24 GB-RAM nodes absorbing 64 MB blocks), and reports
// each received block via DatanodeProtocol.blockReceived — the exact
// call whose ~430-byte size locality the paper highlights in Section III-C.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "hdfs/data_transfer.hpp"
#include "hdfs/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"

namespace rpcoib::hdfs {

class DataNodeResolver;

class DataNode {
 public:
  DataNode(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
           HdfsConfig cfg);

  /// Wire up peer lookup (set by HdfsCluster) so replicate commands can
  /// deliver blocks to their targets.
  using PeerLookup = std::function<DataNode*(DatanodeId)>;
  void set_peer_lookup(PeerLookup fn) { peer_lookup_ = std::move(fn); }
  ~DataNode();
  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  /// Register with the NameNode and start heartbeat/block-report loops.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Pipeline delivery: account receive costs, store the block, notify the
  /// NameNode (blockReceived). Called by the data-transfer pipeline once
  /// the block's bytes have arrived at this node.
  sim::Co<void> store_block(Block b, DataMode mode);

  cluster::Host& host() const { return host_; }
  DatanodeId id() const { return host_.id(); }
  std::size_t num_blocks() const { return blocks_.size(); }
  bool has_block(BlockId id) const { return blocks_.contains(id); }
  std::uint64_t used_bytes() const { return used_; }
  rpc::RpcClient& rpc() { return *rpc_; }

  /// Bulk-stream endpoint, for stats inspection; null when streaming is
  /// disabled or the node has not been started with it.
  oib::stream::StreamHub* stream_hub() { return stream_hub_.get(); }

 private:
  sim::Task heartbeat_loop();
  sim::Task block_report_loop();
  sim::Task replicate_block(LocatedBlock cmd);
  /// Inbound streamed block: consume chunks from the ring, forwarding each
  /// one downstream (chunk k forwards while k+1 is arriving) before
  /// releasing its slot, then store and report the block.
  sim::Task stream_ingest(oib::stream::StreamReaderPtr r, net::Bytes meta);
  /// One-shot forward to the remaining pipeline members when the next hop
  /// refused or cannot take a stream.
  sim::Co<void> forward_block_legacy(Block b, std::vector<DatanodeId> targets);
  /// Tail of a streamed ingest: disk write + catalog + blockReceived (the
  /// per-chunk loop already charged receive CPU).
  sim::Co<void> finish_streamed_block(Block b);

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address nn_addr_;
  HdfsConfig cfg_;
  std::unique_ptr<rpc::RpcClient> rpc_;
  /// Bulk-stream endpoint (block ingest listener + downstream forwarding);
  /// created per start() when streaming is enabled, stopped with the node.
  std::unique_ptr<oib::stream::StreamHub> stream_hub_;
  PeerLookup peer_lookup_;
  std::map<BlockId, std::uint64_t> blocks_;
  std::uint64_t used_ = 0;
  bool running_ = false;
};

}  // namespace rpcoib::hdfs
