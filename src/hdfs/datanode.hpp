// DataNode: block storage daemon.
//
// Registers with the NameNode, heartbeats every 3 s, sends periodic block
// reports, stores pipeline blocks (page-cache write at benchmark scale,
// like the paper's 24 GB-RAM nodes absorbing 64 MB blocks), and reports
// each received block via DatanodeProtocol.blockReceived — the exact
// call whose ~430-byte size locality the paper highlights in Section III-C.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "hdfs/data_transfer.hpp"
#include "hdfs/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"

namespace rpcoib::hdfs {

class DataNodeResolver;

class DataNode {
 public:
  DataNode(cluster::Host& host, oib::RpcEngine& engine, net::Address nn_addr,
           HdfsConfig cfg);

  /// Wire up peer lookup (set by HdfsCluster) so replicate commands can
  /// deliver blocks to their targets.
  using PeerLookup = std::function<DataNode*(DatanodeId)>;
  void set_peer_lookup(PeerLookup fn) { peer_lookup_ = std::move(fn); }
  ~DataNode();
  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  /// Register with the NameNode and start heartbeat/block-report loops.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Pipeline delivery: account receive costs, store the block, notify the
  /// NameNode (blockReceived). Called by the data-transfer pipeline once
  /// the block's bytes have arrived at this node.
  sim::Co<void> store_block(Block b, DataMode mode);

  cluster::Host& host() const { return host_; }
  DatanodeId id() const { return host_.id(); }
  std::size_t num_blocks() const { return blocks_.size(); }
  bool has_block(BlockId id) const { return blocks_.contains(id); }
  std::uint64_t used_bytes() const { return used_; }
  rpc::RpcClient& rpc() { return *rpc_; }

 private:
  sim::Task heartbeat_loop();
  sim::Task block_report_loop();
  sim::Task replicate_block(LocatedBlock cmd);

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address nn_addr_;
  HdfsConfig cfg_;
  std::unique_ptr<rpc::RpcClient> rpc_;
  PeerLookup peer_lookup_;
  std::map<BlockId, std::uint64_t> blocks_;
  std::uint64_t used_ = 0;
  bool running_ = false;
};

}  // namespace rpcoib::hdfs
