// NameNode: HDFS metadata server.
//
// Serves ClientProtocol (hdfs.ClientProtocol in Table I) and
// DatanodeProtocol over the configured RPC transport. Keeps the namespace
// tree, the block map, datanode liveness, and the replication policy
// (3 distinct datanodes per block, round-robin with randomization like the
// default placement's non-rack-aware core).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hdfs/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"

namespace rpcoib::hdfs {

class NameNode {
 public:
  NameNode(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
           HdfsConfig cfg = {});
  ~NameNode();
  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  void start();
  void stop();

  const net::Address& addr() const { return addr_; }
  const HdfsConfig& config() const { return cfg_; }
  rpc::RpcServer& server() { return *server_; }

  // Introspection for tests/benches.
  std::size_t num_files() const { return files_.size(); }
  std::size_t num_blocks() const { return block_map_.size(); }
  std::size_t replica_count(BlockId id) const;
  std::vector<DatanodeId> live_datanodes() const;
  bool file_exists(const std::string& path) const { return files_.contains(path); }
  std::uint64_t file_length(const std::string& path) const;

 private:
  struct INode {
    bool is_dir = false;
    std::uint16_t replication = 3;
    std::uint64_t block_size = 64ULL << 20;
    std::vector<BlockId> blocks;
    bool under_construction = false;
    std::string lease_holder;
    std::uint64_t mtime = 0;
  };
  struct BlockInfo {
    std::uint64_t num_bytes = 0;
    std::set<DatanodeId> replicas;
    // Owning file, so datanode-driven updates (blockReceived/blockReport,
    // re-replication) can republish that path's one-sided entries.
    std::string path;
  };
  struct DatanodeInfo {
    std::uint64_t capacity = 0;
    std::uint64_t used = 0;
    sim::Time last_heartbeat = 0;
  };

  void register_handlers();
  std::vector<DatanodeId> choose_targets(int n);
  sim::Task replication_monitor();

  /// Shared response builders: the RPC handlers and the one-sided export
  /// serialize through the same code, so a READ-served response is
  /// byte-identical to what the wire would have carried.
  void make_file_status(const std::string& path, FileStatusResult& r) const;
  /// False when the file does not exist (the RPC handler throws there).
  bool locate_blocks(const std::string& path, std::uint64_t offset, std::uint64_t length,
                     LocatedBlocksResult& r);
  /// Re-export both one-sided entries for `path` (getFileInfo and the
  /// whole-file getBlockLocations). No-op unless the server runs a
  /// one-sided region. A missing file publishes exists=false for
  /// getFileInfo and a tombstone (empty payload -> client falls back to
  /// RPC, which throws) for getBlockLocations.
  void republish(const std::string& path);

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address addr_;
  HdfsConfig cfg_;
  std::unique_ptr<rpc::RpcServer> server_;

  std::map<std::string, INode> files_;
  std::map<BlockId, BlockInfo> block_map_;
  std::map<DatanodeId, DatanodeInfo> datanodes_;
  // Replicate commands awaiting delivery in the source DN's next
  // heartbeat response: block + target datanode.
  std::map<DatanodeId, std::vector<LocatedBlock>> pending_replications_;
  BlockId next_block_id_ = 1000;
  std::size_t next_target_ = 0;
  bool running_ = false;
};

}  // namespace rpcoib::hdfs
