#include "hdfs/namenode.hpp"

#include <algorithm>

#include "rpc/buffers.hpp"

namespace rpcoib::hdfs {

using sim::Co;

NameNode::NameNode(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
                   HdfsConfig cfg)
    : host_(host), engine_(engine), addr_(addr), cfg_(cfg) {
  server_ = engine_.make_server(host_, addr_);
  register_handlers();
}

NameNode::~NameNode() { stop(); }

void NameNode::start() {
  if (running_) return;
  running_ = true;
  server_->start();
  host_.sched().spawn(replication_monitor());
}
void NameNode::stop() {
  running_ = false;
  if (server_) server_->stop();
}

// Scans for dead DataNodes; removes their replicas and schedules
// re-replication commands, delivered on live DataNodes' heartbeats
// (Hadoop's DNA_TRANSFER command path).
sim::Task NameNode::replication_monitor() {
  while (running_) {
    co_await sim::delay(host_.sched(), cfg_.replication_check_interval);
    if (!running_) break;
    std::vector<DatanodeId> dead;
    for (const auto& [id, info] : datanodes_) {
      if (host_.sched().now() - info.last_heartbeat > cfg_.dn_dead_after) {
        dead.push_back(id);
      }
    }
    for (DatanodeId d : dead) datanodes_.erase(d);
    if (dead.empty()) continue;
    std::set<std::string> touched;
    for (auto& [block_id, info] : block_map_) {
      const std::size_t before = info.replicas.size();
      for (DatanodeId d : dead) info.replicas.erase(d);
      if (info.replicas.size() != before && !info.path.empty()) {
        touched.insert(info.path);
      }
      if (info.replicas.empty()) continue;  // data loss; nothing to copy from
      const int want = cfg_.replication;
      if (static_cast<int>(info.replicas.size()) >= want) continue;
      // Pick targets not already holding the block.
      std::vector<DatanodeId> targets;
      for (DatanodeId cand : choose_targets(want * 2)) {
        if (!info.replicas.contains(cand)) targets.push_back(cand);
        if (static_cast<int>(info.replicas.size() + targets.size()) >= want) break;
      }
      const DatanodeId source = *info.replicas.begin();
      for (DatanodeId tgt : targets) {
        LocatedBlock lb;
        lb.block.id = block_id;
        lb.block.num_bytes = info.num_bytes;
        lb.locations = {tgt};
        pending_replications_[source].push_back(std::move(lb));
      }
    }
    for (const std::string& p : touched) republish(p);
  }
}

std::size_t NameNode::replica_count(BlockId id) const {
  auto it = block_map_.find(id);
  return it == block_map_.end() ? 0 : it->second.replicas.size();
}

std::vector<DatanodeId> NameNode::live_datanodes() const {
  std::vector<DatanodeId> out;
  for (const auto& [id, info] : datanodes_) out.push_back(id);
  return out;
}

std::uint64_t NameNode::file_length(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  std::uint64_t total = 0;
  for (BlockId b : it->second.blocks) {
    auto bit = block_map_.find(b);
    if (bit != block_map_.end()) total += bit->second.num_bytes;
  }
  return total;
}

std::vector<DatanodeId> NameNode::choose_targets(int n) {
  // Default placement without rack awareness: spread over live datanodes,
  // rotating the starting point and shuffling lightly for balance.
  std::vector<DatanodeId> live = live_datanodes();
  std::vector<DatanodeId> out;
  if (live.empty()) return out;
  const std::size_t count = std::min<std::size_t>(static_cast<std::size_t>(n), live.size());
  const std::size_t start = next_target_++ % live.size();
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(live[(start + i) % live.size()]);
  }
  return out;
}

void NameNode::make_file_status(const std::string& path, FileStatusResult& r) const {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  r.exists = true;
  r.status.path = path;
  r.status.is_dir = it->second.is_dir;
  r.status.length = file_length(path);
  r.status.replication = it->second.replication;
  r.status.block_size = it->second.block_size;
  r.status.modification_time = it->second.mtime;
}

bool NameNode::locate_blocks(const std::string& path, std::uint64_t offset,
                             std::uint64_t length, LocatedBlocksResult& r) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  std::uint64_t off = 0;
  for (BlockId id : it->second.blocks) {
    const BlockInfo& bi = block_map_[id];
    if (off + bi.num_bytes > offset && off < offset + length) {
      LocatedBlock lb;
      lb.block.id = id;
      lb.block.num_bytes = bi.num_bytes;
      lb.locations.assign(bi.replicas.begin(), bi.replicas.end());
      r.blocks.push_back(std::move(lb));
    }
    off += bi.num_bytes;
  }
  r.file_length = off;
  return true;
}

void NameNode::republish(const std::string& path) {
  rpc::OneSidedPublisher* pub = server_ ? server_->onesided() : nullptr;
  if (pub == nullptr) return;
  {
    FileStatusResult r;
    make_file_status(path, r);
    rpc::DataOutputBuffer out(host_.cost());
    r.write(out);
    pub->publish(rpc::onesided_entry_key(kClientProtocol, "getFileInfo", path),
                 out.data());
  }
  {
    LocatedBlocksResult r;
    rpc::DataOutputBuffer out(host_.cost());
    if (locate_blocks(path, 0, ~0ULL, r)) r.write(out);
    pub->publish(rpc::onesided_entry_key(kClientProtocol, "getBlockLocations", path),
                 out.data());
  }
}

void NameNode::register_handlers() {
  rpc::Dispatcher& d = server_->dispatcher();

  // --- ClientProtocol ----------------------------------------------------
  d.register_method(kClientProtocol, "getFileInfo",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      FileStatusResult r;
                      make_file_status(p.path, r);
                      r.write(out);
                      // Warm the one-sided entry so the *next* lookup of
                      // this path can bypass the handler entirely.
                      republish(p.path);
                      co_return;
                    });

  d.register_method(kClientProtocol, "mkdirs",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      INode& node = files_[p.path];
                      node.is_dir = true;
                      node.mtime = sim::to_us(host_.sched().now()) / 1000;
                      republish(p.path);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "create",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      CreateParam p;
                      p.read_fields(in);
                      if (files_.contains(p.path) && !p.overwrite) {
                        throw std::runtime_error("file exists: " + p.path);
                      }
                      INode node;
                      node.is_dir = false;
                      node.replication = p.replication;
                      node.block_size = p.block_size;
                      node.under_construction = true;
                      node.lease_holder = p.client;
                      node.mtime = sim::to_us(host_.sched().now()) / 1000;
                      files_[p.path] = std::move(node);
                      republish(p.path);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "addBlock",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      AddBlockParam p;
                      p.read_fields(in);
                      auto it = files_.find(p.path);
                      if (it == files_.end()) throw std::runtime_error("no such file");
                      LocatedBlockResult r;
                      r.located.block.id = next_block_id_++;
                      r.located.block.num_bytes = 0;
                      r.located.locations = choose_targets(it->second.replication);
                      if (r.located.locations.empty()) {
                        throw std::runtime_error("no datanodes available");
                      }
                      it->second.blocks.push_back(r.located.block.id);
                      BlockInfo bi;
                      bi.path = p.path;
                      block_map_[r.located.block.id] = std::move(bi);
                      republish(p.path);
                      r.write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "abandonBlock",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      AbandonBlockParam p;
                      p.read_fields(in);
                      auto it = files_.find(p.path);
                      if (it != files_.end()) {
                        std::erase(it->second.blocks, p.block);
                      }
                      block_map_.erase(p.block);
                      republish(p.path);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "complete",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      auto it = files_.find(p.path);
                      bool done = false;
                      if (it != files_.end()) {
                        // Like Hadoop: complete succeeds once every block
                        // has at least one reported replica.
                        done = true;
                        for (BlockId b : it->second.blocks) {
                          if (replica_count(b) == 0) done = false;
                        }
                        if (done) it->second.under_construction = false;
                      }
                      if (done) republish(p.path);
                      rpc::BooleanWritable(done).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "renewLease",
                    [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "getBlockLocations",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      GetBlockLocationsParam p;
                      p.read_fields(in);
                      LocatedBlocksResult r;
                      if (!locate_blocks(p.path, p.offset, p.length, r)) {
                        throw std::runtime_error("no such file");
                      }
                      r.write(out);
                      republish(p.path);
                      co_return;
                    });

  d.register_method(kClientProtocol, "getListing",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      ListingResult r;
                      const std::string prefix = p.path.back() == '/' ? p.path : p.path + "/";
                      for (const auto& [path, node] : files_) {
                        if (path.size() > prefix.size() && path.starts_with(prefix) &&
                            path.find('/', prefix.size()) == std::string::npos) {
                          FileStatus st;
                          st.path = path;
                          st.is_dir = node.is_dir;
                          st.length = file_length(path);
                          st.replication = node.replication;
                          st.block_size = node.block_size;
                          r.entries.push_back(std::move(st));
                        }
                      }
                      r.write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "rename",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      RenameParam p;
                      p.read_fields(in);
                      auto it = files_.find(p.src);
                      bool ok = false;
                      if (it != files_.end() && !files_.contains(p.dst)) {
                        files_[p.dst] = std::move(it->second);
                        files_.erase(it);
                        ok = true;
                        for (BlockId b : files_[p.dst].blocks) block_map_[b].path = p.dst;
                        republish(p.src);
                        republish(p.dst);
                      }
                      rpc::BooleanWritable(ok).write(out);
                      co_return;
                    });

  d.register_method(kClientProtocol, "delete",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      PathParam p;
                      p.read_fields(in);
                      bool ok = false;
                      auto it = files_.find(p.path);
                      if (it != files_.end()) {
                        for (BlockId b : it->second.blocks) block_map_.erase(b);
                        files_.erase(it);
                        ok = true;
                      }
                      // Recursive delete of children for directories.
                      const std::string prefix = p.path + "/";
                      std::vector<std::string> removed;
                      for (auto cit = files_.begin(); cit != files_.end();) {
                        if (cit->first.starts_with(prefix)) {
                          for (BlockId b : cit->second.blocks) block_map_.erase(b);
                          removed.push_back(cit->first);
                          cit = files_.erase(cit);
                          ok = true;
                        } else {
                          ++cit;
                        }
                      }
                      republish(p.path);
                      for (const std::string& child : removed) republish(child);
                      rpc::BooleanWritable(ok).write(out);
                      co_return;
                    });

  // --- DatanodeProtocol ---------------------------------------------------
  d.register_method(kDatanodeProtocol, "register",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      DatanodeRegistration p;
                      p.read_fields(in);
                      DatanodeInfo& info = datanodes_[p.id];
                      info.capacity = p.capacity_bytes;
                      info.last_heartbeat = host_.sched().now();
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kDatanodeProtocol, "sendHeartbeat",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      HeartbeatParam p;
                      p.read_fields(in);
                      auto it = datanodes_.find(p.id);
                      if (it != datanodes_.end()) {
                        it->second.used = p.used_bytes;
                        it->second.last_heartbeat = host_.sched().now();
                      }
                      HeartbeatResult r;
                      auto pit = pending_replications_.find(p.id);
                      if (pit != pending_replications_.end() && !pit->second.empty()) {
                        r.command = 1;
                        r.replicate_target = pit->second.back();
                        pit->second.pop_back();
                        if (pit->second.empty()) pending_replications_.erase(pit);
                      }
                      r.write(out);
                      co_return;
                    });

  d.register_method(kDatanodeProtocol, "blockReceived",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      BlockReceivedParam p;
                      p.read_fields(in);
                      BlockInfo& bi = block_map_[p.block.id];
                      bi.num_bytes = p.block.num_bytes;
                      bi.replicas.insert(p.id);
                      if (!bi.path.empty()) republish(bi.path);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kDatanodeProtocol, "blockReport",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      BlockReportParam p;
                      p.read_fields(in);
                      std::set<std::string> touched;
                      for (const Block& b : p.blocks) {
                        auto it = block_map_.find(b.id);
                        if (it != block_map_.end()) {
                          it->second.replicas.insert(p.id);
                          it->second.num_bytes = b.num_bytes;
                          if (!it->second.path.empty()) touched.insert(it->second.path);
                        }
                      }
                      for (const std::string& path : touched) republish(path);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });
}

}  // namespace rpcoib::hdfs
