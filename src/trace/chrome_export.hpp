// Trace Event Format (chrome://tracing / Perfetto) exporter.
//
// Emits complete ("ph":"X") events, one per span, with pid = simulated
// host and tid = trace id, so a cluster run renders as one lane per host
// with each request/job tree nesting by time. Output is deterministic:
// spans are written in creation order with fixed-precision timestamps, so
// the same seed produces a byte-identical file.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace rpcoib::trace {

void write_chrome_trace(std::ostream& os, const TraceCollector& collector);

/// Writes to `path`; returns false (and prints nothing) on I/O failure.
bool write_chrome_trace_file(const std::string& path, const TraceCollector& collector);

/// Scans argv for `--trace-out=PATH`; returns "" when absent.
std::string trace_out_arg(int argc, char** argv);

/// "sort.json" + "ipoib" -> "sort.ipoib.json" (tag before the extension).
std::string path_with_tag(const std::string& path, const std::string& tag);

}  // namespace rpcoib::trace
