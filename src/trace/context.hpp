// TraceContext: the in-band trace propagation token.
//
// A (trace id, span id) pair small enough to ride every RPC wire header.
// This header is dependency-free so the RPC layer can carry contexts
// without linking the tracing subsystem; the collector lives in trace.hpp.
#pragma once

#include <cstdint>

namespace rpcoib::trace {

/// Identifies the trace a span belongs to and the span itself. A default
/// context (trace_id == 0) means "not traced" — calls carrying it create
/// no server-side spans and add no wire bytes.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  explicit operator bool() const { return valid(); }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// High bit of the on-wire call id. When set, the call header continues
/// with [u64 trace_id][u64 parent_span_id] before the protocol/method
/// strings. Untraced calls never set it, so with tracing off the wire
/// format is byte-identical to the untraced build (zero overhead).
inline constexpr std::uint64_t kWireTraceFlag = 1ULL << 63;

/// Second-highest bit of the on-wire call id. When set, the call header
/// carries [u64 absolute_deadline_ns] after the optional trace words: the
/// caller's per-attempt deadline on the shared virtual clock. Clients only
/// stamp it when a call timeout is configured, so the default wire format
/// is unchanged.
inline constexpr std::uint64_t kWireDeadlineFlag = 1ULL << 62;

/// Third-highest bit, set only in the *first* u64 of a socket frame. When
/// set, the frame is a multi-call batch, not a single call: the low 32
/// bits carry the sub-message count, then [u32 len_i] x count, then the
/// sub-messages — each laid out exactly like a standalone frame's payload.
/// Emitted only with coalescing enabled (rpc::BatchConfig), so the default
/// wire format stays byte-identical to the seed.
inline constexpr std::uint64_t kWireBatchFlag = 1ULL << 61;

/// Fourth-highest bit of the on-wire call id. When set, this frame is a
/// *re-sent attempt* of a logical call (attempt > 0 under the client's
/// retry policy). Servers running a durable session layer use it to tell
/// "retry of a call whose session state may have expired" (must not be
/// silently re-executed) from a genuinely new call. Stamped only when the
/// client's session layer is enabled, so the default wire format stays
/// byte-identical to a sessionless build.
inline constexpr std::uint64_t kWireRetryFlag = 1ULL << 60;

/// Mask stripping all wire flag bits off a call id.
inline constexpr std::uint64_t kWireIdMask =
    ~(kWireTraceFlag | kWireDeadlineFlag | kWireBatchFlag | kWireRetryFlag);

}  // namespace rpcoib::trace
