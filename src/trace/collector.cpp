#include "trace/trace.hpp"

namespace rpcoib::trace {

const char* category_name(Category c) {
  switch (c) {
    case Category::kOther: return "other/uninstrumented";
    case Category::kSerialization: return "serialization";
    case Category::kSend: return "send (copy+post)";
    case Category::kRecv: return "receive (alloc+copy)";
    case Category::kQueue: return "handler queue";
    case Category::kHandler: return "handler execute";
    case Category::kWire: return "wire + rpc wait";
    case Category::kBuffer: return "buffer pool/registration";
    case Category::kCompute: return "compute";
    case Category::kDisk: return "disk I/O";
    case Category::kFault: return "fault/recovery";
    case Category::kRetry: return "retry backoff";
    case Category::kOverload: return "overload/deadline";
    case Category::kStream: return "bulk stream";
    case Category::kSession: return "session/reconnect";
    case Category::kOneSided: return "onesided read";
  }
  return "?";
}

void TraceCollector::clear() {
  spans_.clear();
  next_trace_id_ = 1;
  open_ = 0;
  ambient_ = TraceContext{};
  host_names_.clear();
}

SpanId TraceCollector::begin_span(std::string name, Kind kind, Category cat,
                                  TraceContext parent, int host) {
  Span s;
  s.id = spans_.size() + 1;
  if (parent.valid()) {
    s.trace_id = parent.trace_id;
    s.parent_id = parent.span_id;
  } else {
    s.trace_id = next_trace_id_++;
  }
  s.name = std::move(name);
  s.kind = kind;
  s.category = cat;
  s.start = sched_ != nullptr ? sched_->now() : 0;
  s.end = s.start;
  s.host = host;
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.back().id;
}

SpanId TraceCollector::add_complete(std::string name, Kind kind, Category cat,
                                    TraceContext parent, int host, sim::Time start,
                                    sim::Time end) {
  SpanId id = begin_span(std::move(name), kind, cat, parent, host);
  Span& s = spans_[id - 1];
  s.start = start;
  s.end = end >= start ? end : start;
  s.open = false;
  --open_;
  return id;
}

void TraceCollector::end_span(SpanId id) {
  if (id == 0 || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (!s.open) return;
  s.open = false;
  --open_;
  const sim::Time now = sched_ != nullptr ? sched_->now() : s.start;
  s.end = now >= s.start ? now : s.start;
}

void TraceCollector::annotate(SpanId id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

TraceContext TraceCollector::context_of(SpanId id) const {
  if (id == 0 || id > spans_.size()) return TraceContext{};
  const Span& s = spans_[id - 1];
  return TraceContext{s.trace_id, s.id};
}

const Span* TraceCollector::longest_root() const {
  const Span* best = nullptr;
  for (const Span& s : spans_) {
    if (s.parent_id != 0) continue;
    if (best == nullptr || s.duration() > best->duration()) best = &s;
  }
  return best;
}

}  // namespace rpcoib::trace
