#include "trace/chrome_export.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

namespace rpcoib::trace {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Virtual ns -> microseconds with fixed 3-decimal formatting (exact for
/// ns-granular times; deterministic across runs and platforms).
void write_us(std::ostream& os, sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(t / 1000),
                static_cast<unsigned long long>(t % 1000));
  os << buf;
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kInternal: return "internal";
    case Kind::kClient: return "client";
    case Kind::kServer: return "server";
  }
  return "?";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceCollector& collector) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [id, name] : collector.host_names()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"M\",\"pid\":" << id << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }
  for (const Span& s : collector.spans()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    write_escaped(os, s.name);
    os << "\",\"cat\":\"";
    write_escaped(os, category_name(s.category));
    os << "\",\"ph\":\"X\",\"ts\":";
    write_us(os, s.start);
    os << ",\"dur\":";
    write_us(os, s.duration());
    os << ",\"pid\":" << s.host << ",\"tid\":" << s.trace_id;
    os << ",\"args\":{\"span\":" << s.id << ",\"parent\":" << s.parent_id
       << ",\"kind\":\"" << kind_name(s.kind) << "\"";
    for (const auto& [k, v] : s.attrs) {
      os << ",\"";
      write_escaped(os, k);
      os << "\":\"";
      write_escaped(os, v);
      os << "\"";
    }
    if (s.open) os << ",\"unclosed\":true";
    os << "}}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const TraceCollector& collector) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f, collector);
  return f.good();
}

std::string trace_out_arg(int argc, char** argv) {
  constexpr const char* kPrefix = "--trace-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      return std::string(argv[i] + std::strlen(kPrefix));
    }
  }
  return "";
}

std::string path_with_tag(const std::string& path, const std::string& tag) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

}  // namespace rpcoib::trace
