#include "trace/critical_path.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

#include "metrics/table.hpp"

namespace rpcoib::trace {

namespace {

struct TreeIndex {
  const std::vector<Span>* spans = nullptr;
  // Children of each span, sorted by (start, id): the winner order for
  // overlap resolution.
  std::map<SpanId, std::vector<SpanId>> children;

  const Span& at(SpanId id) const { return (*spans)[id - 1]; }
};

TreeIndex build_index(const TraceCollector& collector) {
  TreeIndex idx;
  idx.spans = &collector.spans();
  for (const Span& s : collector.spans()) {
    if (s.parent_id != 0) idx.children[s.parent_id].push_back(s.id);
  }
  for (auto& [parent, kids] : idx.children) {
    std::sort(kids.begin(), kids.end(), [&](SpanId a, SpanId b) {
      const Span& sa = idx.at(a);
      const Span& sb = idx.at(b);
      return sa.start != sb.start ? sa.start < sb.start : a < b;
    });
  }
  return idx;
}

/// Attribute the window [ws, we) of span `id`: segments covered by a
/// child recurse into that child; uncovered segments accrue to the span's
/// own category. Children clipped to the window; overlapping children are
/// resolved in (start, id) order.
void attribute(const TreeIndex& idx, SpanId id, sim::Time ws, sim::Time we,
               Attribution& out) {
  if (we <= ws) return;
  const Span& s = idx.at(id);
  auto cit = idx.children.find(id);
  if (cit == idx.children.end()) {
    out.by_category[static_cast<std::size_t>(s.category)] += we - ws;
    return;
  }

  // Elementary segments: cut at every (clipped) child boundary.
  std::vector<sim::Time> cuts;
  cuts.push_back(ws);
  cuts.push_back(we);
  for (SpanId cid : cit->second) {
    const Span& c = idx.at(cid);
    const sim::Time cs = std::max(c.start, ws);
    const sim::Time ce = std::min(c.end, we);
    if (ce <= cs) continue;
    cuts.push_back(cs);
    cuts.push_back(ce);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const sim::Time a = cuts[i];
    const sim::Time b = cuts[i + 1];
    SpanId winner = 0;
    for (SpanId cid : cit->second) {  // already in (start, id) order
      const Span& c = idx.at(cid);
      if (c.start <= a && c.end >= b && c.end > c.start) {
        winner = cid;
        break;
      }
      if (c.start >= b) break;
    }
    if (winner != 0) {
      attribute(idx, winner, a, b, out);
    } else {
      out.by_category[static_cast<std::size_t>(s.category)] += b - a;
    }
  }
}

}  // namespace

Attribution attribute_time(const TraceCollector& collector, SpanId root_id) {
  Attribution a;
  const Span* root = nullptr;
  if (root_id != 0) {
    if (root_id <= collector.spans().size()) root = &collector.spans()[root_id - 1];
  } else {
    root = collector.longest_root();
  }
  if (root == nullptr) return a;
  a.root = root;
  const TreeIndex idx = build_index(collector);
  attribute(idx, root->id, root->start, root->end, a);
  return a;
}

void print_critical_path(std::ostream& os, const Attribution& a) {
  if (a.root == nullptr) {
    os << "(no spans recorded)\n";
    return;
  }
  const double total_us = sim::to_us(a.total());
  os << "Critical path for span '" << a.root->name << "' ("
     << metrics::Table::num(total_us, 1) << " us total):\n";
  metrics::Table t({"Category", "Time (us)", "Share"});
  // Most-expensive first; stable tie-break on category order.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < a.by_category.size(); ++i) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a.by_category[x] != a.by_category[y] ? a.by_category[x] > a.by_category[y]
                                                : x < y;
  });
  for (std::size_t i : order) {
    if (a.by_category[i] == 0) continue;
    const double us = sim::to_us(a.by_category[i]);
    t.row({category_name(static_cast<Category>(i)), metrics::Table::num(us, 1),
           metrics::Table::pct(total_us > 0 ? us / total_us * 100.0 : 0.0)});
  }
  t.row({"total attributed", metrics::Table::num(sim::to_us(a.attributed()), 1),
         metrics::Table::pct(total_us > 0 ? sim::to_us(a.attributed()) / total_us * 100.0
                                          : 0.0)});
  t.print(os);
}

void print_critical_path(std::ostream& os, const TraceCollector& collector,
                         SpanId root_id) {
  const Attribution a = attribute_time(collector, root_id);
  print_critical_path(os, a);
}

}  // namespace rpcoib::trace
