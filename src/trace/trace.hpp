// Deterministic distributed tracing over the DES virtual clock.
//
// Because every simulated node shares one discrete-event scheduler, the
// collector is an *exact* tracer: span timestamps are virtual nanoseconds,
// ids are dense counters, and the same seed yields a byte-identical trace.
// Spans parent across simulated hosts through TraceContext, which the RPC
// layer carries in-band in the call wire header (see context.hpp), so a
// client call, its server-side handler, and any downstream RPCs the
// handler issues assemble into one tree.
//
// Propagation discipline: the collector keeps a single-shot "ambient"
// parent slot. A caller arms it (`SpanScope::activate()` or
// `trace::activate`) and *immediately* co_awaits the RPC — the client
// consumes the slot synchronously before its first suspension, so no other
// coroutine can interleave. Server handlers receive the inbound context
// explicitly on DataInput::trace_context instead (no ambient races).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "trace/context.hpp"

namespace rpcoib::trace {

/// Where in the RPC topology the span sits (OpenTelemetry-flavored).
enum class Kind : std::uint8_t { kInternal = 0, kClient, kServer };

/// Critical-path category: where a span's *self time* (the part not
/// covered by child spans) is attributed.
enum class Category : std::uint8_t {
  kOther = 0,      // uninstrumented / scheduler gaps
  kSerialization,  // request/response (de)serialization
  kSend,           // send-side stream copies + syscall / verbs post
  kRecv,           // receive-side alloc + native->heap copy / RDMA read
  kQueue,          // server call-queue wait
  kHandler,        // server handler execution
  kWire,           // network wire + transport wait
  kBuffer,         // RPCoIB pool acquire / memory registration
  kCompute,        // application compute
  kDisk,           // modeled disk I/O
  kFault,          // attempts lost to injected faults (timeout/transport)
  kRetry,          // backoff waits between retry attempts
  kOverload,       // admission shedding, deadline drops, retry-cache dedup
  kStream,         // pipelined bulk streaming (chunk writes, credit waits)
  kSession,        // session lifecycle + reconnect recovery state machine
  kOneSided,       // one-sided READ fast path (issue, seqlock retry, fallback)
};
inline constexpr int kCategoryCount = 16;

const char* category_name(Category c);

using SpanId = std::uint64_t;  // 1-based index into the collector's store

struct Span {
  std::uint64_t trace_id = 0;
  SpanId id = 0;
  SpanId parent_id = 0;  // 0 = trace root
  std::string name;
  Kind kind = Kind::kInternal;
  Category category = Category::kOther;
  sim::Time start = 0;
  sim::Time end = 0;
  int host = -1;  // HostId; -1 = unknown
  bool open = true;
  std::vector<std::pair<std::string, std::string>> attrs;

  sim::Dur duration() const { return end >= start ? end - start : 0; }
};

/// Per-scheduler span store. Bind it to a Testbed (Testbed::set_tracer)
/// before the run; export or analyze after.
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Point at the scheduler whose clock stamps spans. Re-bind per run.
  void bind(sim::Scheduler* sched) { sched_ = sched; }

  /// Master switch. With `enabled() == false` every instrumentation site
  /// is a pointer test and the wire format is untouched.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Drop all spans and reset id counters (start of a fresh run).
  void clear();

  /// Open a span at the current virtual time. An invalid `parent` starts
  /// a new trace with this span as its root.
  SpanId begin_span(std::string name, Kind kind, Category cat, TraceContext parent,
                    int host);

  /// Record a span retroactively over [start, end] (queue waits and other
  /// intervals whose endpoints were observed before the span was known).
  SpanId add_complete(std::string name, Kind kind, Category cat, TraceContext parent,
                      int host, sim::Time start, sim::Time end);

  /// Close an open span at the current virtual time.
  void end_span(SpanId id);

  void annotate(SpanId id, std::string key, std::string value);

  /// Propagation token for `id` (what goes on the wire / into payloads).
  TraceContext context_of(SpanId id) const;

  // Single-shot ambient parent slot (see file comment for the discipline).
  TraceContext take_ambient() {
    TraceContext c = ambient_;
    ambient_ = TraceContext{};
    return c;
  }
  void set_ambient(TraceContext ctx) { ambient_ = ctx; }

  void set_host_name(int id, std::string name) { host_names_[id] = std::move(name); }
  const std::map<int, std::string>& host_names() const { return host_names_; }

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t open_count() const { return open_; }

  /// The root span (parent_id == 0) with the longest duration — the
  /// natural target for critical-path analysis of a job run.
  const Span* longest_root() const;

 private:
  sim::Scheduler* sched_ = nullptr;
  bool enabled_ = false;
  std::vector<Span> spans_;
  std::uint64_t next_trace_id_ = 1;
  std::size_t open_ = 0;
  TraceContext ambient_;
  std::map<int, std::string> host_names_;
};

/// Null-safe "is tracing live" filter for instrumentation sites:
/// `trace::TraceCollector* tr = trace::active(host.tracer());`
inline TraceCollector* active(TraceCollector* t) {
  return t != nullptr && t->enabled() ? t : nullptr;
}

/// Null-safe ambient arm; pair with an immediately following RPC call.
inline void activate(TraceCollector* t, TraceContext ctx) {
  if (t != nullptr && ctx.valid()) t->set_ambient(ctx);
}

/// RAII span. Inert when constructed with a null collector, so call sites
/// stay branch-free. Ends the span at destruction (which, for a coroutine
/// frame torn down by Scheduler::drain_tasks, is the final virtual time).
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(TraceCollector* tr, std::string name, Kind kind, Category cat,
            TraceContext parent, int host) {
    if (tr != nullptr && tr->enabled()) {
      tr_ = tr;
      id_ = tr->begin_span(std::move(name), kind, cat, parent, host);
    }
  }
  SpanScope(SpanScope&& o) noexcept : tr_(o.tr_), id_(o.id_) { o.tr_ = nullptr; }
  SpanScope& operator=(SpanScope&& o) noexcept {
    if (this != &o) {
      end();
      tr_ = o.tr_;
      id_ = o.id_;
      o.tr_ = nullptr;
    }
    return *this;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { end(); }

  explicit operator bool() const { return tr_ != nullptr; }

  void end() {
    if (tr_ != nullptr) {
      tr_->end_span(id_);
      tr_ = nullptr;
    }
  }

  TraceContext context() const { return tr_ != nullptr ? tr_->context_of(id_) : TraceContext{}; }

  /// Arm the ambient slot with this span as parent; the next RPC call
  /// (co_awaited immediately, with no suspension in between) adopts it.
  void activate() {
    if (tr_ != nullptr) tr_->set_ambient(context());
  }

  void annotate(std::string key, std::string value) {
    if (tr_ != nullptr) tr_->annotate(id_, std::move(key), std::move(value));
  }

 private:
  TraceCollector* tr_ = nullptr;
  SpanId id_ = 0;
};

}  // namespace rpcoib::trace
