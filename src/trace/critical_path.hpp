// Critical-path / time-attribution analysis over a completed span tree.
//
// Walks a root span (job, task, or single RPC) and attributes every
// virtual nanosecond of its wall time to exactly one Category, by a
// flattened-timeline sweep: at each instant the deepest active descendant
// span "owns" the time (ties: the earliest-starting, then lowest-id child
// wins); time no child covers belongs to the span's own category. By
// construction the per-category durations sum to the root span's duration,
// so the report always attributes 100% of end-to-end time.
#pragma once

#include <array>
#include <iosfwd>

#include "trace/trace.hpp"

namespace rpcoib::trace {

struct Attribution {
  std::array<sim::Dur, kCategoryCount> by_category{};
  const Span* root = nullptr;

  sim::Dur total() const { return root != nullptr ? root->duration() : 0; }
  sim::Dur attributed() const {
    sim::Dur sum = 0;
    for (sim::Dur d : by_category) sum += d;
    return sum;
  }
};

/// Attribute the tree under `root_id` (0 = the collector's longest root).
Attribution attribute_time(const TraceCollector& collector, SpanId root_id = 0);

/// Print the attribution as a table (categories, us, % of root).
void print_critical_path(std::ostream& os, const Attribution& a);

/// Convenience: analyze + print in one go.
void print_critical_path(std::ostream& os, const TraceCollector& collector,
                         SpanId root_id = 0);

}  // namespace rpcoib::trace
