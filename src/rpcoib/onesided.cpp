#include "rpcoib/onesided.hpp"

#include <cstring>

#include "sim/time.hpp"

namespace rpcoib::oib {

namespace {

void put_u64(net::Byte* p, std::uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void put_u32(net::Byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

OneSidedRegion::OneSidedRegion(verbs::VerbsStack& stack, verbs::ProtectionDomain& pd,
                               net::Address addr, OneSidedConfig cfg)
    : stack_(stack),
      pd_(pd),
      addr_(addr),
      cfg_(cfg),
      slots_(static_cast<std::size_t>(cfg.slots)),
      alive_(std::make_shared<bool>(true)) {
  export_region(static_cast<std::size_t>(cfg_.slot_payload));
}

OneSidedRegion::~OneSidedRegion() {
  *alive_ = false;
  withdraw();
  // The ProtectionDomain deregisters every export's region when it dies
  // (it owns the rkeys); in-flight READs racing that teardown surface as
  // failed completions via the verbs layer's resolve guard.
}

std::uint64_t OneSidedRegion::hash_key(const std::string& key) {
  // FNV-1a 64. The tag is also the direct-map index source; 0 is reserved
  // for "empty slot", so a (vanishingly unlikely) zero hash is nudged.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

net::Byte* OneSidedRegion::slot_ptr(std::size_t idx) {
  return retired_.back().backing.data() + idx * slot_stride();
}

void OneSidedRegion::fill_slot(std::size_t idx, std::uint64_t hash, net::ByteSpan payload,
                               std::uint64_t version) {
  net::Byte* s = slot_ptr(idx);
  put_u64(s, version);                        // v1
  put_u64(s + 8, generation_);                // generation
  put_u64(s + 16, hash);                      // key hash (0 = empty)
  put_u32(s + 24, static_cast<std::uint32_t>(payload.size()));
  put_u32(s + 28, 0);                         // reserved
  if (!payload.empty()) std::memcpy(s + kHeaderBytes, payload.data(), payload.size());
  put_u64(s + kHeaderBytes + payload_cap_, version);  // v2
}

void OneSidedRegion::export_region(std::size_t payload_cap) {
  // Poison the retired export first: generation word 0 in every slot, a
  // value no advertisement ever carries, so a READ issued against the old
  // rkey completes normally and fails closed on the generation check.
  if (!retired_.empty()) {
    Export& old = retired_.back();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      net::Byte* s = old.backing.data() + i * old.slot_bytes;
      put_u64(s + 8, 0);
    }
    ++reexports_;
  }
  payload_cap_ = payload_cap;
  ++generation_;
  Export ex;
  ex.slot_bytes = slot_stride();
  ex.backing.assign(slots_.size() * ex.slot_bytes, net::Byte{0});
  ex.mr = pd_.register_mr_untimed(
      net::MutByteSpan(ex.backing.data(), ex.backing.size()));
  retired_.push_back(std::move(ex));
  // Any open write window belonged to the retired buffer; its close
  // callback stands down on the generation check below. Reset the slot
  // version mirrors to match the zero-filled buffer, then refill every
  // entry synchronously — the buffer is not advertised yet, so no reader
  // can observe the fill mid-way.
  for (SlotState& st : slots_) {
    st.version = 2;
    st.window_open = false;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) fill_slot(i, 0, {}, 2);
  for (const auto& [key, payload] : entries_) {
    const std::uint64_t h = hash_key(key);
    const std::size_t idx = static_cast<std::size_t>(h % slots_.size());
    fill_slot(idx, h, payload, 2);
  }
  if (advertised_) advertise();
}

void OneSidedRegion::advertise() {
  verbs::OneSidedService svc;
  svc.host = retired_.back().mr.owner;
  svc.rkey = retired_.back().mr.rkey;
  svc.generation = generation_;
  svc.slots = static_cast<std::uint32_t>(slots_.size());
  svc.slot_bytes = static_cast<std::uint32_t>(slot_stride());
  stack_.onesided_advertise(addr_, svc);
  advertised_ = true;
}

void OneSidedRegion::withdraw() {
  if (!advertised_) return;
  stack_.onesided_withdraw(addr_);
  advertised_ = false;
}

void OneSidedRegion::publish(const std::string& key, net::ByteSpan payload) {
  entries_[key] = net::Bytes(payload.begin(), payload.end());
  ++published_;
  if (payload.size() > payload_cap_) {
    // Growth: double until the payload fits, re-export under a new rkey +
    // generation (the refill covers this entry), re-advertise.
    std::size_t cap = payload_cap_;
    while (cap < payload.size()) cap *= 2;
    export_region(cap);
    return;
  }
  const std::uint64_t h = hash_key(key);
  const std::size_t idx = static_cast<std::size_t>(h % slots_.size());
  SlotState& st = slots_[idx];
  st.staged_hash = h;
  st.staged_payload = entries_[key];
  if (st.window_open) return;  // the pending close writes the latest staging
  // Open the seqlock window: v1 goes odd now, the payload lands after the
  // write window elapses, v2/v1 close at the next even value. A reader
  // snapshotting in between sees the odd/unequal pair and retries.
  st.window_open = true;
  st.version += 1;
  put_u64(slot_ptr(idx), st.version);
  stack_.fabric().sched().call_at(
      stack_.fabric().sched().now() + sim::from_us(cfg_.write_window_us),
      [this, idx, gen = generation_, alive = alive_] {
        if (!*alive) return;
        close_window(idx, gen);
      });
}

void OneSidedRegion::close_window(std::size_t idx, std::uint64_t opened_generation) {
  SlotState& st = slots_[idx];
  if (opened_generation != generation_) {
    // A growth re-export retired the buffer this window was opened on and
    // already wrote the staged entry into the new one; nothing to close.
    return;
  }
  st.version += 1;
  fill_slot(idx, st.staged_hash, st.staged_payload, st.version);
  st.window_open = false;
}

}  // namespace rpcoib::oib
