// One-sided read plane: the server-side exported region (onesided.* knobs).
//
// Hot, read-mostly responses — NameNode block locations, HBase rows, YCSB
// hot keys — are published as serialized kResp payload bytes into a
// versioned, pre-registered native region of fixed-stride seqlock slots.
// Clients that cached the region's advertisement resolve eligible lookups
// with a single RDMA READ, bypassing the server's admission/handler chain
// entirely ("RDMA vs. RPC for Implementing Distributed Data Structures":
// one-sided wins exactly when the server CPU is the bottleneck).
//
// Slot layout (stride = 40 + payload capacity bytes, all words little-endian
// host order — both ends live in one simulated process):
//
//   [u64 v1][u64 generation][u64 key_hash][u32 len][u32 reserved]
//   [payload capacity bytes][u64 v2]
//
// Seqlock protocol: a slot is consistent iff v1 == v2 and v1 is even. The
// publisher opens a write window by bumping v1 to odd, copies the staged
// payload in after OneSidedConfig::write_window_us of simulated time, then
// closes with v2 = v1 = next even value. A reader that snapshots the window
// sees odd/unequal versions and retries (bounded) or falls back to RPC.
//
// Generation protocol: every export carries a generation (starting at 1,
// bumped on growth re-export). Live slots carry the current generation;
// empty slots carry it too (hash 0 = miss, not staleness). When the region
// is re-exported, every slot of the *retired* buffer has its generation
// word poisoned to 0 — a value no advertisement ever carries — and the
// buffer stays allocated and registered until the region dies, so a stale
// READ completes against real memory and fails closed on the generation
// check instead of faulting or reading recycled bytes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/bytes.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/wire.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib {

class OneSidedRegion final : public rpc::OneSidedPublisher {
 public:
  /// Bytes of slot metadata before the payload (v1, generation, key hash,
  /// length + reserved) and after it (v2).
  static constexpr std::size_t kHeaderBytes = 32;
  static constexpr std::size_t kTrailerBytes = 8;

  OneSidedRegion(verbs::VerbsStack& stack, verbs::ProtectionDomain& pd,
                 net::Address addr, OneSidedConfig cfg);
  ~OneSidedRegion() override;
  OneSidedRegion(const OneSidedRegion&) = delete;
  OneSidedRegion& operator=(const OneSidedRegion&) = delete;

  /// Publish the serialized response for `key` (empty payload = tombstone:
  /// the slot reads as a miss and clients fall back to RPC). Grows +
  /// re-exports the region when the payload outgrows the slot capacity.
  void publish(const std::string& key, net::ByteSpan payload) override;

  /// (Re-)advertise the current export on the stack's directory. The
  /// server calls this at start(); publish() re-advertises on growth.
  void advertise();
  /// Withdraw the advertisement (server stop). The export itself stays
  /// alive — in-flight READs still resolve and fail closed on generation.
  void withdraw();

  std::uint64_t generation() const { return generation_; }
  std::uint64_t published() const { return published_; }
  std::uint64_t reexports() const { return reexports_; }

  /// Direct-mapped slot index + the FNV-1a tag stored in the slot header.
  static std::uint64_t hash_key(const std::string& key);

 private:
  struct Export {
    net::Bytes backing;
    verbs::MemoryRegion mr;
    std::size_t slot_bytes = 0;
  };
  struct SlotState {
    std::uint64_t version = 2;   // even = closed; mirrors the in-slot words
    bool window_open = false;
    std::uint64_t staged_hash = 0;
    net::Bytes staged_payload;
  };

  std::size_t slot_stride() const { return kHeaderBytes + payload_cap_ + kTrailerBytes; }
  net::Byte* slot_ptr(std::size_t idx);
  /// Allocate + register a fresh buffer of `payload_cap` slots, fill it
  /// from entries_, poison the retired export, bump the generation.
  void export_region(std::size_t payload_cap);
  /// Write one slot's words + payload in place (no window; used to fill a
  /// buffer that is not yet advertised, and by the window-close callback).
  void fill_slot(std::size_t idx, std::uint64_t hash, net::ByteSpan payload,
                 std::uint64_t version);
  void close_window(std::size_t idx, std::uint64_t opened_generation);

  verbs::VerbsStack& stack_;
  verbs::ProtectionDomain& pd_;
  net::Address addr_;
  OneSidedConfig cfg_;
  std::size_t payload_cap_ = 0;
  std::uint64_t generation_ = 0;
  /// Authoritative entry set: the refill source on growth re-export.
  std::map<std::string, net::Bytes> entries_;
  std::vector<SlotState> slots_;
  /// Current export is retired_.back(); earlier entries are poisoned but
  /// stay allocated + registered so stale READs fail closed.
  std::vector<Export> retired_;
  std::uint64_t published_ = 0;
  std::uint64_t reexports_ = 0;
  bool advertised_ = false;
  /// Stand-down token for scheduled window closes outliving the region.
  std::shared_ptr<bool> alive_;
};

}  // namespace rpcoib::oib
