// RPCoIB client (paper Section III).
//
// Same RpcClient interface as the socket path, but:
//  * connection bootstrap exchanges QP info over the server's socket
//    address, then all traffic is native IB (Section III-D),
//  * serialization goes straight into a pre-registered pooled buffer via
//    RDMAOutputStream (JVM-bypass, Section III-B),
//  * the buffer is sized by the <protocol, method> history (Section III-C),
//  * eager SEND below the threshold, RDMA-READ rendezvous above it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "rpc/rpc.hpp"
#include "rpc/socket_client.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/rdma_streams.hpp"
#include "rpcoib/wire.hpp"
#include "sim/sync.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib {

struct RdmaClientConfig {
  std::size_t eager_threshold = WireDefaults::kEagerThreshold;
  std::size_t recv_buf_size = WireDefaults::kRecvBufSize;
  int recv_depth = WireDefaults::kRecvDepth;
  PoolConfig pool{};
  /// When the QP bootstrap exchange fails (a verbs-level error, not a dead
  /// server), permanently reroute that address to plain socket RPC on the
  /// server's companion listener — the paper's `rpc.ib.enabled` escape
  /// hatch, preserving Java-socket error semantics.
  bool fallback_to_socket = true;
  /// UD datagram eager path (default off): sub-MTU eager calls ride
  /// connectionless datagrams into the server's fixed UD endpoint pool;
  /// RC QPs are bootstrapped only for rendezvous-sized calls. UD is
  /// lossy — run sessions + a retry policy for exactly-once delivery.
  UdConfig ud{};
  /// One-sided read plane (default off): eligible Get/lookup calls are
  /// resolved by RDMA READ against the server's advertised seqlock
  /// region, falling back to plain RPC on miss/conflict/stale generation.
  OneSidedConfig onesided{};
};

class RdmaRpcClient final : public rpc::RpcClient {
 public:
  RdmaRpcClient(cluster::Host& host, net::SocketTable& sockets, verbs::VerbsStack& stack,
                RdmaClientConfig cfg = {});
  ~RdmaRpcClient() override;

  cluster::Host& host() const override { return host_; }
  ShadowPool& pool() { return shadow_; }
  const RdmaClientConfig& config() const { return cfg_; }

  void close_connections();

  /// Addresses currently rerouted to socket mode after a bootstrap failure.
  std::size_t fallback_address_count() const { return fallback_addrs_.size(); }

 protected:
  sim::Co<void> call_attempt(net::Address addr, const rpc::MethodKey& key,
                             const rpc::Writable& param, rpc::Writable* response,
                             std::uint64_t call_id, bool retried) override;

 private:
  /// Reconnect recovery state machine (unified with the socket client; see
  /// DESIGN.md §13). kConnecting while the bootstrap exchange runs,
  /// kHealthy once the QP is paired and receives are posted, kTornDown
  /// after a failure (stale QP found on reuse, a post into an errored QP,
  /// or an injected kill) failed every pending call over to the retry
  /// loop. Re-bootstrap is the next get_connection(); the durable session
  /// id carried in the bootstrap blob makes the replay exactly-once.
  enum class Recovery : std::uint8_t { kConnecting, kHealthy, kTornDown };
  struct PendingCall {
    explicit PendingCall(sim::Scheduler& s) : done(s) {}
    sim::SimEvent done;
    net::ByteSpan resp;          // full kResp frame
    NativeBuffer* resp_buf = nullptr;
    bool resp_is_recv_slot = false;  // repost vs release-to-pool
    /// Leased rendezvous source, tracked here (not in a call-frame local)
    /// so fail_all() can return it to the pool on connection teardown.
    NativeBuffer* rendezvous_buf = nullptr;
    bool nacked = false;  // server refused the rendezvous (pool exhausted)
    bool transport_error = false;
    std::string error_msg;
  };

  struct Connection {
    Connection(sim::Scheduler& s, const rpc::BatchConfig& batch)
        : cq(s), ready(s), batcher(batch) {}
    verbs::QueuePairPtr qp;
    verbs::CompletionQueue cq;  // shared send+recv CQ for this connection
    sim::SimEvent ready;
    bool broken = false;
    // Set by close_connections() before the CQ closes: the receive loop,
    // fetch tasks and flush timers check it after every resumption instead
    // of touching the (possibly destroyed) client or its pool.
    bool cancelled = false;
    // Negotiated per-connection eager/rendezvous switch point:
    // min(local, peer-advertised) from the bootstrap handshake, so an
    // eager SEND always fits the peer's pre-posted receive buffers.
    std::size_t eager_threshold = 0;
    Recovery recovery = Recovery::kConnecting;
    rpc::CallBatcher batcher;  // small-call coalescing (BatchConfig)
    // First traced call of the open batch; parents the batch.flush span.
    trace::TraceContext batch_ctx;
    std::map<std::uint64_t, PendingCall*> pending;
    // RDMA-READ completions are routed from receive_loop to the fetch
    // task that posted them, keyed by an odd wr_id token (buffer-pointer
    // wr_ids are even addresses, so the spaces can't collide).
    std::map<std::uint64_t, sim::SimEvent*> read_waiters;
    std::uint64_t next_read_token = 1;
    // Tokens whose READ completed with a non-zero status (remote region
    // torn down mid-flight); the waiter checks-and-erases after waking.
    std::set<std::uint64_t> read_errors;
  };

  // Connections are shared-owned: the map, the receive loop, and every
  // in-flight call hold references, so close_connections() can drop the
  // map without freeing state that already-posted wakeups still touch.
  using ConnectionPtr = std::shared_ptr<Connection>;

  /// Connectionless UD state, shared across every server address: one
  /// endpoint + CQ, a receive loop, and the call-id -> waiter map (call
  /// ids are client-unique, so no per-destination demux is needed).
  /// Shared-owned like Connection so the loop outlives close_connections.
  struct UdState {
    explicit UdState(sim::Scheduler& s) : cq(s) {}
    verbs::CompletionQueue cq;
    std::unique_ptr<verbs::UdEndpoint> ep;
    bool cancelled = false;
    std::map<std::uint64_t, PendingCall*> pending;
  };
  using UdStatePtr = std::shared_ptr<UdState>;
  /// Per-destination UD batch state: kBatch frames ride UD too, clamped
  /// to the datagram budget instead of the negotiated RC threshold.
  struct UdDest {
    explicit UdDest(const rpc::BatchConfig& batch) : batcher(batch) {}
    rpc::CallBatcher batcher;
    trace::TraceContext batch_ctx;
  };

  sim::Co<ConnectionPtr> get_connection(net::Address addr);
  sim::Task receive_loop(ConnectionPtr conn);
  sim::Task fetch_response(ConnectionPtr conn, std::uint32_t rkey, std::uint64_t off,
                           std::uint32_t len);
  /// Buffer one serialized eager kCall frame; flushes inline when a limit
  /// fills, otherwise arms the adaptive-linger timer on first append.
  sim::Co<void> append_to_batch(ConnectionPtr conn, net::Bytes payload,
                                const trace::TraceContext& ctx);
  /// Post everything buffered as one kBatch SEND (pooled source buffer,
  /// released at the kSend completion like any eager frame).
  sim::Co<void> flush_batch(ConnectionPtr conn);
  /// Delayed flush armed per batch; stands down if `epoch` already flushed.
  sim::Task batch_timer(ConnectionPtr conn, std::uint64_t epoch, sim::Dur linger);
  void deliver_response(const ConnectionPtr& conn, net::ByteSpan frame, NativeBuffer* buf,
                        bool is_recv_slot);
  void repost_recv(const ConnectionPtr& conn, NativeBuffer* buf);
  void fail_all(Connection& conn, const std::string& why);
  void release_rendezvous(PendingCall& pc);
  /// Count one recovery-FSM activation and emit its kSession trace span.
  /// No-op with sessions disabled (the knob gates all reconnect rows).
  void note_reconnect(rpc::ReconnectCause cause);
  /// Full mid-call teardown: reclaim posted receive slots, break the QP,
  /// fail pending calls over to the retry loop and drop the map entry.
  /// The CQ stays OPEN: completions already scheduled (the just-posted
  /// kSend, in-flight READs, stale responses) must still be reaped by the
  /// receive loop so their pooled buffers go back — the pool stays
  /// balanced across a kill.
  void teardown_connection(const ConnectionPtr& conn, net::Address addr,
                           rpc::ReconnectCause cause, const std::string& why);
  sim::Co<void> call_via_fallback(net::Address addr, const rpc::MethodKey& key,
                                  const rpc::Writable& param, rpc::Writable* response);

  /// One attempt over the one-sided read plane. Returns true iff the call
  /// was fully served by an RDMA READ (seqlock-consistent, generation
  /// fresh, key present); false degrades to the normal RPC path. Every
  /// false return has released its staging lease — the pool stays
  /// balanced across all fallback causes.
  sim::Co<bool> call_attempt_onesided(net::Address addr, const rpc::MethodKey& key,
                                      const rpc::Writable& param,
                                      rpc::Writable* response,
                                      trace::TraceCollector* tr,
                                      const trace::TraceContext& t_parent);

  /// Lazily create the client UD endpoint (+ ring + receive loop).
  UdStatePtr ud_state();
  sim::Task ud_receive_loop(UdStatePtr ud);
  /// Largest serialized datagram (kUdCall wrapper included) the UD path
  /// accepts; anything bigger falls back to the RC path.
  std::size_t ud_budget() const;
  /// Endpoint selection by RpcIdentifier{session, call}: spreads one
  /// client's calls across the fixed server pool statelessly.
  verbs::AddressHandle ud_target(const verbs::UdService& svc, std::uint64_t sid,
                                 std::uint64_t call_id) const;
  /// One attempt over the UD path. Returns false (nothing sent) when the
  /// call exceeds the datagram budget or the pool refused the
  /// serialization lease — the caller falls through to the RC path.
  sim::Co<bool> call_attempt_ud(net::Address addr, const verbs::UdService& svc,
                                const rpc::MethodKey& key, const rpc::Writable& param,
                                rpc::Writable* response, std::uint64_t call_id,
                                bool retried, trace::TraceCollector* tr,
                                const trace::TraceContext& t_parent);
  sim::Co<void> ud_append_to_batch(UdStatePtr ud, net::Address addr, net::Bytes payload,
                                   const trace::TraceContext& ctx);
  sim::Co<void> ud_flush_batch(UdStatePtr ud, net::Address addr);
  sim::Task ud_batch_timer(UdStatePtr ud, net::Address addr, std::uint64_t epoch,
                           sim::Dur linger);

  sim::Task init_pool_task();

  cluster::Host& host_;
  net::SocketTable& sockets_;
  verbs::VerbsStack& stack_;
  verbs::ConnectionManager cm_;
  RdmaClientConfig cfg_;
  NativeBufferPool native_;
  ShadowPool shadow_;
  sim::SimEvent pool_ready_;
  std::map<net::Address, std::shared_ptr<Connection>> connections_;
  UdStatePtr ud_;
  std::map<net::Address, std::unique_ptr<UdDest>> ud_dests_;
  // Cached one-sided advertisements, fetched once per address (the
  // bootstrap-time exchange) and refreshed only when a READ fails the
  // generation check — a server re-export must be detected, never assumed.
  std::map<net::Address, verbs::OneSidedService> onesided_cache_;
  // Socket-mode fallback after a failed bootstrap exchange (sticky per
  // address until close_connections()).
  std::set<net::Address> fallback_addrs_;
  std::unique_ptr<rpc::SocketRpcClient> fallback_;
};

}  // namespace rpcoib::oib
