// RDMAOutputStream / RDMAInputStream (paper Section III-A/III-B, Fig. 2).
//
// Java-IO-compatible streams whose backing storage is a pre-registered
// native buffer from the two-level pool. Serialization writes land
// directly in RDMA-accessible memory: no JVM-heap intermediate, no
// serialize-then-copy, no heap->native copy at send time. When the buffer
// fills, the stream re-gets a doubled buffer from the pool (the warm path
// never does this, thanks to message size locality).
#pragma once

#include <cstring>
#include <string>

#include "rpc/writable.hpp"
#include "rpcoib/buffer_pool.hpp"

namespace rpcoib::oib {

class RDMAOutputStream final : public rpc::DataOutput {
 public:
  /// Acquires the initial buffer via the shadow pool's history for `key`.
  RDMAOutputStream(const cluster::CostModel& cm, ShadowPool& pool, rpc::MethodKey key)
      : rpc::DataOutput(cm), pool_(pool), key_(std::move(key)) {
    buf_ = pool_.acquire_for(key_);
    // Pool acquire is a freelist pop, amortizing the registration done at
    // library load — orders of magnitude below a JVM allocation.
    accrue(sim::from_us(kAcquireUs));
  }

  ~RDMAOutputStream() override {
    // Streams normally hand the buffer to the transport via take_buffer();
    // if serialization failed mid-way, return it without history update.
    if (buf_ != nullptr) pool_.release(buf_);
  }

  void write_raw(net::ByteSpan bs) override {
    while (count_ + bs.size() > buf_->span.size()) regrow(count_ + bs.size());
    std::memcpy(buf_->span.data() + count_, bs.data(), bs.size());
    accrue(cost_model().direct_copy(bs.size()));
    count_ += bs.size();
  }

  net::ByteSpan data() const { return net::ByteSpan(buf_->span.data(), count_); }
  std::size_t length() const { return count_; }
  const verbs::MemoryRegion& mr() const { return buf_->mr; }

  /// Times the stream had to re-get a larger buffer (the RPCoIB analogue
  /// of Algorithm 1's "memory adjustment"; ~0 on the warm path).
  std::uint64_t regets() const { return regets_; }

  /// Detach the buffer for the transport to own until the call completes.
  /// The caller must eventually `finish()` it back to the pool.
  NativeBuffer* take_buffer() {
    NativeBuffer* b = buf_;
    buf_ = nullptr;
    return b;
  }

  /// Return a taken buffer to the pool, updating the size history.
  void finish(NativeBuffer* b) { pool_.release_for(key_, b, count_); }

  const rpc::MethodKey& key() const { return key_; }

  static constexpr double kAcquireUs = 0.15;

 private:
  void regrow(std::size_t need) {
    // Mid-serialization grows honor demand_alloc_cap exactly like the
    // server's rendezvous fetch: a capped-out pool refuses the re-get
    // instead of expanding registered native memory without bound, and
    // callers degrade (client: socket fallback; server: retryable busy).
    const std::size_t want = std::max(need, buf_->span.size() * 2);
    NativeBuffer* bigger = pool_.try_acquire_sized(want);
    if (bigger == nullptr) {
      throw PoolExhaustedError("buffer pool exhausted re-getting " +
                               std::to_string(want) + " bytes for " + key_.protocol + "." +
                               key_.method);
    }
    std::memcpy(bigger->span.data(), buf_->span.data(), count_);
    accrue(cost_model().direct_copy(count_) + sim::from_us(kAcquireUs));
    pool_.release(buf_);
    buf_ = bigger;
    ++regets_;
  }

  ShadowPool& pool_;
  rpc::MethodKey key_;
  NativeBuffer* buf_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t regets_ = 0;
};

/// Reads directly from a registered native buffer — the receive side of
/// Fig. 2. No per-call heap allocation, no native->heap copy: the paper's
/// Section II-B bottleneck is structurally absent.
class RDMAInputStream final : public rpc::DataInput {
 public:
  RDMAInputStream(const cluster::CostModel& cm, net::ByteSpan data)
      : rpc::DataInput(cm), data_(data) {}

  void read_raw(net::MutByteSpan out) override {
    if (out.size() > remaining()) throw rpc::SerializationError("read past end of RDMA buffer");
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  std::size_t remaining() const override { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  net::ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace rpcoib::oib
