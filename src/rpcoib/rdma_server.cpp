#include "rpcoib/rdma_server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "trace/trace.hpp"

namespace rpcoib::oib {

namespace {

struct ControlFrame {
  net::Byte bytes[17];
  std::size_t len = 0;

  static ControlFrame make(FrameType t, std::uint32_t rkey, std::uint64_t off,
                           std::uint32_t payload_len) {
    ControlFrame f;
    f.bytes[0] = static_cast<net::Byte>(t);
    std::memcpy(f.bytes + 1, &rkey, 4);
    std::memcpy(f.bytes + 5, &off, 8);
    std::memcpy(f.bytes + 13, &payload_len, 4);
    f.len = 17;
    return f;
  }
  net::ByteSpan span() const { return net::ByteSpan(bytes, len); }
};

void parse_control(net::ByteSpan frame, std::uint32_t& rkey, std::uint64_t& off,
                   std::uint32_t& len) {
  std::memcpy(&rkey, frame.data() + 1, 4);
  std::memcpy(&off, frame.data() + 5, 8);
  std::memcpy(&len, frame.data() + 13, 4);
}

std::uint32_t parse_ack(net::ByteSpan frame) {
  std::uint32_t rkey = 0;
  std::memcpy(&rkey, frame.data() + 1, 4);
  return rkey;
}

/// 5-byte rendezvous refusal: [u8 kNack][u32 rkey of the refused source].
ControlFrame make_nack(std::uint32_t rkey) {
  ControlFrame f;
  f.bytes[0] = static_cast<net::Byte>(FrameType::kNack);
  std::memcpy(f.bytes + 1, &rkey, 4);
  f.len = 5;
  return f;
}

/// Header fields of a kCall frame, pre-parsed at admission time so the
/// gate can shed with a well-formed busy response before a handler ever
/// sees the call. Bookkeeping only — no cost is charged for this pass.
struct CallHeader {
  bool ok = false;
  std::uint64_t id = 0;
  bool retried = false;  // kWireRetryFlag: a client retry attempt
  sim::Time deadline = 0;
  trace::TraceContext ctx;
  rpc::MethodKey key;
};

/// kUdCall wrapper: [u8 type][u64 session id, big-endian][inner frame].
inline constexpr std::size_t kUdHeaderBytes = 9;

CallHeader parse_call_header(const cluster::CostModel& cm, net::ByteSpan frame) {
  CallHeader h;
  RDMAInputStream in(cm, frame);
  try {
    (void)in.read_u8();  // frame type
    h.id = in.read_u64();
    if ((h.id & trace::kWireTraceFlag) != 0) {
      h.ctx.trace_id = in.read_u64();
      h.ctx.span_id = in.read_u64();
    }
    if ((h.id & trace::kWireDeadlineFlag) != 0) h.deadline = in.read_u64();
    h.retried = (h.id & trace::kWireRetryFlag) != 0;
    h.id &= trace::kWireIdMask;
    h.key.protocol = in.read_text();
    h.key.method = in.read_text();
    h.ok = true;
  } catch (const std::exception&) {
    // Garbage header (client reused a rendezvous source after timing out).
  }
  return h;
}

}  // namespace

RdmaRpcServer::RdmaRpcServer(cluster::Host& host, net::SocketTable& sockets,
                             verbs::VerbsStack& stack, net::Address addr,
                             RdmaServerConfig cfg)
    : host_(host),
      sockets_(sockets),
      stack_(stack),
      cm_(stack, sockets),
      addr_(addr),
      cfg_(cfg),
      native_(host, stack, cfg.pool),
      shadow_(native_) {
  // Pre-posted receive buffers must hold any eager frame plus headers.
  cfg_.recv_buf_size = std::max(cfg_.recv_buf_size, cfg_.eager_threshold + 512);
  if (cfg_.shards < 1) cfg_.shards = 1;
}

RdmaRpcServer::~RdmaRpcServer() { stop(); }

void RdmaRpcServer::start() {
  if (running_) return;
  running_ = true;
  alive_ = std::make_shared<bool>(true);
  // Retire (never destroy) the previous run's shards: their reader and
  // handler loops are still suspended on the closed channels and exit only
  // when the scheduler runs the wakes stop() posted.
  for (auto& shard : shards_) retired_shards_.push_back(std::move(shard));
  shards_.clear();
  const int n = cfg_.shards;
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(
        host_.sched(), static_cast<std::uint32_t>(i), overload_,
        rpc::shard_seed(host_.id(), static_cast<std::uint32_t>(i)), session_);
    if (cfg_.pool.srq_depth > 0) {
      // Stripe the shared ring: each shard owns srq_depth / n slots (the
      // remainder spread over the low shards, never below one) and refills
      // at a proportionally scaled watermark. One shard keeps the exact
      // configured geometry.
      if (n == 1) {
        shard->srq_depth = cfg_.pool.srq_depth;
        shard->srq_low_watermark = cfg_.pool.srq_low_watermark;
      } else {
        const std::size_t ui = static_cast<std::size_t>(i);
        shard->srq_depth = std::max<std::size_t>(
            1, cfg_.pool.srq_depth / n + (ui < cfg_.pool.srq_depth % n ? 1 : 0));
        shard->srq_low_watermark = std::min(
            shard->srq_depth,
            std::max<std::size_t>(1, cfg_.pool.srq_low_watermark / n +
                                         (ui < cfg_.pool.srq_low_watermark % n ? 1 : 0)));
      }
      shard->srq = std::make_unique<verbs::SharedReceiveQueue>(host_.sched());
      shard->srq->set_stall_counter(&shard->pipeline.stats().srq_rnr_stalls);
    }
    shards_.push_back(std::move(shard));
    if (shards_.back()->srq) host_.sched().spawn(srq_refill_loop(*shards_.back()));
  }
  if (cfg_.srq_idle_evict > 0) host_.sched().spawn(idle_evict_loop());
  if (cfg_.ud.enabled) {
    // Rebuild the fixed UD endpoint pool. Endpoints from a previous run
    // fold their drop counts into the base first so ud_rx_dropped stays
    // monotonic across restarts.
    for (const auto& ep : ud_eps_) {
      if (ep) ud_rx_dropped_base_ += ep->rx_dropped();
    }
    ud_eps_.clear();
    if (ud_cq_) retired_ud_cqs_.push_back(std::move(ud_cq_));
    ud_cq_ = std::make_unique<verbs::CompletionQueue>(host_.sched());
    verbs::UdService svc;
    svc.host = host_.id();
    const int n_eps = std::max(1, cfg_.ud.server_endpoints);
    for (int i = 0; i < n_eps; ++i) {
      auto ep = std::make_unique<verbs::UdEndpoint>(stack_, host_, *ud_cq_, *ud_cq_);
      // kRecv completions name the endpoint, so the responder can reply
      // from the QPN the client targeted.
      ep->set_context(static_cast<std::uint64_t>(i));
      svc.qpns.push_back(ep->qpn());
      ud_eps_.push_back(std::move(ep));
    }
    // Fill the rings BEFORE advertising: UD has no bootstrap handshake to
    // order a client's first datagram after the server's buffer setup (RC
    // rings hide behind accept()), so an advertise-first start would race
    // the listener's pool registration and silently drop early calls. The
    // rings are the datagram analogue of the SRQ stripes: a fixed
    // pre-registered footprint that never grows with client count. An
    // arrival overrunning the ring drops silently (no RNR on UD); the
    // client's session/retry layer re-sends it.
    const std::size_t slot = verbs::UdEndpoint::kGrhBytes + verbs::UdEndpoint::kMtu;
    for (auto& ep : ud_eps_) {
      for (int i = 0; i < cfg_.ud.recv_depth; ++i) {
        NativeBuffer* b = native_.acquire(slot);
        ep->post_recv(reinterpret_cast<std::uint64_t>(b), b->span);
        ud_ring_bytes_ += b->span.size();
      }
    }
    if (ud_ring_bytes_ > ud_ring_bytes_peak_) ud_ring_bytes_peak_ = ud_ring_bytes_;
    stack_.ud_advertise(addr_, std::move(svc));
    host_.sched().spawn(ud_reader_loop());
  }
  if (cfg_.onesided.enabled) {
    // The region (and everything published into it) survives restarts;
    // only the advertisement is withdrawn at stop() and renewed here.
    if (!onesided_region_) {
      onesided_region_ = std::make_unique<OneSidedRegion>(stack_, native_.pd(), addr_,
                                                          cfg_.onesided);
    }
    onesided_region_->advertise();
  }
  listener_ = &sockets_.listen(addr_);
  host_.sched().spawn(listener_loop());
  for (auto& shard : shards_) host_.sched().spawn(reader_loop(*shard));
  // Handlers split across shards (every shard keeps at least one); with
  // one shard the ids and spawn order are exactly the unsharded server's.
  int handler_id = 0;
  for (int i = 0; i < n; ++i) {
    int mine = cfg_.num_handlers / n + (i < cfg_.num_handlers % n ? 1 : 0);
    if (mine < 1) mine = 1;
    for (int h = 0; h < mine; ++h) {
      host_.sched().spawn(handler_loop(*shards_[static_cast<std::size_t>(i)], handler_id++));
    }
  }
  if (cfg_.socket_fallback) {
    fallback_ = std::make_unique<rpc::SocketRpcServer>(
        host_, sockets_,
        net::Address{addr_.host,
                     static_cast<std::uint16_t>(addr_.port + kSocketFallbackPortOffset)},
        cfg_.num_handlers, 1, cfg_.shards, cfg_.steal);
    for (const auto& [key, handler] : dispatcher_.all()) {
      fallback_->dispatcher().register_method(key.protocol, key.method, handler);
    }
    // The fallback path must shed under the same policy as the RDMA path,
    // or overload would simply migrate to the companion listener.
    fallback_->set_overload(overload_);
    fallback_->set_batch(batch_);
    fallback_->set_session(session_);
    fallback_->start();
  }
}

void RdmaRpcServer::stop() {
  if (!running_) return;
  running_ = false;
  if (alive_) *alive_ = false;  // detached flush timers stand down
  sockets_.unlisten(addr_);
  listener_ = nullptr;
  // Return every pooled buffer the data path still holds — queued call
  // frames, unacked rendezvous response sources, and pre-posted receive
  // slots — so acquires and releases balance across a stop. The dropped
  // calls' clients observe a transport error when the QPs disconnect.
  for (auto& shard : shards_) {
    for (ServerCall& call : shard->pipeline.drain()) native_.release(call.buf);
  }
  for (auto& shard : shards_) {
    for (auto& [rkey, buf] : shard->pending_resp) native_.release(buf);
    shard->pending_resp.clear();
  }
  for (auto& shard : shards_) {
    if (shard->srq) {
      for (std::uint64_t wr : shard->srq->drain_posted_recvs()) {
        native_.release(reinterpret_cast<NativeBuffer*>(wr));
      }
      shard->srq->close();  // wakes the refill loop into its ChannelClosed exit
    }
  }
  for (auto& [id, c] : conns_) {
    if (c->batcher && !c->batcher->empty()) {
      // Finished responses still lingering in the coalescer die with the
      // server; account for them so teardown losses are never silent.
      shard_of(*c).pipeline.stats().responses_dropped_on_stop +=
          c->batcher->take().size();
    }
    if (c->qp) {
      for (std::uint64_t wr : c->qp->drain_posted_recvs()) {
        native_.release(reinterpret_cast<NativeBuffer*>(wr));  // legacy rings
      }
      c->qp->set_srq(nullptr);
      c->qp->disconnect();
    }
  }
  for (auto& shard : shards_) shard->ring_bytes = 0;
  if (ud_cq_) {
    stack_.ud_withdraw(addr_);
    for (auto& ep : ud_eps_) {
      for (std::uint64_t wr : ep->drain_posted_recvs()) {
        native_.release(reinterpret_cast<NativeBuffer*>(wr));
      }
    }
    ud_ring_bytes_ = 0;
    // Close but keep the CQ and endpoints alive (like the fallback
    // listener): kSend completions for datagrams already in flight still
    // land here when they fire, on a closed-but-live queue.
    ud_cq_->close();
  }
  if (onesided_region_) onesided_region_->withdraw();
  for (auto& shard : shards_) {
    if (shard->cq) shard->cq->close();
  }
  for (auto& shard : shards_) shard->pipeline.close();
  // Stop but do not destroy the fallback listener: closing its queues only
  // *schedules* the suspended handler loops, which still read the queues
  // when they resume. The object lives until this server is destroyed.
  if (fallback_) fallback_->stop();
}

rpc::RpcStats& RdmaRpcServer::stats() {
  sync_stats();
  return stats_;
}

const rpc::RpcStats& RdmaRpcServer::stats() const {
  const_cast<RdmaRpcServer*>(this)->sync_stats();
  return stats_;
}

void RdmaRpcServer::sync_stats() {
  if (shards_.empty()) return;
  rpc::RpcStats agg;
  std::uint64_t ring_peak_sum = 0;
  for (const auto& shard : shards_) {
    agg.merge_resilience(shard->pipeline.stats());
    agg.calls_handled += shard->pipeline.stats().calls_handled;
    agg.recv_alloc_us.merge(shard->pipeline.stats().recv_alloc_us);
    agg.recv_total_us.merge(shard->pipeline.stats().recv_total_us);
    ring_peak_sum += shard->pipeline.stats().recv_ring_bytes_peak;
    agg.shards.push_back(shard->pipeline.counters());
  }
  // Only the shard-sourced fields are overwritten; anything written
  // directly to stats_ by non-shard code (threshold_mismatches from the
  // Listener's handshake) stays untouched.
  stats_.calls_handled = agg.calls_handled;
  stats_.calls_shed = agg.calls_shed;
  stats_.calls_expired = agg.calls_expired;
  stats_.responses_expired = agg.responses_expired;
  stats_.dedup_hits = agg.dedup_hits;
  stats_.dedup_in_flight = agg.dedup_in_flight;
  stats_.dropped_on_stop = agg.dropped_on_stop;
  stats_.responses_dropped_on_stop = agg.responses_dropped_on_stop;
  stats_.pool_nacks = agg.pool_nacks;
  stats_.queue_depth_peak = agg.queue_depth_peak;
  stats_.sessions_opened = agg.sessions_opened;
  stats_.sessions_expired = agg.sessions_expired;
  stats_.sessions_evicted = agg.sessions_evicted;
  stats_.sessions_rejected = agg.sessions_rejected;
  stats_.session_table_peak = agg.session_table_peak;
  stats_.batches_received = agg.batches_received;
  stats_.batched_calls_received = agg.batched_calls_received;
  stats_.response_batches = agg.response_batches;
  stats_.batched_responses = agg.batched_responses;
  stats_.srq_posted = agg.srq_posted;
  stats_.srq_refills = agg.srq_refills;
  stats_.srq_rnr_stalls = agg.srq_rnr_stalls;
  stats_.srq_evictions = agg.srq_evictions;
  stats_.ud_calls_received = agg.ud_calls_received;
  stats_.ud_responses_sent = agg.ud_responses_sent;
  stats_.ud_resp_oversize = agg.ud_resp_oversize;
  std::uint64_t ud_rx = ud_rx_dropped_base_;
  for (const auto& ep : ud_eps_) {
    if (ep) ud_rx += ep->rx_dropped();
  }
  stats_.ud_rx_dropped = ud_rx;
  // Region counters are assignments (not +=) so repeated syncs stay
  // idempotent like the shard-sourced fields.
  stats_.onesided_published = onesided_region_ ? onesided_region_->published() : 0;
  stats_.onesided_reexports = onesided_region_ ? onesided_region_->reexports() : 0;
  // The stripes post independently, so the server-wide registered-memory
  // footprint is the sum of the per-stripe peaks (exact at one shard).
  // The UD rings are one more fixed stripe on top.
  stats_.recv_ring_bytes_peak = ring_peak_sum + ud_ring_bytes_peak_;
  stats_.recv_alloc_us = agg.recv_alloc_us;
  stats_.recv_total_us = agg.recv_total_us;
  stats_.shards = std::move(agg.shards);
}

void RdmaRpcServer::touch_session(Shard& shard, std::uint64_t session_id, bool retried,
                                  std::uint64_t call_id) {
  if (!session_.enabled || session_id == 0) return;
  const rpc::SessionTable::TouchResult r = shard.sessions.touch(
      session_id, host_.sched().now(), /*open_if_missing=*/!retried, call_id);
  rpc::RpcStats& st = shard.pipeline.stats();
  if (r.opened) ++st.sessions_opened;
  st.sessions_expired += r.expired.size();
  st.sessions_evicted += r.evicted.size();
  if (shard.sessions.peak() > st.session_table_peak) {
    st.session_table_peak = shard.sessions.peak();
  }
  // A dead session's retry-cache entries go with it — the dedup promise
  // is scoped to the lease, and the space bound depends on the purge.
  if (rpc::RetryCache* cache = shard.pipeline.retry_cache()) {
    for (const std::uint64_t sid : r.expired) cache->forget_owner(sid);
    for (const std::uint64_t sid : r.evicted) cache->forget_owner(sid);
  }
}

void RdmaRpcServer::note_ring_bytes(Shard& shard, std::size_t n) {
  shard.ring_bytes += n;
  if (shard.ring_bytes > shard.pipeline.stats().recv_ring_bytes_peak) {
    shard.pipeline.stats().recv_ring_bytes_peak = shard.ring_bytes;
  }
}

void RdmaRpcServer::post_recv_buffer(Shard& shard, ConnState* conn, NativeBuffer* buf) {
  if (shard.srq) {
    shard.srq->post_recv(reinterpret_cast<std::uint64_t>(buf), buf->span);
    ++shard.pipeline.stats().srq_posted;
  } else {
    conn->qp->post_recv(reinterpret_cast<std::uint64_t>(buf), buf->span);
  }
  note_ring_bytes(shard, buf->span.size());
}

void RdmaRpcServer::recycle_recv_buffer(Shard& shard, ConnState* conn, NativeBuffer* buf) {
  if (shard.srq) {
    // The shared stripe tops back up here on the hot path; the refill loop
    // only covers buffers consumed by calls still in flight.
    if (shard.srq->posted() < shard.srq_depth) {
      post_recv_buffer(shard, nullptr, buf);
    } else {
      native_.release(buf);
    }
  } else if (conn != nullptr && conn->qp && conn->qp->connected()) {
    post_recv_buffer(shard, conn, buf);
  } else {
    native_.release(buf);
  }
}

sim::Task RdmaRpcServer::srq_refill_loop(Shard& shard) {
  const std::shared_ptr<bool> alive = alive_;
  verbs::SharedReceiveQueue* srq = shard.srq.get();
  try {
    for (;;) {
      co_await srq->wait_limit();
      if (!*alive) co_return;
      ++shard.pipeline.stats().srq_refills;
      while (srq->posted() < shard.srq_depth) {
        post_recv_buffer(shard, nullptr, native_.acquire(cfg_.recv_buf_size));
      }
      srq->arm_limit(shard.srq_low_watermark);
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Task RdmaRpcServer::idle_evict_loop() {
  const std::shared_ptr<bool> alive = alive_;
  const sim::Dur idle = cfg_.srq_idle_evict;
  const sim::Dur sweep = std::max<sim::Dur>(idle / 2, 1);
  try {
    for (;;) {
      co_await sim::delay(host_.sched(), sweep);
      if (!*alive) co_return;
      std::vector<std::uint64_t> victims;
      const sim::Time now = host_.sched().now();
      for (const auto& [id, c] : conns_) {
        // Evict only quiet, fully-flushed connections; anything with a
        // pending response batch is mid-conversation by definition.
        if (now - c->last_recv < idle) continue;
        if (c->batcher && !c->batcher->empty()) continue;
        if (!c->qp || !c->qp->connected()) continue;
        victims.push_back(id);
      }
      for (std::uint64_t id : victims) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        ConnPtr c = it->second;
        Shard& shard = shard_of(*c);
        for (std::uint64_t wr : c->qp->drain_posted_recvs()) {  // legacy ring
          auto* b = reinterpret_cast<NativeBuffer*>(wr);
          shard.ring_bytes -= std::min(shard.ring_bytes, b->span.size());
          native_.release(b);
        }
        // Disconnect expires the client QP's peer immediately: the client
        // observes !connected() on its next call and re-bootstraps.
        c->qp->set_srq(nullptr);
        c->qp->disconnect();
        conns_.erase(it);
        ++shard.pipeline.stats().srq_evictions;
      }
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Task RdmaRpcServer::listener_loop() {
  net::Listener* l = listener_;
  try {
    // Library-load-time pool registration (amortized across all calls). In
    // SRQ mode every stripe's buffers are provisioned here too, so the
    // fills below are pure freelist pops, not demand allocations.
    std::size_t total_srq = 0;
    for (const auto& shard : shards_) total_srq += shard->srq_depth;
    co_await native_.initialize(total_srq > 0 ? cfg_.recv_buf_size : 0, total_srq);
    for (auto& shard : shards_) {
      if (!shard->srq) continue;
      // One pre-registered receive stripe per shard, filled once: from
      // here on, registered receive memory is a function of srq_depth
      // (load), not of how many connections accept() creates.
      for (std::size_t i = 0; i < shard->srq_depth; ++i) {
        post_recv_buffer(*shard, nullptr, native_.acquire(cfg_.recv_buf_size));
      }
      shard->srq->arm_limit(shard->srq_low_watermark);
    }
    for (;;) {
      net::SocketPtr boot = co_await l->accept();
      // Two-phase handshake: read the client's blob first, so the home
      // shard — and the CQ the QP completes into — can be chosen from the
      // durable session id it carries. A reconnecting session must land on
      // the shard that holds its lease and retry-cache state; sessionless
      // connections keep the dense-id round-robin, operation-for-operation
      // the pre-session behavior.
      verbs::QueuePairPtr qp;
      verbs::ConnectionManager::BootstrapInfo info;
      Shard* shard_p = nullptr;
      try {
        info = co_await cm_.read_bootstrap(boot);
        const std::uint64_t sid = session_.enabled ? info.session_id : 0;
        shard_p = sid != 0 ? shards_[sid % shards_.size()].get()
                           : shards_[conn_seq_ % shards_.size()].get();
        qp = co_await cm_.accept(boot, info, *shard_p->cq, *shard_p->cq,
                                 static_cast<std::uint64_t>(cfg_.eager_threshold));
      } catch (const verbs::VerbsError&) {
        continue;  // malformed bootstrap (e.g. a socket client); drop it
      } catch (const net::SocketError&) {
        continue;
      }
      Shard& shard = *shard_p;
      const std::uint64_t peer_threshold = info.peer_eager_threshold;
      auto conn = std::make_shared<ConnState>();
      conn->qp = std::move(qp);
      conn->id = ++conn_seq_;
      conn->session_id = session_.enabled ? info.session_id : 0;
      conn->owner = conn->session_id != 0 ? conn->session_id : conn->id;
      conn->shard = shard.index;
      ++shard.pipeline.counters().conns_assigned;
      conn->last_recv = host_.sched().now();
      // min(local, peer): an eager SEND must fit buffers sized by *either*
      // end's knob. Peer 0 means "not advertised" (legacy bootstrap).
      conn->eager_threshold =
          peer_threshold == 0
              ? cfg_.eager_threshold
              : std::min(cfg_.eager_threshold, static_cast<std::size_t>(peer_threshold));
      // Ring sizing must follow the *larger* advertised threshold, not the
      // negotiated min: when our advertisement reads as "not advertised"
      // (threshold 0 in the legacy blob), the peer falls back to its own
      // local knob and may legally send eager frames up to that size.
      conn->recv_buf_size = std::max(
          cfg_.recv_buf_size,
          std::max(conn->eager_threshold, static_cast<std::size_t>(peer_threshold)) + 512);
      if (peer_threshold != 0 && peer_threshold != cfg_.eager_threshold) {
        ++stats_.threshold_mismatches;
      }
      if (batch_.enabled) conn->batcher = std::make_unique<rpc::CallBatcher>(batch_);
      // kRecv completions carry the connection id as qp_context — with a
      // shared ring the wr_id names only the buffer, not the sender.
      conn->qp->set_context(conn->id);
      ConnState* raw = conn.get();
      conns_[conn->id] = std::move(conn);
      if (shard.srq) {
        raw->qp->set_srq(shard.srq.get());
      } else {
        for (int i = 0; i < cfg_.recv_depth; ++i) {
          post_recv_buffer(shard, raw, native_.acquire(raw->recv_buf_size));
        }
      }
    }
  } catch (const sim::ChannelClosed&) {
  } catch (const net::SocketError&) {
  }
}

sim::Task RdmaRpcServer::fetch_call(ConnPtr conn, std::uint32_t rkey, std::uint64_t off,
                                    std::uint32_t len) {
  Shard& shard = shard_of(*conn);
  const sim::Time recv_start = host_.sched().now();
  // Graceful degradation: when the registered pool is dry and the demand-
  // allocation cap is reached, refuse the rendezvous instead of growing
  // native memory without bound. The NACK names the client's rkey; the
  // client resubmits the call over the socket fallback path.
  NativeBuffer* dst = shadow_.try_acquire_sized(len);
  if (dst == nullptr) {
    // The call's trace context is inside the frame we refused to fetch;
    // the client records the overload.nack span with full context.
    ++shard.pipeline.stats().pool_nacks;
    const ControlFrame nack = make_nack(rkey);
    try {
      co_await conn->qp->post_send(0, nack.span());
    } catch (const verbs::VerbsError&) {
    }
    co_return;
  }
  const std::uint64_t token = (shard.next_read_token++ << 1) | 1;
  sim::SimEvent read_done(host_.sched());
  shard.read_waiters[token] = &read_done;
  try {
    net::MutByteSpan into(dst->span.data(), len);
    co_await conn->qp->post_rdma_read(token, into, verbs::RemoteBuffer{rkey, off, len});
    co_await read_done.wait();
    shard.read_waiters.erase(token);
    ServerCall call;
    call.conn = conn;
    call.buf = dst;
    call.frame_len = len;
    call.recv_start = recv_start;
    co_await enqueue_call(std::move(call));
  } catch (const std::exception&) {
    shard.read_waiters.erase(token);
    native_.release(dst);
  }
}

sim::Task RdmaRpcServer::reader_loop(Shard& shard) {
  const cluster::CostModel& cm = host_.cost();
  try {
    for (;;) {
      verbs::WorkCompletion wc = co_await shard.cq->wait();
      switch (wc.opcode) {
        case verbs::Opcode::kSend: {
          // Eager response on the wire: pooled source is reusable.
          if (auto* b = reinterpret_cast<NativeBuffer*>(wc.wr_id); b != nullptr &&
              (wc.wr_id & 1) == 0) {
            native_.release(b);
          }
          break;
        }
        case verbs::Opcode::kRdmaRead: {
          auto it = shard.read_waiters.find(wc.wr_id);
          if (it != shard.read_waiters.end()) it->second->set();
          break;
        }
        case verbs::Opcode::kRecv: {
          auto* rb = reinterpret_cast<NativeBuffer*>(wc.wr_id);
          shard.ring_bytes -= std::min(shard.ring_bytes, rb->span.size());
          auto cit = conns_.find(wc.qp_context);
          if (cit == conns_.end()) {
            // Completion raced an eviction: the frame has no connection to
            // answer on anymore; just recycle the shared buffer.
            recycle_recv_buffer(shard, nullptr, rb);
            break;
          }
          ConnPtr conn = cit->second;
          conn->last_recv = host_.sched().now();
          net::ByteSpan frame(rb->span.data(), wc.byte_len);
          co_await host_.compute(cm.cq_poll() + cm.thread_wakeup());
          const auto type = static_cast<FrameType>(frame[0]);
          if (type == FrameType::kCall) {
            // Hand the pooled buffer to the call; the ring replaces it
            // (SRQ: the low-watermark refill; legacy: an immediate post).
            ServerCall call;
            call.conn = conn;
            call.buf = rb;
            call.frame_len = wc.byte_len;
            call.recv_start = host_.sched().now();
            co_await enqueue_call(std::move(call));
            if (!shard.srq) {
              post_recv_buffer(shard, conn.get(), native_.acquire(conn->recv_buf_size));
            }
          } else if (type == FrameType::kBatch) {
            // Client-coalesced eager calls: split into pooled copies (each
            // sub-call owns its buffer like a fetched call) so admission,
            // deadlines and tracing all stay per call. One copy charge
            // covers the whole frame; the slot recycles after the split
            // (its contents are stable until reposted).
            ++shard.pipeline.stats().batches_received;
            std::uint32_t count = 0;
            std::memcpy(&count, frame.data() + 1, 4);
            co_await host_.compute(cm.direct_copy(wc.byte_len));
            const sim::Time recv_start = host_.sched().now();
            trace::TraceContext bctx;
            std::size_t off = 5 + 4 * static_cast<std::size_t>(count);
            for (std::uint32_t i = 0; i < count; ++i) {
              std::uint32_t sub_len = 0;
              std::memcpy(&sub_len, frame.data() + 5 + 4 * static_cast<std::size_t>(i), 4);
              NativeBuffer* sub = shadow_.acquire_sized(sub_len);
              std::memcpy(sub->span.data(), frame.data() + off, sub_len);
              off += sub_len;
              ++shard.pipeline.stats().batched_calls_received;
              if (!bctx.valid()) {
                const CallHeader h =
                    parse_call_header(cm, net::ByteSpan(sub->span.data(), sub_len));
                if (h.ok) bctx = h.ctx;
              }
              ServerCall call;
              call.conn = conn;
              call.buf = sub;
              call.frame_len = sub_len;
              call.recv_start = recv_start;
              co_await enqueue_call(std::move(call));
            }
            if (bctx.valid()) {
              trace::TraceCollector* tr = trace::active(host_.tracer());
              if (tr != nullptr) {
                tr->add_complete("batch.parse", trace::Kind::kServer,
                                 trace::Category::kRecv, bctx, host_.id(), recv_start,
                                 host_.sched().now());
              }
            }
            recycle_recv_buffer(shard, conn.get(), rb);  // frame fully copied out
          } else if (type == FrameType::kCtrlCall) {
            std::uint32_t rkey = 0, len = 0;
            std::uint64_t off = 0;
            parse_control(frame, rkey, off, len);
            host_.sched().spawn(fetch_call(conn, rkey, off, len));
            recycle_recv_buffer(shard, conn.get(), rb);
          } else if (type == FrameType::kAck) {
            const std::uint32_t rkey = parse_ack(frame);
            auto it = shard.pending_resp.find(rkey);
            if (it != shard.pending_resp.end()) {
              native_.release(it->second);
              shard.pending_resp.erase(it);
            }
            recycle_recv_buffer(shard, conn.get(), rb);
          } else {
            recycle_recv_buffer(shard, conn.get(), rb);
          }
          break;
        }
        default:
          break;
      }
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Task RdmaRpcServer::ud_reader_loop() {
  const cluster::CostModel& cm = host_.cost();
  verbs::CompletionQueue* cq = ud_cq_.get();
  try {
    for (;;) {
      verbs::WorkCompletion wc = co_await cq->wait();
      if (wc.opcode == verbs::Opcode::kSend) {
        // Response datagram on the wire: pooled source is reusable.
        if (auto* b = reinterpret_cast<NativeBuffer*>(wc.wr_id);
            b != nullptr && (wc.wr_id & 1) == 0) {
          native_.release(b);
        }
        continue;
      }
      if (wc.opcode != verbs::Opcode::kRecv) continue;
      auto* rb = reinterpret_cast<NativeBuffer*>(wc.wr_id);
      const std::size_t ep_index = static_cast<std::size_t>(wc.qp_context);
      constexpr std::size_t grh = verbs::UdEndpoint::kGrhBytes;
      if (running_ && wc.byte_len > grh + kUdHeaderBytes &&
          static_cast<FrameType>(rb->span.data()[grh]) == FrameType::kUdCall) {
        const net::ByteSpan frame(rb->span.data() + grh, wc.byte_len - grh);
        co_await host_.compute(cm.cq_poll() + cm.thread_wakeup());
        std::uint32_t src_host = 0, src_qpn = 0;
        std::memcpy(&src_host, rb->span.data(), 4);
        std::memcpy(&src_qpn, rb->span.data() + 4, 4);
        std::uint64_t sid = 0;
        for (std::size_t i = 0; i < 8; ++i) {
          sid = (sid << 8) | static_cast<std::uint64_t>(frame[1 + i]);
        }
        if (!session_.enabled) sid = 0;
        // One pseudo-connection per datagram: the handler pipeline keys
        // sessions, fences, dedup and the response path off the ConnState,
        // and UD keeps none per client — so each datagram carries its own,
        // never entered into conns_. Owner and shard homing follow the
        // session id exactly like a reconnecting RC client, so a retry
        // that switches transport still deduplicates on the home shard.
        auto conn = std::make_shared<ConnState>();
        conn->session_id = sid;
        conn->owner = sid != 0 ? sid : ((std::uint64_t{1} << 62) | src_host);
        conn->shard = static_cast<std::uint32_t>(
            sid != 0 ? sid % shards_.size() : src_host % shards_.size());
        conn->eager_threshold = cfg_.eager_threshold;
        conn->last_recv = host_.sched().now();
        const verbs::AddressHandle peer{static_cast<cluster::HostId>(src_host), src_qpn};
        Shard& shard = shard_of(*conn);
        const net::ByteSpan inner(frame.data() + kUdHeaderBytes,
                                  frame.size() - kUdHeaderBytes);
        const auto itype = static_cast<FrameType>(inner[0]);
        if (itype == FrameType::kCall) {
          co_await host_.compute(cm.direct_copy(inner.size()));
          NativeBuffer* sub = shadow_.acquire_sized(inner.size());
          std::memcpy(sub->span.data(), inner.data(), inner.size());
          ++shard.pipeline.stats().ud_calls_received;
          ServerCall call;
          call.conn = conn;
          call.buf = sub;
          call.frame_len = static_cast<std::uint32_t>(inner.size());
          call.recv_start = host_.sched().now();
          call.via_ud = true;
          call.ud_peer = peer;
          call.ud_ep = ep_index;
          co_await enqueue_call(std::move(call));
        } else if (itype == FrameType::kBatch) {
          // Split per sub-call BEFORE any session logic: each sub-call of
          // a batched frame meets the lease/fence/dedup checks on its own
          // id, so a mid-flight session expiry bounces the affected
          // sub-calls individually (kSessionExpired) instead of failing
          // the frame as one retryable unit.
          ++shard.pipeline.stats().batches_received;
          std::uint32_t count = 0;
          std::memcpy(&count, inner.data() + 1, 4);
          co_await host_.compute(cm.direct_copy(inner.size()));
          const sim::Time recv_start = host_.sched().now();
          trace::TraceContext bctx;
          std::size_t off = 5 + 4 * static_cast<std::size_t>(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            std::uint32_t sub_len = 0;
            std::memcpy(&sub_len, inner.data() + 5 + 4 * static_cast<std::size_t>(i), 4);
            NativeBuffer* sub = shadow_.acquire_sized(sub_len);
            std::memcpy(sub->span.data(), inner.data() + off, sub_len);
            off += sub_len;
            ++shard.pipeline.stats().batched_calls_received;
            ++shard.pipeline.stats().ud_calls_received;
            if (!bctx.valid()) {
              const CallHeader h =
                  parse_call_header(cm, net::ByteSpan(sub->span.data(), sub_len));
              if (h.ok) bctx = h.ctx;
            }
            ServerCall call;
            call.conn = conn;
            call.buf = sub;
            call.frame_len = sub_len;
            call.recv_start = recv_start;
            call.via_ud = true;
            call.ud_peer = peer;
            call.ud_ep = ep_index;
            co_await enqueue_call(std::move(call));
          }
          if (bctx.valid()) {
            trace::TraceCollector* tr = trace::active(host_.tracer());
            if (tr != nullptr) {
              tr->add_complete("batch.parse", trace::Kind::kServer,
                               trace::Category::kRecv, bctx, host_.id(), recv_start,
                               host_.sched().now());
            }
          }
        }
      }
      // The ring slot is fully copied out (or the datagram was garbage):
      // repost it immediately so the fixed footprint holds. The CQ identity
      // check keeps a retired run's loop (draining its last completions
      // across a restart) from injecting its buffer into the new pool's
      // rings.
      if (running_ && cq == ud_cq_.get() && ep_index < ud_eps_.size() &&
          ud_eps_[ep_index]) {
        ud_eps_[ep_index]->post_recv(wc.wr_id, rb->span);
      } else {
        native_.release(rb);
      }
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Co<void> RdmaRpcServer::ud_respond(ServerCall& call, NativeBuffer* buf,
                                        net::ByteSpan msg) {
  Shard& shard = shard_of(*call.conn);
  if (!running_ || call.ud_ep >= ud_eps_.size() || !ud_eps_[call.ud_ep]) {
    native_.release(buf);
    co_return;
  }
  if (msg.size() > verbs::UdEndpoint::kMtu) {
    // A datagram cannot fragment: bounce with an error frame naming the
    // limit instead of throwing at the HCA. Responses this size belong on
    // the RC path (the client's budget keeps *requests* off UD, but a
    // small request may still produce a huge response).
    ++shard.pipeline.stats().ud_resp_oversize;
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      id = (id << 8) | static_cast<std::uint64_t>(msg[1 + i]);
    }
    native_.release(buf);
    RDMAOutputStream err(host_.cost(), shadow_, rpc::MethodKey{"__ud", "oversize"});
    err.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
    err.write_u64(id);
    err.write_u8(static_cast<std::uint8_t>(rpc::RpcStatus::kError));
    err.write_text("response exceeds the UD datagram MTU");
    co_await host_.compute(err.take_accrued());
    msg = err.data();
    buf = err.take_buffer();
  }
  try {
    co_await ud_eps_[call.ud_ep]->post_send(reinterpret_cast<std::uint64_t>(buf),
                                            call.ud_peer, msg);
    // Released by ud_reader_loop at the kSend completion (even wr_id).
    ++shard.pipeline.stats().ud_responses_sent;
  } catch (const verbs::VerbsError&) {
    native_.release(buf);
  }
}

sim::Co<void> RdmaRpcServer::enqueue_call(ServerCall call) {
  Shard& shard = shard_of(*call.conn);
  if (shard.pipeline.admission_enabled()) {
    const CallHeader hdr = parse_call_header(
        host_.cost(), net::ByteSpan(call.buf->span.data(), call.frame_len));
    if (!hdr.ok) {
      // Garbage header: the client reused the source after timing out.
      native_.release(call.buf);
      co_return;
    }
    call.admit_protocol = hdr.key.protocol;
    switch (shard.pipeline.gate(call)) {
      case rpc::CallPipeline<ServerCall>::Gate::kShedArrival: {
        const sim::Time start = call.recv_start;
        co_await shed_call(std::move(call), hdr.id, hdr.ctx, hdr.key.method, start);
        co_return;
      }
      case rpc::CallPipeline<ServerCall>::Gate::kEvictOldest: {
        ServerCall victim;
        if (shard.pipeline.evict_oldest(victim)) {
          const CallHeader vh = parse_call_header(
              host_.cost(), net::ByteSpan(victim.buf->span.data(), victim.frame_len));
          const sim::Time vstart =
              victim.enqueued != 0 ? victim.enqueued : victim.recv_start;
          co_await shed_call(std::move(victim), vh.id, vh.ctx, vh.key.method, vstart);
        } else {
          // Every queued call is already claimed by a waking handler; shed
          // the arrival instead so the bound holds at every instant.
          const sim::Time start = call.recv_start;
          co_await shed_call(std::move(call), hdr.id, hdr.ctx, hdr.key.method, start);
          co_return;
        }
        break;
      }
      case rpc::CallPipeline<ServerCall>::Gate::kAdmit:
        break;
    }
  }
  shard.pipeline.push(std::move(call), host_.sched().now());
}

sim::Co<void> RdmaRpcServer::shed_call(ServerCall call, std::uint64_t id,
                                       trace::TraceContext ctx, const std::string& method,
                                       sim::Time start) {
  shard_of(*call.conn).pipeline.note_shed();
  trace::TraceCollector* tr = ctx.valid() ? trace::active(host_.tracer()) : nullptr;
  if (tr != nullptr) {
    tr->add_complete("overload.shed:" + method, trace::Kind::kServer,
                     trace::Category::kOverload, ctx, host_.id(), start,
                     host_.sched().now());
  }
  try {
    RDMAOutputStream busy(host_.cost(), shadow_, rpc::MethodKey{"__overload", "busy"});
    busy.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
    busy.write_u64(id);
    busy.write_u8(static_cast<std::uint8_t>(rpc::RpcStatus::kBusy));
    busy.write_text("server busy: call queue full");
    co_await respond(call, busy);
  } catch (const verbs::VerbsError&) {
    // Client already gone; nothing to tell it.
  }
  native_.release(call.buf);
}

sim::Task RdmaRpcServer::handler_loop(Shard& home, int /*handler_id*/) {
  const cluster::CostModel& cm = host_.cost();
  try {
    for (;;) {
      ServerCall call;
      bool have = false;
      // Stealing handlers poll rather than park on their own queue: a
      // blocked recv() would never see a sibling's backlog build up.
      while (cfg_.steal && shards_.size() > 1 && !have &&
             !home.pipeline.queue().closed()) {
        have = home.pipeline.try_take(call);
        if (!have) {
          // Per-shard seeded scan start spreads thieves over victims.
          const std::size_t start = static_cast<std::size_t>(
              home.pipeline.rng().next_below(shards_.size()));
          for (std::size_t k = 0; k < shards_.size() && !have; ++k) {
            const std::size_t v = (start + k) % shards_.size();
            if (v == home.index) continue;
            if (shards_[v]->pipeline.try_take(call)) {
              have = true;
              ++home.pipeline.counters().steals;
              ++shards_[v]->pipeline.counters().stolen;
            }
          }
        }
        if (!have) co_await sim::delay(host_.sched(), rpc::kStealPollInterval);
      }
      if (!have) {
        call = co_await home.pipeline.queue().recv();
        home.pipeline.note_dequeued(call);
      }
      // All per-call bookkeeping (stats, retry cache, pending responses)
      // stays on the call's home shard even when a sibling stole it.
      Shard& shard = shard_of(*call.conn);
      const sim::Time t_dequeue = host_.sched().now();
      co_await host_.compute(cm.thread_wakeup() + cm.rpc_framework());

      // Deserialize in place from the registered buffer: no per-call heap
      // buffer, no native->heap copy (Section III-B).
      RDMAInputStream in(cm, net::ByteSpan(call.buf->span.data(), call.frame_len));
      std::uint64_t id = 0;
      bool retried = false;
      sim::Time deadline = 0;
      trace::TraceContext ctx;
      rpc::MethodKey key;
      try {
        (void)in.read_u8();  // frame type
        id = in.read_u64();
        if ((id & trace::kWireTraceFlag) != 0) {
          ctx.trace_id = in.read_u64();
          ctx.span_id = in.read_u64();
        }
        if ((id & trace::kWireDeadlineFlag) != 0) deadline = in.read_u64();
        retried = (id & trace::kWireRetryFlag) != 0;
        id &= trace::kWireIdMask;
        key.protocol = in.read_text();
        key.method = in.read_text();
      } catch (const std::exception&) {
        // Garbage header: a timed-out client may have released (and reused)
        // the rendezvous source before our RDMA-READ fetched it. Drop the
        // frame — the client already gave up on this call.
        native_.release(call.buf);
        continue;
      }
      trace::TraceCollector* tr = ctx.valid() ? trace::active(host_.tracer()) : nullptr;
      if (tr != nullptr) {
        // The id was only parsed here, so the receive interval is recorded
        // retroactively now that the context is known.
        tr->add_complete("recv:" + key.method, trace::Kind::kServer,
                         trace::Category::kRecv, ctx, host_.id(), call.recv_start,
                         call.enqueued);
      }
      // The caller's deadline already passed while this call sat in the
      // queue: executing it would waste a handler on a response nobody
      // will read (the client has timed out and may be retrying).
      if (shard.pipeline.expired_at_dequeue(deadline, host_.sched().now())) {
        if (tr != nullptr) {
          tr->add_complete("deadline.expired:" + key.method, trace::Kind::kServer,
                           trace::Category::kOverload, ctx, host_.id(), call.enqueued,
                           host_.sched().now());
        }
        native_.release(call.buf);
        continue;
      }
      if (tr != nullptr) {
        tr->add_complete("queue", trace::Kind::kInternal, trace::Category::kQueue, ctx,
                         host_.id(), call.enqueued, t_dequeue);
      }
      // Session lease bookkeeping, then the checks for retries: a retried
      // attempt whose session is gone — or whose id predates the fence of
      // a re-opened session while missing the cache — cannot be proved
      // unexecuted, so it is refused with a *terminal* session-expired
      // error instead of run a second time (a retryable bounce would only
      // defer the duplicate until a fresh call revives the session). A
      // fresh call just (re-)opened the session above.
      touch_session(shard, call.conn->session_id, retried, id);
      if (retried && call.conn->session_id != 0) {
        bool undedupable = !shard.sessions.alive(call.conn->session_id, t_dequeue);
        if (!undedupable) {
          rpc::RetryCache* rc = shard.pipeline.retry_cache();
          undedupable =
              rc != nullptr &&
              rc->peek(call.conn->owner, id) == rpc::RetryCache::State::kFresh &&
              id < shard.sessions.fence(call.conn->session_id);
        }
        if (undedupable) {
          ++shard.pipeline.stats().sessions_rejected;
          if (tr != nullptr) {
            tr->add_complete("session.rejected:" + key.method, trace::Kind::kServer,
                             trace::Category::kSession, ctx, host_.id(), t_dequeue,
                             host_.sched().now());
          }
          try {
            RDMAOutputStream expired(cm, shadow_, rpc::MethodKey{"__session", "rejected"});
            expired.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
            expired.write_u64(id);
            expired.write_u8(static_cast<std::uint8_t>(rpc::RpcStatus::kSessionExpired));
            expired.write_text("session expired: retry cannot be deduplicated");
            co_await respond(call, expired);
          } catch (const verbs::VerbsError&) {
            // Client already gone; nothing to tell it.
          }
          native_.release(call.buf);
          continue;
        }
      }

      rpc::RetryCache* retry_cache = shard.pipeline.retry_cache();
      if (retry_cache != nullptr) {
        const rpc::RetryCache::State seen = retry_cache->begin(call.conn->owner, id);
        if (seen == rpc::RetryCache::State::kCompleted) {
          // A retry of a call that already executed: replay the recorded
          // response instead of running the handler a second time.
          ++shard.pipeline.stats().dedup_hits;
          if (tr != nullptr) {
            tr->add_complete("overload.dedup:" + key.method, trace::Kind::kServer,
                             trace::Category::kOverload, ctx, host_.id(), t_dequeue,
                             host_.sched().now());
          }
          const net::Bytes* cached = retry_cache->completed_frame(call.conn->owner, id);
          if (cached != nullptr) {
            try {
              co_await respond_frame(call, net::ByteSpan(cached->data(), cached->size()));
            } catch (const verbs::VerbsError&) {
            }
          }
          native_.release(call.buf);
          continue;
        }
        if (seen == rpc::RetryCache::State::kInProgress) {
          // First attempt still running on another handler; that execution
          // will answer (or the client's next retry hits kCompleted).
          ++shard.pipeline.stats().dedup_in_flight;
          native_.release(call.buf);
          continue;
        }
      }
      trace::SpanScope handle(tr, "handle:" + key.method, trace::Kind::kServer,
                              trace::Category::kHandler, ctx, host_.id());
      in.trace_context = handle.context();

      bool error = false;
      bool pool_busy = false;
      std::string error_msg;
      RDMAOutputStream out(cm, shadow_, key);
      out.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
      out.write_u64(id);
      out.write_u8(0);  // status placeholder; rewritten below on error

      const rpc::MethodHandler* handler = dispatcher_.find(key);
      if (handler == nullptr) {
        error = true;
        error_msg = "unknown method " + key.to_string();
      } else {
        try {
          co_await (*handler)(in, out);
        } catch (const PoolExhaustedError& e) {
          // The response outgrew a capped-out pool mid-serialization: shed
          // with a retryable busy status instead of a hard RemoteException,
          // mirroring the rendezvous NACK's graceful degradation.
          pool_busy = true;
          error_msg = e.what();
        } catch (const std::exception& e) {
          error = true;
          error_msg = e.what();
        }
      }

      shard.pipeline.stats().recv_alloc_us.add(sim::to_us(in.take_alloc_accrued()) +
                                               RDMAOutputStream::kAcquireUs);
      shard.pipeline.stats().recv_total_us.add(
          sim::to_us(host_.sched().now() - call.recv_start));

      // The deadline may also pass *during* execution; then the response
      // is dropped unsent — but still recorded in the retry cache, because
      // the executed outcome must answer the retry already on its way.
      const bool resp_expired =
          shard.pipeline.expired_before_response(deadline, host_.sched().now());
      if (resp_expired) {
        if (tr != nullptr) {
          tr->add_complete("deadline.response:" + key.method, trace::Kind::kServer,
                           trace::Category::kOverload, ctx, host_.id(),
                           host_.sched().now(), host_.sched().now());
        }
      }
      try {
        if (pool_busy) {
          // Not recorded in the retry cache: the condition is transient
          // and the client's retry must execute fresh once the pool drains.
          if (retry_cache != nullptr) retry_cache->forget(call.conn->owner, id);
          shard.pipeline.note_shed();
          RDMAOutputStream busy(cm, shadow_, rpc::MethodKey{"__overload", "busy"});
          busy.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
          busy.write_u64(id);
          busy.write_u8(static_cast<std::uint8_t>(rpc::RpcStatus::kBusy));
          busy.write_text("server busy: " + error_msg);
          if (!resp_expired) co_await respond(call, busy);
        } else if (error) {
          // Rebuild the frame with the error payload.
          RDMAOutputStream err(cm, shadow_, key);
          err.write_u8(static_cast<std::uint8_t>(FrameType::kResp));
          err.write_u64(id);
          err.write_u8(static_cast<std::uint8_t>(rpc::RpcStatus::kError));
          err.write_text(error_msg);
          if (retry_cache != nullptr) {
            retry_cache->complete(call.conn->owner, id,
                                  net::Bytes(err.data().begin(), err.data().end()));
          }
          if (!resp_expired) co_await respond(call, err);
          // On expiry the stream destructor returns the pooled buffer.
        } else {
          if (retry_cache != nullptr) {
            retry_cache->complete(call.conn->owner, id,
                                  net::Bytes(out.data().begin(), out.data().end()));
          }
          if (!resp_expired) co_await respond(call, out);
        }
      } catch (const verbs::VerbsError&) {
        // Client disconnected between handling and responding; drop it.
      }
      co_await host_.compute(in.take_accrued());
      handle.end();
      native_.release(call.buf);  // the kCall frame's buffer
      ++shard.pipeline.stats().calls_handled;
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Co<void> RdmaRpcServer::respond(ServerCall& call, RDMAOutputStream& out) {
  const cluster::CostModel& cm = host_.cost();
  ConnPtr conn = call.conn;
  if (call.via_ud) {
    // One kResp datagram back to the GRH source; no response batching (a
    // pseudo-connection has no batcher) and no rendezvous (no QP to READ
    // over) — oversize responses bounce inside ud_respond.
    co_await host_.compute(out.take_accrued() + cm.jni_call() + cm.rpc_framework());
    const std::size_t len = out.length();
    const net::ByteSpan msg = out.data();
    NativeBuffer* buf = out.take_buffer();
    shadow_.update_history(out.key(), len);
    co_await ud_respond(call, buf, msg);
    co_return;
  }
  const std::size_t batch_limit = std::min(batch_.max_bytes, conn->eager_threshold);
  if (conn->batcher != nullptr && batch_.batchable(out.length()) &&
      out.length() <= batch_limit) {
    // Coalesced path: copy the frame out so the stream's pooled buffer
    // returns immediately (via its destructor) and skip the per-response
    // doorbell — the flush pays one JNI crossing for the whole batch.
    const sim::Dur cost =
        out.take_accrued() + cm.rpc_framework() + cm.direct_copy(out.length());
    co_await host_.compute(cost);
    shadow_.update_history(out.key(), out.length());
    net::Bytes payload(out.data().begin(), out.data().end());
    co_await append_response(conn, std::move(payload));
    co_return;
  }
  co_await host_.compute(out.take_accrued() + cm.jni_call() + cm.rpc_framework());
  const std::size_t len = out.length();
  const net::ByteSpan msg = out.data();
  NativeBuffer* buf = out.take_buffer();
  shadow_.update_history(out.key(), len);
  Shard& shard = shard_of(*conn);
  try {
    if (len <= conn->eager_threshold) {
      co_await call.conn->qp->post_send(reinterpret_cast<std::uint64_t>(buf), msg);
      // Released by reader_loop at the kSend completion.
    } else {
      shard.pending_resp[buf->mr.rkey] = buf;
      const ControlFrame ctrl = ControlFrame::make(
          FrameType::kCtrlResp, buf->mr.rkey,
          static_cast<std::uint64_t>(msg.data() - buf->mr.addr),
          static_cast<std::uint32_t>(len));
      co_await call.conn->qp->post_send(0, ctrl.span());
    }
  } catch (const verbs::VerbsError&) {
    shard.pending_resp.erase(buf->mr.rkey);
    native_.release(buf);
    throw;
  }
}

sim::Co<void> RdmaRpcServer::respond_frame(ServerCall& call, net::ByteSpan frame) {
  const cluster::CostModel& cm = host_.cost();
  NativeBuffer* buf = shadow_.acquire_sized(frame.size());
  std::memcpy(buf->span.data(), frame.data(), frame.size());
  co_await host_.compute(cm.direct_copy(frame.size()) + cm.jni_call() + cm.rpc_framework());
  if (call.via_ud) {
    co_await ud_respond(call, buf, net::ByteSpan(buf->span.data(), frame.size()));
    co_return;
  }
  Shard& shard = shard_of(*call.conn);
  try {
    if (frame.size() <= call.conn->eager_threshold) {
      co_await call.conn->qp->post_send(reinterpret_cast<std::uint64_t>(buf),
                                        net::ByteSpan(buf->span.data(), frame.size()));
      // Released by reader_loop at the kSend completion.
    } else {
      shard.pending_resp[buf->mr.rkey] = buf;
      const ControlFrame ctrl = ControlFrame::make(
          FrameType::kCtrlResp, buf->mr.rkey,
          static_cast<std::uint64_t>(buf->span.data() - buf->mr.addr),
          static_cast<std::uint32_t>(frame.size()));
      co_await call.conn->qp->post_send(0, ctrl.span());
    }
  } catch (const verbs::VerbsError&) {
    shard.pending_resp.erase(buf->mr.rkey);
    native_.release(buf);
    throw;
  }
}

sim::Co<void> RdmaRpcServer::append_response(ConnPtr conn, net::Bytes payload) {
  rpc::CallBatcher& b = *conn->batcher;
  // Batch frames ride the eager path, so the whole frame must fit the
  // client's pre-posted receive buffers: clamp to the negotiated threshold.
  const std::size_t limit = std::min(batch_.max_bytes, conn->eager_threshold);
  if (b.would_overflow(payload.size(), limit)) co_await flush_response_batch(conn);
  const bool was_empty = b.empty();
  b.append(std::move(payload), host_.sched().now());
  if (b.full() || b.bytes() >= limit) {
    co_await flush_response_batch(conn);
  } else if (was_empty) {
    // Responses only need to cover handler-completion stagger, not caller
    // phase alignment: cap the wait at a quarter of the configured linger
    // (mirrors the socket Responder).
    const sim::Dur linger = std::min(b.adaptive_linger(), batch_.linger / 4);
    host_.sched().spawn(response_batch_timer(conn, b.epoch(), linger));
  }
}

sim::Task RdmaRpcServer::response_batch_timer(ConnPtr conn, std::uint64_t epoch,
                                              sim::Dur linger) {
  // A zero linger still suspends one scheduler tick, so same-timestamp
  // responses coalesce while a lone response flushes "now".
  sim::Scheduler& sched = host_.sched();
  const std::shared_ptr<bool> alive = alive_;
  co_await sim::delay(sched, linger);
  if (!*alive) co_return;  // server stopped while we lingered
  const rpc::CallBatcher& b = *conn->batcher;
  if (b.empty() || b.epoch() != epoch) co_return;  // a full() flush beat us
  co_await flush_response_batch(conn);
}

sim::Co<void> RdmaRpcServer::flush_response_batch(ConnPtr conn) {
  rpc::CallBatcher& b = *conn->batcher;
  if (b.empty()) co_return;
  const cluster::CostModel& cm = host_.cost();
  const std::shared_ptr<bool> alive = alive_;
  // Take the items before any suspension so a concurrent limit-flush
  // can't double-send them.
  std::vector<net::Bytes> items = b.take();
  std::size_t payload_bytes = 0;
  for (const net::Bytes& m : items) payload_bytes += m.size();
  // [u8 kBatch][u32 count][u32 len_i x count][kResp sub-frames...] encoded
  // straight into a pooled registered buffer — one doorbell for the lot.
  const std::size_t total = 5 + 4 * items.size() + payload_bytes;
  NativeBuffer* fb = shadow_.acquire_sized(total);
  net::Byte* p = fb->span.data();
  p[0] = static_cast<net::Byte>(FrameType::kBatch);
  const std::uint32_t count = static_cast<std::uint32_t>(items.size());
  std::memcpy(p + 1, &count, 4);
  std::size_t off = 5 + 4 * items.size();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::uint32_t len = static_cast<std::uint32_t>(items[i].size());
    std::memcpy(p + 5 + 4 * i, &len, 4);
    std::memcpy(p + off, items[i].data(), items[i].size());
    off += items[i].size();
  }
  const sim::Dur encode_cost = cm.direct_copy(total) + cm.jni_call();
  co_await host_.compute(encode_cost);
  if (!*alive) {
    // Server stopped while we computed; the pool outlives stop(), so the
    // lease can still go back.
    native_.release(fb);
    co_return;
  }
  try {
    const net::ByteSpan wire(fb->span.data(), total);
    co_await conn->qp->post_send(reinterpret_cast<std::uint64_t>(fb), wire);
    // fb is released by reader_loop at the kSend completion (even wr_id).
  } catch (const verbs::VerbsError&) {
    native_.release(fb);
    co_return;
  }
  if (!*alive) co_return;
  Shard& shard = shard_of(*conn);
  ++shard.pipeline.stats().response_batches;
  shard.pipeline.stats().batched_responses += count;
}

}  // namespace rpcoib::oib
