// RPC engine facade: the paper's `rpc.ib.enabled` switch.
//
// Upper layers (HDFS, MapReduce, HBase) construct clients and servers
// through this factory, choosing the transport by configuration only —
// keeping "the existing Hadoop RPC architecture and interface intact"
// exactly as Section III-D requires.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/socket.hpp"
#include "net/testbed.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"
#include "rpcoib/stream/stream.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib {

/// Which path Hadoop RPC takes.
enum class RpcMode {
  kSocket1GigE,
  kSocket10GigE,
  kSocketIPoIB,
  kRpcoIB,  // rpc.ib.enabled = true
};

const char* rpc_mode_name(RpcMode mode);

struct EngineConfig {
  RpcMode mode = RpcMode::kSocketIPoIB;
  int server_handlers = 8;
  /// Reader shards per server (server.shards). Each shard owns a disjoint
  /// set of connections with its own receive loop, call queue and handler
  /// subset on both transports. Default 1: the unsharded legacy server.
  int server_shards = 1;
  /// Let idle shard handlers take queued calls from sibling shards
  /// (bookkeeping stays on the home shard). Off by default.
  bool shard_steal = false;
  std::size_t eager_threshold = WireDefaults::kEagerThreshold;
  PoolConfig pool{};
  /// Timeout/retry/backoff applied to every client this engine creates.
  /// Default-disabled: zero timeout, zero retries — legacy behavior.
  rpc::RpcRetryPolicy retry{};
  /// Admission control / retry cache applied to every server this engine
  /// creates. Default-disabled: unbounded queue, no cache — legacy behavior.
  rpc::OverloadConfig overload{};
  /// Small-message coalescing applied to every client (call batching) and
  /// server (response batching) this engine creates. Default-disabled:
  /// one frame per message, byte-identical to the seed wire format.
  rpc::BatchConfig batch{};
  /// Durable client sessions (session.* knobs): exactly-once RPC across
  /// connection loss. Applied to every client (session id in the
  /// handshake, retry flagging, reconnect accounting) and server
  /// (session-keyed retry cache, leases). Default-disabled: no handshake
  /// bytes change, no new report rows — byte-identical to a sessionless
  /// build.
  rpc::SessionConfig session{};
  /// RPCoIB only: reroute to the companion socket listener when the QP
  /// bootstrap exchange fails (and run that listener server-side).
  bool socket_fallback = true;
  /// Pipelined bulk streaming for the HDFS block pipeline and the shuffle
  /// fetch path (stream.* knobs). Default-disabled: both data paths stay
  /// byte-identical to the seed.
  stream::StreamConfig stream{};
  /// RPCoIB only: route sub-MTU eager calls over UD datagrams into a
  /// fixed server endpoint pool (ud.* knobs), keeping per-client server
  /// state flat; RC QPs bootstrap only for rendezvous-sized traffic. UD
  /// is lossy — enable `session` and a retry policy with it for
  /// exactly-once delivery. Default-disabled: byte-identical to RC-only.
  UdConfig ud{};
  /// RPCoIB only: one-sided read plane (onesided.* knobs). Servers export
  /// hot read-mostly responses into a registered seqlock region; clients
  /// resolve eligible lookups with RDMA READ and fall back to RPC on
  /// miss/conflict/stale generation. Default-disabled: no region, no
  /// advertisement, byte-identical wire and reports.
  OneSidedConfig onesided{};
};

/// Owns the verbs stack for a testbed and stamps out clients/servers.
class RpcEngine {
 public:
  explicit RpcEngine(net::Testbed& tb, EngineConfig cfg = {});

  std::unique_ptr<rpc::RpcClient> make_client(cluster::Host& host);
  std::unique_ptr<rpc::RpcServer> make_server(cluster::Host& host, net::Address addr);

  /// Merge the per-<protocol, method> profiles of every client this engine
  /// created (Table I / Fig. 3 aggregation). Clients must still be alive.
  std::map<rpc::MethodKey, rpc::MethodProfile> aggregated_profiles() const;

  /// Enable per-call size-sequence recording on all *future* clients
  /// (Fig. 3 traces).
  void record_size_sequences(bool on) { record_sequences_ = on; }

  const EngineConfig& config() const { return cfg_; }
  void set_mode(RpcMode mode) { cfg_.mode = mode; }
  verbs::VerbsStack& verbs() { return verbs_; }
  net::Testbed& testbed() { return tb_; }

 private:
  std::unique_ptr<rpc::RpcClient> make_client_impl(cluster::Host& host);

  net::Testbed& tb_;
  EngineConfig cfg_;
  verbs::VerbsStack verbs_;
  bool record_sequences_ = false;
  // Live clients for stats aggregation; entries remove themselves on
  // destruction after flushing into retired_profiles_.
  mutable std::vector<rpc::RpcClient*> clients_;
  std::map<rpc::MethodKey, rpc::MethodProfile> retired_profiles_;
};

}  // namespace rpcoib::oib
