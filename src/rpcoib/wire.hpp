// RPCoIB wire protocol.
//
// The hybrid transport from Section III-D: messages at or below the eager
// threshold ride two-sided SEND into pre-posted pooled receive buffers;
// larger messages stay in the sender's registered buffer and a small
// control message tells the peer to RDMA-READ them (rendezvous).
//
// Buffer-content layouts (first byte is the frame type):
//   kCall     [u8][u64 id][text protocol][text method][param bytes]
//   kResp     [u8][u64 id][u8 status][value bytes | error text]
//   kCtrlCall [u8][u32 rkey][u64 offset][u32 len]   - fetch a kCall
//   kCtrlResp [u8][u32 rkey][u64 offset][u32 len]   - fetch a kResp
//   kAck      [u8][u32 rkey]                        - rendezvous source may be released
//   kNack     [u8][u32 rkey]                        - rendezvous refused: server pool
//                                                     exhausted (demand-alloc cap); the
//                                                     client retries via the socket path
//   kBatch    [u8][u32 count][u32 len_i x count][sub-frame_i ...]
//                                                   - coalesced eager frames; each
//                                                     sub-frame is a complete kCall or
//                                                     kResp frame (rpc::BatchConfig;
//                                                     never emitted with batching off)
//
// Bulk-streaming control frames (src/rpcoib/stream; ride their own QP,
// chunk data moves by RDMA WRITE with immediate):
//   kStreamOpen   [u8][u64 sid][u64 total][u32 chunk][u32 depth][u32 mlen][meta]
//   kStreamGrant  [u8][u64 sid][u8 accepted][u8 nslots][(u32 rkey)(u64 off)(u32 len)]*
//   kStreamCredit [u8][u64 sid][u32 seq]
//   kStreamDone   [u8][u64 sid][u8 status]
//   kStreamAbort  [u8][u64 sid][u32 rlen][reason]
//   kStreamFetch  [u8][u64 token][u32 mlen][meta]
//
// UD datagram eager path (ud.* knobs; default off):
//   kUdCall   [u8][u64 session][inner frame]      - inner is a complete kCall
//                                                   or kBatch frame; carried in
//                                                   one UD datagram to a server
//                                                   UD endpoint. session=0 means
//                                                   sessionless (dedup keyed by
//                                                   source host instead).
// UD responses are plain kResp frames sent as datagrams back to the
// client's UD endpoint (the GRH supplies the return address, the call id
// in the frame demuxes at the client).
#pragma once

#include <cstdint>

namespace rpcoib::oib {

enum class FrameType : std::uint8_t {
  kCall = 0,
  kResp = 1,
  kCtrlCall = 2,
  kCtrlResp = 3,
  kAck = 4,
  kNack = 5,
  kBatch = 6,
  kStreamOpen = 7,
  kStreamGrant = 8,
  kStreamCredit = 9,
  kStreamDone = 10,
  kStreamAbort = 11,
  kStreamFetch = 12,
  kUdCall = 13,
};

struct WireDefaults {
  /// Eager/rendezvous switch point (tunable, Section III-D).
  static constexpr std::size_t kEagerThreshold = 4 * 1024;
  /// Pre-posted receive buffer size: must hold any eager frame.
  static constexpr std::size_t kRecvBufSize = 8 * 1024;
  /// Receive buffers pre-posted per queue pair.
  static constexpr int kRecvDepth = 16;
};

/// Unreliable-datagram eager path (ud.* knobs). Off by default: with
/// enabled=false the RC/SRQ transport is byte-identical to builds without
/// the UD layer. When on, sub-MTU eager calls (and batch frames, clamped
/// to the MTU) ride connectionless UD datagrams into a small fixed pool
/// of server endpoints, so per-client server state stays flat; RC QPs are
/// created only when a rendezvous transfer or stream needs one. UD is
/// lossy — callers must run the session + retry-cache layer
/// (SessionConfig::enabled) for exactly-once delivery under loss.
struct UdConfig {
  bool enabled = false;
  /// Server-side UD endpoint pool size (the paper's "few QPs serve all
  /// clients" scaling argument); endpoint for a call is picked by
  /// hash(session, call id).
  int server_endpoints = 4;
  /// Datagram receive buffers pre-posted per server endpoint.
  int recv_depth = 64;
  /// Datagram receive buffers pre-posted on the client endpoint. Must
  /// cover a burst of near-simultaneous responses: a batched frame can
  /// fan out to BatchConfig::max_calls handlers whose replies land
  /// back-to-back, so the default covers two full batches in flight.
  int client_recv_depth = 32;
};

/// One-sided read plane (onesided.* knobs). Off by default: with
/// enabled=false no region is registered or advertised and the wire (and
/// resilience report) stay byte-identical to builds without the layer.
/// When on, the server exports hot read-mostly state into a versioned,
/// pre-registered region of per-entry seqlock slots; clients resolve
/// eligible Get/lookup calls with RDMA READ against the advertised region
/// and fall back to plain RPC on version conflict, entry miss, or stale
/// generation — correctness never depends on the fast path.
struct OneSidedConfig {
  bool enabled = false;
  /// Direct-mapped slot count in the exported region (entry -> slot by
  /// key hash; a hash-tagged mismatch reads as a miss, never wrong data).
  int slots = 256;
  /// Initial payload capacity per slot, in bytes. An entry that outgrows
  /// it triggers a region re-export at double the capacity (new rkey,
  /// bumped generation; stale READs fail closed on the generation word).
  int slot_payload = 512;
  /// Seqlock conflict retries before the client degrades the call to RPC
  /// (onesided_conflict_fallbacks) — bounds the spin on write-hot keys.
  int max_version_retries = 2;
  /// Publisher write-window, in microseconds: the span a slot stays
  /// odd-versioned while the server copies the new payload in. Models the
  /// store not being atomic; concurrent READs observing the window see an
  /// odd or unequal version pair and retry/fall back.
  std::uint32_t write_window_us = 2;
};

/// Every RdmaRpcServer also listens for plain socket RPC at
/// `addr.port + kSocketFallbackPortOffset`; clients whose QP bootstrap
/// exchange fails reroute there (socket-mode fallback). The offset keeps
/// companion listeners clear of all well-known base ports in the tree
/// (8020/8021/50060/60000/60020).
inline constexpr std::uint16_t kSocketFallbackPortOffset = 1000;

}  // namespace rpcoib::oib
