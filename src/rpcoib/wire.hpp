// RPCoIB wire protocol.
//
// The hybrid transport from Section III-D: messages at or below the eager
// threshold ride two-sided SEND into pre-posted pooled receive buffers;
// larger messages stay in the sender's registered buffer and a small
// control message tells the peer to RDMA-READ them (rendezvous).
//
// Buffer-content layouts (first byte is the frame type):
//   kCall     [u8][u64 id][text protocol][text method][param bytes]
//   kResp     [u8][u64 id][u8 status][value bytes | error text]
//   kCtrlCall [u8][u32 rkey][u64 offset][u32 len]   - fetch a kCall
//   kCtrlResp [u8][u32 rkey][u64 offset][u32 len]   - fetch a kResp
//   kAck      [u8][u32 rkey]                        - rendezvous source may be released
//   kNack     [u8][u32 rkey]                        - rendezvous refused: server pool
//                                                     exhausted (demand-alloc cap); the
//                                                     client retries via the socket path
//   kBatch    [u8][u32 count][u32 len_i x count][sub-frame_i ...]
//                                                   - coalesced eager frames; each
//                                                     sub-frame is a complete kCall or
//                                                     kResp frame (rpc::BatchConfig;
//                                                     never emitted with batching off)
//
// Bulk-streaming control frames (src/rpcoib/stream; ride their own QP,
// chunk data moves by RDMA WRITE with immediate):
//   kStreamOpen   [u8][u64 sid][u64 total][u32 chunk][u32 depth][u32 mlen][meta]
//   kStreamGrant  [u8][u64 sid][u8 accepted][u8 nslots][(u32 rkey)(u64 off)(u32 len)]*
//   kStreamCredit [u8][u64 sid][u32 seq]
//   kStreamDone   [u8][u64 sid][u8 status]
//   kStreamAbort  [u8][u64 sid][u32 rlen][reason]
//   kStreamFetch  [u8][u64 token][u32 mlen][meta]
#pragma once

#include <cstdint>

namespace rpcoib::oib {

enum class FrameType : std::uint8_t {
  kCall = 0,
  kResp = 1,
  kCtrlCall = 2,
  kCtrlResp = 3,
  kAck = 4,
  kNack = 5,
  kBatch = 6,
  kStreamOpen = 7,
  kStreamGrant = 8,
  kStreamCredit = 9,
  kStreamDone = 10,
  kStreamAbort = 11,
  kStreamFetch = 12,
};

struct WireDefaults {
  /// Eager/rendezvous switch point (tunable, Section III-D).
  static constexpr std::size_t kEagerThreshold = 4 * 1024;
  /// Pre-posted receive buffer size: must hold any eager frame.
  static constexpr std::size_t kRecvBufSize = 8 * 1024;
  /// Receive buffers pre-posted per queue pair.
  static constexpr int kRecvDepth = 16;
};

/// Every RdmaRpcServer also listens for plain socket RPC at
/// `addr.port + kSocketFallbackPortOffset`; clients whose QP bootstrap
/// exchange fails reroute there (socket-mode fallback). The offset keeps
/// companion listeners clear of all well-known base ports in the tree
/// (8020/8021/50060/60000/60020).
inline constexpr std::uint16_t kSocketFallbackPortOffset = 1000;

}  // namespace rpcoib::oib
