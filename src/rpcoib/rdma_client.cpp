#include "rpcoib/rdma_client.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/fault.hpp"
#include "rpcoib/onesided.hpp"
#include "trace/trace.hpp"

namespace rpcoib::oib {

namespace {

/// wr_id carries the pooled buffer pointer (0 = no buffer attached).
std::uint64_t wr_of(NativeBuffer* b) { return reinterpret_cast<std::uint64_t>(b); }
NativeBuffer* buf_of(std::uint64_t wr) { return reinterpret_cast<NativeBuffer*>(wr); }

/// Fixed-layout control frame, trivially destructible (safe as a co_await
/// temporary) and copied by post_send at post time.
struct ControlFrame {
  net::Byte bytes[17];
  std::size_t len = 0;

  static ControlFrame make(FrameType t, std::uint32_t rkey, std::uint64_t off,
                           std::uint32_t payload_len) {
    ControlFrame f;
    f.bytes[0] = static_cast<net::Byte>(t);
    std::memcpy(f.bytes + 1, &rkey, 4);
    std::memcpy(f.bytes + 5, &off, 8);
    std::memcpy(f.bytes + 13, &payload_len, 4);
    f.len = 17;
    return f;
  }
  static ControlFrame ack(std::uint32_t rkey) {
    ControlFrame f;
    f.bytes[0] = static_cast<net::Byte>(FrameType::kAck);
    std::memcpy(f.bytes + 1, &rkey, 4);
    f.len = 5;
    return f;
  }
  net::ByteSpan span() const { return net::ByteSpan(bytes, len); }
};

void parse_control(net::ByteSpan frame, std::uint32_t& rkey, std::uint64_t& off,
                   std::uint32_t& len) {
  std::memcpy(&rkey, frame.data() + 1, 4);
  std::memcpy(&off, frame.data() + 5, 8);
  std::memcpy(&len, frame.data() + 13, 4);
}

/// kUdCall wrapper: [u8 type][u64 session] before the inner frame.
inline constexpr std::size_t kUdHeaderBytes = 9;

}  // namespace

RdmaRpcClient::RdmaRpcClient(cluster::Host& host, net::SocketTable& sockets,
                             verbs::VerbsStack& stack, RdmaClientConfig cfg)
    : host_(host),
      sockets_(sockets),
      stack_(stack),
      cm_(stack, sockets),
      cfg_(cfg),
      native_(host, stack, cfg.pool),
      shadow_(native_),
      pool_ready_(host.sched()) {
  // Pre-posted receive buffers must hold any eager frame plus headers.
  cfg_.recv_buf_size = std::max(cfg_.recv_buf_size, cfg_.eager_threshold + 512);
  // Register the pool at construction ("library load" in the paper) so
  // the cost is off every call's critical path.
  host_.sched().spawn(init_pool_task());
}

sim::Task RdmaRpcClient::init_pool_task() {
  co_await native_.initialize();
  pool_ready_.set();
}

RdmaRpcClient::~RdmaRpcClient() { close_connections(); }

void RdmaRpcClient::close_connections() {
  for (auto& [addr, conn] : connections_) {
    // Cancel before tearing anything down: loops suspended mid-completion
    // resume later and must bail instead of touching the dead client/pool.
    conn->cancelled = true;
    if (conn->qp) {
      // Pre-posted receive slots still hold pooled buffers; reclaim them
      // before the QP goes away or the pool leaks a slot per recv.
      for (std::uint64_t wr : conn->qp->drain_posted_recvs()) {
        if (NativeBuffer* b = buf_of(wr); b != nullptr) native_.release(b);
      }
      conn->qp->disconnect();
    }
    conn->cq.close();
    fail_all(*conn, "client shutdown");
  }
  connections_.clear();
  if (ud_) {
    ud_->cancelled = true;
    if (ud_->ep) {
      // Posted ring slots hold pooled buffers; reclaim before the
      // endpoint dies or the pool leaks one slot per posted recv.
      for (std::uint64_t wr : ud_->ep->drain_posted_recvs()) {
        if (NativeBuffer* b = buf_of(wr); b != nullptr) native_.release(b);
      }
    }
    ud_->cq.close();
    for (auto& [id, pc] : ud_->pending) {
      pc->transport_error = true;
      pc->error_msg = "client shutdown";
      pc->done.set();
    }
    ud_->pending.clear();
    ud_.reset();
  }
  ud_dests_.clear();
  fallback_addrs_.clear();
  if (fallback_) fallback_->close_connections();
}

void RdmaRpcClient::release_rendezvous(PendingCall& pc) {
  if (pc.rendezvous_buf != nullptr) {
    native_.release(pc.rendezvous_buf);
    pc.rendezvous_buf = nullptr;
  }
}

void RdmaRpcClient::fail_all(Connection& conn, const std::string& why) {
  conn.broken = true;
  conn.recovery = Recovery::kTornDown;
  for (auto& [id, pc] : conn.pending) {
    // Return in-flight rendezvous sources to the pool before waking the
    // caller: a drained scheduler may never resume the call coroutine, so
    // the release cannot be left to it.
    release_rendezvous(*pc);
    pc->transport_error = true;
    pc->error_msg = why;
    pc->done.set();
  }
  conn.pending.clear();
}

sim::Co<RdmaRpcClient::ConnectionPtr> RdmaRpcClient::get_connection(net::Address addr) {
  co_await pool_ready_.wait();
  for (;;) {
    auto it = connections_.find(addr);
    if (it == connections_.end()) break;
    ConnectionPtr conn = it->second;
    if (conn->broken) {
      connections_.erase(it);
      break;
    }
    co_await conn->ready.wait();
    if (!conn->broken && conn->qp && !conn->qp->connected()) {
      // The server tore the QP down under us (idle-connection eviction):
      // reclaim the pre-posted receive buffers, close the CQ so the old
      // receive loop exits, fail anything still parked on the connection,
      // and fall through to bootstrap a fresh one transparently.
      conn->cancelled = true;
      for (std::uint64_t wr : conn->qp->drain_posted_recvs()) {
        if (NativeBuffer* b = buf_of(wr); b != nullptr) native_.release(b);
      }
      conn->cq.close();
      fail_all(*conn, "QP closed by peer");
      note_reconnect(rpc::ReconnectCause::kIdleEvicted);
    }
    if (!conn->broken) co_return conn;
    // Woke up on a broken connection. Another waiter may already have
    // installed a replacement while we were suspended; clobbering it
    // would orphan its receive loop and strand its pending calls. Erase
    // only if the map still points at *our* broken connection, then loop:
    // the retry adopts any replacement instead.
    auto it2 = connections_.find(addr);
    if (it2 != connections_.end() && it2->second == conn) connections_.erase(it2);
  }

  auto raw = std::make_shared<Connection>(host_.sched(), batch_);
  connections_[addr] = raw;
  try {
    // Bootstrap over the server's socket address (Section III-D),
    // exchanging eager thresholds in the endpoint-info blob, then
    // pre-post pooled receive buffers for eager traffic.
    // The durable session id (0 when sessions are off) rides the same
    // endpoint-info blob, so a reconnect re-announces it for free.
    std::uint64_t peer_threshold = 0;
    raw->qp = co_await cm_.connect(host_, addr, raw->cq, raw->cq,
                                   net::Transport::kIPoIB,
                                   static_cast<std::uint64_t>(cfg_.eager_threshold),
                                   &peer_threshold, session_id(host_));
    // min(local, peer): an eager SEND must fit buffers sized by *either*
    // end's knob. Peer 0 means "not advertised" (legacy bootstrap).
    raw->eager_threshold =
        peer_threshold == 0
            ? cfg_.eager_threshold
            : std::min(cfg_.eager_threshold, static_cast<std::size_t>(peer_threshold));
    if (peer_threshold != 0 && peer_threshold != cfg_.eager_threshold) {
      ++stats_.threshold_mismatches;
    }
    // Ring sizing from the *negotiated* handshake, not the construction
    // clamp (which only saw the local knob): a peer that advertised a
    // larger threshold can send eager frames up to its own advertisement
    // when our side reads as "not advertised" (threshold 0), so every
    // pre-posted buffer must cover the larger of the two advertisements
    // or an oversized eager response overruns the ring.
    const std::size_t ring_buf = std::max(
        cfg_.recv_buf_size,
        std::max(raw->eager_threshold, static_cast<std::size_t>(peer_threshold)) + 512);
    for (int i = 0; i < cfg_.recv_depth; ++i) {
      NativeBuffer* rb = native_.acquire(ring_buf);
      raw->qp->post_recv(wr_of(rb), rb->span);
    }
  } catch (const verbs::VerbsError& e) {
    // A verbs-level bootstrap failure (exchange went wrong, not a dead
    // server): surface it unchanged so call_attempt can fall back to
    // socket mode.
    raw->ready.set();
    fail_all(*raw, e.what());
    auto it = connections_.find(addr);
    if (it != connections_.end() && it->second == raw) connections_.erase(it);
    throw;
  } catch (const std::exception& e) {
    raw->ready.set();
    fail_all(*raw, e.what());
    auto it = connections_.find(addr);
    if (it != connections_.end() && it->second == raw) connections_.erase(it);
    throw rpc::RpcTransportError(e.what());
  }
  host_.sched().spawn(receive_loop(raw));
  raw->recovery = Recovery::kHealthy;
  raw->ready.set();
  ++stats_.connections_opened;
  co_return raw;
}

void RdmaRpcClient::note_reconnect(rpc::ReconnectCause cause) {
  // Reconnect accounting rides the session knob: with sessions off the
  // counters stay zero, the report grows no rows, and seeded sessionless
  // runs stay byte-identical to a build without the session layer.
  if (!session_.enabled) return;
  switch (cause) {
    case rpc::ReconnectCause::kPeerClosed: ++stats_.reconnects_peer_closed; break;
    case rpc::ReconnectCause::kQpError: ++stats_.reconnects_qp_error; break;
    case rpc::ReconnectCause::kIdleEvicted: ++stats_.reconnects_idle_evicted; break;
    case rpc::ReconnectCause::kFaultInjected: ++stats_.reconnects_fault_injected; break;
  }
  if (trace::TraceCollector* tr = trace::active(host_.tracer()); tr != nullptr) {
    const sim::Time now = host_.sched().now();
    tr->add_complete(std::string("reconnect.") + rpc::reconnect_cause_name(cause),
                     trace::Kind::kClient, trace::Category::kSession, {}, host_.id(),
                     now, now);
  }
}

void RdmaRpcClient::teardown_connection(const ConnectionPtr& conn, net::Address addr,
                                        rpc::ReconnectCause cause, const std::string& why) {
  if (conn->qp) {
    // Still-posted receive slots hold pooled buffers; reclaim them before
    // the QP breaks or the pool leaks a slot per pre-posted recv.
    for (std::uint64_t wr : conn->qp->drain_posted_recvs()) {
      if (NativeBuffer* b = buf_of(wr); b != nullptr) native_.release(b);
    }
    conn->qp->disconnect();
  }
  // NOT cancelled and the CQ stays open: completions already scheduled
  // (the in-flight kSend, READ completions, stale responses) still land,
  // and the still-running receive loop recycles their pooled buffers —
  // the pool balance survives the teardown. The loop parks harmlessly on
  // the open CQ afterwards.
  fail_all(*conn, why);
  note_reconnect(cause);
  auto it = connections_.find(addr);
  if (it != connections_.end() && it->second == conn) connections_.erase(it);
}

void RdmaRpcClient::repost_recv(const ConnectionPtr& conn, NativeBuffer* buf) {
  if (conn->broken || !conn->qp->connected()) {
    native_.release(buf);
    return;
  }
  conn->qp->post_recv(wr_of(buf), buf->span);
}

void RdmaRpcClient::deliver_response(const ConnectionPtr& conn, net::ByteSpan frame,
                                     NativeBuffer* buf, bool is_recv_slot) {
  // frame = [u8 kResp][u64 id][u8 status][...]
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | frame[1 + static_cast<std::size_t>(i)];
  auto it = conn->pending.find(id);
  if (it == conn->pending.end()) {
    // Stale response; recycle the buffer.
    if (is_recv_slot) {
      repost_recv(conn, buf);
    } else {
      native_.release(buf);
    }
    return;
  }
  PendingCall* pc = it->second;
  conn->pending.erase(it);
  pc->resp = frame;
  pc->resp_buf = buf;
  pc->resp_is_recv_slot = is_recv_slot;
  pc->done.set();
}

sim::Task RdmaRpcClient::fetch_response(ConnectionPtr conn, std::uint32_t rkey,
                                        std::uint64_t off, std::uint32_t len) {
  NativeBuffer* dst = shadow_.acquire_sized(len);
  const std::uint64_t token = (conn->next_read_token++ << 1) | 1;
  sim::SimEvent read_done(host_.sched());
  conn->read_waiters[token] = &read_done;
  try {
    net::MutByteSpan into(dst->span.data(), len);
    co_await conn->qp->post_rdma_read(token, into, verbs::RemoteBuffer{rkey, off, len});
    co_await read_done.wait();  // receive_loop routes the completion here
    conn->read_waiters.erase(token);
    // Client torn down while the READ was in flight: the pool died with
    // it, so the lease cannot be returned — just stop.
    if (conn->cancelled) co_return;
    const ControlFrame ack = ControlFrame::ack(rkey);
    co_await conn->qp->post_send(wr_of(nullptr), ack.span());
    if (conn->cancelled) co_return;
    deliver_response(conn, net::ByteSpan(dst->span.data(), len), dst, /*is_recv_slot=*/false);
  } catch (const std::exception& e) {
    conn->read_waiters.erase(token);
    if (conn->cancelled) co_return;
    native_.release(dst);
    fail_all(*conn, e.what());
  }
}

sim::Task RdmaRpcClient::receive_loop(ConnectionPtr conn) {
  // Hoisted: this loop may outlive the client object; after a suspension
  // it re-checks conn->cancelled before touching client members.
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  try {
    for (;;) {
      verbs::WorkCompletion wc = co_await conn->cq.wait();
      if (conn->cancelled) co_return;
      switch (wc.opcode) {
        case verbs::Opcode::kSend: {
          // Eager frame is on the wire; pooled source (if any) is reusable.
          if (NativeBuffer* b = buf_of(wc.wr_id); b != nullptr) native_.release(b);
          break;
        }
        case verbs::Opcode::kRdmaRead: {
          auto it = conn->read_waiters.find(wc.wr_id);
          if (it != conn->read_waiters.end()) {
            if (wc.status != 0) conn->read_errors.insert(wc.wr_id);
            it->second->set();
          }
          break;
        }
        case verbs::Opcode::kRecv: {
          NativeBuffer* rb = buf_of(wc.wr_id);
          net::ByteSpan frame(rb->span.data(), wc.byte_len);
          co_await host.compute(cm.cq_poll() + cm.thread_wakeup() + cm.rpc_framework());
          if (conn->cancelled) co_return;
          const auto type = static_cast<FrameType>(frame[0]);
          if (type == FrameType::kResp) {
            deliver_response(conn, frame, rb, /*is_recv_slot=*/true);
            // NOTE: reposted by the caller after deserialization.
          } else if (type == FrameType::kBatch) {
            // Server-coalesced eager responses: split into pooled copies
            // (each sub-response owns its buffer like a fetched response),
            // then recycle the receive slot. One copy charge covers the
            // whole frame.
            std::uint32_t count = 0;
            std::memcpy(&count, frame.data() + 1, 4);
            co_await host.compute(cm.direct_copy(wc.byte_len));
            if (conn->cancelled) co_return;
            std::size_t off = 5 + 4 * static_cast<std::size_t>(count);
            for (std::uint32_t i = 0; i < count; ++i) {
              std::uint32_t sub_len = 0;
              std::memcpy(&sub_len, frame.data() + 5 + 4 * static_cast<std::size_t>(i), 4);
              NativeBuffer* sub = shadow_.acquire_sized(sub_len);
              std::memcpy(sub->span.data(), frame.data() + off, sub_len);
              off += sub_len;
              deliver_response(conn, net::ByteSpan(sub->span.data(), sub_len), sub,
                               /*is_recv_slot=*/false);
            }
            repost_recv(conn, rb);
          } else if (type == FrameType::kCtrlResp) {
            std::uint32_t rkey = 0, len = 0;
            std::uint64_t off = 0;
            parse_control(frame, rkey, off, len);
            host_.sched().spawn(fetch_response(conn, rkey, off, len));
            repost_recv(conn, rb);
          } else if (type == FrameType::kNack) {
            // The server refused to RDMA-READ our rendezvous source (its
            // pool hit the demand-allocation cap). Wake the call, which
            // retries over the socket path.
            std::uint32_t rkey = 0;
            std::memcpy(&rkey, frame.data() + 1, 4);
            for (auto it = conn->pending.begin(); it != conn->pending.end(); ++it) {
              PendingCall* pc = it->second;
              if (pc->rendezvous_buf != nullptr && pc->rendezvous_buf->mr.rkey == rkey) {
                conn->pending.erase(it);
                pc->nacked = true;
                pc->done.set();
                break;
              }
            }
            repost_recv(conn, rb);
          } else {
            repost_recv(conn, rb);  // unknown frame; drop
          }
          break;
        }
        default:
          break;
      }
    }
  } catch (const sim::ChannelClosed&) {
    // Shutdown path.
  } catch (const verbs::VerbsError& e) {
    const bool was_broken = conn->broken;
    fail_all(*conn, e.what());
    if (!conn->cancelled && !was_broken) {
      note_reconnect(rpc::ReconnectCause::kQpError);
    }
  }
}

sim::Co<void> RdmaRpcClient::append_to_batch(ConnectionPtr conn, net::Bytes payload,
                                             const trace::TraceContext& ctx) {
  rpc::CallBatcher& b = conn->batcher;
  // Batch frames ride the eager path, so the whole frame must fit the
  // peer's pre-posted receive buffers: clamp the byte limit to the
  // negotiated threshold.
  const std::size_t limit = std::min(batch_.max_bytes, conn->eager_threshold);
  if (b.would_overflow(payload.size(), limit)) {
    ++stats_.batch_flush_full;
    co_await flush_batch(conn);
    if (conn->cancelled || conn->broken) co_return;
  }
  const bool was_empty = b.empty();
  if (was_empty && ctx.valid()) conn->batch_ctx = ctx;
  b.append(std::move(payload), host_.sched().now());
  ++stats_.batched_calls;
  if (b.full() || b.bytes() >= limit) {
    ++stats_.batch_flush_full;
    co_await flush_batch(conn);
  } else if (was_empty) {
    host_.sched().spawn(batch_timer(conn, b.epoch(), b.adaptive_linger()));
  }
}

sim::Task RdmaRpcClient::batch_timer(ConnectionPtr conn, std::uint64_t epoch,
                                     sim::Dur linger) {
  // A zero linger still suspends one scheduler tick, so same-timestamp
  // arrivals coalesce while a lone caller's flush happens "now".
  sim::Scheduler& sched = host_.sched();
  co_await sim::delay(sched, linger);
  if (conn->cancelled || conn->broken) co_return;
  const rpc::CallBatcher& b = conn->batcher;
  if (b.empty() || b.epoch() != epoch) co_return;  // a full() flush beat us
  if (linger > 0) {
    ++stats_.batch_flush_linger;
  } else {
    ++stats_.batch_flush_immediate;
  }
  co_await flush_batch(conn);
}

sim::Co<void> RdmaRpcClient::flush_batch(ConnectionPtr conn) {
  rpc::CallBatcher& b = conn->batcher;
  if (b.empty()) co_return;
  // Hoisted like receive_loop: the computes below may outlive the client.
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  trace::TraceCollector* tr = trace::active(host.tracer());
  const trace::TraceContext ctx = std::exchange(conn->batch_ctx, {});
  const sim::Time t0 = host.sched().now();

  // Take the items before any suspension so a concurrent limit-flush
  // can't double-send them.
  std::vector<net::Bytes> items = b.take();
  std::size_t payload_bytes = 0;
  for (const net::Bytes& m : items) payload_bytes += m.size();
  // [u8 kBatch][u32 count][u32 len_i x count][kCall sub-frames...] encoded
  // straight into a pooled registered buffer — one doorbell for the lot.
  const std::size_t total = 5 + 4 * items.size() + payload_bytes;
  NativeBuffer* fb = shadow_.acquire_sized(total);
  net::Byte* p = fb->span.data();
  p[0] = static_cast<net::Byte>(FrameType::kBatch);
  const std::uint32_t count = static_cast<std::uint32_t>(items.size());
  std::memcpy(p + 1, &count, 4);
  std::size_t off = 5 + 4 * items.size();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::uint32_t len = static_cast<std::uint32_t>(items[i].size());
    std::memcpy(p + 5 + 4 * i, &len, 4);
    std::memcpy(p + off, items[i].data(), items[i].size());
    off += items[i].size();
  }
  const sim::Dur encode_cost = cm.direct_copy(total) + cm.jni_call();
  co_await host.compute(encode_cost);
  // Client torn down while we computed: the pool died with it, so the
  // lease cannot be returned — just stop.
  if (conn->cancelled) co_return;
  if (conn->broken) {
    native_.release(fb);
    co_return;
  }
  try {
    const net::ByteSpan wire(fb->span.data(), total);
    co_await conn->qp->post_send(wr_of(fb), wire);
    // fb is released by receive_loop at the kSend completion.
  } catch (const std::exception& e) {
    if (conn->cancelled) co_return;
    native_.release(fb);
    fail_all(*conn, e.what());
    co_return;
  }
  if (conn->cancelled) co_return;
  ++stats_.batches_sent;
  if (tr != nullptr && ctx.valid()) {
    tr->add_complete("batch.flush", trace::Kind::kClient, trace::Category::kSend, ctx,
                     host.id(), t0, host.sched().now());
  }
}

std::size_t RdmaRpcClient::ud_budget() const {
  // A datagram must fit the path MTU; eager semantics additionally cap
  // the inner frame at the local threshold (no handshake exists on the
  // connectionless path to negotiate one — server UD rings are sized for
  // a full MTU, so the MTU is the only hard wire limit).
  return std::min(cfg_.eager_threshold + kUdHeaderBytes, verbs::UdEndpoint::kMtu);
}

verbs::AddressHandle RdmaRpcClient::ud_target(const verbs::UdService& svc,
                                              std::uint64_t sid,
                                              std::uint64_t call_id) const {
  const std::size_t i = static_cast<std::size_t>((sid ^ call_id) % svc.qpns.size());
  return verbs::AddressHandle{svc.host, svc.qpns[i]};
}

RdmaRpcClient::UdStatePtr RdmaRpcClient::ud_state() {
  if (!ud_) {
    ud_ = std::make_shared<UdState>(host_.sched());
    ud_->ep = std::make_unique<verbs::UdEndpoint>(stack_, host_, ud_->cq, ud_->cq);
    // Ring buffers hold a GRH-prefixed full-MTU datagram each; the depth
    // bounds the client's registered-memory cost per the flat-state goal.
    const std::size_t ring_buf = verbs::UdEndpoint::kGrhBytes + verbs::UdEndpoint::kMtu;
    for (int i = 0; i < cfg_.ud.client_recv_depth; ++i) {
      NativeBuffer* rb = native_.acquire(ring_buf);
      ud_->ep->post_recv(wr_of(rb), rb->span);
    }
    host_.sched().spawn(ud_receive_loop(ud_));
  }
  return ud_;
}

sim::Task RdmaRpcClient::ud_receive_loop(UdStatePtr ud) {
  // Hoisted like receive_loop: the loop may outlive the client object and
  // re-checks ud->cancelled after every resumption.
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  try {
    for (;;) {
      verbs::WorkCompletion wc = co_await ud->cq.wait();
      if (ud->cancelled) co_return;
      if (wc.opcode == verbs::Opcode::kSend) {
        if (NativeBuffer* b = buf_of(wc.wr_id); b != nullptr) native_.release(b);
        continue;
      }
      if (wc.opcode != verbs::Opcode::kRecv) continue;
      NativeBuffer* rb = buf_of(wc.wr_id);
      // Charge the poll + the copy out of the ring slot up front so the
      // demux below runs without a suspension between lookup and wakeup.
      co_await host.compute(cm.cq_poll() + cm.thread_wakeup() + cm.rpc_framework() +
                            cm.direct_copy(wc.byte_len));
      if (ud->cancelled) co_return;
      const std::size_t grh = verbs::UdEndpoint::kGrhBytes;
      if (wc.byte_len > grh + 9) {
        net::ByteSpan frame(rb->span.data() + grh, wc.byte_len - grh);
        if (static_cast<FrameType>(frame[0]) == FrameType::kResp) {
          std::uint64_t id = 0;
          for (int i = 0; i < 8; ++i) {
            id = (id << 8) | frame[1 + static_cast<std::size_t>(i)];
          }
          auto it = ud->pending.find(id);
          if (it != ud->pending.end()) {
            PendingCall* pc = it->second;
            ud->pending.erase(it);
            // Copy into a pooled buffer so the ring slot reposts
            // immediately; the caller releases the copy after
            // deserialization (never a recv slot on the UD path).
            NativeBuffer* copy = shadow_.acquire_sized(frame.size());
            std::memcpy(copy->span.data(), frame.data(), frame.size());
            pc->resp = net::ByteSpan(copy->span.data(), frame.size());
            pc->resp_buf = copy;
            pc->resp_is_recv_slot = false;
            pc->done.set();
            ++stats_.ud_responses_received;
          }
          // else: a late duplicate (the retry already completed) — drop;
          // server-side dedup guarantees it carries the same payload.
        }
      }
      if (!ud->cancelled && ud->ep) {
        ud->ep->post_recv(wr_of(rb), rb->span);
      } else {
        native_.release(rb);
      }
    }
  } catch (const sim::ChannelClosed&) {
    // Shutdown path.
  }
}

sim::Co<void> RdmaRpcClient::ud_append_to_batch(UdStatePtr ud, net::Address addr,
                                                net::Bytes payload,
                                                const trace::TraceContext& ctx) {
  auto it = ud_dests_.find(addr);
  if (it == ud_dests_.end()) {
    it = ud_dests_.emplace(addr, std::make_unique<UdDest>(batch_)).first;
  }
  UdDest& dest = *it->second;
  rpc::CallBatcher& b = dest.batcher;
  // The whole kUdCall datagram must fit the MTU: clamp the byte limit so
  // wrapper + batch headers (9 + 5 + 4*count) always fit in the slack.
  const std::size_t limit = std::min(
      batch_.max_bytes, std::min(cfg_.eager_threshold, verbs::UdEndpoint::kMtu - 512));
  if (b.would_overflow(payload.size(), limit)) {
    ++stats_.batch_flush_full;
    co_await ud_flush_batch(ud, addr);
    if (ud->cancelled) co_return;
  }
  const bool was_empty = b.empty();
  if (was_empty && ctx.valid()) dest.batch_ctx = ctx;
  b.append(std::move(payload), host_.sched().now());
  ++stats_.batched_calls;
  if (b.full() || b.bytes() >= limit) {
    ++stats_.batch_flush_full;
    co_await ud_flush_batch(ud, addr);
  } else if (was_empty) {
    host_.sched().spawn(ud_batch_timer(ud, addr, b.epoch(), b.adaptive_linger()));
  }
}

sim::Task RdmaRpcClient::ud_batch_timer(UdStatePtr ud, net::Address addr,
                                        std::uint64_t epoch, sim::Dur linger) {
  sim::Scheduler& sched = host_.sched();
  co_await sim::delay(sched, linger);
  if (ud->cancelled) co_return;
  auto it = ud_dests_.find(addr);
  if (it == ud_dests_.end()) co_return;
  const rpc::CallBatcher& b = it->second->batcher;
  if (b.empty() || b.epoch() != epoch) co_return;  // a full() flush beat us
  if (linger > 0) {
    ++stats_.batch_flush_linger;
  } else {
    ++stats_.batch_flush_immediate;
  }
  co_await ud_flush_batch(ud, addr);
}

sim::Co<void> RdmaRpcClient::ud_flush_batch(UdStatePtr ud, net::Address addr) {
  auto dit = ud_dests_.find(addr);
  if (dit == ud_dests_.end()) co_return;
  UdDest& dest = *dit->second;
  rpc::CallBatcher& b = dest.batcher;
  if (b.empty()) co_return;
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  trace::TraceCollector* tr = trace::active(host.tracer());
  const trace::TraceContext ctx = std::exchange(dest.batch_ctx, {});
  const sim::Time t0 = host.sched().now();

  std::vector<net::Bytes> items = b.take();
  std::size_t payload_bytes = 0;
  for (const net::Bytes& m : items) payload_bytes += m.size();
  // [u8 kUdCall][u64 session][u8 kBatch][u32 count][u32 len_i][sub-frames]
  // — one datagram, one doorbell for the lot.
  const std::uint64_t sid = session_id(host_);
  const std::size_t total = kUdHeaderBytes + 5 + 4 * items.size() + payload_bytes;
  NativeBuffer* fb = shadow_.acquire_sized(total);
  net::Byte* p = fb->span.data();
  p[0] = static_cast<net::Byte>(FrameType::kUdCall);
  for (int i = 0; i < 8; ++i) {
    p[1 + i] = static_cast<net::Byte>((sid >> (8 * (7 - i))) & 0xff);
  }
  p[9] = static_cast<net::Byte>(FrameType::kBatch);
  const std::uint32_t count = static_cast<std::uint32_t>(items.size());
  std::memcpy(p + 10, &count, 4);
  std::size_t off = kUdHeaderBytes + 5 + 4 * items.size();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::uint32_t len = static_cast<std::uint32_t>(items[i].size());
    std::memcpy(p + 14 + 4 * i, &len, 4);
    std::memcpy(p + off, items[i].data(), items[i].size());
    off += items[i].size();
  }
  co_await host.compute(cm.direct_copy(total) + cm.jni_call());
  if (ud->cancelled) co_return;
  const verbs::UdService* svc = stack_.ud_service(addr);
  if (svc == nullptr || svc->qpns.empty() || !ud->ep) {
    // Service withdrawn (server stopped): the datagrams are "lost"; the
    // callers time out and their retries take the RC or socket path.
    native_.release(fb);
    co_return;
  }
  try {
    const net::ByteSpan wire(fb->span.data(), total);
    co_await ud->ep->post_send(wr_of(fb), ud_target(*svc, sid, b.epoch()), wire);
    // fb is released by ud_receive_loop at the kSend completion.
  } catch (const std::exception&) {
    if (ud->cancelled) co_return;
    // A failed post is indistinguishable from a lost datagram: drop it
    // and let the per-call timeouts drive the retries.
    native_.release(fb);
    co_return;
  }
  if (ud->cancelled) co_return;
  ++stats_.batches_sent;
  ++stats_.ud_datagrams_sent;
  if (tr != nullptr && ctx.valid()) {
    tr->add_complete("batch.flush", trace::Kind::kClient, trace::Category::kSend, ctx,
                     host.id(), t0, host.sched().now());
  }
}

sim::Co<bool> RdmaRpcClient::call_attempt_ud(net::Address addr, const verbs::UdService& svc,
                                             const rpc::MethodKey& key,
                                             const rpc::Writable& param,
                                             rpc::Writable* response,
                                             std::uint64_t call_id, bool retried,
                                             trace::TraceCollector* tr,
                                             const trace::TraceContext& t_parent) {
  co_await pool_ready_.wait();
  const cluster::CostModel& cm = host_.cost();
  const sim::Time t_start = host_.sched().now();
  trace::SpanScope rpc(tr, "rpc.ud:" + key.method, trace::Kind::kClient,
                       trace::Category::kWire, t_parent, host_.id());
  const trace::TraceContext ctx = rpc.context();
  co_await host_.compute(cm.rpc_framework());

  // --- Serialize the whole datagram: wrapper + a complete kCall frame ---
  const std::uint64_t sid = session_id(host_);
  const sim::Time t_ser_start = host_.sched().now();
  RDMAOutputStream out(cm, shadow_, key);
  const std::uint64_t id = call_id;
  const sim::Time deadline =
      retry_.call_timeout > 0 ? host_.sched().now() + retry_.call_timeout : 0;
  try {
    out.write_u8(static_cast<std::uint8_t>(FrameType::kUdCall));
    out.write_u64(sid);
    out.write_u8(static_cast<std::uint8_t>(FrameType::kCall));
    std::uint64_t wire_id = id;
    if (ctx.valid()) wire_id |= trace::kWireTraceFlag;
    if (deadline != 0) wire_id |= trace::kWireDeadlineFlag;
    if (retried && session_.enabled) wire_id |= trace::kWireRetryFlag;
    out.write_u64(wire_id);
    if (ctx.valid()) {
      out.write_u64(ctx.trace_id);
      out.write_u64(ctx.span_id);
    }
    if (deadline != 0) out.write_u64(deadline);
    out.write_text(key.protocol);
    out.write_text(key.method);
    param.write(out);
  } catch (const PoolExhaustedError&) {
    // Let the RC path re-serialize and run its pool-exhaustion degrade
    // (socket fallback); the stream destructor returns the partial lease.
    rpc.end();
    co_return false;
  }
  co_await host_.compute(out.take_accrued());
  const sim::Time t_serialized = host_.sched().now();

  const std::uint64_t regets = out.regets();
  const std::size_t dg_len = out.length();
  const std::size_t msg_len = dg_len - kUdHeaderBytes;  // inner frame
  if (dg_len > ud_budget()) {
    // Too big for one datagram: release the lease and let the RC path
    // take it (eager-over-RC or rendezvous).
    native_.release(out.take_buffer());
    rpc.end();
    co_return false;
  }
  if (ctx.valid()) {
    tr->add_complete("serialize", trace::Kind::kInternal,
                     trace::Category::kSerialization, ctx, host_.id(), t_ser_start,
                     t_serialized);
  }
  const net::ByteSpan dg = out.data();
  NativeBuffer* buf = out.take_buffer();
  shadow_.update_history(key, dg_len);

  UdStatePtr ud = ud_state();
  PendingCall pc(host_.sched());
  ud->pending[id] = &pc;

  // --- Send: coalesced when small, else one datagram ---------------------
  const std::size_t batch_limit = std::min(
      batch_.max_bytes, std::min(cfg_.eager_threshold, verbs::UdEndpoint::kMtu - 512));
  const bool batchable = batch_.batchable(msg_len) && msg_len <= batch_limit;
  try {
    if (batchable) {
      // Append the *inner* frame: the flush re-wraps the batch in one
      // kUdCall header carrying the shared session id.
      net::Bytes payload(dg.begin() + kUdHeaderBytes, dg.end());
      native_.release(buf);
      buf = nullptr;
      co_await host_.compute(cm.direct_copy(msg_len));
      co_await ud_append_to_batch(ud, addr, std::move(payload), ctx);
    } else {
      co_await host_.compute(cm.jni_call());  // one JNI crossing per post
      co_await ud->ep->post_send(wr_of(buf), ud_target(svc, sid, id), dg);
      buf = nullptr;  // released by ud_receive_loop at the kSend completion
      ++stats_.ud_datagrams_sent;
    }
  } catch (const std::exception& e) {
    ud->pending.erase(id);
    if (buf != nullptr) native_.release(buf);
    throw rpc::RpcTransportError(e.what());
  }
  const sim::Time t_sent = host_.sched().now();
  if (ctx.valid()) {
    const trace::SpanId send = tr->add_complete(
        "send", trace::Kind::kInternal, trace::Category::kSend, ctx, host_.id(),
        t_serialized, t_sent);
    tr->annotate(send, "path", batchable ? "ud-batched" : "ud");
  }

  rpc::MethodProfile& prof = stats_.method(key);
  prof.mem_adjustments.add(static_cast<double>(regets));
  prof.serialize_us.add(sim::to_us(t_serialized - t_start));
  prof.send_us.add(sim::to_us(t_sent - t_serialized));
  prof.msg_bytes.add(static_cast<double>(msg_len));
  stats_.record_size(prof, static_cast<std::uint32_t>(msg_len));
  ++stats_.calls_sent;

  // --- Wait. A lost datagram (either direction) is pure silence: the
  // per-attempt timeout fires and the outer retry loop retransmits with
  // the retry flag set; the server's session-keyed retry cache makes the
  // re-execution window exactly-once. ------------------------------------
  if (const sim::Dur dl = retry_.call_timeout; dl > 0) {
    const bool completed = co_await pc.done.wait_for(dl);
    if (!completed) {
      // Unregister so a late response is dropped by the receive loop.
      ud->pending.erase(id);
      throw rpc::RpcTimeoutError("call timed out after " +
                                 std::to_string(sim::to_ms(dl)) + " ms");
    }
  } else {
    co_await pc.done.wait();
  }
  if (pc.transport_error) throw rpc::RpcTransportError(pc.error_msg);

  // --- Deserialize from the pooled copy ---------------------------------
  const sim::Time t_deser = host_.sched().now();
  RDMAInputStream in(cm, pc.resp.subspan(9));  // skip [type][id]
  const std::uint8_t status = in.read_u8();
  const bool is_error = status != static_cast<std::uint8_t>(rpc::RpcStatus::kSuccess);
  std::string error_msg;
  if (is_error) {
    error_msg = in.read_text();
  } else if (response != nullptr) {
    response->read_fields(in);
  }
  co_await host_.compute(in.take_accrued());
  if (ctx.valid()) {
    tr->add_complete("deserialize", trace::Kind::kInternal,
                     trace::Category::kSerialization, ctx, host_.id(), t_deser,
                     host_.sched().now());
  }
  native_.release(pc.resp_buf);
  if (status == static_cast<std::uint8_t>(rpc::RpcStatus::kSessionExpired)) {
    throw rpc::SessionExpiredException(error_msg);
  }
  if (status == static_cast<std::uint8_t>(rpc::RpcStatus::kBusy)) {
    throw rpc::ServerBusyException(error_msg);
  }
  if (is_error) throw rpc::RemoteException(error_msg);
  prof.total_us.add(sim::to_us(host_.sched().now() - t_start));
  rpc.end();
  co_return true;
}

sim::Co<void> RdmaRpcClient::call_via_fallback(net::Address addr, const rpc::MethodKey& key,
                                               const rpc::Writable& param,
                                               rpc::Writable* response) {
  if (!fallback_) {
    fallback_ = std::make_unique<rpc::SocketRpcClient>(host_, sockets_,
                                                       net::Transport::kIPoIB);
    // The fallback client enforces only the per-attempt deadline; retries
    // and backoff stay with this client's outer retry loop.
    rpc::RpcRetryPolicy attempt_only;
    attempt_only.call_timeout = retry_.call_timeout;
    fallback_->set_retry_policy(attempt_only);
    fallback_->set_batch(batch_);
    // The fallback endpoint is its own client and mints its own durable
    // session id; it only needs the same knob so its calls stay dedupable.
    fallback_->set_session(session_);
  }
  const net::Address companion{addr.host,
                               static_cast<std::uint16_t>(addr.port + kSocketFallbackPortOffset)};
  co_await fallback_->call(companion, key, param, response);
}

sim::Co<bool> RdmaRpcClient::call_attempt_onesided(net::Address addr,
                                                   const rpc::MethodKey& key,
                                                   const rpc::Writable& param,
                                                   rpc::Writable* response,
                                                   trace::TraceCollector* tr,
                                                   const trace::TraceContext& t_parent) {
  const std::optional<std::string> entity = param.onesided_key(key.protocol, key.method);
  if (!entity) co_return false;
  auto cached = onesided_cache_.find(addr);
  if (cached == onesided_cache_.end()) {
    const verbs::OneSidedService* adv = stack_.onesided_service(addr);
    if (adv == nullptr) co_return false;  // server exports no region
    cached = onesided_cache_.emplace(addr, *adv).first;
  }
  verbs::OneSidedService svc = cached->second;
  constexpr std::size_t kMeta =
      OneSidedRegion::kHeaderBytes + OneSidedRegion::kTrailerBytes;
  if (svc.slots == 0 || svc.slot_bytes <= kMeta) co_return false;
  ConnectionPtr conn;
  try {
    conn = co_await get_connection(addr);
  } catch (const verbs::VerbsError&) {
    co_return false;  // the RPC path owns bootstrap-failure fallback
  }
  // Connection-kill fault hook (mirrors the RPC send path): a scheduled
  // kill fires on the first attempt that touches the link, one-sided
  // READs included. The fallback RPC re-bootstraps and carries the call
  // through the session/retry machinery.
  if (net::FaultPlan* plan = stack_.fabric().fault_plan();
      plan != nullptr && plan->kills_enabled() && !conn->broken &&
      plan->take_kill(host_.id(), addr.host, host_.sched().now())) {
    teardown_connection(conn, addr, rpc::ReconnectCause::kFaultInjected,
                        "connection killed (injected fault)");
    ++stats_.onesided_fallbacks;
    co_return false;
  }
  const cluster::CostModel& cm = host_.cost();
  const sim::Time t_start = host_.sched().now();
  const std::uint64_t h =
      OneSidedRegion::hash_key(rpc::onesided_entry_key(key.protocol, key.method, *entity));

  NativeBuffer* dst = shadow_.try_acquire_sized(svc.slot_bytes);
  if (dst == nullptr) {
    ++stats_.onesided_fallbacks;  // capped pool refused the staging lease
    co_return false;
  }
  // Fallback ladder: seqlock conflict (bounded retries) -> stale
  // generation (one advertisement refresh) -> miss -> RPC. Every exit
  // below releases `dst` exactly once; a cancelled client is the one
  // exception — the pool died with it (same rule as fetch_response).
  bool refreshed = false;
  int conflicts = 0;
  for (;;) {
    const std::size_t slot = static_cast<std::size_t>(h % svc.slots);
    const std::uint64_t token = (conn->next_read_token++ << 1) | 1;
    sim::SimEvent read_done(host_.sched());
    conn->read_waiters[token] = &read_done;
    bool read_failed = false;
    try {
      co_await host_.compute(cm.jni_call());  // one JNI crossing per post
      net::MutByteSpan into(dst->span.data(), svc.slot_bytes);
      co_await conn->qp->post_rdma_read(
          token, into,
          verbs::RemoteBuffer{svc.rkey,
                              static_cast<std::uint64_t>(slot) * svc.slot_bytes,
                              svc.slot_bytes});
      co_await read_done.wait();  // receive_loop routes the completion here
      conn->read_waiters.erase(token);
      if (conn->cancelled) {
        throw rpc::RpcTransportError("client closed during one-sided read");
      }
      read_failed = conn->read_errors.erase(token) > 0;
    } catch (const rpc::RpcTransportError&) {
      throw;
    } catch (const std::exception&) {
      // QP dead (kill/teardown raced the post): let the RPC path
      // re-bootstrap and carry the call.
      conn->read_waiters.erase(token);
      if (!conn->cancelled) {
        native_.release(dst);
        ++stats_.onesided_fallbacks;
        co_return false;
      }
      throw rpc::RpcTransportError("client closed during one-sided read");
    }
    if (read_failed) break;  // remote region gone at the verbs layer
    const net::Byte* s = dst->span.data();
    std::uint64_t v1 = 0, gen = 0, slot_hash = 0, v2 = 0;
    std::uint32_t len = 0;
    std::memcpy(&v1, s, 8);
    std::memcpy(&gen, s + 8, 8);
    std::memcpy(&slot_hash, s + 16, 8);
    std::memcpy(&len, s + 24, 4);
    std::memcpy(&v2, s + svc.slot_bytes - 8, 8);
    if (v1 != v2 || (v1 & 1) != 0) {
      // Seqlock write window observed: retry within the budget, then
      // degrade — a write-hot entry must not spin.
      if (++conflicts > cfg_.onesided.max_version_retries) {
        ++stats_.onesided_conflict_fallbacks;
        break;
      }
      continue;
    }
    if (gen != svc.generation) {
      // Stale advertisement (the server re-exported; retired slots carry
      // generation 0) — refresh once, then degrade.
      const verbs::OneSidedService* fresh = stack_.onesided_service(addr);
      if (!refreshed && fresh != nullptr && fresh->generation != svc.generation &&
          fresh->slots != 0 && fresh->slot_bytes > kMeta) {
        refreshed = true;
        ++stats_.onesided_stale_refreshes;
        onesided_cache_[addr] = *fresh;
        svc = *fresh;
        if (svc.slot_bytes > dst->span.size()) {
          native_.release(dst);
          dst = shadow_.try_acquire_sized(svc.slot_bytes);
          if (dst == nullptr) {
            ++stats_.onesided_fallbacks;
            co_return false;
          }
        }
        continue;
      }
      break;
    }
    if (slot_hash != h || len == 0 ||
        len > svc.slot_bytes - kMeta) {
      // Empty slot, tombstone, or a direct-map collision with another key:
      // the entry is not published — fall back.
      ++stats_.onesided_misses;
      break;
    }
    // Consistent snapshot: deserialize the published response in place.
    ++stats_.onesided_reads;
    RDMAInputStream in(cm, net::ByteSpan(s + OneSidedRegion::kHeaderBytes, len));
    if (response != nullptr) response->read_fields(in);
    co_await host_.compute(in.take_accrued());
    native_.release(dst);
    if (tr != nullptr) {
      tr->add_complete("onesided:" + key.method, trace::Kind::kClient,
                       trace::Category::kOneSided, t_parent, host_.id(), t_start,
                       host_.sched().now());
    }
    co_return true;
  }
  native_.release(dst);
  ++stats_.onesided_fallbacks;
  if (tr != nullptr) {
    tr->add_complete("onesided.fallback:" + key.method, trace::Kind::kClient,
                     trace::Category::kOneSided, t_parent, host_.id(), t_start,
                     host_.sched().now());
  }
  co_return false;
}

sim::Co<void> RdmaRpcClient::call_attempt(net::Address addr, const rpc::MethodKey& key,
                                          const rpc::Writable& param,
                                          rpc::Writable* response, std::uint64_t call_id,
                                          bool retried) {
  // Consume the ambient trace parent before the first suspension point
  // (see trace.hpp's propagation discipline).
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const trace::TraceContext t_parent =
      tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  if (fallback_addrs_.count(addr) != 0) {
    trace::activate(tr, t_parent);
    co_await call_via_fallback(addr, key, param, response);
    co_return;
  }
  // One-sided fast path (onesided.enabled): eligible read-mostly lookups
  // resolve against the server's exported seqlock region with a single
  // RDMA READ, bypassing its admission/handler chain entirely. A false
  // return (miss, conflict budget spent, stale generation, staging lease
  // refused) degrades to the normal RPC path below.
  if (cfg_.onesided.enabled) {
    const bool handled =
        co_await call_attempt_onesided(addr, key, param, response, tr, t_parent);
    if (handled) co_return;
  }
  // UD eager path (ud.enabled): sub-MTU calls ride connectionless
  // datagrams to the server's advertised UD endpoint pool — no RC
  // bootstrap, no per-connection server state. A false return means the
  // call did not fit the datagram budget (or the pool refused the lease)
  // and falls through to the RC path below.
  if (cfg_.ud.enabled) {
    if (const verbs::UdService* svc = stack_.ud_service(addr);
        svc != nullptr && !svc->qpns.empty()) {
      const bool handled = co_await call_attempt_ud(addr, *svc, key, param, response,
                                                    call_id, retried, tr, t_parent);
      if (handled) co_return;
      ++stats_.ud_rc_fallbacks;
    }
  }
  const cluster::CostModel& cm = host_.cost();
  const sim::Time t_start = host_.sched().now();
  trace::SpanScope rpc(tr, "rpc:" + key.method, trace::Kind::kClient,
                       trace::Category::kWire, t_parent, host_.id());
  const trace::TraceContext ctx = rpc.context();
  ConnectionPtr conn;
  bool bootstrap_failed = false;  // co_await is not allowed inside a handler
  try {
    conn = co_await get_connection(addr);
  } catch (const verbs::VerbsError& e) {
    if (!cfg_.fallback_to_socket) throw rpc::RpcTransportError(e.what());
    // Bootstrap exchange failed at the verbs layer: this address drops to
    // socket mode for the rest of the session (Section III-D's escape
    // hatch), starting with this very call.
    fallback_addrs_.insert(addr);
    ++stats_.socket_fallbacks;
    if (tr != nullptr) {
      tr->add_complete("fault.bootstrap:" + key.method, trace::Kind::kClient,
                       trace::Category::kFault, ctx, host_.id(), t_start,
                       host_.sched().now());
    }
    bootstrap_failed = true;
  }
  if (bootstrap_failed) {
    rpc.end();
    trace::activate(tr, t_parent);
    co_await call_via_fallback(addr, key, param, response);
    co_return;
  }
  // Shared Hadoop RPC framework cost (call table, synchronization) — the
  // same charge the socket path pays; RPCoIB only removes buffer and
  // transport overheads, not the framework around them.
  co_await host_.compute(cm.rpc_framework());

  // --- Serialization: directly into a pooled, registered buffer ---------
  const sim::Time t_ser_start = host_.sched().now();
  RDMAOutputStream out(cm, shadow_, key);
  const std::uint64_t id = call_id;
  // Same deadline stamping as the socket client: only with a configured
  // call timeout, so the default wire format stays byte-identical.
  const sim::Time deadline =
      retry_.call_timeout > 0 ? host_.sched().now() + retry_.call_timeout : 0;
  bool pool_exhausted = false;
  try {
    out.write_u8(static_cast<std::uint8_t>(FrameType::kCall));
    std::uint64_t wire_id = id;
    if (ctx.valid()) wire_id |= trace::kWireTraceFlag;
    if (deadline != 0) wire_id |= trace::kWireDeadlineFlag;
    // Mark retried attempts so the server can refuse them (instead of
    // re-executing) when the session that held the dedup state is gone.
    if (retried && session_.enabled) wire_id |= trace::kWireRetryFlag;
    out.write_u64(wire_id);
    if (ctx.valid()) {
      // Flagged id announces two extra context words; untraced calls keep
      // the seed wire format byte-for-byte.
      out.write_u64(ctx.trace_id);
      out.write_u64(ctx.span_id);
    }
    if (deadline != 0) out.write_u64(deadline);
    out.write_text(key.protocol);
    out.write_text(key.method);
    param.write(out);
  } catch (const PoolExhaustedError&) {
    // A mid-serialization re-get was refused by the capped pool: degrade
    // to the socket path for this one call, exactly like a rendezvous
    // NACK (non-sticky — the next call tries RDMA again). The stream's
    // destructor returns the partial buffer.
    pool_exhausted = true;
  }
  if (pool_exhausted) {
    ++stats_.nack_fallbacks;
    if (tr != nullptr) {
      tr->add_complete("overload.pool:" + key.method, trace::Kind::kClient,
                       trace::Category::kOverload, ctx, host_.id(), t_ser_start,
                       host_.sched().now());
    }
    rpc.end();
    if (!cfg_.fallback_to_socket) {
      throw rpc::ServerBusyException("client buffer pool exhausted");
    }
    trace::activate(tr, t_parent);
    co_await call_via_fallback(addr, key, param, response);
    co_return;
  }
  co_await host_.compute(out.take_accrued());
  const sim::Time t_serialized = host_.sched().now();
  if (ctx.valid()) {
    const trace::SpanId ser = tr->add_complete(
        "serialize", trace::Kind::kInternal, trace::Category::kSerialization, ctx,
        host_.id(), t_ser_start, t_serialized);
    // Pool acquire (initial lease + one re-get per size-history miss) is
    // the RPCoIB replacement for heap allocation; carve it out of the
    // serialization window so the report shows it separately.
    sim::Dur acq = sim::from_us(RDMAOutputStream::kAcquireUs) * (1 + out.regets());
    acq = std::min<sim::Dur>(acq, t_serialized - t_ser_start);
    tr->add_complete("pool.acquire", trace::Kind::kInternal, trace::Category::kBuffer,
                     tr->context_of(ser), host_.id(), t_ser_start, t_ser_start + acq);
  }

  const std::uint64_t regets = out.regets();
  const std::size_t msg_len = out.length();
  const net::ByteSpan msg = out.data();
  NativeBuffer* buf = out.take_buffer();
  shadow_.update_history(key, msg_len);

  PendingCall pc(host_.sched());
  conn->pending[id] = &pc;

  // --- Hybrid send: coalesced when small, eager below the negotiated
  // threshold, rendezvous above ------------------------------------------
  const std::size_t batch_limit = std::min(batch_.max_bytes, conn->eager_threshold);
  const bool batchable = batch_.batchable(msg_len) && msg_len <= batch_limit;
  try {
    if (batchable) {
      if (conn->broken) throw rpc::RpcTransportError("connection broken");
      // Coalescing copies the serialized frame out of the pooled buffer so
      // the lease returns immediately; the batch amortizes the per-call
      // doorbell + JNI crossing that the copy replaces.
      net::Bytes payload(msg.begin(), msg.end());
      native_.release(buf);
      buf = nullptr;
      co_await host_.compute(cm.direct_copy(msg_len));
      co_await append_to_batch(conn, std::move(payload), ctx);
    } else if (msg_len <= conn->eager_threshold) {
      co_await host_.compute(cm.jni_call());  // one JNI crossing per post
      co_await conn->qp->post_send(wr_of(buf), msg);
      buf = nullptr;  // released by receive_loop at the kSend completion
    } else {
      co_await host_.compute(cm.jni_call());  // one JNI crossing per post
      // Track the leased source on the pending call (not just this frame)
      // so fail_all() can return it to the pool if the connection dies
      // while the rendezvous is in flight.
      pc.rendezvous_buf = buf;
      buf = nullptr;
      const ControlFrame ctrl = ControlFrame::make(
          FrameType::kCtrlCall, pc.rendezvous_buf->mr.rkey,
          static_cast<std::uint64_t>(msg.data() - pc.rendezvous_buf->mr.addr),
          static_cast<std::uint32_t>(msg_len));
      co_await conn->qp->post_send(wr_of(nullptr), ctrl.span());
      // The lease holds until the response arrives (implicit ack).
    }
  } catch (const std::exception& e) {
    conn->pending.erase(id);
    if (buf != nullptr) native_.release(buf);
    release_rendezvous(pc);
    if (session_.enabled && !conn->cancelled && !conn->broken) {
      // The post failed with the QP in error state mid-call: tear the
      // connection down now so the retry re-bootstraps instead of landing
      // on the dead QP again. (Sessionless builds keep the lazy detection
      // at the next get_connection, byte-identical to the old behavior.)
      teardown_connection(conn, addr, rpc::ReconnectCause::kQpError, e.what());
    }
    throw rpc::RpcTransportError(e.what());
  }
  // Connection-kill fault hook: the request is on the wire, so the server
  // side may execute it — the retry that follows this teardown is exactly
  // the duplicate-execution window the session-keyed retry cache closes.
  if (net::FaultPlan* plan = stack_.fabric().fault_plan();
      plan != nullptr && plan->kills_enabled() && !conn->broken &&
      plan->take_kill(host_.id(), addr.host, host_.sched().now())) {
    teardown_connection(conn, addr, rpc::ReconnectCause::kFaultInjected,
                        "connection killed (injected fault)");
  }
  const sim::Time t_sent = host_.sched().now();
  if (ctx.valid()) {
    const trace::SpanId send = tr->add_complete(
        "send", trace::Kind::kInternal, trace::Category::kSend, ctx, host_.id(),
        t_serialized, t_sent);
    tr->annotate(send, "path",
                 batchable ? "batched"
                           : (msg_len <= conn->eager_threshold ? "eager" : "rendezvous"));
  }

  rpc::MethodProfile& prof = stats_.method(key);
  prof.mem_adjustments.add(static_cast<double>(regets));
  prof.serialize_us.add(sim::to_us(t_serialized - t_start));
  prof.send_us.add(sim::to_us(t_sent - t_serialized));
  prof.msg_bytes.add(static_cast<double>(msg_len));
  stats_.record_size(prof, static_cast<std::uint32_t>(msg_len));
  ++stats_.calls_sent;

  if (const sim::Dur deadline = retry_.call_timeout; deadline > 0) {
    const bool completed = co_await pc.done.wait_for(deadline);
    if (!completed) {
      // Unregister so a late response is recycled by the receive loop, and
      // reclaim the rendezvous source: the peer's READ window is gone.
      conn->pending.erase(id);
      release_rendezvous(pc);
      throw rpc::RpcTimeoutError("call timed out after " +
                                 std::to_string(sim::to_ms(deadline)) + " ms");
    }
  } else {
    co_await pc.done.wait();
  }
  release_rendezvous(pc);  // rendezvous source: response doubles as the ack
  if (pc.nacked) {
    // Graceful degradation: the server's registered-buffer pool is capped
    // out, so this call transparently reroutes to the companion socket
    // listener (non-sticky — the next call tries RDMA again).
    ++stats_.nack_fallbacks;
    if (tr != nullptr) {
      tr->add_complete("overload.nack:" + key.method, trace::Kind::kClient,
                       trace::Category::kOverload, ctx, host_.id(), t_sent,
                       host_.sched().now());
    }
    rpc.end();
    if (!cfg_.fallback_to_socket) {
      throw rpc::ServerBusyException("rendezvous NACK: server buffer pool exhausted");
    }
    trace::activate(tr, t_parent);
    co_await call_via_fallback(addr, key, param, response);
    co_return;
  }
  if (pc.transport_error) throw rpc::RpcTransportError(pc.error_msg);

  // --- Deserialize in place from the registered buffer ------------------
  const sim::Time t_deser = host_.sched().now();
  RDMAInputStream in(cm, pc.resp.subspan(9));  // skip [type][id]
  const std::uint8_t status = in.read_u8();
  const bool is_error = status != static_cast<std::uint8_t>(rpc::RpcStatus::kSuccess);
  std::string error_msg;
  if (is_error) {
    error_msg = in.read_text();
  } else if (response != nullptr) {
    response->read_fields(in);
  }
  co_await host_.compute(in.take_accrued());
  if (ctx.valid()) {
    tr->add_complete("deserialize", trace::Kind::kInternal,
                     trace::Category::kSerialization, ctx, host_.id(), t_deser,
                     host_.sched().now());
  }
  if (pc.resp_is_recv_slot) {
    repost_recv(conn, pc.resp_buf);
  } else {
    native_.release(pc.resp_buf);
  }
  if (status == static_cast<std::uint8_t>(rpc::RpcStatus::kSessionExpired)) {
    // Terminal: the server could not prove the first attempt never
    // executed, so the retry loop must not re-send this logical call.
    throw rpc::SessionExpiredException(error_msg);
  }
  if (status == static_cast<std::uint8_t>(rpc::RpcStatus::kBusy)) {
    throw rpc::ServerBusyException(error_msg);
  }
  if (is_error) throw rpc::RemoteException(error_msg);
  prof.total_us.add(sim::to_us(host_.sched().now() - t_start));
  rpc.end();
}

}  // namespace rpcoib::oib
