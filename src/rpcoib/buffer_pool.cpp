#include "rpcoib/buffer_pool.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace rpcoib::oib {

NativeBufferPool::NativeBufferPool(cluster::Host& host, verbs::VerbsStack& stack,
                                   PoolConfig cfg)
    : host_(host), pd_(stack, host), cfg_(cfg) {
  if (cfg_.min_class == 0 || cfg_.min_class > cfg_.max_class) {
    throw std::invalid_argument("bad pool class bounds");
  }
  for (std::size_t s = cfg_.min_class; s <= cfg_.max_class; s *= 2) {
    class_sizes_.push_back(s);
  }
  free_.resize(class_sizes_.size());
}

NativeBufferPool::~NativeBufferPool() = default;

std::size_t NativeBufferPool::class_index_for(std::size_t size) const {
  for (std::size_t i = 0; i < class_sizes_.size(); ++i) {
    if (class_sizes_[i] >= size) return i;
  }
  throw std::length_error("buffer request exceeds pool max class");
}

std::size_t NativeBufferPool::class_size_for(std::size_t size) const {
  return class_sizes_[class_index_for(size)];
}

std::unique_ptr<NativeBuffer> NativeBufferPool::make_buffer(std::size_t cls_index) {
  auto buf = std::make_unique<NativeBuffer>();
  buf->cls = cls_index;
  // Backing storage lives in a Bytes the NativeBuffer's span points into;
  // keep it alive by storing it adjacent. Simplest: allocate raw and wrap.
  backing_.push_back(net::Bytes(class_sizes_[cls_index]));
  buf->span = net::MutByteSpan(backing_.back());
  return buf;
}

sim::Co<void> NativeBufferPool::initialize(std::size_t extra_size,
                                           std::size_t extra_count) {
  if (initialized_) co_return;
  initialized_ = true;
  // Registration happens once at library load; its span is a root of its
  // own trace (no RPC is in flight yet) so the cost stays visible even
  // though it is off every call's critical path.
  trace::SpanScope reg(trace::active(host_.tracer()), "pool.register",
                       trace::Kind::kInternal, trace::Category::kBuffer,
                       trace::TraceContext{}, host_.id());
  std::size_t registered = 0;
  for (std::size_t c = 0; c < class_sizes_.size(); ++c) {
    if (class_sizes_[c] > cfg_.prealloc_max_class) break;
    for (std::size_t i = 0; i < cfg_.buffers_per_class; ++i) {
      std::unique_ptr<NativeBuffer> buf = make_buffer(c);
      buf->mr = co_await pd_.register_mr(buf->span);
      stats_.registered_bytes += buf->span.size();
      free_[c].push_back(buf.get());
      owned_.push_back(std::move(buf));
      ++registered;
    }
  }
  if (extra_size > 0) {
    const std::size_t c = class_index_for(extra_size);
    for (std::size_t i = 0; i < extra_count; ++i) {
      std::unique_ptr<NativeBuffer> buf = make_buffer(c);
      buf->mr = co_await pd_.register_mr(buf->span);
      stats_.registered_bytes += buf->span.size();
      free_[c].push_back(buf.get());
      owned_.push_back(std::move(buf));
      ++registered;
    }
  }
  if (reg) reg.annotate("buffers", std::to_string(registered));
}

NativeBuffer* NativeBufferPool::acquire(std::size_t size) {
  const std::size_t c = class_index_for(size);
  ++stats_.acquires;
  if (!free_[c].empty()) {
    ++stats_.freelist_hits;
    NativeBuffer* buf = free_[c].back();
    free_[c].pop_back();
    buf->leased = true;
    return buf;
  }
  // Pool ran dry for this class: demand-allocate + register (untimed here;
  // the miss is visible in stats and the registration cost is charged by
  // the caller if it cares — on the paper's workloads this path is cold).
  ++stats_.demand_allocations;
  std::unique_ptr<NativeBuffer> buf = make_buffer(c);
  buf->mr = pd_.register_mr_untimed(buf->span);
  stats_.registered_bytes += buf->span.size();
  NativeBuffer* raw = buf.get();
  owned_.push_back(std::move(buf));
  raw->leased = true;
  return raw;
}

NativeBuffer* NativeBufferPool::try_acquire(std::size_t size) {
  const std::size_t c = class_index_for(size);
  if (free_[c].empty() && cfg_.demand_alloc_cap != 0 &&
      stats_.demand_allocations >= cfg_.demand_alloc_cap) {
    ++stats_.demand_denied;
    return nullptr;
  }
  return acquire(size);
}

void NativeBufferPool::release(NativeBuffer* buf) {
  if (buf == nullptr) return;
  if (!buf->leased) throw std::logic_error("double release of pooled buffer");
  buf->leased = false;
  ++stats_.releases;
  free_[buf->cls].push_back(buf);
}

NativeBuffer* ShadowPool::acquire_for(const rpc::MethodKey& key) {
  auto it = history_.find(key);
  const std::size_t want = it == history_.end() ? native_.config().min_class : it->second;
  return native_.acquire(want);
}

void ShadowPool::update_history(const rpc::MethodKey& key, std::size_t used) {
  const std::size_t fit = native_.class_size_for(used == 0 ? 1 : used);
  auto [it, inserted] = history_.emplace(key, fit);
  if (!inserted) {
    if (fit > it->second) {
      // The stream had to re-get bigger buffers: grow the record.
      it->second = fit;
      ++native_.stats().history_misses;
    } else if (fit < it->second) {
      // Oversized: shrink toward the actual need to bound footprint.
      it->second = fit;
      ++native_.stats().history_shrinks;
    } else {
      ++native_.stats().history_hits;
    }
  }
}

void ShadowPool::release_for(const rpc::MethodKey& key, NativeBuffer* buf,
                             std::size_t used) {
  update_history(key, used);
  native_.release(buf);
}

std::size_t ShadowPool::history(const rpc::MethodKey& key) const {
  auto it = history_.find(key);
  return it == history_.end() ? 0 : it->second;
}

}  // namespace rpcoib::oib
