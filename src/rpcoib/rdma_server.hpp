// RPCoIB server (paper Section III-D).
//
// Keeps the default server's thread architecture — Listener, Reader,
// Handler pool, Responder — but the Listener accepts QP bootstrap over the
// socket address, the Reader polls a completion queue for every
// connection, calls arrive in pooled registered buffers (eager) or are
// RDMA-READ in (rendezvous), and responses are serialized straight into
// pooled registered buffers whose size comes from per-method history.
//
// `shards` > 1 replicates the whole receive/dispatch chain: connections
// are assigned round-robin (by dense connection id) to independent shards,
// each with its own completion queue, its own SRQ stripe of the shared
// receive ring, its own CallPipeline (call queue + admission + retry
// cache) and its own handler subset — so CQ polling, admission and
// dispatch never contend across shards. The default of 1 keeps the server
// operation-for-operation identical to the unsharded code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "rpc/pipeline.hpp"
#include "rpc/rpc.hpp"
#include "rpc/socket_server.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/onesided.hpp"
#include "rpcoib/rdma_streams.hpp"
#include "rpcoib/wire.hpp"
#include "sim/channel.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib {

struct RdmaServerConfig {
  int num_handlers = 8;
  /// Reader shards (server.shards). Each shard owns a disjoint set of
  /// connections end to end: CQ, SRQ stripe, call queue, handlers.
  int shards = 1;
  /// Let an idle shard's handlers take queued calls from sibling shards
  /// (per-call bookkeeping stays on the call's home shard). Off by
  /// default: stealing trades strict per-shard ordering for utilization.
  bool steal = false;
  std::size_t eager_threshold = WireDefaults::kEagerThreshold;
  std::size_t recv_buf_size = WireDefaults::kRecvBufSize;
  /// Per-connection receive-ring depth — only used in legacy mode
  /// (pool.srq_depth == 0). With the SRQ the server-wide ring is sized by
  /// pool.srq_depth / pool.srq_low_watermark instead (split into
  /// per-shard stripes when shards > 1).
  int recv_depth = WireDefaults::kRecvDepth;
  PoolConfig pool{};
  /// Evict connections with no receive activity for this long (LRU sweep,
  /// runs at half the threshold). The client re-bootstraps transparently
  /// on its next call. 0 = never evict.
  sim::Dur srq_idle_evict = 0;
  /// Also run a plain socket RPC listener at `addr.port +
  /// kSocketFallbackPortOffset` mirroring this server's dispatcher, so
  /// clients whose QP bootstrap fails can reroute (socket-mode fallback).
  bool socket_fallback = true;
  /// UD datagram eager path (default off): a small fixed pool of
  /// connectionless endpoints serves every client's sub-MTU eager calls,
  /// so per-client server state (QPs, rings) stays flat at any client
  /// count. Advertised on the verbs stack as a UdService at `addr`.
  UdConfig ud{};
  /// One-sided read plane (default off): export hot read-mostly responses
  /// into a registered seqlock region clients fetch with RDMA READ,
  /// advertised on the verbs stack as a OneSidedService at `addr`.
  OneSidedConfig onesided{};
};

class RdmaRpcServer final : public rpc::RpcServer {
 public:
  RdmaRpcServer(cluster::Host& host, net::SocketTable& sockets, verbs::VerbsStack& stack,
                net::Address addr, RdmaServerConfig cfg = {});
  ~RdmaRpcServer() override;

  void start() override;
  void stop() override;

  rpc::RpcStats& stats() override;
  const rpc::RpcStats& stats() const override;

  cluster::Host& host() const { return host_; }
  const net::Address& addr() const { return addr_; }
  ShadowPool& pool() { return shadow_; }
  int num_shards() const { return cfg_.shards; }

  /// Publish sink for application servers; nullptr with onesided off.
  rpc::OneSidedPublisher* onesided() override { return onesided_region_.get(); }
  /// The exported region itself — exposed for tests/benches.
  OneSidedRegion* onesided_region() { return onesided_region_.get(); }

 private:
  struct ConnState {
    verbs::QueuePairPtr qp;
    std::uint64_t id = 0;  // dense per-server sequence number
    std::uint64_t session_id = 0;  // durable session id (0 = sessionless)
    std::uint64_t owner = 0;       // retry-cache key: session_id, else id
    std::uint32_t shard = 0;  // home shard: session-affine, else (id - 1) % shards
    // Negotiated per-connection eager/rendezvous switch point:
    // min(local, client-advertised) from the bootstrap handshake.
    std::size_t eager_threshold = 0;
    // Per-connection legacy-ring buffer size, derived from the *larger*
    // of the two advertised thresholds at the handshake — a peer that
    // advertised more than our local knob may send eager frames that big
    // when our advertisement reads as "none" (threshold 0).
    std::size_t recv_buf_size = 0;
    // Small-response coalescer, allocated only when batching is enabled.
    std::unique_ptr<rpc::CallBatcher> batcher;
    // Last receive completion; the LRU idle-eviction sweep keys on this.
    sim::Time last_recv = 0;
  };
  // Shared across in-flight calls and the connection table so idle
  // eviction can't pull a ConnState out from under a running handler.
  using ConnPtr = std::shared_ptr<ConnState>;
  struct ServerCall {
    ConnPtr conn;
    NativeBuffer* buf = nullptr;  // holds the kCall frame (recv slot or fetched)
    std::uint32_t frame_len = 0;
    sim::Time recv_start = 0;
    sim::Time enqueued = 0;  // when the call entered the call queue
    // Protocol as pre-parsed at admission (per-protocol quota accounting);
    // only filled while admission control is on.
    std::string admit_protocol;
    // UD arrivals carry a per-datagram pseudo-ConnState (session id, owner,
    // home shard; no QP) plus the GRH return address — the response is one
    // datagram from the endpoint that received the call.
    bool via_ud = false;
    verbs::AddressHandle ud_peer{};
    std::size_t ud_ep = 0;  // index into the endpoint pool
  };

  /// One reader shard: a disjoint set of connections with its own CQ, SRQ
  /// stripe and pipeline (queue/admission/cache/stats). Everything a
  /// completion can touch lives here, so shards share no mutable state.
  struct Shard {
    Shard(sim::Scheduler& sched, std::uint32_t index, const rpc::OverloadConfig& cfg,
          std::uint64_t seed, const rpc::SessionConfig& session)
        : index(index),
          cq(std::make_unique<verbs::CompletionQueue>(sched)),
          pipeline(
              sched, index, cfg,
              [](const ServerCall& c) -> const std::string& { return c.admit_protocol; },
              seed),
          sessions(session) {}

    std::uint32_t index;
    std::unique_ptr<verbs::CompletionQueue> cq;
    rpc::CallPipeline<ServerCall> pipeline;
    rpc::SessionTable sessions;  // durable-session leases (home shard only)
    // This shard's stripe of the shared receive ring (null in legacy mode).
    std::unique_ptr<verbs::SharedReceiveQueue> srq;
    std::size_t srq_depth = 0;          // stripe depth
    std::size_t srq_low_watermark = 0;  // stripe refill watermark
    // Bytes currently posted as receive buffers on this shard's rings; the
    // per-shard peaks sum into stats recv_ring_bytes_peak.
    std::size_t ring_bytes = 0;
    // Rendezvous response sources awaiting the client's ack, keyed by rkey.
    std::map<std::uint32_t, NativeBuffer*> pending_resp;
    // RDMA-READ fetches in flight on this shard's CQ, keyed by odd wr_id.
    std::map<std::uint64_t, sim::SimEvent*> read_waiters;
    std::uint64_t next_read_token = 1;
  };

  sim::Task listener_loop();
  sim::Task reader_loop(Shard& shard);
  /// Drain the shared UD CQ: unwrap kUdCall datagrams (splitting kBatch
  /// frames per sub-call *before* any session logic) and feed the same
  /// handler pipeline as RC traffic, homed by session id.
  sim::Task ud_reader_loop();
  /// Send one kResp datagram back through the receiving endpoint; bounces
  /// over-MTU responses with an error frame (a datagram can't fragment).
  sim::Co<void> ud_respond(ServerCall& call, NativeBuffer* buf, net::ByteSpan msg);
  sim::Task handler_loop(Shard& home, int handler_id);
  /// Refill one shard's receive stripe whenever it drops below its low
  /// watermark (woken by the SRQ limit event; exits when the SRQ closes).
  sim::Task srq_refill_loop(Shard& shard);
  /// Periodic LRU sweep evicting connections idle past srq_idle_evict.
  sim::Task idle_evict_loop();
  sim::Task fetch_call(ConnPtr conn, std::uint32_t rkey, std::uint64_t off,
                       std::uint32_t len);
  sim::Co<void> respond(ServerCall& call, RDMAOutputStream& out);
  /// Send an already-framed response verbatim (retry-cache dedup hits).
  sim::Co<void> respond_frame(ServerCall& call, net::ByteSpan frame);
  /// Admission gate in front of the home shard's call queue; sheds with a
  /// busy response.
  sim::Co<void> enqueue_call(ServerCall call);
  sim::Co<void> shed_call(ServerCall call, std::uint64_t id, trace::TraceContext ctx,
                          const std::string& method, sim::Time start);
  /// Post a pooled buffer as a receive: to `shard`'s SRQ stripe, or to
  /// `conn`'s own ring in legacy (srq_depth == 0) mode. wr_id is the
  /// buffer's address.
  void post_recv_buffer(Shard& shard, ConnState* conn, NativeBuffer* buf);
  /// Re-post a consumed receive buffer (or return it to the pool when the
  /// stripe is full / the connection is gone).
  void recycle_recv_buffer(Shard& shard, ConnState* conn, NativeBuffer* buf);
  void note_ring_bytes(Shard& shard, std::size_t n);
  /// Lease bookkeeping for one dequeued call: renew (or open, unless the
  /// call is a retry) its session and drop retry-cache state for every
  /// session the sweep expired or evicted. `call_id` fences the session's
  /// incarnation when the call opens it.
  void touch_session(Shard& shard, std::uint64_t session_id, bool retried,
                     std::uint64_t call_id);
  /// The home shard of a connection (CQ, pipeline, pending_resp...).
  Shard& shard_of(const ConnState& conn) { return *shards_[conn.shard]; }
  /// Buffer one serialized small kResp frame for `conn`; flushes inline
  /// when a limit fills, otherwise arms the adaptive-linger timer.
  sim::Co<void> append_response(ConnPtr conn, net::Bytes payload);
  /// Post everything buffered for `conn` as one kBatch SEND.
  sim::Co<void> flush_response_batch(ConnPtr conn);
  /// Delayed flush armed per batch; stands down if `epoch` already flushed
  /// or the server stopped (checked through the `alive_` token).
  sim::Task response_batch_timer(ConnPtr conn, std::uint64_t epoch, sim::Dur linger);
  /// Fold the per-shard stat blocks into stats_ (idempotent; the scalar
  /// aggregates are rebuilt from scratch on every call). Fields written
  /// directly to stats_ by non-shard code (threshold_mismatches) are left
  /// untouched.
  void sync_stats();

  cluster::Host& host_;
  net::SocketTable& sockets_;
  verbs::VerbsStack& stack_;
  verbs::ConnectionManager cm_;
  net::Address addr_;
  RdmaServerConfig cfg_;
  NativeBufferPool native_;
  ShadowPool shadow_;

  net::Listener* listener_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Restart graveyard: a stopped run's CQs and shard pipelines still have
  // wakes posted to their suspended reader/handler loops (Channel::close
  // defers them to the scheduler), so a back-to-back stop()/start() must
  // retire the old objects here instead of destroying them — the loops
  // dereference their channels once more while exiting. Freed with the
  // server.
  std::vector<std::unique_ptr<Shard>> retired_shards_;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> retired_ud_cqs_;
  // Fixed UD endpoint pool (cfg_.ud): shared CQ + reader; kept alive
  // across stop() (like the fallback listener) so late completions land
  // on a closed-but-live queue, and rebuilt by the next start().
  std::unique_ptr<verbs::CompletionQueue> ud_cq_;
  std::vector<std::unique_ptr<verbs::UdEndpoint>> ud_eps_;
  std::size_t ud_ring_bytes_ = 0;
  std::uint64_t ud_ring_bytes_peak_ = 0;
  std::uint64_t ud_rx_dropped_base_ = 0;  // drops from endpoints of past runs
  // Exported one-sided read region (cfg_.onesided). Created at the first
  // start() and kept across stop()/start() cycles: published entries and
  // the generation survive a restart; only the advertisement toggles.
  std::unique_ptr<OneSidedRegion> onesided_region_;
  std::uint64_t conn_seq_ = 0;
  // Keyed by ConnState::id — also the qp_context stamped into kRecv
  // completions, which is how SRQ-mode completions map back to their
  // connection (the wr_id names only the shared buffer).
  std::map<std::uint64_t, ConnPtr> conns_;
  // Companion socket listener for bootstrap-failure fallback clients.
  std::unique_ptr<rpc::SocketRpcServer> fallback_;
  // Liveness token for detached flush timers: ConnState objects survive
  // stop() but the pool and stats must not be touched after it. Timers
  // hold a copy and stand down once *alive_ flips to false.
  std::shared_ptr<bool> alive_;
  bool running_ = false;
};

}  // namespace rpcoib::oib
