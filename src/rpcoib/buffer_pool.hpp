// JVM-bypass buffer management: the history-based two-level buffer pool
// (paper Section III-B / III-C, Fig. 4).
//
// Level 1 — NativeBufferPool: native (non-JVM-heap) memory arranged in
// power-of-two size classes, pre-allocated and pre-registered for RDMA
// when the RPCoIB library loads, so per-call costs are a freelist pop.
//
// Level 2 — ShadowPool: the JVM-side view. It traces buffer usage history
// per <protocol, method> key and hands out a buffer of the last-seen
// appropriate size for that call kind, exploiting Message Size Locality
// (Fig. 3). On underestimate the output stream re-gets a doubled buffer
// and the history grows; on overestimate the history shrinks, bounding
// memory footprint.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/host.hpp"
#include "net/bytes.hpp"
#include "rpc/protocol.hpp"
#include "sim/task.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib {

/// Thrown by capped acquisition paths (stream regrow under
/// `demand_alloc_cap`) when the pool is dry and the cap is reached.
/// Callers degrade instead of growing native memory without bound: the
/// client routes the call onto its socket-fallback path, the server sheds
/// the call with a retryable busy status.
class PoolExhaustedError : public std::runtime_error {
 public:
  explicit PoolExhaustedError(const std::string& what) : std::runtime_error(what) {}
};

/// One pooled, registered native buffer.
struct NativeBuffer {
  net::MutByteSpan span;     // full usable extent
  verbs::MemoryRegion mr;    // pre-registered region covering span
  std::size_t cls = 0;       // size-class index in the owning pool
  bool leased = false;       // debugging guard against double lease/release
};

struct PoolConfig {
  std::size_t min_class = 512;        // smallest buffer size
  std::size_t max_class = 4u << 20;   // largest registerable size (4 MB)
  /// Classes above this are not pre-populated (demand-allocated if ever
  /// used); bounds the pool's resident footprint per endpoint.
  std::size_t prealloc_max_class = 64u << 10;
  std::size_t buffers_per_class = 8;  // pre-allocated at load time
  /// Cap on lifetime demand allocations honored by try_acquire (the RPCoIB
  /// server's rendezvous fetch path): once reached, a dry freelist yields
  /// nullptr — the server NACKs instead of growing native memory without
  /// bound. 0 = uncapped (the seed behavior; plain acquire() always is).
  std::size_t demand_alloc_cap = 0;
  /// Shared-receive-queue sizing (RdmaRpcServer): depth of the server-wide
  /// pre-registered receive ring shared by every accepted connection, and
  /// the low watermark below which the refill task tops it back up from
  /// this pool. srq_depth 0 selects the legacy per-connection recv rings
  /// (registered receive memory then grows O(connections)).
  std::size_t srq_depth = 64;
  std::size_t srq_low_watermark = 16;
};

struct PoolStats {
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t freelist_hits = 0;
  std::uint64_t demand_allocations = 0;  // pool exhausted: allocate+register on the fly
  std::uint64_t demand_denied = 0;       // try_acquire refused: demand_alloc_cap hit
  std::uint64_t history_hits = 0;        // shadow: history size was sufficient
  std::uint64_t history_misses = 0;      // shadow: stream had to re-get a bigger buffer
  std::uint64_t history_shrinks = 0;
  std::uint64_t registered_bytes = 0;    // native bytes pinned + registered so far
};

/// Level 1: native size-class pool, pre-registered for RDMA.
class NativeBufferPool {
 public:
  NativeBufferPool(cluster::Host& host, verbs::VerbsStack& stack, PoolConfig cfg = {});
  ~NativeBufferPool();
  NativeBufferPool(const NativeBufferPool&) = delete;
  NativeBufferPool& operator=(const NativeBufferPool&) = delete;

  /// Pre-allocate and pre-register every class's buffers, charging the
  /// one-time registration cost (done at library load in the paper).
  /// `extra_size`/`extra_count` pre-provision that many additional buffers
  /// of the class serving `extra_size` — the RPCoIB server passes its SRQ
  /// ring dimensions so the initial fill is covered by load-time
  /// registration instead of counting as demand allocations.
  sim::Co<void> initialize(std::size_t extra_size = 0, std::size_t extra_count = 0);

  /// Smallest-class buffer with capacity >= size. O(1) freelist pop on the
  /// warm path; falls back to demand allocation (charged) if the class ran
  /// dry. `acquire` itself costs a freelist operation, charged by the
  /// stream layer via the returned accrual.
  NativeBuffer* acquire(std::size_t size);

  /// Like acquire(), but honors `demand_alloc_cap`: returns nullptr when
  /// the freelist is dry and the cap on demand allocations is reached.
  /// Graceful-degradation entry point (the server NACKs the rendezvous).
  NativeBuffer* try_acquire(std::size_t size);

  void release(NativeBuffer* buf);

  /// Size of the class that would serve `size`.
  std::size_t class_size_for(std::size_t size) const;

  const PoolStats& stats() const { return stats_; }
  PoolStats& stats() { return stats_; }
  cluster::Host& host() const { return host_; }
  verbs::ProtectionDomain& pd() { return pd_; }
  const PoolConfig& config() const { return cfg_; }

 private:
  std::size_t class_index_for(std::size_t size) const;
  std::unique_ptr<NativeBuffer> make_buffer(std::size_t cls_index);

  cluster::Host& host_;
  verbs::ProtectionDomain pd_;
  PoolConfig cfg_;
  std::vector<std::size_t> class_sizes_;
  // Owned buffers (stable addresses) and per-class freelists of raw ptrs.
  // Backing byte blocks: moving the vector moves the Bytes objects but not
  // their heap storage, so spans stay valid.
  std::vector<net::Bytes> backing_;
  std::vector<std::unique_ptr<NativeBuffer>> owned_;
  std::vector<std::vector<NativeBuffer*>> free_;
  PoolStats stats_;
  bool initialized_ = false;
};

/// Level 2: the shadow pool tracing message-size history per call kind.
class ShadowPool {
 public:
  explicit ShadowPool(NativeBufferPool& native) : native_(native) {}
  ShadowPool(const ShadowPool&) = delete;
  ShadowPool& operator=(const ShadowPool&) = delete;

  /// Buffer sized by the history record for `key` (pool minimum if the
  /// key was never seen).
  NativeBuffer* acquire_for(const rpc::MethodKey& key);

  /// Buffer sized for a known length (receive side: the length arrived in
  /// the control message, so no history is needed).
  NativeBuffer* acquire_sized(std::size_t size) { return native_.acquire(size); }

  /// Capped variant of acquire_sized (see NativeBufferPool::try_acquire).
  NativeBuffer* try_acquire_sized(std::size_t size) { return native_.try_acquire(size); }

  /// Return a buffer, updating the history for `key` given the bytes the
  /// call actually used (Section III-C's grow/shrink rule).
  void release_for(const rpc::MethodKey& key, NativeBuffer* buf, std::size_t used);

  /// History update alone — used when the buffer must stay leased until a
  /// completion/ack arrives but the final message size is already known.
  void update_history(const rpc::MethodKey& key, std::size_t used);

  void release(NativeBuffer* buf) { native_.release(buf); }

  /// Current history record (0 if absent) — exposed for tests/benches.
  std::size_t history(const rpc::MethodKey& key) const;

  NativeBufferPool& native() { return native_; }

 private:
  NativeBufferPool& native_;
  std::map<rpc::MethodKey, std::size_t> history_;
};

}  // namespace rpcoib::oib
