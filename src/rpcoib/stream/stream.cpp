#include "rpcoib/stream/stream.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "cluster/host.hpp"
#include "trace/trace.hpp"

namespace rpcoib::oib::stream {

namespace {

// Control frames are tiny (the largest, a full grant, is 11 + 16*depth
// bytes plus however much meta an open carries); one pooled class covers
// them all.
constexpr std::size_t kCtrlBufSize = 2048;
constexpr int kCtrlRecvDepth = 16;

std::uint64_t wr_of(NativeBuffer* b) { return reinterpret_cast<std::uint64_t>(b); }
NativeBuffer* buf_of(std::uint64_t wr) { return reinterpret_cast<NativeBuffer*>(wr); }

void put_u8(net::Bytes& b, std::uint8_t v) { b.push_back(static_cast<net::Byte>(v)); }
void put_u32(net::Bytes& b, std::uint32_t v) {
  const std::size_t at = b.size();
  b.resize(at + 4);
  std::memcpy(b.data() + at, &v, 4);
}
void put_u64(net::Bytes& b, std::uint64_t v) {
  const std::size_t at = b.size();
  b.resize(at + 8);
  std::memcpy(b.data() + at, &v, 8);
}
std::uint32_t get_u32(net::ByteSpan f, std::size_t off) {
  std::uint32_t v = 0;
  std::memcpy(&v, f.data() + off, 4);
  return v;
}
std::uint64_t get_u64(net::ByteSpan f, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, f.data() + off, 8);
  return v;
}

net::Bytes encode_open(std::uint64_t sid, std::uint64_t total, std::uint32_t chunk,
                       std::uint32_t depth, const net::Bytes& meta) {
  net::Bytes f;
  f.reserve(29 + meta.size());
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamOpen));
  put_u64(f, sid);
  put_u64(f, total);
  put_u32(f, chunk);
  put_u32(f, depth);
  put_u32(f, static_cast<std::uint32_t>(meta.size()));
  f.insert(f.end(), meta.begin(), meta.end());
  return f;
}

net::Bytes encode_grant(std::uint64_t sid, bool accepted,
                        const std::vector<verbs::RemoteBuffer>& slots) {
  net::Bytes f;
  f.reserve(11 + 16 * slots.size());
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamGrant));
  put_u64(f, sid);
  put_u8(f, accepted ? 1 : 0);
  put_u8(f, static_cast<std::uint8_t>(slots.size()));
  for (const verbs::RemoteBuffer& s : slots) {
    put_u32(f, s.rkey);
    put_u64(f, s.offset);
    put_u32(f, s.length);
  }
  return f;
}

net::Bytes encode_credit(std::uint64_t sid, std::uint32_t seq) {
  net::Bytes f;
  f.reserve(13);
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamCredit));
  put_u64(f, sid);
  put_u32(f, seq);
  return f;
}

net::Bytes encode_done(std::uint64_t sid, std::uint8_t status) {
  net::Bytes f;
  f.reserve(10);
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamDone));
  put_u64(f, sid);
  put_u8(f, status);
  return f;
}

net::Bytes encode_abort(std::uint64_t sid, const std::string& reason) {
  net::Bytes f;
  f.reserve(13 + reason.size());
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamAbort));
  put_u64(f, sid);
  put_u32(f, static_cast<std::uint32_t>(reason.size()));
  f.insert(f.end(), reinterpret_cast<const net::Byte*>(reason.data()),
           reinterpret_cast<const net::Byte*>(reason.data()) + reason.size());
  return f;
}

net::Bytes encode_fetch(std::uint64_t token, const net::Bytes& meta) {
  net::Bytes f;
  f.reserve(13 + meta.size());
  put_u8(f, static_cast<std::uint8_t>(FrameType::kStreamFetch));
  put_u64(f, token);
  put_u32(f, static_cast<std::uint32_t>(meta.size()));
  f.insert(f.end(), meta.begin(), meta.end());
  return f;
}

StreamConfig clamp_cfg(StreamConfig cfg, const PoolConfig& pool) {
  cfg.chunk_size = std::clamp(cfg.chunk_size, pool.min_class, pool.max_class);
  cfg.ring_depth = std::clamp<std::size_t>(cfg.ring_depth, 1, 255);
  return cfg;
}

}  // namespace

/// Per-peer stream connection: one QP bootstrapped over the management
/// socket, one CQ for both directions, and the registries that route
/// control frames / chunk completions to their stream objects.
struct StreamConn {
  explicit StreamConn(sim::Scheduler& sched) : cq(sched), ready(sched) {}

  verbs::QueuePairPtr qp;
  verbs::CompletionQueue cq;
  sim::SimEvent ready;  // outbound bootstrap finished (qp set, or broken)
  net::Address peer{};
  bool broken = false;
  bool cancelled = false;
  std::map<std::uint64_t, StreamWriter*> writers;  // by sid (our outbound)
  std::map<std::uint64_t, StreamReader*> readers;  // by sid (peer's outbound)

  /// A fetch() waiting for the peer to open a stream back on this token.
  struct PendingFetch {
    explicit PendingFetch(sim::Scheduler& sched) : ev(sched) {}
    sim::SimEvent ev;
    StreamReaderPtr reader;  // null at ev.set() = refused; fetcher falls back
  };
  std::map<std::uint64_t, PendingFetch*> fetches;
};

// ---------------------------------------------------------------------------
// StreamReader

StreamReader::StreamReader(StreamHub& hub, StreamConnPtr conn, std::uint64_t sid,
                           std::uint64_t total, std::size_t chunk_size)
    : host_(&hub.host_),
      pool_(&hub.native_),
      stats_(&hub.stats_),
      hub_alive_(hub.alive_),
      deadline_(hub.cfg_.chunk_deadline),
      conn_(std::move(conn)),
      sid_(sid),
      total_(total),
      chunk_size_(chunk_size),
      arrival_(host_->sched()),
      echo_(host_->sched()) {}

StreamReader::~StreamReader() {
  if (!closed_) {
    release_ring();
    unregister();
  }
}

void StreamReader::bump(std::uint64_t rpc::RpcStats::* counter) {
  if (*hub_alive_) ++(stats_->*counter);
}

void StreamReader::on_chunk(std::uint64_t seq16, std::uint32_t len) {
  // The immediate carries only the low 16 bits; RC in-order delivery makes
  // the arrival counter the authoritative sequence number.
  (void)seq16;
  if (closed_) return;
  arrivals_.emplace_back(arrived_++, len);
  arrival_.signal();
}

void StreamReader::on_writer_abort(const std::string& reason) {
  // Either the writer tore the stream down, or this is its echo of our own
  // abort; both mean no further WRITE can be in flight behind it.
  echo_seen_ = true;
  echo_.signal();
  if (!failed_) {
    failed_ = true;
    fail_reason_ = "writer abort: " + reason;
  }
  arrival_.signal();
}

void StreamReader::on_conn_failed(const std::string& why) {
  if (!failed_) {
    failed_ = true;
    fail_reason_ = why;
  }
  conn_->broken = true;
  echo_seen_ = true;
  echo_.signal();
  arrival_.signal();
}

void StreamReader::release_ring() {
  if (*hub_alive_) {
    for (NativeBuffer* b : ring_) pool_->release(b);
  }
  ring_.clear();
}

void StreamReader::unregister() { conn_->readers.erase(sid_); }

sim::Co<Chunk> StreamReader::next_chunk() {
  while (arrivals_.empty()) {
    if (closed_) throw StreamAbortedError("stream closed");
    if (failed_) throw StreamAbortedError(fail_reason_);
    const bool woke = co_await arrival_.wait(deadline_);
    if (!woke) {
      bump(&rpc::RpcStats::stream_deadline_expiries);
      const std::string why = "chunk deadline expired";
      co_await abort(why);
      throw StreamAbortedError(why);
    }
  }
  const auto [seq, len] = arrivals_.front();
  arrivals_.pop_front();
  NativeBuffer* slot = ring_[seq % ring_.size()];
  co_return Chunk{seq, net::ByteSpan(slot->span.data(), len)};
}

sim::Co<void> StreamReader::release_chunk(std::uint64_t seq) {
  if (closed_ || failed_) co_return;
  const net::Bytes f = encode_credit(sid_, static_cast<std::uint32_t>(seq));
  try {
    if (conn_->qp && conn_->qp->connected() && !conn_->broken) {
      co_await conn_->qp->post_send(0, net::ByteSpan(f.data(), f.size()));
    }
  } catch (const verbs::VerbsError&) {
    conn_->broken = true;
  }
}

sim::Co<void> StreamReader::finish(std::uint8_t status) {
  if (closed_) co_return;
  const net::Bytes f = encode_done(sid_, status);
  try {
    if (conn_->qp && conn_->qp->connected() && !conn_->broken) {
      co_await conn_->qp->post_send(0, net::ByteSpan(f.data(), f.size()));
    }
  } catch (const verbs::VerbsError&) {
    conn_->broken = true;
  }
  release_ring();
  unregister();
  closed_ = true;
}

sim::Co<void> StreamReader::abort(const std::string& reason) {
  if (closed_) co_return;
  bump(&rpc::RpcStats::stream_aborts);
  if (!failed_) {
    fail_reason_ = reason;
    const net::Bytes f = encode_abort(sid_, reason);
    bool sent = false;
    try {
      if (conn_->qp && conn_->qp->connected() && !conn_->broken) {
        co_await conn_->qp->post_send(0, net::ByteSpan(f.data(), f.size()));
        sent = true;
      }
    } catch (const verbs::VerbsError&) {
      conn_->broken = true;
    }
    // Hold the ring until the writer's echoed abort: RC orders the echo
    // after its last in-flight WRITE, so no recycled slot gets written.
    if (sent && !echo_seen_) {
      const bool echoed = co_await echo_.wait(deadline_);
      (void)echoed;
    }
  }
  release_ring();
  unregister();
  closed_ = true;
}

// ---------------------------------------------------------------------------
// StreamWriter

StreamWriter::StreamWriter(StreamHub& hub, StreamConnPtr conn, std::uint64_t sid,
                           std::uint64_t total, std::size_t chunk_size)
    : host_(&hub.host_),
      pool_(&hub.native_),
      stats_(&hub.stats_),
      hub_alive_(hub.alive_),
      deadline_(hub.cfg_.chunk_deadline),
      conn_(std::move(conn)),
      sid_(sid),
      total_(total),
      chunk_size_(chunk_size),
      staging_gate_(host_->sched(), 0),
      credit_gate_(host_->sched(), 0),
      grant_ev_(host_->sched()),
      done_ev_(host_->sched()),
      completions_(host_->sched()) {}

StreamWriter::~StreamWriter() {
  if (!closed_) {
    release_staging();
    unregister();
  }
}

void StreamWriter::bump(std::uint64_t rpc::RpcStats::* counter) {
  if (*hub_alive_) ++(stats_->*counter);
}

void StreamWriter::on_grant(bool accepted, std::vector<verbs::RemoteBuffer> slots) {
  grant_accepted_ = accepted && !slots.empty();
  if (grant_accepted_) {
    slots_ = std::move(slots);
    credit_gate_.add(static_cast<std::int64_t>(slots_.size()));
  }
  grant_ev_.set();
}

void StreamWriter::on_credit() { credit_gate_.add(); }

void StreamWriter::on_done(std::uint8_t status) {
  done_status_ = status;
  done_ev_.set();
}

void StreamWriter::on_peer_abort(const std::string& reason) {
  if (failed_) return;
  failed_ = true;
  fail_reason_ = "peer abort: " + reason;
  staging_gate_.fail();
  credit_gate_.fail();
  grant_ev_.set();
  done_ev_.set();
}

void StreamWriter::on_send_complete() {
  ++completed_;
  staging_gate_.add();
  completions_.signal();
}

void StreamWriter::on_conn_failed(const std::string& why) {
  if (!failed_) {
    failed_ = true;
    fail_reason_ = why;
  }
  conn_->broken = true;
  staging_gate_.fail();
  credit_gate_.fail();
  grant_ev_.set();
  done_ev_.set();
  completions_.signal();
}

void StreamWriter::release_staging() {
  if (*hub_alive_) {
    for (NativeBuffer* b : staging_) pool_->release(b);
  }
  staging_.clear();
}

void StreamWriter::unregister() { conn_->writers.erase(sid_); }

sim::Co<void> StreamWriter::write_chunk(net::ByteSpan payload) {
  if (closed_) throw StreamAbortedError("stream closed");
  if (payload.empty() || payload.size() > chunk_size_) {
    throw StreamAbortedError("chunk size out of range");
  }
  bool ok = !failed_;
  NativeBuffer* stag = nullptr;
  if (ok) {
    ok = co_await staging_gate_.take(deadline_);
  }
  if (ok) {
    stag = staging_[next_seq_ % staging_.size()];
    // Serialization into registered staging (copy + JNI doorbell prep);
    // the previous chunk's wire time runs under this compute.
    co_await host_->compute(host_->cost().direct_copy(payload.size()) +
                            host_->cost().jni_call());
    std::memcpy(stag->span.data(), payload.data(), payload.size());
    bool stalled = false;
    ok = co_await credit_gate_.take(deadline_, &stalled);
    if (stalled) bump(&rpc::RpcStats::stream_credit_stalls);
  }
  if (!ok) {
    const bool timeout = !failed_;
    if (timeout) bump(&rpc::RpcStats::stream_deadline_expiries);
    const std::string why = timeout ? "chunk deadline expired" : fail_reason_;
    co_await abort(why);
    throw StreamAbortedError(why);
  }
  const std::uint64_t seq = next_seq_++;
  const verbs::RemoteBuffer slot = slots_[seq % slots_.size()];
  const std::uint32_t imm = (static_cast<std::uint32_t>(sid_ & 0xffffu) << 16) |
                            static_cast<std::uint32_t>(seq & 0xffffu);
  bool post_failed = false;
  try {
    co_await conn_->qp->post_rdma_write(
        sid_, net::ByteSpan(stag->span.data(), payload.size()), slot, imm);
  } catch (const verbs::VerbsError& e) {
    on_conn_failed(e.what());
    post_failed = true;
  }
  if (post_failed) {
    co_await abort(fail_reason_);
    throw StreamAbortedError(fail_reason_);
  }
  ++posted_;
  bump(&rpc::RpcStats::stream_chunks);
  if (*hub_alive_) stats_->stream_bytes += payload.size();
}

sim::Co<void> StreamWriter::write_all() {
  trace::TraceCollector* tr = trace::active(host_->tracer());
  const sim::Time t0 = host_->sched().now();
  net::Bytes payload(chunk_size_);
  std::uint64_t remaining = total_;
  std::uint64_t k = next_seq_;
  while (remaining > 0) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, chunk_size_));
    for (std::size_t j = 0; j < n; ++j) {
      payload[j] = static_cast<net::Byte>((k * 131 + j) & 0xff);
    }
    co_await write_chunk(net::ByteSpan(payload.data(), n));
    remaining -= n;
    ++k;
  }
  if (tr != nullptr) {
    tr->add_complete("stream.write", trace::Kind::kClient, trace::Category::kStream,
                     trace::TraceContext{}, host_->id(), t0, host_->sched().now());
  }
}

sim::Co<std::uint8_t> StreamWriter::close() {
  if (closed_) throw StreamAbortedError("stream already closed");
  if (!failed_) {
    const bool done = co_await done_ev_.wait_for(deadline_);
    if (!done && !failed_) {
      bump(&rpc::RpcStats::stream_deadline_expiries);
      const std::string why = "done-ack deadline expired";
      co_await abort(why);
      throw StreamAbortedError(why);
    }
  }
  if (failed_) {
    co_await abort(fail_reason_);
    throw StreamAbortedError(fail_reason_);
  }
  co_await drain_and_release();
  co_return done_status_;
}

sim::Co<void> StreamWriter::abort(const std::string& reason) {
  if (closed_) co_return;
  const bool local = !failed_;
  if (local) {
    failed_ = true;
    fail_reason_ = reason;
  }
  staging_gate_.fail();
  credit_gate_.fail();
  bump(&rpc::RpcStats::stream_aborts);
  if (local) {
    // RC orders this abort after every WRITE already posted, so the reader
    // can recycle its ring the moment it arrives.
    const net::Bytes f = encode_abort(sid_, reason);
    try {
      if (conn_->qp && conn_->qp->connected() && !conn_->broken) {
        co_await conn_->qp->post_send(0, net::ByteSpan(f.data(), f.size()));
      }
    } catch (const verbs::VerbsError&) {
      conn_->broken = true;
    }
  }
  co_await drain_and_release();
}

sim::Co<void> StreamWriter::drain_and_release() {
  if (closed_) co_return;
  // Staging slots may only be recycled (released to the pool) after their
  // WRITE completions; a lost connection flushes nothing, so stop waiting.
  while (completed_ < posted_ && conn_->qp && conn_->qp->connected() &&
         !conn_->broken) {
    const bool woke = co_await completions_.wait(deadline_);
    if (!woke) break;
  }
  release_staging();
  unregister();
  closed_ = true;
}

// ---------------------------------------------------------------------------
// StreamHub

StreamHub::StreamHub(cluster::Host& host, net::SocketTable& sockets,
                     verbs::VerbsStack& stack, StreamConfig cfg, PoolConfig pool_cfg)
    : host_(host),
      sockets_(sockets),
      stack_(stack),
      cm_(stack, sockets),
      cfg_(clamp_cfg(cfg, pool_cfg)),
      native_(host, stack, pool_cfg),
      pool_ready_(host.sched()) {
  host_.sched().spawn(init_pool_task());
}

StreamHub::~StreamHub() {
  stop();
  *alive_ = false;
}

sim::Task StreamHub::init_pool_task() {
  const std::shared_ptr<bool> alive = alive_;
  co_await native_.initialize();
  if (!*alive) co_return;
  pool_ready_.set();
}

void StreamHub::listen(net::Address addr, OpenHandler on_open, FetchHandler on_fetch) {
  on_open_ = std::move(on_open);
  on_fetch_ = std::move(on_fetch);
  listen_addr_ = addr;
  listener_ = &sockets_.listen(addr);
  host_.sched().spawn(listener_loop());
}

bool StreamHub::should_stream(std::uint64_t nbytes) const {
  if (!cfg_.enabled || !running_) return false;
  if (nbytes < cfg_.min_stream_bytes || nbytes == 0) return false;
  const std::uint64_t chunks = (nbytes + cfg_.chunk_size - 1) / cfg_.chunk_size;
  return chunks <= 0xffffu;  // imm seq bits
}

sim::Task StreamHub::listener_loop() {
  net::Listener* l = listener_;
  try {
    co_await pool_ready_.wait();
    for (;;) {
      net::SocketPtr boot = co_await l->accept();
      if (!running_) co_return;
      auto conn = std::make_shared<StreamConn>(host_.sched());
      try {
        conn->qp = co_await cm_.accept(std::move(boot), conn->cq, conn->cq);
      } catch (const verbs::VerbsError&) {
        continue;  // malformed bootstrap; drop it
      } catch (const net::SocketError&) {
        continue;
      }
      for (int i = 0; i < kCtrlRecvDepth; ++i) {
        NativeBuffer* b = native_.acquire(kCtrlBufSize);
        conn->qp->post_recv(wr_of(b), b->span);
      }
      conn->ready.set();
      accepted_.push_back(conn);
      host_.sched().spawn(conn_loop(conn));
    }
  } catch (const sim::ChannelClosed&) {
  } catch (const net::SocketError&) {
  }
}

sim::Co<StreamConnPtr> StreamHub::get_connection(net::Address addr) {
  co_await pool_ready_.wait();
  if (!running_) co_return nullptr;
  auto it = conns_.find(addr);
  if (it != conns_.end()) {
    ConnPtr c = it->second;
    co_await c->ready.wait();
    if (!c->broken && c->qp && c->qp->connected()) co_return c;
    // Evict the dead entry unless a racer already replaced it; in that
    // case adopt the replacement (whatever state it lands in). Tear the
    // evicted connection down fully — its posted ctrl recvs will never
    // complete once the peer is gone, so they must be reclaimed here
    // (stop() only drains connections still in the maps).
    auto again = conns_.find(addr);
    if (again != conns_.end()) {
      if (again->second == c) {
        close_conn(c, "stream peer lost");
        conns_.erase(again);
      } else {
        ConnPtr r = again->second;
        co_await r->ready.wait();
        if (!r->broken && r->qp && r->qp->connected()) co_return r;
        co_return nullptr;
      }
    }
  }
  auto conn = std::make_shared<StreamConn>(host_.sched());
  conn->peer = addr;
  conns_[addr] = conn;
  try {
    conn->qp = co_await cm_.connect(host_, addr, conn->cq, conn->cq);
  } catch (const std::exception&) {
    // No stream listener / bootstrap failure: signal fallback, not error.
    conn->broken = true;
    conn->ready.set();
    auto cur = conns_.find(addr);
    if (cur != conns_.end() && cur->second == conn) conns_.erase(cur);
    co_return nullptr;
  }
  for (int i = 0; i < kCtrlRecvDepth; ++i) {
    NativeBuffer* b = native_.acquire(kCtrlBufSize);
    conn->qp->post_recv(wr_of(b), b->span);
  }
  conn->ready.set();
  ++stats_.connections_opened;
  host_.sched().spawn(conn_loop(conn));
  co_return conn;
}

sim::Task StreamHub::conn_loop(ConnPtr conn) {
  const std::shared_ptr<bool> alive = alive_;
  NativeBufferPool* pool = &native_;
  try {
    for (;;) {
      verbs::WorkCompletion wc = co_await conn->cq.wait();
      if (conn->cancelled) {
        // stop() already reclaimed posted recvs and disconnected; only
        // completions queued before the close surface here. The hub (and
        // its pool) may be gone by the time this resumes.
        if (wc.opcode == verbs::Opcode::kRecv && *alive) {
          if (NativeBuffer* b = buf_of(wc.wr_id)) pool->release(b);
        }
        continue;
      }
      switch (wc.opcode) {
        case verbs::Opcode::kRecv: {
          NativeBuffer* b = buf_of(wc.wr_id);
          if (b == nullptr) break;
          handle_frame(conn, net::ByteSpan(b->span.data(), wc.byte_len));
          if (conn->qp && conn->qp->connected() && !conn->broken) {
            conn->qp->post_recv(wc.wr_id, b->span);
          } else {
            pool->release(b);
          }
          break;
        }
        case verbs::Opcode::kRecvRdmaWithImm: {
          const std::uint32_t sid16 = wc.imm_data >> 16;
          for (auto& [sid, r] : conn->readers) {
            if ((sid & 0xffffu) == sid16) {
              r->on_chunk(wc.imm_data & 0xffffu, wc.byte_len);
              break;
            }
          }
          break;
        }
        case verbs::Opcode::kRdmaWrite: {
          auto it = conn->writers.find(wc.wr_id);
          if (it != conn->writers.end()) it->second->on_send_complete();
          break;
        }
        default:
          break;  // kSend doorbell acks carry no state
      }
    }
  } catch (const sim::ChannelClosed&) {
  }
}

void StreamHub::handle_frame(const ConnPtr& conn, net::ByteSpan f) {
  if (f.empty()) return;
  switch (static_cast<FrameType>(f[0])) {
    case FrameType::kStreamOpen: {
      if (f.size() < 29) return;
      const std::uint64_t sid = get_u64(f, 1);
      const std::uint64_t total = get_u64(f, 9);
      const std::uint32_t chunk = get_u32(f, 17);
      const std::uint32_t depth = get_u32(f, 21);
      const std::uint32_t mlen = get_u32(f, 25);
      if (f.size() < 29 + mlen) return;
      net::Bytes meta(f.data() + 29, f.data() + 29 + mlen);
      host_.sched().spawn(handle_open(conn, sid, total, chunk, depth, std::move(meta)));
      break;
    }
    case FrameType::kStreamGrant: {
      if (f.size() < 11) return;
      const std::uint64_t sid = get_u64(f, 1);
      const bool accepted = f[9] != 0;
      const std::size_t n = f[10];
      if (f.size() < 11 + 16 * n) return;
      std::vector<verbs::RemoteBuffer> slots;
      slots.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t at = 11 + i * 16;
        slots.push_back({get_u32(f, at), get_u64(f, at + 4), get_u32(f, at + 12)});
      }
      auto it = conn->writers.find(sid);
      if (it != conn->writers.end()) it->second->on_grant(accepted, std::move(slots));
      break;
    }
    case FrameType::kStreamCredit: {
      if (f.size() < 13) return;
      auto it = conn->writers.find(get_u64(f, 1));
      if (it != conn->writers.end()) it->second->on_credit();
      break;
    }
    case FrameType::kStreamDone: {
      if (f.size() < 10) return;
      auto it = conn->writers.find(get_u64(f, 1));
      if (it != conn->writers.end()) it->second->on_done(f[9]);
      break;
    }
    case FrameType::kStreamAbort: {
      if (f.size() < 13) return;
      const std::uint64_t sid = get_u64(f, 1);
      const std::size_t rlen =
          std::min<std::size_t>(get_u32(f, 9), f.size() - 13);
      std::string reason(reinterpret_cast<const char*>(f.data()) + 13, rlen);
      auto wit = conn->writers.find(sid);
      if (wit != conn->writers.end()) {
        StreamWriter* w = wit->second;
        const bool first = !w->failed_;
        w->on_peer_abort(reason);
        if (first) {
          // Echo, so the aborting reader knows our last WRITE is behind it
          // and can recycle its ring.
          host_.sched().spawn(send_frame(conn, encode_abort(sid, "echo: " + reason)));
        }
        break;
      }
      auto rit = conn->readers.find(sid);
      if (rit != conn->readers.end()) rit->second->on_writer_abort(reason);
      break;
    }
    case FrameType::kStreamFetch: {
      if (f.size() < 13) return;
      const std::uint64_t token = get_u64(f, 1);
      const std::uint32_t mlen = get_u32(f, 9);
      if (f.size() < 13 + mlen || !on_fetch_) break;  // no server: fetcher times out
      net::Bytes meta(f.data() + 13, f.data() + 13 + mlen);
      host_.sched().spawn(on_fetch_(conn, token, std::move(meta)));
      break;
    }
    default:
      break;
  }
}

sim::Task StreamHub::handle_open(ConnPtr conn, std::uint64_t sid, std::uint64_t total,
                                 std::uint32_t chunk_size, std::uint32_t depth,
                                 net::Bytes meta) {
  const std::shared_ptr<bool> alive = alive_;
  co_await pool_ready_.wait();
  if (!*alive || conn->cancelled) co_return;
  // Meta routing byte: 0x01 = response to our own fetch token, 0x00 = an
  // application open for the listen() handler.
  const bool fetch_resp = !meta.empty() && meta[0] == 1;
  StreamConn::PendingFetch* pf = nullptr;
  if (fetch_resp && meta.size() >= 9) {
    std::uint64_t token = 0;
    std::memcpy(&token, meta.data() + 1, 8);
    auto it = conn->fetches.find(token);
    if (it != conn->fetches.end()) pf = it->second;
  }
  bool accept = running_ && !conn->broken && chunk_size > 0 &&
                (fetch_resp ? pf != nullptr : static_cast<bool>(on_open_));
  std::vector<NativeBuffer*> ring;
  if (accept) {
    // try_acquire honors PoolConfig::demand_alloc_cap: a capped endpoint
    // refuses the grant and the writer degrades to its legacy path.
    const std::size_t want = std::max<std::uint32_t>(depth, 1);
    for (std::size_t i = 0; i < want; ++i) {
      NativeBuffer* b = native_.try_acquire(chunk_size);
      if (b == nullptr) {
        ++stats_.stream_pool_denied;
        break;
      }
      ring.push_back(b);
    }
    if (ring.empty()) accept = false;
  }
  if (!accept) {
    for (NativeBuffer* b : ring) native_.release(b);
    host_.sched().spawn(send_frame(conn, encode_grant(sid, false, {})));
    if (pf != nullptr) pf->ev.set();  // null reader: fetcher falls back now
    co_return;
  }
  StreamReaderPtr r(new StreamReader(*this, conn, sid, total, chunk_size));
  r->ring_ = std::move(ring);
  conn->readers[sid] = r.get();
  std::vector<verbs::RemoteBuffer> slots;
  slots.reserve(r->ring_.size());
  for (NativeBuffer* b : r->ring_) {
    slots.push_back({b->mr.rkey, 0, chunk_size});
  }
  host_.sched().spawn(send_frame(conn, encode_grant(sid, true, slots)));
  ++stats_.streams_opened;
  if (pf != nullptr) {
    pf->reader = std::move(r);
    pf->ev.set();
  } else {
    net::Bytes app_meta(meta.begin() + (meta.empty() ? 0 : 1), meta.end());
    host_.sched().spawn(on_open_(std::move(r), std::move(app_meta)));
  }
}

sim::Task StreamHub::send_frame(ConnPtr conn, net::Bytes frame) {
  try {
    if (conn->qp && conn->qp->connected() && !conn->broken && !conn->cancelled) {
      co_await conn->qp->post_send(0, net::ByteSpan(frame.data(), frame.size()));
    }
  } catch (const verbs::VerbsError&) {
    conn->broken = true;
  }
}

sim::Co<StreamWriterPtr> StreamHub::open(net::Address addr, net::Bytes meta,
                                         std::uint64_t total_bytes) {
  ConnPtr conn = co_await get_connection(addr);
  if (conn == nullptr) {
    ++stats_.stream_fallbacks;
    co_return nullptr;
  }
  net::Bytes routed;
  routed.reserve(meta.size() + 1);
  routed.push_back(0);
  routed.insert(routed.end(), meta.begin(), meta.end());
  co_return co_await open_impl(std::move(conn), std::move(routed), total_bytes);
}

sim::Co<StreamWriterPtr> StreamHub::open_on(ConnPtr conn, std::uint64_t token,
                                            std::uint64_t total_bytes) {
  if (conn == nullptr || conn->broken || conn->cancelled) {
    ++stats_.stream_fallbacks;
    co_return nullptr;
  }
  co_await pool_ready_.wait();
  net::Bytes routed(9);
  routed[0] = 1;
  std::memcpy(routed.data() + 1, &token, 8);
  co_return co_await open_impl(std::move(conn), std::move(routed), total_bytes);
}

sim::Co<StreamWriterPtr> StreamHub::open_impl(ConnPtr conn, net::Bytes routed_meta,
                                              std::uint64_t total_bytes) {
  // Staging ring through try_acquire: a demand-alloc-capped client falls
  // back to its legacy path rather than bypassing the cap.
  std::vector<NativeBuffer*> staging;
  for (std::size_t i = 0; i < cfg_.ring_depth; ++i) {
    NativeBuffer* b = native_.try_acquire(cfg_.chunk_size);
    if (b == nullptr) {
      ++stats_.stream_pool_denied;
      break;
    }
    staging.push_back(b);
  }
  if (staging.empty()) {
    ++stats_.stream_fallbacks;
    co_return nullptr;
  }
  const std::uint64_t sid = next_sid_++;
  StreamWriterPtr w(new StreamWriter(*this, conn, sid, total_bytes, cfg_.chunk_size));
  w->staging_ = std::move(staging);
  w->staging_gate_.add(static_cast<std::int64_t>(w->staging_.size()));
  conn->writers[sid] = w.get();
  host_.sched().spawn(send_frame(
      conn, encode_open(sid, total_bytes, static_cast<std::uint32_t>(cfg_.chunk_size),
                        static_cast<std::uint32_t>(cfg_.ring_depth), routed_meta)));
  const bool granted = co_await w->grant_ev_.wait_for(cfg_.chunk_deadline);
  if (!granted || !w->grant_accepted_ || w->failed_) {
    ++stats_.stream_fallbacks;
    w->release_staging();
    w->unregister();
    w->closed_ = true;
    co_return nullptr;
  }
  ++stats_.streams_opened;
  co_return w;
}

sim::Co<StreamReaderPtr> StreamHub::fetch(net::Address addr, net::Bytes meta) {
  ConnPtr conn = co_await get_connection(addr);
  if (conn == nullptr) {
    ++stats_.stream_fallbacks;
    co_return nullptr;
  }
  const std::uint64_t token = next_token_++;
  StreamConn::PendingFetch pf(host_.sched());
  conn->fetches[token] = &pf;
  host_.sched().spawn(send_frame(conn, encode_fetch(token, meta)));
  const bool ok = co_await pf.ev.wait_for(cfg_.chunk_deadline);
  conn->fetches.erase(token);
  if (!ok || pf.reader == nullptr) {
    ++stats_.stream_fallbacks;
    co_return nullptr;
  }
  co_return std::move(pf.reader);
}

void StreamHub::close_conn(const ConnPtr& conn, const char* why) {
  conn->cancelled = true;
  conn->broken = true;
  for (auto& [sid, w] : conn->writers) w->on_conn_failed(why);
  for (auto& [sid, r] : conn->readers) r->on_conn_failed(why);
  for (auto& [tok, pf] : conn->fetches) pf->ev.set();
  if (conn->qp) {
    for (std::uint64_t wr : conn->qp->drain_posted_recvs()) {
      if (NativeBuffer* b = buf_of(wr)) native_.release(b);
    }
    conn->qp->disconnect();
  }
  conn->cq.close();
}

void StreamHub::stop() {
  if (!running_) return;
  running_ = false;
  if (listener_ != nullptr) {
    sockets_.unlisten(listen_addr_);
    listener_ = nullptr;
  }
  for (auto& [addr, c] : conns_) close_conn(c);
  for (const ConnPtr& c : accepted_) close_conn(c);
  conns_.clear();
  accepted_.clear();
}

}  // namespace rpcoib::oib::stream
