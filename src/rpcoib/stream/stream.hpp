// Pipelined zero-copy bulk streaming (the third transfer mode beside
// eager and rendezvous).
//
// The paper's rendezvous path moves each large payload as one monolithic
// RDMA transfer, so serialization, wire time, and downstream forwarding
// never overlap. This subsystem moves multi-MB payloads as a pipeline of
// fixed-size chunks RDMA-WRITTEN (with immediate data) into a small ring
// of pre-registered receiver buffers, with credit-based flow control:
// chunk k+1 is serialized into a registered staging buffer while chunk k
// is still on the wire, the way MPICH2's pipelined rendezvous keeps the
// NIC busy between registration and send.
//
// Wire protocol (control frames ride two-sided SEND on a dedicated QP;
// chunk data is one-sided RDMA WRITE with immediate):
//   kStreamOpen   [u8][u64 sid][u64 total][u32 chunk][u32 depth][u32 mlen][meta]
//   kStreamGrant  [u8][u64 sid][u8 accepted][u8 nslots][(u32 rkey)(u64 off)(u32 len)]*
//   kStreamCredit [u8][u64 sid][u32 seq]     - receiver done with chunk seq
//   kStreamDone   [u8][u64 sid][u8 status]   - receiver consumed the stream
//   kStreamAbort  [u8][u64 sid][u32 rlen][reason]
//   kStreamFetch  [u8][u64 token][u32 mlen][meta] - role flip: ask the peer
//                                                   to open a stream back
//   chunk data:   RDMA WRITE, imm = (sid & 0xffff) << 16 | (seq & 0xffff)
//
// Fallback matrix (the writer degrades to the legacy one-shot path, the
// caller keeps working): payload below min_stream_bytes; staging
// try_acquire denied (PoolConfig::demand_alloc_cap); receiver ring
// try_acquire denied (grant arrives with accepted=0); QP bootstrap
// failure; grant/fetch deadline expiry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "rpc/stats.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/wire.hpp"
#include "sim/sync.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::oib::stream {

/// Stream failure surfaced to the application mid-transfer (peer abort,
/// per-chunk deadline expiry, connection loss). DFSClient maps it onto
/// RpcTransportError so the abandonBlock retry path re-drives the block.
class StreamAbortedError : public std::runtime_error {
 public:
  explicit StreamAbortedError(const std::string& what) : std::runtime_error(what) {}
};

struct StreamConfig {
  /// Master switch; off keeps every data path byte-identical to the seed.
  bool enabled = false;
  /// Chunk granularity (stream.chunk_size). One registered buffer class.
  std::size_t chunk_size = 256 * 1024;
  /// Receiver ring slots / writer pipeline depth (stream.ring_depth).
  std::size_t ring_depth = 4;
  /// Payloads below this stay on the legacy one-shot path.
  std::uint64_t min_stream_bytes = 1u << 20;
  /// Per-chunk progress deadline: a writer stalled this long waiting for
  /// credit, or a reader waiting for a chunk, aborts the stream.
  sim::Dur chunk_deadline = sim::seconds(5);
};

/// Well-known stream listener ports (DataNode block ingest, TaskTracker
/// shuffle serving). Clear of 8020/8021/50060/60000/60020 and the +1000
/// socket-fallback companions.
inline constexpr std::uint16_t kHdfsStreamPort = 50010;
inline constexpr std::uint16_t kShuffleStreamPort = 50062;

/// Multi-shot wakeup: signal() releases every current waiter; wait()
/// resumes true on signal, false on timeout. Built from one-shot SimEvents
/// swapped on each signal (SimEvent has no reset).
class Notify {
 public:
  explicit Notify(sim::Scheduler& sched)
      : sched_(sched), ev_(std::make_shared<sim::SimEvent>(sched)) {}

  void signal() {
    std::shared_ptr<sim::SimEvent> ev = std::move(ev_);
    ev_ = std::make_shared<sim::SimEvent>(sched_);
    ev->set();
  }

  sim::Co<bool> wait(sim::Dur timeout) {
    std::shared_ptr<sim::SimEvent> ev = ev_;  // pin: signal() swaps the slot
    const bool ok = co_await ev->wait_for(timeout);
    co_return ok;
  }

 private:
  sim::Scheduler& sched_;
  std::shared_ptr<sim::SimEvent> ev_;
};

/// Counting gate with timed acquisition and permanent failure: the
/// writer's credit ledger (peer release -> add) and staging ledger (send
/// completion -> add). fail() wakes every waiter; takes then return false.
class Gate {
 public:
  Gate(sim::Scheduler& sched, std::int64_t initial)
      : count_(initial), notify_(sched) {}

  void add(std::int64_t n = 1) {
    count_ += n;
    notify_.signal();
  }

  void fail() {
    failed_ = true;
    notify_.signal();
  }

  /// Take one unit. `stalled`, when non-null, is set if the take had to
  /// wait (credit-stall accounting). False = failed or deadline expired.
  sim::Co<bool> take(sim::Dur timeout, bool* stalled = nullptr) {
    for (;;) {
      if (failed_) co_return false;
      if (count_ > 0) {
        --count_;
        co_return true;
      }
      if (stalled != nullptr) *stalled = true;
      const bool woke = co_await notify_.wait(timeout);
      if (!woke) co_return false;  // deadline expired
    }
  }

  bool failed() const { return failed_; }
  std::int64_t available() const { return count_; }

 private:
  std::int64_t count_;
  bool failed_ = false;
  Notify notify_;
};

class StreamHub;

/// Per-peer stream connection state (QP + CQ + live stream registries);
/// defined in stream.cpp, opaque to callers.
struct StreamConn;
using StreamConnPtr = std::shared_ptr<StreamConn>;

/// One inbound chunk, viewed in place in its registered ring slot. Valid
/// until release_chunk(seq) returns the slot to the wire.
struct Chunk {
  std::uint64_t seq = 0;
  net::ByteSpan data{};
};

/// Receiving half: advertises the ring, consumes chunks in order, posts a
/// credit per released slot, acks completion with kStreamDone.
class StreamReader {
 public:
  ~StreamReader();
  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  std::uint64_t id() const { return sid_; }
  std::uint64_t total_bytes() const { return total_; }
  std::size_t chunk_size() const { return chunk_size_; }
  std::uint64_t num_chunks() const {
    return chunk_size_ == 0 ? 0 : (total_ + chunk_size_ - 1) / chunk_size_;
  }
  /// True once the stream failed under us (writer abort / lost QP): the
  /// failure came from upstream, so don't abort back into it.
  bool failed() const { return failed_; }

  /// Next chunk in sequence order (RC delivery keeps chunks ordered).
  /// Throws StreamAbortedError on writer abort, connection loss, or
  /// chunk_deadline expiry (which aborts the stream first).
  sim::Co<Chunk> next_chunk();

  /// Return chunk `seq`'s ring slot to the writer (credit).
  sim::Co<void> release_chunk(std::uint64_t seq);

  /// Ack the fully-consumed stream; releases the ring to the pool.
  sim::Co<void> finish(std::uint8_t status);

  /// Receiver-initiated teardown. Ring slots are held until the writer's
  /// echoed abort (RC-ordered after its last in-flight WRITE) or the
  /// deadline, so no WRITE lands in a recycled buffer.
  sim::Co<void> abort(const std::string& reason);

 private:
  friend class StreamHub;
  StreamReader(StreamHub& hub, StreamConnPtr conn, std::uint64_t sid,
               std::uint64_t total, std::size_t chunk_size);

  void on_chunk(std::uint64_t seq, std::uint32_t len);
  void on_writer_abort(const std::string& reason);
  void on_conn_failed(const std::string& why);
  void release_ring();
  void unregister();
  void bump(std::uint64_t rpc::RpcStats::* counter);

  // The owning hub can die before a detached handler finishes with this
  // reader: pool/stats access is gated on the hub's liveness token, and
  // everything else needed post-construction is copied or shared here.
  cluster::Host* host_ = nullptr;
  NativeBufferPool* pool_ = nullptr;
  rpc::RpcStats* stats_ = nullptr;
  std::shared_ptr<bool> hub_alive_;
  sim::Dur deadline_ = 0;
  StreamConnPtr conn_;
  std::uint64_t sid_ = 0;
  std::uint64_t total_ = 0;
  std::size_t chunk_size_ = 0;
  std::vector<NativeBuffer*> ring_;
  std::deque<std::pair<std::uint64_t, std::uint32_t>> arrivals_;  // (seq, len)
  std::uint64_t arrived_ = 0;
  Notify arrival_;
  Notify echo_;          // writer's abort echo after a reader-initiated abort
  bool failed_ = false;  // upstream failure observed
  bool echo_seen_ = false;
  bool closed_ = false;  // finished/aborted; ring released, unregistered
  std::string fail_reason_;
};

/// Sending half: serializes chunk k+1 into registered staging while chunk
/// k is on the wire, gated by send completions (staging reuse) and peer
/// credits (ring reuse).
class StreamWriter {
 public:
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  std::uint64_t id() const { return sid_; }
  std::uint64_t total_bytes() const { return total_; }
  std::size_t chunk_size() const { return chunk_size_; }
  /// Ring depth the receiver actually granted (may be below the ask).
  std::size_t granted_depth() const { return slots_.size(); }

  /// Send the next chunk (payload.size() <= chunk_size). Charges the
  /// serialization copy + doorbell, then returns at the doorbell — wire
  /// time overlaps the caller's next serialization.
  sim::Co<void> write_chunk(net::ByteSpan payload);

  /// Send all `total_bytes()` as pattern-filled chunks (byte j of chunk k
  /// is (k * 131 + j) & 0xff — integrity-checkable at the reader).
  sim::Co<void> write_all();

  /// Wait for the receiver's kStreamDone (deadline-bounded), drain send
  /// completions, release staging. Returns the receiver's status byte.
  /// Throws StreamAbortedError if the stream failed instead.
  sim::Co<std::uint8_t> close();

  /// Writer-initiated teardown: the abort frame is RC-ordered after every
  /// posted WRITE, so the receiver can free its ring on receipt.
  sim::Co<void> abort(const std::string& reason);

 private:
  friend class StreamHub;
  StreamWriter(StreamHub& hub, StreamConnPtr conn, std::uint64_t sid,
               std::uint64_t total, std::size_t chunk_size);

  void on_grant(bool accepted, std::vector<verbs::RemoteBuffer> slots);
  void on_credit();
  void on_done(std::uint8_t status);
  void on_peer_abort(const std::string& reason);
  void on_send_complete();
  void on_conn_failed(const std::string& why);
  sim::Co<void> drain_and_release();
  void release_staging();
  void unregister();
  void bump(std::uint64_t rpc::RpcStats::* counter);

  // Same hub-liveness discipline as StreamReader.
  cluster::Host* host_ = nullptr;
  NativeBufferPool* pool_ = nullptr;
  rpc::RpcStats* stats_ = nullptr;
  std::shared_ptr<bool> hub_alive_;
  sim::Dur deadline_ = 0;
  StreamConnPtr conn_;
  std::uint64_t sid_ = 0;
  std::uint64_t total_ = 0;
  std::size_t chunk_size_ = 0;
  std::vector<NativeBuffer*> staging_;
  std::vector<verbs::RemoteBuffer> slots_;
  Gate staging_gate_;
  Gate credit_gate_;
  sim::SimEvent grant_ev_;
  sim::SimEvent done_ev_;
  Notify completions_;
  bool grant_accepted_ = false;
  std::uint8_t done_status_ = 0;
  bool failed_ = false;  // peer abort / conn loss / local abort
  bool closed_ = false;  // staging released, unregistered
  std::uint64_t next_seq_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t completed_ = 0;
  std::string fail_reason_;
};

using StreamReaderPtr = std::shared_ptr<StreamReader>;
using StreamWriterPtr = std::shared_ptr<StreamWriter>;

/// Per-role endpoint: owns the registered buffer pool, the stream QPs (one
/// per peer, cached), their completion loops, and the optional listener.
/// DFSClient, DataNode, and TaskTracker each hold one when streaming is
/// enabled; everything here is inert when it is not constructed.
class StreamHub {
 public:
  using ConnPtr = StreamConnPtr;

  /// Inbound stream handler: consume the reader fully (next_chunk /
  /// release_chunk / finish, or abort). Spawned per kStreamOpen.
  using OpenHandler = std::function<sim::Task(StreamReaderPtr, net::Bytes)>;
  /// Role-flip handler: serve a kStreamFetch by opening a stream back on
  /// the same connection (open_on). Spawned per fetch.
  using FetchHandler = std::function<sim::Task(ConnPtr, std::uint64_t, net::Bytes)>;

  StreamHub(cluster::Host& host, net::SocketTable& sockets, verbs::VerbsStack& stack,
            StreamConfig cfg, PoolConfig pool_cfg);
  ~StreamHub();
  StreamHub(const StreamHub&) = delete;
  StreamHub& operator=(const StreamHub&) = delete;

  /// Accept inbound streams at `addr`. Without a FetchHandler, fetches
  /// time out at the requester (which falls back to its legacy path).
  void listen(net::Address addr, OpenHandler on_open, FetchHandler on_fetch = nullptr);

  /// True when `nbytes` should take the stream path: enabled, at or above
  /// min_stream_bytes, and within the 16-bit chunk-sequence space.
  bool should_stream(std::uint64_t nbytes) const;

  /// Open a stream of `total_bytes` to `addr`. Returns null on any
  /// fallback condition (counted in stats); the caller takes its legacy
  /// path. `meta` reaches the peer's OpenHandler verbatim.
  sim::Co<StreamWriterPtr> open(net::Address addr, net::Bytes meta,
                                std::uint64_t total_bytes);

  /// Serve a fetch: open a stream on an already-accepted connection,
  /// routing the kStreamOpen to the fetcher waiting on `token`.
  sim::Co<StreamWriterPtr> open_on(ConnPtr conn, std::uint64_t token,
                                   std::uint64_t total_bytes);

  /// Role flip (shuffle): ask the peer at `addr` to stream `meta`-described
  /// data back. Returns null on fallback (no listener, refused, timeout).
  sim::Co<StreamReaderPtr> fetch(net::Address addr, net::Bytes meta);

  /// Abort every active stream and tear down QPs/loops. Idempotent.
  void stop();

  const StreamConfig& config() const { return cfg_; }
  cluster::Host& host() const { return host_; }
  rpc::RpcStats& stats() { return stats_; }
  const rpc::RpcStats& stats() const { return stats_; }
  NativeBufferPool& pool() { return native_; }

 private:
  friend class StreamReader;
  friend class StreamWriter;

  sim::Task init_pool_task();
  sim::Task listener_loop();
  sim::Task conn_loop(ConnPtr conn);
  sim::Co<ConnPtr> get_connection(net::Address addr);
  void close_conn(const ConnPtr& conn, const char* why = "stream hub stopped");
  void handle_frame(const ConnPtr& conn, net::ByteSpan frame);
  sim::Task handle_open(ConnPtr conn, std::uint64_t sid, std::uint64_t total,
                        std::uint32_t chunk_size, std::uint32_t depth, net::Bytes meta);
  sim::Task send_frame(ConnPtr conn, net::Bytes frame);
  sim::Co<StreamWriterPtr> open_impl(ConnPtr conn, net::Bytes routed_meta,
                                     std::uint64_t total_bytes);

  cluster::Host& host_;
  net::SocketTable& sockets_;
  verbs::VerbsStack& stack_;
  verbs::ConnectionManager cm_;
  StreamConfig cfg_;
  NativeBufferPool native_;
  sim::SimEvent pool_ready_;
  rpc::RpcStats stats_;
  net::Listener* listener_ = nullptr;
  net::Address listen_addr_{};
  OpenHandler on_open_;
  FetchHandler on_fetch_;
  std::map<net::Address, ConnPtr> conns_;  // outbound, cached by peer address
  std::vector<ConnPtr> accepted_;          // inbound
  std::uint64_t next_sid_ = 1;
  std::uint64_t next_token_ = 1;
  bool running_ = true;
  /// Cleared by the destructor: detached loops and stream objects that
  /// outlive the hub skip pool/stats access once this goes false.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace rpcoib::oib::stream
