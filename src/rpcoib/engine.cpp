#include "rpcoib/engine.hpp"

#include "rpc/socket_client.hpp"
#include "rpc/socket_server.hpp"

namespace rpcoib::oib {

const char* rpc_mode_name(RpcMode mode) {
  switch (mode) {
    case RpcMode::kSocket1GigE: return "RPC(1GigE)";
    case RpcMode::kSocket10GigE: return "RPC(10GigE)";
    case RpcMode::kSocketIPoIB: return "RPC(IPoIB)";
    case RpcMode::kRpcoIB: return "RPCoIB";
  }
  return "?";
}

RpcEngine::RpcEngine(net::Testbed& tb, EngineConfig cfg)
    : tb_(tb), cfg_(cfg), verbs_(tb.fabric()) {}

namespace {
void merge_profiles(std::map<rpc::MethodKey, rpc::MethodProfile>& agg,
                    const rpc::RpcStats& stats) {
  for (const auto& [key, prof] : stats.methods) {
    rpc::MethodProfile& dst = agg[key];
    dst.mem_adjustments.merge(prof.mem_adjustments);
    dst.serialize_us.merge(prof.serialize_us);
    dst.send_us.merge(prof.send_us);
    dst.total_us.merge(prof.total_us);
    dst.msg_bytes.merge(prof.msg_bytes);
    dst.size_sequence.insert(dst.size_sequence.end(), prof.size_sequence.begin(),
                             prof.size_sequence.end());
    dst.sequence_dropped += prof.sequence_dropped;
  }
}
}  // namespace

std::unique_ptr<rpc::RpcClient> RpcEngine::make_client(cluster::Host& host) {
  std::unique_ptr<rpc::RpcClient> client = make_client_impl(host);
  client->set_retry_policy(cfg_.retry);
  client->set_batch(cfg_.batch);
  client->set_session(cfg_.session);
  client->stats().record_sequences = record_sequences_;
  rpc::RpcClient* raw = client.get();
  clients_.push_back(raw);
  // Dead clients flush their stats into the engine accumulator so
  // aggregation never touches a dangling pointer.
  client->set_on_destroy([this, raw](const rpc::RpcStats& st) {
    merge_profiles(retired_profiles_, st);
    std::erase(clients_, raw);
  });
  return client;
}

std::map<rpc::MethodKey, rpc::MethodProfile> RpcEngine::aggregated_profiles() const {
  std::map<rpc::MethodKey, rpc::MethodProfile> agg = retired_profiles_;
  for (const rpc::RpcClient* c : clients_) merge_profiles(agg, c->stats());
  return agg;
}

std::unique_ptr<rpc::RpcClient> RpcEngine::make_client_impl(cluster::Host& host) {
  switch (cfg_.mode) {
    case RpcMode::kSocket1GigE:
      return std::make_unique<rpc::SocketRpcClient>(host, tb_.sockets(),
                                                    net::Transport::kOneGigE);
    case RpcMode::kSocket10GigE:
      return std::make_unique<rpc::SocketRpcClient>(host, tb_.sockets(),
                                                    net::Transport::kTenGigE);
    case RpcMode::kSocketIPoIB:
      return std::make_unique<rpc::SocketRpcClient>(host, tb_.sockets(),
                                                    net::Transport::kIPoIB);
    case RpcMode::kRpcoIB: {
      RdmaClientConfig rc;
      rc.eager_threshold = cfg_.eager_threshold;
      rc.pool = cfg_.pool;
      rc.fallback_to_socket = cfg_.socket_fallback;
      rc.ud = cfg_.ud;
      rc.onesided = cfg_.onesided;
      return std::make_unique<RdmaRpcClient>(host, tb_.sockets(), verbs_, rc);
    }
  }
  return nullptr;
}

std::unique_ptr<rpc::RpcServer> RpcEngine::make_server(cluster::Host& host,
                                                       net::Address addr) {
  std::unique_ptr<rpc::RpcServer> server;
  switch (cfg_.mode) {
    case RpcMode::kSocket1GigE:
    case RpcMode::kSocket10GigE:
    case RpcMode::kSocketIPoIB:
      server = std::make_unique<rpc::SocketRpcServer>(host, tb_.sockets(), addr,
                                                      cfg_.server_handlers, 1,
                                                      cfg_.server_shards, cfg_.shard_steal);
      break;
    case RpcMode::kRpcoIB: {
      RdmaServerConfig sc;
      sc.num_handlers = cfg_.server_handlers;
      sc.shards = cfg_.server_shards;
      sc.steal = cfg_.shard_steal;
      sc.eager_threshold = cfg_.eager_threshold;
      sc.pool = cfg_.pool;
      sc.socket_fallback = cfg_.socket_fallback;
      sc.ud = cfg_.ud;
      sc.onesided = cfg_.onesided;
      server = std::make_unique<RdmaRpcServer>(host, tb_.sockets(), verbs_, addr, sc);
      break;
    }
  }
  if (server) {
    server->set_overload(cfg_.overload);
    server->set_batch(cfg_.batch);
    server->set_session(cfg_.session);
  }
  return server;
}

}  // namespace rpcoib::oib
