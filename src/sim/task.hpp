// Coroutine types for simulated processes.
//
// Two layers, mirroring how the Java threads in Hadoop decompose:
//
//  * `Task`  — a top-level detached process (a simulated thread). Created by
//    calling a coroutine returning `Task` and handing it to
//    `Scheduler::spawn`. The frame self-destroys at completion; completion
//    and failure are observable through the `JoinHandle`.
//  * `Co<T>` — a nested awaitable computation (an ordinary function call
//    that may block in virtual time). Lazily started when awaited, resumes
//    its awaiter by symmetric transfer, RAII-owned by the awaiting frame.
//
// CODEBASE RULE (GCC 12 workaround): never pass a temporary with a
// non-trivial destructor as an argument inside a statement containing
// co_await — GCC 12.2 double-destroys such temporaries when the awaited
// coroutine suspends (observed as a double-free under ASan). Hoist them to
// named locals first:
//     net::Bytes wire = out.take_pending();
//     co_await sock->write(wire);                 // OK
//     co_await sock->write(out.take_pending());   // WRONG: double-free
// Trivially destructible temporaries (spans, ints, net::Address) are safe.
//
// Second GCC 12 landmine: never use a co_await expression directly inside a
// branch condition — GCC 12.2 lays out the coroutine frame inconsistently
// between the ramp and the actor (off by 8 bytes; resumes read garbage
// resume indices and hit ud2). Hoist the result to a named local:
//     const bool ok = co_await gate.take(d);
//     if (!ok) break;                             // OK
//     if (!co_await gate.take(d)) break;          // WRONG: frame miscompile
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace rpcoib::sim {

namespace detail {

/// Shared between a running Task's promise and any JoinHandles.
struct TaskState {
  Scheduler* sched = nullptr;
  bool done = false;
  std::exception_ptr ex;
  bool ex_observed = false;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace detail

/// Handle for joining a spawned Task. Copyable; all copies observe the same
/// completion. `co_await handle` suspends until the task finishes and
/// rethrows its uncaught exception, if any.
class JoinHandle {
 public:
  JoinHandle() = default;
  explicit JoinHandle(std::shared_ptr<detail::TaskState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  bool done() const { return st_ && st_->done; }
  bool failed() const { return st_ && st_->ex != nullptr; }

  struct Awaiter {
    std::shared_ptr<detail::TaskState> st;
    bool await_ready() const noexcept { return st->done; }
    void await_suspend(std::coroutine_handle<> h) const { st->waiters.push_back(h); }
    void await_resume() const {
      if (st->ex) {
        st->ex_observed = true;
        std::rethrow_exception(st->ex);
      }
    }
  };
  Awaiter operator co_await() const { return Awaiter{st_}; }

 private:
  std::shared_ptr<detail::TaskState> st_;
};

/// Top-level simulated process. Move-only; ownership passes to the
/// Scheduler on spawn.
class Task {
 public:
  struct promise_type {
    std::shared_ptr<detail::TaskState> st = std::make_shared<detail::TaskState>();

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        // Grab the shared state before the frame dies.
        std::shared_ptr<detail::TaskState> st = h.promise().st;
        st->sched->unregister_task(h.address());
        h.destroy();
        st->done = true;
        for (std::coroutine_handle<> w : st->waiters) st->sched->post(w);
        st->waiters.clear();
        if (st->ex && st.use_count() == 1) {
          // Nobody holds a JoinHandle: surface the failure loudly.
          st->sched->report_failure(st->ex);
        }
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { st->ex = std::current_exception(); }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();  // spawned tasks have released the handle
  }

 private:
  friend class Scheduler;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  std::coroutine_handle<promise_type> release(Scheduler& sched) {
    h_.promise().st->sched = &sched;
    sched.register_task(h_.address());
    return std::exchange(h_, nullptr);
  }

  std::coroutine_handle<promise_type> h_;
};

inline JoinHandle Scheduler::spawn(Task task) {
  std::coroutine_handle<Task::promise_type> h = task.release(*this);
  JoinHandle jh(h.promise().st);
  post(h);
  return jh;
}

inline JoinHandle Scheduler::spawn_after(Dur d, Task task) {
  std::coroutine_handle<Task::promise_type> h = task.release(*this);
  JoinHandle jh(h.promise().st);
  resume_after(d, h);
  return jh;
}

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> cont;
  std::exception_ptr ex;
  std::optional<T> value;

  template <typename U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
  void unhandled_exception() { ex = std::current_exception(); }
  T take() {
    if (ex) std::rethrow_exception(ex);
    return std::move(*value);
  }
};

template <>
struct CoPromiseBase<void> {
  std::coroutine_handle<> cont;
  std::exception_ptr ex;

  void return_void() {}
  void unhandled_exception() { ex = std::current_exception(); }
  void take() {
    if (ex) std::rethrow_exception(ex);
  }
};

}  // namespace detail

/// Nested awaitable computation returning T. Must be co_awaited exactly once
/// (it is lazy: the body does not run until awaited).
template <typename T = void>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        std::coroutine_handle<> c = h.promise().cont;
        return c ? c : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
  };

  Co(Co&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().cont = cont;
    return h_;  // start the lazy coroutine now
  }
  T await_resume() { return h_.promise().take(); }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace rpcoib::sim
