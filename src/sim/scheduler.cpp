#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace rpcoib::sim {

void Scheduler::call_at(Time t, std::function<void()> fn) {
  if (terminated_) return;  // post-drain scheduling is ignored (see drain_tasks)
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Scheduler::resume_at(Time t, std::coroutine_handle<> h) {
  call_at(t, [h] { h.resume(); });
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  if (failure_) {
    std::exception_ptr ex = std::exchange(failure_, nullptr);
    std::rethrow_exception(ex);
  }
  return true;
}

void Scheduler::run() {
  while (step()) {
  }
}

bool Scheduler::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at < deadline) {
    step();
  }
  return !queue_.empty();
}

void Scheduler::report_failure(std::exception_ptr ex) {
  if (!failure_) failure_ = std::move(ex);
}

void Scheduler::drain_tasks() {
  terminated_ = true;
  // Destroying a task frame may spawn-complete nested frames and
  // unregister entries, so iterate over a snapshot.
  std::vector<void*> snapshot(live_tasks_.begin(), live_tasks_.end());
  for (void* frame : snapshot) {
    if (live_tasks_.contains(frame)) {
      live_tasks_.erase(frame);
      std::coroutine_handle<>::from_address(frame).destroy();
    }
  }
  while (!queue_.empty()) queue_.pop();
}

}  // namespace rpcoib::sim
