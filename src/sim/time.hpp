// Virtual time for the discrete-event simulator.
//
// All simulated clocks are 64-bit nanosecond counters. Helpers convert the
// units the paper reports (microseconds for RPC latency, seconds for job
// execution time) to and from the internal representation.
#pragma once

#include <cstdint>

namespace rpcoib::sim {

/// A point in virtual time, in nanoseconds since simulation start.
using Time = std::uint64_t;

/// A span of virtual time, in nanoseconds.
using Dur = std::uint64_t;

inline constexpr Dur kNanosecond = 1;
inline constexpr Dur kMicrosecond = 1000;
inline constexpr Dur kMillisecond = 1000 * 1000;
inline constexpr Dur kSecond = 1000ULL * 1000 * 1000;

constexpr Dur nanos(std::uint64_t n) { return n; }
constexpr Dur micros(std::uint64_t n) { return n * kMicrosecond; }
constexpr Dur millis(std::uint64_t n) { return n * kMillisecond; }
constexpr Dur seconds(std::uint64_t n) { return n * kSecond; }

/// Fractional durations; negative inputs clamp to zero so cost-model
/// arithmetic can never schedule into the past.
constexpr Dur from_us(double us) {
  return us <= 0 ? 0 : static_cast<Dur>(us * static_cast<double>(kMicrosecond) + 0.5);
}
constexpr Dur from_ms(double ms) {
  return ms <= 0 ? 0 : static_cast<Dur>(ms * static_cast<double>(kMillisecond) + 0.5);
}
constexpr Dur from_sec(double s) {
  return s <= 0 ? 0 : static_cast<Dur>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_us(Time t) { return static_cast<double>(t) / static_cast<double>(kMicrosecond); }
constexpr double to_ms(Time t) { return static_cast<double>(t) / static_cast<double>(kMillisecond); }
constexpr double to_sec(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

}  // namespace rpcoib::sim
