// Discrete-event scheduler: the single source of virtual time.
//
// Every simulated Hadoop thread (caller, Connection, Listener, Reader,
// Handler, Responder, heartbeat loop, ...) is a coroutine whose suspension
// points are registered here. Events at equal timestamps run in FIFO order
// of insertion, which makes whole-cluster runs bit-for-bit deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "sim/time.hpp"

namespace rpcoib::sim {

class Task;
class JoinHandle;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule an arbitrary callback at absolute virtual time `t`
  /// (clamped to `now()` if in the past).
  void call_at(Time t, std::function<void()> fn);

  /// Schedule a callback after `d` has elapsed.
  void call_after(Dur d, std::function<void()> fn) { call_at(now_ + d, std::move(fn)); }

  /// Resume a suspended coroutine at absolute time `t`.
  void resume_at(Time t, std::coroutine_handle<> h);

  /// Resume a suspended coroutine after `d`.
  void resume_after(Dur d, std::coroutine_handle<> h) { resume_at(now_ + d, h); }

  /// Resume a suspended coroutine at the current time (after already-queued
  /// same-time events).
  void post(std::coroutine_handle<> h) { resume_at(now_, h); }

  /// Launch a top-level simulated process. The coroutine starts at the
  /// current virtual time; its frame is destroyed automatically when it
  /// finishes. The returned handle can be co_awaited to join.
  JoinHandle spawn(Task task);

  /// Launch a process at a future time.
  JoinHandle spawn_after(Dur d, Task task);

  /// Run until no events remain. Rethrows the first exception that escaped
  /// any spawned process.
  void run();

  /// Run until virtual time reaches `deadline` (exclusive) or the queue
  /// drains. Returns true if events remain.
  bool run_until(Time deadline);

  /// Process a single event. Returns false if the queue was empty.
  bool step();

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

  /// Called by the Task machinery when a detached process dies with an
  /// uncaught exception. The first failure aborts `run()`.
  void report_failure(std::exception_ptr ex);

  /// Terminal teardown: destroy the frames of all still-suspended
  /// top-level tasks (e.g. server loops blocked on an accept channel),
  /// drop queued events, and put the scheduler in a terminated state in
  /// which further scheduling is ignored — destructors running afterwards
  /// may still try to wake waiters whose frames are now gone. Call only
  /// when the simulation is finished, while the objects those tasks
  /// reference are still alive; use a fresh Scheduler per experiment.
  void drain_tasks();

  bool terminated() const { return terminated_; }

  // Task-frame registry (managed by Task/spawn machinery).
  void register_task(void* frame) { live_tasks_.insert(frame); }
  void unregister_task(void* frame) { live_tasks_.erase(frame); }
  std::size_t live_task_count() const { return live_tasks_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::exception_ptr failure_;
  std::set<void*> live_tasks_;
  bool terminated_ = false;
};

/// Awaitable that suspends the current coroutine for `d` of virtual time.
/// Usage: `co_await delay(sched, micros(10));`
struct DelayAwaiter {
  Scheduler& sched;
  Dur d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { sched.resume_after(d, h); }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Scheduler& sched, Dur d) { return {sched, d}; }

/// Yield to other same-time events, then continue.
inline DelayAwaiter yield(Scheduler& sched) { return {sched, 0}; }

}  // namespace rpcoib::sim
