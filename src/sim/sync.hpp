// Synchronization primitives for simulated processes.
//
// These mirror the java.util.concurrent pieces the Hadoop RPC threads use:
// counting semaphores (handler slots), mutexes (connection tables), one-shot
// events (connection setup latches), and wait-groups (job barriers).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rpcoib::sim {

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, std::int64_t initial) : sched_(sched), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct AcquireAwaiter {
    Semaphore& sem;
    bool await_ready() const noexcept { return sem.count_ > 0; }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept { --sem.count_; }
  };

  AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

  bool try_acquire() {
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  void release(std::int64_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      std::coroutine_handle<> w = waiters_.front();
      waiters_.pop_front();
      // The waiter decrements on resume; reserve its slot now so another
      // same-tick acquire cannot starve it.
      --count_;
      sched_.call_at(sched_.now(), [this, w] {
        ++count_;  // hand the reserved slot back just before the waiter takes it
        w.resume();
      });
    }
  }

  std::int64_t available() const { return count_; }

 private:
  Scheduler& sched_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Mutual exclusion for simulated threads. Non-recursive.
class SimMutex {
 public:
  explicit SimMutex(Scheduler& sched) : sem_(sched, 1) {}

  auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }
  bool try_lock() { return sem_.try_acquire(); }

 private:
  Semaphore sem_;
};

/// RAII lock guard usable after `co_await mutex.lock()`.
class SimLockGuard {
 public:
  explicit SimLockGuard(SimMutex& m) : m_(&m) {}
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;
  SimLockGuard(SimLockGuard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  ~SimLockGuard() {
    if (m_) m_->unlock();
  }

 private:
  SimMutex* m_;
};

/// One-shot event: processes wait until someone calls set().
class SimEvent {
 public:
  explicit SimEvent(Scheduler& sched) : sched_(sched) {}
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  struct WaitAwaiter {
    SimEvent& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  WaitAwaiter wait() { return WaitAwaiter{*this}; }

  /// Wait with a deadline: resumes with `true` as soon as the event is
  /// set, or with `false` once `timeout` elapses first. The per-waiter
  /// `woken` flag makes set() and the timer callback mutually exclusive,
  /// so a coroutine is never resumed twice.
  struct TimedWaitAwaiter {
    SimEvent& ev;
    Dur timeout;
    std::shared_ptr<bool> woken = std::make_shared<bool>(false);

    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev.timed_waiters_.emplace_back(h, woken);
      ev.sched_.call_after(timeout, [h, flag = woken] {
        if (*flag) return;  // set() beat the timer
        *flag = true;
        h.resume();
      });
    }
    bool await_resume() const noexcept { return ev.set_; }
  };

  TimedWaitAwaiter wait_for(Dur timeout) { return TimedWaitAwaiter{*this, timeout}; }

  void set() {
    if (set_) return;
    set_ = true;
    for (std::coroutine_handle<> w : waiters_) sched_.post(w);
    waiters_.clear();
    for (auto& [w, flag] : timed_waiters_) {
      if (*flag) continue;  // already resumed by its timer
      *flag = true;
      sched_.post(w);
    }
    timed_waiters_.clear();
  }

  bool is_set() const { return set_; }

 private:
  Scheduler& sched_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::pair<std::coroutine_handle<>, std::shared_ptr<bool>>> timed_waiters_;
};

/// Barrier counting completions, e.g. "all reduce tasks finished".
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& sched) : sched_(sched) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::int64_t n = 1) { count_ += n; }

  void done() {
    if (--count_ <= 0) {
      for (std::coroutine_handle<> w : waiters_) sched_.post(w);
      waiters_.clear();
    }
  }

  struct WaitAwaiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  WaitAwaiter wait() { return WaitAwaiter{*this}; }

  std::int64_t pending() const { return count_; }

 private:
  Scheduler& sched_;
  std::int64_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace rpcoib::sim
