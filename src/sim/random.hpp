// Deterministic random number generation for the simulator.
//
// std::mt19937 + std::*_distribution are not guaranteed bit-identical
// across standard library implementations, so the simulator carries its own
// generator (xoshiro256++) and distributions. Same seed => same run,
// everywhere, which the DES determinism tests rely on.
#pragma once

#include <cmath>
#include <cstdint>

namespace rpcoib::sim {

/// splitmix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : x_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

/// xoshiro256++ — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponential with the given mean (> 0).
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  /// Normal via Box–Muller (deterministic, uses two uniforms per pair).
  double next_normal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi_u2 = 2.0 * 3.141592653589793 * u2;
    spare_ = mag * std::sin(two_pi_u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(two_pi_u2);
  }

  /// Normal truncated at zero (durations can't be negative).
  double next_normal_nonneg(double mean, double stddev) {
    const double v = next_normal(mean, stddev);
    return v < 0 ? 0 : v;
  }

  /// Fork an independent stream (for per-node RNGs from one master seed).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0;
};

/// Zipfian generator over [0, n), YCSB-style (Gray et al.), used by the
/// YCSB workload substrate for skewed key choice.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next(Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double v = 1.0 + static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t r = static_cast<std::uint64_t>(v) - 1;
    return r >= n_ ? n_ - 1 : r;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace rpcoib::sim
