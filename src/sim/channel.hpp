// FIFO mailbox connecting simulated processes.
//
// The building block for every queue in the reproduced stack: the RPC
// server's call queue, the Responder's response queue, socket receive
// buffers, verbs completion queues, heartbeat inboxes. Unbounded by
// default (Hadoop's queues are large and the paper never hits the caps);
// `BoundedChannel` adds back-pressure where a bound matters.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <utility>

#include "sim/scheduler.hpp"

namespace rpcoib::sim {

/// Thrown by recv() when the channel is closed and drained.
class ChannelClosed : public std::runtime_error {
 public:
  ChannelClosed() : std::runtime_error("channel closed") {}
};

template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue an item; wakes one waiting receiver, FIFO.
  void push(T item) {
    items_.push_back(std::move(item));
    wake_one();
  }

  /// Close the channel. Pending items may still be received; further
  /// recv() on an empty channel throws ChannelClosed.
  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      std::coroutine_handle<> w = waiters_.front();
      waiters_.pop_front();
      ++reserved_;
      sched_.post(w);
    }
  }

  bool closed() const { return closed_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// True while any receiver is suspended on (or scheduled to resume from)
  /// this channel. While true the channel must stay alive: a posted waiter
  /// still dereferences it inside await_resume().
  bool has_waiters() const { return !waiters_.empty() || reserved_ > 0; }

  struct RecvAwaiter {
    Channel& ch;
    bool await_ready() const noexcept {
      return ch.items_.size() > ch.reserved_ || (ch.closed_ && ch.waiters_.empty());
    }
    void await_suspend(std::coroutine_handle<> h) { ch.waiters_.push_back(h); }
    T await_resume() {
      if (ch.reserved_ > 0) --ch.reserved_;
      if (ch.items_.empty()) throw ChannelClosed();
      T v = std::move(ch.items_.front());
      ch.items_.pop_front();
      return v;
    }
  };

  /// Receive the next item, blocking in virtual time. Throws ChannelClosed
  /// if the channel closes while (or before) waiting with nothing queued.
  RecvAwaiter recv() { return RecvAwaiter{*this}; }

  /// Non-blocking receive.
  bool try_recv(T& out) {
    if (items_.size() <= reserved_) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

 private:
  void wake_one() {
    if (!waiters_.empty()) {
      std::coroutine_handle<> w = waiters_.front();
      waiters_.pop_front();
      ++reserved_;  // the new item is spoken for
      sched_.post(w);
    }
  }

  Scheduler& sched_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t reserved_ = 0;  // items claimed by scheduled-but-unresumed waiters
  bool closed_ = false;
};

}  // namespace rpcoib::sim
