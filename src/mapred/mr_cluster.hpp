// MrCluster: JobTracker + TaskTrackers wired over an HDFS cluster —
// the full Hadoop deployment shape of the paper's Fig. 6 experiments
// (1 master running JobTracker+NameNode, N slaves running
// TaskTracker+DataNode).
#pragma once

#include <memory>
#include <vector>

#include "mapred/jobclient.hpp"
#include "mapred/tasktracker.hpp"

namespace rpcoib::mapred {

class MrCluster {
 public:
  MrCluster(oib::RpcEngine& engine, hdfs::HdfsCluster& hdfs, cluster::HostId jt_host,
            std::vector<cluster::HostId> tt_hosts, TaskTrackerConfig tt_cfg = {},
            JobTrackerConfig jt_cfg = {});

  void start();
  void stop();

  /// Stop one TaskTracker mid-run (fault injection: a lost slave whose
  /// tasks the JobTracker must eventually re-execute).
  void stop_tasktracker(std::size_t index);

  JobTracker& jobtracker() { return *jt_; }
  TaskTracker* tasktracker(std::size_t index) {
    return index < tts_.size() ? tts_[index].get() : nullptr;
  }
  std::size_t num_tasktrackers() const { return tts_.size(); }
  const net::Address& jt_addr() const { return jt_addr_; }
  std::unique_ptr<JobClient> make_client(cluster::Host& host);

 private:
  oib::RpcEngine& engine_;
  net::Address jt_addr_;
  std::unique_ptr<JobTracker> jt_;
  std::vector<std::unique_ptr<TaskTracker>> tts_;
};

}  // namespace rpcoib::mapred
