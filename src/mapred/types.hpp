// MapReduce data model: job specifications, task descriptors, and the
// Writable payloads for the two protocols the paper profiles —
// mapred.InterTrackerProtocol (JobTracker heartbeats, "JT heartbeat" in
// Fig. 3) and mapred.TaskUmbilicalProtocol (Table I's Map/Reduce rows).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rpc/writable.hpp"
#include "sim/time.hpp"
#include "trace/context.hpp"

namespace rpcoib::mapred {

inline constexpr const char* kInterTrackerProtocol = "mapred.InterTrackerProtocol";
inline constexpr const char* kTaskUmbilicalProtocol = "mapred.TaskUmbilicalProtocol";
inline constexpr const char* kJobSubmissionProtocol = "mapred.JobSubmissionProtocol";

using JobId = std::int32_t;
using TaskId = std::int32_t;

enum class TaskType : std::uint8_t { kMap = 0, kReduce = 1 };

/// Workload description — the knobs the paper's benchmarks vary.
struct JobSpec {
  std::string name = "job";
  int num_maps = 1;
  int num_reduces = 1;
  std::uint64_t input_bytes = 0;   // split evenly across maps
  double map_output_ratio = 1.0;   // map output / map input
  double reduce_output_ratio = 1.0;  // reduce output / shuffle input
  /// Synthetic output written by each map directly to HDFS (RandomWriter
  /// pattern: map-only jobs with generated data).
  std::uint64_t map_direct_output_bytes = 0;
  bool map_only = false;
  /// CPU cost of the user map/reduce function, microseconds per MB.
  double map_cpu_us_per_mb = 2000.0;
  double reduce_cpu_us_per_mb = 2500.0;
  /// Fixed per-task overhead (child JVM launch + localization compute).
  sim::Dur task_startup = sim::millis(900);
  /// NameNode RPCs during task localization (job.xml, job.jar, split file).
  int localization_nn_calls = 6;
  std::string output_path = "/out";
  /// Fault injection for tests: map tasks with id < this value fail on
  /// their first attempt (the JobTracker must reschedule them).
  int inject_map_failures = 0;
};

struct JobStatus {
  bool exists = false;
  bool complete = false;
  int maps_done = 0;
  int reduces_done = 0;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
};

// --- Protocol payloads ------------------------------------------------------

/// Job submission carries the full job configuration (the job.xml
/// contents, in effect), so the JobTracker can hand specs to trackers.
struct JobSubmission final : rpc::Writable {
  JobId id = -1;
  JobSpec spec;
  // Job-scoped trace context (vi64-encoded: one byte each when untraced),
  // so every task the job spawns parents to the submitter's job span.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  trace::TraceContext ctx() const { return trace::TraceContext{trace_id, span_id}; }
  void set_ctx(trace::TraceContext c) {
    trace_id = c.trace_id;
    span_id = c.span_id;
  }

  void write(rpc::DataOutput& out) const override {
    out.write_vi32(id);
    out.write_vi64(static_cast<std::int64_t>(trace_id));
    out.write_vi64(static_cast<std::int64_t>(span_id));
    out.write_text(spec.name);
    out.write_vi32(spec.num_maps);
    out.write_vi32(spec.num_reduces);
    out.write_u64(spec.input_bytes);
    out.write_f64(spec.map_output_ratio);
    out.write_f64(spec.reduce_output_ratio);
    out.write_u64(spec.map_direct_output_bytes);
    out.write_bool(spec.map_only);
    out.write_f64(spec.map_cpu_us_per_mb);
    out.write_f64(spec.reduce_cpu_us_per_mb);
    out.write_u64(spec.task_startup);
    out.write_vi32(spec.localization_nn_calls);
    out.write_text(spec.output_path);
    out.write_vi32(spec.inject_map_failures);
  }
  void read_fields(rpc::DataInput& in) override {
    id = in.read_vi32();
    trace_id = static_cast<std::uint64_t>(in.read_vi64());
    span_id = static_cast<std::uint64_t>(in.read_vi64());
    spec.name = in.read_text();
    spec.num_maps = in.read_vi32();
    spec.num_reduces = in.read_vi32();
    spec.input_bytes = in.read_u64();
    spec.map_output_ratio = in.read_f64();
    spec.reduce_output_ratio = in.read_f64();
    spec.map_direct_output_bytes = in.read_u64();
    spec.map_only = in.read_bool();
    spec.map_cpu_us_per_mb = in.read_f64();
    spec.reduce_cpu_us_per_mb = in.read_f64();
    spec.task_startup = in.read_u64();
    spec.localization_nn_calls = in.read_vi32();
    spec.output_path = in.read_text();
    spec.inject_map_failures = in.read_vi32();
  }
};

/// One runnable task handed to a TaskTracker in a heartbeat response.
struct TaskAssignment {
  JobId job = -1;
  TaskId task = -1;
  TaskType type = TaskType::kMap;
  // Job span context, stamped by the JobTracker on new assignments so the
  // tracker's task span parents to the submitting client's job span.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  trace::TraceContext ctx() const { return trace::TraceContext{trace_id, span_id}; }
  void set_ctx(trace::TraceContext c) {
    trace_id = c.trace_id;
    span_id = c.span_id;
  }

  void write(rpc::DataOutput& out) const {
    out.write_vi32(job);
    out.write_vi32(task);
    out.write_u8(static_cast<std::uint8_t>(type));
    out.write_vi64(static_cast<std::int64_t>(trace_id));
    out.write_vi64(static_cast<std::int64_t>(span_id));
  }
  void read_fields(rpc::DataInput& in) {
    job = in.read_vi32();
    task = in.read_vi32();
    type = static_cast<TaskType>(in.read_u8());
    trace_id = static_cast<std::uint64_t>(in.read_vi64());
    span_id = static_cast<std::uint64_t>(in.read_vi64());
  }
};

/// Per-running-task status carried inside every TaskTracker heartbeat —
/// the reason "JT heartbeat" message sizes vary so widely in Fig. 3.
struct TaskReport {
  JobId job = -1;
  TaskId task = -1;
  TaskType type = TaskType::kMap;
  float progress = 0;
  // Hadoop ships the full named counter set on every report — the reason
  // statusUpdate serializations walk the 32-byte DataOutputBuffer through
  // ~5 adjustments in Table I.
  std::vector<std::pair<std::string, std::int64_t>> counters = default_counters();

  static std::vector<std::pair<std::string, std::int64_t>> default_counters() {
    return {
        {"org.apache.hadoop.mapred.Task$Counter.MAP_INPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.MAP_OUTPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.MAP_INPUT_BYTES", 0},
        {"org.apache.hadoop.mapred.Task$Counter.MAP_OUTPUT_BYTES", 0},
        {"org.apache.hadoop.mapred.Task$Counter.COMBINE_INPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.COMBINE_OUTPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.REDUCE_INPUT_GROUPS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.REDUCE_SHUFFLE_BYTES", 0},
        {"org.apache.hadoop.mapred.Task$Counter.REDUCE_INPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.REDUCE_OUTPUT_RECORDS", 0},
        {"org.apache.hadoop.mapred.Task$Counter.SPILLED_RECORDS", 0},
        {"FileSystemCounters.FILE_BYTES_READ", 0},
        {"FileSystemCounters.FILE_BYTES_WRITTEN", 0},
        {"FileSystemCounters.HDFS_BYTES_READ", 0},
        {"FileSystemCounters.HDFS_BYTES_WRITTEN", 0},
    };
  }

  void write(rpc::DataOutput& out) const {
    out.write_vi32(job);
    out.write_vi32(task);
    out.write_u8(static_cast<std::uint8_t>(type));
    out.write_f64(progress);
    out.write_vi32(static_cast<std::int32_t>(counters.size()));
    for (const auto& [name, c] : counters) {
      out.write_text(name);
      out.write_vi64(c);
    }
  }
  void read_fields(rpc::DataInput& in) {
    job = in.read_vi32();
    task = in.read_vi32();
    type = static_cast<TaskType>(in.read_u8());
    progress = static_cast<float>(in.read_f64());
    counters.resize(static_cast<std::size_t>(in.read_vi32()));
    for (auto& [name, c] : counters) {
      name = in.read_text();
      c = in.read_vi64();
    }
  }
};

struct HeartbeatRequest final : rpc::Writable {
  std::int32_t tracker = -1;
  std::int32_t free_map_slots = 0;
  std::int32_t free_reduce_slots = 0;
  std::vector<TaskReport> running;  // full status, every heartbeat
  std::vector<TaskAssignment> completed;
  std::vector<TaskAssignment> failed;  // the JobTracker reschedules these

  void write(rpc::DataOutput& out) const override {
    out.write_vi32(tracker);
    out.write_vi32(free_map_slots);
    out.write_vi32(free_reduce_slots);
    out.write_vi32(static_cast<std::int32_t>(running.size()));
    for (const TaskReport& r : running) r.write(out);
    out.write_vi32(static_cast<std::int32_t>(completed.size()));
    for (const TaskAssignment& c : completed) c.write(out);
    out.write_vi32(static_cast<std::int32_t>(failed.size()));
    for (const TaskAssignment& f : failed) f.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    tracker = in.read_vi32();
    free_map_slots = in.read_vi32();
    free_reduce_slots = in.read_vi32();
    running.resize(static_cast<std::size_t>(in.read_vi32()));
    for (TaskReport& r : running) r.read_fields(in);
    completed.resize(static_cast<std::size_t>(in.read_vi32()));
    for (TaskAssignment& c : completed) c.read_fields(in);
    failed.resize(static_cast<std::size_t>(in.read_vi32()));
    for (TaskAssignment& f : failed) f.read_fields(in);
  }
};

struct HeartbeatResponse final : rpc::Writable {
  std::vector<TaskAssignment> new_tasks;
  bool job_complete = false;

  void write(rpc::DataOutput& out) const override {
    out.write_vi32(static_cast<std::int32_t>(new_tasks.size()));
    for (const TaskAssignment& t : new_tasks) t.write(out);
    out.write_bool(job_complete);
  }
  void read_fields(rpc::DataInput& in) override {
    new_tasks.resize(static_cast<std::size_t>(in.read_vi32()));
    for (TaskAssignment& t : new_tasks) t.read_fields(in);
    job_complete = in.read_bool();
  }
};

/// Umbilical statusUpdate: the most adjustment-heavy call in Table I
/// (avg 5 memory adjustments) because the full TaskStatus + counters go
/// through a fresh 32-byte DataOutputBuffer every time.
struct StatusUpdateParam final : rpc::Writable {
  TaskReport report;
  std::string state_string;  // Hadoop ships a free-text state, too

  void write(rpc::DataOutput& out) const override {
    report.write(out);
    out.write_text(state_string);
  }
  void read_fields(rpc::DataInput& in) override {
    report.read_fields(in);
    state_string = in.read_text();
  }
};

struct TaskIdParam final : rpc::Writable {
  JobId job = -1;
  TaskId task = -1;
  void write(rpc::DataOutput& out) const override {
    out.write_vi32(job);
    out.write_vi32(task);
  }
  void read_fields(rpc::DataInput& in) override {
    job = in.read_vi32();
    task = in.read_vi32();
  }
};

struct MapCompletionEventsResult final : rpc::Writable {
  std::int32_t total_maps = 0;
  std::vector<std::int32_t> completed_map_hosts;  // host of each completed map

  void write(rpc::DataOutput& out) const override {
    out.write_vi32(total_maps);
    out.write_vi32(static_cast<std::int32_t>(completed_map_hosts.size()));
    for (std::int32_t h : completed_map_hosts) out.write_vi32(h);
  }
  void read_fields(rpc::DataInput& in) override {
    total_maps = in.read_vi32();
    completed_map_hosts.resize(static_cast<std::size_t>(in.read_vi32()));
    for (std::int32_t& h : completed_map_hosts) h = in.read_vi32();
  }
};

struct JobStatusResult final : rpc::Writable {
  bool exists = false;
  bool complete = false;
  std::int32_t maps_done = 0;
  std::int32_t reduces_done = 0;
  void write(rpc::DataOutput& out) const override {
    out.write_bool(exists);
    out.write_bool(complete);
    out.write_vi32(maps_done);
    out.write_vi32(reduces_done);
  }
  void read_fields(rpc::DataInput& in) override {
    exists = in.read_bool();
    complete = in.read_bool();
    maps_done = in.read_vi32();
    reduces_done = in.read_vi32();
  }
};

}  // namespace rpcoib::mapred
