#include "mapred/tasktracker.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace rpcoib::mapred {

using sim::Co;
using sim::Task;

namespace {
const rpc::MethodKey kHeartbeat{kInterTrackerProtocol, "heartbeat"};
const rpc::MethodKey kJtCompletionEvents{kInterTrackerProtocol, "getMapCompletionEvents"};
const rpc::MethodKey kGetTask{kTaskUmbilicalProtocol, "getTask"};
const rpc::MethodKey kPing{kTaskUmbilicalProtocol, "ping"};
const rpc::MethodKey kStatusUpdate{kTaskUmbilicalProtocol, "statusUpdate"};
const rpc::MethodKey kDone{kTaskUmbilicalProtocol, "done"};
const rpc::MethodKey kCommitPending{kTaskUmbilicalProtocol, "commitPending"};
const rpc::MethodKey kCanCommit{kTaskUmbilicalProtocol, "canCommit"};
const rpc::MethodKey kGetMapCompletionEvents{kTaskUmbilicalProtocol,
                                             "getMapCompletionEvents"};
const rpc::MethodKey kGetFileInfo{hdfs::kClientProtocol, "getFileInfo"};

// Shuffle fetch metadata: the segment size the server should stream back.
// (Job/task ids would select the real spill file; the simulator only needs
// the byte count.)
net::Bytes encode_shuffle_meta(std::uint64_t seg_bytes) {
  net::Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<net::Byte>((seg_bytes >> (8 * i)) & 0xff);
  }
  return out;
}

bool decode_shuffle_meta(net::ByteSpan meta, std::uint64_t* seg_bytes) {
  if (meta.size() != 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(meta[i])) << (8 * i);
  }
  *seg_bytes = v;
  return true;
}
}  // namespace

TaskTracker::TaskTracker(cluster::Host& host, oib::RpcEngine& engine, net::Address jt_addr,
                         hdfs::HdfsCluster& hdfs, TaskTrackerConfig cfg)
    : host_(host),
      engine_(engine),
      jt_addr_(jt_addr),
      umbilical_addr_{host.id(), cfg.umbilical_port},
      hdfs_(hdfs),
      cfg_(cfg),
      jt_rpc_(engine.make_client(host)),
      umbilical_rpc_(engine.make_client(host)),
      umbilical_server_(engine.make_server(host, umbilical_addr_)),
      dfs_(hdfs.make_client(host, "tt-" + std::to_string(host.id()))),
      free_map_slots_(cfg.map_slots),
      free_reduce_slots_(cfg.reduce_slots) {
  register_umbilical_handlers();
}

TaskTracker::~TaskTracker() { stop(); }

void TaskTracker::start() {
  if (running_flag_) return;
  running_flag_ = true;
  umbilical_server_->start();
  if (engine_.config().stream.enabled && hdfs_.data_mode() == hdfs::DataMode::kRdma) {
    // Fresh hub per start, like the DataNode: a stopped hub cannot listen
    // again, and chaos tests restart trackers.
    stream_hub_ = std::make_unique<oib::stream::StreamHub>(
        host_, engine_.testbed().sockets(), engine_.verbs(), engine_.config().stream,
        engine_.config().pool);
    stream_hub_->listen(
        {host_.id(), oib::stream::kShuffleStreamPort},
        [](oib::stream::StreamReaderPtr r, net::Bytes) -> sim::Task {
          const std::string why = "shuffle port serves fetches only";
          co_await r->abort(why);
        },
        [this](oib::stream::StreamHub::ConnPtr c, std::uint64_t token, net::Bytes meta) {
          return serve_shuffle(std::move(c), token, std::move(meta));
        });
  }
  host_.sched().spawn(heartbeat_loop());
}

void TaskTracker::stop() {
  if (!running_flag_) return;
  running_flag_ = false;
  umbilical_server_->stop();
  if (stream_hub_ != nullptr) stream_hub_->stop();
}

void TaskTracker::register_umbilical_handlers() {
  rpc::Dispatcher& d = umbilical_server_->dispatcher();
  auto ack = [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
    TaskIdParam p;
    p.read_fields(in);
    rpc::BooleanWritable(true).write(out);
    co_return;
  };
  d.register_method(kTaskUmbilicalProtocol, "getTask", ack);
  d.register_method(kTaskUmbilicalProtocol, "ping", ack);
  d.register_method(kTaskUmbilicalProtocol, "done", ack);
  d.register_method(kTaskUmbilicalProtocol, "commitPending", ack);
  d.register_method(kTaskUmbilicalProtocol, "canCommit", ack);

  d.register_method(kTaskUmbilicalProtocol, "statusUpdate",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      StatusUpdateParam p;
                      p.read_fields(in);
                      auto it = running_.find({p.report.job, p.report.task});
                      if (it != running_.end()) it->second.progress = p.report.progress;
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  // Reduce tasks poll their tracker; the tracker relays to the JobTracker
  // (Hadoop's TaskTracker caches these; the relay traffic is the point).
  d.register_method(kTaskUmbilicalProtocol, "getMapCompletionEvents",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      rpc::IntWritable job_id;
                      job_id.read_fields(in);
                      MapCompletionEventsResult r;
                      co_await jt_rpc_->call(jt_addr_, kJtCompletionEvents, job_id, &r);
                      r.write(out);
                      co_return;
                    });
}

sim::Task TaskTracker::heartbeat_loop() {
  try {
    while (running_flag_) {
      HeartbeatRequest req;
      req.tracker = host_.id();
      req.free_map_slots = free_map_slots_;
      req.free_reduce_slots = free_reduce_slots_;
      for (const auto& [key, rt] : running_) {
        TaskReport r;
        r.job = key.first;
        r.task = key.second;
        r.type = rt.assignment.type;
        r.progress = rt.progress;
        req.running.push_back(std::move(r));
      }
      while (!completed_pending_report_.empty()) {
        req.completed.push_back(completed_pending_report_.front());
        completed_pending_report_.pop_front();
      }
      while (!failed_pending_report_.empty()) {
        req.failed.push_back(failed_pending_report_.front());
        failed_pending_report_.pop_front();
      }

      HeartbeatResponse resp;
      co_await jt_rpc_->call(jt_addr_, kHeartbeat, req, &resp);

      oob_pending_ = false;
      for (const TaskAssignment& t : resp.new_tasks) {
        const JobSpec* spec = nullptr;
        // The spec lives at the JobTracker; fetching job.xml is modeled by
        // the localization calls inside run_task. In-process lookup:
        spec = jt_spec_lookup_ != nullptr ? jt_spec_lookup_(t.job) : nullptr;
        if (spec == nullptr) continue;
        if (t.type == TaskType::kMap) {
          --free_map_slots_;
        } else {
          --free_reduce_slots_;
        }
        running_[{t.job, t.task}] = RunningTask{t, 0};
        host_.sched().spawn(run_task(t, *spec));
      }
      // Sleep in slices so an out-of-band completion wakes the next
      // heartbeat early.
      const sim::Dur slice = cfg_.heartbeat_interval / 12;
      sim::Dur slept = 0;
      while (slept < cfg_.heartbeat_interval) {
        co_await sim::delay(host_.sched(), slice);
        slept += slice;
        if (cfg_.out_of_band_heartbeat && oob_pending_) break;
      }
    }
  } catch (const rpc::RpcTransportError&) {
  } catch (const rpc::RemoteException&) {
  }
}

sim::Task TaskTracker::run_task(TaskAssignment t, JobSpec spec) {
  bool failed = false;
  try {
    // Fault injection (JobSpec::inject_map_failures): first attempts of
    // the designated maps die, exercising JobTracker rescheduling.
    const bool first_attempt = attempted_.insert({t.job, t.task}).second;
    if (t.type == TaskType::kMap && first_attempt &&
        t.task < spec.inject_map_failures) {
      co_await sim::delay(host_.sched(), spec.task_startup);
      throw std::runtime_error("injected task failure");
    }
    if (t.type == TaskType::kMap) {
      co_await run_map(t, spec);
    } else {
      co_await run_reduce(t, spec);
    }
  } catch (const std::exception&) {
    failed = true;
  }
  running_.erase({t.job, t.task});
  if (failed) {
    failed_pending_report_.push_back(t);
  } else {
    completed_pending_report_.push_back(t);
    ++tasks_completed_;
  }
  oob_pending_ = true;
  if (t.type == TaskType::kMap) {
    ++free_map_slots_;
  } else {
    ++free_reduce_slots_;
  }
}

sim::Co<void> TaskTracker::umbilical_get_task(const TaskAssignment& t) {
  TaskIdParam p;
  p.job = t.job;
  p.task = t.task;
  rpc::BooleanWritable ok;
  co_await umbilical_rpc_->call(umbilical_addr_, kGetTask, p, &ok);
}

sim::Co<void> TaskTracker::umbilical_simple(const char* method, const TaskAssignment& t) {
  TaskIdParam p;
  p.job = t.job;
  p.task = t.task;
  rpc::BooleanWritable ok;
  const rpc::MethodKey key{kTaskUmbilicalProtocol, method};
  co_await umbilical_rpc_->call(umbilical_addr_, key, p, &ok);
}

sim::Co<void> TaskTracker::umbilical_status(const TaskAssignment& t, float progress) {
  StatusUpdateParam p;
  p.report.job = t.job;
  p.report.task = t.task;
  p.report.type = t.type;
  p.report.progress = progress;
  p.state_string = progress < 1.0f ? "running > sort" : "cleanup";
  rpc::BooleanWritable ok;
  co_await umbilical_rpc_->call(umbilical_addr_, kStatusUpdate, p, &ok);
}

sim::Co<MapCompletionEventsResult> TaskTracker::umbilical_completion_events(JobId job) {
  rpc::IntWritable id(job);
  MapCompletionEventsResult r;
  co_await umbilical_rpc_->call(umbilical_addr_, kGetMapCompletionEvents, id, &r);
  co_return r;
}

sim::Co<bool> TaskTracker::fetch_segment_streamed(cluster::HostId src,
                                                  std::uint64_t seg_bytes) {
  net::Bytes meta = encode_shuffle_meta(seg_bytes);
  oib::stream::StreamReaderPtr r =
      co_await stream_hub_->fetch({src, oib::stream::kShuffleStreamPort}, meta);
  if (r == nullptr) co_return false;  // no listener at the peer / refused / timed out
  bool ok = false;  // co_await is not allowed inside a handler
  try {
    const std::uint64_t nchunks = r->num_chunks();
    for (std::uint64_t i = 0; i < nchunks; ++i) {
      oib::stream::Chunk c = co_await r->next_chunk();
      co_await r->release_chunk(c.seq);
    }
    co_await r->finish(0);
    ok = true;
  } catch (const std::exception&) {
  }
  if (!ok) {
    const std::string why = "shuffle fetch failed";
    co_await r->abort(why);
  }
  co_return ok;
}

sim::Task TaskTracker::serve_shuffle(oib::stream::StreamHub::ConnPtr conn,
                                     std::uint64_t token, net::Bytes meta) {
  std::uint64_t seg_bytes = 0;
  if (!decode_shuffle_meta(net::ByteSpan(meta.data(), meta.size()), &seg_bytes) ||
      seg_bytes == 0 || stream_hub_ == nullptr) {
    co_return;  // the fetcher times out and takes its legacy path
  }
  oib::stream::StreamWriterPtr w = co_await stream_hub_->open_on(conn, token, seg_bytes);
  if (w == nullptr) co_return;  // capped pool / no grant: same fetcher timeout
  bool ok = false;  // co_await is not allowed inside a handler
  std::string why;
  try {
    // Map outputs are synthetic at benchmark scale; the segment's read cost
    // was already charged when the map spilled it and the page cache holds
    // it, so serving is pure wire + chunk bookkeeping.
    co_await w->write_all();
    co_await w->close();
    ok = true;
  } catch (const std::exception& e) {
    why = e.what();
  }
  if (!ok) co_await w->abort(why);
}

sim::Co<void> TaskTracker::traced_disk(trace::TraceContext ctx, const char* name,
                                       std::uint64_t bytes) {
  const sim::Time t0 = host_.sched().now();
  co_await host_.disk_io(bytes);
  if (ctx.valid()) {
    if (trace::TraceCollector* tr = trace::active(host_.tracer())) {
      tr->add_complete(name, trace::Kind::kInternal, trace::Category::kDisk, ctx,
                       host_.id(), t0, host_.sched().now());
    }
  }
}

sim::Co<void> TaskTracker::traced_compute(trace::TraceContext ctx, const char* name,
                                          sim::Dur d) {
  const sim::Time t0 = host_.sched().now();
  co_await host_.compute(d);
  if (ctx.valid()) {
    if (trace::TraceCollector* tr = trace::active(host_.tracer())) {
      tr->add_complete(name, trace::Kind::kInternal, trace::Category::kCompute, ctx,
                       host_.id(), t0, host_.sched().now());
    }
  }
}

sim::Co<void> TaskTracker::run_map(const TaskAssignment& t, const JobSpec& spec) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope task(tr, "task:map:" + std::to_string(t.task), trace::Kind::kInternal,
                        trace::Category::kCompute, t.ctx(), host_.id());
  const trace::TraceContext ctx = task.context();
  // Child JVM launch + localization (job.xml / job.jar / split metadata).
  co_await sim::delay(host_.sched(), spec.task_startup);
  for (int i = 0; i < spec.localization_nn_calls; ++i) {
    trace::activate(tr, ctx);
    hdfs::FileStatusResult r = co_await dfs_->get_file_info("/jobs/job_" +
                                                            std::to_string(t.job) + ".xml");
    (void)r;
  }
  trace::activate(tr, ctx);
  co_await umbilical_get_task(t);

  const std::uint64_t split =
      spec.num_maps > 0 ? spec.input_bytes / static_cast<std::uint64_t>(spec.num_maps) : 0;
  const double split_mb = static_cast<double>(split) / 1e6;

  // Input open: getFileInfo + getBlockLocations against the NameNode
  // (Table I's Map-phase ClientProtocol rows), then a node-local read.
  // Benchmark inputs are synthetic, so a missing file is tolerated: the
  // RPC round trips still happen and the split is read locally.
  if (split > 0) {
    trace::activate(tr, ctx);
    hdfs::FileStatusResult fs = co_await dfs_->get_file_info(spec.output_path + "/input");
    (void)fs;
    try {
      trace::activate(tr, ctx);
      hdfs::LocatedBlocksResult lb =
          co_await dfs_->get_block_locations(spec.output_path + "/input", 0, split);
      (void)lb;
    } catch (const rpc::RemoteException&) {
      // Synthetic input: proceed with the modeled local read.
    }
  }

  // Process the split in thirds: read, compute, report progress.
  for (int phase = 1; phase <= 3; ++phase) {
    co_await traced_disk(ctx, "map.read", split / 3);
    co_await traced_compute(ctx, "map.func",
                            sim::from_us(split_mb / 3.0 * spec.map_cpu_us_per_mb));
    trace::activate(tr, ctx);
    co_await umbilical_status(t, static_cast<float>(phase) / 3.0f);
  }
  trace::activate(tr, ctx);
  co_await umbilical_simple("ping", t);

  // Spill + sort the map output to local disk.
  const auto map_out =
      static_cast<std::uint64_t>(static_cast<double>(split) * spec.map_output_ratio);
  if (map_out > 0) co_await traced_disk(ctx, "map.spill", map_out);

  // RandomWriter-style direct HDFS output for map-only jobs.
  if (spec.map_direct_output_bytes > 0) {
    trace::activate(tr, ctx);
    co_await dfs_->write_file(spec.output_path + "/part-m-" + std::to_string(t.task),
                              spec.map_direct_output_bytes);
  }
  trace::activate(tr, ctx);
  co_await umbilical_simple("done", t);
}

sim::Co<void> TaskTracker::run_reduce(const TaskAssignment& t, const JobSpec& spec) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope task(tr, "task:reduce:" + std::to_string(t.task),
                        trace::Kind::kInternal, trace::Category::kCompute, t.ctx(),
                        host_.id());
  const trace::TraceContext ctx = task.context();
  co_await sim::delay(host_.sched(), spec.task_startup);
  for (int i = 0; i < spec.localization_nn_calls; ++i) {
    trace::activate(tr, ctx);
    hdfs::FileStatusResult r = co_await dfs_->get_file_info("/jobs/job_" +
                                                            std::to_string(t.job) + ".xml");
    (void)r;
  }
  trace::activate(tr, ctx);
  co_await umbilical_get_task(t);

  const std::uint64_t shuffle_total = static_cast<std::uint64_t>(
      static_cast<double>(spec.input_bytes) * spec.map_output_ratio);
  const std::uint64_t per_map_seg =
      spec.num_maps > 0 && spec.num_reduces > 0
          ? shuffle_total / static_cast<std::uint64_t>(spec.num_maps) /
                static_cast<std::uint64_t>(spec.num_reduces)
          : 0;

  // Shuffle: poll completion events via the umbilical (Table I's
  // getMapCompletionEvents), fetch each newly finished map's segment.
  std::size_t fetched = 0;
  const net::Transport shuffle_t = hdfs::data_transport(hdfs_.data_mode());
  int polls_without_progress = 0;
  for (;;) {
    trace::activate(tr, ctx);
    MapCompletionEventsResult ev = co_await umbilical_completion_events(t.job);
    while (fetched < ev.completed_map_hosts.size()) {
      const auto src = static_cast<cluster::HostId>(ev.completed_map_hosts[fetched]);
      if (per_map_seg > 0) {
        const sim::Time t_fetch = host_.sched().now();
        // Streamed fetch first (pipelined chunks through the peer's hub);
        // any refusal or mid-stream failure falls back to the modeled
        // one-shot transfer, so the reduce always makes progress.
        bool streamed = false;
        if (stream_hub_ != nullptr && src != host_.id() &&
            stream_hub_->should_stream(per_map_seg)) {
          streamed = co_await fetch_segment_streamed(src, per_map_seg);
        }
        if (!streamed) {
          co_await engine_.testbed().fabric().transfer(src, host_.id(), shuffle_t,
                                                       per_map_seg);
        }
        if (ctx.valid()) {
          tr->add_complete("shuffle.fetch", trace::Kind::kInternal,
                           streamed ? trace::Category::kStream : trace::Category::kWire,
                           ctx, host_.id(), t_fetch, host_.sched().now());
        }
        co_await traced_disk(ctx, "shuffle.spill", per_map_seg);
      }
      ++fetched;
      if (fetched % 16 == 0) {
        trace::activate(tr, ctx);
        co_await umbilical_status(
            t, 0.33f * static_cast<float>(fetched) /
                   static_cast<float>(std::max(ev.total_maps, 1)));
      }
    }
    if (ev.total_maps > 0 && fetched >= static_cast<std::size_t>(ev.total_maps)) break;
    ++polls_without_progress;
    if (polls_without_progress > 10000) break;  // safety valve
    co_await sim::delay(host_.sched(), cfg_.reduce_event_poll_interval);
  }

  // Merge + reduce.
  const std::uint64_t reduce_in =
      spec.num_reduces > 0 ? shuffle_total / static_cast<std::uint64_t>(spec.num_reduces)
                           : 0;
  const double in_mb = static_cast<double>(reduce_in) / 1e6;
  co_await traced_disk(ctx, "reduce.merge", reduce_in);
  trace::activate(tr, ctx);
  co_await umbilical_status(t, 0.66f);
  co_await traced_compute(ctx, "reduce.func",
                          sim::from_us(in_mb * spec.reduce_cpu_us_per_mb));
  trace::activate(tr, ctx);
  co_await umbilical_status(t, 0.9f);

  // Output commit: the RPC-heavy tail of Table I's Reduce column —
  // mkdirs/create/addBlock/.../complete via the DFS write, plus the
  // commitPending/canCommit/done umbilical handshake.
  const auto out_bytes = static_cast<std::uint64_t>(static_cast<double>(reduce_in) *
                                                    spec.reduce_output_ratio);
  trace::activate(tr, ctx);
  co_await umbilical_simple("commitPending", t);
  trace::activate(tr, ctx);
  co_await umbilical_simple("canCommit", t);
  if (out_bytes > 0) {
    trace::activate(tr, ctx);
    co_await dfs_->write_file(spec.output_path + "/part-r-" + std::to_string(t.task),
                              out_bytes);
  }
  trace::activate(tr, ctx);
  co_await umbilical_status(t, 1.0f);
  trace::activate(tr, ctx);
  co_await umbilical_simple("done", t);
}

}  // namespace rpcoib::mapred
