#include "mapred/jobtracker.hpp"

#include "trace/trace.hpp"

namespace rpcoib::mapred {

using sim::Co;

JobTracker::JobTracker(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
                       JobTrackerConfig cfg)
    : host_(host), engine_(engine), addr_(addr), cfg_(cfg) {
  server_ = engine_.make_server(host_, addr_);
  register_handlers();
}

JobTracker::~JobTracker() { stop(); }

void JobTracker::start() {
  running_ = true;
  server_->start();
  if (cfg_.tracker_expiry > 0) host_.sched().spawn(expiry_monitor());
}
void JobTracker::stop() {
  running_ = false;
  if (server_) server_->stop();
}

void JobTracker::forget_assignment(std::int32_t tracker, const TaskAssignment& t) {
  auto it = trackers_.find(tracker);
  if (it == trackers_.end()) return;
  std::erase_if(it->second.assigned, [&t](const TaskAssignment& a) {
    return a.job == t.job && a.task == t.task && a.type == t.type;
  });
}

sim::Task JobTracker::expiry_monitor() {
  while (running_) {
    co_await sim::delay(host_.sched(), cfg_.expiry_check_interval);
    if (!running_) break;
    const sim::Time now = host_.sched().now();
    for (auto it = trackers_.begin(); it != trackers_.end();) {
      TrackerState& ts = it->second;
      if (now - ts.last_heartbeat <= cfg_.tracker_expiry) {
        ++it;
        continue;
      }
      // Tracker lost: hand its un-finished tasks back to their jobs.
      for (const TaskAssignment& t : ts.assigned) {
        auto jit = jobs_.find(t.job);
        if (jit == jobs_.end()) continue;
        Job& job = jit->second;
        if (job.done_tasks.count({static_cast<int>(t.type), t.task}) != 0) continue;
        if (t.type == TaskType::kMap) {
          job.pending_maps.push_front(t.task);
        } else {
          job.pending_reduces.push_front(t.task);
        }
        ++tasks_reexecuted_;
        trace::TraceCollector* tr = trace::active(host_.tracer());
        if (tr != nullptr && job.trace_ctx.valid()) {
          tr->add_complete("fault.tracker_lost", trace::Kind::kInternal,
                           trace::Category::kFault, job.trace_ctx, host_.id(),
                           ts.last_heartbeat, now);
        }
      }
      it = trackers_.erase(it);
    }
  }
}

const JobSpec* JobTracker::spec_of(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second.spec;
}

JobStatus JobTracker::status_of(JobId id) const {
  JobStatus st;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return st;
  st.exists = true;
  st.complete = it->second.complete;
  st.maps_done = it->second.maps_done;
  st.reduces_done = it->second.reduces_done;
  st.submit_time = it->second.submit_time;
  st.finish_time = it->second.finish_time;
  return st;
}

void JobTracker::on_task_complete(Job& job, const TaskAssignment& t,
                                  std::int32_t tracker_host) {
  // A task can finish twice when its first tracker was declared lost but
  // kept running; only the first completion counts.
  if (!job.done_tasks.insert({static_cast<int>(t.type), t.task}).second) return;
  if (t.type == TaskType::kMap) {
    ++job.maps_done;
    job.completed_map_hosts.push_back(tracker_host);
  } else {
    ++job.reduces_done;
  }
  const int total_reduces = job.spec.map_only ? 0 : job.spec.num_reduces;
  if (job.maps_done >= job.spec.num_maps && job.reduces_done >= total_reduces &&
      !job.complete) {
    job.complete = true;
    job.finish_time = host_.sched().now();
  }
}

void JobTracker::register_handlers() {
  rpc::Dispatcher& d = server_->dispatcher();

  d.register_method(kJobSubmissionProtocol, "submitJob",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      JobSubmission sub;
                      sub.read_fields(in);
                      Job job;
                      job.id = sub.id;
                      job.spec = sub.spec;
                      job.trace_ctx = sub.ctx();
                      job.submit_time = host_.sched().now();
                      for (TaskId t = 0; t < sub.spec.num_maps; ++t) {
                        job.pending_maps.push_back(t);
                      }
                      if (!sub.spec.map_only) {
                        for (TaskId t = 0; t < sub.spec.num_reduces; ++t) {
                          job.pending_reduces.push_back(t);
                        }
                      }
                      jobs_[sub.id] = std::move(job);
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kJobSubmissionProtocol, "getJobStatus",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      rpc::IntWritable id;
                      id.read_fields(in);
                      const JobStatus st = status_of(id.value);
                      JobStatusResult r;
                      r.exists = st.exists;
                      r.complete = st.complete;
                      r.maps_done = st.maps_done;
                      r.reduces_done = st.reduces_done;
                      r.write(out);
                      co_return;
                    });

  d.register_method(
      kInterTrackerProtocol, "heartbeat",
      [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        HeartbeatRequest req;
        req.read_fields(in);

        trackers_[req.tracker].last_heartbeat = host_.sched().now();
        HeartbeatResponse resp;
        // Process completions first so freed slots can be refilled.
        for (const TaskAssignment& t : req.completed) {
          forget_assignment(req.tracker, t);
          auto it = jobs_.find(t.job);
          if (it != jobs_.end()) on_task_complete(it->second, t, req.tracker);
        }
        // Failed attempts go back on the pending queue (front: retry soon).
        for (const TaskAssignment& t : req.failed) {
          forget_assignment(req.tracker, t);
          auto it = jobs_.find(t.job);
          if (it == jobs_.end()) continue;
          if (t.type == TaskType::kMap) {
            it->second.pending_maps.push_front(t.task);
          } else {
            it->second.pending_reduces.push_front(t.task);
          }
        }
        // FIFO over jobs: hand out maps; reduces once 5% of maps finished
        // (mapred.reduce.slowstart semantics, simplified).
        int free_maps = req.free_map_slots;
        int free_reduces = req.free_reduce_slots;
        for (auto& [id, job] : jobs_) {
          if (job.complete) continue;
          while (free_maps > 0 && !job.pending_maps.empty()) {
            TaskAssignment a{job.id, job.pending_maps.front(), TaskType::kMap};
            a.set_ctx(job.trace_ctx);
            if (!job.first_assign_traced) {
              // Attribute the submit -> first-heartbeat scheduling gap
              // (up to one heartbeat interval) as queueing, not job-other.
              job.first_assign_traced = true;
              trace::TraceCollector* tr = trace::active(host_.tracer());
              if (tr != nullptr && job.trace_ctx.valid()) {
                tr->add_complete("assign.wait", trace::Kind::kInternal,
                                 trace::Category::kQueue, job.trace_ctx,
                                 host_.id(), job.submit_time,
                                 host_.sched().now());
              }
            }
            resp.new_tasks.push_back(a);
            job.pending_maps.pop_front();
            --free_maps;
          }
          const bool slowstart_met =
              job.maps_done * 20 >= job.spec.num_maps || job.pending_maps.empty();
          while (free_reduces > 0 && slowstart_met && !job.pending_reduces.empty()) {
            TaskAssignment a{job.id, job.pending_reduces.front(), TaskType::kReduce};
            a.set_ctx(job.trace_ctx);
            resp.new_tasks.push_back(a);
            job.pending_reduces.pop_front();
            --free_reduces;
          }
        }
        TrackerState& ts = trackers_[req.tracker];
        ts.assigned.insert(ts.assigned.end(), resp.new_tasks.begin(),
                           resp.new_tasks.end());
        resp.write(out);
        co_return;
      });

  // Shuffle support: TaskTrackers relay reduce-side completion-event polls.
  d.register_method(kInterTrackerProtocol, "getMapCompletionEvents",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      rpc::IntWritable job_id;
                      job_id.read_fields(in);
                      MapCompletionEventsResult r;
                      auto it = jobs_.find(job_id.value);
                      if (it != jobs_.end()) {
                        r.total_maps = it->second.spec.num_maps;
                        r.completed_map_hosts = it->second.completed_map_hosts;
                      }
                      r.write(out);
                      co_return;
                    });
}

}  // namespace rpcoib::mapred
