// JobTracker: the MapReduce master.
//
// Serves JobSubmissionProtocol (submitJob/getJobStatus) and
// InterTrackerProtocol (heartbeat — the "JT heartbeat" whose size
// locality Fig. 3 plots, since every beat carries the tracker's full task
// status array). Scheduling is slot-based FIFO like Hadoop 0.20's default
// scheduler: maps first, reduces once enough maps have finished.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "mapred/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"
#include "sim/sync.hpp"

namespace rpcoib::mapred {

class JobTracker {
 public:
  JobTracker(cluster::Host& host, oib::RpcEngine& engine, net::Address addr);
  ~JobTracker();
  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  void start();
  void stop();

  const net::Address& addr() const { return addr_; }

  /// In-process job registry: TaskTrackers resolve the JobSpec here (the
  /// real job.xml fetch through HDFS is charged separately via
  /// JobSpec::localization_nn_calls).
  const JobSpec* spec_of(JobId id) const;

  JobStatus status_of(JobId id) const;
  std::size_t jobs_submitted() const { return jobs_.size(); }

 private:
  struct Job {
    JobId id = -1;
    JobSpec spec;
    std::deque<TaskId> pending_maps;
    std::deque<TaskId> pending_reduces;
    int maps_done = 0;
    int reduces_done = 0;
    bool complete = false;
    sim::Time submit_time = 0;
    sim::Time finish_time = 0;
    std::vector<std::int32_t> completed_map_hosts;  // shuffle sources
    trace::TraceContext trace_ctx;  // submitting client's job span
    bool first_assign_traced = false;
  };

  void register_handlers();
  void on_task_complete(Job& job, const TaskAssignment& t, std::int32_t tracker_host);

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address addr_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::map<JobId, Job> jobs_;
  JobId next_job_id_ = 1;
};

}  // namespace rpcoib::mapred
