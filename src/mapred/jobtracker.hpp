// JobTracker: the MapReduce master.
//
// Serves JobSubmissionProtocol (submitJob/getJobStatus) and
// InterTrackerProtocol (heartbeat — the "JT heartbeat" whose size
// locality Fig. 3 plots, since every beat carries the tracker's full task
// status array). Scheduling is slot-based FIFO like Hadoop 0.20's default
// scheduler: maps first, reduces once enough maps have finished.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "mapred/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"
#include "sim/sync.hpp"

namespace rpcoib::mapred {

struct JobTrackerConfig {
  /// A TaskTracker whose last heartbeat is older than this is declared
  /// lost and its un-finished tasks are re-queued (Hadoop's
  /// mapred.tasktracker.expiry.interval, default 10 min; 0 disables the
  /// monitor — legacy behavior, lost tasks hang the job).
  sim::Dur tracker_expiry = 0;
  /// How often the expiry monitor scans tracker liveness.
  sim::Dur expiry_check_interval = sim::seconds(5);
};

class JobTracker {
 public:
  JobTracker(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
             JobTrackerConfig cfg = {});
  ~JobTracker();
  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  void start();
  void stop();

  const net::Address& addr() const { return addr_; }

  /// Tasks re-queued after their TaskTracker stopped heartbeating.
  std::uint64_t tasks_reexecuted() const { return tasks_reexecuted_; }

  /// In-process job registry: TaskTrackers resolve the JobSpec here (the
  /// real job.xml fetch through HDFS is charged separately via
  /// JobSpec::localization_nn_calls).
  const JobSpec* spec_of(JobId id) const;

  JobStatus status_of(JobId id) const;
  std::size_t jobs_submitted() const { return jobs_.size(); }

 private:
  struct Job {
    JobId id = -1;
    JobSpec spec;
    std::deque<TaskId> pending_maps;
    std::deque<TaskId> pending_reduces;
    int maps_done = 0;
    int reduces_done = 0;
    bool complete = false;
    sim::Time submit_time = 0;
    sim::Time finish_time = 0;
    std::vector<std::int32_t> completed_map_hosts;  // shuffle sources
    trace::TraceContext trace_ctx;  // submitting client's job span
    bool first_assign_traced = false;
    /// Completion dedup: a task re-executed after a tracker loss may
    /// still be finished by the original tracker, too.
    std::set<std::pair<int, TaskId>> done_tasks;
  };

  /// Liveness + assignment bookkeeping per TaskTracker (keyed by host id).
  struct TrackerState {
    sim::Time last_heartbeat = 0;
    std::vector<TaskAssignment> assigned;  // handed out, not yet done/failed
  };

  void register_handlers();
  void on_task_complete(Job& job, const TaskAssignment& t, std::int32_t tracker_host);
  void forget_assignment(std::int32_t tracker, const TaskAssignment& t);
  sim::Task expiry_monitor();

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address addr_;
  JobTrackerConfig cfg_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::map<JobId, Job> jobs_;
  std::map<std::int32_t, TrackerState> trackers_;
  std::uint64_t tasks_reexecuted_ = 0;
  bool running_ = false;
  JobId next_job_id_ = 1;
};

}  // namespace rpcoib::mapred
