#include "mapred/jobclient.hpp"

#include "trace/trace.hpp"

namespace rpcoib::mapred {

namespace {
const rpc::MethodKey kSubmitJob{kJobSubmissionProtocol, "submitJob"};
const rpc::MethodKey kGetJobStatus{kJobSubmissionProtocol, "getJobStatus"};
}  // namespace

JobClient::JobClient(cluster::Host& host, oib::RpcEngine& engine, net::Address jt_addr)
    : host_(host), jt_addr_(jt_addr), rpc_(engine.make_client(host)) {}

sim::Co<JobId> JobClient::submit(const JobSpec& spec) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const trace::TraceContext ctx =
      tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  JobSubmission sub;
  sub.id = next_id_++;
  sub.spec = spec;
  sub.set_ctx(ctx);  // the job span rides in the submission payload too
  rpc::BooleanWritable ok;
  trace::activate(tr, ctx);
  co_await rpc_->call(jt_addr_, kSubmitJob, sub, &ok);
  co_return sub.id;
}

sim::Co<double> JobClient::wait_for_completion(JobId id, trace::TraceContext ctx) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const sim::Time start = host_.sched().now();
  rpc::IntWritable param(id);
  for (;;) {
    JobStatusResult st;
    trace::activate(tr, ctx);
    co_await rpc_->call(jt_addr_, kGetJobStatus, param, &st);
    if (st.exists && st.complete) break;
    co_await sim::delay(host_.sched(), sim::millis(250));
  }
  co_return sim::to_sec(host_.sched().now() - start);
}

sim::Co<double> JobClient::run(const JobSpec& spec) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope job(tr, "job:" + spec.name, trace::Kind::kInternal,
                       trace::Category::kOther,
                       tr != nullptr ? tr->take_ambient() : trace::TraceContext{},
                       host_.id());
  job.activate();
  const JobId id = co_await submit(spec);
  const double secs = co_await wait_for_completion(id, job.context());
  job.end();
  co_return secs;
}

}  // namespace rpcoib::mapred
