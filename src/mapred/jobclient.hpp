// JobClient: submits jobs and polls for completion, like
// `hadoop jar ... && waitForCompletion`.
#pragma once

#include <memory>

#include "mapred/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"
#include "trace/context.hpp"

namespace rpcoib::mapred {

class JobClient {
 public:
  JobClient(cluster::Host& host, oib::RpcEngine& engine, net::Address jt_addr);

  sim::Co<JobId> submit(const JobSpec& spec);

  /// Poll getJobStatus once a second until the job completes; returns the
  /// job execution time in virtual seconds. `ctx` (optional) parents the
  /// poll RPCs to the caller's job span.
  sim::Co<double> wait_for_completion(JobId id, trace::TraceContext ctx = {});

  /// submit + wait.
  sim::Co<double> run(const JobSpec& spec);

 private:
  cluster::Host& host_;
  net::Address jt_addr_;
  std::unique_ptr<rpc::RpcClient> rpc_;
  JobId next_id_ = 1;
};

}  // namespace rpcoib::mapred
