#include "mapred/mr_cluster.hpp"

namespace rpcoib::mapred {

namespace {
constexpr std::uint16_t kJobTrackerPort = 8021;
}

MrCluster::MrCluster(oib::RpcEngine& engine, hdfs::HdfsCluster& hdfs,
                     cluster::HostId jt_host, std::vector<cluster::HostId> tt_hosts,
                     TaskTrackerConfig tt_cfg, JobTrackerConfig jt_cfg)
    : engine_(engine), jt_addr_{jt_host, kJobTrackerPort} {
  jt_ = std::make_unique<JobTracker>(engine.testbed().host(jt_host), engine, jt_addr_,
                                     jt_cfg);
  for (cluster::HostId h : tt_hosts) {
    auto tt = std::make_unique<TaskTracker>(engine.testbed().host(h), engine, jt_addr_,
                                            hdfs, tt_cfg);
    tt->set_spec_lookup([jt = jt_.get()](JobId id) { return jt->spec_of(id); });
    tts_.push_back(std::move(tt));
  }
}

void MrCluster::start() {
  jt_->start();
  for (auto& tt : tts_) tt->start();
}

void MrCluster::stop() {
  for (auto& tt : tts_) {
    if (tt) tt->stop();
  }
  jt_->stop();
}

void MrCluster::stop_tasktracker(std::size_t index) {
  if (index >= tts_.size() || !tts_[index]) return;
  tts_[index]->stop();
}

std::unique_ptr<JobClient> MrCluster::make_client(cluster::Host& host) {
  return std::make_unique<JobClient>(host, engine_, jt_addr_);
}

}  // namespace rpcoib::mapred
