// TaskTracker: the per-node MapReduce worker daemon.
//
// Heartbeats to the JobTracker every 3 s carrying the full status of every
// running task (the variable-size "JT heartbeat" of Fig. 3), runs map and
// reduce tasks in slots (8 maps + 4 reduces per node, the paper's
// configuration), and serves TaskUmbilicalProtocol to its child tasks —
// the protocol whose getTask / ping / statusUpdate / commitPending /
// canCommit / done calls fill Table I.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "hdfs/hdfs_cluster.hpp"
#include "mapred/jobtracker.hpp"
#include "mapred/types.hpp"

namespace rpcoib::mapred {

struct TaskTrackerConfig {
  int map_slots = 8;
  int reduce_slots = 4;
  sim::Dur heartbeat_interval = sim::seconds(3);
  /// Send a heartbeat immediately when a task completes
  /// (mapreduce.tasktracker.outofband.heartbeat).
  bool out_of_band_heartbeat = true;
  sim::Dur reduce_event_poll_interval = sim::seconds(1);
  /// Umbilical progress-report interval while a task runs.
  sim::Dur status_interval = sim::seconds(1);
  std::uint16_t umbilical_port = 50060;
};

class TaskTracker {
 public:
  TaskTracker(cluster::Host& host, oib::RpcEngine& engine, net::Address jt_addr,
              hdfs::HdfsCluster& hdfs, TaskTrackerConfig cfg = {});
  ~TaskTracker();
  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  void start();
  void stop();

  /// In-process JobSpec resolution (normally the job.xml fetched from
  /// HDFS; that fetch's RPC cost is modeled by localization_nn_calls).
  using SpecLookup = std::function<const JobSpec*(JobId)>;
  void set_spec_lookup(SpecLookup fn) { jt_spec_lookup_ = std::move(fn); }

  cluster::Host& host() const { return host_; }
  int tasks_completed() const { return tasks_completed_; }

  /// Bulk-stream endpoint, for stats inspection; null when streaming is
  /// disabled or the data path is not RDMA.
  oib::stream::StreamHub* stream_hub() { return stream_hub_.get(); }

 private:
  struct RunningTask {
    TaskAssignment assignment;
    float progress = 0;
  };

  sim::Task heartbeat_loop();
  sim::Task run_task(TaskAssignment t, JobSpec spec);
  sim::Co<void> run_map(const TaskAssignment& t, const JobSpec& spec);
  sim::Co<void> run_reduce(const TaskAssignment& t, const JobSpec& spec);

  /// Streamed shuffle fetch of one map-output segment from `src`. False on
  /// any fallback (no hub at the peer, refused, mid-stream failure): the
  /// caller re-fetches over the legacy modeled transfer.
  sim::Co<bool> fetch_segment_streamed(cluster::HostId src, std::uint64_t seg_bytes);
  /// Serve side of the role-flipped fetch: stream the requested segment
  /// back on the fetcher's own connection.
  sim::Task serve_shuffle(oib::stream::StreamHub::ConnPtr conn, std::uint64_t token,
                          net::Bytes meta);

  // Umbilical helpers (child task -> local TaskTracker RPC).
  sim::Co<void> umbilical_get_task(const TaskAssignment& t);
  sim::Co<void> umbilical_status(const TaskAssignment& t, float progress);
  sim::Co<void> umbilical_simple(const char* method, const TaskAssignment& t);
  sim::Co<MapCompletionEventsResult> umbilical_completion_events(JobId job);
  void register_umbilical_handlers();

  // Traced wrappers around modeled disk/compute charges: record a span
  // under `ctx` (the task span) when tracing is live, no-ops otherwise.
  sim::Co<void> traced_disk(trace::TraceContext ctx, const char* name,
                            std::uint64_t bytes);
  sim::Co<void> traced_compute(trace::TraceContext ctx, const char* name, sim::Dur d);

  cluster::Host& host_;
  oib::RpcEngine& engine_;
  net::Address jt_addr_;
  net::Address umbilical_addr_;
  hdfs::HdfsCluster& hdfs_;
  TaskTrackerConfig cfg_;

  std::unique_ptr<rpc::RpcClient> jt_rpc_;         // tracker -> JobTracker
  std::unique_ptr<rpc::RpcClient> umbilical_rpc_;  // child tasks -> tracker (loopback)
  std::unique_ptr<rpc::RpcServer> umbilical_server_;
  std::unique_ptr<hdfs::DFSClient> dfs_;           // shared by this node's tasks
  /// Bulk-stream endpoint for the shuffle (serves fetches of this node's
  /// map outputs, fetches remote segments); created per start() when
  /// streaming is enabled on the RDMA data path.
  std::unique_ptr<oib::stream::StreamHub> stream_hub_;

  SpecLookup jt_spec_lookup_;
  bool oob_pending_ = false;
  std::map<std::pair<JobId, TaskId>, RunningTask> running_;
  std::deque<TaskAssignment> completed_pending_report_;
  std::deque<TaskAssignment> failed_pending_report_;
  std::set<std::pair<JobId, TaskId>> attempted_;  // fault-injection bookkeeping
  int free_map_slots_;
  int free_reduce_slots_;
  int tasks_completed_ = 0;
  bool running_flag_ = false;
};

}  // namespace rpcoib::mapred
