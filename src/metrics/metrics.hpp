// Lightweight metrics used throughout the stack.
//
// Every instrumented quantity in the reproduction — memory-adjustment
// counts (Table I), buffer-allocation time ratio (Fig. 1), message-size
// traces (Fig. 3), latency/throughput (Fig. 5) — flows through these types,
// so the bench harnesses only aggregate and print.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rpcoib::metrics {

/// Running summary of a stream of samples: count / sum / min / max / mean /
/// variance (Welford).
class Summary {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
  }

  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    const double mean = mean_ + delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
                       static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0; }
  double min() const { return n_ ? min_ : 0; }
  double max() const { return n_ ? max_ : 0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0; }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary(); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log2-bucketed histogram with percentile estimation, for latency
/// distributions. Values are arbitrary doubles >= 0.
class Histogram {
 public:
  Histogram() : buckets_(kBuckets, 0) {}

  void add(double v) {
    summary_.add(v);
    ++buckets_[bucket_for(v)];
  }

  /// Approximate p-quantile (0..1) using bucket interpolation.
  double quantile(double q) const {
    const std::uint64_t n = summary_.count();
    if (n == 0) return 0;
    const double target = q * static_cast<double>(n);
    double cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double next = cum + static_cast<double>(buckets_[i]);
      if (next >= target) {
        const double lo = bucket_lo(i);
        const double hi = bucket_hi(i);
        const double frac = buckets_[i] ? (target - cum) / static_cast<double>(buckets_[i]) : 0;
        return std::clamp(lo + frac * (hi - lo), summary_.min(), summary_.max());
      }
      cum = next;
    }
    return summary_.max();
  }

  const Summary& summary() const { return summary_; }
  void reset() {
    summary_.reset();
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

 private:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_for(double v) {
    if (v < 1.0) return 0;
    const int e = std::ilogb(v);
    return std::min<std::size_t>(static_cast<std::size_t>(e) + 1, kBuckets - 1);
  }
  static double bucket_lo(std::size_t i) { return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1); }
  static double bucket_hi(std::size_t i) { return std::ldexp(1.0, static_cast<int>(i)); }

  Summary summary_;
  std::vector<std::uint64_t> buckets_;
};

/// Named counters/summaries grouped per component instance. A Registry is
/// plain data — benches create one per configuration and diff them.
class Registry {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  Summary& summary(const std::string& name) { return summaries_[name]; }
  const Summary* find_summary(const std::string& name) const {
    auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, Summary>& summaries() const { return summaries_; }

  void reset() {
    counters_.clear();
    summaries_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace rpcoib::metrics
