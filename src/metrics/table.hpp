// Fixed-width table printer for bench output.
//
// Every bench binary reproduces one paper table/figure by printing the same
// rows/series the paper reports; this keeps that output aligned and uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rpcoib::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "Figure N" style section banner.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace rpcoib::metrics
