#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rpcoib::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v << "%";
  return ss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }

  auto line = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell << " | ";
    }
    os << '\n';
  };

  line(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) line(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(title.size() + 8, '=') << '\n'
     << "==  " << title << "  ==\n"
     << std::string(title.size() + 8, '=') << '\n';
}

}  // namespace rpcoib::metrics
