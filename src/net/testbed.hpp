// Testbed: a fully wired simulated cluster (hosts + fabric + sockets).
//
// Mirrors the paper's two clusters:
//   Cluster A — up to 65 nodes, 8 cores, 12 GB, QDR IB (verbs + IPoIB) and
//               1GigE; single Mellanox QDR switch.
//   Cluster B — 9 nodes, same CPUs, 24 GB, plus NetEffect 10GigE; used for
//               the Fig. 5 micro-benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/host.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/socket.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace rpcoib::net {

struct TestbedConfig {
  int nodes = 9;
  int cores_per_node = 8;
  cluster::CostModel cost{};
  std::uint64_t seed = 20130701;  // ICPP'13-flavored default seed
  bool has_ten_gige = false;
  /// Optional deterministic fault-injection plan, installed on the fabric
  /// at construction. Null (the default) means a fault-free fabric.
  std::shared_ptr<FaultPlan> fault;
};

class Testbed {
 public:
  Testbed(sim::Scheduler& sched, const TestbedConfig& cfg);

  sim::Scheduler& sched() { return sched_; }
  Fabric& fabric() { return fabric_; }
  SocketTable& sockets() { return sockets_; }
  cluster::Host& host(cluster::HostId i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  int size() const { return static_cast<int>(hosts_.size()); }
  const TestbedConfig& config() const { return cfg_; }

  /// Attach a trace collector to every host (null detaches). Binds the
  /// collector to this testbed's scheduler and registers host names for
  /// the exporter's process labels.
  void set_tracer(trace::TraceCollector* t);

  /// The paper's Cluster A at the requested scale (default full 65 nodes).
  static TestbedConfig cluster_a(int nodes = 65);
  /// The paper's Cluster B (9 nodes, adds 10GigE).
  static TestbedConfig cluster_b();

 private:
  sim::Scheduler& sched_;
  TestbedConfig cfg_;
  std::vector<std::unique_ptr<cluster::Host>> hosts_;
  Fabric fabric_;
  SocketTable sockets_;
};

}  // namespace rpcoib::net
