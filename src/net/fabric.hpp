// The switched fabric connecting simulated hosts.
//
// Models what matters at the paper's scale: per-host, per-transport egress
// serialization (a NIC can only push one frame at a time) plus a one-way
// switch latency. Both testbeds in the paper are single-switch, so one hop
// is exact, not an approximation.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "cluster/host.hpp"
#include "net/params.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rpcoib::net {

class FaultPlan;

class Fabric {
 public:
  Fabric(sim::Scheduler& sched, std::size_t num_hosts);

  void set_params(Transport t, NetParams p);
  const NetParams& params(Transport t) const;

  /// Attach a deterministic fault-injection plan (null detaches). The plan
  /// is consulted on every delivery; reliable paths (deliver_flow,
  /// transfer) pay faults as retransmission delay while one-shot
  /// deliveries (deliver) can be truly lost. See net/fault.hpp.
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }
  FaultPlan* fault_plan() const { return fault_; }

  /// Reserve the src egress link for `bytes`; returns the virtual time the
  /// last byte leaves the NIC.
  sim::Time reserve_egress(cluster::HostId src, Transport t, std::size_t bytes);

  /// Schedule `on_arrival` at the destination's arrival time; returns that
  /// time. The payload is whatever the callback captured — the fabric only
  /// does timing.
  sim::Time deliver(cluster::HostId src, cluster::HostId dst, Transport t, std::size_t bytes,
                    std::function<void()> on_arrival);

  /// Unreliable datagram delivery (IB UD): the loss decision comes from
  /// the fault plan's dedicated datagram stream only — the drop/spike,
  /// outage and kill streams draw nothing, so seeded RC/TCP chaos runs
  /// stay byte-identical when UD traffic is added. A lost datagram's
  /// callback never fires.
  sim::Time deliver_datagram(cluster::HostId src, cluster::HostId dst, Transport t,
                             std::size_t bytes, std::function<void()> on_arrival);

  /// Like deliver(), but never reorders within a flow: the arrival is
  /// clamped to `flow_clock` (the flow's previous arrival), which is then
  /// advanced. Small messages may still preempt *other* flows' bulk
  /// reservations on the shared egress.
  sim::Time deliver_flow(cluster::HostId src, cluster::HostId dst, Transport t,
                         std::size_t bytes, sim::Time& flow_clock,
                         std::function<void()> on_arrival);

  /// Time-only bulk transfer: suspends the caller until the data would have
  /// arrived. Used for modeled data paths (HDFS blocks, shuffle) where no
  /// real bytes move.
  sim::Co<void> transfer(cluster::HostId src, cluster::HostId dst, Transport t,
                         std::size_t bytes);

  sim::Scheduler& sched() const { return sched_; }

 private:
  sim::Scheduler& sched_;
  std::map<Transport, NetParams> params_;
  // egress_free_[transport_index][host] = time the NIC next becomes idle.
  std::map<Transport, std::vector<sim::Time>> egress_free_;
  std::size_t num_hosts_;
  FaultPlan* fault_ = nullptr;
};

}  // namespace rpcoib::net
