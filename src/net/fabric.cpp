#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace rpcoib::net {

Fabric::Fabric(sim::Scheduler& sched, std::size_t num_hosts)
    : sched_(sched), num_hosts_(num_hosts) {
  for (Transport t : {Transport::kOneGigE, Transport::kTenGigE, Transport::kIPoIB,
                      Transport::kIBVerbs}) {
    params_[t] = params_for(t);
    egress_free_[t].assign(num_hosts_, 0);
  }
}

void Fabric::set_params(Transport t, NetParams p) { params_[t] = p; }

const NetParams& Fabric::params(Transport t) const {
  auto it = params_.find(t);
  if (it == params_.end()) throw std::logic_error("fabric: unknown transport");
  return it->second;
}

sim::Time Fabric::reserve_egress(cluster::HostId src, Transport t, std::size_t bytes) {
  const NetParams& p = params(t);
  std::vector<sim::Time>& free = egress_free_[t];
  sim::Time& horizon = free[static_cast<std::size_t>(src)];
  // Real NICs interleave at packet granularity (IB VL arbitration, TCP
  // fair sharing), so a small message never waits behind a whole bulk
  // transfer: it departs immediately while still consuming link capacity.
  static constexpr std::size_t kPreemptBytes = 16 * 1024;
  if (bytes <= kPreemptBytes) {
    const sim::Time done = sched_.now() + p.wire_time(bytes);
    horizon = std::max(horizon, sched_.now()) + p.wire_time(bytes);
    return done;
  }
  const sim::Time start = std::max(sched_.now(), horizon);
  const sim::Time done = start + p.wire_time(bytes);
  horizon = done;
  return done;
}

sim::Time Fabric::deliver(cluster::HostId src, cluster::HostId dst, Transport t,
                          std::size_t bytes, std::function<void()> on_arrival) {
  (void)dst;  // ingress contention is not modeled; see header comment
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const sim::Time arrival = egress_done + p.one_way_latency;
  sched_.call_at(arrival, std::move(on_arrival));
  return arrival;
}

sim::Time Fabric::deliver_flow(cluster::HostId src, cluster::HostId dst, Transport t,
                               std::size_t bytes, sim::Time& flow_clock,
                               std::function<void()> on_arrival) {
  (void)dst;
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  sim::Time arrival = egress_done + p.one_way_latency;
  // In-flow pacing: a stream's chunks arrive in order AND no faster than
  // the wire carries them — even when small-message preemption lets them
  // jump the shared egress queue. This is what makes a 2 MB socket
  // message drain at link speed at the receiver (Fig. 1's denominator).
  const sim::Time flow_min = flow_clock + p.wire_time(bytes);
  if (arrival < flow_min) arrival = flow_min;
  flow_clock = arrival;
  sched_.call_at(arrival, std::move(on_arrival));
  return arrival;
}

sim::Co<void> Fabric::transfer(cluster::HostId src, cluster::HostId dst, Transport t,
                               std::size_t bytes) {
  (void)dst;
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const sim::Time arrival = egress_done + p.one_way_latency;
  co_await sim::delay(sched_, arrival - sched_.now());
}

}  // namespace rpcoib::net
