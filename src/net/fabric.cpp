#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/fault.hpp"

namespace rpcoib::net {

namespace {
/// One decision per delivery; a null or empty plan draws no randomness.
FaultDecision fault_decision(FaultPlan* plan, cluster::HostId src, cluster::HostId dst,
                             sim::Time now, bool reliable) {
  if (plan == nullptr || !plan->enabled()) return FaultDecision{};
  return plan->decide(src, dst, now, reliable);
}
}  // namespace

Fabric::Fabric(sim::Scheduler& sched, std::size_t num_hosts)
    : sched_(sched), num_hosts_(num_hosts) {
  for (Transport t : {Transport::kOneGigE, Transport::kTenGigE, Transport::kIPoIB,
                      Transport::kIBVerbs}) {
    params_[t] = params_for(t);
    egress_free_[t].assign(num_hosts_, 0);
  }
}

void Fabric::set_params(Transport t, NetParams p) { params_[t] = p; }

const NetParams& Fabric::params(Transport t) const {
  auto it = params_.find(t);
  if (it == params_.end()) throw std::logic_error("fabric: unknown transport");
  return it->second;
}

sim::Time Fabric::reserve_egress(cluster::HostId src, Transport t, std::size_t bytes) {
  const NetParams& p = params(t);
  std::vector<sim::Time>& free = egress_free_[t];
  sim::Time& horizon = free[static_cast<std::size_t>(src)];
  // Real NICs interleave at packet granularity (IB VL arbitration, TCP
  // fair sharing), so a small message never waits behind a whole bulk
  // transfer: it departs immediately while still consuming link capacity.
  static constexpr std::size_t kPreemptBytes = 16 * 1024;
  if (bytes <= kPreemptBytes) {
    const sim::Time done = sched_.now() + p.wire_time(bytes);
    horizon = std::max(horizon, sched_.now()) + p.wire_time(bytes);
    return done;
  }
  const sim::Time start = std::max(sched_.now(), horizon);
  const sim::Time done = start + p.wire_time(bytes);
  horizon = done;
  return done;
}

sim::Time Fabric::deliver(cluster::HostId src, cluster::HostId dst, Transport t,
                          std::size_t bytes, std::function<void()> on_arrival) {
  (void)dst;  // ingress contention is not modeled; see header comment
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const FaultDecision fd = fault_decision(fault_, src, dst, sched_.now(), /*reliable=*/false);
  const sim::Time arrival = egress_done + p.one_way_latency + fd.extra;
  // A lost one-shot delivery: the callback never fires; the layer above
  // must detect the silence (timeout) and recover.
  if (!fd.lost) sched_.call_at(arrival, std::move(on_arrival));
  return arrival;
}

sim::Time Fabric::deliver_datagram(cluster::HostId src, cluster::HostId dst, Transport t,
                                   std::size_t bytes, std::function<void()> on_arrival) {
  (void)dst;
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const sim::Time arrival = egress_done + p.one_way_latency;
  const bool lost =
      fault_ != nullptr && fault_->take_datagram_loss(src, dst, sched_.now());
  if (!lost) sched_.call_at(arrival, std::move(on_arrival));
  return arrival;
}

sim::Time Fabric::deliver_flow(cluster::HostId src, cluster::HostId dst, Transport t,
                               std::size_t bytes, sim::Time& flow_clock,
                               std::function<void()> on_arrival) {
  (void)dst;
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const FaultDecision fd = fault_decision(fault_, src, dst, sched_.now(), /*reliable=*/true);
  // Fault delay lands before the in-flow clamp: a retransmitted chunk
  // stalls everything behind it in the stream (TCP head-of-line blocking).
  sim::Time arrival = egress_done + p.one_way_latency + fd.extra;
  // In-flow pacing: a stream's chunks arrive in order AND no faster than
  // the wire carries them — even when small-message preemption lets them
  // jump the shared egress queue. This is what makes a 2 MB socket
  // message drain at link speed at the receiver (Fig. 1's denominator).
  const sim::Time flow_min = flow_clock + p.wire_time(bytes);
  if (arrival < flow_min) arrival = flow_min;
  flow_clock = arrival;
  sched_.call_at(arrival, std::move(on_arrival));
  return arrival;
}

sim::Co<void> Fabric::transfer(cluster::HostId src, cluster::HostId dst, Transport t,
                               std::size_t bytes) {
  (void)dst;
  const NetParams& p = params(t);
  const sim::Time egress_done = reserve_egress(src, t, bytes);
  const FaultDecision fd = fault_decision(fault_, src, dst, sched_.now(), /*reliable=*/true);
  const sim::Time arrival = egress_done + p.one_way_latency + fd.extra;
  co_await sim::delay(sched_, arrival - sched_.now());
}

}  // namespace rpcoib::net
