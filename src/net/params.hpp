// Per-transport network parameters.
//
// Four transports, matching the paper's evaluation matrix:
//   1GigE           — baseline Ethernet (Fig. 1, Fig. 7, Fig. 8 low lines)
//   10GigE          — NetEffect NE020 on Cluster B (Fig. 5)
//   IPoIB           — TCP/IP emulation over QDR IB, 32 Gbps signaling
//   IB verbs (QDR)  — native InfiniBand used by RPCoIB / HDFSoIB / HBaseoIB
//
// Socket transports pay kernel-stack CPU per message plus a user<->kernel
// copy; the verbs transport pays only a doorbell/poll cost (kernel bypass,
// zero copy). Bandwidths are effective application-level figures, not
// signaling rates.
#pragma once

#include <cstddef>
#include <string>

#include "sim/time.hpp"

namespace rpcoib::net {

/// Which physical transport a message travels on.
enum class Transport {
  kOneGigE,
  kTenGigE,
  kIPoIB,
  kIBVerbs,
};

inline const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kOneGigE: return "1GigE";
    case Transport::kTenGigE: return "10GigE";
    case Transport::kIPoIB: return "IPoIB";
    case Transport::kIBVerbs: return "IB-verbs";
  }
  return "?";
}

struct NetParams {
  /// Effective wire bandwidth, gigaBYTES per second.
  double bw_gBps;
  /// One-way NIC-to-NIC latency through one switch hop.
  sim::Dur one_way_latency;
  /// Kernel/stack CPU charged on the sender per message (0 for verbs).
  sim::Dur per_msg_send_cpu;
  /// Kernel/stack CPU charged on the receiver per message.
  sim::Dur per_msg_recv_cpu;
  /// user<->kernel copy bandwidth for socket transports, GB/s (0 = zero copy).
  double kernel_copy_gBps;

  sim::Dur wire_time(std::size_t bytes) const {
    return sim::from_us(static_cast<double>(bytes) / (bw_gBps * 1000.0));
  }
  sim::Dur kernel_copy(std::size_t bytes) const {
    if (kernel_copy_gBps <= 0) return 0;
    return sim::from_us(static_cast<double>(bytes) / (kernel_copy_gBps * 1000.0));
  }
};

/// Calibrated parameter sets. Latency figures chosen so the reproduced
/// Fig. 5 curves land on the paper's endpoints; see EXPERIMENTS.md.
NetParams one_gige_params();
NetParams ten_gige_params();
NetParams ipoib_params();
NetParams ib_verbs_params();

NetParams params_for(Transport t);

}  // namespace rpcoib::net
