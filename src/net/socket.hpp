// Simulated stream sockets over the fabric.
//
// The Java-sockets substrate the default Hadoop RPC runs on: connect /
// accept, full-duplex byte streams, kernel-stack CPU and user<->kernel
// copies charged per message, ChannelClosed surfacing as EOF. The RPC layer
// above does its own (instrumented) buffering — exactly the layering the
// paper analyzes.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "cluster/host.hpp"
#include "net/bytes.hpp"
#include "net/fabric.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace rpcoib::net {

class Socket;
using SocketPtr = std::shared_ptr<Socket>;

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Endpoint address: host index + TCP-like port.
struct Address {
  cluster::HostId host = -1;
  std::uint16_t port = 0;

  friend bool operator<(const Address& a, const Address& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }
  friend bool operator==(const Address& a, const Address& b) = default;
};

namespace detail {

/// Shared state between the two ends of an established connection.
struct Pipe {
  explicit Pipe(sim::Scheduler& s) : to_server(s), to_client(s) {}
  sim::Channel<Bytes> to_server;
  sim::Channel<Bytes> to_client;
  // Per-direction flow clocks: the fabric clamps arrivals so a stream is
  // never internally reordered by small-message preemption.
  sim::Time clock_to_server = 0;
  sim::Time clock_to_client = 0;
};

}  // namespace detail

/// One end of an established connection.
class Socket : public std::enable_shared_from_this<Socket> {
 public:
  Socket(cluster::Host& local, cluster::HostId remote, Transport t, Fabric& fab,
         std::shared_ptr<detail::Pipe> pipe, bool is_client);
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Send `data`. Charges sender stack CPU and user->kernel copy, reserves
  /// NIC egress, and delivers the chunk to the peer.
  sim::Co<void> write(ByteSpan data);

  /// Read exactly `out.size()` bytes (assembling across chunks). Throws
  /// SocketError on EOF before completion.
  sim::Co<void> read_full(MutByteSpan out);

  /// Read whatever chunk arrives next (at most one chunk). Empty result
  /// never happens; EOF throws SocketError.
  sim::Co<Bytes> read_chunk();

  /// Half-close: peer reads EOF after draining. Idempotent.
  void close();

  /// When enabled, receive-side CPU charges (stack + kernel copy) are
  /// accumulated instead of charged inline, so a serialized Reader thread
  /// can pay them inside its critical section (see SocketRpcServer).
  void set_deferred_rx_charge(bool on) { defer_rx_ = on; }
  sim::Dur take_rx_charge() {
    sim::Dur d = rx_charge_;
    rx_charge_ = 0;
    return d;
  }

  cluster::Host& local() const { return local_; }
  cluster::HostId remote() const { return remote_; }
  Transport transport() const { return transport_; }
  bool closed() const { return closed_; }

 private:
  sim::Channel<Bytes>& rx() const {
    return is_client_ ? pipe_->to_client : pipe_->to_server;
  }
  sim::Channel<Bytes>& tx() const {
    return is_client_ ? pipe_->to_server : pipe_->to_client;
  }
  /// Ensure pending_ holds at least one unread byte; waits for a chunk.
  sim::Co<void> fill();

  cluster::Host& local_;
  cluster::HostId remote_;
  Transport transport_;
  Fabric& fab_;
  std::shared_ptr<detail::Pipe> pipe_;
  bool is_client_;
  bool closed_ = false;

  Bytes pending_;           // partially consumed chunk
  std::size_t pending_off_ = 0;
  bool defer_rx_ = false;
  sim::Dur rx_charge_ = 0;
};

/// Accept queue for a listening port.
class Listener {
 public:
  Listener(sim::Scheduler& sched, Address addr) : addr_(addr), accepted_(sched) {}

  /// Wait for the next inbound connection. Throws sim::ChannelClosed when
  /// the listener is shut down.
  sim::Co<SocketPtr> accept() {
    SocketPtr s = co_await accepted_.recv();
    co_return s;
  }

  void shutdown() { accepted_.close(); }
  const Address& addr() const { return addr_; }

  /// True once no acceptor coroutine can still touch the accept channel —
  /// the point at which this Listener is safe to destroy.
  bool idle() const { return !accepted_.has_waiters(); }

 private:
  friend class SocketTable;
  Address addr_;
  sim::Channel<SocketPtr> accepted_;
};

/// Cluster-wide registry of listening ports; the `connect()` entry point.
class SocketTable {
 public:
  SocketTable(Fabric& fab, std::vector<cluster::Host*> hosts);

  /// Bind a listener. Throws if the address is taken.
  Listener& listen(Address addr);
  void unlisten(Address addr);

  /// Establish a connection (one round trip of handshake). Throws
  /// SocketError if nothing is listening.
  sim::Co<SocketPtr> connect(cluster::Host& src, Address dst, Transport t);

  cluster::Host& host(cluster::HostId id) { return *hosts_.at(static_cast<std::size_t>(id)); }
  Fabric& fabric() { return fab_; }

 private:
  void reap_retired();

  Fabric& fab_;
  std::vector<cluster::Host*> hosts_;
  std::map<Address, std::unique_ptr<Listener>> listeners_;
  // Unlistened but not-yet-idle listeners: closing the accept channel only
  // *schedules* the suspended acceptor, which still dereferences the
  // channel when it resumes. Parked here until idle (reaped on the next
  // listen/unlisten) instead of being destroyed under the acceptor.
  std::vector<std::unique_ptr<Listener>> retired_;
};

}  // namespace rpcoib::net
