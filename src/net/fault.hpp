// Deterministic network fault injection.
//
// A FaultPlan attached to the Fabric perturbs message delivery: per-link
// packet/message drop probability, transient link flaps (outage windows),
// one-way partitions, and latency spikes. All randomness comes from one
// RNG seeded at construction, so a given (seed, plan) pair reproduces the
// exact same failure schedule on every run — chaos tests stay bitwise
// deterministic.
//
// Loss semantics mirror the layering above the fabric:
//   - Reliable byte streams and bulk transfers (deliver_flow / transfer)
//     model TCP or IB RC: a "dropped" chunk is retransmitted, surfacing as
//     added delay (the retransmit timeout), never as data loss. Delivery
//     inside an outage window is pushed past the window's end.
//   - One-shot datagram-style deliveries (deliver) can be truly lost: the
//     arrival callback simply never fires and the layer above must time
//     out and recover.
//
// A default-constructed or empty plan draws zero random numbers and adds
// zero delay, so compiling the fault layer in costs nothing when disabled.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/host.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rpcoib::net {

/// Per-link fault probabilities (applied per message/chunk).
struct LinkFaults {
  double drop_prob = 0.0;        // chance a chunk is dropped (retransmitted
                                 // on reliable paths, lost on one-shot)
  double spike_prob = 0.0;       // chance of an added latency spike
  sim::Dur spike_extra = 0;      // size of the spike

  bool any() const { return drop_prob > 0.0 || spike_prob > 0.0; }
};

/// A time window during which a (src, dst) direction delivers nothing.
/// src/dst of -1 match any host, so {-1, d} partitions d's ingress and
/// {s, -1} partitions s's egress; a pair of windows makes a full flap.
struct FaultWindow {
  cluster::HostId src = -1;
  cluster::HostId dst = -1;
  sim::Time start = 0;
  sim::Time end = 0;  // exclusive

  bool matches(cluster::HostId s, cluster::HostId d, sim::Time now) const {
    return (src < 0 || src == s) && (dst < 0 || dst == d) && now >= start && now < end;
  }
};

/// What the plan decided for one delivery.
struct FaultDecision {
  bool lost = false;     // one-shot delivery never arrives
  sim::Dur extra = 0;    // added latency (retransmits, spikes, outage wait)
};

/// Totals for assertions and the resilience metrics table.
struct FaultCounters {
  std::uint64_t drops = 0;        // chunks hit by drop_prob
  std::uint64_t spikes = 0;       // latency spikes injected
  std::uint64_t outage_hits = 0;  // deliveries delayed/lost by a window
  std::uint64_t true_losses = 0;  // one-shot deliveries actually lost
  std::uint64_t kills = 0;        // connections force-killed mid-call
  std::uint64_t datagram_losses = 0;  // UD datagrams dropped in flight
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 20130701)
      : rng_(seed),
        kill_rng_(seed ^ 0x6B696C6CULL),
        datagram_rng_(seed ^ 0x75646C6FULL) {}

  /// Re-seed (restarts the failure schedule; call before a run).
  void set_seed(std::uint64_t seed) {
    rng_ = sim::Rng(seed);
    kill_rng_ = sim::Rng(seed ^ 0x6B696C6CULL);
    datagram_rng_ = sim::Rng(seed ^ 0x75646C6FULL);
    for (KillEntry& k : kills_) k.fired = false;
  }

  /// Faults applied to every link without a per-link override.
  void set_default_faults(LinkFaults f) { default_ = f; }

  /// Per-directed-link override.
  void set_link_faults(cluster::HostId src, cluster::HostId dst, LinkFaults f) {
    overrides_.push_back(LinkOverride{src, dst, f});
  }

  /// One-way partition: nothing from src reaches dst in [start, end).
  void add_outage(FaultWindow w) { windows_.push_back(w); }

  /// Transient link flap: both directions between a and b are down for
  /// `length` starting at `start`.
  void add_flap(cluster::HostId a, cluster::HostId b, sim::Time start, sim::Dur length) {
    windows_.push_back(FaultWindow{a, b, start, start + length});
    windows_.push_back(FaultWindow{b, a, start, start + length});
  }

  /// Delay a reliable path pays per dropped chunk (a TCP RTO / IB RC
  /// retransmit timeout).
  void set_retransmit_delay(sim::Dur d) { rto_ = d; }
  sim::Dur retransmit_delay() const { return rto_; }

  /// Schedule a deterministic connection kill: the first in-flight RPC
  /// attempt on src -> dst at or after `at` has its connection forcibly
  /// torn down (socket closed / QP to error) after the request is on the
  /// wire — distinct from packet drops, which the transport retransmits
  /// through. src/dst of -1 match any host.
  void add_connection_kill(cluster::HostId src, cluster::HostId dst, sim::Time at) {
    kills_.push_back(KillEntry{src, dst, at, false});
  }

  /// Seeded probabilistic kills: each in-flight attempt on any link dies
  /// with probability `p`. Draws come from a dedicated RNG stream, so
  /// enabling kills never perturbs the drop/spike schedule of the same
  /// seed (and p == 0 draws nothing at all).
  void set_kill_prob(double p) { kill_prob_ = p; }

  /// True when any kill source is configured; transports skip the plan
  /// (zero RNG draws) when false, keeping kill-free runs bit-identical.
  bool kills_enabled() const { return kill_prob_ > 0.0 || !kills_.empty(); }

  /// Consume one kill for an attempt on src -> dst at `now`; true means
  /// the calling transport must tear the connection down.
  bool take_kill(cluster::HostId src, cluster::HostId dst, sim::Time now);

  /// Probabilistic UD datagram loss: each unreliable datagram on any link
  /// is dropped in flight with probability `p`. Draws come from a third
  /// dedicated RNG stream — configuring datagram loss never perturbs the
  /// drop/spike or kill schedules of the same seed, and a plan without UD
  /// loss draws nothing here even when UD traffic flows.
  void set_datagram_loss(double p) { datagram_loss_prob_ = p; }

  /// True when UD datagram loss is configured; the UD send path skips the
  /// plan (zero RNG draws) when false.
  bool datagram_loss_enabled() const { return datagram_loss_prob_ > 0.0; }

  /// Decide the fate of one UD datagram on src -> dst at `now`. Outage
  /// windows (deterministic, no RNG) also swallow datagrams; probabilistic
  /// loss draws only from the dedicated datagram stream.
  bool take_datagram_loss(cluster::HostId src, cluster::HostId dst, sim::Time now);

  /// True when any fault source is configured. The fabric skips the plan
  /// entirely (no RNG draws) when this is false, keeping disabled-plan
  /// runs bit-identical to runs with no plan at all.
  bool enabled() const {
    return default_.any() || !overrides_.empty() || !windows_.empty();
  }

  /// Decide the fate of one delivery on src -> dst at `now`.
  /// `reliable` selects retransmit-delay semantics over true loss.
  FaultDecision decide(cluster::HostId src, cluster::HostId dst, sim::Time now,
                       bool reliable);

  const FaultCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = FaultCounters{}; }

 private:
  struct LinkOverride {
    cluster::HostId src;
    cluster::HostId dst;
    LinkFaults faults;
  };
  struct KillEntry {
    cluster::HostId src;
    cluster::HostId dst;
    sim::Time at;
    bool fired;
  };

  const LinkFaults& faults_for(cluster::HostId src, cluster::HostId dst) const;
  /// Earliest time >= now at which no window covers src -> dst (follows
  /// chained/overlapping windows); returns now when the link is up.
  sim::Time window_clear_time(cluster::HostId src, cluster::HostId dst,
                              sim::Time now) const;

  sim::Rng rng_;
  // Kill draws ride their own stream (seed ^ constant) so a plan with and
  // without kills produces the same drop/spike schedule.
  sim::Rng kill_rng_;
  // UD datagram-loss draws ride a third stream for the same reason.
  sim::Rng datagram_rng_;
  LinkFaults default_{};
  std::vector<LinkOverride> overrides_;
  std::vector<FaultWindow> windows_;
  std::vector<KillEntry> kills_;
  double kill_prob_ = 0.0;
  double datagram_loss_prob_ = 0.0;
  sim::Dur rto_ = sim::millis(200);
  FaultCounters counters_;
};

}  // namespace rpcoib::net
