#include "net/socket.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace rpcoib::net {

Socket::Socket(cluster::Host& local, cluster::HostId remote, Transport t, Fabric& fab,
               std::shared_ptr<detail::Pipe> pipe, bool is_client)
    : local_(local),
      remote_(remote),
      transport_(t),
      fab_(fab),
      pipe_(std::move(pipe)),
      is_client_(is_client) {}

Socket::~Socket() { close(); }

void Socket::close() {
  if (closed_) return;
  closed_ = true;
  // FIN is ordered behind previously written data: it shares the flow
  // clock, so the peer drains all in-flight chunks first.
  std::shared_ptr<detail::Pipe> pipe = pipe_;
  sim::Channel<Bytes>* dest = &tx();
  sim::Time& clock = is_client_ ? pipe_->clock_to_server : pipe_->clock_to_client;
  fab_.deliver_flow(local_.id(), remote_, transport_, 1, clock,
                    [pipe, dest] { dest->close(); });
}

sim::Co<void> Socket::write(ByteSpan data) {
  if (closed_) throw SocketError("write on closed socket");
  const NetParams& p = fab_.params(transport_);
  // Sender-side kernel stack + user->kernel copy occupy a CPU core.
  co_await local_.compute(p.per_msg_send_cpu + p.kernel_copy(data.size()));
  // Large writes are segmented so the receiver drains the stream at wire
  // speed (TCP delivers a 2 MB message as many segments, and the paper's
  // Fig. 1 "receive time" includes that drain).
  static constexpr std::size_t kSegmentBytes = 16 * 1024;
  std::shared_ptr<detail::Pipe> pipe = pipe_;
  sim::Channel<Bytes>* dest = &tx();
  for (std::size_t off = 0; off < data.size(); off += kSegmentBytes) {
    const std::size_t n = std::min(kSegmentBytes, data.size() - off);
    Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(off),
                data.begin() + static_cast<std::ptrdiff_t>(off + n));
    // The fabric owns wire timing; the peer's rx channel gets each chunk
    // at its arrival time (flow-ordered). Capture the pipe (not `this`)
    // so a destroyed sender cannot dangle. NOTE: the size must be read
    // before the move — argument evaluation order is unspecified and the
    // lambda capture would otherwise empty the vector first.
    const std::size_t wire_bytes = chunk.size();
    sim::Time& clock = is_client_ ? pipe_->clock_to_server : pipe_->clock_to_client;
    fab_.deliver_flow(local_.id(), remote_, transport_, wire_bytes, clock,
                      [pipe, dest, chunk = std::move(chunk)]() mutable {
                        dest->push(std::move(chunk));
                      });
  }
  co_return;
}

sim::Co<void> Socket::fill() {
  if (pending_off_ < pending_.size()) co_return;
  Bytes chunk = co_await rx().recv();  // throws ChannelClosed on EOF
  const NetParams& p = fab_.params(transport_);
  // Receiver-side stack CPU + kernel->user copy, charged when the
  // application actually reads (mirrors a blocking read returning) — or
  // deferred to a serialized Reader's critical section when requested.
  const sim::Dur rx_cost = p.per_msg_recv_cpu + p.kernel_copy(chunk.size());
  if (defer_rx_) {
    rx_charge_ += rx_cost;
  } else {
    co_await local_.compute(rx_cost);
  }
  pending_ = std::move(chunk);
  pending_off_ = 0;
}

sim::Co<void> Socket::read_full(MutByteSpan out) {
  std::size_t got = 0;
  try {
    while (got < out.size()) {
      co_await fill();
      const std::size_t take = std::min(out.size() - got, pending_.size() - pending_off_);
      std::memcpy(out.data() + got, pending_.data() + pending_off_, take);
      pending_off_ += take;
      got += take;
    }
  } catch (const sim::ChannelClosed&) {
    throw SocketError("connection closed by peer");
  }
}

sim::Co<Bytes> Socket::read_chunk() {
  try {
    co_await fill();
  } catch (const sim::ChannelClosed&) {
    throw SocketError("connection closed by peer");
  }
  Bytes out(pending_.begin() + static_cast<std::ptrdiff_t>(pending_off_), pending_.end());
  pending_.clear();
  pending_off_ = 0;
  co_return out;
}

SocketTable::SocketTable(Fabric& fab, std::vector<cluster::Host*> hosts)
    : fab_(fab), hosts_(std::move(hosts)) {}

Listener& SocketTable::listen(Address addr) {
  reap_retired();
  auto [it, inserted] =
      listeners_.emplace(addr, std::make_unique<Listener>(fab_.sched(), addr));
  if (!inserted) throw SocketError("address already in use");
  return *it->second;
}

void SocketTable::unlisten(Address addr) {
  reap_retired();
  auto it = listeners_.find(addr);
  if (it != listeners_.end()) {
    it->second->shutdown();
    // shutdown() posts the suspended acceptor to the scheduler; it still
    // reads the accept channel when it resumes (to observe the close), so
    // the Listener must outlive that resumption. Park it instead of
    // destroying it here.
    if (!it->second->idle()) retired_.push_back(std::move(it->second));
    listeners_.erase(it);
  }
}

void SocketTable::reap_retired() {
  std::erase_if(retired_, [](const std::unique_ptr<Listener>& l) { return l->idle(); });
}

sim::Co<SocketPtr> SocketTable::connect(cluster::Host& src, Address dst, Transport t) {
  static constexpr std::size_t kHandshakeBytes = 64;
  // SYN travels to the server...
  co_await fab_.transfer(src.id(), dst.host, t, kHandshakeBytes);
  auto it = listeners_.find(dst);
  if (it == listeners_.end()) throw SocketError("connection refused");

  auto pipe = std::make_shared<detail::Pipe>(fab_.sched());
  cluster::Host& server_host = *hosts_.at(static_cast<std::size_t>(dst.host));
  auto server_end =
      std::make_shared<Socket>(server_host, src.id(), t, fab_, pipe, /*is_client=*/false);
  auto client_end =
      std::make_shared<Socket>(src, dst.host, t, fab_, pipe, /*is_client=*/true);
  it->second->accepted_.push(std::move(server_end));

  // ...and the SYN-ACK back before connect() returns.
  co_await fab_.transfer(dst.host, src.id(), t, kHandshakeBytes);
  co_return client_end;
}

}  // namespace rpcoib::net
