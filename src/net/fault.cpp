#include "net/fault.hpp"

namespace rpcoib::net {

const LinkFaults& FaultPlan::faults_for(cluster::HostId src, cluster::HostId dst) const {
  for (const LinkOverride& o : overrides_) {
    if ((o.src < 0 || o.src == src) && (o.dst < 0 || o.dst == dst)) return o.faults;
  }
  return default_;
}

sim::Time FaultPlan::window_clear_time(cluster::HostId src, cluster::HostId dst,
                                       sim::Time now) const {
  // Windows may chain or overlap; iterate to the fixpoint. Each pass either
  // terminates or advances past at least one window's end, so this is
  // bounded by the window count.
  sim::Time t = now;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultWindow& w : windows_) {
      if (w.matches(src, dst, t)) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

FaultDecision FaultPlan::decide(cluster::HostId src, cluster::HostId dst, sim::Time now,
                                bool reliable) {
  FaultDecision d;
  if (!enabled() || src == dst) return d;

  // Outage windows first: they dominate per-chunk probabilities.
  const sim::Time clear = window_clear_time(src, dst, now);
  if (clear > now) {
    ++counters_.outage_hits;
    if (!reliable) {
      ++counters_.true_losses;
      d.lost = true;
      return d;
    }
    // A reliable stream stalls through the outage and resumes one
    // retransmit timeout after the link comes back.
    d.extra = (clear - now) + rto_;
  }

  const LinkFaults& f = faults_for(src, dst);
  if (f.drop_prob > 0.0) {
    // Each retransmission is itself subject to loss; cap the chain so a
    // drop_prob of 1.0 cannot hang the simulation.
    static constexpr int kMaxRetransmits = 8;
    for (int i = 0; i < kMaxRetransmits && rng_.next_double() < f.drop_prob; ++i) {
      ++counters_.drops;
      if (!reliable) {
        ++counters_.true_losses;
        d.lost = true;
        return d;
      }
      d.extra += rto_;
    }
  }
  if (f.spike_prob > 0.0 && rng_.next_double() < f.spike_prob) {
    ++counters_.spikes;
    d.extra += f.spike_extra;
  }
  return d;
}

bool FaultPlan::take_kill(cluster::HostId src, cluster::HostId dst, sim::Time now) {
  if (!kills_enabled() || src == dst) return false;
  for (KillEntry& k : kills_) {
    if (k.fired || now < k.at) continue;
    if ((k.src < 0 || k.src == src) && (k.dst < 0 || k.dst == dst)) {
      k.fired = true;
      ++counters_.kills;
      return true;
    }
  }
  if (kill_prob_ > 0.0 && kill_rng_.next_double() < kill_prob_) {
    ++counters_.kills;
    return true;
  }
  return false;
}

bool FaultPlan::take_datagram_loss(cluster::HostId src, cluster::HostId dst, sim::Time now) {
  if (src == dst) return false;
  // Outage windows are deterministic (no RNG draw) and swallow datagrams
  // outright — there is no retransmit path to stall.
  if (!windows_.empty() && window_clear_time(src, dst, now) > now) {
    ++counters_.outage_hits;
    ++counters_.datagram_losses;
    return true;
  }
  if (!datagram_loss_enabled()) return false;
  if (datagram_rng_.next_double() < datagram_loss_prob_) {
    ++counters_.datagram_losses;
    return true;
  }
  return false;
}

}  // namespace rpcoib::net
