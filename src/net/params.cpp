#include "net/params.hpp"

namespace rpcoib::net {

NetParams one_gige_params() {
  return NetParams{
      .bw_gBps = 0.117,  // ~940 Mbit/s effective
      .one_way_latency = sim::from_us(23.0),
      .per_msg_send_cpu = sim::from_us(2.5),
      .per_msg_recv_cpu = sim::from_us(2.5),
      .kernel_copy_gBps = 2.5,
  };
}

NetParams ten_gige_params() {
  return NetParams{
      .bw_gBps = 1.15,  // ~9.2 Gbit/s effective (NE020 iWARP NIC in socket mode)
      .one_way_latency = sim::from_us(6.0),
      .per_msg_send_cpu = sim::from_us(2.0),
      .per_msg_recv_cpu = sim::from_us(3.4),
      .kernel_copy_gBps = 2.5,
  };
}

NetParams ipoib_params() {
  // IPoIB on QDR: high signaling rate but the TCP/IP emulation layer caps
  // effective bandwidth (~13 Gbit/s) and adds per-packet CPU.
  return NetParams{
      .bw_gBps = 1.6,
      .one_way_latency = sim::from_us(8.0),
      .per_msg_send_cpu = sim::from_us(2.5),
      .per_msg_recv_cpu = sim::from_us(2.1),
      .kernel_copy_gBps = 2.5,
  };
}

NetParams ib_verbs_params() {
  // Native QDR verbs: kernel bypass, ~1.3us one-way small-message latency,
  // ~3.2 GB/s large-message bandwidth; "CPU" costs are doorbell ring and
  // completion poll only.
  return NetParams{
      .bw_gBps = 3.2,
      .one_way_latency = sim::from_us(1.3),
      .per_msg_send_cpu = sim::from_us(0.3),
      .per_msg_recv_cpu = sim::from_us(0.5),
      .kernel_copy_gBps = 0.0,
  };
}

NetParams params_for(Transport t) {
  switch (t) {
    case Transport::kOneGigE: return one_gige_params();
    case Transport::kTenGigE: return ten_gige_params();
    case Transport::kIPoIB: return ipoib_params();
    case Transport::kIBVerbs: return ib_verbs_params();
  }
  return one_gige_params();
}

}  // namespace rpcoib::net
