// Byte-buffer aliases shared by the network and RPC layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rpcoib::net {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;
using MutByteSpan = std::span<Byte>;

}  // namespace rpcoib::net
