#include "net/testbed.hpp"

#include "trace/trace.hpp"

namespace rpcoib::net {

namespace {

std::vector<cluster::Host*> raw_hosts(
    const std::vector<std::unique_ptr<cluster::Host>>& hosts) {
  std::vector<cluster::Host*> out;
  out.reserve(hosts.size());
  for (const auto& h : hosts) out.push_back(h.get());
  return out;
}

std::vector<std::unique_ptr<cluster::Host>> make_hosts(sim::Scheduler& sched,
                                                       const TestbedConfig& cfg) {
  sim::Rng master(cfg.seed);
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  hosts.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int i = 0; i < cfg.nodes; ++i) {
    hosts.push_back(std::make_unique<cluster::Host>(
        sched, i, "node" + std::to_string(i), cfg.cores_per_node, cfg.cost, master.fork()));
  }
  return hosts;
}

}  // namespace

Testbed::Testbed(sim::Scheduler& sched, const TestbedConfig& cfg)
    : sched_(sched),
      cfg_(cfg),
      hosts_(make_hosts(sched, cfg)),
      fabric_(sched, hosts_.size()),
      sockets_(fabric_, raw_hosts(hosts_)) {
  if (cfg_.fault) fabric_.set_fault_plan(cfg_.fault.get());
}

void Testbed::set_tracer(trace::TraceCollector* t) {
  if (t != nullptr) {
    t->bind(&sched_);
    for (const auto& h : hosts_) t->set_host_name(h->id(), h->name());
  }
  for (const auto& h : hosts_) h->set_tracer(t);
}

TestbedConfig Testbed::cluster_a(int nodes) {
  TestbedConfig cfg;
  cfg.nodes = nodes;
  cfg.cores_per_node = 8;
  cfg.has_ten_gige = false;
  return cfg;
}

TestbedConfig Testbed::cluster_b() {
  TestbedConfig cfg;
  cfg.nodes = 9;
  cfg.cores_per_node = 8;
  cfg.has_ten_gige = true;
  return cfg;
}

}  // namespace rpcoib::net
