#include "verbs/verbs.hpp"

#include <cstring>
#include <utility>

namespace rpcoib::verbs {

// ---------------------------------------------------------------------------
// ProtectionDomain

ProtectionDomain::ProtectionDomain(VerbsStack& stack, cluster::Host& host)
    : stack_(stack), host_(host) {}

ProtectionDomain::~ProtectionDomain() {
  for (std::uint32_t k : owned_rkeys_) stack_.remove_region(k);
}

MemoryRegion ProtectionDomain::register_mr_untimed(net::MutByteSpan buf) {
  MemoryRegion mr;
  mr.addr = buf.data();
  mr.length = buf.size();
  mr.owner = host_.id();
  const std::uint32_t key = stack_.add_region(mr);
  mr.lkey = mr.rkey = key;
  owned_rkeys_.push_back(key);
  return mr;
}

sim::Co<MemoryRegion> ProtectionDomain::register_mr(net::MutByteSpan buf) {
  co_await host_.compute(stack_.registration_cost(buf.size()));
  co_return register_mr_untimed(buf);
}

void ProtectionDomain::deregister(const MemoryRegion& mr) {
  stack_.remove_region(mr.rkey);
  std::erase(owned_rkeys_, mr.rkey);
}

// ---------------------------------------------------------------------------
// VerbsStack

std::uint32_t VerbsStack::add_region(MemoryRegion mr) {
  const std::uint32_t key = next_key_++;
  mr.lkey = mr.rkey = key;
  regions_.emplace(key, mr);
  return key;
}

void VerbsStack::remove_region(std::uint32_t rkey) { regions_.erase(rkey); }

net::MutByteSpan VerbsStack::resolve(std::uint32_t rkey, std::uint64_t offset,
                                     std::size_t len) const {
  auto it = regions_.find(rkey);
  if (it == regions_.end()) throw VerbsError("unknown rkey");
  const MemoryRegion& mr = it->second;
  if (offset + len > mr.length) throw VerbsError("remote access out of bounds");
  return net::MutByteSpan(mr.addr + offset, len);
}

sim::Dur VerbsStack::registration_cost(std::size_t bytes) const {
  // ~35us base (ibv_reg_mr syscall + HCA doorbell) + ~0.25us per 4K page
  // of pinning. Large pools take milliseconds to register — which is why
  // RPCoIB does it once at library load.
  const double pages = static_cast<double>(bytes) / 4096.0;
  return sim::from_us(35.0 + 0.25 * pages);
}

// ---------------------------------------------------------------------------
// SharedReceiveQueue

SharedReceiveQueue::~SharedReceiveQueue() {
  // Detach any still-parked QPs so their destructors don't reach back into
  // a dead SRQ.
  for (QueuePair* qp : waiters_) {
    qp->srq_waiting_ = false;
    qp->srq_ = nullptr;
  }
}

void SharedReceiveQueue::post_recv(std::uint64_t wr_id, net::MutByteSpan buf) {
  ring_.push_back(PostedRecv{wr_id, buf});
  // Drain parked QPs in arrival order. A QP whose inbound outruns the ring
  // re-queues at the tail (round-robin across starved connections), which
  // keeps the schedule deterministic and starvation-free.
  while (!ring_.empty() && !waiters_.empty()) {
    QueuePair* qp = waiters_.front();
    waiters_.pop_front();
    qp->srq_waiting_ = false;
    qp->match_inbound();
  }
}

std::vector<std::uint64_t> SharedReceiveQueue::drain_posted_recvs() {
  std::vector<std::uint64_t> ids;
  ids.reserve(ring_.size());
  for (const PostedRecv& pr : ring_) ids.push_back(pr.wr_id);
  ring_.clear();
  armed_watermark_ = 0;
  return ids;
}

void SharedReceiveQueue::arm_limit(std::size_t watermark) {
  armed_watermark_ = watermark;
  if (armed_watermark_ != 0 && ring_.size() < armed_watermark_) {
    // Already below the watermark: fire immediately (refill is due now).
    armed_watermark_ = 0;
    limit_events_.push(ring_.size());
  }
}

sim::Co<void> SharedReceiveQueue::wait_limit() {
  (void)co_await limit_events_.recv();
  co_return;
}

bool SharedReceiveQueue::try_pop(PostedRecv& out) {
  if (ring_.empty()) return false;
  out = ring_.front();
  ring_.pop_front();
  if (armed_watermark_ != 0 && ring_.size() < armed_watermark_) {
    armed_watermark_ = 0;  // one-shot until re-armed
    limit_events_.push(ring_.size());
  }
  return true;
}

void SharedReceiveQueue::add_waiter(QueuePair* qp) {
  if (qp->srq_waiting_) return;
  qp->srq_waiting_ = true;
  waiters_.push_back(qp);
}

void SharedReceiveQueue::remove_waiter(QueuePair* qp) {
  if (!qp->srq_waiting_) return;
  qp->srq_waiting_ = false;
  std::erase(waiters_, qp);
}

void SharedReceiveQueue::note_stall() {
  ++rnr_stalls_;
  if (stall_mirror_ != nullptr) ++*stall_mirror_;
}

// ---------------------------------------------------------------------------
// QueuePair

QueuePair::QueuePair(VerbsStack& stack, cluster::Host& host, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq)
    : stack_(stack), host_(host), send_cq_(send_cq), recv_cq_(recv_cq) {}

QueuePair::~QueuePair() {
  if (srq_ != nullptr) srq_->remove_waiter(this);
}

void QueuePair::connect_to(const QueuePairPtr& peer) {
  peer_ = peer;
  remote_host_ = peer->host_.id();
}

void QueuePair::disconnect() {
  peer_.reset();
  if (srq_ != nullptr) srq_->remove_waiter(this);
}

std::vector<std::uint64_t> QueuePair::drain_posted_recvs() {
  std::vector<std::uint64_t> ids;
  ids.reserve(posted_recvs_.size());
  for (const PostedRecv& pr : posted_recvs_) ids.push_back(pr.wr_id);
  posted_recvs_.clear();
  return ids;
}

void QueuePair::post_recv(std::uint64_t wr_id, net::MutByteSpan buf) {
  if (srq_ != nullptr) throw VerbsError("QP attached to SRQ has no receive queue");
  posted_recvs_.push_back(PostedRecv{wr_id, buf});
  match_inbound();
}

void QueuePair::set_srq(SharedReceiveQueue* srq) {
  if (srq == nullptr && srq_ != nullptr) srq_->remove_waiter(this);
  srq_ = srq;
}

void QueuePair::match_inbound() {
  while (!inbound_.empty()) {
    PostedRecv pr;
    if (srq_ != nullptr) {
      if (!srq_->try_pop(pr)) {
        // RNR: the shared ring is dry. Park the remaining arrivals and
        // queue for the next buffer posted to the SRQ.
        srq_->add_waiter(this);
        return;
      }
    } else {
      if (posted_recvs_.empty()) return;
      pr = posted_recvs_.front();
      posted_recvs_.pop_front();
    }
    InboundMsg msg = std::move(inbound_.front());
    inbound_.pop_front();
    if (msg.data.size() > pr.buf.size()) throw VerbsError("recv buffer too small for SEND");
    std::memcpy(pr.buf.data(), msg.data.data(), msg.data.size());
    recv_cq_.push(WorkCompletion{pr.wr_id, Opcode::kRecv,
                                 static_cast<std::uint32_t>(msg.data.size()), 0, context_});
  }
}

void QueuePair::on_send_arrival(net::Bytes data) {
  inbound_.push_back(InboundMsg{std::move(data)});
  match_inbound();
  // Count each arrival this QP could not deliver immediately for lack of a
  // shared buffer — the simulator's stand-in for an RNR NAK + sender retry.
  if (srq_ != nullptr && !inbound_.empty()) srq_->note_stall();
}

sim::Co<void> QueuePair::post_send(std::uint64_t wr_id, net::ByteSpan buf) {
  QueuePairPtr peer = peer_.lock();
  if (!peer) throw VerbsError("QP not connected");
  net::Fabric& fab = stack_.fabric();
  const net::NetParams& p = fab.params(net::Transport::kIBVerbs);

  // Doorbell: the posting thread writes the WQE and rings the HCA.
  co_await host_.compute(p.per_msg_send_cpu);

  net::Bytes payload(buf.begin(), buf.end());
  CompletionQueue* scq = &send_cq_;
  // Size read before the move: argument evaluation order is unspecified.
  const std::size_t wire_bytes = payload.size();
  const sim::Time arrival = fab.deliver_flow(
      host_.id(), peer->host_.id(), net::Transport::kIBVerbs, wire_bytes, send_clock_,
      [peer, payload = std::move(payload)]() mutable { peer->on_send_arrival(std::move(payload)); });
  // RC send completion after the ACK returns.
  fab.sched().call_at(arrival + p.one_way_latency, [scq, wr_id, n = buf.size()] {
    scq->push(WorkCompletion{wr_id, Opcode::kSend, static_cast<std::uint32_t>(n), 0});
  });
  co_return;
}

sim::Co<void> QueuePair::post_rdma_write(std::uint64_t wr_id, net::ByteSpan local,
                                         RemoteBuffer dst, std::optional<std::uint32_t> imm) {
  QueuePairPtr peer = peer_.lock();
  if (!peer) throw VerbsError("QP not connected");
  if (local.size() > dst.length) throw VerbsError("RDMA write larger than remote buffer");
  net::Fabric& fab = stack_.fabric();
  const net::NetParams& p = fab.params(net::Transport::kIBVerbs);

  co_await host_.compute(p.per_msg_send_cpu);

  net::Bytes payload(local.begin(), local.end());
  VerbsStack* stack = &stack_;
  CompletionQueue* scq = &send_cq_;
  // Size read before the move: argument evaluation order is unspecified.
  const std::size_t wire_bytes = payload.size();
  const sim::Time arrival = fab.deliver_flow(
      host_.id(), peer->host_.id(), net::Transport::kIBVerbs, wire_bytes, send_clock_,
      [stack, peer, dst, imm, payload = std::move(payload)]() mutable {
        net::MutByteSpan target = stack->resolve(dst.rkey, dst.offset, payload.size());
        std::memcpy(target.data(), payload.data(), payload.size());
        if (imm) {
          // WRITE_WITH_IMM surfaces at the peer as a receive-type completion.
          peer->recv_cq_.push(WorkCompletion{0, Opcode::kRecvRdmaWithImm,
                                             static_cast<std::uint32_t>(payload.size()), *imm});
        }
      });
  fab.sched().call_at(arrival + p.one_way_latency, [scq, wr_id, n = local.size()] {
    scq->push(WorkCompletion{wr_id, Opcode::kRdmaWrite, static_cast<std::uint32_t>(n), 0});
  });
  co_return;
}

sim::Co<void> QueuePair::post_rdma_read(std::uint64_t wr_id, net::MutByteSpan local,
                                        RemoteBuffer src) {
  QueuePairPtr peer = peer_.lock();
  if (!peer) throw VerbsError("QP not connected");
  if (src.length < local.size()) throw VerbsError("RDMA read larger than remote buffer");
  net::Fabric& fab = stack_.fabric();
  const net::NetParams& p = fab.params(net::Transport::kIBVerbs);

  co_await host_.compute(p.per_msg_send_cpu);

  // Request (small) to the responder...
  const sim::Time req_arrival =
      fab.reserve_egress(host_.id(), net::Transport::kIBVerbs, 32) + p.one_way_latency;
  // ...then data flows back, paying wire time on the responder's egress.
  VerbsStack* stack = &stack_;
  CompletionQueue* scq = &send_cq_;
  cluster::HostId responder = peer->host_.id();
  cluster::HostId requester = host_.id();
  fab.sched().call_at(req_arrival, [&fab, stack, scq, wr_id, local, src, responder,
                                    requester, p] {
    // The rkey resolves when the request *arrives* at the responder. A
    // region deregistered while the request was in flight is a remote
    // access error: the requester gets a failed completion (status != 0)
    // with an untouched buffer, never a crash or a read of freed memory.
    net::MutByteSpan source;
    try {
      source = stack->resolve(src.rkey, src.offset, local.size());
    } catch (const VerbsError&) {
      WorkCompletion wc{wr_id, Opcode::kRdmaRead, 0, 0};
      wc.status = 1;
      scq->push(wc);
      return;
    }
    fab.deliver(responder, requester, net::Transport::kIBVerbs, local.size(),
                [scq, wr_id, local, source] {
                  std::memcpy(local.data(), source.data(), local.size());
                  scq->push(WorkCompletion{wr_id, Opcode::kRdmaRead,
                                           static_cast<std::uint32_t>(local.size()), 0});
                });
    (void)p;
  });
  co_return;
}

// ---------------------------------------------------------------------------
// UdEndpoint

UdEndpoint::UdEndpoint(VerbsStack& stack, cluster::Host& host, CompletionQueue& send_cq,
                       CompletionQueue& recv_cq)
    : stack_(stack), host_(host), send_cq_(send_cq), recv_cq_(recv_cq) {
  qpn_ = stack_.ud_register(this);
}

UdEndpoint::~UdEndpoint() { stack_.ud_unregister(qpn_); }

void UdEndpoint::post_recv(std::uint64_t wr_id, net::MutByteSpan buf) {
  ring_.push_back(PostedRecv{wr_id, buf});
}

std::vector<std::uint64_t> UdEndpoint::drain_posted_recvs() {
  std::vector<std::uint64_t> ids;
  ids.reserve(ring_.size());
  for (const PostedRecv& pr : ring_) ids.push_back(pr.wr_id);
  ring_.clear();
  return ids;
}

sim::Co<void> UdEndpoint::post_send(std::uint64_t wr_id, const AddressHandle& ah,
                                    net::ByteSpan buf) {
  if (buf.size() > kMtu) throw VerbsError("UD send exceeds path MTU");
  net::Fabric& fab = stack_.fabric();
  const net::NetParams& p = fab.params(net::Transport::kIBVerbs);

  // Doorbell: same WQE cost as an RC send.
  co_await host_.compute(p.per_msg_send_cpu);

  net::Bytes payload(buf.begin(), buf.end());
  VerbsStack* stack = &stack_;
  const cluster::HostId src_host = host_.id();
  const std::uint32_t src_qpn = qpn_;
  const std::uint32_t dst_qpn = ah.qpn;
  // Destination resolution happens at arrival: a datagram to an endpoint
  // that no longer exists simply vanishes.
  const sim::Time arrival = fab.deliver_datagram(
      src_host, ah.host, net::Transport::kIBVerbs, kGrhBytes + payload.size(),
      [stack, src_host, src_qpn, dst_qpn, payload = std::move(payload)]() mutable {
        UdEndpoint* ep = stack->ud_lookup(dst_qpn);
        if (ep != nullptr) ep->on_datagram_arrival(src_host, src_qpn, std::move(payload));
      });
  // UD send completion once the datagram is on the wire — no ACK, so the
  // completion is identical whether or not the datagram ever arrives.
  CompletionQueue* scq = &send_cq_;
  fab.sched().call_at(arrival - p.one_way_latency, [scq, wr_id, n = buf.size()] {
    scq->push(WorkCompletion{wr_id, Opcode::kSend, static_cast<std::uint32_t>(n), 0});
  });
  co_return;
}

void UdEndpoint::on_datagram_arrival(cluster::HostId src_host, std::uint32_t src_qpn,
                                     net::Bytes data) {
  // No posted receive (ring overrun) or an undersized head buffer: the
  // datagram is silently dropped. UD has no RNR backpressure — recovery is
  // the caller's problem (RPCoIB rides the session/retry path).
  if (ring_.empty()) {
    ++rx_dropped_;
    return;
  }
  PostedRecv pr = ring_.front();
  ring_.pop_front();
  if (kGrhBytes + data.size() > pr.buf.size()) {
    ++rx_dropped_;
    return;
  }
  // GRH-style source addressing: the first kGrhBytes of the receive buffer
  // name the sender, so the receiver can reply with zero per-sender state.
  std::memset(pr.buf.data(), 0, kGrhBytes);
  const std::uint32_t sh = static_cast<std::uint32_t>(src_host);
  std::memcpy(pr.buf.data(), &sh, sizeof(sh));
  std::memcpy(pr.buf.data() + 4, &src_qpn, sizeof(src_qpn));
  std::memcpy(pr.buf.data() + kGrhBytes, data.data(), data.size());
  recv_cq_.push(WorkCompletion{pr.wr_id, Opcode::kRecv,
                               static_cast<std::uint32_t>(kGrhBytes + data.size()), 0,
                               context_});
}

// ---------------------------------------------------------------------------
// ConnectionManager

namespace {
// QP bootstrap messages are tiny fixed-size blobs (LID/QPN/PSN in real IB).
constexpr std::size_t kEndpointInfoBytes = 72;
}  // namespace

sim::Co<QueuePairPtr> ConnectionManager::connect(cluster::Host& src, net::Address addr,
                                                 CompletionQueue& send_cq,
                                                 CompletionQueue& recv_cq,
                                                 net::Transport mgmt_transport,
                                                 std::uint64_t local_eager_threshold,
                                                 std::uint64_t* peer_eager_threshold,
                                                 std::uint64_t session_id) {
  net::SocketPtr sock = co_await sockets_.connect(src, addr, mgmt_transport);
  // Injected fault hook: the management socket worked, but the verbs-level
  // exchange (SM path resolution, GID lookup) fails. Distinct from a dead
  // server — that surfaces as a SocketError above.
  if (stack_.take_bootstrap_failure()) {
    sock->close();
    throw VerbsError("connection manager: bootstrap exchange failed (injected)");
  }
  auto qp = std::make_shared<QueuePair>(stack_, src, send_cq, recv_cq);

  // Exchange endpoint info: send ours, wait for the peer's. The server
  // stashes the half-open QP in the stack's rendezvous table keyed by a
  // cookie carried in the payload; since both ends live in one process we
  // pass the pointer through the socket payload's identity instead — the
  // accept() side pairs on the same socket.
  net::Bytes info(kEndpointInfoBytes, 0);
  const std::uintptr_t cookie = reinterpret_cast<std::uintptr_t>(qp.get());
  std::memcpy(info.data(), &cookie, sizeof(cookie));
  // Bytes 8..15: our eager threshold (0 = not advertised). Bytes 16..23:
  // our durable session id (0 = sessionless). The blob was all-zero in
  // both ranges before, so unadvertised stays wire-identical.
  std::memcpy(info.data() + 8, &local_eager_threshold, sizeof(local_eager_threshold));
  std::memcpy(info.data() + 16, &session_id, sizeof(session_id));
  stack_.cm_register(cookie, qp);
  co_await sock->write(info);

  net::Bytes reply(kEndpointInfoBytes);
  co_await sock->read_full(reply);
  stack_.cm_erase(cookie);
  if (!qp->connected()) throw VerbsError("connection manager: pairing failed");
  if (peer_eager_threshold != nullptr) {
    std::memcpy(peer_eager_threshold, reply.data() + 8, sizeof(*peer_eager_threshold));
  }
  sock->close();
  co_return qp;
}

sim::Co<ConnectionManager::BootstrapInfo> ConnectionManager::read_bootstrap(
    net::SocketPtr bootstrap) {
  net::Bytes info(kEndpointInfoBytes);
  co_await bootstrap->read_full(info);
  BootstrapInfo out;
  std::memcpy(&out.cookie, info.data(), sizeof(out.cookie));
  std::memcpy(&out.peer_eager_threshold, info.data() + 8,
              sizeof(out.peer_eager_threshold));
  std::memcpy(&out.session_id, info.data() + 16, sizeof(out.session_id));
  co_return out;
}

sim::Co<QueuePairPtr> ConnectionManager::accept(net::SocketPtr bootstrap,
                                                const BootstrapInfo& info,
                                                CompletionQueue& send_cq,
                                                CompletionQueue& recv_cq,
                                                std::uint64_t local_eager_threshold) {
  QueuePairPtr client_qp = stack_.cm_lookup(info.cookie);
  if (!client_qp) throw VerbsError("connection manager: unknown endpoint cookie");

  auto qp = std::make_shared<QueuePair>(stack_, bootstrap->local(), send_cq, recv_cq);
  qp->connect_to(client_qp);
  client_qp->connect_to(qp);

  net::Bytes reply(kEndpointInfoBytes, 0);
  std::memcpy(reply.data() + 8, &local_eager_threshold, sizeof(local_eager_threshold));
  co_await bootstrap->write(reply);
  co_return qp;
}

sim::Co<QueuePairPtr> ConnectionManager::accept(net::SocketPtr bootstrap,
                                                CompletionQueue& send_cq,
                                                CompletionQueue& recv_cq,
                                                std::uint64_t local_eager_threshold,
                                                std::uint64_t* peer_eager_threshold) {
  const BootstrapInfo info = co_await read_bootstrap(bootstrap);
  if (peer_eager_threshold != nullptr) *peer_eager_threshold = info.peer_eager_threshold;
  QueuePairPtr qp =
      co_await accept(bootstrap, info, send_cq, recv_cq, local_eager_threshold);
  co_return qp;
}

}  // namespace rpcoib::verbs
