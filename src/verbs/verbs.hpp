// Simulated InfiniBand verbs.
//
// A faithful-shape ibverbs API over the simulated fabric: protection
// domains, registered memory regions with l/rkeys, reliable-connected
// queue pairs, completion queues, two-sided SEND/RECV and one-sided
// RDMA WRITE / RDMA READ. RPCoIB (and HDFSoIB / HBaseoIB data paths) are
// written against this API exactly as they would be against OFED:
//
//  * buffers must be registered before use; registration is expensive and
//    meant to be amortized (which is why RPCoIB pre-registers its pool),
//  * SEND consumes a posted RECV on the remote side, FIFO,
//  * RDMA WRITE/READ move bytes without remote CPU involvement; WRITE can
//    carry immediate data that surfaces as a remote completion,
//  * completions are reaped by polling a CQ, one CQ can serve many QPs.
//
// Payload bytes are really copied between the registered buffers (they
// live in this process), so data integrity is testable end to end; only
// wire timing is modeled, through net::Fabric's IB-verbs parameters.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "cluster/host.hpp"
#include "net/bytes.hpp"
#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace rpcoib::verbs {

class VerbsError : public std::runtime_error {
 public:
  explicit VerbsError(const std::string& what) : std::runtime_error(what) {}
};

enum class Opcode {
  kSend,
  kRecv,
  kRdmaWrite,
  kRdmaRead,
  kRecvRdmaWithImm,
};

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  std::uint32_t byte_len = 0;
  std::uint32_t imm_data = 0;
  /// For kRecv completions: the consuming QP's application context (the
  /// ibv_wc.qp_num analogue). With a shared receive queue the wr_id alone
  /// no longer identifies the connection a message arrived on; receivers
  /// set a context per QP and read it back here.
  std::uint64_t qp_context = 0;
  /// ibv_wc.status analogue: 0 = IBV_WC_SUCCESS. A one-sided READ whose
  /// rkey no longer resolves (region torn down mid-flight) completes with
  /// a non-zero status and an untouched local buffer instead of crashing
  /// the requester — the remote-access-error path real HCAs report.
  std::uint32_t status = 0;
};

/// A registered memory region. `lkey`/`rkey` identify it locally/remotely;
/// the rkey is resolvable cluster-wide (the simulator's stand-in for the
/// HCA's translation table).
struct MemoryRegion {
  net::Byte* addr = nullptr;
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  cluster::HostId owner = -1;
};

/// Remote buffer descriptor carried in rendezvous control messages.
struct RemoteBuffer {
  std::uint32_t rkey = 0;
  std::uint64_t offset = 0;  // offset within the region
  std::uint32_t length = 0;
};

class VerbsStack;

/// Per-host registration domain.
class ProtectionDomain {
 public:
  ProtectionDomain(VerbsStack& stack, cluster::Host& host);
  ~ProtectionDomain();
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  /// Register memory; charges pinning cost to the host (page pinning +
  /// HCA table update). RPCoIB calls this once per pool chunk at load.
  sim::Co<MemoryRegion> register_mr(net::MutByteSpan buf);

  /// Registration without the timing charge, for tests/setup fast paths.
  MemoryRegion register_mr_untimed(net::MutByteSpan buf);

  void deregister(const MemoryRegion& mr);

  cluster::Host& host() const { return host_; }

 private:
  VerbsStack& stack_;
  cluster::Host& host_;
  std::vector<std::uint32_t> owned_rkeys_;
};

/// Completion queue. One CQ may serve any number of QPs (the RPCoIB server
/// polls a single CQ for all client connections).
class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Scheduler& sched) : q_(sched) {}

  /// Blocking poll (suspends in virtual time until a completion arrives).
  sim::Co<WorkCompletion> wait() {
    WorkCompletion wc = co_await q_.recv();
    co_return wc;
  }

  /// Non-blocking poll.
  bool poll(WorkCompletion& wc) { return q_.try_recv(wc); }

  void push(WorkCompletion wc) { q_.push(std::move(wc)); }
  std::size_t depth() const { return q_.size(); }
  void close() { q_.close(); }

 private:
  sim::Channel<WorkCompletion> q_;
};

class QueuePair;
using QueuePairPtr = std::shared_ptr<QueuePair>;

/// A posted receive buffer awaiting an incoming SEND.
struct PostedRecv {
  std::uint64_t wr_id = 0;
  net::MutByteSpan buf;
};

/// Shared receive queue (the ibv_srq analogue): one posted-recv ring
/// consumed FIFO by any number of attached QPs, so registered receive
/// memory scales with *load* instead of connection count.
///
///  * post_recv() feeds the shared ring and drains any QPs parked on it,
///    in arrival order (deterministic under the simulator);
///  * an incoming SEND that finds the ring empty parks in its QP's inbound
///    queue (RNR backpressure — the RC analogue of receiver-not-ready NAK
///    plus sender retry) and the QP queues as a waiter for the next buffer;
///  * arm_limit(w) arms the one-shot low-watermark event
///    (IBV_EVENT_SRQ_LIMIT_REACHED): wait_limit() resumes once the ring
///    pops below `w` buffers, and the refill loop re-arms after topping up.
class SharedReceiveQueue {
 public:
  explicit SharedReceiveQueue(sim::Scheduler& sched) : limit_events_(sched) {}
  SharedReceiveQueue(const SharedReceiveQueue&) = delete;
  SharedReceiveQueue& operator=(const SharedReceiveQueue&) = delete;
  ~SharedReceiveQueue();

  /// Post a receive buffer to the shared ring; wakes parked QPs FIFO.
  void post_recv(std::uint64_t wr_id, net::MutByteSpan buf);

  /// Remove and return the wr_ids of all still-posted buffers (teardown:
  /// pooled buffers go back to their pool instead of leaking).
  std::vector<std::uint64_t> drain_posted_recvs();

  /// Arm the low-watermark event: the next time the posted count drops
  /// below `watermark` (or immediately, if it is already below), one event
  /// fires and the limit disarms until re-armed. watermark 0 disarms.
  void arm_limit(std::size_t watermark);

  /// Suspend until the armed limit event fires. Throws sim::ChannelClosed
  /// after close() — the refill loop's exit path.
  sim::Co<void> wait_limit();

  /// Close the limit-event channel, releasing any waiting refill loop.
  void close() { limit_events_.close(); }

  std::size_t posted() const { return ring_.size(); }
  /// Arrivals that found the ring empty and had to park (RNR stalls).
  std::uint64_t rnr_stalls() const { return rnr_stalls_; }
  /// Mirror RNR stalls into an external counter as they happen (lets a
  /// server surface them in its stats struct without polling).
  void set_stall_counter(std::uint64_t* counter) { stall_mirror_ = counter; }

 private:
  friend class QueuePair;

  /// Consume the head buffer; fires the armed limit event on the way down.
  bool try_pop(PostedRecv& out);
  void add_waiter(QueuePair* qp);
  void remove_waiter(QueuePair* qp);
  void note_stall();

  std::deque<PostedRecv> ring_;
  std::deque<QueuePair*> waiters_;  // QPs with parked inbound, FIFO
  sim::Channel<std::size_t> limit_events_;
  std::size_t armed_watermark_ = 0;  // 0 = disarmed
  std::uint64_t rnr_stalls_ = 0;
  std::uint64_t* stall_mirror_ = nullptr;
};

/// Reliable-connected queue pair. Created connected by ConnectionManager.
class QueuePair : public std::enable_shared_from_this<QueuePair> {
 public:
  QueuePair(VerbsStack& stack, cluster::Host& host, CompletionQueue& send_cq,
            CompletionQueue& recv_cq);
  ~QueuePair();

  /// Post a receive buffer; consumed FIFO by incoming SENDs. Throws if the
  /// QP is attached to an SRQ (like real verbs, an SRQ-attached QP has no
  /// receive queue of its own).
  void post_recv(std::uint64_t wr_id, net::MutByteSpan buf);

  /// Attach to (or detach from, with nullptr) a shared receive queue.
  /// Incoming SENDs then consume buffers from the SRQ instead of a per-QP
  /// ring. Must be set before traffic flows.
  void set_srq(SharedReceiveQueue* srq);

  /// Application context stamped into this QP's kRecv completions
  /// (WorkCompletion::qp_context) — how an SRQ consumer maps a completion
  /// back to its connection.
  void set_context(std::uint64_t ctx) { context_ = ctx; }

  /// Two-sided send into the peer's next posted receive buffer. The local
  /// completion (kSend) is delivered once the message is on the wire and
  /// acknowledged. Charges the doorbell cost to the calling thread.
  sim::Co<void> post_send(std::uint64_t wr_id, net::ByteSpan buf);

  /// One-sided write into remote registered memory. Optional immediate
  /// data raises a kRecvRdmaWithImm completion at the peer.
  sim::Co<void> post_rdma_write(std::uint64_t wr_id, net::ByteSpan local, RemoteBuffer dst,
                                std::optional<std::uint32_t> imm = std::nullopt);

  /// One-sided read from remote registered memory into `local`.
  sim::Co<void> post_rdma_read(std::uint64_t wr_id, net::MutByteSpan local, RemoteBuffer src);

  CompletionQueue& send_cq() const { return send_cq_; }
  CompletionQueue& recv_cq() const { return recv_cq_; }
  cluster::Host& host() const { return host_; }
  bool connected() const { return !peer_.expired(); }
  cluster::HostId remote_host() const { return remote_host_; }

  /// Tear down; peer sees flushed state on next use.
  void disconnect();

  /// Remove and return the wr_ids of all still-posted receive buffers.
  /// Called at teardown so pooled recv buffers can go back to their pool
  /// instead of leaking with the QP.
  std::vector<std::uint64_t> drain_posted_recvs();

 private:
  friend class ConnectionManager;
  friend class VerbsStack;
  friend class SharedReceiveQueue;

  struct InboundMsg {
    net::Bytes data;  // already-arrived SEND waiting for a posted recv (RNR case)
  };

  void connect_to(const QueuePairPtr& peer);
  /// Deliver an arrived SEND payload into a posted recv (or park it).
  void on_send_arrival(net::Bytes data);
  void match_inbound();

  VerbsStack& stack_;
  cluster::Host& host_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  std::weak_ptr<QueuePair> peer_;
  cluster::HostId remote_host_ = -1;
  std::deque<PostedRecv> posted_recvs_;
  std::deque<InboundMsg> inbound_;
  sim::Time send_clock_ = 0;  // RC ordering: sends never reorder on a QP
  SharedReceiveQueue* srq_ = nullptr;
  std::uint64_t context_ = 0;
  bool srq_waiting_ = false;  // queued on srq_->waiters_
};

/// Names a remote UD endpoint: the ibv_ah analogue. UD is connectionless —
/// every post_send carries one of these instead of riding a paired QP.
struct AddressHandle {
  cluster::HostId host = -1;
  std::uint32_t qpn = 0;
};

/// Unreliable-datagram endpoint (the ibv_qp IBV_QPT_UD analogue). Unlike an
/// RC QueuePair it is never "connected": any number of peers send to it by
/// address handle, each datagram is independently routed, MTU-capped, and
/// may be silently lost in flight (net::Fabric::deliver_datagram). A
/// datagram that arrives while the receive ring is empty is silently
/// dropped — there is no RNR backpressure on UD — and every delivered
/// datagram is prefixed with a GRH-style source-addressing header so the
/// receiver can reply without any per-sender state.
class UdEndpoint {
 public:
  /// UD path MTU: a post_send larger than this throws (real UD QPs bounce
  /// oversized sends at the HCA).
  static constexpr std::size_t kMtu = 4096;
  /// GRH prefix length on every delivered datagram: bytes 0..3 carry the
  /// source host id, 4..7 the source QPN (both little-endian u32); the
  /// remaining bytes are zero, as real receivers ignore them.
  static constexpr std::size_t kGrhBytes = 40;

  UdEndpoint(VerbsStack& stack, cluster::Host& host, CompletionQueue& send_cq,
             CompletionQueue& recv_cq);
  ~UdEndpoint();
  UdEndpoint(const UdEndpoint&) = delete;
  UdEndpoint& operator=(const UdEndpoint&) = delete;

  /// This endpoint's cluster-unique datagram queue-pair number.
  std::uint32_t qpn() const { return qpn_; }
  cluster::Host& host() const { return host_; }

  /// Application context stamped into this endpoint's kRecv completions.
  void set_context(std::uint64_t ctx) { context_ = ctx; }

  /// Post a receive buffer; must hold kGrhBytes + kMtu to fit any datagram.
  void post_recv(std::uint64_t wr_id, net::MutByteSpan buf);

  /// Fire-and-forget datagram to `ah`. Completes kSend once the datagram
  /// is on the wire — delivery is NOT acknowledged, and the send completes
  /// identically whether the datagram arrives, is lost in flight, or finds
  /// no posted receive at the destination.
  sim::Co<void> post_send(std::uint64_t wr_id, const AddressHandle& ah, net::ByteSpan buf);

  /// Remove and return the wr_ids of all still-posted receive buffers.
  std::vector<std::uint64_t> drain_posted_recvs();

  std::size_t posted() const { return ring_.size(); }
  /// Datagrams dropped at this endpoint because the ring was empty (ring
  /// overrun) or the head buffer was too small.
  std::uint64_t rx_dropped() const { return rx_dropped_; }

 private:
  friend class VerbsStack;

  /// Deliver one arrived datagram into the head receive buffer (or drop).
  void on_datagram_arrival(cluster::HostId src_host, std::uint32_t src_qpn, net::Bytes data);

  VerbsStack& stack_;
  cluster::Host& host_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  std::uint32_t qpn_ = 0;
  std::uint64_t context_ = 0;
  std::deque<PostedRecv> ring_;
  std::uint64_t rx_dropped_ = 0;
};

/// A server's advertised pool of UD endpoints, resolvable by its RPC
/// listen address — the simulator's stand-in for publishing well-known
/// datagram QPNs through a name service (real UD RPC frameworks exchange
/// them once out of band). Clients pick an endpoint per call; no
/// per-client connection or server-side state is created.
struct UdService {
  cluster::HostId host = -1;
  std::vector<std::uint32_t> qpns;
};

/// A server's advertised one-sided read region, resolvable by its RPC
/// listen address — the advertisement blob clients cache so eligible
/// lookups can go straight to RDMA READ. `generation` is bumped on every
/// re-export (region growth); clients holding an older generation detect
/// staleness via the per-slot generation word and fall back to RPC.
struct OneSidedService {
  cluster::HostId host = -1;
  std::uint32_t rkey = 0;
  std::uint64_t generation = 0;
  std::uint32_t slots = 0;
  std::uint32_t slot_bytes = 0;  // full slot stride incl. seqlock words
};

/// Cluster-wide verbs state: rkey resolution and device parameters.
class VerbsStack {
 public:
  explicit VerbsStack(net::Fabric& fab) : fab_(fab) {}
  VerbsStack(const VerbsStack&) = delete;
  VerbsStack& operator=(const VerbsStack&) = delete;

  net::Fabric& fabric() { return fab_; }

  /// Resolve an rkey to the registered region (throws VerbsError if the
  /// key is unknown or the access is out of bounds).
  net::MutByteSpan resolve(std::uint32_t rkey, std::uint64_t offset, std::size_t len) const;

  // Registration bookkeeping (used by ProtectionDomain).
  std::uint32_t add_region(MemoryRegion mr);
  void remove_region(std::uint32_t rkey);

  /// Cost of registering `bytes` of memory (page pinning + HCA update).
  sim::Dur registration_cost(std::size_t bytes) const;

  // Connection-manager rendezvous registry: half-open client QPs awaiting
  // the server's accept, keyed by the cookie in the endpoint-info payload.
  // Lives here (not per-ConnectionManager) because client and server use
  // separate managers over the same fabric.
  void cm_register(std::uintptr_t cookie, QueuePairPtr qp) { cm_pending_[cookie] = std::move(qp); }
  QueuePairPtr cm_lookup(std::uintptr_t cookie) {
    auto it = cm_pending_.find(cookie);
    return it == cm_pending_.end() ? nullptr : it->second;
  }
  void cm_erase(std::uintptr_t cookie) { cm_pending_.erase(cookie); }

  // UD datagram routing: endpoints register a cluster-unique QPN at
  // construction; post_send resolves the destination at arrival time, so a
  // datagram sent to an endpoint that died in flight simply vanishes (UD
  // semantics, no dangling pointer).
  std::uint32_t ud_register(UdEndpoint* ep) {
    const std::uint32_t qpn = next_qpn_++;
    ud_endpoints_[qpn] = ep;
    return qpn;
  }
  void ud_unregister(std::uint32_t qpn) { ud_endpoints_.erase(qpn); }
  UdEndpoint* ud_lookup(std::uint32_t qpn) const {
    auto it = ud_endpoints_.find(qpn);
    return it == ud_endpoints_.end() ? nullptr : it->second;
  }

  // UD service directory: a server advertises its endpoint pool under its
  // RPC listen address; clients resolve it instead of bootstrapping a
  // connection. Withdrawn at server stop.
  void ud_advertise(net::Address addr, UdService svc) { ud_services_[addr] = std::move(svc); }
  void ud_withdraw(net::Address addr) { ud_services_.erase(addr); }
  const UdService* ud_service(net::Address addr) const {
    auto it = ud_services_.find(addr);
    return it == ud_services_.end() ? nullptr : &it->second;
  }

  // One-sided service directory: the advertisement blob for a server's
  // exported read region, alongside the UD directory above. Re-advertised
  // (same address, new rkey/generation) on region growth; withdrawn at
  // server stop.
  void onesided_advertise(net::Address addr, OneSidedService svc) {
    onesided_services_[addr] = std::move(svc);
  }
  void onesided_withdraw(net::Address addr) { onesided_services_.erase(addr); }
  const OneSidedService* onesided_service(net::Address addr) const {
    auto it = onesided_services_.find(addr);
    return it == onesided_services_.end() ? nullptr : &it->second;
  }

  // Deterministic fault hook: make the next `n` bootstrap (QP-info)
  // exchanges fail with a VerbsError, modeling subnet-manager / GID
  // resolution trouble that leaves plain sockets working. RPCoIB clients
  // respond by falling back to socket mode.
  void inject_bootstrap_failures(int n) { bootstrap_failures_ += n; }
  bool take_bootstrap_failure() {
    if (bootstrap_failures_ <= 0) return false;
    --bootstrap_failures_;
    return true;
  }

 private:
  net::Fabric& fab_;
  std::uint32_t next_key_ = 1;
  std::map<std::uint32_t, MemoryRegion> regions_;
  std::map<std::uintptr_t, QueuePairPtr> cm_pending_;
  std::uint32_t next_qpn_ = 1;
  std::map<std::uint32_t, UdEndpoint*> ud_endpoints_;
  std::map<net::Address, UdService> ud_services_;
  std::map<net::Address, OneSidedService> onesided_services_;
  int bootstrap_failures_ = 0;
};

/// Establishes RC connections by exchanging endpoint info over a plain
/// socket — exactly the bootstrap the paper describes (Section III-D).
class ConnectionManager {
 public:
  ConnectionManager(VerbsStack& stack, net::SocketTable& sockets)
      : stack_(stack), sockets_(sockets) {}

  /// Client side: connect to `addr` (where a Listener must be accepting),
  /// exchanging QP info over `mgmt_transport`.
  ///
  /// `local_eager_threshold` rides bytes 8..15 of the endpoint-info blob
  /// (0 = not advertised, the pre-handshake wire format); the peer's
  /// advertised value is returned through `peer_eager_threshold` when
  /// non-null. RPCoIB endpoints use min(local, peer) so an eager SEND can
  /// never exceed what the receiver's pre-posted buffers were sized for.
  /// `session_id` rides bytes 16..23 (0 = sessionless; those bytes were
  /// always zero before, so sessionless blobs stay wire-identical).
  sim::Co<QueuePairPtr> connect(cluster::Host& src, net::Address addr,
                                CompletionQueue& send_cq, CompletionQueue& recv_cq,
                                net::Transport mgmt_transport = net::Transport::kIPoIB,
                                std::uint64_t local_eager_threshold = 0,
                                std::uint64_t* peer_eager_threshold = nullptr,
                                std::uint64_t session_id = 0);

  /// Endpoint info read off a bootstrap socket before any server QP
  /// exists: the rendezvous cookie plus the peer's advertised eager
  /// threshold and durable session id. Splitting the read out of accept()
  /// lets a sharded server pick the owning shard — and with it the CQ and
  /// SRQ the connection lands on — from the session id, so a reconnecting
  /// session finds its retry-cache state on the same shard.
  struct BootstrapInfo {
    std::uintptr_t cookie = 0;
    std::uint64_t peer_eager_threshold = 0;
    std::uint64_t session_id = 0;  // 0 = sessionless peer
  };

  /// Phase one of the server-side handshake: read the client's blob.
  sim::Co<BootstrapInfo> read_bootstrap(net::SocketPtr bootstrap);

  /// Phase two: pair QPs onto the chosen CQs and send the reply blob.
  sim::Co<QueuePairPtr> accept(net::SocketPtr bootstrap, const BootstrapInfo& info,
                               CompletionQueue& send_cq, CompletionQueue& recv_cq,
                               std::uint64_t local_eager_threshold = 0);

  /// Server side: accept one connection from an already-accepted bootstrap
  /// socket (read_bootstrap + two-phase accept in one step). Threshold
  /// exchange mirrors connect().
  sim::Co<QueuePairPtr> accept(net::SocketPtr bootstrap, CompletionQueue& send_cq,
                               CompletionQueue& recv_cq,
                               std::uint64_t local_eager_threshold = 0,
                               std::uint64_t* peer_eager_threshold = nullptr);

 private:
  VerbsStack& stack_;
  net::SocketTable& sockets_;
};

}  // namespace rpcoib::verbs
