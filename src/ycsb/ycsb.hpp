// YCSB: Yahoo! Cloud Serving Benchmark workload generator and runner [16].
//
// Implements the pieces Fig. 8 uses: a load phase inserting `record_count`
// 1 KB records, then a run phase issuing `operation_count` operations with
// a configurable read/update mix (100% Get, 100% Put, 50/50) from
// `num_clients` concurrent client threads, reporting aggregate Kops/sec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbase/hbase.hpp"
#include "sim/random.hpp"

namespace rpcoib::ycsb {

enum class KeyChooser { kUniform, kZipfian };

struct WorkloadSpec {
  std::uint64_t record_count = 100000;
  std::uint64_t operation_count = 640000;
  double read_proportion = 0.5;  // rest are updates (Put)
  KeyChooser chooser = KeyChooser::kZipfian;
  std::size_t record_bytes = 1024;
  int num_clients = 16;
  std::uint64_t seed = 42;
};

struct WorkloadResult {
  double load_secs = 0;
  double run_secs = 0;
  double throughput_kops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
};

std::string ycsb_key(std::uint64_t i);

/// Runs load + run phases against an HBase cluster. `client_hosts` are
/// cycled for the `num_clients` client threads. Must be called from a
/// simulated process (it suspends in virtual time).
sim::Co<WorkloadResult> run_workload(oib::RpcEngine& hbase_engine,
                                     hbase::HBaseCluster& cluster,
                                     std::vector<cluster::HostId> client_hosts,
                                     WorkloadSpec spec);

}  // namespace rpcoib::ycsb
