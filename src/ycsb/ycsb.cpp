#include "ycsb/ycsb.hpp"

#include <memory>

#include "sim/sync.hpp"

namespace rpcoib::ycsb {

using sim::Co;
using sim::Task;

std::string ycsb_key(std::uint64_t i) { return "user" + std::to_string(1000000000 + i); }

namespace {

struct ClientStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
};

Task client_thread(oib::RpcEngine& engine, hbase::HBaseCluster& cluster,
                   cluster::HostId host_id, const WorkloadSpec& spec, std::uint64_t ops,
                   std::uint64_t thread_seed, ClientStats& stats, sim::WaitGroup& wg) {
  cluster::Host& host = engine.testbed().host(host_id);
  std::unique_ptr<hbase::HTable> table = cluster.make_table(host);
  sim::Rng rng(thread_seed);
  sim::ZipfianGenerator zipf(spec.record_count ? spec.record_count : 1);
  net::Bytes value(spec.record_bytes, net::Byte{0x59});

  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t k = spec.chooser == KeyChooser::kZipfian
                                ? zipf.next(rng)
                                : rng.next_below(spec.record_count);
    const std::string key = ycsb_key(k);
    if (rng.next_double() < spec.read_proportion) {
      hbase::GetResult r = co_await table->get(key);
      ++stats.reads;
      if (r.found) ++stats.read_hits;
    } else {
      co_await table->put(key, value);
      ++stats.writes;
    }
  }
  wg.done();
}

Task load_thread(oib::RpcEngine& engine, hbase::HBaseCluster& cluster,
                 cluster::HostId host_id, const WorkloadSpec& spec, std::uint64_t first,
                 std::uint64_t count, sim::WaitGroup& wg) {
  cluster::Host& host = engine.testbed().host(host_id);
  std::unique_ptr<hbase::HTable> table = cluster.make_table(host);
  net::Bytes value(spec.record_bytes, net::Byte{0x4C});
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string key = ycsb_key(first + i);
    co_await table->put(key, value);
  }
  wg.done();
}

}  // namespace

sim::Co<WorkloadResult> run_workload(oib::RpcEngine& hbase_engine,
                                     hbase::HBaseCluster& cluster,
                                     std::vector<cluster::HostId> client_hosts,
                                     WorkloadSpec spec) {
  sim::Scheduler& sched = hbase_engine.testbed().sched();
  WorkloadResult result;

  // --- Load phase --------------------------------------------------------
  const sim::Time t_load = sched.now();
  {
    sim::WaitGroup wg(sched);
    const int n = spec.num_clients;
    const std::uint64_t per = spec.record_count / static_cast<std::uint64_t>(n);
    for (int c = 0; c < n; ++c) {
      const std::uint64_t first = per * static_cast<std::uint64_t>(c);
      const std::uint64_t count =
          c == n - 1 ? spec.record_count - first : per;  // remainder to the last
      wg.add(1);
      sched.spawn(load_thread(hbase_engine, cluster,
                              client_hosts[static_cast<std::size_t>(c) % client_hosts.size()],
                              spec, first, count, wg));
    }
    co_await wg.wait();
  }
  result.load_secs = sim::to_sec(sched.now() - t_load);

  // --- Run phase ----------------------------------------------------------
  std::vector<std::unique_ptr<ClientStats>> stats;
  const sim::Time t_run = sched.now();
  {
    sim::WaitGroup wg(sched);
    const int n = spec.num_clients;
    const std::uint64_t per = spec.operation_count / static_cast<std::uint64_t>(n);
    for (int c = 0; c < n; ++c) {
      stats.push_back(std::make_unique<ClientStats>());
      const std::uint64_t ops =
          c == n - 1 ? spec.operation_count - per * static_cast<std::uint64_t>(n - 1) : per;
      wg.add(1);
      sched.spawn(client_thread(hbase_engine, cluster,
                                client_hosts[static_cast<std::size_t>(c) % client_hosts.size()],
                                spec, ops, spec.seed + static_cast<std::uint64_t>(c) * 7919,
                                *stats.back(), wg));
    }
    co_await wg.wait();
  }
  result.run_secs = sim::to_sec(sched.now() - t_run);
  for (const auto& s : stats) {
    result.reads += s->reads;
    result.writes += s->writes;
    result.read_hits += s->read_hits;
  }
  result.throughput_kops =
      result.run_secs > 0
          ? static_cast<double>(spec.operation_count) / result.run_secs / 1000.0
          : 0;
  co_return result;
}

}  // namespace rpcoib::ycsb
