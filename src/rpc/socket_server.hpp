// Default Hadoop RPC server (socket path).
//
// The thread structure of Hadoop 0.20.2 + the Reader introduced in 1.0.3,
// exactly as Section III-D describes it:
//   Listener   — accepts connections,
//   Reader     — per-connection: reads a call (fresh ByteBuffer per call,
//                Listing 2), pushes it onto the call queue,
//   Handler xN — pop the call queue, deserialize, invoke, serialize the
//                response into a 10 KB-initial DataOutputBuffer,
//   Responder  — writes responses back on the right connection.
//
// With coalescing enabled (BatchConfig) the Reader splits client batch
// frames into individual calls (admission, deadlines and tracing all stay
// per call) and the Responder merges queued small responses per
// connection into one wire write. Batch frames are always *parsed*;
// the knob only gates emission.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/rpc.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "trace/context.hpp"

namespace rpcoib::rpc {

class SocketRpcServer final : public RpcServer {
 public:
  /// `num_readers` models Hadoop's Reader thread count (default 1, as in
  /// Hadoop 1.0.3): all connections' receive processing serializes
  /// through this many threads, which is what caps socket-RPC throughput.
  SocketRpcServer(cluster::Host& host, net::SocketTable& sockets, net::Address addr,
                  int num_handlers, int num_readers = 1);
  ~SocketRpcServer() override;

  void start() override;
  void stop() override;

  cluster::Host& host() const { return host_; }
  const net::Address& addr() const { return addr_; }

 private:
  struct ServerCall {
    net::SocketPtr conn;
    std::uint64_t conn_id = 0;  // dense per-server connection sequence number
    std::uint64_t id = 0;
    MethodKey key;
    net::Bytes frame;        // full received frame
    std::size_t param_off = 0;  // offset of the param bytes within frame
    sim::Time recv_start = 0;   // when the frame began arriving (Fig. 1)
    sim::Dur recv_alloc = 0;    // buffer-allocation share of the receive path
    trace::TraceContext ctx;    // caller's trace context (from the wire)
    sim::Time deadline = 0;     // caller's absolute deadline (0 = none)
    sim::Time enqueued = 0;     // when the call entered the call queue
  };
  struct Response {
    net::SocketPtr conn;
    net::Bytes data;
  };

  sim::Task listener_loop();
  sim::Task reader_loop(net::SocketPtr conn, std::uint64_t conn_id);
  sim::Task handler_loop(int handler_id);
  sim::Task responder_loop();

  /// One call's receive-side processing (header parse, admission,
  /// enqueue) — the unit shared by the single-frame path and each
  /// sub-call of a batch frame. Returns the call's trace context so the
  /// batch path can parent its batch.parse span.
  sim::Co<trace::TraceContext> process_frame(net::SocketPtr conn, std::uint64_t conn_id,
                                             net::Bytes frame, sim::Time t_recv_start,
                                             sim::Dur alloc_cost);
  /// Coalesce group[begin..end) (small responses for one connection) into
  /// a single [u32 total][u64 kWireBatchFlag|n][u32 len_i][payload_i...]
  /// frame and write it.
  sim::Co<void> write_response_batch(net::SocketPtr conn,
                                     const std::vector<Response*>& group,
                                     std::size_t begin, std::size_t end);

  net::Bytes status_frame(std::uint64_t id, RpcStatus status, const std::string& msg);
  void enqueue(ServerCall call);
  void shed(const ServerCall& call);

  cluster::Host& host_;
  net::SocketTable& sockets_;
  net::Address addr_;
  int num_handlers_;
  std::unique_ptr<sim::Semaphore> reader_slots_;
  int num_readers_;
  net::Listener* listener_ = nullptr;
  std::unique_ptr<sim::Channel<ServerCall>> call_queue_;
  std::unique_ptr<sim::Channel<Response>> response_queue_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<RetryCache> retry_cache_;
  std::uint64_t conn_seq_ = 0;
  std::vector<net::SocketPtr> conns_;
  LingerEstimator resp_gaps_;  // responder-side adaptive-linger estimator
  bool running_ = false;
};

}  // namespace rpcoib::rpc
