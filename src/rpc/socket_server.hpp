// Default Hadoop RPC server (socket path).
//
// The thread structure of Hadoop 0.20.2 + the Reader introduced in 1.0.3,
// exactly as Section III-D describes it:
//   Listener   — accepts connections,
//   Reader     — per-connection: reads a call (fresh ByteBuffer per call,
//                Listing 2), pushes it onto the call queue,
//   Handler xN — pop the call queue, deserialize, invoke, serialize the
//                response into a 10 KB-initial DataOutputBuffer,
//   Responder  — writes responses back on the right connection.
//
// With coalescing enabled (BatchConfig) the Reader splits client batch
// frames into individual calls (admission, deadlines and tracing all stay
// per call) and the Responder merges queued small responses per
// connection into one wire write. Batch frames are always *parsed*;
// the knob only gates emission.
//
// `num_shards` > 1 breaks the serial-Reader ceiling: connections are
// assigned round-robin (by dense connection id) to independent shards,
// each owning its own Reader slot pool, CallPipeline (call queue +
// admission + retry cache), handler subset and Responder — so no receive,
// dispatch or response work ever contends across shards. The default of 1
// keeps the server operation-for-operation identical to the unsharded
// code.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/pipeline.hpp"
#include "rpc/rpc.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "trace/context.hpp"

namespace rpcoib::rpc {

class SocketRpcServer final : public RpcServer {
 public:
  /// `num_readers` models Hadoop's Reader thread count (default 1, as in
  /// Hadoop 1.0.3): all of a shard's connections serialize their receive
  /// processing through this many threads, which is what caps socket-RPC
  /// throughput. `num_shards` replicates the whole Reader/queue/Handler/
  /// Responder chain; `steal` lets an idle shard's handlers take queued
  /// calls from siblings (off by default — stealing trades the strict
  /// per-shard ordering for utilization).
  SocketRpcServer(cluster::Host& host, net::SocketTable& sockets, net::Address addr,
                  int num_handlers, int num_readers = 1, int num_shards = 1,
                  bool steal = false);
  ~SocketRpcServer() override;

  void start() override;
  void stop() override;

  RpcStats& stats() override;
  const RpcStats& stats() const override;

  cluster::Host& host() const { return host_; }
  const net::Address& addr() const { return addr_; }
  int num_shards() const { return num_shards_; }

 private:
  struct ServerCall {
    net::SocketPtr conn;
    std::uint64_t conn_id = 0;  // dense per-server connection sequence number
    std::uint64_t session_id = 0;  // durable session id (0 = sessionless)
    std::uint64_t owner = 0;       // retry-cache key: session_id, else conn_id
    bool retried = false;          // kWireRetryFlag: a client retry attempt
    std::uint32_t shard = 0;    // home shard (== conn_id's shard)
    std::uint64_t id = 0;
    MethodKey key;
    net::Bytes frame;        // full received frame
    std::size_t param_off = 0;  // offset of the param bytes within frame
    sim::Time recv_start = 0;   // when the frame began arriving (Fig. 1)
    sim::Dur recv_alloc = 0;    // buffer-allocation share of the receive path
    trace::TraceContext ctx;    // caller's trace context (from the wire)
    sim::Time deadline = 0;     // caller's absolute deadline (0 = none)
    sim::Time enqueued = 0;     // when the call entered the call queue
  };
  struct Response {
    net::SocketPtr conn;
    net::Bytes data;
  };

  /// One reader shard: a disjoint set of connections with its own Reader
  /// slots, pipeline (queue/admission/cache/stats), and Responder.
  struct Shard {
    Shard(sim::Scheduler& sched, std::uint32_t index, const OverloadConfig& cfg,
          int readers, std::uint64_t seed, const SessionConfig& session)
        : index(index),
          pipeline(sched, index, cfg,
                   [](const ServerCall& c) -> const std::string& { return c.key.protocol; },
                   seed),
          response_queue(sched),
          reader_slots(sched, readers),
          sessions(session) {}

    std::uint32_t index;
    CallPipeline<ServerCall> pipeline;
    sim::Channel<Response> response_queue;
    sim::Semaphore reader_slots;
    std::vector<net::SocketPtr> conns;
    LingerEstimator resp_gaps;  // responder-side adaptive-linger estimator
    SessionTable sessions;      // durable-session leases (home shard only)
  };

  sim::Task listener_loop();
  /// `home` is the listener-chosen shard (sessionless path). With sessions
  /// enabled it is null: the reader picks the shard session-affinely after
  /// the preamble, so a reconnect lands on the shard holding its dedup
  /// state.
  sim::Task reader_loop(net::SocketPtr conn, std::uint64_t conn_id, Shard* home);
  sim::Task handler_loop(Shard& home, int handler_id);
  sim::Task responder_loop(Shard& shard);

  /// One call's receive-side processing (header parse, admission,
  /// enqueue) — the unit shared by the single-frame path and each
  /// sub-call of a batch frame. Returns the call's trace context so the
  /// batch path can parent its batch.parse span.
  sim::Co<trace::TraceContext> process_frame(net::SocketPtr conn, std::uint64_t conn_id,
                                             std::uint64_t session_id, Shard& shard,
                                             net::Bytes frame, sim::Time t_recv_start,
                                             sim::Dur alloc_cost);
  /// Lease bookkeeping for one arriving call: renew (or open, unless the
  /// call is a retry) its session and drop retry-cache state for every
  /// session the sweep expired or evicted. `call_id` fences the session's
  /// incarnation when the call opens it.
  void touch_session(Shard& shard, std::uint64_t session_id, bool retried,
                     std::uint64_t call_id);
  /// Remove `conn` from the accepted-but-unhomed list (no-op when absent).
  void unpend(const net::SocketPtr& conn);
  /// Coalesce group[begin..end) (small responses for one connection) into
  /// a single [u32 total][u64 kWireBatchFlag|n][u32 len_i][payload_i...]
  /// frame and write it.
  sim::Co<void> write_response_batch(Shard& shard, net::SocketPtr conn,
                                     const std::vector<Response*>& group,
                                     std::size_t begin, std::size_t end);

  net::Bytes status_frame(std::uint64_t id, RpcStatus status, const std::string& msg);
  void shed(Shard& shard, const ServerCall& call);
  /// Fold the per-shard stat blocks into stats_ (idempotent; the scalar
  /// aggregates are rebuilt from scratch on every call).
  void sync_stats();

  cluster::Host& host_;
  net::SocketTable& sockets_;
  net::Address addr_;
  int num_handlers_;
  int num_readers_;
  int num_shards_;
  bool steal_;
  net::Listener* listener_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Sessions only: sockets accepted but still parked on the preamble /
  /// session-id read, so homed in no shard's conns list yet. The reader
  /// moves a conn out once it picks the session-affine shard; stop()
  /// closes whatever is still in limbo here so no reader task is left
  /// pending on read_full.
  std::vector<net::SocketPtr> pending_conns_;
  std::uint64_t conn_seq_ = 0;
  bool running_ = false;
};

}  // namespace rpcoib::rpc
