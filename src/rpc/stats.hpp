// Per-<protocol, method> RPC profiling.
//
// Feeds three paper artifacts directly:
//   Table I — avg mem-adjustment count, serialization time, send time per
//             method during a MapReduce job,
//   Fig. 1  — server-side buffer-allocation time vs total receive time,
//   Fig. 3  — per-call-type message-size sequences (size locality).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "rpc/protocol.hpp"

namespace rpcoib::rpc {

struct MethodProfile {
  metrics::Summary mem_adjustments;  // Algorithm-1 reallocation events per call
  metrics::Summary serialize_us;     // Listing 1 "Serialization" section
  metrics::Summary send_us;          // Listing 1 "Sending" section
  metrics::Summary total_us;         // full round-trip at the caller
  metrics::Summary msg_bytes;        // serialized request size
  std::vector<std::uint32_t> size_sequence;   // per-call sizes (Fig. 3)
  std::uint64_t sequence_dropped = 0;         // sizes not stored due to the cap
};

/// Per-shard receive/dispatch counters (server.shards). One block per
/// reader shard, written only by that shard's loops (single-writer
/// discipline); RpcServer::stats() snapshots every block into
/// RpcStats::shards so the resilience report can show the shard.* rows.
struct ShardCounters {
  std::uint64_t conns_assigned = 0;  // connections homed on this shard
  std::uint64_t dispatched = 0;      // calls admitted into the shard queue
  std::uint64_t queued_peak = 0;     // shard call-queue high-water mark
  std::uint64_t dropped = 0;         // shed + expired + dropped at stop()
  std::uint64_t steals = 0;          // calls this shard's handlers took from siblings
  std::uint64_t stolen = 0;          // calls sibling handlers took from this shard
};

struct RpcStats {
  /// When true, every call appends its size to the per-method sequence
  /// (Fig. 3 traces; off by default to bound memory).
  bool record_sequences = false;

  /// Upper bound on stored sizes per method: the first `sequence_cap`
  /// entries are kept verbatim (Fig. 3 plots the head of the trace anyway)
  /// and the rest only counted in `sequence_dropped`. 0 = unlimited.
  std::size_t sequence_cap = 1 << 20;

  /// The one gate for appending to a per-method size sequence.
  void record_size(MethodProfile& p, std::uint32_t bytes) {
    if (!record_sequences) return;
    if (sequence_cap != 0 && p.size_sequence.size() >= sequence_cap) {
      ++p.sequence_dropped;
      return;
    }
    p.size_sequence.push_back(bytes);
  }

  std::map<MethodKey, MethodProfile> methods;

  // Server-side receive-path decomposition (Fig. 1).
  metrics::Summary recv_alloc_us;
  metrics::Summary recv_total_us;

  std::uint64_t calls_sent = 0;
  std::uint64_t calls_handled = 0;

  // Resilience counters (fault injection / retry policy).
  std::uint64_t timeouts = 0;          // attempts that hit call_timeout
  std::uint64_t transport_errors = 0;  // attempts that died on the transport
  std::uint64_t retries = 0;           // re-issued attempts
  std::uint64_t socket_fallbacks = 0;  // RPCoIB calls rerouted to socket mode
  metrics::Summary backoff_us;         // backoff waits between attempts

  // Overload-protection counters. Client side:
  std::uint64_t busy_rejections = 0;  // attempts shed by the server (busy status)
  std::uint64_t nack_fallbacks = 0;   // rendezvous NACKed -> retried on socket path
  // Server side:
  std::uint64_t calls_shed = 0;         // admission control rejected the call
  std::uint64_t calls_expired = 0;      // dropped at dequeue: deadline already passed
  std::uint64_t responses_expired = 0;  // executed, but the deadline passed before send
  std::uint64_t dedup_hits = 0;         // retry cache answered with a stored response
  std::uint64_t dedup_in_flight = 0;    // duplicate dropped; first attempt still running
  std::uint64_t dropped_on_stop = 0;    // queued calls failed at stop()
  std::uint64_t pool_nacks = 0;         // rendezvous NACKed: demand-allocation cap hit
  std::uint64_t queue_depth_peak = 0;   // call-queue high-water mark

  // Small-message coalescing counters (rpc::BatchConfig). Client side:
  std::uint64_t batches_sent = 0;         // multi-call frames put on the wire
  std::uint64_t batched_calls = 0;        // calls that rode a batch frame
  std::uint64_t batch_flush_full = 0;     // flushes forced by max_calls/max_bytes
  std::uint64_t batch_flush_linger = 0;   // flushes when the linger expired
  std::uint64_t batch_flush_immediate = 0;  // zero-linger flushes (sparse arrivals)
  // Server side:
  std::uint64_t batches_received = 0;       // multi-call frames parsed
  std::uint64_t batched_calls_received = 0; // calls unpacked from batch frames
  std::uint64_t response_batches = 0;       // multi-response frames sent back
  std::uint64_t batched_responses = 0;      // responses that rode a batch frame

  // Transport bookkeeping (reconnects and the eager-threshold handshake).
  std::uint64_t connections_opened = 0;     // transport connections established
  std::uint64_t threshold_mismatches = 0;   // bootstrap saw local != peer eager threshold

  // Reconnect recovery state machine (client side, split by detection
  // cause — see rpc::ReconnectCause). Each counts one connection torn
  // down and eligible for re-bootstrap + in-flight replay.
  std::uint64_t reconnects_peer_closed = 0;    // EOF / closed by remote
  std::uint64_t reconnects_qp_error = 0;       // verbs post failed mid-call
  std::uint64_t reconnects_idle_evicted = 0;   // stale QP found on reuse
  std::uint64_t reconnects_fault_injected = 0; // FaultPlan connection kill
  std::uint64_t calls_replayed = 0;            // attempts re-sent after a reconnect
  // Session-expired bounce answered with a *fresh* resend: the session was
  // never confirmed at that address and the bounce arrived within one
  // lease of the first attempt, proving no earlier attempt executed (the
  // UD cold-start case — the session's first datagram was lost).
  std::uint64_t session_cold_restarts = 0;

  // Durable session layer (session.* knobs). Server side, per shard:
  std::uint64_t sessions_opened = 0;      // new session ids admitted
  std::uint64_t sessions_expired = 0;     // idle past the lease, state dropped
  std::uint64_t sessions_evicted = 0;     // LRU-evicted past table_cap
  std::uint64_t sessions_rejected = 0;    // retried call on expired session bounced
  std::uint64_t session_table_peak = 0;   // live-session high-water mark

  // Shared-receive-queue counters (RPCoIB server, srq.* knobs).
  std::uint64_t srq_posted = 0;          // buffers posted to the shared recv ring
  std::uint64_t srq_refills = 0;         // low-watermark refill rounds
  std::uint64_t srq_rnr_stalls = 0;      // arrivals parked while the ring was dry
  std::uint64_t srq_evictions = 0;       // idle connections evicted (LRU sweep)
  std::uint64_t recv_ring_bytes_peak = 0;  // posted recv bytes high-water mark
  std::uint64_t responses_dropped_on_stop = 0;  // finished responses dropped at stop()

  // UD datagram eager-path counters (rpcoib, ud.* knobs). Client side:
  std::uint64_t ud_datagrams_sent = 0;    // kUdCall datagrams put on the wire
  std::uint64_t ud_responses_received = 0;  // kResp datagrams demuxed to a caller
  std::uint64_t ud_rc_fallbacks = 0;      // calls too big for the UD budget -> RC path
  // Server side:
  std::uint64_t ud_calls_received = 0;    // calls unpacked from kUdCall datagrams
  std::uint64_t ud_responses_sent = 0;    // kResp datagrams sent back
  std::uint64_t ud_rx_dropped = 0;        // datagrams silently dropped (ring overrun)
  std::uint64_t ud_resp_oversize = 0;     // responses too big for a datagram, bounced

  // One-sided read-plane counters (rpcoib, onesided.* knobs). Client side:
  std::uint64_t onesided_reads = 0;       // Get/lookup calls served by RDMA READ
  std::uint64_t onesided_misses = 0;      // slot empty / hash mismatch -> RPC
  std::uint64_t onesided_conflict_fallbacks = 0;  // retry budget spent -> RPC
  std::uint64_t onesided_stale_refreshes = 0;  // stale generation, advert re-fetched
  std::uint64_t onesided_fallbacks = 0;   // all READ->RPC degradations, any cause
  // Server side:
  std::uint64_t onesided_published = 0;   // entries published into the region
  std::uint64_t onesided_reexports = 0;   // region growth re-exports (gen bumps)

  // Bulk-streaming counters (rpcoib/stream, stream.* knobs).
  std::uint64_t streams_opened = 0;     // granted streams (writer and reader hubs)
  std::uint64_t stream_chunks = 0;      // chunks RDMA-WRITTEN
  std::uint64_t stream_bytes = 0;       // payload bytes streamed
  std::uint64_t stream_credit_stalls = 0;   // writer waits for ring credit
  std::uint64_t stream_fallbacks = 0;   // open/fetch degraded to the legacy path
  std::uint64_t stream_pool_denied = 0;     // ring/staging try_acquire refusals
  std::uint64_t stream_aborts = 0;      // streams torn down before completion
  std::uint64_t stream_deadline_expiries = 0;  // per-chunk progress deadline hits

  // Per-shard snapshot (server.shards knob); empty on clients and on
  // servers that never synced their shard blocks.
  std::vector<ShardCounters> shards;

  MethodProfile& method(const MethodKey& key) { return methods[key]; }

  void merge_resilience(const RpcStats& o) {
    timeouts += o.timeouts;
    transport_errors += o.transport_errors;
    retries += o.retries;
    socket_fallbacks += o.socket_fallbacks;
    backoff_us.merge(o.backoff_us);
    busy_rejections += o.busy_rejections;
    nack_fallbacks += o.nack_fallbacks;
    calls_shed += o.calls_shed;
    calls_expired += o.calls_expired;
    responses_expired += o.responses_expired;
    dedup_hits += o.dedup_hits;
    dedup_in_flight += o.dedup_in_flight;
    dropped_on_stop += o.dropped_on_stop;
    pool_nacks += o.pool_nacks;
    if (o.queue_depth_peak > queue_depth_peak) queue_depth_peak = o.queue_depth_peak;
    batches_sent += o.batches_sent;
    batched_calls += o.batched_calls;
    batch_flush_full += o.batch_flush_full;
    batch_flush_linger += o.batch_flush_linger;
    batch_flush_immediate += o.batch_flush_immediate;
    batches_received += o.batches_received;
    batched_calls_received += o.batched_calls_received;
    response_batches += o.response_batches;
    batched_responses += o.batched_responses;
    connections_opened += o.connections_opened;
    threshold_mismatches += o.threshold_mismatches;
    reconnects_peer_closed += o.reconnects_peer_closed;
    reconnects_qp_error += o.reconnects_qp_error;
    reconnects_idle_evicted += o.reconnects_idle_evicted;
    reconnects_fault_injected += o.reconnects_fault_injected;
    calls_replayed += o.calls_replayed;
    session_cold_restarts += o.session_cold_restarts;
    sessions_opened += o.sessions_opened;
    sessions_expired += o.sessions_expired;
    sessions_evicted += o.sessions_evicted;
    sessions_rejected += o.sessions_rejected;
    if (o.session_table_peak > session_table_peak) {
      session_table_peak = o.session_table_peak;
    }
    srq_posted += o.srq_posted;
    srq_refills += o.srq_refills;
    srq_rnr_stalls += o.srq_rnr_stalls;
    srq_evictions += o.srq_evictions;
    if (o.recv_ring_bytes_peak > recv_ring_bytes_peak) {
      recv_ring_bytes_peak = o.recv_ring_bytes_peak;
    }
    responses_dropped_on_stop += o.responses_dropped_on_stop;
    ud_datagrams_sent += o.ud_datagrams_sent;
    ud_responses_received += o.ud_responses_received;
    ud_rc_fallbacks += o.ud_rc_fallbacks;
    ud_calls_received += o.ud_calls_received;
    ud_responses_sent += o.ud_responses_sent;
    ud_rx_dropped += o.ud_rx_dropped;
    ud_resp_oversize += o.ud_resp_oversize;
    onesided_reads += o.onesided_reads;
    onesided_misses += o.onesided_misses;
    onesided_conflict_fallbacks += o.onesided_conflict_fallbacks;
    onesided_stale_refreshes += o.onesided_stale_refreshes;
    onesided_fallbacks += o.onesided_fallbacks;
    onesided_published += o.onesided_published;
    onesided_reexports += o.onesided_reexports;
    streams_opened += o.streams_opened;
    stream_chunks += o.stream_chunks;
    stream_bytes += o.stream_bytes;
    stream_credit_stalls += o.stream_credit_stalls;
    stream_fallbacks += o.stream_fallbacks;
    stream_pool_denied += o.stream_pool_denied;
    stream_aborts += o.stream_aborts;
    stream_deadline_expiries += o.stream_deadline_expiries;
    if (o.shards.size() > shards.size()) shards.resize(o.shards.size());
    for (std::size_t i = 0; i < o.shards.size(); ++i) {
      shards[i].conns_assigned += o.shards[i].conns_assigned;
      shards[i].dispatched += o.shards[i].dispatched;
      if (o.shards[i].queued_peak > shards[i].queued_peak) {
        shards[i].queued_peak = o.shards[i].queued_peak;
      }
      shards[i].dropped += o.shards[i].dropped;
      shards[i].steals += o.shards[i].steals;
      shards[i].stolen += o.shards[i].stolen;
    }
  }
};

}  // namespace rpcoib::rpc
