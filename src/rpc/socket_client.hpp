// Default Hadoop RPC client (socket path) — the baseline the paper
// profiles in Section II.
//
// Mirrors org.apache.hadoop.ipc.Client: per-server Connection with a
// receiver thread multiplexing concurrent calls by id; per-call
// serialization into a fresh 32-byte DataOutputBuffer grown by Algorithm 1;
// a fresh DataOutputStream/BufferedOutputStream pair per send (Listing 1);
// per-response heap buffer allocation + native->heap copy on receive
// (Listing 2's client-side twin).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "rpc/rpc.hpp"
#include "sim/sync.hpp"

namespace rpcoib::rpc {

class SocketRpcClient final : public RpcClient {
 public:
  /// `transport` is the network the socket rides (1GigE / 10GigE / IPoIB).
  SocketRpcClient(cluster::Host& host, net::SocketTable& sockets, net::Transport transport);
  ~SocketRpcClient() override;

  cluster::Host& host() const override { return host_; }
  net::Transport transport() const { return transport_; }

  /// Drop all cached connections (peers observe EOF).
  void close_connections();

 protected:
  sim::Co<void> call_attempt(net::Address addr, const MethodKey& key, const Writable& param,
                             Writable* response, std::uint64_t call_id) override;

 private:
  struct PendingCall {
    explicit PendingCall(sim::Scheduler& s) : done(s) {}
    sim::SimEvent done;
    net::Bytes value;
    bool error = false;
    bool busy = false;  // error with RpcStatus::kBusy -> ServerBusyException
    std::string error_msg;
  };

  struct Connection {
    explicit Connection(sim::Scheduler& s) : send_mu(s), ready(s) {}
    net::SocketPtr sock;
    sim::SimMutex send_mu;
    sim::SimEvent ready;  // set once the socket handshake completed
    bool broken = false;
    std::map<std::uint64_t, PendingCall*> pending;
    sim::JoinHandle receiver;
  };

  // Shared-owned for the same reason as RdmaRpcClient: the receive loop
  // and in-flight calls must outlive close_connections().
  using ConnectionPtr = std::shared_ptr<Connection>;

  sim::Co<ConnectionPtr> get_connection(net::Address addr);
  sim::Task receive_loop(ConnectionPtr conn);
  static void fail_all(Connection& conn, const std::string& why);

  cluster::Host& host_;
  net::SocketTable& sockets_;
  net::Transport transport_;
  std::map<net::Address, std::shared_ptr<Connection>> connections_;
};

}  // namespace rpcoib::rpc
