// Default Hadoop RPC client (socket path) — the baseline the paper
// profiles in Section II.
//
// Mirrors org.apache.hadoop.ipc.Client: per-server Connection with a
// receiver thread multiplexing concurrent calls by id; per-call
// serialization into a fresh 32-byte DataOutputBuffer grown by Algorithm 1;
// a fresh DataOutputStream/BufferedOutputStream pair per send (Listing 1);
// per-response heap buffer allocation + native->heap copy on receive
// (Listing 2's client-side twin).
//
// With coalescing enabled (BatchConfig) sub-threshold calls accumulate in
// a per-connection CallBatcher and go out as one multi-call frame
// ([u32 total][u64 kWireBatchFlag|count][u32 len_i x count][payload_i...])
// when a limit fills or the adaptive linger expires. Batched *responses*
// from the server are always understood, independent of the local knob.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "rpc/batch.hpp"
#include "rpc/rpc.hpp"
#include "sim/sync.hpp"

namespace rpcoib::rpc {

class SocketRpcClient final : public RpcClient {
 public:
  /// `transport` is the network the socket rides (1GigE / 10GigE / IPoIB).
  SocketRpcClient(cluster::Host& host, net::SocketTable& sockets, net::Transport transport);
  ~SocketRpcClient() override;

  cluster::Host& host() const override { return host_; }
  net::Transport transport() const { return transport_; }

  /// Drop all cached connections (peers observe EOF).
  void close_connections();

 protected:
  sim::Co<void> call_attempt(net::Address addr, const MethodKey& key, const Writable& param,
                             Writable* response, std::uint64_t call_id,
                             bool retried) override;

 private:
  struct PendingCall {
    explicit PendingCall(sim::Scheduler& s) : done(s) {}
    sim::SimEvent done;
    net::Bytes value;
    bool error = false;
    bool busy = false;  // error with RpcStatus::kBusy -> ServerBusyException
    bool session_expired = false;  // kSessionExpired -> SessionExpiredException
    std::string error_msg;
  };

  /// Reconnect recovery state machine (unified with the RDMA client; see
  /// DESIGN.md §13). A connection is kConnecting while the handshake runs,
  /// kHealthy once ready, and kTornDown after a failure is detected (EOF
  /// from the peer, a send into a closed socket, or an injected kill) and
  /// every pending call was failed over to the retry loop. Re-bootstrap is
  /// the next get_connection(): it drops the kTornDown corpse and dials a
  /// fresh connection carrying the same durable session id, and the retry
  /// loop replays the failed in-flight calls under RpcRetryPolicy — the
  /// session-keyed server retry cache makes that replay exactly-once.
  enum class Recovery : std::uint8_t { kConnecting, kHealthy, kTornDown };

  struct Connection {
    Connection(sim::Scheduler& s, const BatchConfig& batch)
        : send_mu(s), ready(s), batcher(batch) {}
    net::SocketPtr sock;
    sim::SimMutex send_mu;
    sim::SimEvent ready;  // set once the socket handshake completed
    bool broken = false;
    // Set by close_connections() before the sockets close: the receive
    // loop and flush timers check it after every resumption instead of
    // touching the (possibly destroyed) client.
    bool cancelled = false;
    Recovery recovery = Recovery::kConnecting;
    std::map<std::uint64_t, PendingCall*> pending;
    CallBatcher batcher;
    // First traced call of the open batch; parents the batch.flush span.
    trace::TraceContext batch_ctx;
    sim::JoinHandle receiver;
  };

  // Shared-owned for the same reason as RdmaRpcClient: the receive loop
  // and in-flight calls must outlive close_connections().
  using ConnectionPtr = std::shared_ptr<Connection>;

  sim::Co<ConnectionPtr> get_connection(net::Address addr);
  sim::Task receive_loop(ConnectionPtr conn);
  /// Complete one response payload ([u64 id][u8 status][rest]) — the unit
  /// shared by the single-frame path and each sub-response of a batch.
  /// Static: runs off `host`/`conn` only, never the (possibly dead) client.
  static sim::Co<void> deliver_one(cluster::Host& host, Connection& conn,
                                   net::ByteSpan payload);
  /// Buffer one serialized call payload; flushes inline when a limit
  /// fills, otherwise arms the adaptive-linger timer on first append.
  sim::Co<void> append_to_batch(ConnectionPtr conn, net::Bytes payload,
                                const trace::TraceContext& ctx);
  /// Encode and send everything currently buffered as one batch frame.
  sim::Co<void> flush_batch(ConnectionPtr conn);
  /// Delayed flush armed per batch; stands down if `epoch` already flushed.
  sim::Task batch_timer(ConnectionPtr conn, std::uint64_t epoch, sim::Dur linger);
  static void fail_all(Connection& conn, const std::string& why);
  /// Count one recovery-FSM activation (failure detected, connection torn
  /// down) and emit its kSession trace span.
  void note_reconnect(ReconnectCause cause);
  /// Forced mid-call teardown: the FaultPlan connection-kill hook.
  void kill_connection(const ConnectionPtr& conn, net::Address addr);

  cluster::Host& host_;
  net::SocketTable& sockets_;
  net::Transport transport_;
  std::map<net::Address, std::shared_ptr<Connection>> connections_;
};

}  // namespace rpcoib::rpc
