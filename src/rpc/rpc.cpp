#include "rpc/rpc.hpp"

#include <string>

#include "trace/trace.hpp"

namespace rpcoib::rpc {

sim::Co<void> RpcClient::call(net::Address addr, const MethodKey& key, const Writable& param,
                              Writable* response) {
  // One id per *logical* call: retried attempts re-send it, which is what
  // lets the server-side retry cache recognize duplicates.
  const std::uint64_t call_id = next_call_id_++;
  if (!retry_.enabled()) {
    co_await call_attempt(addr, key, param, response, call_id, false);
    if (session_.enabled) session_confirmed_.insert(addr);
    co_return;
  }

  cluster::Host& h = host();
  trace::TraceCollector* tr = trace::active(h.tracer());
  // The ambient parent is single-shot; take it once and re-arm it for
  // every attempt so retried calls all parent to the same span.
  const trace::TraceContext parent = tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  const int max_attempts = retry_.max_retries + 1;
  const bool idempotent = retry_.idempotent(key);
  const sim::Time t_first = h.sched().now();
  // Attempts at this index are sent WITHOUT the retry flag; bumped past
  // the current attempt by a cold-start session restart (below), whose
  // resend must re-open the session as a fresh call.
  int fresh_attempt = 0;

  for (int attempt = 0;; ++attempt) {
    const sim::Time t0 = h.sched().now();
    bool failed = false;
    bool timed_out = false;
    bool busy = false;
    bool expired_cold = false;
    std::string err;
    try {
      trace::activate(tr, parent);
      co_await call_attempt(addr, key, param, response, call_id, attempt != fresh_attempt);
    } catch (const ServerBusyException& e) {
      failed = true;
      busy = true;
      err = e.what();
    } catch (const RpcTimeoutError& e) {
      failed = true;
      timed_out = true;
      err = e.what();
    } catch (const SessionExpiredException& e) {
      // The server lost (or superseded) the dedup state for this logical
      // call: another attempt could duplicate a completed execution, so
      // the failure is terminal — never retried. One case is provably
      // safe to resend: if no call has EVER completed on this session at
      // this address, and the bounce arrived within one lease of this
      // call's first attempt, then no earlier attempt can have executed —
      // an executed attempt would have opened the session (fresh calls
      // open; retried ones only execute through a live one) and the lease
      // hasn't elapsed since, so the server would have found it alive
      // instead of bouncing. That is the cold-start window on a lossy
      // datagram path: the session's first frame was lost and the flagged
      // retransmit met a server that had never seen the session. The
      // resend goes out fresh and (re-)opens the session with this call
      // id as the fence.
      const bool cold_start = session_.enabled && !session_confirmed_.contains(addr) &&
                              session_.lease > 0 &&
                              h.sched().now() - t_first < session_.lease;
      if (!cold_start || attempt + 1 >= max_attempts) throw;
      failed = true;
      expired_cold = true;
      err = e.what();
    } catch (const RpcTransportError& e) {
      // RemoteException is not caught: the server executed the handler,
      // so retrying cannot help and would be wrong for mutations.
      failed = true;
      err = e.what();
    }
    if (!failed) {
      if (session_.enabled) session_confirmed_.insert(addr);
      co_return;
    }

    if (busy) {
      ++stats_.busy_rejections;
    } else if (timed_out) {
      ++stats_.timeouts;
    } else if (expired_cold) {
      ++stats_.session_cold_restarts;
    } else {
      ++stats_.transport_errors;
    }
    if (tr != nullptr) {
      tr->add_complete(std::string(busy           ? "overload.busy:"
                                   : timed_out    ? "fault.timeout:"
                                   : expired_cold ? "session.cold_restart:"
                                                  : "fault.transport:") +
                           key.method,
                       trace::Kind::kClient,
                       busy           ? trace::Category::kOverload
                       : expired_cold ? trace::Category::kSession
                                      : trace::Category::kFault,
                       parent, h.id(), t0, h.sched().now());
    }
    // Shed calls were never executed, so "busy" is retryable regardless of
    // idempotency. Timeouts on a non-idempotent method are retryable when
    // the server dedups retries (retry_non_idempotent_on_timeout): the
    // next attempt rides the same connection, so the retry cache sees the
    // same owner key either way. Transport errors (a reconnect replaying
    // its in-flight calls) additionally require the session layer —
    // without it the cache is keyed by the dense conn id, which the
    // reconnect loses, so a completed-but-unanswered call would silently
    // re-execute on the new connection.
    const bool retryable =
        expired_cold || busy || idempotent ||
        (retry_.retry_non_idempotent_on_timeout && (timed_out || session_.enabled));
    if (!retryable || attempt + 1 >= max_attempts) {
      const std::string what =
          key.to_string() + ": " + err + " (after " + std::to_string(attempt + 1) +
          (attempt == 0 ? " attempt)" : " attempts)");
      if (busy) throw ServerBusyException(what);
      if (timed_out) throw RpcTimeoutError(what);
      throw RpcTransportError(what);
    }

    ++stats_.retries;
    if (expired_cold) fresh_attempt = attempt + 1;
    // A retry after a transport failure is a replay of an in-flight call
    // through the reconnect recovery machine (the next attempt's
    // get_connection re-bootstraps the torn-down peer). Gated on the
    // session knob like note_reconnect, so sessionless seeded reports
    // grow no reconnect rows and stay byte-identical.
    if (!busy && !timed_out && !expired_cold && session_.enabled) ++stats_.calls_replayed;
    const sim::Dur wait = retry_.backoff(attempt, h.rng());
    stats_.backoff_us.add(sim::to_us(wait));
    const sim::Time b0 = h.sched().now();
    co_await sim::delay(h.sched(), wait);
    if (tr != nullptr) {
      tr->add_complete("retry.backoff:" + key.method, trace::Kind::kInternal,
                       trace::Category::kRetry, parent, h.id(), b0, h.sched().now());
    }
  }
}

}  // namespace rpcoib::rpc
