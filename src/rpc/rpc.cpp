#include "rpc/rpc.hpp"

#include <string>

#include "trace/trace.hpp"

namespace rpcoib::rpc {

sim::Co<void> RpcClient::call(net::Address addr, const MethodKey& key, const Writable& param,
                              Writable* response) {
  // One id per *logical* call: retried attempts re-send it, which is what
  // lets the server-side retry cache recognize duplicates.
  const std::uint64_t call_id = next_call_id_++;
  if (!retry_.enabled()) {
    co_await call_attempt(addr, key, param, response, call_id, false);
    co_return;
  }

  cluster::Host& h = host();
  trace::TraceCollector* tr = trace::active(h.tracer());
  // The ambient parent is single-shot; take it once and re-arm it for
  // every attempt so retried calls all parent to the same span.
  const trace::TraceContext parent = tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  const int max_attempts = retry_.max_retries + 1;
  const bool idempotent = retry_.idempotent(key);

  for (int attempt = 0;; ++attempt) {
    const sim::Time t0 = h.sched().now();
    bool failed = false;
    bool timed_out = false;
    bool busy = false;
    std::string err;
    try {
      trace::activate(tr, parent);
      co_await call_attempt(addr, key, param, response, call_id, attempt > 0);
    } catch (const ServerBusyException& e) {
      failed = true;
      busy = true;
      err = e.what();
    } catch (const RpcTimeoutError& e) {
      failed = true;
      timed_out = true;
      err = e.what();
    } catch (const SessionExpiredException&) {
      // The server lost (or superseded) the dedup state for this logical
      // call: another attempt could duplicate a completed execution, so
      // the failure is terminal — never retried.
      throw;
    } catch (const RpcTransportError& e) {
      // RemoteException is not caught: the server executed the handler,
      // so retrying cannot help and would be wrong for mutations.
      failed = true;
      err = e.what();
    }
    if (!failed) co_return;

    if (busy) {
      ++stats_.busy_rejections;
    } else if (timed_out) {
      ++stats_.timeouts;
    } else {
      ++stats_.transport_errors;
    }
    if (tr != nullptr) {
      tr->add_complete(std::string(busy        ? "overload.busy:"
                                   : timed_out ? "fault.timeout:"
                                               : "fault.transport:") +
                           key.method,
                       trace::Kind::kClient,
                       busy ? trace::Category::kOverload : trace::Category::kFault, parent,
                       h.id(), t0, h.sched().now());
    }
    // Shed calls were never executed, so "busy" is retryable regardless of
    // idempotency. Timeouts on a non-idempotent method are retryable when
    // the server dedups retries (retry_non_idempotent_on_timeout): the
    // next attempt rides the same connection, so the retry cache sees the
    // same owner key either way. Transport errors (a reconnect replaying
    // its in-flight calls) additionally require the session layer —
    // without it the cache is keyed by the dense conn id, which the
    // reconnect loses, so a completed-but-unanswered call would silently
    // re-execute on the new connection.
    const bool retryable =
        busy || idempotent ||
        (retry_.retry_non_idempotent_on_timeout && (timed_out || session_.enabled));
    if (!retryable || attempt + 1 >= max_attempts) {
      const std::string what =
          key.to_string() + ": " + err + " (after " + std::to_string(attempt + 1) +
          (attempt == 0 ? " attempt)" : " attempts)");
      if (busy) throw ServerBusyException(what);
      if (timed_out) throw RpcTimeoutError(what);
      throw RpcTransportError(what);
    }

    ++stats_.retries;
    // A retry after a transport failure is a replay of an in-flight call
    // through the reconnect recovery machine (the next attempt's
    // get_connection re-bootstraps the torn-down peer). Gated on the
    // session knob like note_reconnect, so sessionless seeded reports
    // grow no reconnect rows and stay byte-identical.
    if (!busy && !timed_out && session_.enabled) ++stats_.calls_replayed;
    const sim::Dur wait = retry_.backoff(attempt, h.rng());
    stats_.backoff_us.add(sim::to_us(wait));
    const sim::Time b0 = h.sched().now();
    co_await sim::delay(h.sched(), wait);
    if (tr != nullptr) {
      tr->add_complete("retry.backoff:" + key.method, trace::Kind::kInternal,
                       trace::Category::kRetry, parent, h.id(), b0, h.sched().now());
    }
  }
}

}  // namespace rpcoib::rpc
