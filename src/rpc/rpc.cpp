#include "rpc/rpc.hpp"

#include <string>

#include "trace/trace.hpp"

namespace rpcoib::rpc {

sim::Co<void> RpcClient::call(net::Address addr, const MethodKey& key, const Writable& param,
                              Writable* response) {
  if (!retry_.enabled()) {
    co_await call_attempt(addr, key, param, response);
    co_return;
  }

  cluster::Host& h = host();
  trace::TraceCollector* tr = trace::active(h.tracer());
  // The ambient parent is single-shot; take it once and re-arm it for
  // every attempt so retried calls all parent to the same span.
  const trace::TraceContext parent = tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  // A lost reply does not prove a non-idempotent call never executed, so
  // such methods get exactly one attempt (Hadoop's TRY_ONCE_THEN_FAIL).
  const int attempts_allowed = retry_.idempotent(key) ? retry_.max_retries + 1 : 1;

  for (int attempt = 0;; ++attempt) {
    const sim::Time t0 = h.sched().now();
    bool failed = false;
    bool timed_out = false;
    std::string err;
    try {
      trace::activate(tr, parent);
      co_await call_attempt(addr, key, param, response);
    } catch (const RpcTimeoutError& e) {
      failed = true;
      timed_out = true;
      err = e.what();
    } catch (const RpcTransportError& e) {
      // RemoteException is not caught: the server executed the handler,
      // so retrying cannot help and would be wrong for mutations.
      failed = true;
      err = e.what();
    }
    if (!failed) co_return;

    if (timed_out) {
      ++stats_.timeouts;
    } else {
      ++stats_.transport_errors;
    }
    if (tr != nullptr) {
      tr->add_complete(std::string(timed_out ? "fault.timeout:" : "fault.transport:") +
                           key.method,
                       trace::Kind::kClient, trace::Category::kFault, parent, h.id(), t0,
                       h.sched().now());
    }
    if (attempt + 1 >= attempts_allowed) {
      const std::string what =
          key.to_string() + ": " + err + " (after " + std::to_string(attempt + 1) +
          (attempt == 0 ? " attempt)" : " attempts)");
      if (timed_out) throw RpcTimeoutError(what);
      throw RpcTransportError(what);
    }

    ++stats_.retries;
    const sim::Dur wait = retry_.backoff(attempt, h.rng());
    stats_.backoff_us.add(sim::to_us(wait));
    const sim::Time b0 = h.sched().now();
    co_await sim::delay(h.sched(), wait);
    if (tr != nullptr) {
      tr->add_complete("retry.backoff:" + key.method, trace::Kind::kInternal,
                       trace::Category::kRetry, parent, h.id(), b0, h.sched().now());
    }
  }
}

}  // namespace rpcoib::rpc
