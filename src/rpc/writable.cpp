#include "rpc/writable.hpp"

#include <bit>
#include <cstring>

namespace rpcoib::rpc {

namespace {

template <typename T>
void store_be(net::Byte* dst, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    dst[i] = static_cast<net::Byte>(v >> (8 * (sizeof(T) - 1 - i)));
  }
}

template <typename T>
T load_be(const net::Byte* src) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v = static_cast<T>((v << 8) | src[i]);
  }
  return v;
}

}  // namespace

void DataOutput::write_u16(std::uint16_t v) {
  accrue(cost_model().field_op());
  net::Byte b[2];
  store_be(b, v);
  write_raw(net::ByteSpan(b, 2));
}

void DataOutput::write_u32(std::uint32_t v) {
  accrue(cost_model().field_op());
  net::Byte b[4];
  store_be(b, v);
  write_raw(net::ByteSpan(b, 4));
}

void DataOutput::write_u64(std::uint64_t v) {
  accrue(cost_model().field_op());
  net::Byte b[8];
  store_be(b, v);
  write_raw(net::ByteSpan(b, 8));
}

void DataOutput::write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

// WritableUtils.writeVLong, Hadoop's exact encoding: values in [-112, 127]
// are one byte; otherwise the first byte encodes sign and byte count
// (-113..-120 positive len 1..8, -121..-128 negative len 1..8), followed by
// the magnitude bytes, big-endian, without leading zeros.
void DataOutput::write_vi64(std::int64_t i) {
  accrue(cost_model().field_op());
  if (i >= -112 && i <= 127) {
    const auto b = static_cast<net::Byte>(static_cast<std::int8_t>(i));
    write_raw(net::ByteSpan(&b, 1));
    return;
  }
  int len = -112;
  std::uint64_t mag;
  if (i < 0) {
    mag = static_cast<std::uint64_t>(~i);  // i ^= -1 in Hadoop
    len = -120;
  } else {
    mag = static_cast<std::uint64_t>(i);
  }
  std::uint64_t tmp = mag;
  while (tmp != 0) {
    tmp >>= 8;
    --len;
  }
  net::Byte buf[9];
  buf[0] = static_cast<net::Byte>(static_cast<std::int8_t>(len));
  const int n = (len < -120) ? -(len + 120) : -(len + 112);
  for (int idx = n; idx != 0; --idx) {
    const int shift = (idx - 1) * 8;
    buf[n - idx + 1] = static_cast<net::Byte>((mag >> shift) & 0xFF);
  }
  write_raw(net::ByteSpan(buf, static_cast<std::size_t>(n) + 1));
}

void DataOutput::write_text(const std::string& s) {
  write_vi64(static_cast<std::int64_t>(s.size()));
  accrue(cost_model().field_op());
  write_raw(net::ByteSpan(reinterpret_cast<const net::Byte*>(s.data()), s.size()));
}

void DataOutput::write_bytes(net::ByteSpan data) {
  write_u32(static_cast<std::uint32_t>(data.size()));
  accrue(cost_model().field_op());
  write_raw(data);
}

std::uint16_t DataInput::read_u16() {
  accrue(cost_model().field_op());
  net::Byte b[2];
  read_raw(net::MutByteSpan(b, 2));
  return load_be<std::uint16_t>(b);
}

std::uint32_t DataInput::read_u32() {
  accrue(cost_model().field_op());
  net::Byte b[4];
  read_raw(net::MutByteSpan(b, 4));
  return load_be<std::uint32_t>(b);
}

std::uint64_t DataInput::read_u64() {
  accrue(cost_model().field_op());
  net::Byte b[8];
  read_raw(net::MutByteSpan(b, 8));
  return load_be<std::uint64_t>(b);
}

double DataInput::read_f64() { return std::bit_cast<double>(read_u64()); }

std::int64_t DataInput::read_vi64() {
  accrue(cost_model().field_op());
  net::Byte first;
  read_raw(net::MutByteSpan(&first, 1));
  const auto fb = static_cast<std::int8_t>(first);
  if (fb >= -112) return fb;
  const bool neg = fb < -120;
  const int n = neg ? -(fb + 120) : -(fb + 112);
  std::uint64_t mag = 0;
  for (int i = 0; i < n; ++i) {
    net::Byte b;
    read_raw(net::MutByteSpan(&b, 1));
    mag = (mag << 8) | b;
  }
  return neg ? ~static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

std::int32_t DataInput::read_vi32() {
  const std::int64_t v = read_vi64();
  if (v < INT32_MIN || v > INT32_MAX) throw SerializationError("vint out of int32 range");
  return static_cast<std::int32_t>(v);
}

std::string DataInput::read_text() {
  const std::int64_t len = read_vi64();
  if (len < 0 || static_cast<std::size_t>(len) > remaining()) {
    throw SerializationError("bad text length");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  // new String(bytes): a heap allocation plus the copy out of the stream.
  accrue_alloc(cost_model().heap_alloc(s.size()));
  accrue(cost_model().field_op() + cost_model().heap_copy(s.size()));
  read_raw(net::MutByteSpan(reinterpret_cast<net::Byte*>(s.data()), s.size()));
  return s;
}

net::Bytes DataInput::read_bytes() {
  const std::uint32_t len = read_u32();
  if (len > remaining()) throw SerializationError("bad bytes length");
  net::Bytes b(len);
  // BytesWritable.readFields: setCapacity() allocates the backing array,
  // then in.readFully copies into it.
  accrue_alloc(cost_model().heap_alloc(len));
  accrue(cost_model().field_op() + cost_model().heap_copy(len));
  read_raw(b);
  return b;
}

}  // namespace rpcoib::rpc
