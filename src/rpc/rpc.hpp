// Abstract RPC endpoints.
//
// Everything above the RPC layer (HDFS, MapReduce, HBase) talks to these
// interfaces; whether calls ride the default socket path or RPCoIB is a
// configuration switch (the paper's `rpc.ib.enabled`), so integrated
// experiments can flip transports without touching the components.
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "cluster/host.hpp"
#include "net/socket.hpp"
#include "rpc/batch.hpp"
#include "rpc/overload.hpp"
#include "rpc/protocol.hpp"
#include "rpc/retry.hpp"
#include "rpc/session.hpp"
#include "rpc/stats.hpp"
#include "rpc/writable.hpp"
#include "sim/task.hpp"

namespace rpcoib::rpc {

/// Sink for the one-sided read plane: application servers (NameNode,
/// RegionServer) push the serialized response bytes for an entity here
/// whenever the backing state changes, and the transport exports them to
/// its registered seqlock region. An empty payload retracts the entry
/// (tombstone -> clients miss and fall back to RPC).
class OneSidedPublisher {
 public:
  virtual ~OneSidedPublisher() = default;
  virtual void publish(const std::string& key, net::ByteSpan payload) = 0;
};

/// Canonical region-entry key for a published response: clients and
/// servers must derive it identically for the fast path to hit.
inline std::string onesided_entry_key(const std::string& protocol,
                                      const std::string& method,
                                      const std::string& entity) {
  return protocol + "/" + method + ":" + entity;
}

class RpcClient {
 public:
  virtual ~RpcClient() {
    if (on_destroy_) on_destroy_(stats_);
  }

  /// Observer invoked with the final stats when the client dies (the
  /// engine uses this to keep Table I aggregation safe across short-lived
  /// clients).
  void set_on_destroy(std::function<void(const RpcStats&)> fn) {
    on_destroy_ = std::move(fn);
  }

  /// Invoke `key` on the server at `addr` with `param`; on success the
  /// reply is deserialized into `*response` (pass nullptr to discard).
  /// Throws RemoteException for handler errors, RpcTransportError for
  /// connection failures, RpcTimeoutError when the retry policy's call
  /// timeout expires. With a retry policy set, failed attempts on
  /// idempotent methods are re-issued after an exponential backoff; both
  /// transports run the same loop, implemented over call_attempt().
  sim::Co<void> call(net::Address addr, const MethodKey& key, const Writable& param,
                     Writable* response);

  virtual cluster::Host& host() const = 0;

  void set_retry_policy(RpcRetryPolicy p) { retry_ = std::move(p); }
  const RpcRetryPolicy& retry_policy() const { return retry_; }

  /// Small-message coalescing knobs. Set before the first call; the
  /// default keeps the seed's one-frame-per-call wire format.
  void set_batch(BatchConfig cfg) { batch_ = cfg; }
  const BatchConfig& batch() const { return batch_; }

  /// Durable-session knobs. Set before the first call; the default
  /// (disabled) mints no session id and keeps the wire format
  /// byte-identical to a sessionless build.
  void set_session(SessionConfig cfg) { session_ = cfg; }
  const SessionConfig& session() const { return session_; }

  RpcStats& stats() { return stats_; }
  const RpcStats& stats() const { return stats_; }

 protected:
  /// One transport-level attempt (no retries). The transport honors
  /// retry_policy().call_timeout by failing the attempt with
  /// RpcTimeoutError once the deadline passes. `call_id` is allocated by
  /// call() once per *logical* call, so every attempt of a retried call
  /// carries the same id — the key the server's retry cache dedups on.
  /// `retried` is true on attempts > 0; with sessions enabled the
  /// transport stamps it on the wire (kWireRetryFlag) so the server can
  /// bounce a retry whose session lease already expired.
  virtual sim::Co<void> call_attempt(net::Address addr, const MethodKey& key,
                                     const Writable& param, Writable* response,
                                     std::uint64_t call_id, bool retried) = 0;

  /// The client's stable session id, minted on first use from the host's
  /// seeded RNG (top bit set so it can never collide with a dense
  /// server-side connection id). 0 when the session layer is off — the
  /// handshake then carries no session bytes.
  std::uint64_t session_id(cluster::Host& h) {
    if (!session_.enabled) return 0;
    if (session_id_ == 0) session_id_ = h.rng().next_u64() | (1ULL << 63);
    return session_id_;
  }

  RpcStats stats_;
  RpcRetryPolicy retry_;
  BatchConfig batch_;
  SessionConfig session_;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_call_id_ = 1;
  /// Addresses where at least one call has completed successfully, i.e.
  /// the server has provably opened this client's session. Until then a
  /// session-expired bounce can be the cold-start case (the session's
  /// very first datagram was lost on a lossy path) and call() may resend
  /// as fresh; afterwards the bounce is always terminal.
  std::set<net::Address> session_confirmed_;

 private:
  std::function<void(const RpcStats&)> on_destroy_;
};

class RpcServer {
 public:
  virtual ~RpcServer() = default;

  /// Method registry; populate before start().
  Dispatcher& dispatcher() { return dispatcher_; }

  /// Spawn the server's threads (Listener/Reader/Handlers/Responder).
  virtual void start() = 0;

  /// Tear down: stop accepting, close connections, drain threads. After
  /// stop() the simulation can run to quiescence.
  virtual void stop() = 0;

  /// Server-side counters. Sharded servers override this to fold their
  /// per-shard stat blocks into one view on demand (the per-shard blocks
  /// stay single-writer; only this read path aggregates).
  virtual RpcStats& stats() { return stats_; }
  virtual const RpcStats& stats() const { return stats_; }

  /// Overload-protection knobs (bounded queue, admission policy, retry
  /// cache). Set before start(); the default keeps the seed's unbounded
  /// behavior.
  void set_overload(OverloadConfig cfg) { overload_ = cfg; }
  const OverloadConfig& overload() const { return overload_; }

  /// Response-coalescing knobs (mirrors the client's call coalescing).
  /// Set before start(); the default keeps one frame per response.
  void set_batch(BatchConfig cfg) { batch_ = cfg; }
  const BatchConfig& batch() const { return batch_; }

  /// Durable-session knobs (lease, per-shard table cap). Set before
  /// start(); disabled by default.
  void set_session(SessionConfig cfg) { session_ = cfg; }
  const SessionConfig& session() const { return session_; }

  /// The server's one-sided publish sink, or nullptr when the transport
  /// has no exported region (socket servers, onesided.enabled=false).
  /// Application servers gate their publish calls on this.
  virtual OneSidedPublisher* onesided() { return nullptr; }

 protected:
  Dispatcher dispatcher_;
  RpcStats stats_;
  OverloadConfig overload_;
  BatchConfig batch_;
  SessionConfig session_;
};

}  // namespace rpcoib::rpc
