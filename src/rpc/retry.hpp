// Client-side resilience policy: call timeouts, bounded retries with
// exponential backoff and deterministic jitter, and per-method idempotency.
//
// Hadoop's RPC client retries at the protocol layer (RetryPolicies /
// RetryProxy); here the policy lives on the abstract RpcClient so the
// socket and RPCoIB transports honor identical semantics — the property
// the chaos suite asserts. Jitter draws from the calling host's seeded
// RNG, so a retry schedule is as reproducible as everything else in the
// simulation.
#pragma once

#include <set>
#include <string>

#include "rpc/protocol.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rpcoib::rpc {

/// Raised when a call's reply did not arrive within `call_timeout`.
/// A subtype of RpcTransportError so existing catch sites keep working.
class RpcTimeoutError : public RpcTransportError {
 public:
  explicit RpcTimeoutError(const std::string& what) : RpcTransportError(what) {}
};

struct RpcRetryPolicy {
  /// Per-attempt reply deadline; 0 = wait forever (the seed behavior).
  sim::Dur call_timeout = 0;
  /// Extra attempts after the first; 0 disables retries.
  int max_retries = 0;
  /// Backoff before retry k is base * 2^k, capped, plus jitter in
  /// [0, backoff/2] drawn from the caller's seeded RNG.
  sim::Dur backoff_base = sim::millis(20);
  sim::Dur backoff_cap = sim::seconds(5);
  /// Methods that must NOT be retried (a lost reply does not prove the
  /// server never executed the call), keyed by MethodKey::to_string().
  std::set<std::string> non_idempotent;
  /// Allow non-idempotent methods to retry after a timeout — and, with
  /// the durable session layer enabled, after a transport error
  /// (connection loss) too. Only safe against servers running a retry
  /// cache: attempts of one logical call share a call id, and a completed
  /// first attempt is answered from the cache instead of re-executed.
  /// Timeout retries ride the same connection, so the conn-keyed cache
  /// dedups them even without sessions; transport-error retries cross a
  /// reconnect, which loses the dense conn id, so they are attempted only
  /// when sessions key the cache durably. ServerBusyException never needs
  /// this switch — shed calls were never executed.
  bool retry_non_idempotent_on_timeout = false;

  bool enabled() const { return call_timeout > 0 || max_retries > 0; }

  bool idempotent(const MethodKey& key) const {
    return non_idempotent.find(key.to_string()) == non_idempotent.end();
  }

  sim::Dur backoff(int attempt, sim::Rng& rng) const {
    sim::Dur d = backoff_base;
    for (int i = 0; i < attempt && d < backoff_cap; ++i) d *= 2;
    if (d > backoff_cap) d = backoff_cap;
    return d + static_cast<sim::Dur>(rng.next_below(d / 2 + 1));
  }
};

}  // namespace rpcoib::rpc
