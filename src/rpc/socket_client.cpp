#include "rpc/socket_client.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "rpc/buffers.hpp"
#include "trace/trace.hpp"

namespace rpcoib::rpc {

namespace {
// Connection header written once per connection, like Hadoop's
// "hrpc" + version preamble.
constexpr net::Byte kRpcMagic[] = {'h', 'r', 'p', 'c', 4};
// Version-5 preamble announces a durable session: the magic is followed
// by the client's 64-bit session id. Only sent with sessions enabled, so
// the default handshake stays byte-identical to version 4.
constexpr net::Byte kRpcMagicSession[] = {'h', 'r', 'p', 'c', 5};
}  // namespace

SocketRpcClient::SocketRpcClient(cluster::Host& host, net::SocketTable& sockets,
                                 net::Transport transport)
    : host_(host), sockets_(sockets), transport_(transport) {}

SocketRpcClient::~SocketRpcClient() { close_connections(); }

void SocketRpcClient::close_connections() {
  for (auto& [addr, conn] : connections_) {
    // Cancel before closing: the receiver may be suspended mid-read and
    // resume after this client is gone — it must observe `cancelled` and
    // bail instead of touching half-destroyed state. Pending batch flush
    // timers stand down the same way.
    conn->cancelled = true;
    if (conn->sock) conn->sock->close();
    fail_all(*conn, "client shutdown");
  }
  connections_.clear();
}

void SocketRpcClient::fail_all(Connection& conn, const std::string& why) {
  conn.broken = true;
  conn.recovery = Recovery::kTornDown;
  for (auto& [id, pc] : conn.pending) {
    pc->error = true;
    pc->error_msg = why;
    pc->done.set();
  }
  conn.pending.clear();
}

sim::Co<SocketRpcClient::ConnectionPtr> SocketRpcClient::get_connection(net::Address addr) {
  for (;;) {
    auto it = connections_.find(addr);
    if (it == connections_.end()) break;
    ConnectionPtr conn = it->second;
    if (conn->broken) {
      connections_.erase(it);
      break;
    }
    co_await conn->ready.wait();  // another caller may still be handshaking
    if (!conn->broken) co_return conn;
    // Woke up on a broken connection. While we were suspended another
    // waiter may already have replaced the map entry with a fresh
    // connection; blindly erasing and reconnecting here would orphan that
    // replacement's receiver and strand its pending calls. Erase only if
    // the map still points at *our* broken connection, then loop: the
    // retry adopts any replacement instead of clobbering it.
    auto it2 = connections_.find(addr);
    if (it2 != connections_.end() && it2->second == conn) connections_.erase(it2);
  }

  auto raw = std::make_shared<Connection>(host_.sched(), batch_);
  connections_[addr] = raw;
  try {
    raw->sock = co_await sockets_.connect(host_, addr, transport_);
    if (const std::uint64_t sid = session_id(host_); sid != 0) {
      // Session handshake: v5 magic + the durable session id. The server
      // keys retry-cache state by it, so dedup survives this connection.
      net::Bytes pre(sizeof(kRpcMagicSession) + sizeof(sid));
      std::memcpy(pre.data(), kRpcMagicSession, sizeof(kRpcMagicSession));
      std::memcpy(pre.data() + sizeof(kRpcMagicSession), &sid, sizeof(sid));
      co_await raw->sock->write(pre);
    } else {
      co_await raw->sock->write(net::ByteSpan(kRpcMagic, sizeof(kRpcMagic)));
    }
  } catch (const net::SocketError& e) {
    raw->ready.set();
    fail_all(*raw, e.what());
    // Drop our corpse unless a concurrent caller already replaced it.
    auto it = connections_.find(addr);
    if (it != connections_.end() && it->second == raw) connections_.erase(it);
    throw RpcTransportError(e.what());
  }
  raw->receiver = host_.sched().spawn(receive_loop(raw));
  raw->ready.set();
  raw->recovery = Recovery::kHealthy;
  ++stats_.connections_opened;
  co_return raw;
}

void SocketRpcClient::note_reconnect(ReconnectCause cause) {
  // Reconnect accounting rides the session knob: with sessions off the
  // counters stay zero, the report grows no rows, and seeded sessionless
  // runs stay byte-identical to a build without the session layer.
  if (!session_.enabled) return;
  switch (cause) {
    case ReconnectCause::kPeerClosed: ++stats_.reconnects_peer_closed; break;
    case ReconnectCause::kQpError: ++stats_.reconnects_qp_error; break;
    case ReconnectCause::kIdleEvicted: ++stats_.reconnects_idle_evicted; break;
    case ReconnectCause::kFaultInjected: ++stats_.reconnects_fault_injected; break;
  }
  if (trace::TraceCollector* tr = trace::active(host_.tracer()); tr != nullptr) {
    const sim::Time now = host_.sched().now();
    tr->add_complete(std::string("reconnect.") + reconnect_cause_name(cause),
                     trace::Kind::kClient, trace::Category::kSession, {}, host_.id(),
                     now, now);
  }
}

void SocketRpcClient::kill_connection(const ConnectionPtr& conn, net::Address addr) {
  // FaultPlan connection kill: forced close with the request already on
  // the wire — the server may still execute and respond into the void,
  // which is exactly the duplicate-execution window the session-keyed
  // retry cache must close. Cancel first so the receiver stands down
  // instead of double-failing the pending map.
  conn->cancelled = true;
  if (conn->sock) conn->sock->close();
  fail_all(*conn, "connection killed (injected fault)");
  note_reconnect(ReconnectCause::kFaultInjected);
  auto it = connections_.find(addr);
  if (it != connections_.end() && it->second == conn) connections_.erase(it);
}

sim::Co<void> SocketRpcClient::deliver_one(cluster::Host& host, Connection& conn,
                                           net::ByteSpan payload) {
  const cluster::CostModel& cm = host.cost();
  DataInputBuffer in(cm, payload);
  const std::uint64_t id = in.read_u64();
  const std::uint8_t status = in.read_u8();
  auto it = conn.pending.find(id);
  if (it == conn.pending.end()) co_return;  // call raced a timeout; drop
  PendingCall* pc = it->second;
  conn.pending.erase(it);
  if (status != static_cast<std::uint8_t>(RpcStatus::kSuccess)) {
    pc->error = true;
    pc->busy = status == static_cast<std::uint8_t>(RpcStatus::kBusy);
    pc->session_expired = status == static_cast<std::uint8_t>(RpcStatus::kSessionExpired);
    pc->error_msg = in.read_text();
  } else {
    pc->value.assign(payload.begin() + static_cast<std::ptrdiff_t>(in.position()),
                     payload.end());
  }
  co_await host.compute(in.take_accrued() + cm.thread_wakeup() + cm.rpc_framework());
  pc->done.set();
}

sim::Task SocketRpcClient::receive_loop(ConnectionPtr conn) {
  // Hoisted: this loop may outlive the client object; after the first
  // suspension it only touches the host and the shared connection.
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  try {
    for (;;) {
      // Listing 2's client twin: 4-byte length buffer, then a fresh heap
      // buffer per response, with the native->heap copy.
      net::Bytes len_buf(4);
      co_await conn->sock->read_full(len_buf);
      if (conn->cancelled) co_return;
      co_await host.compute(2 * cm.syscall() + cm.heap_alloc(4));
      DataInputBuffer len_in(cm, len_buf);
      const std::uint32_t len = len_in.read_u32();

      net::Bytes data(len);
      co_await host.compute(cm.heap_alloc(len));
      co_await conn->sock->read_full(data);
      if (conn->cancelled) co_return;
      co_await host.compute(cm.native_copy(len));
      if (conn->cancelled) co_return;

      // A response frame whose first word carries kWireBatchFlag is a
      // server-coalesced batch; each sub-message is laid out exactly like
      // a standalone response payload. Batches are always understood —
      // the local config only gates what *we* emit.
      DataInputBuffer peek(cm, data);
      const std::uint64_t first = peek.read_u64();
      if ((first & trace::kWireBatchFlag) != 0) {
        const std::size_t count = first & kWireBatchCountMask;
        std::vector<std::uint32_t> lens(count);
        for (std::size_t i = 0; i < count; ++i) lens[i] = peek.read_u32();
        std::size_t off = peek.position();
        co_await host.compute(peek.take_accrued());
        for (std::size_t i = 0; i < count; ++i) {
          if (conn->cancelled) co_return;
          co_await deliver_one(host, *conn, net::ByteSpan(data).subspan(off, lens[i]));
          off += lens[i];
        }
      } else {
        co_await deliver_one(host, *conn, net::ByteSpan(data));
      }
    }
  } catch (const net::SocketError& e) {
    // EOF / reset from the remote end. `cancelled` doubles as a liveness
    // guard for the client object: close_connections() (also run by the
    // destructor) sets it before this loop can resume, so touching the
    // client's stats here is safe when it is still false.
    if (!conn->cancelled) {
      fail_all(*conn, e.what());
      note_reconnect(ReconnectCause::kPeerClosed);
    }
  }
}

sim::Co<void> SocketRpcClient::append_to_batch(ConnectionPtr conn, net::Bytes payload,
                                               const trace::TraceContext& ctx) {
  CallBatcher& b = conn->batcher;
  const bool was_empty = b.empty();
  if (was_empty && ctx.valid()) conn->batch_ctx = ctx;
  b.append(std::move(payload), host_.sched().now());
  ++stats_.batched_calls;
  if (b.full()) {
    ++stats_.batch_flush_full;
    co_await flush_batch(conn);
  } else if (was_empty) {
    host_.sched().spawn(batch_timer(conn, b.epoch(), b.adaptive_linger()));
  }
}

sim::Task SocketRpcClient::batch_timer(ConnectionPtr conn, std::uint64_t epoch,
                                       sim::Dur linger) {
  // A zero linger still suspends one scheduler tick, so same-timestamp
  // arrivals coalesce while a lone caller's flush happens "now".
  sim::Scheduler& sched = host_.sched();
  co_await sim::delay(sched, linger);
  if (conn->cancelled || conn->broken) co_return;
  const CallBatcher& b = conn->batcher;
  if (b.empty() || b.epoch() != epoch) co_return;  // a full() flush beat us
  if (linger > 0) {
    ++stats_.batch_flush_linger;
  } else {
    ++stats_.batch_flush_immediate;
  }
  co_await flush_batch(conn);
}

sim::Co<void> SocketRpcClient::flush_batch(ConnectionPtr conn) {
  CallBatcher& b = conn->batcher;
  if (b.empty()) co_return;
  // Hoisted for the same reason as receive_loop: the send mutex wait
  // below may outlive the client.
  cluster::Host& host = host_;
  const cluster::CostModel& cm = host.cost();
  trace::TraceCollector* tr = trace::active(host.tracer());
  const trace::TraceContext ctx = std::exchange(conn->batch_ctx, {});
  const sim::Time t0 = host.sched().now();

  std::vector<net::Bytes> items = b.take();
  std::size_t payload_bytes = 0;
  for (const net::Bytes& m : items) payload_bytes += m.size();
  // [u32 total][u64 kWireBatchFlag|count][u32 len_i x count][payload_i...]
  BufferedOutputStream out(cm);
  const std::size_t total = 8 + 4 * items.size() + payload_bytes;
  out.write_u32(static_cast<std::uint32_t>(total));
  out.write_u64(trace::kWireBatchFlag | static_cast<std::uint64_t>(items.size()));
  for (const net::Bytes& m : items) out.write_u32(static_cast<std::uint32_t>(m.size()));
  for (const net::Bytes& m : items) out.write_payload(net::ByteSpan(m));
  out.flush();
  const sim::Dur encode_cost = out.take_accrued();
  net::Bytes wire = out.take_pending();

  co_await conn->send_mu.lock();
  sim::SimLockGuard guard(conn->send_mu);
  // Client gone or connection failed while we waited: the batched calls'
  // pending entries were already completed with errors by fail_all.
  if (conn->cancelled || conn->broken) co_return;
  co_await host.compute(encode_cost);
  if (conn->cancelled || conn->broken) co_return;
  try {
    co_await conn->sock->write(wire);
  } catch (const net::SocketError& e) {
    if (!conn->cancelled) fail_all(*conn, e.what());
    co_return;
  }
  if (conn->cancelled) co_return;
  ++stats_.batches_sent;
  if (tr != nullptr && ctx.valid()) {
    tr->add_complete("batch.flush", trace::Kind::kClient, trace::Category::kSend, ctx,
                     host.id(), t0, host.sched().now());
  }
}

sim::Co<void> SocketRpcClient::call_attempt(net::Address addr, const MethodKey& key,
                                            const Writable& param, Writable* response,
                                            std::uint64_t call_id, bool retried) {
  // Consume the ambient trace parent before the first suspension point
  // (see trace.hpp's propagation discipline).
  trace::TraceCollector* tr = trace::active(host_.tracer());
  const trace::TraceContext t_parent =
      tr != nullptr ? tr->take_ambient() : trace::TraceContext{};
  const cluster::CostModel& cm = host_.cost();
  const sim::Time t_start = host_.sched().now();
  trace::SpanScope rpc(tr, "rpc:" + key.method, trace::Kind::kClient,
                       trace::Category::kWire, t_parent, host_.id());
  const trace::TraceContext ctx = rpc.context();
  ConnectionPtr conn = co_await get_connection(addr);
  // Shared Hadoop RPC framework cost (call table, synchronization).
  co_await host_.compute(cm.rpc_framework());

  // --- Serialization (Listing 1, lines 2-7) ---------------------------
  const sim::Time t_ser_start = host_.sched().now();
  DataOutputBuffer d(cm, kClientInitialBuffer);
  const std::uint64_t id = call_id;
  // Absolute deadline on the shared virtual clock: a conservative lower
  // bound on when this attempt gives up (the timeout wait starts after
  // the send completes). Only stamped when a call timeout is configured,
  // so the default wire format is byte-identical to the seed.
  const sim::Time deadline =
      retry_.call_timeout > 0 ? host_.sched().now() + retry_.call_timeout : 0;
  std::uint64_t wire_id = id;
  if (ctx.valid()) wire_id |= trace::kWireTraceFlag;
  if (deadline != 0) wire_id |= trace::kWireDeadlineFlag;
  // Retried attempts are marked only under the session layer: the server
  // uses the flag to bounce a retry whose session lease expired instead
  // of silently re-executing it. Sessionless wire stays byte-identical.
  if (retried && session_.enabled) wire_id |= trace::kWireRetryFlag;
  d.write_u64(wire_id);
  if (ctx.valid()) {
    // Flagged id announces two extra context words; untraced calls keep
    // the seed wire format byte-for-byte.
    d.write_u64(ctx.trace_id);
    d.write_u64(ctx.span_id);
  }
  if (deadline != 0) d.write_u64(deadline);
  d.write_text(key.protocol);
  d.write_text(key.method);
  param.write(d);
  co_await host_.compute(d.take_accrued());
  const sim::Time t_serialized = host_.sched().now();
  if (ctx.valid()) {
    tr->add_complete("serialize", trace::Kind::kInternal,
                     trace::Category::kSerialization, ctx, host_.id(), t_ser_start,
                     t_serialized);
  }

  PendingCall pc(host_.sched());
  if (!batch_.batchable(d.length())) {
    // --- Sending (Listing 1, lines 9-13) ------------------------------
    BufferedOutputStream out(cm);
    out.write_u32(static_cast<std::uint32_t>(d.length()));
    out.write_payload(d.data());
    out.flush();
    co_await host_.compute(out.take_accrued());

    conn->pending[id] = &pc;
    {
      co_await conn->send_mu.lock();
      sim::SimLockGuard guard(conn->send_mu);
      if (conn->broken) throw RpcTransportError("connection broken");
      const net::Bytes wire = out.take_pending();
      co_await conn->sock->write(wire);
    }
  } else {
    // Coalescing path: buffer the payload (one heap copy) and let the
    // batcher decide when the connection's next multi-call frame goes out.
    if (conn->broken) throw RpcTransportError("connection broken");
    conn->pending[id] = &pc;
    net::Bytes payload(d.data().begin(), d.data().end());
    co_await host_.compute(cm.heap_copy(d.length()));
    co_await append_to_batch(conn, std::move(payload), ctx);
  }
  const sim::Time t_sent = host_.sched().now();
  if (ctx.valid()) {
    tr->add_complete("send", trace::Kind::kInternal, trace::Category::kSend, ctx,
                     host_.id(), t_serialized, t_sent);
  }

  // Connection-kill fault hook: the request is on the wire, so the server
  // side may execute it — the retry that follows the teardown is the
  // exactly-once case the durable session dedup covers.
  if (net::FaultPlan* plan = sockets_.fabric().fault_plan();
      plan != nullptr && plan->kills_enabled() && !conn->broken &&
      plan->take_kill(host_.id(), addr.host, host_.sched().now())) {
    kill_connection(conn, addr);
  }

  // --- Profiling (Table I / Fig. 3 feeds) ------------------------------
  MethodProfile& prof = stats_.method(key);
  prof.mem_adjustments.add(static_cast<double>(d.stats().mem_adjustments));
  prof.serialize_us.add(sim::to_us(t_serialized - t_start));
  prof.send_us.add(sim::to_us(t_sent - t_serialized));
  prof.msg_bytes.add(static_cast<double>(d.length()));
  stats_.record_size(prof, static_cast<std::uint32_t>(d.length()));
  ++stats_.calls_sent;

  if (const sim::Dur deadline = retry_.call_timeout; deadline > 0) {
    const bool completed = co_await pc.done.wait_for(deadline);
    if (!completed) {
      // Unregister so a late reply is dropped by the receive loop instead
      // of touching this (about to be destroyed) PendingCall.
      conn->pending.erase(id);
      throw RpcTimeoutError("call timed out after " +
                            std::to_string(sim::to_ms(deadline)) + " ms");
    }
  } else {
    co_await pc.done.wait();
  }
  if (pc.error) {
    conn->pending.erase(id);
    // A session-expired verdict outranks a later connection failure: the
    // server has ruled the logical call undedupable, so it must surface
    // terminally, not as a retryable transport error.
    if (pc.session_expired) throw SessionExpiredException(pc.error_msg);
    if (conn->broken) throw RpcTransportError(pc.error_msg);
    if (pc.busy) throw ServerBusyException(pc.error_msg);
    throw RemoteException(pc.error_msg);
  }
  if (response != nullptr) {
    const sim::Time t_deser = host_.sched().now();
    DataInputBuffer in(cm, pc.value);
    response->read_fields(in);
    co_await host_.compute(in.take_accrued());
    if (ctx.valid()) {
      tr->add_complete("deserialize", trace::Kind::kInternal,
                       trace::Category::kSerialization, ctx, host_.id(), t_deser,
                       host_.sched().now());
    }
  }
  prof.total_us.add(sim::to_us(host_.sched().now() - t_start));
  rpc.end();
}

}  // namespace rpcoib::rpc
