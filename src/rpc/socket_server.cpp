#include "rpc/socket_server.hpp"

#include <cstring>
#include <utility>

#include "rpc/buffers.hpp"
#include "trace/trace.hpp"

namespace rpcoib::rpc {

namespace {
/// Releases a Reader slot on scope exit (including exceptional exits).
class ReaderSlotGuard {
 public:
  explicit ReaderSlotGuard(sim::Semaphore& sem) : sem_(sem) {}
  ReaderSlotGuard(const ReaderSlotGuard&) = delete;
  ReaderSlotGuard& operator=(const ReaderSlotGuard&) = delete;
  ~ReaderSlotGuard() { sem_.release(); }

 private:
  sim::Semaphore& sem_;
};
}  // namespace

SocketRpcServer::SocketRpcServer(cluster::Host& host, net::SocketTable& sockets,
                                 net::Address addr, int num_handlers, int num_readers,
                                 int num_shards, bool steal)
    : host_(host),
      sockets_(sockets),
      addr_(addr),
      num_handlers_(num_handlers),
      num_readers_(num_readers),
      num_shards_(num_shards < 1 ? 1 : num_shards),
      steal_(steal) {}

SocketRpcServer::~SocketRpcServer() { stop(); }

void SocketRpcServer::start() {
  if (running_) return;
  running_ = true;
  shards_.clear();
  for (int i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        host_.sched(), static_cast<std::uint32_t>(i), overload_, num_readers_,
        shard_seed(host_.id(), static_cast<std::uint32_t>(i)), session_));
  }
  listener_ = &sockets_.listen(addr_);
  host_.sched().spawn(listener_loop());
  // Handlers split across shards (every shard keeps at least one); with
  // one shard the ids and spawn order are exactly the unsharded server's.
  int handler_id = 0;
  for (int i = 0; i < num_shards_; ++i) {
    int mine = num_handlers_ / num_shards_ + (i < num_handlers_ % num_shards_ ? 1 : 0);
    if (mine < 1) mine = 1;
    for (int h = 0; h < mine; ++h) {
      host_.sched().spawn(handler_loop(*shards_[static_cast<std::size_t>(i)], handler_id++));
    }
    host_.sched().spawn(responder_loop(*shards_[static_cast<std::size_t>(i)]));
  }
}

void SocketRpcServer::stop() {
  if (!running_) return;
  running_ = false;
  sockets_.unlisten(addr_);
  listener_ = nullptr;
  // Queued-but-unexecuted calls must not vanish silently: every shard
  // drains with accounting. Their callers observe a transport error when
  // the connections close below, so every dropped call is surfaced.
  for (auto& sh : shards_) {
    (void)sh->pipeline.drain();
    sh->pipeline.close();
  }
  for (auto& sh : shards_) {
    for (net::SocketPtr& c : sh->conns) c->close();
    sh->conns.clear();
  }
  // Accepted connections still parked on the preamble (sessions route to
  // a shard only after the handshake) live in no shard's list yet; close
  // them too so their reader tasks unwind instead of pending forever.
  for (net::SocketPtr& c : pending_conns_) c->close();
  pending_conns_.clear();
  // Executed-but-unsent responses are equally accounted: the handler ran,
  // but the responder never wrote the frame (callers see the closed
  // connection as a transport error and may retry via the retry cache).
  for (auto& sh : shards_) {
    Response resp;
    while (sh->response_queue.try_recv(resp)) {
      ++sh->pipeline.stats().responses_dropped_on_stop;
    }
    sh->response_queue.close();
  }
}

RpcStats& SocketRpcServer::stats() {
  sync_stats();
  return stats_;
}

const RpcStats& SocketRpcServer::stats() const {
  const_cast<SocketRpcServer*>(this)->sync_stats();
  return stats_;
}

void SocketRpcServer::sync_stats() {
  if (shards_.empty()) return;
  RpcStats agg;
  for (const auto& sh : shards_) {
    agg.merge_resilience(sh->pipeline.stats());
    agg.calls_handled += sh->pipeline.stats().calls_handled;
    agg.recv_alloc_us.merge(sh->pipeline.stats().recv_alloc_us);
    agg.recv_total_us.merge(sh->pipeline.stats().recv_total_us);
    agg.shards.push_back(sh->pipeline.counters());
  }
  // Only overwrite the shard-sourced fields; anything written directly to
  // stats_ by non-shard code stays untouched.
  stats_.calls_handled = agg.calls_handled;
  stats_.calls_shed = agg.calls_shed;
  stats_.calls_expired = agg.calls_expired;
  stats_.responses_expired = agg.responses_expired;
  stats_.dedup_hits = agg.dedup_hits;
  stats_.dedup_in_flight = agg.dedup_in_flight;
  stats_.dropped_on_stop = agg.dropped_on_stop;
  stats_.responses_dropped_on_stop = agg.responses_dropped_on_stop;
  stats_.queue_depth_peak = agg.queue_depth_peak;
  stats_.sessions_opened = agg.sessions_opened;
  stats_.sessions_expired = agg.sessions_expired;
  stats_.sessions_evicted = agg.sessions_evicted;
  stats_.sessions_rejected = agg.sessions_rejected;
  stats_.session_table_peak = agg.session_table_peak;
  stats_.batches_received = agg.batches_received;
  stats_.batched_calls_received = agg.batched_calls_received;
  stats_.response_batches = agg.response_batches;
  stats_.batched_responses = agg.batched_responses;
  stats_.recv_alloc_us = agg.recv_alloc_us;
  stats_.recv_total_us = agg.recv_total_us;
  stats_.shards = std::move(agg.shards);
}

sim::Task SocketRpcServer::listener_loop() {
  net::Listener* l = listener_;
  try {
    for (;;) {
      net::SocketPtr conn = co_await l->accept();
      const std::uint64_t conn_id = ++conn_seq_;
      // Stable affinity: a connection's shard is a pure function of its
      // dense id, so reconnects and seeded replays land deterministically.
      // With sessions enabled the shard is instead a function of the
      // session id carried in the preamble, so the reader picks it after
      // the handshake — a reconnecting client must land on the shard that
      // holds its session lease and retry-cache entries.
      Shard* home = nullptr;
      if (!session_.enabled) {
        home = shards_[(conn_id - 1) % shards_.size()].get();
        ++home->pipeline.counters().conns_assigned;
        home->conns.push_back(conn);
      } else {
        // Until the preamble names the session (and thus the shard), park
        // the socket where stop() can still find and close it.
        pending_conns_.push_back(conn);
      }
      host_.sched().spawn(reader_loop(std::move(conn), conn_id, home));
    }
  } catch (const sim::ChannelClosed&) {
    // stop() shut the listener down.
  }
}

net::Bytes SocketRpcServer::status_frame(std::uint64_t id, RpcStatus status,
                                         const std::string& msg) {
  const cluster::CostModel& cm = host_.cost();
  BufferedOutputStream frame(cm);
  DataOutputBuffer hdr(cm, kClientInitialBuffer);
  hdr.write_u64(id);
  hdr.write_u8(static_cast<std::uint8_t>(status));
  hdr.write_text(msg);
  frame.write_u32(static_cast<std::uint32_t>(hdr.length()));
  frame.write_payload(hdr.data());
  frame.flush();
  // Shedding is meant to be cheap: no CPU is modeled for the tiny frame.
  (void)hdr.take_accrued();
  (void)frame.take_accrued();
  return frame.take_pending();
}

void SocketRpcServer::shed(Shard& shard, const ServerCall& call) {
  shard.pipeline.note_shed();
  if (call.ctx.valid()) {
    if (trace::TraceCollector* tr = trace::active(host_.tracer())) {
      tr->add_complete("overload.shed:" + call.key.method, trace::Kind::kServer,
                       trace::Category::kOverload, call.ctx, host_.id(),
                       call.enqueued != 0 ? call.enqueued : call.recv_start,
                       host_.sched().now());
    }
  }
  shard.response_queue.push(Response{
      call.conn, status_frame(call.id, RpcStatus::kBusy, "server busy: call queue full")});
}

void SocketRpcServer::unpend(const net::SocketPtr& conn) {
  for (auto it = pending_conns_.begin(); it != pending_conns_.end(); ++it) {
    if (*it == conn) {
      pending_conns_.erase(it);
      return;
    }
  }
}

void SocketRpcServer::touch_session(Shard& shard, std::uint64_t session_id, bool retried,
                                    std::uint64_t call_id) {
  if (!session_.enabled || session_id == 0) return;
  const SessionTable::TouchResult r = shard.sessions.touch(
      session_id, host_.sched().now(), /*open_if_missing=*/!retried, call_id);
  RpcStats& st = shard.pipeline.stats();
  if (r.opened) ++st.sessions_opened;
  st.sessions_expired += r.expired.size();
  st.sessions_evicted += r.evicted.size();
  if (shard.sessions.peak() > st.session_table_peak) {
    st.session_table_peak = shard.sessions.peak();
  }
  // A dead session's retry-cache entries go with it — the dedup promise
  // is scoped to the lease, and the space bound depends on the purge.
  if (RetryCache* cache = shard.pipeline.retry_cache()) {
    for (const std::uint64_t sid : r.expired) cache->forget_owner(sid);
    for (const std::uint64_t sid : r.evicted) cache->forget_owner(sid);
  }
}

sim::Task SocketRpcServer::reader_loop(net::SocketPtr conn, std::uint64_t conn_id,
                                       Shard* home) {
  const cluster::CostModel& cm = host_.cost();
  try {
    // The connection's receive CPU is paid inside the Reader critical
    // section below, as on a real selector-driven Reader thread.
    conn->set_deferred_rx_charge(true);
    // Connection preamble ("hrpc" + version). Version 5 appends the
    // client's 64-bit durable session id; version 4 is sessionless.
    net::Bytes magic(5);
    co_await conn->read_full(magic);
    std::uint64_t session_id = 0;
    if (magic[4] == net::Byte{5}) {
      net::Bytes sid_buf(8);
      co_await conn->read_full(sid_buf);
      std::memcpy(&session_id, sid_buf.data(), sizeof(session_id));
    }
    // Ignore an advertised session when the feature is off locally: the
    // call path stays byte-identical to a sessionless build.
    if (!session_.enabled) session_id = 0;
    if (home == nullptr) {
      // Session-affine shard choice (sessionless connections keep the
      // dense-id mapping, so mixed workloads stay deterministic).
      const std::size_t pick = session_id != 0
                                   ? static_cast<std::size_t>(session_id % shards_.size())
                                   : static_cast<std::size_t>((conn_id - 1) % shards_.size());
      home = shards_[pick].get();
      ++home->pipeline.counters().conns_assigned;
      home->conns.push_back(conn);
      unpend(conn);  // homed: the shard's conns list owns closing it now
    }
    Shard& shard = *home;

    for (;;) {
      // Listing 2, lines 3-5: 4-byte length buffer. Waiting for the call
      // to start arriving is idle time; once readable, the connection's
      // processing serializes through the shard's Reader thread pool
      // (default 1, Hadoop's selector model) — the socket server's
      // throughput cap, and the contention point sharding splits.
      net::Bytes len_buf(4);
      co_await conn->read_full(len_buf);
      co_await shard.reader_slots.acquire();
      // From here to release() any exception must free the Reader slot.
      ReaderSlotGuard slot_guard(shard.reader_slots);
      const sim::Time t_recv_start = host_.sched().now();
      sim::Dur alloc_cost = cm.heap_alloc(4);
      co_await host_.compute(conn->take_rx_charge() + cm.selector() + 2 * cm.syscall() +
                              cm.heap_alloc(4));
      DataInputBuffer len_in(cm, len_buf);
      const std::uint32_t len = len_in.read_u32();

      // Listing 2, lines 6-8: fresh per-call data buffer + full read +
      // native->heap copy.
      net::Bytes frame(len);
      alloc_cost += cm.heap_alloc(len);
      co_await host_.compute(cm.heap_alloc(len));
      co_await conn->read_full(frame);
      co_await host_.compute(conn->take_rx_charge() + cm.native_copy(len));

      // A first word carrying kWireBatchFlag marks a client-coalesced
      // multi-call frame; split it and run every sub-call through the
      // same admission/enqueue path as a standalone frame. The whole
      // batch paid the selector + syscall cost once above — the win the
      // coalescing exists for. Batch frames are always understood; the
      // local config only gates what this server *emits*.
      DataInputBuffer peek(cm, frame);
      const std::uint64_t first = peek.read_u64();
      if ((first & trace::kWireBatchFlag) != 0) {
        ++shard.pipeline.stats().batches_received;
        const std::size_t count = first & kWireBatchCountMask;
        std::vector<std::uint32_t> lens(count);
        for (std::size_t i = 0; i < count; ++i) lens[i] = peek.read_u32();
        std::size_t off = peek.position();
        co_await host_.compute(peek.take_accrued());
        trace::TraceContext first_ctx{};
        for (std::size_t i = 0; i < count; ++i) {
          net::Bytes sub(frame.begin() + static_cast<std::ptrdiff_t>(off),
                         frame.begin() + static_cast<std::ptrdiff_t>(off + lens[i]));
          off += lens[i];
          ++shard.pipeline.stats().batched_calls_received;
          const sim::Dur sub_alloc = cm.heap_alloc(lens[i]);
          co_await host_.compute(sub_alloc);
          const trace::TraceContext ctx =
              co_await process_frame(conn, conn_id, session_id, shard, std::move(sub),
                                     t_recv_start, alloc_cost + sub_alloc);
          if (!first_ctx.valid()) first_ctx = ctx;
        }
        if (first_ctx.valid()) {
          if (trace::TraceCollector* tr = trace::active(host_.tracer())) {
            tr->add_complete("batch.parse", trace::Kind::kServer, trace::Category::kRecv,
                             first_ctx, host_.id(), t_recv_start, host_.sched().now());
          }
        }
      } else {
        co_await process_frame(conn, conn_id, session_id, shard, std::move(frame),
                               t_recv_start, alloc_cost);
      }
    }
  } catch (const net::SocketError&) {
    // Peer went away; connection reader exits. A conn that died during
    // the preamble is still on the pending list — drop it (no-op once
    // homed).
    unpend(conn);
  } catch (const sim::ChannelClosed&) {
    unpend(conn);
  }
}

sim::Co<trace::TraceContext> SocketRpcServer::process_frame(
    net::SocketPtr conn, std::uint64_t conn_id, std::uint64_t session_id, Shard& shard,
    net::Bytes frame, sim::Time t_recv_start, sim::Dur alloc_cost) {
  const cluster::CostModel& cm = host_.cost();
  // Parse the call header; param bytes stay in place in `frame`.
  DataInputBuffer in(cm, frame);
  ServerCall call;
  call.recv_start = t_recv_start;
  call.recv_alloc = alloc_cost;
  call.id = in.read_u64();
  if ((call.id & trace::kWireTraceFlag) != 0) {
    call.ctx.trace_id = in.read_u64();
    call.ctx.span_id = in.read_u64();
  }
  if ((call.id & trace::kWireDeadlineFlag) != 0) call.deadline = in.read_u64();
  call.retried = (call.id & trace::kWireRetryFlag) != 0;
  call.id &= trace::kWireIdMask;
  call.key.protocol = in.read_text();
  call.key.method = in.read_text();
  call.param_off = in.position();
  co_await host_.compute(in.take_accrued());
  if (call.ctx.valid()) {
    if (trace::TraceCollector* tr = trace::active(host_.tracer())) {
      tr->add_complete("recv:" + call.key.method, trace::Kind::kServer,
                       trace::Category::kRecv, call.ctx, host_.id(), t_recv_start,
                       host_.sched().now());
    }
  }
  const trace::TraceContext ctx = call.ctx;
  call.conn = std::move(conn);
  call.conn_id = conn_id;
  call.session_id = session_id;
  call.owner = session_id != 0 ? session_id : conn_id;
  call.shard = shard.index;
  call.frame = std::move(frame);
  touch_session(shard, session_id, call.retried, call.id);

  // Admission control: shed beyond the configured bound while the
  // call is still cheap — before it costs a handler.
  switch (shard.pipeline.gate(call)) {
    case CallPipeline<ServerCall>::Gate::kShedArrival:
      shed(shard, call);
      co_return ctx;
    case CallPipeline<ServerCall>::Gate::kEvictOldest: {
      // Evict before enqueueing so the bound holds at every instant.
      // evict_oldest can only miss when every queued call is already
      // claimed by a waking handler; then the arrival is shed instead.
      ServerCall victim;
      if (shard.pipeline.evict_oldest(victim)) {
        shed(shard, victim);
      } else {
        shed(shard, call);
        co_return ctx;
      }
      break;
    }
    case CallPipeline<ServerCall>::Gate::kAdmit:
      break;
  }
  shard.pipeline.push(std::move(call), host_.sched().now());
  co_return ctx;
}

sim::Task SocketRpcServer::handler_loop(Shard& home, int /*handler_id*/) {
  const cluster::CostModel& cm = host_.cost();
  try {
    for (;;) {
      ServerCall call;
      bool have = false;
      // Stealing handlers poll rather than park on their own queue: a
      // blocked recv() would never see a sibling's backlog build up.
      while (steal_ && shards_.size() > 1 && !have && !home.pipeline.queue().closed()) {
        have = home.pipeline.try_take(call);
        if (!have) {
          // Per-shard seeded scan start spreads thieves over victims.
          const std::size_t start = static_cast<std::size_t>(
              home.pipeline.rng().next_below(shards_.size()));
          for (std::size_t k = 0; k < shards_.size() && !have; ++k) {
            const std::size_t v = (start + k) % shards_.size();
            if (v == home.index) continue;
            if (shards_[v]->pipeline.try_take(call)) {
              have = true;
              ++home.pipeline.counters().steals;
              ++shards_[v]->pipeline.counters().stolen;
            }
          }
        }
        if (!have) co_await sim::delay(host_.sched(), kStealPollInterval);
      }
      if (!have) {
        call = co_await home.pipeline.queue().recv();
        home.pipeline.note_dequeued(call);
      }
      // All per-call bookkeeping (stats, retry cache, responder) stays on
      // the call's home shard even when a sibling handler stole it.
      Shard& shard = *shards_[call.shard];
      const sim::Time t_dequeue = host_.sched().now();
      trace::TraceCollector* tr =
          call.ctx.valid() ? trace::active(host_.tracer()) : nullptr;

      // Deadline check at dequeue: the caller already gave up, so don't
      // burn a handler on it (and nobody is waiting for a response).
      if (shard.pipeline.expired_at_dequeue(call.deadline, t_dequeue)) {
        if (tr != nullptr) {
          tr->add_complete("deadline.expired:" + call.key.method, trace::Kind::kServer,
                           trace::Category::kOverload, call.ctx, host_.id(),
                           call.enqueued, t_dequeue);
        }
        continue;
      }
      if (tr != nullptr) {
        tr->add_complete("queue", trace::Kind::kInternal, trace::Category::kQueue,
                         call.ctx, host_.id(), call.enqueued, t_dequeue);
      }

      // Session checks for retried attempts. The server cannot prove the
      // first attempt never executed when (a) the session that would hold
      // the dedup state is gone (expired or evicted), or (b) the session
      // was re-opened by a later fresh call (the fence) and this retried
      // id misses the cache — its state, if any, died with the previous
      // incarnation. Either way the retry is refused with a *terminal*
      // session-expired status — retrying again could duplicate a
      // completed call, and a retryable bounce would merely defer that
      // outcome until a fresh call revives the session. A fresh call
      // simply re-opened the session at arrival.
      if (call.retried && call.session_id != 0) {
        bool undedupable = !shard.sessions.alive(call.session_id, t_dequeue);
        if (!undedupable) {
          RetryCache* rc = shard.pipeline.retry_cache();
          undedupable = rc != nullptr &&
                        rc->peek(call.owner, call.id) == RetryCache::State::kFresh &&
                        call.id < shard.sessions.fence(call.session_id);
        }
        if (undedupable) {
          ++shard.pipeline.stats().sessions_rejected;
          if (tr != nullptr) {
            tr->add_complete("session.rejected:" + call.key.method, trace::Kind::kServer,
                             trace::Category::kSession, call.ctx, host_.id(), t_dequeue,
                             host_.sched().now());
          }
          shard.response_queue.push(Response{
              call.conn,
              status_frame(call.id, RpcStatus::kSessionExpired,
                           "session expired: retry cannot be deduplicated")});
          continue;
        }
      }

      // Retry cache: a repeated <owner, call id> is a client retry (the
      // owner is the durable session id when one was advertised, the dense
      // connection id otherwise). Re-send the stored response rather than
      // re-executing the handler (the non-idempotent-safety contract of
      // RpcRetryPolicy).
      if (RetryCache* retry_cache = shard.pipeline.retry_cache()) {
        const RetryCache::State st = retry_cache->begin(call.owner, call.id);
        if (st == RetryCache::State::kCompleted) {
          ++shard.pipeline.stats().dedup_hits;
          if (tr != nullptr) {
            tr->add_complete("overload.dedup:" + call.key.method, trace::Kind::kServer,
                             trace::Category::kOverload, call.ctx, host_.id(), t_dequeue,
                             host_.sched().now());
          }
          shard.response_queue.push(
              Response{call.conn, *retry_cache->completed_frame(call.owner, call.id)});
          continue;
        }
        if (st == RetryCache::State::kInProgress) {
          // First attempt still executing; it (or the cache on the next
          // retry) will answer. Running twice is the one forbidden outcome.
          ++shard.pipeline.stats().dedup_in_flight;
          continue;
        }
      }

      trace::SpanScope handle(tr, "handle:" + call.key.method, trace::Kind::kServer,
                              trace::Category::kHandler, call.ctx, host_.id());
      co_await host_.compute(cm.thread_wakeup() + cm.rpc_framework());

      // Deserialize the param and invoke the method; the server-side
      // output buffer starts at 10 KB (Section II-A).
      DataInputBuffer in(cm, net::ByteSpan(call.frame).subspan(call.param_off));
      in.trace_context = handle.context();
      DataOutputBuffer out(cm, kServerInitialBuffer);
      bool error = false;
      std::string error_msg;
      const MethodHandler* handler = dispatcher_.find(call.key);
      if (handler == nullptr) {
        error = true;
        error_msg = "unknown method " + call.key.to_string();
      } else {
        try {
          co_await (*handler)(in, out);
        } catch (const std::exception& e) {
          error = true;
          error_msg = e.what();
        }
      }
      co_await host_.compute(in.take_accrued() + out.take_accrued());

      // The receive path per Listing 2 runs through deserialization;
      // Fig. 1 compares its allocation share to its total duration.
      shard.pipeline.stats().recv_alloc_us.add(
          sim::to_us(call.recv_alloc + in.take_alloc_accrued()));
      shard.pipeline.stats().recv_total_us.add(
          sim::to_us(host_.sched().now() - call.recv_start));

      // Frame the response: [len][id][status][value|error text].
      BufferedOutputStream frame(cm);
      DataOutputBuffer hdr(cm, kClientInitialBuffer);
      hdr.write_u64(call.id);
      hdr.write_u8(error ? 1 : 0);
      if (error) hdr.write_text(error_msg);
      const std::uint32_t total =
          static_cast<std::uint32_t>(hdr.length() + (error ? 0 : out.length()));
      frame.write_u32(total);
      frame.write_payload(hdr.data());
      if (!error) frame.write_payload(out.data());
      frame.flush();
      co_await host_.compute(hdr.take_accrued() + frame.take_accrued() + cm.rpc_framework());

      handle.end();
      net::Bytes wire = frame.take_pending();
      // The executed outcome must survive even when the response is
      // dropped below: the caller's retry is answered from the cache.
      if (RetryCache* retry_cache = shard.pipeline.retry_cache()) {
        retry_cache->complete(call.owner, call.id, wire);
      }
      if (shard.pipeline.expired_before_response(call.deadline, host_.sched().now())) {
        // Executed past the caller's deadline: the response would be
        // ignored, so don't spend the Responder + wire on it.
        if (tr != nullptr) {
          tr->add_complete("deadline.response:" + call.key.method, trace::Kind::kServer,
                           trace::Category::kOverload, call.ctx, host_.id(),
                           host_.sched().now(), host_.sched().now());
        }
      } else {
        shard.response_queue.push(Response{call.conn, std::move(wire)});
      }
      ++shard.pipeline.stats().calls_handled;
    }
  } catch (const sim::ChannelClosed&) {
  }
}

sim::Co<void> SocketRpcServer::write_response_batch(Shard& shard, net::SocketPtr conn,
                                                    const std::vector<Response*>& group,
                                                    std::size_t begin, std::size_t end) {
  const cluster::CostModel& cm = host_.cost();
  const std::size_t n = end - begin;
  // Each queued frame is [u32 len][payload]; the batch strips the per-frame
  // length prefix and re-frames as one wire write.
  std::size_t payload_bytes = 0;
  for (std::size_t k = begin; k < end; ++k) payload_bytes += group[k]->data.size() - 4;
  BufferedOutputStream out(cm);
  out.write_u32(static_cast<std::uint32_t>(8 + 4 * n + payload_bytes));
  out.write_u64(trace::kWireBatchFlag | static_cast<std::uint64_t>(n));
  for (std::size_t k = begin; k < end; ++k) {
    out.write_u32(static_cast<std::uint32_t>(group[k]->data.size() - 4));
  }
  for (std::size_t k = begin; k < end; ++k) {
    out.write_payload(net::ByteSpan(group[k]->data).subspan(4));
  }
  out.flush();
  co_await host_.compute(out.take_accrued());
  net::Bytes wire = out.take_pending();
  ++shard.pipeline.stats().response_batches;
  shard.pipeline.stats().batched_responses += n;
  try {
    co_await conn->write(wire);
  } catch (const net::SocketError&) {
    // Client vanished between handling and responding; drop it.
  }
}

sim::Task SocketRpcServer::responder_loop(Shard& shard) {
  try {
    for (;;) {
      Response r = co_await shard.response_queue.recv();
      if (!batch_.enabled) {
        try {
          co_await r.conn->write(r.data);
        } catch (const net::SocketError&) {
          // Client vanished between handling and responding; drop it.
        }
        continue;
      }
      // Coalescing: every response already queued behind `r` joins this
      // round, grouped per connection in first-seen order (deterministic —
      // never keyed on pointer order). Handler completions land a few
      // microseconds apart (core-semaphore stagger), so under a dense
      // completion pattern the Responder lingers briefly before draining —
      // that is what turns a burst of handler finishes into one wire write
      // per connection, and what keeps the callers on a shared connection
      // waking in sync (sustaining client-side call coalescing). Sparse
      // completions skip the wait entirely. Connections never migrate
      // between shards, so a connection's responses always coalesce within
      // its home shard's Responder — never across shards.
      shard.resp_gaps.note(host_.sched().now());
      const sim::Dur resp_linger = shard.resp_gaps.linger(batch_.linger / 4);
      if (resp_linger > 0) co_await sim::delay(host_.sched(), resp_linger);
      std::vector<Response> round;
      round.push_back(std::move(r));
      {
        Response more;
        while (shard.response_queue.try_recv(more)) round.push_back(std::move(more));
      }
      std::vector<net::SocketPtr> order;
      for (const Response& resp : round) {
        bool seen = false;
        for (const net::SocketPtr& c : order) {
          if (c == resp.conn) {
            seen = true;
            break;
          }
        }
        if (!seen) order.push_back(resp.conn);
      }
      for (const net::SocketPtr& conn : order) {
        std::vector<Response*> mine;
        for (Response& resp : round) {
          if (resp.conn == conn) mine.push_back(&resp);
        }
        // Consecutive runs of >=2 small responses become one batch frame
        // (bounded by the config limits); everything else keeps its own
        // byte-identical frame.
        const auto is_small = [this](const Response& resp) {
          return resp.data.size() >= 4 &&
                 resp.data.size() - 4 <= batch_.small_threshold;
        };
        std::size_t i = 0;
        while (i < mine.size()) {
          std::size_t j = i;
          std::size_t run_bytes = 0;
          while (j < mine.size() && is_small(*mine[j]) && (j - i) < batch_.max_calls &&
                 run_bytes + mine[j]->data.size() - 4 <= batch_.max_bytes) {
            run_bytes += mine[j]->data.size() - 4;
            ++j;
          }
          if (j - i >= 2) {
            co_await write_response_batch(shard, conn, mine, i, j);
            i = j;
          } else {
            try {
              co_await conn->write(mine[i]->data);
            } catch (const net::SocketError&) {
              // Client vanished between handling and responding; drop it.
            }
            ++i;
          }
        }
      }
    }
  } catch (const sim::ChannelClosed&) {
  }
}

}  // namespace rpcoib::rpc
