// Hadoop's Writable serialization framework, ported to C++.
//
// Faithful to Hadoop 0.20.2's wire behaviour — big-endian fixed-width
// primitives, WritableUtils variable-length ints, Text (vint length +
// bytes), BytesWritable (fixed 4-byte length + bytes) — because the
// paper's Table I/Fig. 3 numbers come from the *pattern* of many small
// stream writes these encoders perform against a growable buffer.
//
// Streams accrue modeled host-CPU cost (field ops, copies, allocations) as
// plain function calls; the owning coroutine charges the accrued total to
// its host afterwards. This keeps Writable::write() an ordinary virtual
// function, exactly like Hadoop's, while still accounting every copy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "cluster/cost_model.hpp"
#include "net/bytes.hpp"
#include "sim/time.hpp"
#include "trace/context.hpp"

namespace rpcoib::rpc {

class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

/// Abstract output stream (java.io.DataOutput). Concrete sinks:
/// DataOutputBuffer (JVM-heap growable buffer, the paper's Algorithm 1),
/// BufferedOutputStream (socket path), rpcoib::RDMAOutputStream (registered
/// native buffer).
class DataOutput {
 public:
  explicit DataOutput(const cluster::CostModel& cm) : cm_(cm) {}
  virtual ~DataOutput() = default;

  /// Raw byte-range write; concrete sinks implement this.
  virtual void write_raw(net::ByteSpan data) = 0;

  void write_u8(std::uint8_t v) {
    accrue(cm_.field_op());
    write_raw(net::ByteSpan(&v, 1));
  }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f64(double v);

  /// WritableUtils.writeVLong / writeVInt.
  void write_vi64(std::int64_t v);
  void write_vi32(std::int32_t v) { write_vi64(v); }

  /// org.apache.hadoop.io.Text: vint byte length + UTF-8 bytes.
  void write_text(const std::string& s);

  /// BytesWritable: 4-byte length + payload.
  void write_bytes(net::ByteSpan data);

  /// Raw payload write with field-op accounting (DataOutputStream.write).
  void write_payload(net::ByteSpan data) {
    accrue(cm_.field_op());
    write_raw(data);
  }

  // --- modeled cost accrual -------------------------------------------
  void accrue(sim::Dur d) { accrued_ += d; }
  sim::Dur take_accrued() {
    sim::Dur d = accrued_;
    accrued_ = 0;
    return d;
  }
  sim::Dur accrued() const { return accrued_; }
  const cluster::CostModel& cost_model() const { return cm_; }

 private:
  const cluster::CostModel& cm_;
  sim::Dur accrued_ = 0;
};

/// Abstract input stream (java.io.DataInput).
class DataInput {
 public:
  explicit DataInput(const cluster::CostModel& cm) : cm_(cm) {}
  virtual ~DataInput() = default;

  virtual void read_raw(net::MutByteSpan out) = 0;
  virtual std::size_t remaining() const = 0;

  std::uint8_t read_u8() {
    accrue(cm_.field_op());
    std::uint8_t v = 0;
    read_raw(net::MutByteSpan(&v, 1));
    return v;
  }
  bool read_bool() { return read_u8() != 0; }
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  double read_f64();

  std::int64_t read_vi64();
  std::int32_t read_vi32();

  std::string read_text();
  net::Bytes read_bytes();

  void accrue(sim::Dur d) { accrued_ += d; }
  /// Allocation costs are tracked separately as well, so the server can
  /// decompose receive time into "buffer allocation" vs everything else
  /// (the paper's Fig. 1).
  void accrue_alloc(sim::Dur d) {
    accrued_ += d;
    alloc_accrued_ += d;
  }
  sim::Dur take_accrued() {
    sim::Dur d = accrued_;
    accrued_ = 0;
    return d;
  }
  sim::Dur take_alloc_accrued() {
    sim::Dur d = alloc_accrued_;
    alloc_accrued_ = 0;
    return d;
  }
  const cluster::CostModel& cost_model() const { return cm_; }

  /// Trace context of the RPC this input belongs to. Set by the server
  /// transport on the DataInput it hands the handler, so application
  /// handlers can parent their spans (and downstream RPCs) correctly.
  trace::TraceContext trace_context;

 private:
  const cluster::CostModel& cm_;
  sim::Dur accrued_ = 0;
  sim::Dur alloc_accrued_ = 0;
};

/// org.apache.hadoop.io.Writable.
class Writable {
 public:
  virtual ~Writable() = default;
  virtual void write(DataOutput& out) const = 0;
  virtual void read_fields(DataInput& in) = 0;

  /// One-sided read-plane eligibility: if this parameter, used as the
  /// request of `protocol`/`method`, names an entity whose serialized
  /// response the server may have published to its exported region,
  /// return that entity key. std::nullopt (the default) keeps the call on
  /// the normal RPC path. Only read-only, deterministic-response methods
  /// may opt in — the fast path returns a published snapshot verbatim.
  virtual std::optional<std::string> onesided_key(const std::string& protocol,
                                                  const std::string& method) const {
    (void)protocol;
    (void)method;
    return std::nullopt;
  }
};

// --- Primitive writables ---------------------------------------------------

class IntWritable final : public Writable {
 public:
  IntWritable() = default;
  explicit IntWritable(std::int32_t v) : value(v) {}
  void write(DataOutput& out) const override { out.write_i32(value); }
  void read_fields(DataInput& in) override { value = in.read_i32(); }
  std::int32_t value = 0;
};

class LongWritable final : public Writable {
 public:
  LongWritable() = default;
  explicit LongWritable(std::int64_t v) : value(v) {}
  void write(DataOutput& out) const override { out.write_i64(value); }
  void read_fields(DataInput& in) override { value = in.read_i64(); }
  std::int64_t value = 0;
};

class VLongWritable final : public Writable {
 public:
  VLongWritable() = default;
  explicit VLongWritable(std::int64_t v) : value(v) {}
  void write(DataOutput& out) const override { out.write_vi64(value); }
  void read_fields(DataInput& in) override { value = in.read_vi64(); }
  std::int64_t value = 0;
};

class BooleanWritable final : public Writable {
 public:
  BooleanWritable() = default;
  explicit BooleanWritable(bool v) : value(v) {}
  void write(DataOutput& out) const override { out.write_bool(value); }
  void read_fields(DataInput& in) override { value = in.read_bool(); }
  bool value = false;
};

class Text final : public Writable {
 public:
  Text() = default;
  explicit Text(std::string v) : value(std::move(v)) {}
  void write(DataOutput& out) const override { out.write_text(value); }
  void read_fields(DataInput& in) override { value = in.read_text(); }
  std::string value;
};

class BytesWritable final : public Writable {
 public:
  BytesWritable() = default;
  explicit BytesWritable(net::Bytes v) : value(std::move(v)) {}
  void write(DataOutput& out) const override { out.write_bytes(value); }
  void read_fields(DataInput& in) override { value = in.read_bytes(); }
  net::Bytes value;
};

class NullWritable final : public Writable {
 public:
  void write(DataOutput&) const override {}
  void read_fields(DataInput&) override {}
};

}  // namespace rpcoib::rpc
