// The buffers at the center of the paper's bottleneck analysis.
//
// DataOutputBuffer implements Hadoop's Algorithm 1 verbatim: a JVM-heap
// byte array starting at 32 bytes (10 KB on the server side) that grows by
// `max(2*len, needed)` with an old-data copy on every adjustment. Each
// allocation/copy both *really happens* (so adjustment counts in Table I
// are measured, not asserted) and accrues modeled JVM cost.
//
// BufferedOutputStream models the java.io.BufferedOutputStream behind
// DataOutputStream in Listing 1: one more heap copy on the way to the
// socket, plus the JVM-heap -> native-I/O copy on flush.
#pragma once

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/bytes.hpp"
#include "rpc/writable.hpp"

namespace rpcoib::rpc {

/// Counters a buffer exposes for the paper's profiling tables.
struct BufferStats {
  std::uint64_t mem_adjustments = 0;  // Algorithm 1 reallocation events
  std::uint64_t allocations = 0;      // heap allocations (incl. initial)
  std::uint64_t bytes_copied = 0;     // all memcpy traffic
  sim::Dur alloc_time = 0;            // modeled time spent in allocation only
};

/// Hadoop's client-side default initial buffer (32 B) and the server-side
/// initial buffer (10 KB) called out in Section II-A.
inline constexpr std::size_t kClientInitialBuffer = 32;
inline constexpr std::size_t kServerInitialBuffer = 10 * 1024;

class DataOutputBuffer final : public DataOutput {
 public:
  DataOutputBuffer(const cluster::CostModel& cm, std::size_t initial_size = kClientInitialBuffer)
      : DataOutput(cm), buf_(initial_size) {
    // `new DataOutputBuffer()` allocates the initial internal array.
    stats_.allocations++;
    const sim::Dur d = cm.heap_alloc(initial_size);
    stats_.alloc_time += d;
    accrue(d);
  }

  // Algorithm 1: DEFAULT ALGORITHM FOR MEMORY ADJUSTMENT.
  void write_raw(net::ByteSpan bs) override {
    const std::size_t new_count = count_ + bs.size();
    if (new_count > buf_.size()) {
      const std::size_t new_len = std::max(buf_.size() * 2, new_count);
      net::Bytes new_buf(new_len);  // (1) reallocate
      {
        const sim::Dur d = cost_model().heap_alloc(new_len);
        stats_.alloc_time += d;
        accrue(d);
        stats_.allocations++;
      }
      std::memcpy(new_buf.data(), buf_.data(), count_);  // (2) copy old data
      accrue(cost_model().heap_copy(count_));
      stats_.bytes_copied += count_;
      buf_ = std::move(new_buf);
      stats_.mem_adjustments++;
    }
    std::memcpy(buf_.data() + count_, bs.data(), bs.size());  // (3) copy new data
    accrue(cost_model().heap_copy(bs.size()));
    stats_.bytes_copied += bs.size();
    count_ = new_count;
  }

  net::ByteSpan data() const { return net::ByteSpan(buf_.data(), count_); }
  std::size_t length() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  /// Hadoop's reset(): keeps the (possibly grown) array, rewinds count.
  void reset() { count_ = 0; }

  const BufferStats& stats() const { return stats_; }

 private:
  net::Bytes buf_;
  std::size_t count_ = 0;
  BufferStats stats_;
};

/// Reads from a borrowed byte range (Hadoop DataInputBuffer /
/// ByteArrayInputStream). The referenced bytes must outlive the reader.
class DataInputBuffer final : public DataInput {
 public:
  DataInputBuffer(const cluster::CostModel& cm, net::ByteSpan data)
      : DataInput(cm), data_(data) {}

  void read_raw(net::MutByteSpan out) override {
    if (out.size() > remaining()) throw SerializationError("read past end of buffer");
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  std::size_t remaining() const override { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  net::ByteSpan data_;
  std::size_t pos_ = 0;
};

/// java.io.BufferedOutputStream: accumulates into a heap buffer; the flush
/// callback receives completed chunks (the socket write path). Copy costs
/// accrue here; the *send* itself is performed by the owning coroutine via
/// take_pending().
class BufferedOutputStream final : public DataOutput {
 public:
  BufferedOutputStream(const cluster::CostModel& cm, std::size_t buf_size = 8192)
      : DataOutput(cm), buf_size_(buf_size) {
    buf_.reserve(buf_size);
    stats_.allocations++;
    const sim::Dur d = cm.heap_alloc(buf_size);
    stats_.alloc_time += d;
    accrue(d);
  }

  void write_raw(net::ByteSpan bs) override {
    // Copy into the internal heap buffer (the extra copy called out in
    // Section II-A), spilling to pending_ when full.
    accrue(cost_model().heap_copy(bs.size()));
    stats_.bytes_copied += bs.size();
    buf_.insert(buf_.end(), bs.begin(), bs.end());
    if (buf_.size() >= buf_size_) spill();
  }

  /// flush(): everything buffered becomes a pending chunk, paying the
  /// JVM-heap -> native-I/O copy.
  void flush() {
    spill();
    if (!pending_.empty()) {
      accrue(cost_model().native_copy(pending_.size()));
    }
  }

  /// Bytes ready for the socket after flush().
  net::Bytes take_pending() { return std::exchange(pending_, net::Bytes{}); }

  const BufferStats& stats() const { return stats_; }

 private:
  void spill() {
    pending_.insert(pending_.end(), buf_.begin(), buf_.end());
    buf_.clear();
  }

  std::size_t buf_size_;
  net::Bytes buf_;
  net::Bytes pending_;
  BufferStats stats_;
};

}  // namespace rpcoib::rpc
