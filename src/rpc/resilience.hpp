// Resilience metrics table: retry/timeout/fault counters rendered with the
// same fixed-width Table the bench binaries use. Returned as a string so
// the chaos suite can assert byte-identical reports across seeded runs.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>

#include "metrics/table.hpp"
#include "net/fault.hpp"
#include "rpc/stats.hpp"

namespace rpcoib::rpc {

inline std::string resilience_report(const RpcStats& stats,
                                     const net::FaultCounters* faults = nullptr,
                                     const RpcStats* server = nullptr) {
  metrics::Table t({"Counter", "Value"});
  t.row({"calls sent", std::to_string(stats.calls_sent)});
  t.row({"timeouts", std::to_string(stats.timeouts)});
  t.row({"transport errors", std::to_string(stats.transport_errors)});
  t.row({"retries", std::to_string(stats.retries)});
  t.row({"socket fallbacks", std::to_string(stats.socket_fallbacks)});
  t.row({"busy rejections", std::to_string(stats.busy_rejections)});
  t.row({"nack fallbacks", std::to_string(stats.nack_fallbacks)});
  t.row({"backoff waits", std::to_string(stats.backoff_us.count())});
  t.row({"backoff total (us)", metrics::Table::num(stats.backoff_us.sum(), 1)});
  t.row({"batches sent", std::to_string(stats.batches_sent)});
  t.row({"batched calls", std::to_string(stats.batched_calls)});
  t.row({"batch flushes (full)", std::to_string(stats.batch_flush_full)});
  t.row({"batch flushes (linger)", std::to_string(stats.batch_flush_linger)});
  t.row({"batch flushes (immediate)", std::to_string(stats.batch_flush_immediate)});
  t.row({"connections opened", std::to_string(stats.connections_opened)});
  t.row({"threshold mismatches", std::to_string(stats.threshold_mismatches)});
  // Reconnect recovery FSM rows, split by detection cause. Emitted only
  // when a reconnect happened so sessionless seeded reports stay
  // byte-identical to builds without the session layer.
  if (stats.reconnects_peer_closed + stats.reconnects_qp_error +
          stats.reconnects_idle_evicted + stats.reconnects_fault_injected +
          stats.calls_replayed >
      0) {
    t.row({"reconnects (peer closed)", std::to_string(stats.reconnects_peer_closed)});
    t.row({"reconnects (qp error)", std::to_string(stats.reconnects_qp_error)});
    t.row({"reconnects (idle evicted)", std::to_string(stats.reconnects_idle_evicted)});
    t.row({"reconnects (fault injected)",
           std::to_string(stats.reconnects_fault_injected)});
    t.row({"calls replayed", std::to_string(stats.calls_replayed)});
  }
  // UD datagram-path rows appear only when UD traffic flowed (the path is
  // default-off; RC-only reports must stay byte-identical).
  if (stats.ud_datagrams_sent + stats.ud_responses_received + stats.ud_rc_fallbacks >
      0) {
    t.row({"ud datagrams sent", std::to_string(stats.ud_datagrams_sent)});
    t.row({"ud responses received", std::to_string(stats.ud_responses_received)});
    t.row({"ud rc fallbacks", std::to_string(stats.ud_rc_fallbacks)});
  }
  // One-sided read-plane rows appear only when the fast path was tried
  // (default-off; RPC-only reports must stay byte-identical).
  if (stats.onesided_reads + stats.onesided_misses + stats.onesided_conflict_fallbacks +
          stats.onesided_stale_refreshes + stats.onesided_fallbacks >
      0) {
    t.row({"onesided reads", std::to_string(stats.onesided_reads)});
    t.row({"onesided misses", std::to_string(stats.onesided_misses)});
    t.row({"onesided conflict fallbacks",
           std::to_string(stats.onesided_conflict_fallbacks)});
    t.row({"onesided stale refreshes", std::to_string(stats.onesided_stale_refreshes)});
    t.row({"onesided fallbacks", std::to_string(stats.onesided_fallbacks)});
  }
  // Cold-start session recovery (first datagram of a session lost on a
  // lossy path); own gate so loss-free reports grow no row.
  if (stats.session_cold_restarts > 0) {
    t.row({"session cold restarts", std::to_string(stats.session_cold_restarts)});
  }
  t.row({"streams opened", std::to_string(stats.streams_opened)});
  t.row({"stream chunks", std::to_string(stats.stream_chunks)});
  t.row({"stream bytes", std::to_string(stats.stream_bytes)});
  t.row({"stream credit stalls", std::to_string(stats.stream_credit_stalls)});
  t.row({"stream fallbacks", std::to_string(stats.stream_fallbacks)});
  t.row({"stream pool denied", std::to_string(stats.stream_pool_denied)});
  t.row({"stream aborts", std::to_string(stats.stream_aborts)});
  t.row({"stream deadline expiries", std::to_string(stats.stream_deadline_expiries)});
  if (faults != nullptr) {
    t.row({"fault drops", std::to_string(faults->drops)});
    t.row({"fault spikes", std::to_string(faults->spikes)});
    t.row({"fault outage hits", std::to_string(faults->outage_hits)});
    t.row({"fault true losses", std::to_string(faults->true_losses)});
    // Connection kills only appear when the plan fired one, keeping
    // kill-free seeded reports byte-identical to earlier builds.
    if (faults->kills > 0) {
      t.row({"fault kills", std::to_string(faults->kills)});
    }
    // Same gating for the UD datagram-loss stream.
    if (faults->datagram_losses > 0) {
      t.row({"fault datagram losses", std::to_string(faults->datagram_losses)});
    }
  }
  if (server != nullptr) {
    // Server-side overload section (admission / deadlines / retry cache).
    t.row({"server calls shed", std::to_string(server->calls_shed)});
    t.row({"server calls expired", std::to_string(server->calls_expired)});
    t.row({"server responses expired", std::to_string(server->responses_expired)});
    t.row({"server dedup hits", std::to_string(server->dedup_hits)});
    t.row({"server dedup in-flight", std::to_string(server->dedup_in_flight)});
    t.row({"server dropped on stop", std::to_string(server->dropped_on_stop)});
    t.row({"server pool nacks", std::to_string(server->pool_nacks)});
    t.row({"server queue depth peak", std::to_string(server->queue_depth_peak)});
    t.row({"server batches received", std::to_string(server->batches_received)});
    t.row({"server batched calls", std::to_string(server->batched_calls_received)});
    t.row({"server response batches", std::to_string(server->response_batches)});
    t.row({"server batched responses", std::to_string(server->batched_responses)});
    t.row({"server srq posted", std::to_string(server->srq_posted)});
    t.row({"server srq refills", std::to_string(server->srq_refills)});
    t.row({"server srq rnr stalls", std::to_string(server->srq_rnr_stalls)});
    t.row({"server srq evictions", std::to_string(server->srq_evictions)});
    t.row({"server recv ring bytes peak", std::to_string(server->recv_ring_bytes_peak)});
    t.row({"server responses dropped on stop",
           std::to_string(server->responses_dropped_on_stop)});
    // Server UD rows appear only when a datagram reached (or bounced off)
    // a UD endpoint; see the client-side ud rows above.
    if (server->ud_calls_received + server->ud_responses_sent + server->ud_rx_dropped +
            server->ud_resp_oversize >
        0) {
      t.row({"server ud calls received", std::to_string(server->ud_calls_received)});
      t.row({"server ud responses sent", std::to_string(server->ud_responses_sent)});
      t.row({"server ud rx dropped", std::to_string(server->ud_rx_dropped)});
      t.row({"server ud oversize responses", std::to_string(server->ud_resp_oversize)});
    }
    // Server one-sided rows appear only when something was published
    // (region layer is default-off).
    if (server->onesided_published + server->onesided_reexports > 0) {
      t.row({"server onesided published", std::to_string(server->onesided_published)});
      t.row({"server onesided reexports", std::to_string(server->onesided_reexports)});
    }
    // Session-table rows appear only once a session was opened (the layer
    // is default-off; sessionless reports must not change).
    if (server->sessions_opened + server->sessions_expired + server->sessions_evicted +
            server->sessions_rejected + server->session_table_peak >
        0) {
      t.row({"server sessions opened", std::to_string(server->sessions_opened)});
      t.row({"server sessions expired", std::to_string(server->sessions_expired)});
      t.row({"server sessions evicted", std::to_string(server->sessions_evicted)});
      t.row({"server session rejections", std::to_string(server->sessions_rejected)});
      t.row({"server session table peak", std::to_string(server->session_table_peak)});
    }
    if (!server->shards.empty()) {
      // Sharded receive path (server.shards): one row group per reader
      // shard plus an imbalance summary, all integer-valued so the chaos
      // suite's byte-identical assertions extend to the sharded layout.
      t.row({"server shards", std::to_string(server->shards.size())});
      std::uint64_t max_disp = 0, min_disp = ~std::uint64_t{0};
      for (std::size_t i = 0; i < server->shards.size(); ++i) {
        const ShardCounters& sc = server->shards[i];
        const std::string p = "shard " + std::to_string(i) + " ";
        t.row({p + "conns", std::to_string(sc.conns_assigned)});
        t.row({p + "dispatched", std::to_string(sc.dispatched)});
        t.row({p + "queue peak", std::to_string(sc.queued_peak)});
        t.row({p + "dropped", std::to_string(sc.dropped)});
        t.row({p + "steals", std::to_string(sc.steals)});
        t.row({p + "stolen", std::to_string(sc.stolen)});
        max_disp = std::max(max_disp, sc.dispatched);
        min_disp = std::min(min_disp, sc.dispatched);
      }
      t.row({"shard dispatch spread (max-min)", std::to_string(max_disp - min_disp)});
    }
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

}  // namespace rpcoib::rpc
