// Resilience metrics table: retry/timeout/fault counters rendered with the
// same fixed-width Table the bench binaries use. Returned as a string so
// the chaos suite can assert byte-identical reports across seeded runs.
#pragma once

#include <sstream>
#include <string>

#include "metrics/table.hpp"
#include "net/fault.hpp"
#include "rpc/stats.hpp"

namespace rpcoib::rpc {

inline std::string resilience_report(const RpcStats& stats,
                                     const net::FaultCounters* faults = nullptr) {
  metrics::Table t({"Counter", "Value"});
  t.row({"calls sent", std::to_string(stats.calls_sent)});
  t.row({"timeouts", std::to_string(stats.timeouts)});
  t.row({"transport errors", std::to_string(stats.transport_errors)});
  t.row({"retries", std::to_string(stats.retries)});
  t.row({"socket fallbacks", std::to_string(stats.socket_fallbacks)});
  t.row({"backoff waits", std::to_string(stats.backoff_us.count())});
  t.row({"backoff total (us)", metrics::Table::num(stats.backoff_us.sum(), 1)});
  if (faults != nullptr) {
    t.row({"fault drops", std::to_string(faults->drops)});
    t.row({"fault spikes", std::to_string(faults->spikes)});
    t.row({"fault outage hits", std::to_string(faults->outage_hits)});
    t.row({"fault true losses", std::to_string(faults->true_losses)});
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

}  // namespace rpcoib::rpc
