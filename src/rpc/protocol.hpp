// Protocol/method registry and call dispatch.
//
// Hadoop registers protocol interfaces (ClientProtocol, DatanodeProtocol,
// TaskUmbilicalProtocol, ...) with the RPC server and dispatches calls by
// reflection. Here a server registers handlers keyed by the same
// <protocol, method> tuple the paper uses to define a "kind of call" —
// the key both for dispatch and for the message-size-locality history.
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "rpc/writable.hpp"
#include "sim/task.hpp"

namespace rpcoib::rpc {

/// The paper's call identity: a <protocol, method> tuple.
struct MethodKey {
  std::string protocol;
  std::string method;

  friend bool operator<(const MethodKey& a, const MethodKey& b) {
    return a.protocol != b.protocol ? a.protocol < b.protocol : a.method < b.method;
  }
  friend bool operator==(const MethodKey& a, const MethodKey& b) = default;

  std::string to_string() const { return protocol + "." + method; }
};

/// Raised at the caller when the server-side handler threw; carries the
/// remote message, like Hadoop's RemoteException.
class RemoteException : public std::runtime_error {
 public:
  explicit RemoteException(const std::string& what) : std::runtime_error(what) {}
};

/// Raised for transport-level failures (connection reset, refused, ...).
class RpcTransportError : public std::runtime_error {
 public:
  explicit RpcTransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised at the caller when the server shed the call before executing it
/// (bounded call queue / admission policy, or a NACKed rendezvous under a
/// dry buffer pool). Always safe to retry — even for non-idempotent
/// methods — because the handler never ran. A subtype of RpcTransportError
/// so legacy catch sites keep treating it as a transient failure.
class ServerBusyException : public RpcTransportError {
 public:
  explicit ServerBusyException(const std::string& what) : RpcTransportError(what) {}
};

/// Raised at the caller when the server refused a retried attempt because
/// the durable session holding its dedup state is gone (lease expired,
/// table-evicted, or superseded by a re-opened session). The server can
/// prove neither execution nor non-execution of the first attempt, so this
/// is terminal: the retry loop rethrows it instead of re-sending — another
/// attempt could duplicate a completed call. A subtype of
/// RpcTransportError so legacy catch sites see a connection-class failure.
class SessionExpiredException : public RpcTransportError {
 public:
  explicit SessionExpiredException(const std::string& what) : RpcTransportError(what) {}
};

/// Low bits of a batch frame's leading u64 (flagged with
/// trace::kWireBatchFlag) holding the sub-message count. 32 bits bounds a
/// batch far beyond any BatchConfig::max_calls while keeping the flag bits
/// clear of the count.
inline constexpr std::uint64_t kWireBatchCountMask = 0xFFFFFFFFULL;

/// Response status byte, shared by both wire formats:
///   kResp [.. id ..][u8 status][value | error text].
enum class RpcStatus : std::uint8_t {
  kSuccess = 0,
  kError = 1,  // handler threw; body is the error text -> RemoteException
  kBusy = 2,   // call shed before execution; body text -> ServerBusyException
  // Retried attempt refused: its session's dedup state is gone, so the
  // server cannot prove the first attempt never executed. Terminal ->
  // SessionExpiredException. Only ever emitted with sessions enabled, so
  // the sessionless wire never carries this byte.
  kSessionExpired = 3,
};

/// A server-side method implementation: deserialize from `in`, do the work
/// (may suspend in virtual time), serialize the result into `out`.
using MethodHandler = std::function<sim::Co<void>(DataInput& in, DataOutput& out)>;

class Dispatcher {
 public:
  void register_method(std::string protocol, std::string method, MethodHandler h) {
    MethodKey key{std::move(protocol), std::move(method)};
    if (!handlers_.emplace(std::move(key), std::move(h)).second) {
      throw std::logic_error("method registered twice");
    }
  }

  const MethodHandler* find(const MethodKey& key) const {
    auto it = handlers_.find(key);
    return it == handlers_.end() ? nullptr : &it->second;
  }

  /// Full registry view, for mirroring handlers onto a companion server
  /// (the RPCoIB socket-fallback listener shares its primary's methods).
  const std::map<MethodKey, MethodHandler>& all() const { return handlers_; }

  std::size_t size() const { return handlers_.size(); }

 private:
  std::map<MethodKey, MethodHandler> handlers_;
};

}  // namespace rpcoib::rpc
