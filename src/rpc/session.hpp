// Durable client sessions: the state that makes RPC exactly-once across
// connection loss.
//
// The PR-3 RetryCache dedups retried attempts by <conn, call> — but conn
// ids are dense per-server sequence numbers, so any reconnect (QP error,
// SRQ idle eviction, server restart, injected kill) used to lose the dedup
// key and a retried non-idempotent call could re-execute. With sessions
// enabled, each client mints one stable 64-bit session id for its
// lifetime and carries it in the transport handshake (socket preamble /
// verbs bootstrap blob); the server keys retry-cache state by
// <session, call> instead, so dedup survives reconnects. Ibdxnet and
// MPICH2-over-InfiniBand treat connection recovery as a first-class
// transport state for the same reason.
//
// Sessions are leased: a server-side SessionTable (one per reader shard,
// aggregated like the shard.* counters) expires sessions idle past the
// lease and LRU-evicts past the table cap, dropping their retry-cache
// entries. A *retried* attempt (kWireRetryFlag) arriving for an expired
// session — or missing the cache on a session re-opened after its dedup
// state was purged (the call-id fence) — is answered with a terminal
// session-expired error, never silently re-executed; a fresh call simply
// re-opens the session.
//
// Everything is default-off: with `enabled == false` no session id is
// minted (zero RNG draws), no handshake bytes change, and no report rows
// appear, so seeded runs are byte-identical to a sessionless build.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "sim/time.hpp"

namespace rpcoib::rpc {

/// Client/server session knobs. Set on both ends (EngineConfig::session
/// plumbs one struct to clients and servers) before the first call.
struct SessionConfig {
  bool enabled = false;
  /// Idle lease: a session with no call activity for this long expires
  /// and its retry-cache entries are dropped. 0 = never expires.
  sim::Dur lease = sim::seconds(60);
  /// Per-shard session cap; the least-recently-active session is evicted
  /// when exceeded. 0 = unbounded.
  std::size_t table_cap = 1024;
};

/// Why a client tore a connection down and re-bootstrapped. Drives the
/// reconnect.* counters and the kSession trace spans.
enum class ReconnectCause : std::uint8_t {
  kPeerClosed,     // EOF / socket closed by the remote end
  kQpError,        // verbs post failed mid-call (QP to error state)
  kIdleEvicted,    // stale QP discovered on reuse (SRQ idle eviction)
  kFaultInjected,  // FaultPlan connection-kill fired
};

inline const char* reconnect_cause_name(ReconnectCause c) {
  switch (c) {
    case ReconnectCause::kPeerClosed: return "peer_closed";
    case ReconnectCause::kQpError: return "qp_error";
    case ReconnectCause::kIdleEvicted: return "idle_evicted";
    case ReconnectCause::kFaultInjected: return "fault_injected";
  }
  return "?";
}

/// Per-shard table of live sessions, LRU-ordered by last call activity.
/// Expiry is lazy — checked on every touch/alive probe — so the table
/// needs no GC task and stays deterministic.
class SessionTable {
 public:
  explicit SessionTable(const SessionConfig& cfg) : cfg_(cfg) {}

  struct TouchResult {
    bool opened = false;                  // sid was new (or re-opened)
    std::vector<std::uint64_t> expired;   // idle past lease, dropped now
    std::vector<std::uint64_t> evicted;   // LRU-evicted past table_cap
  };

  /// Renew (or open) `sid` at `now`, expiring idle sessions first. The
  /// caller forgets retry-cache state for every returned expired/evicted
  /// id. `open_if_missing == false` only renews a live session — the
  /// arrival path for retried attempts, which must not resurrect an
  /// expired session under a retried call id. `opener_call_id` is the
  /// fresh call doing the opening; it becomes the session's fence().
  TouchResult touch(std::uint64_t sid, sim::Time now, bool open_if_missing = true,
                    std::uint64_t opener_call_id = 0) {
    TouchResult r;
    r.expired = expire_idle(now);
    auto it = entries_.find(sid);
    if (it != entries_.end()) {
      it->second.last_active = now;
      lru_.splice(lru_.end(), lru_, it->second.lru_it);
      return r;
    }
    if (!open_if_missing) return r;
    lru_.push_back(sid);
    entries_[sid] = Entry{now, std::prev(lru_.end()), opener_call_id};
    r.opened = true;
    while (cfg_.table_cap > 0 && entries_.size() > cfg_.table_cap) {
      const std::uint64_t victim = lru_.front();
      lru_.pop_front();
      entries_.erase(victim);
      r.evicted.push_back(victim);
    }
    if (entries_.size() > peak_) peak_ = entries_.size();
    return r;
  }

  /// Known and not idle past the lease?
  bool alive(std::uint64_t sid, sim::Time now) const {
    auto it = entries_.find(sid);
    if (it == entries_.end()) return false;
    return cfg_.lease == 0 || now < it->second.last_active + cfg_.lease;
  }

  /// Call-id fence of a live session: the id of the fresh call that
  /// (re-)opened this incarnation. Client call ids are monotonic, so a
  /// *retried* call id below the fence predates the open — its dedup
  /// state (if it ever had any) died with the previous incarnation, and
  /// a cache miss on it proves nothing. 0 for unknown sessions.
  std::uint64_t fence(std::uint64_t sid) const {
    auto it = entries_.find(sid);
    return it == entries_.end() ? 0 : it->second.fence;
  }

  /// Drop every session idle past the lease; returns the dropped ids.
  std::vector<std::uint64_t> expire_idle(sim::Time now) {
    std::vector<std::uint64_t> out;
    if (cfg_.lease == 0) return out;
    while (!lru_.empty()) {
      const std::uint64_t sid = lru_.front();
      const Entry& e = entries_.at(sid);
      if (now < e.last_active + cfg_.lease) break;
      lru_.pop_front();
      entries_.erase(sid);
      out.push_back(sid);
    }
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t peak() const { return peak_; }

 private:
  struct Entry {
    sim::Time last_active = 0;
    std::list<std::uint64_t>::iterator lru_it;
    std::uint64_t fence = 0;  // call id that opened this incarnation
  };

  SessionConfig cfg_;
  std::map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = least recently active
  std::size_t peak_ = 0;
};

}  // namespace rpcoib::rpc
