// Transport-independent per-shard call pipeline.
//
// Both servers used to carry a private copy of the same receive-side
// chain: admission gate (decide / shed-newest / evict-oldest), enqueue
// accounting, dequeue pairing, deadline bookkeeping, retry-cache dedup and
// stop()-time drain. With the server sharded (server.shards), each reader
// shard instantiates one CallPipeline over its own call queue, its own
// AdmissionController/RetryCache and its own stats block, so shards never
// share mutable state — the single-writer discipline the shard.* counters
// document. The transport keeps what is genuinely transport-specific:
// frame parsing, busy-frame encoding, trace-span emission and buffer
// ownership.
//
// `Call` must expose a `sim::Time enqueued` member; the protocol string
// used for per-protocol admission quotas is extracted through the functor
// passed at construction (the two transports store it differently).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rpc/overload.hpp"
#include "rpc/stats.hpp"
#include "sim/channel.hpp"
#include "sim/random.hpp"

namespace rpcoib::rpc {

template <typename Call>
class CallPipeline {
 public:
  using ProtocolFn = std::function<const std::string&(const Call&)>;

  /// Fate of an arriving call at the admission gate.
  enum class Gate {
    kAdmit,        // push() it
    kShedArrival,  // answer busy, drop the arrival
    kEvictOldest,  // admit the arrival after evicting the queue head
  };

  CallPipeline(sim::Scheduler& sched, std::uint32_t shard_id, const OverloadConfig& cfg,
               ProtocolFn protocol_of, std::uint64_t seed)
      : shard_id_(shard_id),
        queue_(std::make_unique<sim::Channel<Call>>(sched)),
        protocol_of_(std::move(protocol_of)),
        rng_(seed) {
    if (cfg.admission_enabled()) admission_ = std::make_unique<AdmissionController>(cfg);
    if (cfg.cache_enabled()) {
      retry_cache_ = std::make_unique<RetryCache>(cfg.retry_cache_entries);
    }
  }

  std::uint32_t shard_id() const { return shard_id_; }

  /// True when the OverloadConfig turned the admission gate on (transports
  /// skip admission-only work like header pre-parsing otherwise).
  bool admission_enabled() const { return admission_ != nullptr; }

  /// The shard's call queue. Handlers block on queue().recv() directly
  /// (no extra coroutine layer) and pair it with note_dequeued().
  sim::Channel<Call>& queue() { return *queue_; }

  /// Admission decision for an arrival while the queue holds its current
  /// depth. kAdmit when no admission control is configured.
  Gate gate(const Call& call) const {
    if (!admission_) return Gate::kAdmit;
    switch (admission_->decide(queue_->size(), protocol_of_(call))) {
      case AdmissionController::Decision::kShedNewest: return Gate::kShedArrival;
      case AdmissionController::Decision::kShedOldest: return Gate::kEvictOldest;
      case AdmissionController::Decision::kAdmit: break;
    }
    return Gate::kAdmit;
  }

  /// Pop the queue head for eviction (Gate::kEvictOldest), pairing the
  /// admission accounting. False when every queued call is already claimed
  /// by a waking handler — then the caller sheds the arrival instead so
  /// the bound holds at every instant.
  bool evict_oldest(Call& victim) {
    if (!queue_->try_recv(victim)) return false;
    if (admission_) admission_->on_dequeue(protocol_of_(victim));
    return true;
  }

  /// Admit `call` into the shard queue: stamps `enqueued`, pairs the
  /// admission accounting and tracks the depth high-water mark.
  void push(Call call, sim::Time now) {
    call.enqueued = now;
    if (admission_) admission_->on_enqueue(protocol_of_(call));
    queue_->push(std::move(call));
    ++counters_.dispatched;
    if (queue_->size() > stats_.queue_depth_peak) {
      stats_.queue_depth_peak = queue_->size();
    }
    if (stats_.queue_depth_peak > counters_.queued_peak) {
      counters_.queued_peak = stats_.queue_depth_peak;
    }
  }

  /// Pair a blocking queue().recv() with the admission accounting.
  void note_dequeued(const Call& call) {
    if (admission_) admission_->on_dequeue(protocol_of_(call));
  }

  /// Non-blocking dequeue with the same pairing — the work-stealing path
  /// (a sibling shard's idle handler) and opportunistic local pops.
  bool try_take(Call& out) {
    if (!queue_->try_recv(out)) return false;
    if (admission_) admission_->on_dequeue(protocol_of_(out));
    return true;
  }

  /// One call answered busy (admission shed or a capped-out pool).
  void note_shed() {
    ++stats_.calls_shed;
    ++counters_.dropped;
  }

  /// Deadline check at dequeue: true means the caller already gave up and
  /// the call must not cost a handler. Counts calls_expired.
  bool expired_at_dequeue(sim::Time deadline, sim::Time now) {
    if (deadline == 0 || now < deadline) return false;
    ++stats_.calls_expired;
    ++counters_.dropped;
    return true;
  }

  /// Deadline check before sending: true means the handler ran but the
  /// response would be ignored. Counts responses_expired (the call itself
  /// still executed, so it is not a drop).
  bool expired_before_response(sim::Time deadline, sim::Time now) {
    if (deadline == 0 || now < deadline) return false;
    ++stats_.responses_expired;
    return true;
  }

  /// Drain every queued-but-unexecuted call at stop() with admission
  /// pairing and drop accounting; returned so the transport can release
  /// owned resources (pooled buffers) before closing the queue.
  std::vector<Call> drain() {
    std::vector<Call> out;
    Call call;
    while (queue_->try_recv(call)) {
      if (admission_) admission_->on_dequeue(protocol_of_(call));
      out.push_back(std::move(call));
    }
    stats_.dropped_on_stop += out.size();
    counters_.dropped += out.size();
    return out;
  }

  void close() { queue_->close(); }

  /// Per-<conn, call> dedup cache; null when the config disables it.
  RetryCache* retry_cache() { return retry_cache_.get(); }

  /// This shard's stats block. Only this shard's loops write scalars here
  /// (plus the stealing exception, which the counters record explicitly);
  /// the server's stats() override folds the blocks into one view.
  RpcStats& stats() { return stats_; }
  ShardCounters& counters() { return counters_; }
  const ShardCounters& counters() const { return counters_; }

  /// Deterministic per-shard stream (seeded per shard at construction) for
  /// tie-breaking decisions like the steal-scan start, so shard counts
  /// never perturb a sibling's draws and seeded runs stay byte-identical.
  sim::Rng& rng() { return rng_; }

 private:
  std::uint32_t shard_id_;
  std::unique_ptr<sim::Channel<Call>> queue_;
  ProtocolFn protocol_of_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<RetryCache> retry_cache_;
  RpcStats stats_;
  ShardCounters counters_;
  sim::Rng rng_;
};

/// How often a stealing handler with nothing queued anywhere re-scans the
/// sibling shards. Stealing handlers poll instead of parking on their own
/// queue (a blocked recv never sees a sibling's backlog build), so this
/// bounds both the steal latency and the idle event rate.
inline constexpr sim::Dur kStealPollInterval = sim::micros(100);

/// Per-shard seed derivation shared by both transports: a splitmix64-style
/// mix of the server's base seed and the shard index, so every shard owns
/// an independent deterministic stream.
inline std::uint64_t shard_seed(std::uint64_t base, std::uint32_t shard_id) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (shard_id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace rpcoib::rpc
