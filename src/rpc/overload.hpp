// Server-side overload protection (both transports).
//
// Production Hadoop treats overload as a first-class failure mode
// (ipc.server.max.callqueue lineage): a server drowning in calls must shed
// load early and cheaply, not queue without bound. Three cooperating
// pieces live here:
//
//   OverloadConfig / AdmissionPolicy — a bound on the server call queue
//   with a pluggable shedding policy. Shed calls are answered with a
//   "busy" status the client maps to ServerBusyException, which is always
//   retryable (the handler never ran).
//
//   AdmissionController — the per-server book-keeping both transports
//   share: queue-depth checks plus queued-calls-per-protocol counts for
//   the quota policy.
//
//   RetryCache — a bounded LRU keyed by <connection id, call id>. Clients
//   keep one call id across attempts of the same logical call, so the
//   server can tell a retry from a new call: if the first attempt already
//   executed, the cached response frame is re-sent instead of running the
//   handler again. This is what makes retrying *non-idempotent* methods
//   after a timeout safe (see RpcRetryPolicy::retry_non_idempotent_on_timeout).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

#include "net/bytes.hpp"

namespace rpcoib::rpc {

/// What to do when a call arrives at a full queue.
enum class AdmissionPolicy : std::uint8_t {
  kRejectNewest = 0,  // shed the arriving call (Hadoop's default)
  kRejectOldest,      // admit the arrival, shed the longest-queued call
  kProtocolQuota,     // additionally cap queued calls per protocol
};

struct OverloadConfig {
  /// Upper bound on queued (accepted, not yet executing) calls;
  /// 0 = unbounded (the seed behavior).
  std::size_t max_call_queue = 0;
  AdmissionPolicy policy = AdmissionPolicy::kRejectNewest;
  /// kProtocolQuota only: max queued calls per protocol name; 0 = off.
  std::size_t protocol_quota = 0;
  /// Retry-cache capacity in entries; 0 disables the cache.
  std::size_t retry_cache_entries = 0;

  bool admission_enabled() const {
    return max_call_queue > 0 ||
           (policy == AdmissionPolicy::kProtocolQuota && protocol_quota > 0);
  }
  bool cache_enabled() const { return retry_cache_entries > 0; }
};

/// Admission book-keeping shared by the socket and RPCoIB servers.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit,
    kShedNewest,  // reject the arriving call with "busy"
    kShedOldest,  // admit the arrival, evict the queue head with "busy"
  };

  explicit AdmissionController(const OverloadConfig& cfg) : cfg_(cfg) {}

  /// Fate of a call arriving while `queue_depth` calls are queued.
  Decision decide(std::size_t queue_depth, const std::string& protocol) const {
    if (cfg_.policy == AdmissionPolicy::kProtocolQuota && cfg_.protocol_quota > 0) {
      auto it = queued_.find(protocol);
      if (it != queued_.end() && it->second >= cfg_.protocol_quota) {
        return Decision::kShedNewest;
      }
    }
    if (cfg_.max_call_queue > 0 && queue_depth >= cfg_.max_call_queue) {
      return cfg_.policy == AdmissionPolicy::kRejectOldest ? Decision::kShedOldest
                                                           : Decision::kShedNewest;
    }
    return Decision::kAdmit;
  }

  // Per-protocol counts back the quota policy; a server must pair every
  // admitted enqueue with exactly one on_dequeue (execute, expire, evict,
  // or drain-on-stop).
  void on_enqueue(const std::string& protocol) {
    if (cfg_.policy == AdmissionPolicy::kProtocolQuota) ++queued_[protocol];
  }
  void on_dequeue(const std::string& protocol) {
    if (cfg_.policy != AdmissionPolicy::kProtocolQuota) return;
    auto it = queued_.find(protocol);
    if (it != queued_.end() && it->second > 0) --it->second;
  }

  const OverloadConfig& config() const { return cfg_; }

 private:
  OverloadConfig cfg_;
  std::map<std::string, std::size_t> queued_;
};

/// Bounded LRU of executed calls, keyed by <owner id, call id>.
///
/// The owner id is the session id when the connection advertised one
/// (durable across reconnects — see rpc/session.hpp) and the dense
/// per-server connection sequence number otherwise. Both are
/// deterministic per seed, so cache behavior — including evictions — is
/// too.
class RetryCache {
 public:
  enum class State {
    kFresh,       // never seen: execute, then complete()
    kInProgress,  // first attempt still executing: drop the duplicate
    kCompleted,   // already executed: re-send completed_frame()
  };

  explicit RetryCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look the call up, registering it as in-progress when unseen.
  State begin(std::uint64_t conn_id, std::uint64_t call_id) {
    const Key k{conn_id, call_id};
    auto it = entries_.find(k);
    if (it != entries_.end()) {
      touch(it);
      return it->second.done ? State::kCompleted : State::kInProgress;
    }
    insert(k, Entry{});
    return State::kFresh;
  }

  /// Non-mutating lookup: like begin() but never registers the call.
  /// Lets a server decide a retried attempt's fate (e.g. the session
  /// call-id fence) without planting an in-progress entry that would
  /// swallow the client's next attempt as a duplicate.
  State peek(std::uint64_t conn_id, std::uint64_t call_id) const {
    auto it = entries_.find(Key{conn_id, call_id});
    if (it == entries_.end()) return State::kFresh;
    return it->second.done ? State::kCompleted : State::kInProgress;
  }

  /// Response frame of a completed entry; valid until the next mutation.
  const net::Bytes* completed_frame(std::uint64_t conn_id, std::uint64_t call_id) const {
    auto it = entries_.find(Key{conn_id, call_id});
    if (it == entries_.end() || !it->second.done) return nullptr;
    return &it->second.frame;
  }

  /// Record the response of an executed call — also when the response was
  /// dropped for a passed deadline: the executed outcome must answer the
  /// retry that is already on its way.
  void complete(std::uint64_t conn_id, std::uint64_t call_id, net::Bytes frame) {
    const Key k{conn_id, call_id};
    auto it = entries_.find(k);
    if (it == entries_.end()) {
      // The in-progress entry was evicted while the handler ran.
      insert(k, Entry{true, std::move(frame), {}});
      return;
    }
    it->second.done = true;
    it->second.frame = std::move(frame);
    touch(it);
  }

  /// Drop an in-progress entry without recording an outcome — used when
  /// the attempt was shed with a retryable status (e.g. a capped-out
  /// buffer pool): the client's retry must execute fresh, not be swallowed
  /// as a duplicate of an attempt that produced nothing.
  void forget(std::uint64_t conn_id, std::uint64_t call_id) {
    const Key k{conn_id, call_id};
    auto it = entries_.find(k);
    if (it == entries_.end() || it->second.done) return;
    lru_.erase(it->second.lru);
    entries_.erase(it);
  }

  /// Drop every entry owned by `owner_id` — the dedup key space of one
  /// expired/evicted session (or one torn-down sessionless connection).
  /// Keys sort by owner first, so this is one contiguous map range.
  void forget_owner(std::uint64_t owner_id) {
    auto lo = entries_.lower_bound(Key{owner_id, 0});
    auto hi = owner_id == ~std::uint64_t{0} ? entries_.end()
                                            : entries_.lower_bound(Key{owner_id + 1, 0});
    if (lo == hi) return;
    for (auto it = lo; it != hi; ++it) lru_.erase(it->second.lru);
    entries_.erase(lo, hi);
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Key {
    std::uint64_t conn_id = 0;
    std::uint64_t call_id = 0;
    friend bool operator<(const Key& a, const Key& b) {
      return a.conn_id != b.conn_id ? a.conn_id < b.conn_id : a.call_id < b.call_id;
    }
  };
  struct Entry {
    bool done = false;
    net::Bytes frame;               // full response frame, re-sent verbatim
    std::list<Key>::iterator lru{};  // position in lru_ (front = hottest)
  };
  using Map = std::map<Key, Entry>;

  void touch(Map::iterator it) { lru_.splice(lru_.begin(), lru_, it->second.lru); }

  void insert(const Key& k, Entry e) {
    lru_.push_front(k);
    e.lru = lru_.begin();
    entries_.emplace(k, std::move(e));
    while (capacity_ > 0 && entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  std::size_t capacity_;
  std::list<Key> lru_;
  Map entries_;
};

}  // namespace rpcoib::rpc
