// Adaptive small-message coalescing (client call batching, server
// response batching).
//
// At high call rates the per-message framework cost — framing, syscall or
// doorbell, receive wakeup — dominates small RPCs, exactly the regime the
// paper's Reader-thread analysis (Section III-D) identifies as the socket
// path's throughput cap. The standard InfiniBand cure is coalescing:
// MPICH2-over-IB aggregates small eager messages, and Ibdxnet's send
// thread batches queued small messages into one work request. Both
// transports here do the same: sub-threshold calls accumulate per
// connection and flush as one multi-call frame when a size/count limit is
// reached or a short linger expires.
//
// The linger is adaptive: each connection tracks an EWMA of the
// inter-append gap, and when arrivals are sparse (gap >= linger) the flush
// happens on the next scheduler tick instead of waiting the full linger —
// a lone caller keeps fig5-latency behavior, while concurrent callers pay
// the linger once and amortize the per-message cost across the batch.
//
// Batching is OFF by default; with it disabled every wire byte is
// identical to the unbatched build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/bytes.hpp"
#include "sim/time.hpp"

namespace rpcoib::rpc {

/// Knobs for small-message coalescing. Applied per client (requests) and
/// per server (responses); the engine sets both from one config.
struct BatchConfig {
  /// Master switch. Off keeps the seed's one-frame-per-call wire format
  /// byte for byte.
  bool enabled = false;
  /// Flush once the buffered payload reaches this many bytes. The RDMA
  /// path additionally clamps to the connection's eager threshold so a
  /// batch frame always fits a pre-posted receive buffer.
  std::size_t max_bytes = 8 * 1024;
  /// Flush once this many calls are buffered.
  std::size_t max_calls = 16;
  /// Longest a buffered call waits for company before the batch flushes.
  /// Sized to cover the phase spread of callers pipelined around a shared
  /// connection (a fraction of the small-call RTT); the adaptive estimator
  /// collapses it to zero when arrivals are sparse. Servers cap their
  /// response-side linger at a quarter of this: responses only need to
  /// cover handler-completion stagger, not caller phase alignment.
  sim::Dur linger = sim::micros(30);
  /// Only messages at or below this size are coalesced; larger ones keep
  /// their own frame (they amortize their framework cost already).
  std::size_t small_threshold = 1024;

  bool batchable(std::size_t msg_bytes) const {
    return enabled && msg_bytes <= small_threshold;
  }
};

/// EWMA estimator of inter-arrival gaps, deciding whether a linger is
/// worth paying: under sparse arrivals (gap >= linger) no company is
/// coming and the answer is zero; under dense arrivals the configured
/// linger buys a multi-message frame. Shared by the client call batcher
/// and the servers' response coalescing.
class LingerEstimator {
 public:
  /// Record one arrival at `now`.
  void note(sim::Time now) {
    if (last_ != 0 && now >= last_) {
      const double gap = static_cast<double>(now - last_);
      // EWMA with alpha 1/4: a few back-to-back arrivals are enough to
      // re-enter lingering mode after an idle spell.
      ewma_gap_ns_ = ewma_gap_ns_ == 0 ? gap : ewma_gap_ns_ * 0.75 + gap * 0.25;
    }
    last_ = now;
  }

  /// The linger the arrival pattern justifies: zero when sparse, the
  /// configured linger when arrivals have been landing closer than it.
  sim::Dur linger(sim::Dur cfg_linger) const {
    if (ewma_gap_ns_ == 0 || ewma_gap_ns_ >= static_cast<double>(cfg_linger)) return 0;
    return cfg_linger;
  }

 private:
  sim::Time last_ = 0;
  double ewma_gap_ns_ = 0;  // EWMA of inter-arrival gaps, nanoseconds
};

/// Per-connection accumulator for sub-threshold messages, shared by both
/// transports. Holds the buffered payloads, decides when the limits force
/// a flush, and runs the adaptive-linger estimator. The owner is
/// responsible for the actual wire format and for arming flush timers;
/// `epoch` invalidates timers armed for batches that already flushed.
class CallBatcher {
 public:
  explicit CallBatcher(const BatchConfig& cfg) : cfg_(cfg) {}

  /// Buffer one serialized message. `now` feeds the inter-arrival EWMA.
  void append(net::Bytes payload, sim::Time now) {
    gaps_.note(now);
    bytes_ += payload.size();
    items_.push_back(std::move(payload));
  }

  /// True once a size/count limit forces an immediate flush.
  bool full() const {
    return items_.size() >= cfg_.max_calls || bytes_ >= cfg_.max_bytes;
  }

  /// Would appending `msg_bytes` more blow `limit_bytes`? (RDMA eager
  /// frames must fit the peer's pre-posted receive buffer.)
  bool would_overflow(std::size_t msg_bytes, std::size_t limit_bytes) const {
    return !items_.empty() && bytes_ + msg_bytes > limit_bytes;
  }

  /// Linger for the batch just opened: zero under sparse arrivals (the
  /// EWMA gap says no company is coming), the configured linger otherwise.
  sim::Dur adaptive_linger() const { return gaps_.linger(cfg_.linger); }

  /// Take the buffered messages for flushing and open a new epoch (stale
  /// flush timers compare their saved epoch and stand down).
  std::vector<net::Bytes> take() {
    ++epoch_;
    bytes_ = 0;
    return std::exchange(items_, {});
  }

  bool empty() const { return items_.empty(); }
  std::size_t count() const { return items_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::uint64_t epoch() const { return epoch_; }
  const BatchConfig& config() const { return cfg_; }

 private:
  BatchConfig cfg_;
  std::vector<net::Bytes> items_;
  std::size_t bytes_ = 0;
  std::uint64_t epoch_ = 0;
  LingerEstimator gaps_;
};

}  // namespace rpcoib::rpc
