// HMaster: HBase's master daemon.
//
// Runs on its own node (as in the paper's Fig. 8 setup: "The master node,
// HMaster, runs on a separate node"). Region servers report in over
// HMasterInterface at startup; clients fetch the region map from the
// master before their first operation — so region discovery is real RPC
// traffic, not wiring.
#pragma once

#include <map>
#include <memory>

#include "hdfs/types.hpp"
#include "rpc/rpc.hpp"
#include "rpcoib/engine.hpp"

namespace rpcoib::hbase {

inline constexpr const char* kMasterProtocol = "hbase.HMasterInterface";

struct RegionLocation {
  std::int32_t index = -1;
  std::int32_t host = -1;
  std::uint16_t port = 0;

  void write(rpc::DataOutput& out) const {
    out.write_vi32(index);
    out.write_vi32(host);
    out.write_u16(port);
  }
  void read_fields(rpc::DataInput& in) {
    index = in.read_vi32();
    host = in.read_vi32();
    port = in.read_u16();
  }
};

struct RegionServerStartupParam final : rpc::Writable {
  RegionLocation location;
  void write(rpc::DataOutput& out) const override { location.write(out); }
  void read_fields(rpc::DataInput& in) override { location.read_fields(in); }
};

struct RegionLocationsResult final : rpc::Writable {
  bool complete = false;  // all expected region servers have reported
  std::vector<RegionLocation> regions;

  void write(rpc::DataOutput& out) const override {
    out.write_bool(complete);
    out.write_vi32(static_cast<std::int32_t>(regions.size()));
    for (const RegionLocation& r : regions) r.write(out);
  }
  void read_fields(rpc::DataInput& in) override {
    complete = in.read_bool();
    regions.resize(static_cast<std::size_t>(in.read_vi32()));
    for (RegionLocation& r : regions) r.read_fields(in);
  }
};

class HMaster {
 public:
  HMaster(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
          int expected_region_servers);
  ~HMaster();
  HMaster(const HMaster&) = delete;
  HMaster& operator=(const HMaster&) = delete;

  void start();
  void stop();

  const net::Address& addr() const { return addr_; }
  std::size_t registered_regions() const { return regions_.size(); }

 private:
  void register_handlers();

  cluster::Host& host_;
  net::Address addr_;
  int expected_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::map<std::int32_t, RegionLocation> regions_;
};

}  // namespace rpcoib::hbase
