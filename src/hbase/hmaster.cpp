#include "hbase/hmaster.hpp"

namespace rpcoib::hbase {

using sim::Co;

HMaster::HMaster(cluster::Host& host, oib::RpcEngine& engine, net::Address addr,
                 int expected_region_servers)
    : host_(host), addr_(addr), expected_(expected_region_servers) {
  server_ = engine.make_server(host_, addr_);
  register_handlers();
}

HMaster::~HMaster() { stop(); }

void HMaster::start() { server_->start(); }
void HMaster::stop() {
  if (server_) server_->stop();
}

void HMaster::register_handlers() {
  rpc::Dispatcher& d = server_->dispatcher();

  d.register_method(kMasterProtocol, "regionServerStartup",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      RegionServerStartupParam p;
                      p.read_fields(in);
                      regions_[p.location.index] = p.location;
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(kMasterProtocol, "getRegionLocations",
                    [this](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
                      RegionLocationsResult r;
                      r.complete = static_cast<int>(regions_.size()) >= expected_;
                      for (const auto& [idx, loc] : regions_) r.regions.push_back(loc);
                      r.write(out);
                      co_return;
                    });
}

}  // namespace rpcoib::hbase
