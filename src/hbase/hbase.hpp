// Mini-HBase: HMaster, HRegionServers, and the HTable client.
//
// Reproduces the structure the paper's Fig. 8 experiments exercise:
//  * clients issue Get/Put to region servers over HBase's own RPC channel
//    — stock socket transport, or RDMA ("HBaseoIB", [7]),
//  * every Put appends to a WAL whose blocks live in HDFS (pipeline
//    traffic + NameNode RPCs),
//  * the memstore flushes to an HFile in HDFS when it fills — the HDFS
//    create/addBlock/complete traffic that makes the 50/50 mix workload so
//    sensitive to Hadoop RPC performance (the paper's +24%),
//  * Get misses read HFile blocks, occasionally re-resolving block
//    locations at the NameNode.
//
// The Hadoop-RPC transport (NameNode traffic) and the HBase data transport
// are configured independently, exactly like the paper's config matrix.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hbase/hmaster.hpp"
#include "hdfs/hdfs_cluster.hpp"
#include "sim/sync.hpp"
#include "trace/context.hpp"

namespace rpcoib::hbase {

inline constexpr const char* kRegionProtocol = "hbase.HRegionInterface";

/// HBase's client<->regionserver transport (the HBaseoIB axis).
enum class HBaseMode {
  kSocket1GigE,
  kSocketIPoIB,
  kRdma,  // HBaseoIB
};

inline const char* hbase_mode_name(HBaseMode m) {
  switch (m) {
    case HBaseMode::kSocket1GigE: return "HBase(1GigE)";
    case HBaseMode::kSocketIPoIB: return "HBase(IPoIB)";
    case HBaseMode::kRdma: return "HBaseoIB";
  }
  return "?";
}

struct HBaseConfig {
  std::size_t record_bytes = 1024;  // YCSB record size in the paper
  /// Memstore flush threshold. While a flush is in progress the region
  /// blocks updates (hbase.hregion.memstore.block.multiplier semantics),
  /// so the flush's HDFS write — NameNode RPCs included — sits on the put
  /// path, which is what makes Fig. 8's put/mix workloads sensitive to
  /// Hadoop RPC performance.
  std::uint64_t memstore_flush_bytes = 64ULL << 20;  // hbase default; benches scale it
  /// Puts per WAL group-commit: the batch leader synchronously drives the
  /// pipeline append plus a NameNode lease/allocation call.
  int wal_batch = 4;
  /// Get misses that trigger a NameNode getBlockLocations (HFile block
  /// index re-resolution rate ~ 1/N).
  int get_nn_interval = 10;
  std::uint16_t rs_port = 60020;
};

struct PutParam final : rpc::Writable {
  std::string key;
  net::Bytes value;
  void write(rpc::DataOutput& out) const override {
    out.write_text(key);
    out.write_bytes(value);
  }
  void read_fields(rpc::DataInput& in) override {
    key = in.read_text();
    value = in.read_bytes();
  }
};

struct GetParam final : rpc::Writable {
  std::string key;
  void write(rpc::DataOutput& out) const override { out.write_text(key); }
  void read_fields(rpc::DataInput& in) override { key = in.read_text(); }
  /// Point gets are the region server's hot read path (YCSB zipfian):
  /// eligible for the one-sided read plane, keyed by row key.
  std::optional<std::string> onesided_key(const std::string& protocol,
                                          const std::string& method) const override {
    if (protocol == kRegionProtocol && method == "get") return key;
    return std::nullopt;
  }
};

struct GetResult final : rpc::Writable {
  bool found = false;
  net::Bytes value;
  void write(rpc::DataOutput& out) const override {
    out.write_bool(found);
    if (found) out.write_bytes(value);
  }
  void read_fields(rpc::DataInput& in) override {
    found = in.read_bool();
    if (found) value = in.read_bytes();
  }
};

/// One region server: Get/Put over the HBase channel, WAL + memstore +
/// flush over HDFS.
class RegionServer {
 public:
  RegionServer(cluster::Host& host, oib::RpcEngine& hbase_engine,
               hdfs::HdfsCluster& hdfs, HBaseConfig cfg, int index);
  ~RegionServer();
  RegionServer(const RegionServer&) = delete;
  RegionServer& operator=(const RegionServer&) = delete;

  /// Start serving; if a master address is given, report in over
  /// HMasterInterface (regionServerStartup).
  void start(net::Address master_addr = {-1, 0});
  void stop();

  net::Address addr() const { return {host_.id(), cfg_.rs_port}; }
  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }
  std::uint64_t flushes() const { return flushes_; }

 private:
  void register_handlers();
  sim::Co<void> append_wal(std::size_t bytes, trace::TraceContext ctx = {});
  sim::Task flush_memstore(std::uint64_t bytes, trace::TraceContext ctx = {});
  sim::Task report_to_master(net::Address master_addr);

  std::unique_ptr<sim::SimEvent> flush_done_;

  cluster::Host& host_;
  oib::RpcEngine& hbase_engine_;
  hdfs::HdfsCluster& hdfs_;
  HBaseConfig cfg_;
  int index_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::unique_ptr<hdfs::DFSClient> dfs_;

  std::map<std::string, std::uint32_t> memstore_;  // key -> value size
  std::map<std::string, std::uint32_t> store_;     // flushed keys ("HFiles")
  std::uint64_t memstore_bytes_ = 0;
  std::uint64_t wal_pending_puts_ = 0;
  std::uint64_t wal_block_fill_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t get_misses_ = 0;
  std::uint64_t flushes_ = 0;
  int flush_seq_ = 0;
  bool flushing_ = false;
};

/// The client library: routes keys to region servers by hash. The region
/// map comes from the HMaster on first use (real discovery RPCs), or can
/// be injected directly for tests.
class HTable {
 public:
  /// Master-based discovery (the normal path).
  HTable(cluster::Host& host, oib::RpcEngine& hbase_engine, net::Address master_addr);
  /// Direct injection (tests / static deployments).
  HTable(cluster::Host& host, oib::RpcEngine& hbase_engine,
         std::vector<net::Address> regions);

  sim::Co<void> put(const std::string& key, net::ByteSpan value);
  sim::Co<GetResult> get(const std::string& key);

 private:
  sim::Co<void> ensure_regions();
  net::Address region_for(const std::string& key) const;

  cluster::Host& host_;
  std::unique_ptr<rpc::RpcClient> rpc_;
  net::Address master_addr_{-1, 0};
  std::vector<net::Address> regions_;
};

/// Cluster wiring: HMaster (on the master node, like the paper's setup)
/// plus N region servers that report to it at startup.
class HBaseCluster {
 public:
  HBaseCluster(oib::RpcEngine& hbase_engine, hdfs::HdfsCluster& hdfs,
               std::vector<cluster::HostId> rs_hosts, HBaseConfig cfg = {});

  void start();
  void stop();

  /// Clients discover regions through the HMaster.
  std::unique_ptr<HTable> make_table(cluster::Host& host);
  std::vector<net::Address> region_addrs() const;
  RegionServer& region(std::size_t i) { return *regions_[i]; }
  std::size_t num_regions() const { return regions_.size(); }
  HMaster& master() { return *master_; }

 private:
  oib::RpcEngine& hbase_engine_;
  std::unique_ptr<HMaster> master_;
  std::vector<std::unique_ptr<RegionServer>> regions_;
};

}  // namespace rpcoib::hbase
