#include "hbase/hbase.hpp"

#include <functional>

#include "rpc/buffers.hpp"
#include "trace/trace.hpp"

namespace rpcoib::hbase {

using sim::Co;
using sim::Task;

namespace {
const rpc::MethodKey kPut{kRegionProtocol, "put"};
const rpc::MethodKey kGet{kRegionProtocol, "get"};
}  // namespace

// ---------------------------------------------------------------------------
// RegionServer

RegionServer::RegionServer(cluster::Host& host, oib::RpcEngine& hbase_engine,
                           hdfs::HdfsCluster& hdfs, HBaseConfig cfg, int index)
    : host_(host), hbase_engine_(hbase_engine), hdfs_(hdfs), cfg_(cfg), index_(index) {
  server_ = hbase_engine_.make_server(host_, addr());
  dfs_ = hdfs_.make_client(host_, "regionserver-" + std::to_string(index_));
  register_handlers();
}

RegionServer::~RegionServer() { stop(); }

void RegionServer::start(net::Address master_addr) {
  server_->start();
  if (master_addr.host >= 0) {
    host_.sched().spawn(report_to_master(master_addr));
  }
}

sim::Task RegionServer::report_to_master(net::Address master_addr) {
  static const rpc::MethodKey kStartup{kMasterProtocol, "regionServerStartup"};
  // Master traffic rides HBase's own RPC channel, not Hadoop RPC.
  std::unique_ptr<rpc::RpcClient> master_rpc = hbase_engine_.make_client(host_);
  RegionServerStartupParam p;
  p.location.index = index_;
  p.location.host = host_.id();
  p.location.port = cfg_.rs_port;
  rpc::BooleanWritable ok;
  try {
    co_await master_rpc->call(master_addr, kStartup, p, &ok);
  } catch (const rpc::RpcTransportError&) {
    // Master unreachable at startup; a real server would retry.
  }
}
void RegionServer::stop() {
  if (server_) server_->stop();
}

sim::Co<void> RegionServer::append_wal(std::size_t bytes, trace::TraceContext ctx) {
  // Group commit: the batch's bytes go down the WAL pipeline and the
  // NameNode is consulted for the append's block bookkeeping — the
  // durability sync that puts wait on in real HBase.
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope wal(tr, "wal.sync", trace::Kind::kInternal, trace::Category::kDisk,
                       ctx, host_.id());
  const net::Transport t = hdfs::data_transport(hdfs_.data_mode());
  const auto dns = hdfs_.namenode().live_datanodes();
  if (!dns.empty()) {
    const auto dn = dns[static_cast<std::size_t>(index_) % dns.size()];
    co_await hbase_engine_.testbed().fabric().transfer(host_.id(), dn, t, bytes);
  }
  wal.activate();
  const bool ok = co_await dfs_->renew_lease("/hbase/wal-" + std::to_string(index_));
  (void)ok;
  wal.end();
}

sim::Task RegionServer::flush_memstore(std::uint64_t bytes, trace::TraceContext ctx) {
  // HFile flush: the full HDFS write path (create/addBlock/pipeline/
  // blockReceived/complete) — where Hadoop RPC performance bites Fig. 8.
  // The region blocks updates until the flush finishes.
  ++flushes_;
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope flush(tr, "memstore.flush", trace::Kind::kInternal,
                         trace::Category::kDisk, ctx, host_.id());
  flush.activate();
  co_await dfs_->write_file("/hbase/region-" + std::to_string(index_) + "/hfile-" +
                                std::to_string(flush_seq_++),
                            bytes);
  flush.end();
  flushing_ = false;
  flush_done_->set();
}

void RegionServer::register_handlers() {
  rpc::Dispatcher& d = server_->dispatcher();

  d.register_method(kRegionProtocol, "put",
                    [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
                      const trace::TraceContext hctx = in.trace_context;
                      PutParam p;
                      p.read_fields(in);
                      ++puts_;
                      // Region blocked while a flush is in progress.
                      if (flushing_ && flush_done_) co_await flush_done_->wait();
                      memstore_[p.key] = static_cast<std::uint32_t>(p.value.size());
                      memstore_bytes_ += p.value.size();
                      // Export the get-shaped response for this row so hot
                      // readers bypass the handler. The value bytes match
                      // both the memstore and the flushed-store read path,
                      // so the entry stays valid across a flush.
                      if (rpc::OneSidedPublisher* pub = server_->onesided()) {
                        GetResult cached;
                        cached.found = true;
                        cached.value.assign(p.value.size(), net::Byte{0x42});
                        rpc::DataOutputBuffer buf(host_.cost());
                        cached.write(buf);
                        pub->publish(
                            rpc::onesided_entry_key(kRegionProtocol, "get", p.key),
                            buf.data());
                      }
                      ++wal_pending_puts_;
                      if (wal_pending_puts_ >= static_cast<std::uint64_t>(cfg_.wal_batch)) {
                        // Group-commit leader: sync the batch to the WAL.
                        const std::size_t batch =
                            wal_pending_puts_ * (cfg_.record_bytes + 64);
                        wal_pending_puts_ = 0;
                        co_await append_wal(batch, hctx);
                      }
                      if (memstore_bytes_ >= cfg_.memstore_flush_bytes && !flushing_) {
                        flushing_ = true;
                        flush_done_ = std::make_unique<sim::SimEvent>(host_.sched());
                        const std::uint64_t to_flush = memstore_bytes_;
                        memstore_bytes_ = 0;
                        for (auto& [k, v] : memstore_) store_[k] = v;
                        memstore_.clear();
                        host_.sched().spawn(flush_memstore(to_flush, hctx));
                      }
                      rpc::BooleanWritable(true).write(out);
                      co_return;
                    });

  d.register_method(
      kRegionProtocol, "get", [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        const trace::TraceContext hctx = in.trace_context;
        GetParam p;
        p.read_fields(in);
        ++gets_;
        GetResult r;
        auto it = memstore_.find(p.key);
        if (it != memstore_.end()) {
          r.found = true;
          r.value.assign(it->second, net::Byte{0x42});
        } else {
          auto sit = store_.find(p.key);
          if (sit != store_.end()) {
            // HFile read: local disk + occasional NameNode block lookup.
            r.found = true;
            r.value.assign(sit->second, net::Byte{0x42});
            trace::TraceCollector* tr = trace::active(host_.tracer());
            const sim::Time t_disk = host_.sched().now();
            co_await host_.disk_io(sit->second + 4096);  // record + index block
            if (tr != nullptr && hctx.valid()) {
              tr->add_complete("hfile.read", trace::Kind::kInternal,
                               trace::Category::kDisk, hctx, host_.id(), t_disk,
                               host_.sched().now());
            }
            ++get_misses_;
            if (get_misses_ % static_cast<std::uint64_t>(cfg_.get_nn_interval) == 0) {
              trace::activate(tr, hctx);
              hdfs::LocatedBlocksResult lb = co_await dfs_->get_block_locations(
                  "/hbase/region-" + std::to_string(index_) + "/hfile-0", 0,
                  cfg_.record_bytes);
              (void)lb;
            }
          }
        }
        r.write(out);
        co_return;
      });
}

// ---------------------------------------------------------------------------
// HTable

HTable::HTable(cluster::Host& host, oib::RpcEngine& hbase_engine, net::Address master_addr)
    : host_(host), rpc_(hbase_engine.make_client(host)), master_addr_(master_addr) {}

HTable::HTable(cluster::Host& host, oib::RpcEngine& hbase_engine,
               std::vector<net::Address> regions)
    : host_(host), rpc_(hbase_engine.make_client(host)), regions_(std::move(regions)) {}

// Region discovery: poll the master until every region server has
// reported (mirrors hbase clients blocking on .META. availability).
sim::Co<void> HTable::ensure_regions() {
  if (!regions_.empty()) co_return;
  static const rpc::MethodKey kLocations{kMasterProtocol, "getRegionLocations"};
  rpc::NullWritable arg;
  for (;;) {
    RegionLocationsResult r;
    co_await rpc_->call(master_addr_, kLocations, arg, &r);
    if (r.complete && !r.regions.empty()) {
      for (const RegionLocation& loc : r.regions) {
        regions_.push_back(net::Address{loc.host, loc.port});
      }
      co_return;
    }
    co_await sim::delay(host_.sched(), sim::millis(100));
  }
}

net::Address HTable::region_for(const std::string& key) const {
  return regions_[std::hash<std::string>{}(key) % regions_.size()];
}

sim::Co<void> HTable::put(const std::string& key, net::ByteSpan value) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope op(tr, "hbase.put", trace::Kind::kInternal, trace::Category::kOther,
                      tr != nullptr ? tr->take_ambient() : trace::TraceContext{},
                      host_.id());
  co_await ensure_regions();
  PutParam p;
  p.key = key;
  p.value.assign(value.begin(), value.end());
  rpc::BooleanWritable ok;
  op.activate();
  co_await rpc_->call(region_for(key), kPut, p, &ok);
  op.end();
}

sim::Co<GetResult> HTable::get(const std::string& key) {
  trace::TraceCollector* tr = trace::active(host_.tracer());
  trace::SpanScope op(tr, "hbase.get", trace::Kind::kInternal, trace::Category::kOther,
                      tr != nullptr ? tr->take_ambient() : trace::TraceContext{},
                      host_.id());
  co_await ensure_regions();
  GetParam p;
  p.key = key;
  GetResult r;
  op.activate();
  co_await rpc_->call(region_for(key), kGet, p, &r);
  op.end();
  co_return r;
}

// ---------------------------------------------------------------------------
// HBaseCluster

namespace {
constexpr std::uint16_t kMasterPort = 60000;
}

HBaseCluster::HBaseCluster(oib::RpcEngine& hbase_engine, hdfs::HdfsCluster& hdfs,
                           std::vector<cluster::HostId> rs_hosts, HBaseConfig cfg)
    : hbase_engine_(hbase_engine) {
  // HMaster on the master node (co-located with the NameNode host here;
  // the paper runs it on its own node of the same class).
  master_ = std::make_unique<HMaster>(
      hbase_engine.testbed().host(hdfs.nn_addr().host), hbase_engine,
      net::Address{hdfs.nn_addr().host, kMasterPort}, static_cast<int>(rs_hosts.size()));
  int idx = 0;
  for (cluster::HostId h : rs_hosts) {
    regions_.push_back(std::make_unique<RegionServer>(hbase_engine.testbed().host(h),
                                                      hbase_engine, hdfs, cfg, idx++));
  }
}

void HBaseCluster::start() {
  master_->start();
  for (auto& r : regions_) r->start(master_->addr());
}

void HBaseCluster::stop() {
  for (auto& r : regions_) r->stop();
  master_->stop();
}

std::vector<net::Address> HBaseCluster::region_addrs() const {
  std::vector<net::Address> out;
  for (const auto& r : regions_) out.push_back(r->addr());
  return out;
}

std::unique_ptr<HTable> HBaseCluster::make_table(cluster::Host& host) {
  return std::make_unique<HTable>(host, hbase_engine_, master_->addr());
}

}  // namespace rpcoib::hbase
