// Host-side cost model.
//
// The paper's central claim is that on fast networks the *host* costs —
// JVM heap allocation, buffer-growth copies, heap<->native copies, JNI
// crossings, thread wakeups — dominate Hadoop RPC latency. The substituted
// simulator makes each of those costs an explicit, named, chargeable
// quantity. The baseline RPC stack executes the real algorithms (real
// reallocations, real memcpys of real bytes) and *accrues* these model
// costs as it goes; the owning coroutine then charges the accrued time to
// its host's CPU in virtual time.
//
// Defaults are calibrated so the micro-benchmarks land on the paper's
// measured endpoints (see bench/bench_fig5_latency.cpp and DESIGN.md §3).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace rpcoib::cluster {

struct CostModel {
  // --- JVM memory management -------------------------------------------
  /// Fixed cost of one heap allocation (TLAB bump + header init).
  double heap_alloc_base_us = 0.25;
  /// Effective bandwidth for fresh heap buffers, GB/s (zeroing plus the
  /// amortized GC pressure large short-lived arrays create).
  double heap_alloc_bw_gbps = 3.0;
  /// Fixed cost of an intra-heap memcpy (System.arraycopy).
  double heap_copy_base_us = 0.05;
  /// Intra-heap copy bandwidth, GB/s.
  double heap_copy_bw_gbps = 3.5;
  /// Fixed cost of a heap<->native copy (JNI Get/SetByteArrayRegion or
  /// socket-write heap pinning).
  double native_copy_base_us = 0.30;
  /// Heap<->native copy bandwidth, GB/s.
  double native_copy_bw_gbps = 2.5;
  /// Copy bandwidth into a DirectByteBuffer (no pinning, no JNI), GB/s.
  double direct_copy_bw_gbps = 6.0;

  // --- Runtime crossings and scheduling --------------------------------
  /// One JNI call boundary crossing.
  double jni_call_us = 0.30;
  /// Cost of one Writable primitive write/read (stream virtual dispatch).
  double field_op_us = 0.04;
  /// Waking a blocked Java thread (notify + scheduler latency).
  double thread_wakeup_us = 2.0;
  /// One syscall (socket read/write entry), excluding copies.
  double syscall_us = 1.5;
  /// Hadoop RPC framework cost shared by BOTH transports (call object
  /// churn, connection-table synchronization, Invocation reflection,
  /// handler queueing). Charged at four symmetric points per round trip:
  /// client send, server dispatch, server respond, client deliver.
  double rpc_framework_us = 4.05;
  /// Java NIO selector dispatch per readable event (Reader thread); the
  /// serial-Reader bottleneck that caps socket-RPC throughput (Fig. 5b).
  double selector_us = 4.8;
  /// JNI verbs completion-queue poll per completion (Java->native WC
  /// array marshalling); caps RPCoIB throughput at its reader.
  double cq_poll_us = 5.3;

  // --- Derived charges ---------------------------------------------------
  // All *_bw_gbps fields are gigaBYTES per second; a copy of `bytes` at
  // B GB/s takes bytes / (B * 1000) microseconds.
  sim::Dur heap_alloc(std::size_t bytes) const {
    return sim::from_us(heap_alloc_base_us + bw_us(bytes, heap_alloc_bw_gbps));
  }
  sim::Dur heap_copy(std::size_t bytes) const {
    return sim::from_us(heap_copy_base_us + bw_us(bytes, heap_copy_bw_gbps));
  }
  sim::Dur native_copy(std::size_t bytes) const {
    return sim::from_us(native_copy_base_us + bw_us(bytes, native_copy_bw_gbps));
  }
  sim::Dur direct_copy(std::size_t bytes) const {
    return sim::from_us(heap_copy_base_us + bw_us(bytes, direct_copy_bw_gbps));
  }
  sim::Dur jni_call() const { return sim::from_us(jni_call_us); }
  sim::Dur field_op() const { return sim::from_us(field_op_us); }
  sim::Dur thread_wakeup() const { return sim::from_us(thread_wakeup_us); }
  sim::Dur syscall() const { return sim::from_us(syscall_us); }
  sim::Dur rpc_framework() const { return sim::from_us(rpc_framework_us); }
  sim::Dur selector() const { return sim::from_us(selector_us); }
  sim::Dur cq_poll() const { return sim::from_us(cq_poll_us); }

 private:
  static double bw_us(std::size_t bytes, double gb_per_sec) {
    return static_cast<double>(bytes) / (gb_per_sec * 1000.0);
  }
};

}  // namespace rpcoib::cluster
