// A simulated compute node.
//
// Matches the paper's testbed nodes: dual quad-core Xeon (8 cores), one HCA
// per network. Simulated Java threads occupy cores through `compute()`;
// anything CPU-bound therefore queues when all cores are busy, which is
// what produces handler saturation in the Fig. 5(b) throughput curves.
#pragma once

#include <algorithm>
#include <string>
#include <utility>

#include "cluster/cost_model.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace rpcoib::trace {
class TraceCollector;
}  // namespace rpcoib::trace

namespace rpcoib::cluster {

/// Index of a host within its cluster.
using HostId = int;

class Host {
 public:
  Host(sim::Scheduler& sched, HostId id, std::string name, int cores, CostModel cost,
       sim::Rng rng)
      : sched_(sched),
        id_(id),
        name_(std::move(name)),
        cost_(cost),
        rng_(rng),
        cores_(sched, cores) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Scheduler& sched() const { return sched_; }
  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  const CostModel& cost() const { return cost_; }
  sim::Rng& rng() { return rng_; }

  /// Tracing sink for everything running on this host (null = untraced).
  trace::TraceCollector* tracer() const { return tracer_; }
  void set_tracer(trace::TraceCollector* t) { tracer_ = t; }

  /// Occupy one CPU core for `d` of virtual time (queueing if all cores
  /// are busy). Zero-duration charges return immediately without touching
  /// the core semaphore.
  sim::Co<void> compute(sim::Dur d) {
    if (d > 0) {
      co_await cores_.acquire();
      co_await sim::delay(sched_, d);
      cores_.release();
    }
    co_return;
  }

  /// Simulated disk: sequential bandwidth of the testbed's single HDD.
  sim::Dur disk_time(std::size_t bytes) const {
    return sim::from_us(static_cast<double>(bytes) / disk_bw_gbps_ / 1000.0);
  }
  void set_disk_bw_gbps(double v) { disk_bw_gbps_ = v; }

  /// Serialized disk access: reads and writes share the single spindle,
  /// so concurrent tasks' I/O queues (the dominant contention in the
  /// paper's Sort runs with 12 task slots per node and one HDD).
  sim::Co<void> disk_io(std::size_t bytes) {
    const sim::Time start = std::max(sched_.now(), disk_free_);
    const sim::Time done = start + disk_time(bytes);
    disk_free_ = done;
    co_await sim::delay(sched_, done - sched_.now());
  }

 private:
  sim::Scheduler& sched_;
  HostId id_;
  std::string name_;
  CostModel cost_;
  sim::Rng rng_;
  sim::Semaphore cores_;
  trace::TraceCollector* tracer_ = nullptr;
  double disk_bw_gbps_ = 0.11;  // ~110 MB/s HDD, per the testbed's single disk
  sim::Time disk_free_ = 0;
};

}  // namespace rpcoib::cluster
