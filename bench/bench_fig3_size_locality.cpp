// Figure 3: Message Size Locality in Hadoop RPC.
//
// Runs a Sort job with per-call size tracing enabled and prints, for the
// paper's three example call kinds — JT heartbeat, TT statusUpdate, NN
// getFileInfo — the observed sizes, their size-class distribution, and
// the locality rate (consecutive calls landing in the same power-of-two
// size class), which is the property the shadow pool exploits.
#include <iostream>
#include <map>
#include <memory>

#include "mapred/mr_cluster.hpp"
#include "metrics/table.hpp"
#include "net/testbed.hpp"

using namespace rpcoib;

namespace {

std::size_t size_class(std::uint32_t n) {
  std::size_t c = 64;
  while (c < n) c *= 2;
  return c;
}

}  // namespace

int main() {
  sim::Scheduler s;
  net::Testbed tb(s, net::Testbed::cluster_a(9));
  oib::RpcEngine engine(tb, oib::EngineConfig{.mode = oib::RpcMode::kSocketIPoIB});
  engine.record_size_sequences(true);

  std::vector<cluster::HostId> slaves;
  for (int i = 1; i <= 8; ++i) slaves.push_back(i);
  hdfs::HdfsConfig hdfs_cfg;
  hdfs_cfg.datanode_disk_writes = true;
  hdfs::HdfsCluster hdfs_cluster(engine, 0, slaves, hdfs::DataMode::kSocketIPoIB, hdfs_cfg);
  mapred::MrCluster mr(engine, hdfs_cluster, 0, slaves);
  hdfs_cluster.start();
  mr.start();

  mapred::JobSpec sort;
  sort.name = "sort-4g";
  sort.num_maps = 64;
  sort.num_reduces = 32;
  sort.input_bytes = 4ULL << 30;
  sort.output_path = "/sort-out";

  s.spawn([](mapred::MrCluster& cluster, hdfs::HdfsCluster& hc, net::Testbed& t,
             mapred::JobSpec spec) -> sim::Task {
    std::unique_ptr<mapred::JobClient> client = cluster.make_client(t.host(0));
    (void)co_await client->run(spec);
    cluster.stop();
    hc.stop();
  }(mr, hdfs_cluster, tb, sort));
  s.run_until(sim::seconds(36000));

  metrics::print_banner(std::cout, "Figure 3: Message Size Locality in Hadoop RPC");

  const std::map<rpc::MethodKey, rpc::MethodProfile> agg = engine.aggregated_profiles();
  struct Probe {
    rpc::MethodKey key;
    const char* label;
  };
  const std::vector<Probe> probes = {
      {{"mapred.InterTrackerProtocol", "heartbeat"}, "JT_heartbeat"},
      {{"mapred.TaskUmbilicalProtocol", "statusUpdate"}, "TT_statusUpdate"},
      {{"hdfs.ClientProtocol", "getFileInfo"}, "NN_getFileInfo"},
      {{"hdfs.DatanodeProtocol", "blockReceived"}, "DN_blockReceived"},
  };

  metrics::Table t({"Call kind", "Calls", "Min (B)", "Max (B)", "Distinct size classes",
                    "Same-class as previous call"});
  for (const Probe& p : probes) {
    auto it = agg.find(p.key);
    if (it == agg.end() || it->second.size_sequence.empty()) continue;
    const std::vector<std::uint32_t>& seq = it->second.size_sequence;
    std::map<std::size_t, int> classes;
    std::size_t same = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ++classes[size_class(seq[i])];
      if (i > 0 && size_class(seq[i]) == size_class(seq[i - 1])) ++same;
    }
    const double locality = seq.size() > 1
                                ? 100.0 * static_cast<double>(same) /
                                      static_cast<double>(seq.size() - 1)
                                : 100.0;
    t.row({p.label, std::to_string(seq.size()),
           metrics::Table::num(it->second.msg_bytes.min(), 0),
           metrics::Table::num(it->second.msg_bytes.max(), 0),
           std::to_string(classes.size()), metrics::Table::pct(locality)});
  }
  t.print(std::cout);

  std::cout << "\nPaper: sizes vary widely across calls (especially heartbeat and\n"
               "       getFileInfo), but consecutive calls of one <protocol, method>\n"
               "       almost always fall in the same size class — Message Size\n"
               "       Locality, the basis of the history-based shadow pool.\n";
  s.drain_tasks();
  return 0;
}
