// Tracing-off overhead check: with no collector attached — or a collector
// attached but disabled — the simulation must behave *identically* to the
// seed code path: same virtual-time results, zero spans recorded, and no
// trace context bytes on the wire. The instrumentation guards every record
// with a single `trace::active()` pointer test, so "off" must be free.
//
// Exits non-zero if the guarded fast path ever diverges.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/pingpong.hpp"

// assert() is compiled out under -DNDEBUG; the check must survive Release.
#define CHECK(cond, msg)                                     \
  do {                                                       \
    if (!(cond)) {                                           \
      std::fprintf(stderr, "FAIL: %s (%s)\n", msg, #cond);   \
      std::exit(1);                                          \
    }                                                        \
  } while (0)

int main() {
  using namespace rpcoib;
  using oib::RpcMode;
  const std::vector<std::size_t> payloads = {1, 256, 4096};

  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    // Baseline: no tracer attached anywhere (the seed configuration).
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<workloads::LatencyResult> base =
        workloads::run_latency(mode, payloads, 4, 64, 1, nullptr);
    const auto t1 = std::chrono::steady_clock::now();

    // Attached-but-disabled tracer: hosts carry the pointer, but
    // trace::active() returns null, so every span site is a no-op.
    trace::TraceCollector off;
    off.set_enabled(false);
    std::vector<workloads::LatencyResult> disabled =
        workloads::run_latency(mode, payloads, 4, 64, 1, &off);
    const auto t2 = std::chrono::steady_clock::now();

    CHECK(off.spans().empty(), "disabled tracer must record nothing");
    CHECK(base.size() == disabled.size(), "result count mismatch");
    for (std::size_t i = 0; i < base.size(); ++i) {
      // Deterministic sim + identical wire bytes => bit-identical results.
      CHECK(base[i].avg_us == disabled[i].avg_us,
            "tracing-off run diverged from untraced run");
      CHECK(base[i].p99_us == disabled[i].p99_us,
            "tracing-off run diverged from untraced run (p99)");
    }

    const double ms_base =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_off =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("mode=%d untraced %.1f ms, disabled-tracer %.1f ms (%+.1f%%)\n",
                static_cast<int>(mode), ms_base, ms_off,
                (ms_off / ms_base - 1.0) * 100.0);
  }
  std::printf("PASS: disabled tracing is behavior-identical to no tracing\n");
  return 0;
}
