// Ablation: what the history-based shadow pool buys.
//
// Compares serialization cost (accrued modeled host time + re-get counts)
// of four buffer strategies over a realistic trace of RPC message sizes:
//   alg1-32B     — Hadoop default: fresh 32-byte buffer, Algorithm 1
//   alg1-10KB    — fixed large initial buffer (the strawman Section II-A
//                  rejects for memory footprint)
//   pool-no-hist — pooled registered buffers but always starting at the
//                  minimum class (no history)
//   pool-history — the full RPCoIB two-level history pool
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/rdma_streams.hpp"

using namespace rpcoib;

namespace {

/// A Sort-like trace: stable per-method sizes with occasional outliers —
/// the Fig. 3 behaviour.
struct CallKind {
  rpc::MethodKey key;
  std::size_t base;
  std::size_t jitter;
};

}  // namespace

int main() {
  sim::Scheduler s;
  net::Testbed tb(s, net::Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());
  const cluster::CostModel cm{};

  const std::vector<CallKind> kinds = {
      {{"mapred.TaskUmbilicalProtocol", "statusUpdate"}, 900, 120},
      {{"mapred.TaskUmbilicalProtocol", "ping"}, 60, 4},
      {{"hdfs.DatanodeProtocol", "blockReceived"}, 430, 16},
      {{"mapred.InterTrackerProtocol", "heartbeat"}, 2600, 1400},
      {{"hdfs.ClientProtocol", "getFileInfo"}, 96, 48},
  };
  constexpr int kCalls = 20000;

  sim::Rng rng(7);
  std::vector<std::pair<const CallKind*, std::size_t>> trace;
  trace.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    const CallKind& k = kinds[rng.next_below(kinds.size())];
    trace.emplace_back(&k, k.base + rng.next_below(k.jitter + 1));
  }

  metrics::print_banner(std::cout, "Ablation: buffer management strategies, " +
                                       std::to_string(kCalls) + " calls");
  metrics::Table t({"Strategy", "Accrued host time (ms)", "Adjustments/re-gets",
                    "Peak resident buffers (KB)"});

  // --- alg1 strategies ---------------------------------------------------
  for (auto [initial, label] :
       {std::pair<std::size_t, const char*>{rpc::kClientInitialBuffer, "alg1-32B"},
        {rpc::kServerInitialBuffer, "alg1-10KB"}}) {
    sim::Dur accrued = 0;
    std::uint64_t adjustments = 0;
    net::Bytes payload(8192, net::Byte{1});
    for (const auto& [kind, size] : trace) {
      rpc::DataOutputBuffer buf(cm, initial);
      std::size_t written = 0;
      while (written < size) {
        const std::size_t n = std::min<std::size_t>(24, size - written);
        buf.write_raw(net::ByteSpan(payload.data(), n));
        written += n;
      }
      accrued += buf.take_accrued();
      adjustments += buf.stats().mem_adjustments;
    }
    // Per-call allocation: footprint is one buffer per in-flight call;
    // report the initial size as the per-handler resident cost.
    t.row({label, metrics::Table::num(sim::to_ms(accrued), 2), std::to_string(adjustments),
           metrics::Table::num(static_cast<double>(initial) / 1024.0, 1)});
  }

  // --- pooled strategies ---------------------------------------------------
  for (bool use_history : {false, true}) {
    oib::NativeBufferPool pool(tb.host(0), stack);
    oib::ShadowPool shadow(pool);
    sim::Dur accrued = 0;
    std::uint64_t regets = 0;
    net::Bytes payload(8192, net::Byte{1});
    for (const auto& [kind, size] : trace) {
      const rpc::MethodKey& key = kind->key;
      oib::RDMAOutputStream out(cm, shadow, key);
      std::size_t written = 0;
      while (written < size) {
        const std::size_t n = std::min<std::size_t>(24, size - written);
        out.write_raw(net::ByteSpan(payload.data(), n));
        written += n;
      }
      accrued += out.take_accrued();
      regets += out.regets();
      oib::NativeBuffer* b = out.take_buffer();
      if (use_history) {
        out.finish(b);
      } else {
        shadow.release(b);  // never update history: always restart at min
      }
    }
    t.row({use_history ? "pool-history (RPCoIB)" : "pool-no-history",
           metrics::Table::num(sim::to_ms(accrued), 2), std::to_string(regets),
           metrics::Table::num(
               static_cast<double>(pool.config().min_class *
                                   pool.config().buffers_per_class) / 1024.0, 1)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: history pool ~zero re-gets at far lower accrued cost than\n"
               "alg1-32B, without alg1-10KB's per-call footprint (Section III-C).\n";
  return 0;
}
