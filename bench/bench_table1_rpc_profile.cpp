// Table I: RPC invocation profiling in a MapReduce job of Sort.
//
// Runs a 4 GB Sort on 9 nodes (1 master + 8 slaves, the paper's Cluster A
// subset) with default socket RPC, then prints per-<protocol, method>
// averages of memory-adjustment count, serialization time, and send time,
// split into Map-phase and Reduce-phase protocols like the paper's table.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "mapred/mr_cluster.hpp"
#include "metrics/table.hpp"
#include "net/testbed.hpp"

using namespace rpcoib;

namespace {

struct Row {
  std::string protocol, method;
  double adjustments, serialize_us, send_us;
  std::uint64_t calls;
};

}  // namespace

int main() {
  sim::Scheduler s;
  net::TestbedConfig cfg = net::Testbed::cluster_a(9);
  net::Testbed tb(s, cfg);
  oib::RpcEngine engine(tb, oib::EngineConfig{.mode = oib::RpcMode::kSocketIPoIB});

  std::vector<cluster::HostId> slaves;
  for (int i = 1; i <= 8; ++i) slaves.push_back(i);
  hdfs::HdfsConfig hdfs_cfg;
  hdfs_cfg.datanode_disk_writes = true;
  hdfs::HdfsCluster hdfs_cluster(engine, 0, slaves, hdfs::DataMode::kSocketIPoIB, hdfs_cfg);
  mapred::MrCluster mr(engine, hdfs_cluster, 0, slaves);
  hdfs_cluster.start();
  mr.start();

  mapred::JobSpec sort;
  sort.name = "sort-4g";
  sort.num_maps = 64;  // 4 GB / 64 MB
  sort.num_reduces = 32;
  sort.input_bytes = 4ULL << 30;
  sort.output_path = "/sort-out";

  double secs = 0;
  s.spawn([](mapred::MrCluster& cluster, hdfs::HdfsCluster& hc, net::Testbed& t,
             mapred::JobSpec spec, double& out) -> sim::Task {
    std::unique_ptr<mapred::JobClient> client = cluster.make_client(t.host(0));
    out = co_await client->run(spec);
    // Stop the daemons so post-job heartbeats don't pollute the profile.
    cluster.stop();
    hc.stop();
  }(mr, hdfs_cluster, tb, sort, secs));
  s.run_until(sim::seconds(36000));

  // Aggregate client-side method profiles. The umbilical and DFS clients
  // live inside the TaskTrackers; we reach them through the engine's trace
  // aggregation: every RpcClient records into its own stats, so collect
  // from the trackers' clients via the registry below.
  metrics::print_banner(std::cout,
                        "Table I: RPC invocation profiling (Sort, 4GB, 9 nodes)");
  std::cout << "Job execution time: " << secs << " s\n\n";

  metrics::Table t({"Protocol", "Method", "Avg Mem Adjustments", "Avg Serialization (us)",
                    "Avg Send (us)", "Calls"});
  std::map<rpc::MethodKey, rpc::MethodProfile> agg;
  for (const auto& [key, prof] : engine.aggregated_profiles()) {
    agg[key] = prof;
  }
  // Print Map/Reduce umbilical methods first (the paper's grouping), then
  // HDFS ClientProtocol, then the tracker/datanode protocols.
  const std::vector<std::string> order = {"mapred.TaskUmbilicalProtocol",
                                          "hdfs.ClientProtocol",
                                          "mapred.InterTrackerProtocol",
                                          "hdfs.DatanodeProtocol",
                                          "mapred.JobSubmissionProtocol"};
  for (const std::string& proto : order) {
    for (const auto& [key, prof] : agg) {
      if (key.protocol != proto || prof.mem_adjustments.count() == 0) continue;
      t.row({key.protocol, key.method, metrics::Table::num(prof.mem_adjustments.mean(), 1),
             metrics::Table::num(prof.serialize_us.mean(), 0),
             metrics::Table::num(prof.send_us.mean(), 0),
             std::to_string(prof.mem_adjustments.count())});
    }
  }
  t.print(std::cout);

  std::cout << "\nPaper: 2-5 adjustments per call; serialization dominated by memory\n"
               "       adjustments (statusUpdate ~5 adjustments); Reduce phase more\n"
               "       RPC-intensive than Map.\n";
  mr.stop();
  hdfs_cluster.stop();
  s.drain_tasks();
  return 0;
}
