// Figure 8: HBase throughput under YCSB — 100% Get, 100% Put, 50/50 mix —
// for five configurations crossing the HBase transport with Hadoop RPC.
//
// Paper setup: 16 region servers, 16 clients, 1 KB records, 100K-300K
// records, 640K operations. This bench runs at 1/10th of those counts
// (one core simulates all 33 nodes); the memstore flush threshold is
// scaled identically so per-operation flush/WAL rates match. Paper:
// HBaseoIB-RPCoIB beats HBaseoIB-RPC(IPoIB) by +16% (Put), +6% (Get),
// +24% (mix).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

// First non-flag argument is the scale divisor (default 10).
std::uint64_t scale_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      const std::uint64_t s = std::strtoull(argv[i], nullptr, 10);
      return s > 0 ? s : 10;
    }
  }
  return 10;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using hbase::HBaseMode;
  using oib::RpcMode;

  const std::uint64_t scale = scale_arg(argc, argv);
  const std::uint64_t ops = 640000 / scale;

  struct Config {
    HBaseMode hbase;
    RpcMode rpc;
    const char* label;
  };
  const std::vector<Config> configs = {
      {HBaseMode::kSocket1GigE, RpcMode::kSocket1GigE, "HBase(1GigE)-RPC(1GigE)"},
      {HBaseMode::kRdma, RpcMode::kSocket1GigE, "HBaseoIB-RPC(1GigE)"},
      {HBaseMode::kSocketIPoIB, RpcMode::kSocketIPoIB, "HBase(IPoIB)-RPC(IPoIB)"},
      {HBaseMode::kRdma, RpcMode::kSocketIPoIB, "HBaseoIB-RPC(IPoIB)"},
      {HBaseMode::kRdma, RpcMode::kRpcoIB, "HBaseoIB-RPCoIB"},
  };
  struct Mix {
    double read_prop;
    const char* name;
    const char* slug;  // stable key for the JSON rows / CI gate
    const char* paper;
  };
  const std::vector<Mix> mixes = {{1.0, "100% Get", "get", "+6%"},
                                  {0.0, "100% Put", "put", "+16%"},
                                  {0.5, "50% Get / 50% Put", "mixed", "+24%"}};
  const std::vector<std::uint64_t> record_counts = {100000 / scale, 200000 / scale,
                                                    300000 / scale};

  struct JsonRow {
    const char* mix;
    const char* config;
    std::uint64_t records;
    double kops;
  };
  std::vector<JsonRow> json_rows;

  for (const Mix& mix : mixes) {
    metrics::print_banner(std::cout, std::string("Figure 8: YCSB ") + mix.name +
                                         " throughput (Kops/sec), ops=" +
                                         std::to_string(ops));
    std::vector<std::string> header = {"Configuration"};
    for (std::uint64_t rc : record_counts) header.push_back(std::to_string(rc) + " recs");
    metrics::Table t(header);
    double base = 0, best = 0;
    for (const Config& c : configs) {
      std::vector<std::string> row = {c.label};
      for (std::uint64_t rc : record_counts) {
        const workloads::HBaseRunResult r =
            workloads::run_hbase_ycsb(c.hbase, c.rpc, rc, ops, mix.read_prop);
        row.push_back(metrics::Table::num(r.throughput_kops, 1));
        json_rows.push_back({mix.slug, c.label, rc, r.throughput_kops});
        if (rc == record_counts.back()) {
          if (c.hbase == HBaseMode::kRdma && c.rpc == RpcMode::kSocketIPoIB) {
            base = r.throughput_kops;
          }
          if (c.hbase == HBaseMode::kRdma && c.rpc == RpcMode::kRpcoIB) {
            best = r.throughput_kops;
          }
        }
      }
      t.row(std::move(row));
    }
    t.print(std::cout);
    if (base > 0) {
      std::cout << "HBaseoIB-RPCoIB vs HBaseoIB-RPC(IPoIB): "
                << metrics::Table::pct((best / base - 1.0) * 100.0) << " (paper: " << mix.paper
                << ")\n";
    }
  }

  // --json-out=FILE: machine-readable copy of the tables for the CI
  // benchmark-regression gate (ci/check_bench.py).
  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig8_hbase\",\n  \"scale\": " << scale << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      js << "    {\"mix\": \"" << r.mix << "\", \"config\": \"" << r.config
         << "\", \"records\": " << r.records << ", \"kops\": " << r.kops << "}"
         << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
