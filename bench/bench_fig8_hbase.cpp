// Figure 8: HBase throughput under YCSB — 100% Get, 100% Put, 50/50 mix —
// for five configurations crossing the HBase transport with Hadoop RPC.
//
// Paper setup: 16 region servers, 16 clients, 1 KB records, 100K-300K
// records, 640K operations. This bench runs at 1/10th of those counts
// (one core simulates all 33 nodes); the memstore flush threshold is
// scaled identically so per-operation flush/WAL rates match. Paper:
// HBaseoIB-RPCoIB beats HBaseoIB-RPC(IPoIB) by +16% (Put), +6% (Get),
// +24% (mix).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

int main(int argc, char** argv) {
  using namespace rpcoib;
  using hbase::HBaseMode;
  using oib::RpcMode;

  const std::uint64_t scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const std::uint64_t ops = 640000 / scale;

  struct Config {
    HBaseMode hbase;
    RpcMode rpc;
    const char* label;
  };
  const std::vector<Config> configs = {
      {HBaseMode::kSocket1GigE, RpcMode::kSocket1GigE, "HBase(1GigE)-RPC(1GigE)"},
      {HBaseMode::kRdma, RpcMode::kSocket1GigE, "HBaseoIB-RPC(1GigE)"},
      {HBaseMode::kSocketIPoIB, RpcMode::kSocketIPoIB, "HBase(IPoIB)-RPC(IPoIB)"},
      {HBaseMode::kRdma, RpcMode::kSocketIPoIB, "HBaseoIB-RPC(IPoIB)"},
      {HBaseMode::kRdma, RpcMode::kRpcoIB, "HBaseoIB-RPCoIB"},
  };
  struct Mix {
    double read_prop;
    const char* name;
    const char* paper;
  };
  const std::vector<Mix> mixes = {{1.0, "100% Get", "+6%"},
                                  {0.0, "100% Put", "+16%"},
                                  {0.5, "50% Get / 50% Put", "+24%"}};
  const std::vector<std::uint64_t> record_counts = {100000 / scale, 200000 / scale,
                                                    300000 / scale};

  for (const Mix& mix : mixes) {
    metrics::print_banner(std::cout, std::string("Figure 8: YCSB ") + mix.name +
                                         " throughput (Kops/sec), ops=" +
                                         std::to_string(ops));
    std::vector<std::string> header = {"Configuration"};
    for (std::uint64_t rc : record_counts) header.push_back(std::to_string(rc) + " recs");
    metrics::Table t(header);
    double base = 0, best = 0;
    for (const Config& c : configs) {
      std::vector<std::string> row = {c.label};
      for (std::uint64_t rc : record_counts) {
        const workloads::HBaseRunResult r =
            workloads::run_hbase_ycsb(c.hbase, c.rpc, rc, ops, mix.read_prop);
        row.push_back(metrics::Table::num(r.throughput_kops, 1));
        if (rc == record_counts.back()) {
          if (c.hbase == HBaseMode::kRdma && c.rpc == RpcMode::kSocketIPoIB) {
            base = r.throughput_kops;
          }
          if (c.hbase == HBaseMode::kRdma && c.rpc == RpcMode::kRpcoIB) {
            best = r.throughput_kops;
          }
        }
      }
      t.row(std::move(row));
    }
    t.print(std::cout);
    if (base > 0) {
      std::cout << "HBaseoIB-RPCoIB vs HBaseoIB-RPC(IPoIB): "
                << metrics::Table::pct((best / base - 1.0) * 100.0) << " (paper: " << mix.paper
                << ")\n";
    }
  }
  return 0;
}
