// Ablation: the eager/rendezvous threshold (Section III-D's tunable).
//
// Sweeps the switch point and reports warm ping-pong latency at payloads
// around it: small messages should ride send/recv; large ones RDMA read.
#include <iostream>
#include <memory>
#include <vector>

#include "metrics/table.hpp"
#include "net/testbed.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"
#include "workloads/pingpong.hpp"

using namespace rpcoib;

namespace {

double warm_latency(std::size_t threshold, std::size_t payload) {
  sim::Scheduler s;
  net::Testbed tb(s, net::Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());

  oib::RdmaServerConfig sc;
  sc.eager_threshold = threshold;
  oib::RdmaClientConfig cc;
  cc.eager_threshold = threshold;
  oib::RdmaRpcServer server(tb.host(0), tb.sockets(), stack, {0, 9090}, sc);
  workloads::register_pingpong(server);
  server.start();
  oib::RdmaRpcClient client(tb.host(1), tb.sockets(), stack, cc);

  static const rpc::MethodKey kPP{"bench.PingPongProtocol", "pingpong"};
  double warm_us = 0;
  s.spawn([](oib::RdmaRpcClient& c, std::size_t n, double& out) -> sim::Task {
    net::Bytes data(n, net::Byte{1});
    rpc::BytesWritable req(data);
    for (int i = 0; i < 8; ++i) {
      rpc::BytesWritable resp;
      const sim::Time t0 = c.host().sched().now();
      co_await c.call({0, 9090}, kPP, req, &resp);
      if (i == 7) out = sim::to_us(c.host().sched().now() - t0);
    }
  }(client, payload, warm_us));
  s.run_until(sim::seconds(60));
  client.close_connections();
  server.stop();
  s.drain_tasks();
  return warm_us;
}

}  // namespace

int main() {
  const std::vector<std::size_t> thresholds = {1024, 4096, 16384, 65536};
  const std::vector<std::size_t> payloads = {512, 2048, 8192, 32768, 131072};

  metrics::print_banner(std::cout,
                        "Ablation: eager/rendezvous threshold sweep (warm RTT, us)");
  std::vector<std::string> header = {"Payload \\ Threshold"};
  for (std::size_t t : thresholds) header.push_back(std::to_string(t) + "B");
  metrics::Table t(header);
  for (std::size_t p : payloads) {
    std::vector<std::string> row = {std::to_string(p) + "B"};
    for (std::size_t th : thresholds) {
      row.push_back(metrics::Table::num(warm_latency(th, p), 1));
    }
    t.row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nExpected: below the threshold latency is flat-ish (eager copy);\n"
               "above it the rendezvous adds a control round trip but avoids\n"
               "oversized eager buffers — the crossover justifies a KB-scale\n"
               "default (Section III-D).\n";
  return 0;
}
