// Figure 5(a): RPC ping-pong latency, single server / single client,
// payload sizes 1 B - 4 KB, Cluster B.
//
// Paper endpoints: RPCoIB 39 us @1 B and ~52 us @4 KB; 42-49% below
// RPC-10GigE and 46-50% below RPC-IPoIB across the sweep; 1.42-2.48x
// speedup over RPC-1GigE (1GigE shown here for completeness although the
// paper omits it from the figure).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "workloads/pingpong.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using oib::RpcMode;

  const std::vector<std::size_t> payloads = {1, 4, 16, 64, 256, 1024, 4096};

  metrics::print_banner(std::cout, "Figure 5(a): Ping-Pong Latency, Cluster B (us)");

  std::vector<workloads::LatencyResult> gige =
      workloads::run_latency(RpcMode::kSocket1GigE, payloads);
  std::vector<workloads::LatencyResult> tengige =
      workloads::run_latency(RpcMode::kSocket10GigE, payloads);
  std::vector<workloads::LatencyResult> ipoib =
      workloads::run_latency(RpcMode::kSocketIPoIB, payloads);
  std::vector<workloads::LatencyResult> rpcoib =
      workloads::run_latency(RpcMode::kRpcoIB, payloads);

  metrics::Table t({"Payload (B)", "RPC-1GigE", "RPC-10GigE", "RPC-IPoIB(32Gbps)",
                    "RPCoIB(32Gbps)", "vs 10GigE", "vs IPoIB", "vs 1GigE"});
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const double g1 = gige[i].avg_us;
    const double g10 = tengige[i].avg_us;
    const double ipo = ipoib[i].avg_us;
    const double rdm = rpcoib[i].avg_us;
    t.row({std::to_string(payloads[i]), metrics::Table::num(g1, 1), metrics::Table::num(g10, 1),
           metrics::Table::num(ipo, 1), metrics::Table::num(rdm, 1),
           metrics::Table::pct((1.0 - rdm / g10) * 100.0),
           metrics::Table::pct((1.0 - rdm / ipo) * 100.0),
           metrics::Table::num(g1 / rdm, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nPaper: RPCoIB 39us @1B, ~52us @4KB; 42-49% vs 10GigE; 46-50% vs IPoIB;\n"
               "       1.42-2.48x speedup vs 1GigE.\n";

  // --json-out=FILE: machine-readable copy of the table for the CI
  // benchmark-regression gate (ci/check_bench.py).
  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig5_latency\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      js << "    {\"bytes\": " << payloads[i] << ", \"gige_us\": " << gige[i].avg_us
         << ", \"tengige_us\": " << tengige[i].avg_us
         << ", \"ipoib_us\": " << ipoib[i].avg_us
         << ", \"rpcoib_us\": " << rpcoib[i].avg_us << "}"
         << (i + 1 < payloads.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  // --trace-out=FILE: re-run the IPoIB and RPCoIB sweeps with tracing on,
  // export chrome://tracing JSON per transport, and print where each
  // ping-pong spends its time. (Separate runs: traced calls carry a trace
  // context on the wire, so the table above stays untouched.)
  const std::string trace_path = trace::trace_out_arg(argc, argv);
  if (!trace_path.empty()) {
    struct { RpcMode mode; const char* tag; } traced[] = {
        {RpcMode::kSocketIPoIB, "ipoib"}, {RpcMode::kRpcoIB, "rpcoib"}};
    for (const auto& tc : traced) {
      trace::TraceCollector col;
      col.set_enabled(true);
      workloads::run_latency(tc.mode, payloads, 4, 16, 1, &col);
      const std::string out = trace::path_with_tag(trace_path, tc.tag);
      if (trace::write_chrome_trace_file(out, col)) {
        std::cout << "\nwrote " << out << " (" << col.spans().size() << " spans)\n";
      } else {
        std::cerr << "error: could not write trace file " << out << "\n";
      }
      std::cout << "critical path, " << tc.tag << " (longest RPC):\n";
      trace::print_critical_path(std::cout, col);
    }
  }
  return 0;
}
