// Figure 1: ratio of buffer-allocation time to total call-receiving time
// on the RPC server, ping-pong with BytesWritable payloads, 1GigE vs IPoIB.
//
// Paper shape: negligible on 1GigE (wire time dominates), rising to ~30%
// at 2 MB on IPoIB — the Section II-B receive-path bottleneck.
#include <iostream>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/pingpong.hpp"

int main() {
  using namespace rpcoib;
  using oib::RpcMode;

  const std::vector<std::size_t> payloads = {1u << 10, 8u << 10, 64u << 10, 256u << 10,
                                             1u << 20, 2u << 20, 4u << 20};

  metrics::print_banner(std::cout,
                        "Figure 1: Buffer Allocation Time / Call Receiving Time");

  metrics::Table t({"Payload", "1GigE", "IPoIB"});
  auto label = [](std::size_t n) {
    if (n >= (1u << 20)) return std::to_string(n >> 20) + "M";
    return std::to_string(n >> 10) + "K";
  };
  for (std::size_t p : payloads) {
    const double r_gige = workloads::run_alloc_ratio(RpcMode::kSocket1GigE, p);
    const double r_ipoib = workloads::run_alloc_ratio(RpcMode::kSocketIPoIB, p);
    t.row({label(p), metrics::Table::pct(r_gige * 100.0), metrics::Table::pct(r_ipoib * 100.0)});
  }
  t.print(std::cout);

  std::cout << "\nPaper: ~30% of receive time spent in buffer allocation at 2MB on IPoIB;\n"
               "       not significant on 1GigE where the wire dominates.\n";
  return 0;
}
