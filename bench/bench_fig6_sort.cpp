// Figure 6(a): RandomWriter and Sort job execution time, IPoIB vs RPCoIB.
//
// Paper setup: 65 nodes (1 master + 64 slaves), 8 maps + 4 reduces per
// node, data sizes 32 / 64 / 128 GB. Paper result: RPCoIB improves
// RandomWriter by 9.1% (64 GB) / 12% (128 GB) and Sort by 12.3% / 15.2%.
//
// Pass a scale factor (default 1 = the full 64-slave, up-to-128 GB sweep;
// e.g. 4 runs 16 slaves with 8-32 GB for a quick look).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

int main(int argc, char** argv) {
  using namespace rpcoib;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const int slaves = 64 / scale;
  const std::vector<std::uint64_t> sizes = {32ULL << 30, 64ULL << 30, 128ULL << 30};

  metrics::print_banner(std::cout, "Figure 6(a): RandomWriter and Sort, " +
                                       std::to_string(slaves) + " slaves");

  metrics::Table t({"Data Size (GB)", "RandomWriter IPoIB (s)", "RandomWriter RPCoIB (s)",
                    "RW gain", "Sort IPoIB (s)", "Sort RPCoIB (s)", "Sort gain"});
  for (std::uint64_t size : sizes) {
    const std::uint64_t scaled = size / static_cast<std::uint64_t>(scale);
    workloads::SortResult ipoib =
        workloads::run_randomwriter_sort(oib::RpcMode::kSocketIPoIB, slaves, scaled);
    workloads::SortResult rdma =
        workloads::run_randomwriter_sort(oib::RpcMode::kRpcoIB, slaves, scaled);
    t.row({std::to_string(size >> 30), metrics::Table::num(ipoib.randomwriter_secs, 1),
           metrics::Table::num(rdma.randomwriter_secs, 1),
           metrics::Table::pct(
               (1.0 - rdma.randomwriter_secs / ipoib.randomwriter_secs) * 100.0),
           metrics::Table::num(ipoib.sort_secs, 1), metrics::Table::num(rdma.sort_secs, 1),
           metrics::Table::pct((1.0 - rdma.sort_secs / ipoib.sort_secs) * 100.0)});
  }
  t.print(std::cout);

  std::cout << "\nPaper: RandomWriter +9.1% (64GB) / +12% (128GB); Sort +12.3% / +15.2%.\n"
               "NOTE: this reproduction accounts RPC latency mechanistically; see\n"
               "EXPERIMENTS.md for the expected magnitude difference.\n";
  return 0;
}
