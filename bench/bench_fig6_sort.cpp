// Figure 6(a): RandomWriter and Sort job execution time, IPoIB vs RPCoIB.
//
// Paper setup: 65 nodes (1 master + 64 slaves), 8 maps + 4 reduces per
// node, data sizes 32 / 64 / 128 GB. Paper result: RPCoIB improves
// RandomWriter by 9.1% (64 GB) / 12% (128 GB) and Sort by 12.3% / 15.2%.
//
// Pass a scale factor (default 1 = the full 64-slave, up-to-128 GB sweep;
// e.g. 4 runs 16 slaves with 8-32 GB for a quick look). With
// --trace-out=FILE, a traced RandomWriter+Sort run per transport is
// exported as chrome://tracing JSON (FILE gets an .ipoib/.rpcoib tag) and
// a critical-path breakdown of the Sort job span is printed.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "workloads/hadoop_jobs.hpp"

int main(int argc, char** argv) {
  using namespace rpcoib;
  // Reject unknown --flags (a typo like `--trace-out sort.json` must not
  // silently fall through to the full 64-slave sweep).
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0 &&
        std::strncmp(argv[i], "--trace-out=", 12) != 0) {
      std::cerr << "error: unknown option " << argv[i]
                << " (usage: bench_fig6_sort [scale] [--trace-out=FILE]"
                " [--json-out=FILE])\n";
      return 2;
    }
  }
  const bool explicit_scale = argc > 1 && std::strncmp(argv[1], "--", 2) != 0;
  const int scale = explicit_scale ? std::atoi(argv[1]) : 1;
  const int slaves = 64 / scale;
  const std::vector<std::uint64_t> sizes = {32ULL << 30, 64ULL << 30, 128ULL << 30};

  // Tracing mode: run a mini RandomWriter+Sort (8 slaves, 2 GB) per
  // transport with the collector attached, export, and attribute the
  // longest job span. Without an explicit scale argument this replaces the
  // full sweep (a traced 128 GB / 64-slave run is needlessly slow).
  const std::string trace_path = trace::trace_out_arg(argc, argv);
  if (!trace_path.empty()) {
    struct { oib::RpcMode mode; const char* tag; } traced[] = {
        {oib::RpcMode::kSocketIPoIB, "ipoib"}, {oib::RpcMode::kRpcoIB, "rpcoib"}};
    for (const auto& tc : traced) {
      trace::TraceCollector col;
      col.set_enabled(true);
      workloads::run_randomwriter_sort(tc.mode, 8, 2ULL << 30, 7, &col);
      const std::string out = trace::path_with_tag(trace_path, tc.tag);
      if (trace::write_chrome_trace_file(out, col)) {
        std::cout << "wrote " << out << " (" << col.spans().size() << " spans)\n";
      } else {
        std::cerr << "error: could not write trace file " << out << "\n";
      }
      std::cout << "critical path, " << tc.tag << " (longest job):\n";
      trace::print_critical_path(std::cout, col);
      std::cout << "\n";
    }
    if (!explicit_scale) return 0;
  }

  metrics::print_banner(std::cout, "Figure 6(a): RandomWriter and Sort, " +
                                       std::to_string(slaves) + " slaves");

  metrics::Table t({"Data Size (GB)", "RandomWriter IPoIB (s)", "RandomWriter RPCoIB (s)",
                    "RW gain", "Sort IPoIB (s)", "Sort RPCoIB (s)", "Sort gain"});
  struct JsonRow {
    std::uint64_t gb;
    workloads::SortResult ipoib, rpcoib;
  };
  std::vector<JsonRow> json_rows;
  for (std::uint64_t size : sizes) {
    const std::uint64_t scaled = size / static_cast<std::uint64_t>(scale);
    workloads::SortResult ipoib =
        workloads::run_randomwriter_sort(oib::RpcMode::kSocketIPoIB, slaves, scaled);
    workloads::SortResult rdma =
        workloads::run_randomwriter_sort(oib::RpcMode::kRpcoIB, slaves, scaled);
    json_rows.push_back({size >> 30, ipoib, rdma});
    t.row({std::to_string(size >> 30), metrics::Table::num(ipoib.randomwriter_secs, 1),
           metrics::Table::num(rdma.randomwriter_secs, 1),
           metrics::Table::pct(
               (1.0 - rdma.randomwriter_secs / ipoib.randomwriter_secs) * 100.0),
           metrics::Table::num(ipoib.sort_secs, 1), metrics::Table::num(rdma.sort_secs, 1),
           metrics::Table::pct((1.0 - rdma.sort_secs / ipoib.sort_secs) * 100.0)});
  }
  t.print(std::cout);

  std::cout << "\nPaper: RandomWriter +9.1% (64GB) / +12% (128GB); Sort +12.3% / +15.2%.\n"
               "NOTE: this reproduction accounts RPC latency mechanistically; see\n"
               "EXPERIMENTS.md for the expected magnitude difference.\n";

  // --json-out=FILE: machine-readable copy of the table for the CI
  // benchmark-regression gate (ci/check_bench.py).
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig6_sort\",\n  \"scale\": " << scale
       << ",\n  \"slaves\": " << slaves << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      js << "    {\"gb\": " << r.gb << ", \"rw_ipoib_s\": " << r.ipoib.randomwriter_secs
         << ", \"rw_rpcoib_s\": " << r.rpcoib.randomwriter_secs
         << ", \"sort_ipoib_s\": " << r.ipoib.sort_secs
         << ", \"sort_rpcoib_s\": " << r.rpcoib.sort_secs << "}"
         << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
