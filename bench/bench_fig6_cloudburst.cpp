// Figure 6(b): CloudBurst application — Alignment (240 maps / 48 reduces)
// then Filtering (24 / 24) on 9 nodes, IPoIB vs RPCoIB.
//
// Paper: +10.7% on the Alignment job, ~10% overall.
#include <iostream>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

int main() {
  using namespace rpcoib;

  metrics::print_banner(std::cout, "Figure 6(b): CloudBurst, 9 nodes (1 master + 8 slaves)");

  workloads::CloudBurstResult ipoib = workloads::run_cloudburst(oib::RpcMode::kSocketIPoIB);
  workloads::CloudBurstResult rdma = workloads::run_cloudburst(oib::RpcMode::kRpcoIB);

  metrics::Table t({"Phase", "Hadoop (IPoIB) (s)", "Hadoop (RPCoIB) (s)", "Gain"});
  t.row({"Alignment", metrics::Table::num(ipoib.alignment_secs, 1),
         metrics::Table::num(rdma.alignment_secs, 1),
         metrics::Table::pct((1.0 - rdma.alignment_secs / ipoib.alignment_secs) * 100.0)});
  t.row({"Filtering", metrics::Table::num(ipoib.filtering_secs, 1),
         metrics::Table::num(rdma.filtering_secs, 1),
         metrics::Table::pct((1.0 - rdma.filtering_secs / ipoib.filtering_secs) * 100.0)});
  t.row({"Total", metrics::Table::num(ipoib.total_secs, 1),
         metrics::Table::num(rdma.total_secs, 1),
         metrics::Table::pct((1.0 - rdma.total_secs / ipoib.total_secs) * 100.0)});
  t.print(std::cout);

  std::cout << "\nPaper: Alignment +10.7%, overall ~+10%.\n";
  return 0;
}
