// Figure 5(b): RPC throughput — single server (8 handlers), 8-64
// concurrent clients distributed over 8 nodes, 512-byte payloads.
//
// Paper endpoints: RPCoIB peak ~135.22 Kops/sec, +82% over RPC-10GigE and
// +64% over RPC-IPoIB at the peak.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/pingpong.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

std::string report_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) return argv[i] + 13;
  }
  return "";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using oib::RpcMode;

  const std::vector<int> clients = {8, 16, 24, 32, 40, 48, 56, 64};

  metrics::print_banner(std::cout,
                        "Figure 5(b): RPC Throughput, 512B payload, 8 handlers (Kops/sec)");

  constexpr int kWindowMs = 60;  // virtual measurement window per point
  std::vector<workloads::ThroughputResult> tengige =
      workloads::run_throughput(RpcMode::kSocket10GigE, clients, 8, 512, kWindowMs);
  std::vector<workloads::ThroughputResult> ipoib =
      workloads::run_throughput(RpcMode::kSocketIPoIB, clients, 8, 512, kWindowMs);
  std::vector<workloads::ThroughputResult> rpcoib =
      workloads::run_throughput(RpcMode::kRpcoIB, clients, 8, 512, kWindowMs);

  metrics::Table t({"Clients", "RPC-10GigE", "RPC-IPoIB(32Gbps)", "RPCoIB(32Gbps)"});
  double peak_10ge = 0, peak_ipoib = 0, peak_rdma = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    t.row({std::to_string(clients[i]), metrics::Table::num(tengige[i].kops, 1),
           metrics::Table::num(ipoib[i].kops, 1), metrics::Table::num(rpcoib[i].kops, 1)});
    peak_10ge = std::max(peak_10ge, tengige[i].kops);
    peak_ipoib = std::max(peak_ipoib, ipoib[i].kops);
    peak_rdma = std::max(peak_rdma, rpcoib[i].kops);
  }
  t.print(std::cout);

  std::cout << "\nPeaks: RPCoIB " << metrics::Table::num(peak_rdma, 2) << " Kops/s ("
            << metrics::Table::pct((peak_rdma / peak_10ge - 1.0) * 100.0, 0) << " vs 10GigE, "
            << metrics::Table::pct((peak_rdma / peak_ipoib - 1.0) * 100.0, 0) << " vs IPoIB)\n"
            << "Paper: RPCoIB peak 135.22 Kops/s; +82% vs 10GigE; +64% vs IPoIB.\n";

  // Shard-scaling sweep (server.shards): same workload at the two highest
  // client counts, server receive/dispatch sharded 1-8 ways. The serial
  // Reader/CQ loop is the unsharded server's throughput cap, so peak
  // Kops/s should climb with the shard count; ci/check_bench.py gates the
  // 4-shard over 1-shard ratio.
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<int> shard_clients = {32, 64};
  metrics::print_banner(std::cout, "Shard scaling: peak Kops/sec vs server.shards");
  metrics::Table st({"Shards", "RPC-IPoIB(32Gbps)", "RPCoIB(32Gbps)"});
  std::vector<double> shard_peak_ipoib, shard_peak_rpcoib;
  std::string shard_report;  // 4-shard RPCoIB resilience report (artifact)
  for (int shards : shard_counts) {
    std::string* report = shards == 4 ? &shard_report : nullptr;
    std::vector<workloads::ThroughputResult> si = workloads::run_throughput(
        RpcMode::kSocketIPoIB, shard_clients, 8, 512, kWindowMs, 1, shards);
    std::vector<workloads::ThroughputResult> sr = workloads::run_throughput(
        RpcMode::kRpcoIB, shard_clients, 8, 512, kWindowMs, 1, shards, report);
    double pi = 0, pr = 0;
    for (const auto& r : si) pi = std::max(pi, r.kops);
    for (const auto& r : sr) pr = std::max(pr, r.kops);
    shard_peak_ipoib.push_back(pi);
    shard_peak_rpcoib.push_back(pr);
    st.row({std::to_string(shards), metrics::Table::num(pi, 1), metrics::Table::num(pr, 1)});
  }
  st.print(std::cout);
  std::cout << "4-shard / 1-shard RPCoIB peak: "
            << metrics::Table::num(shard_peak_rpcoib[2] / shard_peak_rpcoib[0], 2) << "x\n";

  // --report-out=FILE: the 4-shard RPCoIB resilience report with the
  // per-shard shard.* counter rows (uploaded as a CI artifact).
  if (const std::string report_path = report_out_arg(argc, argv); !report_path.empty()) {
    std::ofstream rf(report_path);
    if (!rf) {
      std::cerr << "error: could not write " << report_path << "\n";
      return 1;
    }
    rf << shard_report;
    std::cout << "wrote " << report_path << "\n";
  }

  // --json-out=FILE: machine-readable copy of the table for the CI
  // benchmark-regression gate (ci/check_bench.py).
  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig5_throughput\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < clients.size(); ++i) {
      js << "    {\"clients\": " << clients[i] << ", \"tengige_kops\": " << tengige[i].kops
         << ", \"ipoib_kops\": " << ipoib[i].kops << ", \"rpcoib_kops\": " << rpcoib[i].kops
         << "}" << (i + 1 < clients.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"shard_rows\": [\n";
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      js << "    {\"shards\": " << shard_counts[i]
         << ", \"ipoib_kops\": " << shard_peak_ipoib[i]
         << ", \"rpcoib_kops\": " << shard_peak_rpcoib[i] << "}"
         << (i + 1 < shard_counts.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
