// Bulk-streaming bandwidth: pipelined chunked streaming vs the one-shot
// rendezvous block pipeline.
//
// A single client writes a 64 MB file in 4 MB blocks through a 3-DataNode
// replication pipeline on the RDMA data path, with NameNode chatter
// stripped (nn_syncs_per_block=0) so the measurement isolates the data
// path. The one-shot baseline stores-and-forwards each whole block per
// hop (~3x the wire time of one hop); the streamed runs sweep chunk size
// x ring depth, overlapping the hops chunk-by-chunk.
//
// Expected: streamed beats one-shot by >=1.3x at the default geometry
// (256 KB chunks, ring depth 4); depth 1 serializes the ring and gives
// most of the win back.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

constexpr std::uint64_t kFileBytes = 64ULL << 20;
constexpr std::uint64_t kBlockBytes = 4ULL << 20;

double mib_per_sec(double secs) {
  return secs > 0 ? static_cast<double>(kFileBytes >> 20) / secs : 0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using hdfs::DataMode;
  using oib::RpcMode;

  workloads::HdfsWriteSetup setup;
  setup.datanodes = 3;
  setup.block_size = kBlockBytes;
  setup.nn_syncs_per_block = 0;

  metrics::print_banner(
      std::cout, "Stream bandwidth: 64 MB / 4 MB blocks, 3-DataNode pipeline, HDFSoIB");

  const double oneshot = workloads::run_hdfs_write(DataMode::kRdma, RpcMode::kRpcoIB,
                                                   kFileBytes, setup);
  std::cout << "one-shot rendezvous: " << metrics::Table::num(oneshot, 3) << " s ("
            << metrics::Table::num(mib_per_sec(oneshot), 1) << " MiB/s)\n\n";

  struct Row {
    std::size_t chunk_kb;
    std::size_t depth;
    double secs;
    double speedup;
  };
  std::vector<Row> rows;

  metrics::Table t({"Chunk", "Depth", "Time (s)", "MiB/s", "vs one-shot"});
  for (std::size_t chunk_kb : {64, 256, 1024}) {
    for (std::size_t depth : {1, 2, 4, 8}) {
      setup.stream.enabled = true;
      setup.stream.chunk_size = chunk_kb << 10;
      setup.stream.ring_depth = depth;
      const double secs = workloads::run_hdfs_write(DataMode::kRdma, RpcMode::kRpcoIB,
                                                    kFileBytes, setup);
      const double speedup = secs > 0 ? oneshot / secs : 0;
      rows.push_back({chunk_kb, depth, secs, speedup});
      t.row({std::to_string(chunk_kb) + " KB", std::to_string(depth),
             metrics::Table::num(secs, 3), metrics::Table::num(mib_per_sec(secs), 1),
             metrics::Table::num(speedup, 2) + "x"});
    }
  }
  t.print(std::cout);

  // --json-out=FILE: machine-readable copy for the CI benchmark-regression
  // gate (ci/check_bench.py): bandwidth floor + pipeline-overlap ratio.
  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"stream_bw\",\n  \"payload_mb\": " << (kBlockBytes >> 20)
       << ",\n  \"oneshot_secs\": " << oneshot << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"chunk_kb\": " << r.chunk_kb << ", \"depth\": " << r.depth
         << ", \"secs\": " << r.secs << ", \"mib_s\": " << mib_per_sec(r.secs)
         << ", \"speedup\": " << r.speedup << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
