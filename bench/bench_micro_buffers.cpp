// google-benchmark micro-benchmarks on the real buffer-management code:
// Algorithm-1 growth vs pre-sized buffers vs the pooled RDMA stream,
// Writable serialization, VInt codec, pool acquire/release, and the
// locality-history predictor. These measure actual host CPU time of the
// reproduced algorithms (not simulated time).
#include <benchmark/benchmark.h>

#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/rdma_streams.hpp"

namespace {

using namespace rpcoib;

const cluster::CostModel kCm{};

void BM_Alg1_SmallWrites(benchmark::State& state) {
  const auto writes = static_cast<std::size_t>(state.range(0));
  net::Bytes chunk(4, net::Byte{1});
  for (auto _ : state) {
    rpc::DataOutputBuffer buf(kCm);  // 32-byte Hadoop default
    for (std::size_t i = 0; i < writes; ++i) buf.write_raw(chunk);
    benchmark::DoNotOptimize(buf.data().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * writes * 4));
}
BENCHMARK(BM_Alg1_SmallWrites)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_Alg1_PresizedWrites(benchmark::State& state) {
  const auto writes = static_cast<std::size_t>(state.range(0));
  net::Bytes chunk(4, net::Byte{1});
  for (auto _ : state) {
    rpc::DataOutputBuffer buf(kCm, rpc::kServerInitialBuffer);  // 10 KB server default
    for (std::size_t i = 0; i < writes; ++i) buf.write_raw(chunk);
    benchmark::DoNotOptimize(buf.data().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * writes * 4));
}
BENCHMARK(BM_Alg1_PresizedWrites)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

struct PoolEnv {
  PoolEnv() : tb(sched, net::Testbed::cluster_b()), stack(tb.fabric()),
              pool(tb.host(0), stack), shadow(pool) {}
  sim::Scheduler sched;
  net::Testbed tb;
  verbs::VerbsStack stack;
  oib::NativeBufferPool pool;
  oib::ShadowPool shadow;
};

void BM_RdmaStream_SmallWrites(benchmark::State& state) {
  PoolEnv env;
  const rpc::MethodKey key{"bench", "m"};
  const auto writes = static_cast<std::size_t>(state.range(0));
  net::Bytes chunk(4, net::Byte{1});
  for (auto _ : state) {
    oib::RDMAOutputStream out(kCm, env.shadow, key);
    for (std::size_t i = 0; i < writes; ++i) out.write_raw(chunk);
    benchmark::DoNotOptimize(out.data().data());
    oib::NativeBuffer* b = out.take_buffer();
    out.finish(b);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * writes * 4));
}
BENCHMARK(BM_RdmaStream_SmallWrites)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_Pool_AcquireRelease(benchmark::State& state) {
  PoolEnv env;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oib::NativeBuffer* b = env.pool.acquire(size);
    benchmark::DoNotOptimize(b);
    env.pool.release(b);
  }
}
BENCHMARK(BM_Pool_AcquireRelease)->Arg(512)->Arg(4096)->Arg(65536);

void BM_VIntRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    rpc::DataOutputBuffer out(kCm, 4096);
    for (std::int64_t v : {0LL, 127LL, 128LL, 1LL << 20, -1LL, 1LL << 40}) out.write_vi64(v);
    rpc::DataInputBuffer in(kCm, out.data());
    for (int i = 0; i < 6; ++i) benchmark::DoNotOptimize(in.read_vi64());
  }
}
BENCHMARK(BM_VIntRoundTrip);

void BM_HistoryPredictor(benchmark::State& state) {
  PoolEnv env;
  const rpc::MethodKey key{"hdfs.DatanodeProtocol", "blockReceived"};
  for (auto _ : state) {
    oib::NativeBuffer* b = env.shadow.acquire_for(key);
    benchmark::DoNotOptimize(b);
    env.shadow.release_for(key, b, 430);
  }
  state.counters["history_hits"] =
      static_cast<double>(env.pool.stats().history_hits);
}
BENCHMARK(BM_HistoryPredictor);

}  // namespace

BENCHMARK_MAIN();
