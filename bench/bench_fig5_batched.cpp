// Small-message coalescing throughput: 16 caller tasks multiplexed over 4
// shared client objects, 64-byte payloads — the many-waiters-per-connection
// regime where Hadoop's RPC congestion collapses into per-call syscalls.
// Compares batching off (seed behavior) vs on (adaptive coalescing) on the
// socket transport and on RPCoIB.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "metrics/table.hpp"
#include "workloads/pingpong.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

struct Row {
  const char* transport;
  double plain_kops;
  double batched_kops;
  double ratio() const { return plain_kops > 0 ? batched_kops / plain_kops : 0.0; }
};
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using oib::RpcMode;

  constexpr int kCallers = 16;
  constexpr int kSharedClients = 2;
  constexpr std::size_t kPayload = 64;
  constexpr int kWindowMs = 60;

  metrics::print_banner(
      std::cout, "Small-message coalescing: 16 callers / 2 shared clients, 64B (Kops/sec)");

  rpc::BatchConfig off;  // default: disabled
  rpc::BatchConfig on;
  on.enabled = true;

  Row rows[2] = {
      {"RPC-IPoIB",
       workloads::run_shared_throughput(RpcMode::kSocketIPoIB, off, kCallers, kSharedClients,
                                        kPayload, kWindowMs),
       workloads::run_shared_throughput(RpcMode::kSocketIPoIB, on, kCallers, kSharedClients,
                                        kPayload, kWindowMs)},
      {"RPCoIB",
       workloads::run_shared_throughput(RpcMode::kRpcoIB, off, kCallers, kSharedClients,
                                        kPayload, kWindowMs),
       workloads::run_shared_throughput(RpcMode::kRpcoIB, on, kCallers, kSharedClients,
                                        kPayload, kWindowMs)},
  };

  metrics::Table t({"Transport", "Plain", "Batched", "Batched/Plain"});
  for (const Row& r : rows) {
    t.row({r.transport, metrics::Table::num(r.plain_kops, 1),
           metrics::Table::num(r.batched_kops, 1), metrics::Table::num(r.ratio(), 2)});
  }
  t.print(std::cout);
  std::cout << "\nCoalescing amortizes per-message framing/syscall cost across the calls\n"
               "queued behind a shared connection; off-by-default, wire-identical when off.\n";

  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig5_batched\",\n  \"rows\": [\n";
    for (int i = 0; i < 2; ++i) {
      const Row& r = rows[i];
      js << "    {\"transport\": \"" << r.transport << "\", \"plain_kops\": " << r.plain_kops
         << ", \"batched_kops\": " << r.batched_kops << ", \"ratio\": " << r.ratio() << "}"
         << (i == 0 ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
