// Connection scaling of the UD datagram eager path: registered receive
// memory and small-call latency as the client count sweeps 4 -> 16384,
// RC/SRQ baseline vs UD. The RC baseline holds its shared receive ring
// flat but still pins a QP and connection state per client; the UD path
// serves every client from a fixed pool of datagram endpoints, so its
// registered receive memory must stay flat across the whole sweep at
// comparable small-call latency (paper Section V scalability argument).
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "net/testbed.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace {

using rpcoib::net::Address;
using rpcoib::net::Testbed;
using rpcoib::sim::Scheduler;
using rpcoib::sim::Task;
namespace oib = rpcoib::oib;
namespace rpc = rpcoib::rpc;
namespace sim = rpcoib::sim;
namespace net = rpcoib::net;
namespace cluster = rpcoib::cluster;
namespace verbs = rpcoib::verbs;

constexpr Address kAddr{1, 9700};
const rpc::MethodKey kEcho{"bench.UdProtocol", "echo"};

std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> sim::Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

Task driver(Scheduler& s, rpc::RpcClient& client, sim::Dur start, int calls,
            double& total_us, int& done) {
  // Staggered starts keep the instantaneous in-flight count roughly
  // constant across the sweep, so the ring-bytes peak isolates *posted
  // receive memory* — per-connection state under RC, a fixed endpoint
  // pool under UD — rather than burst depth.
  co_await sim::delay(s, start);
  rpc::BytesWritable req(net::Bytes(64, net::Byte{0x5a}));
  {
    // One uncounted warmup absorbs pool bootstrap (and, on the RC
    // baseline, connection setup), so the mean reflects steady state.
    rpc::BytesWritable resp;
    co_await client.call(kAddr, kEcho, req, &resp);
  }
  for (int i = 0; i < calls; ++i) {
    rpc::BytesWritable resp;
    const sim::Time t0 = s.now();
    co_await client.call(kAddr, kEcho, req, &resp);
    total_us += sim::to_us(s.now() - t0);
    ++done;
  }
}

struct Result {
  std::uint64_t ring_bytes_peak = 0;
  std::uint64_t ud_datagrams = 0;
  double mean_us = 0;
  bool complete = false;
};

Result run_one(bool ud, int conns, int calls_per_conn) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());

  // Sessions on both ends: the UD path is lossy by contract, so real
  // deployments always ride the durable-session plane. The table cap is
  // provisioned for the sweep's client count — per-session state is a few
  // words, which is exactly the flat-state story this bench measures.
  rpc::SessionConfig session;
  session.enabled = true;
  session.table_cap = 32768;

  // The datagram path is lossy even on a fault-free fabric: a burst that
  // overruns the fixed endpoint rings is silently dropped, and exactly-once
  // comes from the session + retry-cache plane, not the wire. Every client
  // therefore runs the retry policy; the RC baseline gets the same policy
  // so the latency comparison is apples-to-apples (it never fires there).
  rpc::RpcRetryPolicy retry;
  retry.call_timeout = sim::millis(200);
  retry.max_retries = 10;
  retry.backoff_base = sim::millis(10);

  oib::RdmaServerConfig scfg;
  scfg.ud.enabled = ud;
  // Provisioned for the top of the sweep: ring depth is a property of the
  // endpoint pool, not of the client count, so it is identical for every
  // row — the flat-memory claim is that this line never has to change as
  // clients grow, only as burst depth does.
  scfg.ud.recv_depth = 256;
  oib::RdmaRpcServer server(tb.host(1), tb.sockets(), stack, kAddr, scfg);
  server.set_session(session);
  register_echo(server);
  server.start();

  oib::RdmaClientConfig ccfg;
  ccfg.ud.enabled = ud;
  // Thousands of client pools in one process: keep each tiny. Ring slots
  // beyond the prealloc classes demand-allocate once at bootstrap (the
  // uncounted warmup call absorbs the registration cost).
  ccfg.pool.buffers_per_class = 1;
  ccfg.pool.prealloc_max_class = 1024;
  ccfg.recv_depth = 2;
  ccfg.ud.client_recv_depth = 2;
  static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::unique_ptr<oib::RdmaRpcClient>> clients;
  clients.reserve(static_cast<std::size_t>(conns));
  double total_us = 0;
  int done = 0;
  for (int i = 0; i < conns; ++i) {
    clients.push_back(std::make_unique<oib::RdmaRpcClient>(
        tb.host(kClientHosts[i % 8]), tb.sockets(), stack, ccfg));
    clients.back()->set_session(session);
    clients.back()->set_retry_policy(retry);
    s.spawn(driver(s, *clients.back(), sim::micros(50) * i, calls_per_conn, total_us, done));
  }
  s.run_until(sim::seconds(3600));

  Result r;
  r.complete = done == conns * calls_per_conn;
  r.ring_bytes_peak = server.stats().recv_ring_bytes_peak;
  r.ud_datagrams = server.stats().ud_calls_received;
  r.mean_us = done > 0 ? total_us / done : 0;
  for (auto& c : clients) c->close_connections();
  server.stop();
  s.drain_tasks();
  return r;
}

struct Row {
  const char* mode;
  int conns;
  Result res;
};

}  // namespace

int main(int argc, char** argv) {
  using rpcoib::metrics::Table;

  constexpr int kCallsPerConn = 4;
  const int kConns[] = {4, 64, 1024, 4096, 16384};

  rpcoib::metrics::print_banner(
      std::cout,
      "Registered receive memory vs clients: RC/SRQ baseline vs UD datagram eager path");

  std::vector<Row> rows;
  for (const int conns : kConns) {
    rows.push_back({"rc", conns, run_one(/*ud=*/false, conns, kCallsPerConn)});
  }
  for (const int conns : kConns) {
    rows.push_back({"ud", conns, run_one(/*ud=*/true, conns, kCallsPerConn)});
  }

  Table t({"Mode", "Conns", "RingPeak(KB)", "B/conn", "Mean us", "Complete"});
  for (const Row& r : rows) {
    t.row({r.mode, std::to_string(r.conns),
           Table::num(static_cast<double>(r.res.ring_bytes_peak) / 1024.0, 0),
           Table::num(static_cast<double>(r.res.ring_bytes_peak) / r.conns, 0),
           Table::num(r.res.mean_us, 1), r.res.complete ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe UD path serves every client from a fixed pool of datagram endpoints\n"
               "whose rings are sized by the pool, not the client count; its registered\n"
               "receive memory must stay flat from 4 to 16384 clients. The RC baseline\n"
               "shares one SRQ ring but still pins a QP per accepted connection.\n";

  bool ok = true;
  for (const Row& r : rows) ok = ok && r.res.complete;

  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"ud_scale\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"mode\": \"" << r.mode << "\", \"conns\": " << r.conns
         << ", \"ring_bytes_peak\": " << r.res.ring_bytes_peak
         << ", \"ud_datagrams\": " << r.res.ud_datagrams
         << ", \"mean_us\": " << r.res.mean_us << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
