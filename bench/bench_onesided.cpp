// One-sided READ fast path vs plain RPC for hot read-mostly state:
// Get throughput as Zipfian key skew and server handler load sweep.
//
// The server exports its hottest keys into the registered seqlock
// region; clients resolve published keys with a single RDMA READ that
// never touches the handler chain, so the crossover the paper's
// one-sided designs bank on appears exactly where it should — skewed
// (hot-key) traffic against a CPU-loaded server. A separate write-hot
// leg drives concurrent republishes through a widened write window and
// checks that every degraded read (seqlock conflict -> RPC fallback)
// still returns a version that was actually published or authoritative.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace {

using rpcoib::net::Address;
using rpcoib::net::Testbed;
using rpcoib::sim::Scheduler;
using rpcoib::sim::Task;
namespace oib = rpcoib::oib;
namespace rpc = rpcoib::rpc;
namespace sim = rpcoib::sim;
namespace net = rpcoib::net;
namespace cluster = rpcoib::cluster;
namespace verbs = rpcoib::verbs;

constexpr Address kAddr{1, 9800};
constexpr const char* kProto = "bench.OneSidedProtocol";
const rpc::MethodKey kGet{kProto, "get"};

constexpr int kKeys = 64;
constexpr int kPublished = 16;  // hottest ranks exported one-sided
constexpr int kClients = 8;

std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

std::string key_name(int id) { return "key-" + std::to_string(id); }

/// Key-only lookup, eligible for the one-sided plane on "get".
struct KeyParam final : rpc::Writable {
  std::string key;
  KeyParam() = default;
  explicit KeyParam(std::string k) : key(std::move(k)) {}
  void write(rpc::DataOutput& out) const override { out.write_text(key); }
  void read_fields(rpc::DataInput& in) override { key = in.read_text(); }
  std::optional<std::string> onesided_key(const std::string& protocol,
                                          const std::string& method) const override {
    if (protocol == kProto && method == "get") return key;
    return std::nullopt;
  }
};

struct Config {
  const char* skew;   // "uniform" | "hot"
  const char* load;   // "light" | "loaded"
  const char* mode;   // "rpc" | "onesided"
  sim::Dur handler_cpu = 0;
  bool onesided = false;
  bool write_hot = false;  // concurrent republisher (conflict leg)
};

struct Result {
  std::uint64_t ops = 0;
  double window_s = 0;
  double mean_us = 0;
  std::uint64_t onesided_reads = 0;
  std::uint64_t conflict_fallbacks = 0;
  bool correct = true;

  double throughput() const { return window_s > 0 ? ops / window_s : 0; }
};

Task reader(Scheduler& s, rpc::RpcClient& client, const sim::ZipfianGenerator* zipf,
            std::uint64_t seed, sim::Time t_end, const std::vector<int>& versions,
            const std::vector<std::set<int>>& ledger, Result& r, double& total_us) {
  sim::Rng rng(seed);
  for (;;) {
    if (s.now() >= t_end) co_return;
    const int id = static_cast<int>(zipf != nullptr
                                        ? zipf->next(rng)
                                        : rng.next_below(kKeys));
    KeyParam p(key_name(id));
    rpc::IntWritable v;
    const sim::Time t0 = s.now();
    co_await client.call(kAddr, kGet, p, &v);
    if (s.now() > t_end) co_return;  // landed past the window: uncounted
    total_us += sim::to_us(s.now() - t0);
    ++r.ops;
    // Version consistency: a READ snapshot must be something the server
    // actually published for this key; an RPC-served get must match a
    // published or the authoritative version. Torn or recycled bytes
    // fail this immediately.
    const std::size_t k = static_cast<std::size_t>(id);
    if (v.value != versions[k] && ledger[k].find(v.value) == ledger[k].end()) {
      r.correct = false;
    }
  }
}

Result run_one(const Config& cfg, std::uint64_t seed) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());

  oib::RdmaServerConfig scfg;
  scfg.num_handlers = 4;
  scfg.onesided.enabled = cfg.onesided;
  if (cfg.write_hot) {
    // Widen the publisher's write window so concurrent READs actually
    // observe odd/unequal seqlock versions and take the bounded
    // conflict-retry -> RPC-fallback ladder.
    scfg.onesided.write_window_us = 300;
  }
  oib::RdmaRpcServer server(tb.host(1), tb.sockets(), stack, kAddr, scfg);

  // Authoritative store: version per key, bumped by the write-hot leg.
  std::vector<int> versions(kKeys, 1);
  std::vector<std::set<int>> ledger(kKeys);
  server.dispatcher().register_method(
      kGet.protocol, kGet.method,
      [&versions, &server, cpu = cfg.handler_cpu](rpc::DataInput& in,
                                                  rpc::DataOutput& out) -> sim::Co<void> {
        KeyParam p;
        p.read_fields(in);
        if (cpu > 0) co_await server.host().compute(cpu);
        int id = 0;
        std::sscanf(p.key.c_str(), "key-%d", &id);
        rpc::IntWritable(versions[static_cast<std::size_t>(id)]).write(out);
        co_return;
      });
  server.start();

  const cluster::CostModel& cm = tb.host(1).cost();
  auto publish = [&](int id) {
    rpc::OneSidedPublisher* pub = server.onesided();
    if (pub == nullptr) return;
    const std::size_t k = static_cast<std::size_t>(id);
    rpc::IntWritable v(versions[k]);
    rpc::DataOutputBuffer buf(cm);
    v.write(buf);
    pub->publish(rpc::onesided_entry_key(kProto, "get", key_name(id)), buf.data());
    ledger[k].insert(v.value);
  };
  // Export the hottest ranks (ZipfianGenerator rank i == key id i).
  for (int id = 0; id < kPublished; ++id) publish(id);

  oib::RdmaClientConfig ccfg;
  ccfg.onesided.enabled = cfg.onesided;
  static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
  const sim::ZipfianGenerator zipf(kKeys, 0.99);
  const sim::Time t_end = sim::seconds(2);
  Result r;
  r.window_s = sim::to_us(t_end) / 1e6;
  double total_us = 0;
  std::vector<std::unique_ptr<oib::RdmaRpcClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<oib::RdmaRpcClient>(
        tb.host(kClientHosts[i % 8]), tb.sockets(), stack, ccfg));
    s.spawn(reader(s, *clients.back(),
                   std::strcmp(cfg.skew, "hot") == 0 ? &zipf : nullptr,
                   seed ^ static_cast<std::uint64_t>(i + 1), t_end, versions, ledger,
                   r, total_us));
  }
  if (cfg.write_hot) {
    // Republish the hottest keys continuously: each publish holds the
    // slot odd for write_window_us, colliding with in-flight READs.
    s.spawn([](Scheduler& sc, std::vector<int>& vers, decltype(publish)& pub,
               sim::Time until) -> Task {
      sim::Rng wrng(0x77726974ULL);
      while (sc.now() < until) {
        const int id = static_cast<int>(wrng.next_below(4));  // top ranks only
        ++vers[static_cast<std::size_t>(id)];
        pub(id);
        co_await sim::delay(sc, sim::micros(200));
      }
    }(s, versions, publish, t_end));
  }
  s.run_until(sim::seconds(30));

  r.mean_us = r.ops > 0 ? total_us / static_cast<double>(r.ops) : 0;
  for (auto& c : clients) {
    r.onesided_reads += c->stats().onesided_reads;
    r.conflict_fallbacks += c->stats().onesided_conflict_fallbacks;
    c->close_connections();
  }
  server.stop();
  s.drain_tasks();
  return r;
}

struct Row {
  Config cfg;
  Result res;
};

}  // namespace

int main(int argc, char** argv) {
  using rpcoib::metrics::Table;

  rpcoib::metrics::print_banner(
      std::cout,
      "One-sided READ fast path vs RPC: Get throughput across key skew x server load");

  const sim::Dur kLight = sim::micros(5);
  const sim::Dur kLoaded = sim::micros(200);
  std::vector<Row> rows;
  for (const char* skew : {"uniform", "hot"}) {
    for (bool loaded : {false, true}) {
      for (bool onesided : {false, true}) {
        Config c{skew, loaded ? "loaded" : "light", onesided ? "onesided" : "rpc",
                 loaded ? kLoaded : kLight, onesided, /*write_hot=*/false};
        rows.push_back({c, run_one(c, 1)});
      }
    }
  }
  // Write-hot conflict leg: concurrent republishes against one-sided
  // readers; throughput is not the point — degraded reads must stay
  // correct and the bounded conflict fallback must actually fire.
  Config conflict{"hot", "light", "onesided", kLight, true, /*write_hot=*/true};
  rows.push_back({conflict, run_one(conflict, 1)});

  Table t({"Skew", "Load", "Mode", "Ops", "Ops/s", "Mean us", "1s reads",
           "Conflict fb", "Correct"});
  for (const Row& r : rows) {
    t.row({r.cfg.skew, r.cfg.write_hot ? "write-hot" : r.cfg.load, r.cfg.mode,
           std::to_string(r.res.ops), Table::num(r.res.throughput(), 0),
           Table::num(r.res.mean_us, 1), std::to_string(r.res.onesided_reads),
           std::to_string(r.res.conflict_fallbacks), r.res.correct ? "yes" : "NO"});
  }
  t.print(std::cout);

  double rpc_hot_loaded = 0, onesided_hot_loaded = 0;
  for (const Row& r : rows) {
    if (r.cfg.write_hot || std::strcmp(r.cfg.skew, "hot") != 0 ||
        std::strcmp(r.cfg.load, "loaded") != 0) {
      continue;
    }
    (std::strcmp(r.cfg.mode, "onesided") == 0 ? onesided_hot_loaded : rpc_hot_loaded) =
        r.res.throughput();
  }
  std::cout << "\nHot-key gets against a loaded server: one-sided "
            << Table::num(onesided_hot_loaded, 0) << " ops/s vs RPC "
            << Table::num(rpc_hot_loaded, 0) << " ops/s ("
            << Table::num(rpc_hot_loaded > 0 ? onesided_hot_loaded / rpc_hot_loaded : 0, 2)
            << "x). Published keys bypass the handler chain entirely, so the\n"
               "crossover grows with handler CPU and key skew; the write-hot leg\n"
               "shows the seqlock degrading to RPC without serving torn state.\n";

  bool ok = true;
  for (const Row& r : rows) ok = ok && r.res.correct && r.res.ops > 0;

  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"onesided\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"skew\": \"" << r.cfg.skew << "\", \"load\": \""
         << (r.cfg.write_hot ? "write-hot" : r.cfg.load) << "\", \"mode\": \""
         << r.cfg.mode << "\", \"ops\": " << r.res.ops
         << ", \"ops_per_sec\": " << r.res.throughput()
         << ", \"mean_us\": " << r.res.mean_us
         << ", \"onesided_reads\": " << r.res.onesided_reads
         << ", \"conflict_fallbacks\": " << r.res.conflict_fallbacks
         << ", \"correct\": " << (r.res.correct ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
