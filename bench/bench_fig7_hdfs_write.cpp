// Figure 7: Integrated evaluation on HDFS Write.
//
// 32 DataNodes, replication 3, single client writing 1-5 GB files, seven
// configurations crossing the HDFS data path (1GigE / IPoIB / HDFSoIB)
// with the Hadoop RPC path (1GigE / IPoIB / RPCoIB).
//
// Paper: HDFSoIB-RPCoIB ~10% below HDFSoIB-RPC(IPoIB); socket data paths
// ordered 1GigE >> IPoIB > HDFSoIB.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

namespace {
std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rpcoib;
  using hdfs::DataMode;
  using oib::RpcMode;

  struct Config {
    DataMode data;
    RpcMode rpc;
    const char* label;
    bool streamed = false;
  };
  const std::vector<Config> configs = {
      {DataMode::kSocket1GigE, RpcMode::kSocket1GigE, "HDFS(1GigE)-RPC(1GigE)"},
      {DataMode::kSocket1GigE, RpcMode::kRpcoIB, "HDFS(1GigE)-RPCoIB"},
      {DataMode::kSocketIPoIB, RpcMode::kSocketIPoIB, "HDFS(IPoIB)-RPC(IPoIB)"},
      {DataMode::kSocketIPoIB, RpcMode::kRpcoIB, "HDFS(IPoIB)-RPCoIB"},
      {DataMode::kRdma, RpcMode::kSocket1GigE, "HDFSoIB-RPC(1GigE)"},
      {DataMode::kRdma, RpcMode::kSocketIPoIB, "HDFSoIB-RPC(IPoIB)"},
      {DataMode::kRdma, RpcMode::kRpcoIB, "HDFSoIB-RPCoIB"},
      // Beyond the paper: same stack with the pipelined bulk-streaming
      // subsystem carrying the 64 MB blocks instead of one-shot rendezvous.
      {DataMode::kRdma, RpcMode::kRpcoIB, "HDFSoIB-RPCoIB-streamed", true},
  };

  metrics::print_banner(std::cout,
                        "Figure 7: HDFS Write time (s), 32 DataNodes, replication 3");

  std::vector<std::string> header = {"Configuration"};
  for (int gb = 1; gb <= 5; ++gb) header.push_back(std::to_string(gb) + " GB");
  metrics::Table t(header);

  struct JsonRow {
    const char* config;
    int gb;
    double secs;
  };
  std::vector<JsonRow> json_rows;

  double oib_ipoib_5g = 0, oib_rdma_5g = 0, oib_stream_5g = 0;
  for (const Config& c : configs) {
    workloads::HdfsWriteSetup setup;
    setup.stream.enabled = c.streamed;
    std::vector<std::string> row = {c.label};
    for (int gb = 1; gb <= 5; ++gb) {
      const double secs = workloads::run_hdfs_write(
          c.data, c.rpc, static_cast<std::uint64_t>(gb) << 30, setup);
      row.push_back(metrics::Table::num(secs, 2));
      json_rows.push_back({c.label, gb, secs});
      if (gb == 5 && c.data == DataMode::kRdma) {
        if (c.rpc == RpcMode::kSocketIPoIB) oib_ipoib_5g = secs;
        if (c.rpc == RpcMode::kRpcoIB && !c.streamed) oib_rdma_5g = secs;
        if (c.streamed) oib_stream_5g = secs;
      }
    }
    t.row(std::move(row));
  }
  t.print(std::cout);

  if (oib_ipoib_5g > 0) {
    std::cout << "\nHDFSoIB-RPCoIB vs HDFSoIB-RPC(IPoIB) at 5GB: "
              << metrics::Table::pct((1.0 - oib_rdma_5g / oib_ipoib_5g) * 100.0)
              << " (paper: ~10%)\n";
  }
  if (oib_stream_5g > 0 && oib_rdma_5g > 0) {
    std::cout << "streamed vs one-shot HDFSoIB-RPCoIB at 5GB: "
              << metrics::Table::num(oib_rdma_5g / oib_stream_5g, 2) << "x faster\n";
  }

  // --json-out=FILE: machine-readable copy of the table for the CI
  // benchmark-regression gate (ci/check_bench.py).
  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"fig7_hdfs_write\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      js << "    {\"config\": \"" << r.config << "\", \"gb\": " << r.gb
         << ", \"secs\": " << r.secs << "}" << (i + 1 < json_rows.size() ? "," : "")
         << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
