// Figure 7: Integrated evaluation on HDFS Write.
//
// 32 DataNodes, replication 3, single client writing 1-5 GB files, seven
// configurations crossing the HDFS data path (1GigE / IPoIB / HDFSoIB)
// with the Hadoop RPC path (1GigE / IPoIB / RPCoIB).
//
// Paper: HDFSoIB-RPCoIB ~10% below HDFSoIB-RPC(IPoIB); socket data paths
// ordered 1GigE >> IPoIB > HDFSoIB.
#include <iostream>
#include <vector>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

int main() {
  using namespace rpcoib;
  using hdfs::DataMode;
  using oib::RpcMode;

  struct Config {
    DataMode data;
    RpcMode rpc;
    const char* label;
  };
  const std::vector<Config> configs = {
      {DataMode::kSocket1GigE, RpcMode::kSocket1GigE, "HDFS(1GigE)-RPC(1GigE)"},
      {DataMode::kSocket1GigE, RpcMode::kRpcoIB, "HDFS(1GigE)-RPCoIB"},
      {DataMode::kSocketIPoIB, RpcMode::kSocketIPoIB, "HDFS(IPoIB)-RPC(IPoIB)"},
      {DataMode::kSocketIPoIB, RpcMode::kRpcoIB, "HDFS(IPoIB)-RPCoIB"},
      {DataMode::kRdma, RpcMode::kSocket1GigE, "HDFSoIB-RPC(1GigE)"},
      {DataMode::kRdma, RpcMode::kSocketIPoIB, "HDFSoIB-RPC(IPoIB)"},
      {DataMode::kRdma, RpcMode::kRpcoIB, "HDFSoIB-RPCoIB"},
  };

  metrics::print_banner(std::cout,
                        "Figure 7: HDFS Write time (s), 32 DataNodes, replication 3");

  std::vector<std::string> header = {"Configuration"};
  for (int gb = 1; gb <= 5; ++gb) header.push_back(std::to_string(gb) + " GB");
  metrics::Table t(header);

  double oib_ipoib_5g = 0, oib_rdma_5g = 0;
  for (const Config& c : configs) {
    std::vector<std::string> row = {c.label};
    for (int gb = 1; gb <= 5; ++gb) {
      const double secs = workloads::run_hdfs_write(
          c.data, c.rpc, static_cast<std::uint64_t>(gb) << 30);
      row.push_back(metrics::Table::num(secs, 2));
      if (gb == 5 && c.data == DataMode::kRdma) {
        if (c.rpc == RpcMode::kSocketIPoIB) oib_ipoib_5g = secs;
        if (c.rpc == RpcMode::kRpcoIB) oib_rdma_5g = secs;
      }
    }
    t.row(std::move(row));
  }
  t.print(std::cout);

  if (oib_ipoib_5g > 0) {
    std::cout << "\nHDFSoIB-RPCoIB vs HDFSoIB-RPC(IPoIB) at 5GB: "
              << metrics::Table::pct((1.0 - oib_rdma_5g / oib_ipoib_5g) * 100.0)
              << " (paper: ~10%)\n";
  }
  return 0;
}
