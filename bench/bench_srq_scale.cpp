// Receive-memory scaling of the RPCoIB server: registered receive-ring
// bytes and small-call latency as the connection count sweeps 4 -> 256,
// legacy per-QP rings vs the shared receive queue. The per-QP rings pin
// O(connections) registered memory; the SRQ pins one server-wide ring and
// must stay flat across the sweep at equal latency.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "net/testbed.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace {

using rpcoib::net::Address;
using rpcoib::net::Testbed;
using rpcoib::sim::Scheduler;
using rpcoib::sim::Task;
namespace oib = rpcoib::oib;
namespace rpc = rpcoib::rpc;
namespace sim = rpcoib::sim;
namespace net = rpcoib::net;
namespace cluster = rpcoib::cluster;
namespace verbs = rpcoib::verbs;

constexpr Address kAddr{1, 9600};
const rpc::MethodKey kEcho{"bench.SrqProtocol", "echo"};

std::string json_out_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> sim::Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

Task driver(Scheduler& s, rpc::RpcClient& client, sim::Dur start, int calls,
            double& total_us, int& done) {
  // Staggered starts keep the in-flight call count (buffers held from ring
  // pop to handler dispatch) roughly constant across the sweep, so the
  // ring-bytes peak isolates *posted receive memory* — the quantity that
  // scales with connections under per-QP rings and must not under the SRQ.
  co_await sim::delay(s, start);
  rpc::BytesWritable req(net::Bytes(64, net::Byte{0x5a}));
  {
    // One uncounted warmup absorbs connection bootstrap and the SRQ's
    // one-time initial ring fill, so the mean reflects steady state.
    rpc::BytesWritable resp;
    co_await client.call(kAddr, kEcho, req, &resp);
  }
  for (int i = 0; i < calls; ++i) {
    rpc::BytesWritable resp;
    const sim::Time t0 = s.now();
    co_await client.call(kAddr, kEcho, req, &resp);
    total_us += sim::to_us(s.now() - t0);
    ++done;
  }
}

struct Result {
  std::uint64_t ring_bytes_peak = 0;
  double mean_us = 0;
  bool complete = false;
};

Result run_one(std::size_t srq_depth, int conns, int calls_per_conn) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());
  oib::RdmaServerConfig scfg;
  scfg.pool.srq_depth = srq_depth;  // 0 selects the legacy per-QP rings
  oib::RdmaRpcServer server(tb.host(1), tb.sockets(), stack, kAddr, scfg);
  register_echo(server);
  server.start();

  oib::RdmaClientConfig ccfg;
  ccfg.pool.buffers_per_class = 2;  // hundreds of client pools: keep each small
  static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::unique_ptr<oib::RdmaRpcClient>> clients;
  clients.reserve(static_cast<std::size_t>(conns));
  double total_us = 0;
  int done = 0;
  for (int i = 0; i < conns; ++i) {
    clients.push_back(std::make_unique<oib::RdmaRpcClient>(
        tb.host(kClientHosts[i % 8]), tb.sockets(), stack, ccfg));
    s.spawn(driver(s, *clients.back(), sim::micros(200) * i, calls_per_conn, total_us, done));
  }
  s.run_until(sim::seconds(600));

  Result r;
  r.complete = done == conns * calls_per_conn;
  r.ring_bytes_peak = server.stats().recv_ring_bytes_peak;
  r.mean_us = done > 0 ? total_us / done : 0;
  for (auto& c : clients) c->close_connections();
  server.stop();
  s.drain_tasks();
  return r;
}

struct Row {
  const char* mode;
  int conns;
  Result res;
};

}  // namespace

int main(int argc, char** argv) {
  using rpcoib::metrics::Table;

  constexpr int kCallsPerConn = 4;
  const int kConns[] = {4, 16, 64, 256};

  rpcoib::metrics::print_banner(
      std::cout, "Registered receive-ring bytes vs connections: per-QP rings vs SRQ");

  std::vector<Row> rows;
  for (const int conns : kConns) {
    rows.push_back({"perqp", conns, run_one(/*srq_depth=*/0, conns, kCallsPerConn)});
  }
  for (const int conns : kConns) {
    rows.push_back({"srq", conns, run_one(/*srq_depth=*/64, conns, kCallsPerConn)});
  }

  Table t({"Mode", "Conns", "RingPeak(KB)", "Mean us", "Complete"});
  for (const Row& r : rows) {
    t.row({r.mode, std::to_string(r.conns),
           Table::num(static_cast<double>(r.res.ring_bytes_peak) / 1024.0, 0),
           Table::num(r.res.mean_us, 1), r.res.complete ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe SRQ posts one server-wide ring refilled at a low watermark, so its\n"
               "registered receive memory is flat in the connection count; per-QP rings\n"
               "pin a full ring per accepted connection.\n";

  bool ok = true;
  for (const Row& r : rows) ok = ok && r.res.complete;

  if (const std::string json_path = json_out_arg(argc, argv); !json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    js << "{\n  \"bench\": \"srq_scale\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"mode\": \"" << r.mode << "\", \"conns\": " << r.conns
         << ", \"ring_bytes_peak\": " << r.res.ring_bytes_peak
         << ", \"mean_us\": " << r.res.mean_us << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
