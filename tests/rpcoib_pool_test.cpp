// Tests for the two-level history-based buffer pool and the RDMA streams:
// size classes, lease/release invariants, history grow/shrink (message
// size locality), stream re-gets, zero-copy reads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpcoib/buffer_pool.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/rdma_streams.hpp"

namespace rpcoib::oib {
namespace {

using net::Testbed;
using sim::Scheduler;
using sim::Task;

struct PoolFixture {
  explicit PoolFixture(Scheduler& s, PoolConfig cfg = {})
      : tb(s, Testbed::cluster_b()), stack(tb.fabric()), pool(tb.host(0), stack, cfg),
        shadow(pool) {}
  Testbed tb;
  verbs::VerbsStack stack;
  NativeBufferPool pool;
  ShadowPool shadow;
};

Task init_pool(NativeBufferPool& p) { co_await p.initialize(); }

TEST(NativePool, ClassSizesArePowersOfTwoFromMin) {
  Scheduler s;
  PoolFixture f(s);
  EXPECT_EQ(f.pool.class_size_for(1), 512u);
  EXPECT_EQ(f.pool.class_size_for(512), 512u);
  EXPECT_EQ(f.pool.class_size_for(513), 1024u);
  EXPECT_EQ(f.pool.class_size_for(100000), 128u * 1024);
  EXPECT_EQ(f.pool.class_size_for(4u << 20), 4u << 20);
  EXPECT_THROW(f.pool.class_size_for((4u << 20) + 1), std::length_error);
}

TEST(NativePool, InitializePreallocatesAndCostsTime) {
  Scheduler s;
  PoolFixture f(s);
  s.spawn(init_pool(f.pool));
  s.run();
  // Registration of a multi-MB pool is milliseconds of virtual time.
  EXPECT_GT(sim::to_ms(s.now()), 1.0);
  // Warm acquires afterwards all hit the freelist (8 per class).
  std::vector<NativeBuffer*> got;
  for (int i = 0; i < 8; ++i) got.push_back(f.pool.acquire(4096));
  EXPECT_EQ(f.pool.stats().freelist_hits, 8u);
  EXPECT_EQ(f.pool.stats().demand_allocations, 0u);
  for (auto* b : got) f.pool.release(b);
}

TEST(NativePool, ExhaustionFallsBackToDemandAllocation) {
  Scheduler s;
  PoolFixture f(s, PoolConfig{.min_class = 512, .max_class = 4096, .buffers_per_class = 2});
  s.spawn(init_pool(f.pool));
  s.run();
  NativeBuffer* a = f.pool.acquire(512);
  NativeBuffer* b = f.pool.acquire(512);
  NativeBuffer* c = f.pool.acquire(512);  // class dry
  EXPECT_EQ(f.pool.stats().demand_allocations, 1u);
  f.pool.release(a);
  f.pool.release(b);
  f.pool.release(c);
  // The demand-allocated buffer joins the pool: next acquires all hit.
  NativeBuffer* d = f.pool.acquire(512);
  EXPECT_EQ(f.pool.stats().demand_allocations, 1u);
  f.pool.release(d);
}

TEST(NativePool, DoubleReleaseThrows) {
  Scheduler s;
  PoolFixture f(s);
  NativeBuffer* b = f.pool.acquire(512);
  f.pool.release(b);
  EXPECT_THROW(f.pool.release(b), std::logic_error);
}

TEST(NativePool, BuffersAreRegisteredForRdma) {
  Scheduler s;
  PoolFixture f(s);
  NativeBuffer* b = f.pool.acquire(2048);
  EXPECT_GT(b->mr.rkey, 0u);
  // The rkey resolves to the buffer's own memory.
  EXPECT_EQ(f.stack.resolve(b->mr.rkey, 0, 16).data(), b->span.data());
  f.pool.release(b);
}

TEST(ShadowPool, UnknownKeyGetsMinimumClass) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "m"};
  NativeBuffer* b = f.shadow.acquire_for(key);
  EXPECT_EQ(b->span.size(), f.pool.config().min_class);
  f.shadow.release(b);
}

TEST(ShadowPool, HistoryGrowsOnLargerUseAndShrinksOnSmaller) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"mapred.TaskUmbilicalProtocol", "statusUpdate"};
  NativeBuffer* b = f.shadow.acquire_for(key);
  f.shadow.release_for(key, b, 3000);
  EXPECT_EQ(f.shadow.history(key), 4096u);

  // Next acquire uses the learned size.
  b = f.shadow.acquire_for(key);
  EXPECT_EQ(b->span.size(), 4096u);
  f.shadow.release_for(key, b, 3100);  // same class: a history hit
  EXPECT_EQ(f.pool.stats().history_hits, 1u);

  // A much smaller call shrinks the record (bounding footprint).
  b = f.shadow.acquire_for(key);
  f.shadow.release_for(key, b, 100);
  EXPECT_EQ(f.shadow.history(key), 512u);
  EXPECT_EQ(f.pool.stats().history_shrinks, 1u);
}

// Fig. 4's shrink rule, end to end: one oversized call must not pin a
// method's record at the large class forever — a run of small calls walks
// it back down, and subsequent acquires come from the smaller class.
TEST(ShadowPool, RunOfSmallCallsAfterLargeOneShrinksAcquiredClass) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"hdfs.ClientProtocol", "getBlockLocations"};
  // One large call teaches the history a 64 KB class...
  NativeBuffer* b = f.shadow.acquire_for(key);
  f.shadow.release_for(key, b, 60000);
  EXPECT_EQ(f.shadow.history(key), 65536u);

  // ...then a run of small calls. The first release shrinks the record;
  // every acquire after that returns the small class, not the big one.
  const std::uint64_t shrinks_before = f.pool.stats().history_shrinks;
  for (int i = 0; i < 8; ++i) {
    b = f.shadow.acquire_for(key);
    if (i > 0) EXPECT_EQ(b->span.size(), 512u) << "iteration " << i;
    f.shadow.release_for(key, b, 200);
  }
  EXPECT_EQ(f.shadow.history(key), 512u);
  EXPECT_GE(f.pool.stats().history_shrinks, shrinks_before + 1);
  // The small-run steady state is history hits, not repeated shrinking.
  EXPECT_GE(f.pool.stats().history_hits, 7u);
}

TEST(ShadowPool, MessageSizeLocalityYieldsHitsAfterFirstCall) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"hdfs.DatanodeProtocol", "blockReceived"};
  // The paper's observation: ~430-byte messages, call after call.
  for (int i = 0; i < 100; ++i) {
    NativeBuffer* b = f.shadow.acquire_for(key);
    f.shadow.release_for(key, b, 430);
  }
  EXPECT_EQ(f.pool.stats().history_hits, 99u);
  EXPECT_EQ(f.pool.stats().history_misses, 0u);
}

TEST(ShadowPool, IndependentHistoriesPerMethodKey) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey small{"p", "ping"};
  const rpc::MethodKey large{"p", "statusUpdate"};
  NativeBuffer* b = f.shadow.acquire_for(small);
  f.shadow.release_for(small, b, 100);
  b = f.shadow.acquire_for(large);
  f.shadow.release_for(large, b, 5000);
  EXPECT_EQ(f.shadow.history(small), 512u);
  EXPECT_EQ(f.shadow.history(large), 8192u);
}

// --- RDMAOutputStream ------------------------------------------------------

TEST(RdmaStream, WarmPathHasNoRegets) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "m"};
  {
    RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
    net::Bytes payload(3000, net::Byte{1});
    out.write_raw(payload);
    // Cold path: one re-get straight to the fitting class (the pool's
    // size classes subsume the doubling ladder for a single large write).
    EXPECT_EQ(out.regets(), 1u);
    NativeBuffer* b = out.take_buffer();
    out.finish(b);
  }
  {
    RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
    net::Bytes payload(3000, net::Byte{2});
    out.write_raw(payload);
    EXPECT_EQ(out.regets(), 0u);  // history remembered 4096
    NativeBuffer* b = out.take_buffer();
    out.finish(b);
  }
}

TEST(RdmaStream, DataRoundTripsThroughRegisteredBuffer) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "rt"};
  RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
  out.write_u64(0xCAFEBABEDEADBEEFULL);
  out.write_text("locality");
  out.write_vi64(430);
  RDMAInputStream in(f.tb.host(0).cost(), out.data());
  EXPECT_EQ(in.read_u64(), 0xCAFEBABEDEADBEEFULL);
  EXPECT_EQ(in.read_text(), "locality");
  EXPECT_EQ(in.read_vi64(), 430);
  NativeBuffer* b = out.take_buffer();
  out.finish(b);
}

TEST(RdmaStream, AccruedCostFarBelowAlgorithmOne) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "cheap"};
  // Warm the history.
  {
    RDMAOutputStream warm(f.tb.host(0).cost(), f.shadow, key);
    net::Bytes payload(2000, net::Byte{1});
    warm.write_raw(payload);
    NativeBuffer* b = warm.take_buffer();
    warm.finish(b);
  }
  RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
  rpc::DataOutputBuffer alg1(f.tb.host(0).cost());  // 32-byte Hadoop default
  (void)out.take_accrued();
  (void)alg1.take_accrued();
  net::Bytes chunk(4);
  for (int i = 0; i < 500; ++i) {
    out.write_raw(chunk);
    alg1.write_raw(chunk);
  }
  EXPECT_LT(out.take_accrued(), alg1.take_accrued());
  EXPECT_EQ(out.regets(), 0u);
  EXPECT_GE(alg1.stats().mem_adjustments, 6u);
  NativeBuffer* b = out.take_buffer();
  out.finish(b);
}

Task rendezvous_call(rpc::RpcClient& client, net::Address addr, const rpc::MethodKey& key,
                     bool& failed) {
  // 64 KB is far above the eager threshold: the request goes out as a
  // rendezvous descriptor and the pooled source buffer stays leased until
  // the response (or a teardown) releases it.
  rpc::BytesWritable param(net::Bytes(64 * 1024, net::Byte{7}));
  try {
    co_await client.call(addr, key, param, nullptr);
  } catch (const rpc::RpcTransportError&) {
    failed = true;
  }
}

// Regression: fail_all() used to drop PendingCall entries without
// returning their leased rendezvous sources, leaking a pool buffer per
// in-flight large call on connection teardown.
TEST(NativePool, ConnectionTeardownReleasesLeasedRendezvousBuffers) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, oib::EngineConfig{.mode = RpcMode::kRpcoIB});
  const net::Address addr{1, 9400};
  const rpc::MethodKey sink{"test.PoolProtocol", "sink"};
  std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(1), addr);
  server->dispatcher().register_method(
      sink.protocol, sink.method,
      [&tb](rpc::DataInput& in, rpc::DataOutput& out) -> sim::Co<void> {
        rpc::BytesWritable v;
        v.read_fields(in);
        co_await sim::delay(tb.sched(), sim::seconds(5));
        rpc::BooleanWritable(true).write(out);
      });
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
  auto* rdma = dynamic_cast<RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);

  bool failed = false;
  s.spawn(rendezvous_call(*client, addr, sink, failed));
  s.run_until(sim::seconds(1));  // handler sleeping, source still leased
  rdma->close_connections();
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(failed);
  const auto& st = rdma->pool().native().stats();
  EXPECT_EQ(st.acquires, st.releases);
  server->stop();
  s.drain_tasks();
}

// Regression: regrow() used to call the uncapped acquire(), so a client
// serializing a huge message could demand-allocate native memory past
// `demand_alloc_cap`. It now routes through try_acquire and surfaces
// exhaustion as PoolExhaustedError (the caller degrades to the socket
// fallback, mirroring the server's rendezvous NACK).
TEST(RdmaStream, RegrowHonorsDemandAllocCap) {
  Scheduler s;
  PoolFixture f(s, PoolConfig{.min_class = 512,
                              .max_class = 4u << 20,
                              .prealloc_max_class = 64u << 10,
                              .buffers_per_class = 2,
                              .demand_alloc_cap = 1});
  s.spawn(init_pool(f.pool));
  s.run();
  const rpc::MethodKey key{"p", "huge"};
  // First large stream: 256 KB class is above prealloc_max_class, so this
  // is the one demand allocation the cap allows. Keep it leased.
  RDMAOutputStream out1(f.tb.host(0).cost(), f.shadow, key);
  net::Bytes big(200 * 1024, net::Byte{1});
  out1.write_raw(big);
  EXPECT_EQ(f.pool.stats().demand_allocations, 1u);

  // Second large stream: freelist dry, cap reached — the re-get must be
  // denied rather than growing registered memory without bound.
  {
    RDMAOutputStream out2(f.tb.host(0).cost(), f.shadow, key);
    net::Bytes bigger(300 * 1024, net::Byte{2});
    EXPECT_THROW(out2.write_raw(bigger), PoolExhaustedError);
  }
  EXPECT_GE(f.pool.stats().demand_denied, 1u);
  EXPECT_EQ(f.pool.stats().demand_allocations, 1u);

  NativeBuffer* b = out1.take_buffer();
  out1.finish(b);
}

// A stream that re-gets through several classes while writing must update
// the method's history exactly once at release (to the final fitting
// class), not once per intermediate re-get.
TEST(ShadowPool, MultiRegetStreamGrowsHistoryOnce) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "chunky"};
  // Teach the history the smallest class first.
  NativeBuffer* seed = f.shadow.acquire_for(key);
  f.shadow.release_for(key, seed, 400);
  ASSERT_EQ(f.shadow.history(key), 512u);

  const std::uint64_t misses_before = f.pool.stats().history_misses;
  RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
  net::Bytes chunk(1024, net::Byte{3});
  for (int i = 0; i < 10; ++i) out.write_raw(chunk);
  EXPECT_GE(out.regets(), 2u);  // walked 512 -> ... -> 16384
  NativeBuffer* b = out.take_buffer();
  out.finish(b);
  EXPECT_EQ(f.pool.stats().history_misses, misses_before + 1);
  EXPECT_EQ(f.shadow.history(key), f.pool.class_size_for(10 * 1024));
}

TEST(RdmaStream, AbandonedStreamReturnsBufferToPool) {
  Scheduler s;
  PoolFixture f(s);
  const rpc::MethodKey key{"p", "abandon"};
  const std::uint64_t releases_before = f.pool.stats().releases;
  {
    RDMAOutputStream out(f.tb.host(0).cost(), f.shadow, key);
    out.write_u32(1);
    // no take_buffer: destructor must release
  }
  EXPECT_EQ(f.pool.stats().releases, releases_before + 1);
}

}  // namespace
}  // namespace rpcoib::oib
