// Small-message coalescing (BatchConfig): dense concurrent callers on a
// shared connection ride multi-call frames on both transports, sparse
// callers flush immediately (adaptive linger collapses to zero), the
// default-off knob leaves the seed's one-frame-per-call path untouched,
// and batched runs stay seed-deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/testbed.hpp"
#include "rpc/socket_client.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/rdma_client.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9500};
const rpc::MethodKey kEcho{"test.BatchProtocol", "echo"};

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method, [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

struct Fixture {
  Fixture(Scheduler& s, RpcMode mode, rpc::BatchConfig batch)
      : tb(s, Testbed::cluster_b()),
        engine(tb, EngineConfig{.mode = mode, .batch = batch}),
        server(engine.make_server(tb.host(1), kAddr)),
        client(engine.make_client(tb.host(0))) {
    register_echo(*server);
    server->start();
  }
  ~Fixture() { server->stop(); }
  Testbed tb;
  RpcEngine engine;
  std::unique_ptr<rpc::RpcServer> server;
  std::unique_ptr<rpc::RpcClient> client;
};

Task call_echo(rpc::RpcClient& client, std::size_t n, bool& ok) {
  net::Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<net::Byte>(i * 7 + 3);
  rpc::BytesWritable req(payload);
  rpc::BytesWritable resp;
  co_await client.call(kAddr, kEcho, req, &resp);
  ok = (resp.value == payload);
}

rpc::BatchConfig batching_on() {
  rpc::BatchConfig b;
  b.enabled = true;
  return b;
}

class BatchingDense : public ::testing::TestWithParam<RpcMode> {};

// Twelve same-tick 64-byte calls on one shared client: the transport must
// put strictly fewer frames than calls on the wire, and every call still
// round-trips with the right payload.
TEST_P(BatchingDense, ConcurrentSmallCallsCoalesceAndRoundTrip) {
  Scheduler s;
  rpc::BatchConfig on = batching_on();
  Fixture f(s, GetParam(), on);
  constexpr int kN = 12;
  std::vector<char> oks(kN, 0);
  for (int i = 0; i < kN; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.client, 64, *ok));
  }
  s.run_until(sim::seconds(10));
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;

  const rpc::RpcStats& cs = f.client->stats();
  EXPECT_EQ(cs.batched_calls, static_cast<std::uint64_t>(kN));
  EXPECT_GT(cs.batches_sent, 0u);
  EXPECT_LT(cs.batches_sent, static_cast<std::uint64_t>(kN));  // actually coalesced

  const rpc::RpcStats& ss = f.server->stats();
  EXPECT_GT(ss.batches_received, 0u);
  EXPECT_EQ(ss.batched_calls_received, static_cast<std::uint64_t>(kN));
  f.server->stop();
  s.drain_tasks();
}

INSTANTIATE_TEST_SUITE_P(Transports, BatchingDense,
                         ::testing::Values(RpcMode::kSocketIPoIB, RpcMode::kRpcoIB));

class BatchingDisabled : public ::testing::TestWithParam<RpcMode> {};

// The knob is off by default: no batch frames in either direction, even
// under the densest load — the seed wire format is preserved.
TEST_P(BatchingDisabled, DefaultKnobSendsOneFramePerCall) {
  Scheduler s;
  Fixture f(s, GetParam(), rpc::BatchConfig{});
  constexpr int kN = 12;
  std::vector<char> oks(kN, 0);
  for (int i = 0; i < kN; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.client, 64, *ok));
  }
  s.run_until(sim::seconds(10));
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;

  EXPECT_EQ(f.client->stats().batches_sent, 0u);
  EXPECT_EQ(f.client->stats().batched_calls, 0u);
  EXPECT_EQ(f.server->stats().batches_received, 0u);
  EXPECT_EQ(f.server->stats().response_batches, 0u);
  f.server->stop();
  s.drain_tasks();
}

INSTANTIATE_TEST_SUITE_P(Transports, BatchingDisabled,
                         ::testing::Values(RpcMode::kSocketIPoIB, RpcMode::kRpcoIB));

Task sparse_caller(Scheduler& s, rpc::RpcClient& client, int rounds, int& ok_count) {
  net::Bytes payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<net::Byte>(i * 7 + 3);
  }
  rpc::BytesWritable req(payload);
  for (int i = 0; i < rounds; ++i) {
    rpc::BytesWritable resp;
    co_await client.call(kAddr, kEcho, req, &resp);
    if (resp.value == payload) ++ok_count;
    co_await sim::delay(s, sim::millis(1));
  }
}

// A single caller with 1 ms gaps between calls: the EWMA of inter-append
// gaps sits far above the configured linger, so the adaptive linger
// collapses to zero and every call flushes immediately — sparse traffic
// pays no added latency for the batching knob being on.
TEST(Batching, SparseCallsFlushImmediatelyUnderAdaptiveLinger) {
  Scheduler s;
  rpc::BatchConfig on = batching_on();
  Fixture f(s, RpcMode::kSocketIPoIB, on);
  int ok_count = 0;
  constexpr int kRounds = 6;
  s.spawn(sparse_caller(s, *f.client, kRounds, ok_count));
  s.run_until(sim::seconds(10));
  EXPECT_EQ(ok_count, kRounds);

  const rpc::RpcStats& cs = f.client->stats();
  EXPECT_EQ(cs.batched_calls, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(cs.batches_sent, static_cast<std::uint64_t>(kRounds));  // one call per frame
  EXPECT_EQ(cs.batch_flush_linger, 0u);
  EXPECT_EQ(cs.batch_flush_immediate, static_cast<std::uint64_t>(kRounds));
  f.server->stop();
  s.drain_tasks();
}

// Same seed, same knobs => identical throughput and identical batch
// counters, batching on or off, on both transports.
TEST(Batching, BatchedRunsAreSeedDeterministic) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    for (bool enabled : {false, true}) {
      rpc::BatchConfig b;
      b.enabled = enabled;
      const double a =
          workloads::run_shared_throughput(mode, b, /*callers=*/8, /*shared_clients=*/2,
                                           /*payload=*/64, /*duration_ms=*/20, /*seed=*/7);
      const double c =
          workloads::run_shared_throughput(mode, b, /*callers=*/8, /*shared_clients=*/2,
                                           /*payload=*/64, /*duration_ms=*/20, /*seed=*/7);
      EXPECT_EQ(a, c) << oib::rpc_mode_name(mode) << " enabled=" << enabled;
      EXPECT_GT(a, 0.0);
    }
  }
}

// Coalescing must win throughput in the many-callers-per-connection
// regime it was built for (the bench_fig5_batched gate, in miniature).
TEST(Batching, SharedConnectionThroughputImprovesWhenBatched) {
  const double plain = workloads::run_shared_throughput(
      RpcMode::kSocketIPoIB, rpc::BatchConfig{}, 16, 2, 64, /*duration_ms=*/40);
  rpc::BatchConfig on = batching_on();
  const double batched = workloads::run_shared_throughput(
      RpcMode::kSocketIPoIB, on, 16, 2, 64, /*duration_ms=*/40);
  EXPECT_GT(batched, plain * 1.4);
}

// --- Teardown and per-sub-call deadline semantics ---------------------------

void close_client(rpc::RpcClient& c) {
  if (auto* r = dynamic_cast<oib::RdmaRpcClient*>(&c)) {
    r->close_connections();
  } else if (auto* sc = dynamic_cast<rpc::SocketRpcClient*>(&c)) {
    sc->close_connections();
  }
}

// 0 = pending, 1 = ok, 2 = transport error, 3 = timeout.
Task tracked_echo(rpc::RpcClient& c, int& outcome) {
  net::Bytes payload(64, net::Byte{0x44});
  rpc::BytesWritable req(payload);
  rpc::BytesWritable resp;
  try {
    co_await c.call(kAddr, kEcho, req, &resp);
    outcome = 1;
  } catch (const rpc::RpcTimeoutError&) {
    outcome = 3;
  } catch (const rpc::RpcTransportError&) {
    outcome = 2;
  }
}

// A sub-threshold call parked under the linger when the client closes must
// surface a transport error to its caller — not hang on a batch frame that
// will never flush, and not vanish silently.
TEST(BatchingTeardown, CloseBeforeLingerFailsParkedCallInsteadOfLosingIt) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    rpc::BatchConfig b;
    b.enabled = true;
    b.linger = sim::seconds(10);
    Fixture f(s, mode, b);

    // One completed call seeds the batcher's inter-arrival EWMA (its own
    // append flushes immediately: the EWMA is still empty).
    int first = 0;
    s.spawn(tracked_echo(*f.client, first));
    s.run_until(sim::millis(100));
    ASSERT_EQ(first, 1);

    // The next call appends 100 ms after the first — well inside the 10 s
    // linger, so the estimator says company is coming and it parks...
    int victim = 0;
    s.spawn(tracked_echo(*f.client, victim));
    s.run_until(sim::millis(110));
    EXPECT_EQ(victim, 0);  // parked, not yet on the wire

    // ...and the client closes first. The parked call must surface a
    // transport error, not hang on a frame that will never flush.
    close_client(*f.client);
    s.run_until(sim::seconds(20));
    EXPECT_EQ(victim, 2);
    // The parked call never reached the server; the first one did.
    EXPECT_EQ(f.server->stats().batched_calls_received, 1u);
    f.server->stop();
    s.drain_tasks();
  }
}

const rpc::MethodKey kSlowPut{"test.BatchProtocol", "slowPut"};

Task slow_put(rpc::RpcClient& c, int& outcome) {
  rpc::BytesWritable req(net::Bytes(2048, net::Byte{0x22}));
  rpc::BooleanWritable resp;
  try {
    co_await c.call(kAddr, kSlowPut, req, &resp);
    outcome = resp.value ? 1 : 2;
  } catch (const rpc::RpcTransportError&) {
    outcome = 2;
  }
}

// Responses parked in the server's coalescing linger when stop() lands are
// dropped with accounting, not leaked or silently discarded.
TEST(BatchingTeardown, ServerStopAccountsResponsesParkedInLinger) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::BatchConfig b;
    b.enabled = true;
    b.linger = sim::seconds(10);  // responders cap theirs at linger/4 = 2.5 s
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .batch = b});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_echo(*server);
    server->dispatcher().register_method(
        kSlowPut.protocol, kSlowPut.method,
        [&tb](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          rpc::BytesWritable v;
          v.read_fields(in);
          co_await sim::delay(tb.sched(), sim::millis(100));
          rpc::BooleanWritable(true).write(out);
        });
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    // 2 KB requests sit above small_threshold (own frames: the client
    // never parks them), but the bool responses are tiny: the single
    // handler's 100 ms cadence keeps the server's response linger armed,
    // so responses accumulate in the coalescing window.
    constexpr int kN = 12;
    std::vector<int> outcomes(kN, 0);
    for (int& o : outcomes) s.spawn(slow_put(*client, o));
    s.run_until(sim::seconds(2));
    server->stop();
    EXPECT_GE(server->stats().responses_dropped_on_stop, 1u);
    close_client(*client);
    s.run_until(sim::seconds(20));
    int delivered = 0;
    for (int o : outcomes) {
      EXPECT_NE(o, 0);  // nothing hangs
      if (o == 1) ++delivered;
    }
    // The first response flushed before the linger armed.
    EXPECT_GE(delivered, 1);
    s.drain_tasks();
  }
}

const rpc::MethodKey kBlock{"test.BatchProtocol", "block"};

Task block_call(rpc::RpcClient& c, int& outcome) {
  rpc::BytesWritable req(net::Bytes(2048, net::Byte{0x33}));
  rpc::BooleanWritable resp;
  try {
    co_await c.call(kAddr, kBlock, req, &resp);
    outcome = 1;
  } catch (const rpc::RpcTransportError&) {
    outcome = 2;
  }
}

Task expiry_orchestrator(Scheduler& s, rpc::RpcClient& client, int& blocked, int& x, int& y,
                         std::vector<char>& warm) {
  // Occupy the single handler for seconds with a large-arg call (2 KB is
  // above small_threshold, so it rides its own frame immediately).
  s.spawn(block_call(client, blocked));
  co_await sim::delay(s, sim::millis(50));
  // Two quick small calls warm the batcher's inter-arrival EWMA; they
  // queue behind the blocker and finish late (no deadline on them).
  for (int i = 0; i < 2; ++i) {
    bool* ok = reinterpret_cast<bool*>(&warm[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(client, 64, *ok));
    co_await sim::delay(s, sim::micros(5));
  }
  co_await sim::delay(s, sim::millis(7));  // past the 5 ms linger: warm flushed
  // X carries a 1 s deadline; the warm EWMA parks it under the linger.
  rpc::RpcRetryPolicy deadline;
  deadline.call_timeout = sim::seconds(1);
  client.set_retry_policy(deadline);
  s.spawn(tracked_echo(client, x));
  co_await sim::delay(s, sim::millis(1));
  // Y has no deadline and completes the pair: max_calls=2 flushes X and Y
  // as one batch frame.
  client.set_retry_policy({});
  s.spawn(tracked_echo(client, y));
}

// Deadlines are per sub-call, not per batch frame: a frame carrying one
// expired and one live call drops only the expired one at dequeue.
TEST(BatchingTeardown, ExpiredSubCallInsideBatchFrameIsDroppedIndividually) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::BatchConfig b;
    b.enabled = true;
    b.linger = sim::millis(5);
    b.max_calls = 2;
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .batch = b});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_echo(*server);
    server->dispatcher().register_method(
        kBlock.protocol, kBlock.method,
        [&tb](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          rpc::BytesWritable v;
          v.read_fields(in);
          co_await sim::delay(tb.sched(), sim::seconds(3));
          rpc::BooleanWritable(true).write(out);
        });
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int blocked = 0, x = 0, y = 0;
    std::vector<char> warm(2, 0);
    s.spawn(expiry_orchestrator(s, *client, blocked, x, y, warm));
    s.run_until(sim::seconds(30));

    EXPECT_EQ(blocked, 1);
    for (int i = 0; i < 2; ++i) EXPECT_TRUE(warm[static_cast<std::size_t>(i)]) << i;
    EXPECT_EQ(x, 3);  // timed out client-side, expired server-side
    EXPECT_EQ(y, 1);  // same frame, no deadline: executed normally
    EXPECT_EQ(server->stats().calls_expired, 1u);
    EXPECT_GE(server->stats().batched_calls_received, 4u);
    EXPECT_EQ(client->stats().timeouts, 1u);
    server->stop();
    s.drain_tasks();
  }
}

}  // namespace
}  // namespace rpcoib
