// Small-message coalescing (BatchConfig): dense concurrent callers on a
// shared connection ride multi-call frames on both transports, sparse
// callers flush immediately (adaptive linger collapses to zero), the
// default-off knob leaves the seed's one-frame-per-call path untouched,
// and batched runs stay seed-deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/testbed.hpp"
#include "rpcoib/engine.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9500};
const rpc::MethodKey kEcho{"test.BatchProtocol", "echo"};

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method, [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

struct Fixture {
  Fixture(Scheduler& s, RpcMode mode, rpc::BatchConfig batch)
      : tb(s, Testbed::cluster_b()),
        engine(tb, EngineConfig{.mode = mode, .batch = batch}),
        server(engine.make_server(tb.host(1), kAddr)),
        client(engine.make_client(tb.host(0))) {
    register_echo(*server);
    server->start();
  }
  ~Fixture() { server->stop(); }
  Testbed tb;
  RpcEngine engine;
  std::unique_ptr<rpc::RpcServer> server;
  std::unique_ptr<rpc::RpcClient> client;
};

Task call_echo(rpc::RpcClient& client, std::size_t n, bool& ok) {
  net::Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<net::Byte>(i * 7 + 3);
  rpc::BytesWritable req(payload);
  rpc::BytesWritable resp;
  co_await client.call(kAddr, kEcho, req, &resp);
  ok = (resp.value == payload);
}

rpc::BatchConfig batching_on() {
  rpc::BatchConfig b;
  b.enabled = true;
  return b;
}

class BatchingDense : public ::testing::TestWithParam<RpcMode> {};

// Twelve same-tick 64-byte calls on one shared client: the transport must
// put strictly fewer frames than calls on the wire, and every call still
// round-trips with the right payload.
TEST_P(BatchingDense, ConcurrentSmallCallsCoalesceAndRoundTrip) {
  Scheduler s;
  rpc::BatchConfig on = batching_on();
  Fixture f(s, GetParam(), on);
  constexpr int kN = 12;
  std::vector<char> oks(kN, 0);
  for (int i = 0; i < kN; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.client, 64, *ok));
  }
  s.run_until(sim::seconds(10));
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;

  const rpc::RpcStats& cs = f.client->stats();
  EXPECT_EQ(cs.batched_calls, static_cast<std::uint64_t>(kN));
  EXPECT_GT(cs.batches_sent, 0u);
  EXPECT_LT(cs.batches_sent, static_cast<std::uint64_t>(kN));  // actually coalesced

  const rpc::RpcStats& ss = f.server->stats();
  EXPECT_GT(ss.batches_received, 0u);
  EXPECT_EQ(ss.batched_calls_received, static_cast<std::uint64_t>(kN));
  f.server->stop();
  s.drain_tasks();
}

INSTANTIATE_TEST_SUITE_P(Transports, BatchingDense,
                         ::testing::Values(RpcMode::kSocketIPoIB, RpcMode::kRpcoIB));

class BatchingDisabled : public ::testing::TestWithParam<RpcMode> {};

// The knob is off by default: no batch frames in either direction, even
// under the densest load — the seed wire format is preserved.
TEST_P(BatchingDisabled, DefaultKnobSendsOneFramePerCall) {
  Scheduler s;
  Fixture f(s, GetParam(), rpc::BatchConfig{});
  constexpr int kN = 12;
  std::vector<char> oks(kN, 0);
  for (int i = 0; i < kN; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.client, 64, *ok));
  }
  s.run_until(sim::seconds(10));
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;

  EXPECT_EQ(f.client->stats().batches_sent, 0u);
  EXPECT_EQ(f.client->stats().batched_calls, 0u);
  EXPECT_EQ(f.server->stats().batches_received, 0u);
  EXPECT_EQ(f.server->stats().response_batches, 0u);
  f.server->stop();
  s.drain_tasks();
}

INSTANTIATE_TEST_SUITE_P(Transports, BatchingDisabled,
                         ::testing::Values(RpcMode::kSocketIPoIB, RpcMode::kRpcoIB));

Task sparse_caller(Scheduler& s, rpc::RpcClient& client, int rounds, int& ok_count) {
  net::Bytes payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<net::Byte>(i * 7 + 3);
  }
  rpc::BytesWritable req(payload);
  for (int i = 0; i < rounds; ++i) {
    rpc::BytesWritable resp;
    co_await client.call(kAddr, kEcho, req, &resp);
    if (resp.value == payload) ++ok_count;
    co_await sim::delay(s, sim::millis(1));
  }
}

// A single caller with 1 ms gaps between calls: the EWMA of inter-append
// gaps sits far above the configured linger, so the adaptive linger
// collapses to zero and every call flushes immediately — sparse traffic
// pays no added latency for the batching knob being on.
TEST(Batching, SparseCallsFlushImmediatelyUnderAdaptiveLinger) {
  Scheduler s;
  rpc::BatchConfig on = batching_on();
  Fixture f(s, RpcMode::kSocketIPoIB, on);
  int ok_count = 0;
  constexpr int kRounds = 6;
  s.spawn(sparse_caller(s, *f.client, kRounds, ok_count));
  s.run_until(sim::seconds(10));
  EXPECT_EQ(ok_count, kRounds);

  const rpc::RpcStats& cs = f.client->stats();
  EXPECT_EQ(cs.batched_calls, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(cs.batches_sent, static_cast<std::uint64_t>(kRounds));  // one call per frame
  EXPECT_EQ(cs.batch_flush_linger, 0u);
  EXPECT_EQ(cs.batch_flush_immediate, static_cast<std::uint64_t>(kRounds));
  f.server->stop();
  s.drain_tasks();
}

// Same seed, same knobs => identical throughput and identical batch
// counters, batching on or off, on both transports.
TEST(Batching, BatchedRunsAreSeedDeterministic) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    for (bool enabled : {false, true}) {
      rpc::BatchConfig b;
      b.enabled = enabled;
      const double a =
          workloads::run_shared_throughput(mode, b, /*callers=*/8, /*shared_clients=*/2,
                                           /*payload=*/64, /*duration_ms=*/20, /*seed=*/7);
      const double c =
          workloads::run_shared_throughput(mode, b, /*callers=*/8, /*shared_clients=*/2,
                                           /*payload=*/64, /*duration_ms=*/20, /*seed=*/7);
      EXPECT_EQ(a, c) << oib::rpc_mode_name(mode) << " enabled=" << enabled;
      EXPECT_GT(a, 0.0);
    }
  }
}

// Coalescing must win throughput in the many-callers-per-connection
// regime it was built for (the bench_fig5_batched gate, in miniature).
TEST(Batching, SharedConnectionThroughputImprovesWhenBatched) {
  const double plain = workloads::run_shared_throughput(
      RpcMode::kSocketIPoIB, rpc::BatchConfig{}, 16, 2, 64, /*duration_ms=*/40);
  rpc::BatchConfig on = batching_on();
  const double batched = workloads::run_shared_throughput(
      RpcMode::kSocketIPoIB, on, 16, 2, 64, /*duration_ms=*/40);
  EXPECT_GT(batched, plain * 1.4);
}

}  // namespace
}  // namespace rpcoib
