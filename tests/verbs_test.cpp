// Tests for the simulated verbs layer: registration, send/recv matching,
// RDMA read/write data integrity, completion ordering, error paths.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "net/testbed.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib::verbs {
namespace {

using net::Byte;
using net::Bytes;
using net::Testbed;
using net::Transport;
using sim::Scheduler;
using sim::Task;

struct VerbsFixture {
  explicit VerbsFixture(Scheduler& s) : tb(s, Testbed::cluster_b()), stack(tb.fabric()), cm(stack, tb.sockets()) {}
  Testbed tb;
  VerbsStack stack;
  ConnectionManager cm;
};

TEST(MemoryRegion, RegisterResolveDeregister) {
  Scheduler s;
  VerbsFixture f(s);
  ProtectionDomain pd(f.stack, f.tb.host(0));
  Bytes buf(4096);
  MemoryRegion mr = pd.register_mr_untimed(buf);
  EXPECT_GT(mr.rkey, 0u);
  EXPECT_EQ(f.stack.resolve(mr.rkey, 0, 4096).data(), buf.data());
  EXPECT_EQ(f.stack.resolve(mr.rkey, 100, 8).data(), buf.data() + 100);
  EXPECT_THROW(f.stack.resolve(mr.rkey, 4000, 200), VerbsError);
  pd.deregister(mr);
  EXPECT_THROW(f.stack.resolve(mr.rkey, 0, 1), VerbsError);
}

TEST(MemoryRegion, RegistrationCostScalesWithSize) {
  Scheduler s;
  VerbsFixture f(s);
  EXPECT_LT(f.stack.registration_cost(4096), f.stack.registration_cost(1 << 20));
}

Task server_side(VerbsFixture& f, net::Listener& l, CompletionQueue& scq, CompletionQueue& rcq,
                 QueuePairPtr& out) {
  net::SocketPtr boot = co_await l.accept();
  out = co_await f.cm.accept(boot, scq, rcq);
}

Task client_side(VerbsFixture& f, net::Address addr, CompletionQueue& scq,
                 CompletionQueue& rcq, QueuePairPtr& out) {
  out = co_await f.cm.connect(f.tb.host(0), addr, scq, rcq);
}

struct ConnectedPair {
  ConnectedPair(Scheduler& s, VerbsFixture& f)
      : client_scq(s), client_rcq(s), server_scq(s), server_rcq(s) {
    net::Listener& l = f.tb.sockets().listen({1, 7000});
    s.spawn(server_side(f, l, server_scq, server_rcq, server_qp));
    s.spawn(client_side(f, {1, 7000}, client_scq, client_rcq, client_qp));
    s.run();
  }
  CompletionQueue client_scq, client_rcq, server_scq, server_rcq;
  QueuePairPtr client_qp, server_qp;
};

TEST(ConnectionManager, EstablishesConnectedQpPair) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);
  ASSERT_TRUE(p.client_qp);
  ASSERT_TRUE(p.server_qp);
  EXPECT_TRUE(p.client_qp->connected());
  EXPECT_TRUE(p.server_qp->connected());
  EXPECT_EQ(p.client_qp->remote_host(), 1);
  EXPECT_EQ(p.server_qp->remote_host(), 0);
}

Task do_send(QueuePairPtr qp, Bytes payload) { co_await qp->post_send(1, payload); }

TEST(QueuePair, SendConsumesPostedRecvFifo) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);

  Bytes rbuf1(64), rbuf2(64);
  p.server_qp->post_recv(11, rbuf1);
  p.server_qp->post_recv(12, rbuf2);

  Bytes m1(16);
  std::iota(m1.begin(), m1.end(), Byte{1});
  Bytes m2(24);
  std::iota(m2.begin(), m2.end(), Byte{100});
  s.spawn(do_send(p.client_qp, m1));
  s.spawn(do_send(p.client_qp, m2));
  s.run();

  WorkCompletion wc;
  ASSERT_TRUE(p.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.opcode, Opcode::kRecv);
  EXPECT_EQ(wc.byte_len, 16u);
  EXPECT_EQ(0, memcmp(rbuf1.data(), m1.data(), m1.size()));
  ASSERT_TRUE(p.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 12u);
  EXPECT_EQ(wc.byte_len, 24u);
  EXPECT_EQ(0, memcmp(rbuf2.data(), m2.data(), m2.size()));
  // Sender got two kSend completions.
  ASSERT_TRUE(p.client_scq.poll(wc));
  EXPECT_EQ(wc.opcode, Opcode::kSend);
  ASSERT_TRUE(p.client_scq.poll(wc));
  EXPECT_FALSE(p.client_scq.poll(wc));
}

TEST(QueuePair, SendBeforeRecvParksUntilRecvPosted) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);

  Bytes msg(8, Byte{7});
  s.spawn(do_send(p.client_qp, msg));
  s.run();
  WorkCompletion wc;
  EXPECT_FALSE(p.server_rcq.poll(wc));  // nothing posted yet (RNR parking)

  Bytes rbuf(8);
  p.server_qp->post_recv(42, rbuf);
  ASSERT_TRUE(p.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 42u);
  EXPECT_EQ(rbuf, msg);
}

Task do_write(QueuePairPtr qp, Bytes payload, RemoteBuffer dst, std::optional<std::uint32_t> imm) {
  co_await qp->post_rdma_write(5, payload, dst, imm);
}

TEST(QueuePair, RdmaWritePlacesBytesAndRaisesImm) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);

  ProtectionDomain server_pd(f.stack, f.tb.host(1));
  Bytes target(256, Byte{0});
  MemoryRegion mr = server_pd.register_mr_untimed(target);

  Bytes payload(200);
  std::iota(payload.begin(), payload.end(), Byte{0});
  s.spawn(do_write(p.client_qp, payload, RemoteBuffer{mr.rkey, 16, 240}, 0xBEEF));
  s.run();

  EXPECT_EQ(0, memcmp(target.data() + 16, payload.data(), payload.size()));
  WorkCompletion wc;
  ASSERT_TRUE(p.server_rcq.poll(wc));
  EXPECT_EQ(wc.opcode, Opcode::kRecvRdmaWithImm);
  EXPECT_EQ(wc.imm_data, 0xBEEFu);
  ASSERT_TRUE(p.client_scq.poll(wc));
  EXPECT_EQ(wc.opcode, Opcode::kRdmaWrite);
}

Task do_read(QueuePairPtr qp, net::MutByteSpan local, RemoteBuffer src) {
  co_await qp->post_rdma_read(6, local, src);
}

TEST(QueuePair, RdmaReadFetchesRemoteBytes) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);

  ProtectionDomain server_pd(f.stack, f.tb.host(1));
  Bytes remote(512);
  std::iota(remote.begin(), remote.end(), Byte{0});
  MemoryRegion mr = server_pd.register_mr_untimed(remote);

  Bytes local(128, Byte{0});
  s.spawn(do_read(p.client_qp, local, RemoteBuffer{mr.rkey, 64, 128}));
  s.run();

  EXPECT_EQ(0, memcmp(local.data(), remote.data() + 64, 128));
  WorkCompletion wc;
  ASSERT_TRUE(p.client_scq.poll(wc));
  EXPECT_EQ(wc.opcode, Opcode::kRdmaRead);
  EXPECT_EQ(wc.byte_len, 128u);
  // One-sided: the server CQs saw nothing.
  EXPECT_FALSE(p.server_rcq.poll(wc));
  EXPECT_FALSE(p.server_scq.poll(wc));
}

Task expect_send_throws(QueuePairPtr qp, bool& threw) {
  Bytes b(4);
  try {
    co_await qp->post_send(1, b);
  } catch (const VerbsError&) {
    threw = true;
  }
}

TEST(QueuePair, DisconnectedSendThrows) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);
  p.client_qp->disconnect();
  bool threw = false;
  s.spawn(expect_send_throws(p.client_qp, threw));
  s.run();
  EXPECT_TRUE(threw);
}

Task latency_probe(ConnectedPair& p, Scheduler& s, sim::Time& oneway) {
  Bytes msg(1);
  const sim::Time t0 = s.now();
  co_await p.client_qp->post_send(1, msg);
  (void)co_await p.server_rcq.wait();
  oneway = s.now() - t0;
}

TEST(QueuePair, SmallMessageLatencyNearHardwareFigure) {
  Scheduler s;
  VerbsFixture f(s);
  ConnectedPair p(s, f);
  Bytes rbuf(64);
  p.server_qp->post_recv(1, rbuf);
  sim::Time oneway = 0;
  s.spawn(latency_probe(p, s, oneway));
  s.run();
  // ~1.3us wire + doorbell/poll: must be in the small single-digit us range.
  EXPECT_GT(sim::to_us(oneway), 1.0);
  EXPECT_LT(sim::to_us(oneway), 5.0);
}

}  // namespace
}  // namespace rpcoib::verbs
