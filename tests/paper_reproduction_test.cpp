// Regression tests pinning the paper's headline properties, so future
// changes to the cost model or transports can't silently break the
// reproduction. Bounds are deliberately looser than the bench output so
// legitimate re-calibration doesn't thrash these tests.
#include <gtest/gtest.h>

#include "workloads/hadoop_jobs.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib {
namespace {

using oib::RpcMode;

TEST(PaperFig5a, RpcoIBLatencyNearPaperEndpoints) {
  // Paper: 39 us @1B, ~52 us @4KB.
  std::vector<workloads::LatencyResult> r =
      workloads::run_latency(RpcMode::kRpcoIB, {1, 4096});
  EXPECT_NEAR(r[0].avg_us, 39.0, 4.0);
  EXPECT_NEAR(r[1].avg_us, 52.0, 5.0);
}

TEST(PaperFig5a, ReductionBandsHold) {
  // Paper: 42-49% vs 10GigE, 46-50% vs IPoIB across 1B..4KB.
  const std::vector<std::size_t> payloads = {1, 256, 4096};
  std::vector<workloads::LatencyResult> rdma =
      workloads::run_latency(RpcMode::kRpcoIB, payloads);
  std::vector<workloads::LatencyResult> tengige =
      workloads::run_latency(RpcMode::kSocket10GigE, payloads);
  std::vector<workloads::LatencyResult> ipoib =
      workloads::run_latency(RpcMode::kSocketIPoIB, payloads);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const double vs10 = 1.0 - rdma[i].avg_us / tengige[i].avg_us;
    const double vsip = 1.0 - rdma[i].avg_us / ipoib[i].avg_us;
    EXPECT_GT(vs10, 0.40) << payloads[i];
    EXPECT_LT(vs10, 0.55) << payloads[i];
    EXPECT_GT(vsip, 0.44) << payloads[i];
    EXPECT_LT(vsip, 0.55) << payloads[i];
  }
}

TEST(PaperFig5b, PeakThroughputAndRatios) {
  // Paper: RPCoIB ~135 Kops/s peak, +82% vs 10GigE, +64% vs IPoIB.
  auto peak = [](RpcMode m) {
    std::vector<workloads::ThroughputResult> r =
        workloads::run_throughput(m, {32}, 8, 512, /*duration_ms=*/60);
    return r[0].kops;
  };
  const double rdma = peak(RpcMode::kRpcoIB);
  const double tengige = peak(RpcMode::kSocket10GigE);
  const double ipoib = peak(RpcMode::kSocketIPoIB);
  EXPECT_NEAR(rdma, 135.0, 12.0);
  EXPECT_GT(rdma / tengige, 1.6);
  EXPECT_LT(rdma / tengige, 2.05);
  EXPECT_GT(rdma / ipoib, 1.45);
  EXPECT_LT(rdma / ipoib, 1.85);
}

TEST(PaperFig1, AllocationShareHighOnIPoIBLowOnGigE) {
  const double ipoib = workloads::run_alloc_ratio(RpcMode::kSocketIPoIB, 2u << 20, 6);
  const double gige = workloads::run_alloc_ratio(RpcMode::kSocket1GigE, 2u << 20, 6);
  EXPECT_GT(ipoib, 0.18);  // paper ~30%
  EXPECT_LT(gige, 0.10);   // paper: "not obvious" on 1GigE
  EXPECT_GT(ipoib, 2.5 * gige);
}

TEST(PaperFig7, RpcoIBCutsHdfsWriteTenPercent) {
  const double ipoib =
      workloads::run_hdfs_write(hdfs::DataMode::kRdma, RpcMode::kSocketIPoIB, 1ULL << 30);
  const double rdma =
      workloads::run_hdfs_write(hdfs::DataMode::kRdma, RpcMode::kRpcoIB, 1ULL << 30);
  const double gain = 1.0 - rdma / ipoib;
  EXPECT_GT(gain, 0.07);  // paper ~10%
  EXPECT_LT(gain, 0.14);
}

TEST(PaperFig8, PutGainNearSixteenPercentGetSmall) {
  const auto put_ipoib = workloads::run_hbase_ycsb(hbase::HBaseMode::kRdma,
                                                   RpcMode::kSocketIPoIB, 4000, 12000, 0.0);
  const auto put_rdma = workloads::run_hbase_ycsb(hbase::HBaseMode::kRdma,
                                                  RpcMode::kRpcoIB, 4000, 12000, 0.0);
  const double put_gain = put_rdma.throughput_kops / put_ipoib.throughput_kops - 1.0;
  EXPECT_GT(put_gain, 0.08);  // paper +16%
  EXPECT_LT(put_gain, 0.30);

  const auto get_ipoib = workloads::run_hbase_ycsb(hbase::HBaseMode::kRdma,
                                                   RpcMode::kSocketIPoIB, 4000, 12000, 1.0);
  const auto get_rdma = workloads::run_hbase_ycsb(hbase::HBaseMode::kRdma,
                                                  RpcMode::kRpcoIB, 4000, 12000, 1.0);
  const double get_gain = get_rdma.throughput_kops / get_ipoib.throughput_kops - 1.0;
  EXPECT_LT(get_gain, put_gain);  // paper: Get benefits least
  EXPECT_GT(get_gain, -0.05);     // and never regresses materially
}

}  // namespace
}  // namespace rpcoib
