// HBase + YCSB tests: put/get round trips, memstore/flush behaviour, WAL
// HDFS traffic, YCSB load/run phases, config-matrix sanity.
#include <gtest/gtest.h>

#include <memory>

#include "hbase/hbase.hpp"
#include "net/testbed.hpp"
#include "ycsb/ycsb.hpp"

namespace rpcoib::hbase {
namespace {

using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Scheduler;
using sim::Task;

RpcMode hbase_rpc_mode(HBaseMode m) {
  switch (m) {
    case HBaseMode::kSocket1GigE: return RpcMode::kSocket1GigE;
    case HBaseMode::kSocketIPoIB: return RpcMode::kSocketIPoIB;
    case HBaseMode::kRdma: return RpcMode::kRpcoIB;
  }
  return RpcMode::kSocketIPoIB;
}

// Host 0: NameNode; hosts 1..4: DataNode + RegionServer; host 5: client.
struct Fixture {
  Fixture(Scheduler& s, RpcMode hadoop_rpc = RpcMode::kSocketIPoIB,
          HBaseMode hbase_mode = HBaseMode::kSocketIPoIB, HBaseConfig cfg = small_cfg())
      : tb(s, Testbed::cluster_a(6)),
        hadoop_engine(tb, EngineConfig{.mode = hadoop_rpc}),
        hbase_engine(tb, EngineConfig{.mode = hbase_rpc_mode(hbase_mode)}),
        hdfs_cluster(hadoop_engine, 0, {1, 2, 3, 4}, hdfs::DataMode::kSocketIPoIB,
                     hdfs_cfg()),
        hbase_cluster(hbase_engine, hdfs_cluster, {1, 2, 3, 4}, cfg) {
    hdfs_cluster.start();
    hbase_cluster.start();
  }
  static HBaseConfig small_cfg() {
    HBaseConfig cfg;
    cfg.memstore_flush_bytes = 256 * 1024;  // flush often at test scale
    cfg.wal_batch = 8;
    return cfg;
  }
  static hdfs::HdfsConfig hdfs_cfg() {
    hdfs::HdfsConfig cfg;
    cfg.block_size = 4 << 20;
    return cfg;
  }
  ~Fixture() {
    hbase_cluster.stop();
    hdfs_cluster.stop();
  }
  Testbed tb;
  RpcEngine hadoop_engine;
  RpcEngine hbase_engine;
  hdfs::HdfsCluster hdfs_cluster;
  HBaseCluster hbase_cluster;
};

Task put_get(Fixture& f, bool& ok) {
  std::unique_ptr<HTable> t = f.hbase_cluster.make_table(f.tb.host(5));
  net::Bytes val(1024, net::Byte{7});
  co_await t->put("user100", val);
  co_await t->put("user200", val);
  GetResult r1 = co_await t->get("user100");
  GetResult missing = co_await t->get("no-such-key");
  ok = r1.found && r1.value.size() == 1024 && !missing.found;
}

TEST(HBase, PutThenGetRoundTrips) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  s.spawn(put_get(f, ok));
  s.run_until(sim::seconds(60));
  EXPECT_TRUE(ok);
}

Task put_many(Fixture& f, int n, bool& ok) {
  std::unique_ptr<HTable> t = f.hbase_cluster.make_table(f.tb.host(5));
  net::Bytes val(1024, net::Byte{9});
  for (int i = 0; i < n; ++i) {
    co_await t->put(ycsb::ycsb_key(static_cast<std::uint64_t>(i)), val);
  }
  // Reads after a flush must still find the records (HFile path).
  GetResult r = co_await t->get(ycsb::ycsb_key(0));
  ok = r.found;
}

TEST(HBase, FlushMovesMemstoreToHdfsAndGetsStillHit) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  // 1500 x 1KB > 4 region x 256KB flush thresholds: several flushes.
  s.spawn(put_many(f, 1500, ok));
  s.run_until(sim::seconds(600));
  EXPECT_TRUE(ok);
  std::uint64_t flushes = 0, puts = 0;
  for (std::size_t i = 0; i < f.hbase_cluster.num_regions(); ++i) {
    flushes += f.hbase_cluster.region(i).flushes();
    puts += f.hbase_cluster.region(i).puts();
  }
  EXPECT_EQ(puts, 1500u);
  EXPECT_GT(flushes, 0u);
  // Flushed HFiles exist in HDFS.
  EXPECT_GT(f.hdfs_cluster.namenode().num_files(), 0u);
}

Task run_ycsb(Fixture& f, ycsb::WorkloadSpec spec, ycsb::WorkloadResult& out) {
  const std::vector<cluster::HostId> client_hosts{5};
  out = co_await ycsb::run_workload(f.hbase_engine, f.hbase_cluster, client_hosts, spec);
}

TEST(Ycsb, MixWorkloadRunsAndReportsThroughput) {
  Scheduler s;
  Fixture f(s);
  ycsb::WorkloadSpec spec;
  spec.record_count = 500;
  spec.operation_count = 1000;
  spec.read_proportion = 0.5;
  spec.num_clients = 4;
  ycsb::WorkloadResult r;
  s.spawn(run_ycsb(f, spec, r));
  s.run_until(sim::seconds(600));
  EXPECT_GT(r.throughput_kops, 0.0);
  EXPECT_EQ(r.reads + r.writes, 1000u);
  // Zipfian + full load phase: reads nearly always hit.
  EXPECT_GT(r.read_hits * 10, r.reads * 9);
  EXPECT_GT(r.load_secs, 0.0);
}

TEST(Ycsb, ReadOnlyAndWriteOnlyMixes) {
  for (double rp : {1.0, 0.0}) {
    Scheduler s;
    Fixture f(s);
    ycsb::WorkloadSpec spec;
    spec.record_count = 300;
    spec.operation_count = 600;
    spec.read_proportion = rp;
    spec.num_clients = 2;
    ycsb::WorkloadResult r;
    s.spawn(run_ycsb(f, spec, r));
    s.run_until(sim::seconds(600));
    if (rp == 1.0) {
      EXPECT_EQ(r.writes, 0u);
      EXPECT_EQ(r.reads, 600u);
    } else {
      EXPECT_EQ(r.reads, 0u);
      EXPECT_EQ(r.writes, 600u);
    }
  }
}

TEST(HBase, AllConfigMatrixModesWork) {
  for (HBaseMode hbase_mode :
       {HBaseMode::kSocket1GigE, HBaseMode::kSocketIPoIB, HBaseMode::kRdma}) {
    for (RpcMode hadoop_rpc : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
      Scheduler s;
      Fixture f(s, hadoop_rpc, hbase_mode);
      bool ok = false;
      s.spawn(put_get(f, ok));
      s.run_until(sim::seconds(120));
      EXPECT_TRUE(ok) << hbase_mode_name(hbase_mode) << "-"
                      << oib::rpc_mode_name(hadoop_rpc);
    }
  }
}

TEST(HMaster, RegionServersRegisterAndClientsDiscover) {
  Scheduler s;
  Fixture f(s);
  s.run_until(sim::seconds(2));
  EXPECT_EQ(f.hbase_cluster.master().registered_regions(), 4u);
  // A fresh client routes purely via master discovery.
  bool ok = false;
  s.spawn(put_get(f, ok));
  s.run_until(sim::seconds(60));
  EXPECT_TRUE(ok);
}

TEST(HMaster, ClientWaitsUntilAllRegionsReport) {
  // Construct the cluster but delay startup: a client issued immediately
  // must block on discovery, then succeed once servers report.
  Scheduler s;
  Fixture f(s);  // start() already called; discovery completes quickly
  bool ok = false;
  s.spawn(put_get(f, ok));  // races registration at t=0
  s.run_until(sim::seconds(60));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace rpcoib::hbase
