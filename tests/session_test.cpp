// Durable client sessions: exactly-once RPC across connection loss.
//
// The chaos suite here drives the PR's acceptance gate: seeded
// connection-kill schedules where every client link is killed at least
// once mid-workload, on both transports, with server-side per-call
// execution counters proving no retried non-idempotent call ever runs
// twice. Seedable through RPCOIB_CHAOS_SEED / RPCOIB_SHARDS like the
// rest of the chaos suite (same seed => byte-identical reports).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/testbed.hpp"
#include "rpc/resilience.hpp"
#include "rpcoib/engine.hpp"
#include "workloads/hadoop_jobs.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9400};
const rpc::MethodKey kBump{"test.SessionProtocol", "bump"};
const rpc::MethodKey kEcho{"test.SessionProtocol", "echo"};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

int chaos_shards() {
  const char* env = std::getenv("RPCOIB_SHARDS");
  return env != nullptr ? static_cast<int>(std::strtoul(env, nullptr, 10)) : 1;
}

oib::PoolConfig chaos_pool() {
  oib::PoolConfig p;
  if (const char* env = std::getenv("RPCOIB_SRQ_DEPTH")) {
    p.srq_depth = std::strtoull(env, nullptr, 10);
    p.srq_low_watermark = std::max<std::size_t>(1, p.srq_depth / 4);
  }
  return p;
}

/// RPCOIB_UD=1 reroutes the RPCoIB legs' eager traffic over the UD
/// datagram path (the CI chaos-matrix leg). Datagrams are connectionless,
/// so connection kills no longer touch eager calls — kill-dependent
/// assertions are gated on the transport actually opening connections,
/// and the lease-expiry tests swallow the in-flight frame with an outage
/// window instead of a kill.
bool chaos_ud() {
  const char* env = std::getenv("RPCOIB_UD");
  return env != nullptr && env[0] == '1';
}

oib::UdConfig chaos_ud_cfg() {
  oib::UdConfig u;
  u.enabled = chaos_ud();
  return u;
}

/// `bump` is the canonical non-idempotent method: each seq must land in
/// the execution ledger exactly once no matter how many times the client
/// re-sends it across reconnects.
void register_session_methods(rpc::RpcServer& server, std::map<int, int>& exec) {
  server.dispatcher().register_method(
      kBump.protocol, kBump.method,
      [&exec](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable seq;
        seq.read_fields(in);
        ++exec[seq.value];
        seq.write(out);
        co_return;
      });
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
}

/// A retry policy that re-sends non-idempotent calls after transport
/// failures — only safe because the session-keyed retry cache dedups.
rpc::RpcRetryPolicy session_retry() {
  rpc::RpcRetryPolicy retry;
  retry.call_timeout = sim::millis(500);
  retry.max_retries = 10;
  retry.backoff_base = sim::millis(100);
  retry.non_idempotent.insert(kBump.to_string());
  retry.retry_non_idempotent_on_timeout = true;
  return retry;
}

rpc::SessionConfig sessions_on() {
  rpc::SessionConfig s;
  s.enabled = true;
  return s;
}

/// Send `count` bump calls spaced `gap` apart so injected kills land
/// mid-workload, not before or after it.
Task bump_burst(Scheduler& s, rpc::RpcClient& client, int base_seq, int count,
                sim::Dur gap, int& completed, int& errors) {
  for (int i = 0; i < count; ++i) {
    co_await sim::delay(s, gap);
    rpc::IntWritable param(base_seq + i), resp;
    try {
      co_await client.call(kAddr, kBump, param, &resp);
      if (resp.value == base_seq + i) ++completed;
    } catch (const rpc::RpcTransportError&) {
      ++errors;
    }
  }
}

Co<void> one_echo(rpc::RpcClient& client, int v, int& out, bool& err) {
  rpc::IntWritable param(v), resp;
  try {
    co_await client.call(kAddr, kEcho, param, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

Task echo_task(rpc::RpcClient& client, int v, int& out, bool& err) {
  co_await one_echo(client, v, out, err);
}

Co<void> one_bump(rpc::RpcClient& client, int seq, bool& ok, bool& err) {
  rpc::IntWritable param(seq), resp;
  try {
    co_await client.call(kAddr, kBump, param, &resp);
    ok = resp.value == seq;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

// --- Satellite 1 regression: the src/rpc/rpc.cpp carve-out ------------------
//
// Before the session layer, a reconnect lost the retry-cache key (dense
// conn ids), so retrying a non-idempotent call across a reconnect could
// re-execute it. With sessions on, the dedup key is the session id: a
// forced kill between attempt and response must leave exactly one
// execution in the server's ledger.
TEST(Session, RetriedNonIdempotentAcrossReconnectExecutesOnce) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    const bool ud = mode == RpcMode::kRpcoIB && chaos_ud();
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    // Kill the client->server connection on the first send at/after t=1s:
    // the bump call's first attempt goes out, the connection dies under
    // it, and the retry rides the reconnect. Over UD there is no
    // connection to kill; swallow the datagram with an outage instead so
    // the retry machinery still fires.
    if (ud) {
      plan->add_outage(net::FaultWindow{0, 1, sim::seconds(1), sim::millis(1400)});
    } else {
      plan->add_connection_kill(0, 1, sim::seconds(1));
    }
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    EngineConfig ec{.mode = mode, .server_shards = chaos_shards(),
                    .retry = session_retry()};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.ud = chaos_ud_cfg();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_session_methods(*server, exec);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    // Warm call opens the session before the kill window.
    int warm = 0;
    bool warm_err = false;
    s.spawn(echo_task(*client, 7, warm, warm_err));
    s.run_until(sim::millis(500));
    EXPECT_EQ(warm, 7);

    bool ok = false, err = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o, bool& e) -> Task {
      co_await sim::delay(sc, sim::seconds(1));
      co_await one_bump(c, 42, o, e);
    }(s, *client, ok, err));
    s.run_until(sim::seconds(60));

    EXPECT_TRUE(ok);
    EXPECT_FALSE(err);
    if (ud) {
      EXPECT_GE(plan->counters().outage_hits, 1u);
    } else {
      EXPECT_EQ(plan->counters().kills, 1u);
      EXPECT_EQ(client->stats().reconnects_fault_injected, 1u);
    }
    EXPECT_GE(client->stats().retries, 1u);
    // The exactly-once gate: one execution, never zero, never two.
    EXPECT_EQ(exec[42], 1) << "retried non-idempotent call re-executed";
    server->stop();
    s.drain_tasks();
  }
}

// --- Acceptance gate: every connection killed at least once -----------------
//
// Six clients, each with a deterministic kill scheduled mid-burst, on
// both transports. Every bump seq must execute exactly once, the pool
// must balance (RPCoIB), and the merged resilience report must be
// byte-identical across runs of the same seed.
TEST(Chaos, KillEveryConnectionExactlyOnce) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    const bool ud = mode == RpcMode::kRpcoIB && chaos_ud();
    auto run_once = [mode, ud] {
      static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6};
      constexpr int kConns = 6;
      constexpr int kCalls = 10;
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      // One staggered kill per client link, landing inside its burst
      // (calls are spaced 100 ms apart over ~1 s).
      for (int i = 0; i < kConns; ++i) {
        plan->add_connection_kill(kClientHosts[i], 1, sim::millis(150 + 100 * i));
      }
      net::TestbedConfig cfg = Testbed::cluster_b();
      cfg.fault = plan;
      Scheduler s;
      Testbed tb(s, cfg);
      EngineConfig ec{.mode = mode, .server_handlers = 4,
                      .server_shards = chaos_shards(), .retry = session_retry()};
      ec.overload.retry_cache_entries = 256;
      ec.session = sessions_on();
      ec.pool = chaos_pool();
      ec.ud = chaos_ud_cfg();
      RpcEngine engine(tb, ec);
      auto server = engine.make_server(tb.host(1), kAddr);
      std::map<int, int> exec;
      register_session_methods(*server, exec);
      server->start();

      std::vector<std::unique_ptr<rpc::RpcClient>> clients;
      int completed = 0, errors = 0;
      for (int i = 0; i < kConns; ++i) {
        clients.push_back(engine.make_client(tb.host(kClientHosts[i])));
        s.spawn(bump_burst(s, *clients[i], 1000 * (i + 1), kCalls, sim::millis(100),
                           completed, errors));
      }
      s.run_until(sim::seconds(300));

      EXPECT_EQ(completed, kConns * kCalls);
      EXPECT_EQ(errors, 0);
      rpc::RpcStats merged;
      for (auto& c : clients) merged.merge_resilience(c->stats());
      if (!ud) {
        // Every link was killed at least once... (over UD the eager calls
        // are connectionless, so the kill schedule never finds a target —
        // the leg still proves the burst completes exactly-once)
        EXPECT_GE(plan->counters().kills, static_cast<std::uint64_t>(kConns));
        EXPECT_GE(merged.reconnects_fault_injected, static_cast<std::uint64_t>(kConns));
        EXPECT_GE(merged.calls_replayed, static_cast<std::uint64_t>(kConns));
      } else {
        EXPECT_GE(merged.ud_datagrams_sent, static_cast<std::uint64_t>(kConns * kCalls));
      }
      // ...and no bump executed twice (or zero times).
      EXPECT_EQ(exec.size(), static_cast<std::size_t>(kConns * kCalls));
      for (const auto& [seq, n] : exec) {
        EXPECT_EQ(n, 1) << "seq " << seq << " executed " << n << " times";
      }
      std::string report =
          rpc::resilience_report(merged, &plan->counters(), &server->stats());
      report += "\nfinished at " + std::to_string(s.now());
      server->stop();
      if (mode == RpcMode::kRpcoIB) {
        // Mid-run kills must not leak pooled buffers: teardown leaves the
        // CQ open exactly so in-flight completions still recycle their
        // slots. Once the surviving connections drain their posted rings,
        // acquire/release must balance on both ends even though every
        // connection died at least once.
        for (auto& c : clients) {
          auto* rc = dynamic_cast<oib::RdmaRpcClient*>(c.get());
          EXPECT_NE(rc, nullptr);
          if (rc != nullptr) {
            rc->close_connections();
            EXPECT_EQ(rc->pool().native().stats().acquires,
                      rc->pool().native().stats().releases);
          }
        }
        auto* rs = dynamic_cast<oib::RdmaRpcServer*>(server.get());
        EXPECT_NE(rs, nullptr);
        if (rs != nullptr) {
          EXPECT_EQ(rs->pool().native().stats().acquires,
                    rs->pool().native().stats().releases);
        }
      }
      s.drain_tasks();
      return report;
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_EQ(a, b);
    if (!ud) {
      EXPECT_NE(a.find("reconnects (fault injected)"), std::string::npos);
      EXPECT_NE(a.find("fault kills"), std::string::npos);
    } else {
      EXPECT_NE(a.find("ud datagrams sent"), std::string::npos);
    }
    EXPECT_NE(a.find("server sessions opened"), std::string::npos);
  }
}

// --- Lease expiry racing an in-flight retry ---------------------------------
//
// The session lease expires while a killed call is backing off. The
// retried attempt (kWireRetryFlag) arrives for a dead session and must
// be refused with a *terminal* session-expired error — never silently
// re-executed, never resurrecting the session, and never re-sent (a
// retryable bounce would let a later fresh call revive the session with
// the dedup state already purged, re-opening the duplicate window).
TEST(Session, LeaseExpiryRejectsRetryInsteadOfReExecuting) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    const bool ud = mode == RpcMode::kRpcoIB && chaos_ud();
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    if (ud) {
      // No connection to kill on the datagram path: an outage window
      // swallows the in-flight bump the same way.
      plan->add_outage(net::FaultWindow{0, 1, sim::seconds(1), sim::millis(1400)});
    } else {
      plan->add_connection_kill(0, 1, sim::seconds(1));
    }
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry = session_retry();
    retry.max_retries = 3;
    retry.backoff_base = sim::seconds(5);  // backoff outlives the lease
    EngineConfig ec{.mode = mode, .server_shards = chaos_shards(), .retry = retry};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.session.lease = sim::seconds(2);
    ec.ud = chaos_ud_cfg();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_session_methods(*server, exec);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int warm = 0;
    bool warm_err = false;
    s.spawn(echo_task(*client, 7, warm, warm_err));
    s.run_until(sim::millis(500));
    EXPECT_EQ(warm, 7);

    bool ok = false, err = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o, bool& e) -> Task {
      co_await sim::delay(sc, sim::seconds(1));
      co_await one_bump(c, 99, o, e);
    }(s, *client, ok, err));
    s.run_until(sim::seconds(120));

    // The call fails terminally (SessionExpiredException, a transport-
    // class error) rather than silently re-executing under an expired
    // session — and the terminal status stops the retry loop at the
    // first rejection instead of burning the remaining attempts.
    EXPECT_FALSE(ok);
    EXPECT_TRUE(err);
    EXPECT_GE(server->stats().sessions_rejected, 1u);
    EXPECT_GE(server->stats().sessions_expired, 1u);
    EXPECT_LE(exec[99], 1) << "expired-session retry re-executed the call";
    server->stop();
    s.drain_tasks();
  }
}

// --- A fresh call reviving the session must not reopen the dupe window ------
//
// The race the terminal status alone cannot close: the killed call's
// session expires (purging its dedup state), then a *fresh* call from
// the same client re-opens the session before the retry arrives. The
// retry now finds the session alive and the cache empty — without the
// per-session call-id fence it would re-execute. The fence (the opener's
// call id, recorded at re-open) refuses the stale retried id instead.
TEST(Session, FreshCallRevivingExpiredSessionDoesNotReExecuteStaleRetry) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    const bool ud = mode == RpcMode::kRpcoIB && chaos_ud();
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    if (ud) {
      plan->add_outage(net::FaultWindow{0, 1, sim::seconds(1), sim::millis(1400)});
    } else {
      plan->add_connection_kill(0, 1, sim::seconds(1));
    }
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry = session_retry();
    retry.max_retries = 3;
    retry.backoff_base = sim::seconds(5);  // backoff outlives the lease
    EngineConfig ec{.mode = mode, .server_shards = chaos_shards(), .retry = retry};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.session.lease = sim::seconds(2);
    ec.ud = chaos_ud_cfg();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_session_methods(*server, exec);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int warm = 0;
    bool warm_err = false;
    s.spawn(echo_task(*client, 7, warm, warm_err));
    s.run_until(sim::millis(500));
    EXPECT_EQ(warm, 7);

    // t=1s: bump sent, connection killed under it; its retry backs off 5s.
    bool ok = false, err = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o, bool& e) -> Task {
      co_await sim::delay(sc, sim::seconds(1));
      co_await one_bump(c, 99, o, e);
    }(s, *client, ok, err));
    // t=4.5s: lease (2s) has expired the session and purged its dedup
    // state; this fresh echo re-opens (and fences) the session, and the
    // keepalives that follow hold it alive across the retry's entire
    // backoff+jitter window [6s, 8.5s] — so the retry always finds a
    // LIVE session with an empty cache, the exact race the fence closes.
    int revived = 0;
    bool revived_err = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, int& out, bool& e) -> Task {
      co_await sim::delay(sc, sim::millis(4500));
      for (int i = 0; i < 10 && !e; ++i) {
        co_await one_echo(c, 11, out, e);
        co_await sim::delay(sc, sim::millis(500));
      }
    }(s, *client, revived, revived_err));
    s.run_until(sim::seconds(120));

    // The revived session serves the fresh calls normally...
    EXPECT_EQ(revived, 11);
    EXPECT_FALSE(revived_err);
    // ...but the stale retry is refused, not re-executed: exactly-once
    // holds even though the retry found a live session and an empty cache.
    EXPECT_FALSE(ok);
    EXPECT_TRUE(err);
    EXPECT_GE(server->stats().sessions_rejected, 1u);
    EXPECT_LE(exec[99], 1) << "stale retry re-executed on the revived session";
    server->stop();
    s.drain_tasks();
  }
}

// --- Session table bounded growth under connection churn --------------------
TEST(Session, TableStaysBoundedUnderConnectionChurnStorm) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
    constexpr int kConns = 64;
    constexpr std::size_t kCap = 8;
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    EngineConfig ec{.mode = mode, .server_handlers = 4,
                    .server_shards = chaos_shards()};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.session.table_cap = kCap;
    ec.ud = chaos_ud_cfg();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_session_methods(*server, exec);
    server->start();

    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    std::vector<int> outs(kConns, 0);
    std::vector<char> errs(kConns, 0);
    for (int i = 0; i < kConns; ++i) {
      clients.push_back(engine.make_client(tb.host(kClientHosts[i % 8])));
      bool err_tmp = false;
      s.spawn([](Scheduler& sc, rpc::RpcClient& c, int v, sim::Dur wait, int& out,
                 char& err) -> Task {
        co_await sim::delay(sc, wait);
        bool e = false;
        int o = 0;
        co_await one_echo(c, v, o, e);
        out = o;
        err = e ? 1 : 0;
      }(s, *clients[i], i + 1, sim::millis(20 * i), outs[i], errs[i]));
      (void)err_tmp;
    }
    s.run_until(sim::seconds(120));

    for (int i = 0; i < kConns; ++i) {
      EXPECT_EQ(outs[i], i + 1) << "client " << i;
      EXPECT_EQ(errs[i], 0) << "client " << i;
    }
    // 64 distinct sessions through a cap-8 table: the LRU must have
    // evicted, the peak can never exceed the cap, and every session
    // still got service.
    EXPECT_EQ(server->stats().sessions_opened, static_cast<std::uint64_t>(kConns));
    EXPECT_GT(server->stats().sessions_evicted, 0u);
    EXPECT_LE(server->stats().session_table_peak, kCap);
    server->stop();
    s.drain_tasks();
  }
}

// --- SRQ idle eviction + kill: every reconnect cause stays exactly-once -----
//
// The server's LRU sweep evicts the idle connection (client rediscovers
// the stale QP on reuse) and a seeded kill tears it down mid-call: both
// recovery paths must land in the cause-split reconnect counters and
// neither may duplicate a bump.
TEST(Session, IdleEvictionAndKillReconnectsStayExactlyOnce) {
  // Deliberately never rides UD (no ec.ud): this test pins the RC-side
  // recovery machinery — SRQ idle eviction and QP kills have no datagram
  // analogue — so it stays meaningful in the RPCOIB_UD=1 matrix leg.
  auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
  plan->add_connection_kill(0, 1, sim::seconds(1));
  net::TestbedConfig cfg = Testbed::cluster_b();
  cfg.fault = plan;
  Scheduler s;
  Testbed tb(s, cfg);
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards(),
                  .retry = session_retry()};
  ec.overload.retry_cache_entries = 256;
  ec.session = sessions_on();
  ec.pool = chaos_pool();
  RpcEngine engine(tb, ec);
  oib::RdmaServerConfig scfg;
  scfg.num_handlers = 4;
  scfg.shards = chaos_shards();
  scfg.pool = chaos_pool();
  scfg.srq_idle_evict = sim::seconds(2);
  oib::RdmaRpcServer server(tb.host(1), tb.sockets(), engine.verbs(), kAddr, scfg);
  server.set_overload(ec.overload);
  server.set_session(ec.session);
  std::map<int, int> exec;
  register_session_methods(server, exec);
  server.start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool ok1 = false, ok2 = false, ok3 = false;
  bool e1 = false, e2 = false, e3 = false;
  s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o1, bool& o2, bool& o3, bool& f1,
             bool& f2, bool& f3) -> Task {
    co_await one_bump(c, 1, o1, f1);           // opens the session
    co_await sim::delay(sc, sim::seconds(1));  // kill fires under the next call
    co_await one_bump(c, 2, o2, f2);
    co_await sim::delay(sc, sim::seconds(6));  // idle past the eviction sweep
    co_await one_bump(c, 3, o3, f3);           // stale QP -> idle-evicted path
  }(s, *client, ok1, ok2, ok3, e1, e2, e3));
  s.run_until(sim::seconds(60));

  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_TRUE(ok3);
  EXPECT_FALSE(e1 || e2 || e3);
  for (int seq : {1, 2, 3}) EXPECT_EQ(exec[seq], 1) << "seq " << seq;
  EXPECT_GE(plan->counters().kills, 1u);
  EXPECT_GE(client->stats().reconnects_fault_injected, 1u);
  if (scfg.pool.srq_depth != 0) {  // eviction sweep needs the SRQ ring
    EXPECT_GE(server.stats().srq_evictions, 1u);
    EXPECT_GE(client->stats().reconnects_idle_evicted, 1u);
  }
  server.stop();
  s.drain_tasks();
}

// --- Exact reconnect-cause attribution --------------------------------------
//
// Each recovery activation must land in exactly one cause counter, with
// the others untouched: a seeded kill mid-call is fault_injected (never
// qp_error, though both surface as a failed post), and a stale QP found
// after the server's idle sweep is idle_evicted (never peer_closed). Runs
// on both transports and at shards {1, 4}; like the idle-eviction test
// above, the RPCoIB leg keeps UD off — cause attribution is a property of
// the connection-oriented path.
TEST(Session, ReconnectCountersAttributeExactCauses) {
  for (int shards : {1, 4}) {
    SCOPED_TRACE(shards);
    for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
      SCOPED_TRACE(oib::rpc_mode_name(mode));
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      plan->add_connection_kill(0, 1, sim::seconds(1));
      net::TestbedConfig cfg = Testbed::cluster_b();
      cfg.fault = plan;
      Scheduler s;
      Testbed tb(s, cfg);
      EngineConfig ec{.mode = mode, .server_shards = shards, .retry = session_retry()};
      ec.overload.retry_cache_entries = 256;
      ec.session = sessions_on();
      ec.pool = chaos_pool();
      RpcEngine engine(tb, ec);
      std::unique_ptr<rpc::RpcServer> server;
      oib::RdmaRpcServer* rs = nullptr;
      if (mode == RpcMode::kRpcoIB) {
        oib::RdmaServerConfig scfg;
        scfg.num_handlers = 4;
        scfg.shards = shards;
        scfg.pool = chaos_pool();
        scfg.srq_idle_evict = sim::seconds(2);
        auto owned = std::make_unique<oib::RdmaRpcServer>(tb.host(1), tb.sockets(),
                                                          engine.verbs(), kAddr, scfg);
        rs = owned.get();
        server = std::move(owned);
        server->set_overload(ec.overload);
        server->set_session(ec.session);
      } else {
        server = engine.make_server(tb.host(1), kAddr);
      }
      std::map<int, int> exec;
      register_session_methods(*server, exec);
      server->start();
      std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

      bool ok1 = false, ok2 = false, ok3 = false;
      bool e1 = false, e2 = false, e3 = false;
      s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o1, bool& o2, bool& o3,
                 bool& f1, bool& f2, bool& f3) -> Task {
        co_await one_bump(c, 1, o1, f1);           // opens the connection
        co_await sim::delay(sc, sim::seconds(1));  // kill fires under this call
        co_await one_bump(c, 2, o2, f2);
        co_await sim::delay(sc, sim::seconds(6));  // idle past the eviction sweep
        co_await one_bump(c, 3, o3, f3);           // RPCoIB: stale QP on reuse
      }(s, *client, ok1, ok2, ok3, e1, e2, e3));
      s.run_until(sim::seconds(60));

      EXPECT_TRUE(ok1 && ok2 && ok3);
      EXPECT_FALSE(e1 || e2 || e3);
      for (int seq : {1, 2, 3}) EXPECT_EQ(exec[seq], 1) << "seq " << seq;
      EXPECT_EQ(plan->counters().kills, 1u);
      const rpc::RpcStats& st = client->stats();
      EXPECT_EQ(st.reconnects_fault_injected, 1u);
      EXPECT_EQ(st.reconnects_qp_error, 0u);
      EXPECT_EQ(st.reconnects_peer_closed, 0u);
      if (mode == RpcMode::kRpcoIB && rs != nullptr && ec.pool.srq_depth != 0) {
        EXPECT_EQ(st.reconnects_idle_evicted, 1u);
        EXPECT_GE(rs->stats().srq_evictions, 1u);
      } else if (mode != RpcMode::kRpcoIB) {
        EXPECT_EQ(st.reconnects_idle_evicted, 0u);
      }
      server->stop();
      s.drain_tasks();
    }
  }
}

// --- Determinism across shard geometries ------------------------------------
//
// Probabilistic kills + drops with sessions on: the merged report must be
// run-twice byte-identical at server.shards = 1 and at 4 (the kill RNG is
// its own stream, so the drop/spike schedule is also stable).
TEST(Chaos, SeededKillRunsAreByteIdenticalAcrossShardGeometries) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    for (int shards : {1, 4}) {
      SCOPED_TRACE(shards);
      auto run_once = [mode, shards] {
        static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4};
        auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
        plan->set_default_faults({.drop_prob = 0.03});
        plan->set_kill_prob(0.05);
        net::TestbedConfig cfg = Testbed::cluster_b();
        cfg.fault = plan;
        Scheduler s;
        Testbed tb(s, cfg);
        EngineConfig ec{.mode = mode, .server_handlers = 4, .server_shards = shards,
                        .retry = session_retry()};
        ec.overload.retry_cache_entries = 256;
        ec.session = sessions_on();
        ec.ud = chaos_ud_cfg();
        RpcEngine engine(tb, ec);
        auto server = engine.make_server(tb.host(1), kAddr);
        std::map<int, int> exec;
        register_session_methods(*server, exec);
        server->start();

        std::vector<std::unique_ptr<rpc::RpcClient>> clients;
        int completed = 0, errors = 0;
        for (int i = 0; i < 4; ++i) {
          clients.push_back(engine.make_client(tb.host(kClientHosts[i])));
          s.spawn(bump_burst(s, *clients[i], 1000 * (i + 1), 8, sim::millis(50),
                             completed, errors));
        }
        s.run_until(sim::seconds(300));

        EXPECT_EQ(completed, 32);
        EXPECT_EQ(errors, 0);
        for (const auto& [seq, n] : exec) EXPECT_EQ(n, 1) << "seq " << seq;
        rpc::RpcStats merged;
        for (auto& c : clients) merged.merge_resilience(c->stats());
        std::string report =
            rpc::resilience_report(merged, &plan->counters(), &server->stats());
        report += "\nfinished at " + std::to_string(s.now());
        server->stop();
        s.drain_tasks();
        return report;
      };
      EXPECT_EQ(run_once(), run_once());
    }
  }
}

// --- Whole-stack chaos: MapReduce over probabilistic connection kills -------
//
// The Fig. 6 MiniSort driver with sessions on and a kill probability on
// every post-send window: NameNode, JobTracker, DataNode and TaskTracker
// RPC all ride the reconnect recovery machine, and the job must both
// finish and be byte-identical across runs of the same seed.
TEST(Chaos, MiniSortWithConnectionKillsIsIdenticalAcrossRuns) {
  auto run_once = [](std::uint64_t& kills) {
    workloads::ChaosConfig chaos;
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->set_kill_prob(0.001);
    chaos.fault = plan;
    chaos.retry.call_timeout = sim::seconds(3);
    chaos.retry.max_retries = 6;
    chaos.retry.retry_non_idempotent_on_timeout = true;
    chaos.overload.retry_cache_entries = 512;
    chaos.session.enabled = true;
    chaos.ud.enabled = chaos_ud();
    chaos.tracker_expiry = sim::seconds(30);
    chaos.pipeline_retries = 5;
    const workloads::SortResult r = workloads::run_randomwriter_sort(
        RpcMode::kRpcoIB, /*slaves=*/2, 64ULL << 20, /*seed=*/7, nullptr, &chaos);
    kills = plan->counters().kills;
    return r;
  };
  std::uint64_t kills1 = 0, kills2 = 0;
  const workloads::SortResult first = run_once(kills1);
  EXPECT_GT(first.randomwriter_secs, 0.0);
  EXPECT_GT(first.sort_secs, 0.0);
  // With UD on, eager RPC is connectionless and only the bulk paths
  // (rendezvous, streams) still expose kill targets — the count can
  // legitimately be zero, so only the RC leg pins it.
  if (!chaos_ud()) {
    EXPECT_GT(kills1, 0u);  // the schedule actually killed connections
  }
  const workloads::SortResult again = run_once(kills2);
  EXPECT_EQ(again.randomwriter_secs, first.randomwriter_secs);
  EXPECT_EQ(again.sort_secs, first.sort_secs);
  EXPECT_EQ(kills2, kills1);
}

// --- Default-off: sessionless reports carry no session rows -----------------
TEST(Session, DisabledSessionsLeaveReportsSessionFree) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->set_default_faults({.drop_prob = 0.05});
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::millis(500);
    retry.max_retries = 6;
    // Sessions stay default-off: no handshake bytes, no counters, no rows.
    EngineConfig ec{.mode = mode, .server_shards = chaos_shards(), .retry = retry};
    ec.ud = chaos_ud_cfg();  // sessionless UD: dedup keys fall back to host
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_session_methods(*server, exec);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int completed = 0, errors = 0;
    s.spawn(bump_burst(s, *client, 0, 20, sim::millis(10), completed, errors));
    s.run_until(sim::seconds(120));
    EXPECT_EQ(completed + errors, 20);

    const std::string report =
        rpc::resilience_report(client->stats(), &plan->counters(), &server->stats());
    EXPECT_EQ(report.find("session"), std::string::npos);
    EXPECT_EQ(report.find("reconnect"), std::string::npos);
    EXPECT_EQ(report.find("kills"), std::string::npos);
    server->stop();
    s.drain_tasks();
  }
}

}  // namespace
}  // namespace rpcoib
