// UD datagram eager path: flat per-connection server state with lossy
// delivery made exactly-once by the session/retry layer.
//
// The tentpole gate lives here: under seeded datagram loss every bump
// seq must land in the server's execution ledger exactly once, with zero
// RC connections opened (sub-MTU traffic never bootstraps a QP), the
// pools balanced on both ends, and the merged resilience report
// byte-identical across runs of the same seed. Seedable through
// RPCOIB_CHAOS_SEED / RPCOIB_SHARDS like the rest of the chaos suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/testbed.hpp"
#include "rpc/resilience.hpp"
#include "rpcoib/engine.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9500};
const rpc::MethodKey kEcho{"test.UdProtocol", "echo"};
const rpc::MethodKey kBump{"test.UdProtocol", "bump"};
const rpc::MethodKey kBlob{"test.UdProtocol", "blob"};
const rpc::MethodKey kSink{"test.UdProtocol", "sink"};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

int chaos_shards() {
  const char* env = std::getenv("RPCOIB_SHARDS");
  return env != nullptr ? static_cast<int>(std::strtoul(env, nullptr, 10)) : 1;
}

oib::UdConfig ud_on() {
  oib::UdConfig u;
  u.enabled = true;
  return u;
}

/// echo/bump mirror the session suite; blob returns an n-byte payload
/// (oversize-response probe) and sink swallows one (large-request probe).
void register_ud_methods(rpc::RpcServer& server, std::map<int, int>& exec) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
  server.dispatcher().register_method(
      kBump.protocol, kBump.method,
      [&exec](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable seq;
        seq.read_fields(in);
        ++exec[seq.value];
        seq.write(out);
        co_return;
      });
  server.dispatcher().register_method(
      kBlob.protocol, kBlob.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable n;
        n.read_fields(in);
        rpc::BytesWritable blob(net::Bytes(static_cast<std::size_t>(n.value), 0x5a));
        blob.write(out);
        co_return;
      });
  server.dispatcher().register_method(
      kSink.protocol, kSink.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::IntWritable size(static_cast<int>(payload.value.size()));
        size.write(out);
        co_return;
      });
}

rpc::RpcRetryPolicy session_retry() {
  rpc::RpcRetryPolicy retry;
  retry.call_timeout = sim::millis(500);
  retry.max_retries = 10;
  retry.backoff_base = sim::millis(100);
  retry.non_idempotent.insert(kBump.to_string());
  retry.retry_non_idempotent_on_timeout = true;
  return retry;
}

rpc::SessionConfig sessions_on() {
  rpc::SessionConfig s;
  s.enabled = true;
  return s;
}

Task bump_burst(Scheduler& s, rpc::RpcClient& client, int base_seq, int count,
                sim::Dur gap, int& completed, int& errors) {
  for (int i = 0; i < count; ++i) {
    co_await sim::delay(s, gap);
    rpc::IntWritable param(base_seq + i), resp;
    try {
      co_await client.call(kAddr, kBump, param, &resp);
      if (resp.value == base_seq + i) ++completed;
    } catch (const rpc::RpcTransportError&) {
      ++errors;
    }
  }
}

Co<void> one_echo(rpc::RpcClient& client, int v, int& out, bool& err) {
  rpc::IntWritable param(v), resp;
  try {
    co_await client.call(kAddr, kEcho, param, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

Task echo_task(rpc::RpcClient& client, int v, int& out, bool& err) {
  co_await one_echo(client, v, out, err);
}

Co<void> one_bump(rpc::RpcClient& client, int seq, bool& ok, bool& err) {
  rpc::IntWritable param(seq), resp;
  try {
    co_await client.call(kAddr, kBump, param, &resp);
    ok = resp.value == seq;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

// --- The flat-state core: eager calls never bootstrap RC ---------------------
//
// Sub-MTU calls ride datagrams into the fixed endpoint pool, so the
// client opens zero RC connections; only a rendezvous-sized request
// falls back to the connected path.
TEST(Ud, EagerCallsRideDatagramsWithoutRcState) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.ud = ud_on();
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  std::map<int, int> exec;
  register_ud_methods(*server, exec);
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  int sunk = 0;
  bool err = false;
  s.spawn([](rpc::RpcClient& c, bool& e) -> Task {
    for (int i = 0; i < 10; ++i) {
      rpc::IntWritable param(i), resp;
      try {
        co_await c.call(kAddr, kEcho, param, &resp);
        if (resp.value != i) e = true;
      } catch (const rpc::RpcTransportError&) {
        e = true;
      }
    }
    co_return;
  }(*client, err));
  s.run_until(sim::seconds(5));
  EXPECT_FALSE(err);
  EXPECT_EQ(client->stats().calls_sent, 10u);
  EXPECT_EQ(client->stats().ud_datagrams_sent, 10u);
  EXPECT_EQ(client->stats().ud_responses_received, 10u);
  // The flat-state claim: ten eager calls, zero RC connections.
  EXPECT_EQ(client->stats().connections_opened, 0u);
  EXPECT_EQ(server->stats().ud_calls_received, 10u);
  EXPECT_EQ(server->stats().ud_responses_sent, 10u);

  // A rendezvous-sized request exceeds the datagram budget and takes the
  // RC path — the first and only QP bootstrap of the run.
  bool sink_err = false;
  s.spawn([](rpc::RpcClient& c, int& out, bool& e) -> Task {
    rpc::BytesWritable payload(net::Bytes(8192, 0x33));
    rpc::IntWritable resp;
    try {
      co_await c.call(kAddr, kSink, payload, &resp);
      out = resp.value;
    } catch (const rpc::RpcTransportError&) {
      e = true;
    }
    co_return;
  }(*client, sunk, sink_err));
  s.run_until(sim::seconds(10));
  EXPECT_FALSE(sink_err);
  EXPECT_EQ(sunk, 8192);
  EXPECT_GE(client->stats().ud_rc_fallbacks, 1u);
  EXPECT_EQ(client->stats().connections_opened, 1u);

  server->stop();
  auto* rc = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rc, nullptr);
  rc->close_connections();
  EXPECT_EQ(rc->pool().native().stats().acquires, rc->pool().native().stats().releases);
  auto* rs = dynamic_cast<oib::RdmaRpcServer*>(server.get());
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->pool().native().stats().acquires, rs->pool().native().stats().releases);
  s.drain_tasks();
}

// --- Tentpole acceptance: exactly-once under seeded datagram loss -----------
//
// UD silently drops datagrams; the session + retry-cache path must turn
// that into exactly-once execution. Four clients, seeded loss on every
// link, every bump executes exactly once, no RC connections, balanced
// pools, byte-identical reports across runs.
TEST(Chaos, UdSeededDatagramLossStaysExactlyOnce) {
  auto run_once = [] {
    static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4};
    constexpr int kConns = 4;
    constexpr int kCalls = 12;
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->set_datagram_loss(0.08);
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_handlers = 4,
                    .server_shards = chaos_shards(), .retry = session_retry()};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.ud = ud_on();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_ud_methods(*server, exec);
    server->start();

    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    int completed = 0, errors = 0;
    for (int i = 0; i < kConns; ++i) {
      clients.push_back(engine.make_client(tb.host(kClientHosts[i])));
      s.spawn(bump_burst(s, *clients[i], 100 * (i + 1), kCalls, sim::millis(20),
                         completed, errors));
    }
    s.run_until(sim::seconds(300));

    EXPECT_EQ(completed, kConns * kCalls);
    EXPECT_EQ(errors, 0);
    EXPECT_GT(plan->counters().datagram_losses, 0u)
        << "seed produced no loss; the gate proved nothing";
    rpc::RpcStats merged;
    for (auto& c : clients) merged.merge_resilience(c->stats());
    EXPECT_GT(merged.ud_datagrams_sent, 0u);
    EXPECT_GE(merged.retries, 1u);
    // Losses never push traffic onto RC: sub-MTU retries are datagrams too.
    EXPECT_EQ(merged.connections_opened, 0u);
    // The exactly-once ledger: every seq exactly once, despite retransmits.
    EXPECT_EQ(exec.size(), static_cast<std::size_t>(kConns * kCalls));
    for (const auto& [seq, n] : exec) {
      EXPECT_EQ(n, 1) << "seq " << seq << " executed " << n << " times";
    }
    std::string report =
        rpc::resilience_report(merged, &plan->counters(), &server->stats());
    EXPECT_NE(report.find("ud datagrams sent"), std::string::npos);
    EXPECT_NE(report.find("server ud calls received"), std::string::npos);
    EXPECT_NE(report.find("fault datagram losses"), std::string::npos);
    report += "\nfinished at " + std::to_string(s.now());
    server->stop();
    for (auto& c : clients) {
      auto* rc = dynamic_cast<oib::RdmaRpcClient*>(c.get());
      EXPECT_NE(rc, nullptr);
      if (rc != nullptr) {
        rc->close_connections();
        EXPECT_EQ(rc->pool().native().stats().acquires,
                  rc->pool().native().stats().releases);
      }
    }
    auto* rs = dynamic_cast<oib::RdmaRpcServer*>(server.get());
    EXPECT_NE(rs, nullptr);
    if (rs != nullptr) {
      EXPECT_EQ(rs->pool().native().stats().acquires,
                rs->pool().native().stats().releases);
    }
    s.drain_tasks();
    return report;
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
}

// --- Batch frames ride UD, clamped to the datagram MTU ----------------------
//
// PR 4's multi-call coalescing wraps whole kBatch frames in one kUdCall
// datagram. The byte limit must clamp to the MTU even when batch.max_bytes
// is larger — an oversize post_send would throw and fail the calls.
TEST(Ud, BatchedCallsShareDatagramsWithinMtu) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.session = sessions_on();
  ec.ud = ud_on();
  ec.batch.enabled = true;
  ec.batch.small_threshold = 512;
  ec.batch.max_bytes = 65536;  // far past the MTU: the UD clamp must bite
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  std::map<int, int> exec;
  register_ud_methods(*server, exec);
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  constexpr int kCalls = 32;
  std::vector<int> outs(kCalls, -1);
  std::vector<char> errs(kCalls, 0);
  for (int i = 0; i < kCalls; ++i) {
    s.spawn([](rpc::RpcClient& c, int v, int& out, char& e) -> Task {
      bool berr = false;
      co_await one_echo(c, v, out, berr);
      e = berr ? 1 : 0;
    }(*client, i, outs[i], errs[i]));
  }
  s.run_until(sim::seconds(10));

  for (int i = 0; i < kCalls; ++i) {
    EXPECT_EQ(outs[i], i) << "call " << i;
    EXPECT_EQ(errs[i], 0) << "call " << i;
  }
  EXPECT_EQ(client->stats().batched_calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_GE(client->stats().batches_sent, 2u);  // max_calls caps one frame at 16
  EXPECT_EQ(client->stats().connections_opened, 0u);
  EXPECT_GE(server->stats().batches_received, 2u);
  EXPECT_EQ(server->stats().batched_calls_received, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(server->stats().ud_calls_received, static_cast<std::uint64_t>(kCalls));
  server->stop();
  s.drain_tasks();
}

// --- Oversize responses bounce with a terminal error ------------------------
//
// A sub-MTU request whose *response* cannot fit one datagram is answered
// with an error frame instead of a silent drop (which would burn the
// whole retry budget before failing).
TEST(Ud, OversizeResponseBouncesWithRemoteError) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.ud = ud_on();
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  std::map<int, int> exec;
  register_ud_methods(*server, exec);
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool remote_err = false;
  std::string err_msg;
  int small_blob = 0;
  s.spawn([](rpc::RpcClient& c, bool& e, std::string& msg, int& small) -> Task {
    // 8 KB response: rides over the 16 KB eager threshold server-side but
    // not through a 4 KB datagram.
    rpc::IntWritable big(8192);
    rpc::BytesWritable resp;
    try {
      co_await c.call(kAddr, kBlob, big, &resp);
    } catch (const rpc::RemoteException& ex) {
      e = true;
      msg = ex.what();
    }
    // The endpoint pool stays healthy afterwards: a fitting response works.
    rpc::IntWritable fit(512);
    rpc::BytesWritable ok;
    co_await c.call(kAddr, kBlob, fit, &ok);
    small = static_cast<int>(ok.value.size());
    co_return;
  }(*client, remote_err, err_msg, small_blob));
  s.run_until(sim::seconds(10));

  EXPECT_TRUE(remote_err);
  EXPECT_NE(err_msg.find("UD datagram MTU"), std::string::npos) << err_msg;
  EXPECT_EQ(small_blob, 512);
  EXPECT_EQ(server->stats().ud_resp_oversize, 1u);
  EXPECT_EQ(client->stats().connections_opened, 0u);
  server->stop();
  s.drain_tasks();
}

// --- Default-off discipline -------------------------------------------------
TEST(Ud, DisabledUdAdvertisesNothingAndKeepsReportsClean) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  std::map<int, int> exec;
  register_ud_methods(*server, exec);
  server->start();
  // No UD service on the stack: clients cannot even try the datagram path.
  EXPECT_EQ(engine.verbs().ud_service(kAddr), nullptr);
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  int out = 0;
  bool err = false;
  s.spawn(echo_task(*client, 5, out, err));
  s.run_until(sim::seconds(5));
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(err);
  EXPECT_EQ(client->stats().ud_datagrams_sent, 0u);
  const std::string report =
      rpc::resilience_report(client->stats(), nullptr, &server->stats());
  EXPECT_EQ(report.find("ud datagrams sent"), std::string::npos);
  EXPECT_EQ(report.find("server ud calls received"), std::string::npos);
  server->stop();
  s.drain_tasks();
}

// --- Satellite 1: mismatched eager thresholds cannot overrun recv rings -----
//
// The rings must be sized from the *negotiated* threshold, not the local
// default: a peer that advertises nothing ("0") falls back to its own
// threshold and may legally send eager frames far larger than this
// side's recv_buf_size. Covered in both directions (client ring sized
// against the server's advertisement; server legacy ring sized against
// the client's), with the UD path both off and on.
TEST(UdThreshold, MismatchedThresholdCannotOverrunPeerRing) {
  for (bool ud_enabled : {false, true}) {
    SCOPED_TRACE(ud_enabled ? "ud-on" : "ud-off");
    // Direction A: the client advertises no threshold and sizes its own
    // buffers small; the server (16 KB threshold) sends a 10 KB eager
    // response that must still land in the client's ring.
    {
      Scheduler s;
      Testbed tb(s, Testbed::cluster_b());
      verbs::VerbsStack verbs(tb.fabric());
      oib::RdmaServerConfig scfg;
      scfg.shards = chaos_shards();
      if (ud_enabled) scfg.ud = ud_on();
      oib::RdmaRpcServer server(tb.host(1), tb.sockets(), verbs, kAddr, scfg);
      std::map<int, int> exec;
      register_ud_methods(server, exec);
      server.start();

      oib::RdmaClientConfig ccfg;
      ccfg.eager_threshold = 0;  // "not advertised": peer uses its own 16 KB
      ccfg.recv_buf_size = 1024;
      if (ud_enabled) ccfg.ud = ud_on();
      oib::RdmaRpcClient client(tb.host(0), tb.sockets(), verbs, ccfg);

      int got = 0;
      bool err = false;
      s.spawn([](rpc::RpcClient& c, int& out, bool& e) -> Task {
        rpc::IntWritable n(10000);
        rpc::BytesWritable resp;
        try {
          co_await c.call(kAddr, kBlob, n, &resp);
          out = static_cast<int>(resp.value.size());
        } catch (const rpc::RpcTransportError&) {
          e = true;
        }
        co_return;
      }(client, got, err));
      s.run_until(sim::seconds(10));
      EXPECT_FALSE(err);
      EXPECT_EQ(got, 10000) << "server's eager response overran the client ring";
      server.stop();
      client.close_connections();
      s.drain_tasks();
    }
    // Direction B: the server advertises no threshold and sizes its
    // legacy per-connection ring small; the client (16 KB threshold)
    // sends a 10 KB eager call that must still land server-side.
    {
      Scheduler s;
      Testbed tb(s, Testbed::cluster_b());
      verbs::VerbsStack verbs(tb.fabric());
      oib::RdmaServerConfig scfg;
      scfg.shards = chaos_shards();
      scfg.eager_threshold = 0;  // "not advertised": peer uses its own 16 KB
      scfg.recv_buf_size = 1024;
      if (ud_enabled) scfg.ud = ud_on();
      oib::RdmaRpcServer server(tb.host(1), tb.sockets(), verbs, kAddr, scfg);
      std::map<int, int> exec;
      register_ud_methods(server, exec);
      server.start();

      oib::RdmaClientConfig ccfg;
      if (ud_enabled) ccfg.ud = ud_on();
      oib::RdmaRpcClient client(tb.host(0), tb.sockets(), verbs, ccfg);

      int sunk = 0;
      bool err = false;
      s.spawn([](rpc::RpcClient& c, int& out, bool& e) -> Task {
        rpc::BytesWritable payload(net::Bytes(10000, 0x77));
        rpc::IntWritable resp;
        try {
          co_await c.call(kAddr, kSink, payload, &resp);
          out = resp.value;
        } catch (const rpc::RpcTransportError&) {
          e = true;
        }
        co_return;
      }(client, sunk, err));
      s.run_until(sim::seconds(10));
      EXPECT_FALSE(err);
      EXPECT_EQ(sunk, 10000) << "client's eager call overran the server ring";
      server.stop();
      client.close_connections();
      s.drain_tasks();
    }
  }
}

// --- Satellite 2: batched retries bounce per sub-call across expiry ---------
//
// Two non-idempotent calls coalesce into one kBatch frame; the link dies
// under it and the session lease expires during the backoff. A fresh
// call then revives (and fences) the session just before the retried
// frame arrives. Every sub-call must be refused *individually* with the
// terminal session-expired status — two rejections in the server
// counters, not one frame-level bounce — and nothing re-executes. Runs
// on sockets, RC, and UD (where the frame is swallowed by an outage
// window instead of a connection kill: UD has no connection to kill).
TEST(Session, BatchedRetryAcrossExpiryBouncesEachSubCall) {
  struct Leg {
    RpcMode mode;
    bool ud;
  };
  for (Leg leg : {Leg{RpcMode::kSocketIPoIB, false}, Leg{RpcMode::kRpcoIB, false},
                  Leg{RpcMode::kRpcoIB, true}}) {
    SCOPED_TRACE(std::string(oib::rpc_mode_name(leg.mode)) +
                 (leg.ud ? "+ud" : ""));
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    if (leg.ud) {
      // Swallow every datagram in [1s, 1.4s): the batched first attempt
      // vanishes exactly like a killed RC send.
      plan->add_outage(net::FaultWindow{0, 1, sim::seconds(1), sim::millis(1400)});
    } else {
      plan->add_connection_kill(0, 1, sim::seconds(1));
    }
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry = session_retry();
    retry.max_retries = 3;
    retry.backoff_base = sim::seconds(5);  // backoff outlives the lease
    EngineConfig ec{.mode = leg.mode, .server_shards = chaos_shards(),
                    .retry = retry};
    ec.overload.retry_cache_entries = 256;
    ec.session = sessions_on();
    ec.session.lease = sim::seconds(2);
    ec.batch.enabled = true;
    ec.batch.small_threshold = 512;
    if (leg.ud) ec.ud = ud_on();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    std::map<int, int> exec;
    register_ud_methods(*server, exec);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int warm = 0;
    bool warm_err = false;
    s.spawn(echo_task(*client, 7, warm, warm_err));
    s.run_until(sim::millis(500));
    EXPECT_EQ(warm, 7);

    // t=1s: two bumps issued back to back coalesce into one frame, which
    // the kill/outage swallows; both retries back off 5s.
    bool ok1 = false, err1 = false, ok2 = false, err2 = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o, bool& e) -> Task {
      co_await sim::delay(sc, sim::seconds(1));
      co_await one_bump(c, 201, o, e);
    }(s, *client, ok1, err1));
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, bool& o, bool& e) -> Task {
      co_await sim::delay(sc, sim::seconds(1));
      co_await one_bump(c, 202, o, e);
    }(s, *client, ok2, err2));
    // t=4.5s on: the lease (2s) has expired the session; fresh echoes
    // revive and fence it, and keep it alive across the whole
    // backoff+jitter window — so each retried sub-call races a LIVE
    // session with an empty dedup cache, the exact per-sub-call race.
    int revived = 0;
    bool revived_err = false;
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, int& out, bool& e) -> Task {
      co_await sim::delay(sc, sim::millis(4500));
      for (int i = 0; i < 10 && !e; ++i) {
        co_await one_echo(c, 11, out, e);
        co_await sim::delay(sc, sim::millis(500));
      }
    }(s, *client, revived, revived_err));
    s.run_until(sim::seconds(120));

    EXPECT_EQ(revived, 11);
    EXPECT_FALSE(revived_err);
    // Both sub-calls bounce terminally and individually.
    EXPECT_FALSE(ok1);
    EXPECT_TRUE(err1);
    EXPECT_FALSE(ok2);
    EXPECT_TRUE(err2);
    EXPECT_GE(server->stats().sessions_rejected, 2u)
        << "expired batch was not refused per sub-call";
    EXPECT_GE(server->stats().sessions_expired, 1u);
    EXPECT_LE(exec[201], 1) << "batched retry re-executed sub-call 201";
    EXPECT_LE(exec[202], 1) << "batched retry re-executed sub-call 202";
    EXPECT_GE(client->stats().batches_sent, 1u);
    if (leg.ud) {
      EXPECT_GE(client->stats().ud_datagrams_sent, 1u);
      EXPECT_EQ(client->stats().connections_opened, 0u);
      EXPECT_GE(plan->counters().datagram_losses, 1u);
    } else {
      EXPECT_EQ(plan->counters().kills, 1u);
    }
    server->stop();
    s.drain_tasks();
  }
}

// --- rx_dropped aggregation: monotonic across stop/start, idempotent syncs --
//
// The server folds the previous run's endpoint drop counts into
// ud_rx_dropped_base_ when start() rebuilds the pool, and sync_stats()
// reports base + the live endpoints' counts as an assignment. Regression
// gates: a stop/start cycle neither double-counts nor loses drops, and
// calling stats() repeatedly (each call re-syncs) never inflates the
// number.
TEST(Ud, RxDroppedAggregationSurvivesRestartWithoutDoubleCount) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  rpc::RpcRetryPolicy retry;
  retry.call_timeout = sim::millis(200);
  retry.max_retries = 10;
  retry.backoff_base = sim::millis(50);
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards(),
                  .retry = retry};
  ec.ud = ud_on();
  // One endpoint with a single-slot ring: simultaneous bursts from four
  // hosts must overrun it while a datagram is being copied out.
  ec.ud.server_endpoints = 1;
  ec.ud.recv_depth = 1;
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  std::map<int, int> exec;
  register_ud_methods(*server, exec);
  server->start();

  static constexpr cluster::HostId kHosts[] = {0, 2, 3, 4};
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  for (cluster::HostId h : kHosts) clients.push_back(engine.make_client(tb.host(h)));

  // Results arena: the echo tasks write through references, so the
  // storage must outlive every spawned task.
  std::vector<int> outs(256, -1);
  std::vector<char> errs(256, 0);
  std::size_t next_slot = 0;
  auto burst = [&](int base) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      for (int j = 0; j < 6; ++j) {
        const std::size_t slot = next_slot++;
        s.spawn([](rpc::RpcClient& c, int v, int& out, char& e) -> Task {
          bool berr = false;
          co_await one_echo(c, v, out, berr);
          e = berr ? 1 : 0;
        }(*clients[i], base + j, outs[slot], errs[slot]));
      }
    }
    s.run_until(s.now() + sim::seconds(30));
  };
  burst(0);

  const std::uint64_t d1 = server->stats().ud_rx_dropped;
  EXPECT_GT(d1, 0u) << "the burst never overran the single-slot ring";
  // Repeated syncs are assignments, not accumulation.
  EXPECT_EQ(server->stats().ud_rx_dropped, d1);
  EXPECT_EQ(server->stats().ud_rx_dropped, d1);

  // Restart: the fold into the base must neither double-count (fold +
  // still-live endpoints) nor lose the history (cleared endpoints).
  server->stop();
  server->start();
  EXPECT_EQ(server->stats().ud_rx_dropped, d1);
  EXPECT_EQ(server->stats().ud_rx_dropped, d1);

  burst(100);
  const std::uint64_t d2 = server->stats().ud_rx_dropped;
  EXPECT_GT(d2, d1) << "post-restart drops vanished from the aggregate";
  EXPECT_EQ(server->stats().ud_rx_dropped, d2);

  server->stop();
  server->start();
  EXPECT_EQ(server->stats().ud_rx_dropped, d2);
  server->stop();
  // A final stop does not fold (only start() does) — the live endpoints
  // still carry their counts, so the report stays stable.
  EXPECT_EQ(server->stats().ud_rx_dropped, d2);
  s.drain_tasks();
}

}  // namespace
}  // namespace rpcoib
