// Tests for the metrics library: Welford summaries, merging, histogram
// quantiles, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/metrics.hpp"
#include "metrics/table.hpp"

namespace rpcoib::metrics {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZeroed) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i % 7;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, empty;
  a.add(3.0);
  a.add(5.0);
  Summary copy = a;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  Summary e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 2u);
  EXPECT_DOUBLE_EQ(e2.mean(), 4.0);
}

TEST(Histogram, QuantilesBracketData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_GE(h.quantile(0.5), 256.0);   // log2 buckets: coarse but ordered
  EXPECT_LE(h.quantile(0.5), 1000.0);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.99), 1000.0);
  EXPECT_EQ(h.summary().count(), 1000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(5);
  h.reset();
  EXPECT_EQ(h.summary().count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Registry, CountersAndSummaries) {
  Registry r;
  r.counter("x") += 3;
  r.counter("x") += 2;
  EXPECT_EQ(r.counter_value("x"), 5u);
  EXPECT_EQ(r.counter_value("missing"), 0u);
  r.summary("lat").add(10.0);
  ASSERT_NE(r.find_summary("lat"), nullptr);
  EXPECT_EQ(r.find_summary("lat")->count(), 1u);
  EXPECT_EQ(r.find_summary("nope"), nullptr);
  r.reset();
  EXPECT_EQ(r.counter_value("x"), 0u);
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"A", "LongHeader"});
  t.row({"xx", Table::num(3.14159, 2)});
  t.row({"y", Table::pct(12.345)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("12.3%"), std::string::npos);
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"A", "B", "C"});
  t.row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace rpcoib::metrics
