// Tests for the simulated fabric and socket layer: timing, egress
// serialization, stream assembly, EOF, refused connections.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "net/socket.hpp"
#include "net/testbed.hpp"
#include "sim/task.hpp"

namespace rpcoib::net {
namespace {

using sim::Co;
using sim::Scheduler;
using sim::Task;

Bytes make_bytes(std::size_t n, Byte fill = 0xAB) { return Bytes(n, fill); }

TEST(Fabric, WireTimeScalesWithSizeAndBandwidth) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  const NetParams& ib = tb.fabric().params(Transport::kIBVerbs);
  // 3.2 GB/s: 3200 bytes take ~1us.
  EXPECT_NEAR(sim::to_us(ib.wire_time(3200)), 1.0, 0.05);
  const NetParams& ge = tb.fabric().params(Transport::kOneGigE);
  EXPECT_GT(ge.wire_time(3200), ib.wire_time(3200));
}

TEST(Fabric, EgressSerializesBackToBackMessages) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  // Two 1 MB messages from the same host: the second arrives one full
  // transmission time after the first.
  sim::Time a1 = 0, a2 = 0;
  tb.fabric().deliver(0, 1, Transport::kIPoIB, 1 << 20, [&] { a1 = s.now(); });
  tb.fabric().deliver(0, 1, Transport::kIPoIB, 1 << 20, [&] { a2 = s.now(); });
  s.run();
  const sim::Dur xmit = tb.fabric().params(Transport::kIPoIB).wire_time(1 << 20);
  EXPECT_EQ(a2 - a1, xmit);
}

Task echo_server(Testbed& tb, Listener& l) {
  SocketPtr sock = co_await l.accept();
  Bytes buf(5);
  co_await sock->read_full(buf);
  co_await sock->write(buf);
  (void)tb;
}

Task echo_client(Testbed& tb, Address addr, Transport t, std::string& got, sim::Time& rtt) {
  const sim::Time start = tb.sched().now();
  SocketPtr sock = co_await tb.sockets().connect(tb.host(0), addr, t);
  const Bytes msg = {'h', 'e', 'l', 'l', 'o'};
  co_await sock->write(msg);
  Bytes buf(5);
  co_await sock->read_full(buf);
  got.assign(buf.begin(), buf.end());
  rtt = tb.sched().now() - start;
}

TEST(Socket, EchoRoundTripOnEveryTransport) {
  for (Transport t : {Transport::kOneGigE, Transport::kTenGigE, Transport::kIPoIB,
                      Transport::kIBVerbs}) {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    Listener& l = tb.sockets().listen({1, 9000});
    std::string got;
    sim::Time rtt = 0;
    s.spawn(echo_server(tb, l));
    s.spawn(echo_client(tb, {1, 9000}, t, got, rtt));
    s.run();
    EXPECT_EQ(got, "hello") << transport_name(t);
    EXPECT_GT(rtt, 0u);
  }
}

TEST(Socket, FasterTransportsHaveLowerRtt) {
  auto rtt_of = [](Transport t) {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    Listener& l = tb.sockets().listen({1, 9000});
    std::string got;
    sim::Time rtt = 0;
    s.spawn(echo_server(tb, l));
    s.spawn(echo_client(tb, {1, 9000}, t, got, rtt));
    s.run();
    return rtt;
  };
  EXPECT_LT(rtt_of(Transport::kIBVerbs), rtt_of(Transport::kIPoIB));
  EXPECT_LT(rtt_of(Transport::kTenGigE), rtt_of(Transport::kOneGigE));
}

Task frag_server(Testbed& tb, Listener& l, Bytes& assembled) {
  (void)tb;
  SocketPtr sock = co_await l.accept();
  assembled.resize(10);
  co_await sock->read_full(assembled);
}

Task frag_client(Testbed& tb, Address addr) {
  SocketPtr sock = co_await tb.sockets().connect(tb.host(0), addr, Transport::kIPoIB);
  // Send 10 bytes as 4 fragments; the reader must reassemble.
  Bytes all(10);
  std::iota(all.begin(), all.end(), Byte{0});
  const ByteSpan span(all);
  co_await sock->write(span.subspan(0, 3));
  co_await sock->write(span.subspan(3, 1));
  co_await sock->write(span.subspan(4, 5));
  co_await sock->write(span.subspan(9, 1));
}

TEST(Socket, ReadFullAssemblesAcrossChunks) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  Listener& l = tb.sockets().listen({2, 9001});
  Bytes assembled;
  s.spawn(frag_server(tb, l, assembled));
  s.spawn(frag_client(tb, {2, 9001}));
  s.run();
  Bytes expect(10);
  std::iota(expect.begin(), expect.end(), Byte{0});
  EXPECT_EQ(assembled, expect);
}

Task eof_server(Testbed& tb, Listener& l, bool& got_eof) {
  (void)tb;
  SocketPtr sock = co_await l.accept();
  Bytes buf(100);
  try {
    co_await sock->read_full(buf);
  } catch (const SocketError&) {
    got_eof = true;
  }
}

Task eof_client(Testbed& tb, Address addr) {
  SocketPtr sock = co_await tb.sockets().connect(tb.host(0), addr, Transport::kIPoIB);
  const Bytes part{1, 2, 3};
  co_await sock->write(part);
  sock->close();
}

TEST(Socket, PeerCloseSurfacesAsEofError) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  Listener& l = tb.sockets().listen({3, 9002});
  bool got_eof = false;
  s.spawn(eof_server(tb, l, got_eof));
  s.spawn(eof_client(tb, {3, 9002}));
  s.run();
  EXPECT_TRUE(got_eof);
}

Task refused_client(Testbed& tb, bool& refused) {
  try {
    (void)co_await tb.sockets().connect(tb.host(0), {4, 1234}, Transport::kIPoIB);
  } catch (const SocketError&) {
    refused = true;
  }
}

TEST(Socket, ConnectToUnboundPortIsRefused) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  bool refused = false;
  s.spawn(refused_client(tb, refused));
  s.run();
  EXPECT_TRUE(refused);
}

TEST(SocketTable, DuplicateBindThrows) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  tb.sockets().listen({1, 9000});
  EXPECT_THROW(tb.sockets().listen({1, 9000}), SocketError);
  tb.sockets().unlisten({1, 9000});
  EXPECT_NO_THROW(tb.sockets().listen({1, 9000}));
}

TEST(Testbed, ClusterShapesMatchPaper) {
  Scheduler s;
  Testbed a(s, Testbed::cluster_a());
  EXPECT_EQ(a.size(), 65);
  Testbed b(s, Testbed::cluster_b());
  EXPECT_EQ(b.size(), 9);
  EXPECT_TRUE(b.config().has_ten_gige);
}

TEST(Bytes, LargeTransferTimesAreBandwidthBound) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  // 64 MB over IPoIB at 1.6 GB/s ~ 40 ms.
  sim::Time done = 0;
  tb.fabric().deliver(0, 1, Transport::kIPoIB, 64u << 20, [&] { done = s.now(); });
  s.run();
  EXPECT_NEAR(sim::to_ms(done), 64.0 / 1.6 / 1000.0 * 1000.0, 2.0);
}

}  // namespace
}  // namespace rpcoib::net
