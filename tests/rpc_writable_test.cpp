// Serialization framework tests: primitive round-trips, Hadoop VInt wire
// compatibility, Algorithm-1 growth behaviour, buffered stream costs.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "cluster/cost_model.hpp"
#include "rpc/buffers.hpp"
#include "rpc/writable.hpp"

namespace rpcoib::rpc {
namespace {

const cluster::CostModel kCm{};

TEST(VInt, SingleByteRange) {
  // Hadoop encodes [-112, 127] as one byte.
  for (std::int64_t v : {-112LL, -1LL, 0LL, 1LL, 127LL}) {
    DataOutputBuffer out(kCm);
    out.write_vi64(v);
    EXPECT_EQ(out.length(), 1u) << v;
    DataInputBuffer in(kCm, out.data());
    EXPECT_EQ(in.read_vi64(), v);
  }
}

TEST(VInt, KnownWireBytes) {
  // writeVLong(128) => first byte -113 (one magnitude byte), then 0x80.
  DataOutputBuffer out(kCm);
  out.write_vi64(128);
  ASSERT_EQ(out.length(), 2u);
  EXPECT_EQ(static_cast<std::int8_t>(out.data()[0]), -113);
  EXPECT_EQ(out.data()[1], 0x80);
  // writeVLong(-129) => -(129) - ... encoded via ~v = 128: first byte -121, then 0x80.
  DataOutputBuffer out2(kCm);
  out2.write_vi64(-129);
  ASSERT_EQ(out2.length(), 2u);
  EXPECT_EQ(static_cast<std::int8_t>(out2.data()[0]), -121);
  EXPECT_EQ(out2.data()[1], 0x80);
}

class VIntRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(VIntRoundTrip, RoundTrips) {
  DataOutputBuffer out(kCm);
  out.write_vi64(GetParam());
  DataInputBuffer in(kCm, out.data());
  EXPECT_EQ(in.read_vi64(), GetParam());
  EXPECT_EQ(in.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VIntRoundTrip,
    ::testing::Values(std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max(), -1, 0, 1, 127, 128, -112,
                      -113, 255, 256, 65535, 65536, -65536, 1LL << 31, -(1LL << 31),
                      1LL << 47, 0x12345678ABCDLL, -0x12345678ABCDLL));

TEST(Primitives, FixedWidthRoundTrip) {
  DataOutputBuffer out(kCm);
  out.write_u8(0xAB);
  out.write_bool(true);
  out.write_u16(0xBEEF);
  out.write_u32(0xDEADBEEF);
  out.write_u64(0x0123456789ABCDEFULL);
  out.write_i32(-42);
  out.write_i64(-1234567890123LL);
  out.write_f64(3.14159);

  DataInputBuffer in(kCm, out.data());
  EXPECT_EQ(in.read_u8(), 0xAB);
  EXPECT_TRUE(in.read_bool());
  EXPECT_EQ(in.read_u16(), 0xBEEF);
  EXPECT_EQ(in.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.read_i32(), -42);
  EXPECT_EQ(in.read_i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(in.read_f64(), 3.14159);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Primitives, BigEndianOnWire) {
  DataOutputBuffer out(kCm);
  out.write_u32(0x01020304);
  ASSERT_EQ(out.length(), 4u);
  EXPECT_EQ(out.data()[0], 0x01);
  EXPECT_EQ(out.data()[3], 0x04);
}

TEST(TextAndBytes, RoundTrip) {
  DataOutputBuffer out(kCm);
  out.write_text("hello, hadoop");
  out.write_text("");
  net::Bytes blob(300);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<net::Byte>(i);
  out.write_bytes(blob);

  DataInputBuffer in(kCm, out.data());
  EXPECT_EQ(in.read_text(), "hello, hadoop");
  EXPECT_EQ(in.read_text(), "");
  EXPECT_EQ(in.read_bytes(), blob);
}

TEST(Writables, AllPrimitiveWritablesRoundTrip) {
  DataOutputBuffer out(kCm);
  IntWritable(42).write(out);
  LongWritable(-7).write(out);
  VLongWritable(300).write(out);
  BooleanWritable(true).write(out);
  Text("xyz").write(out);
  BytesWritable(net::Bytes{1, 2, 3}).write(out);
  NullWritable().write(out);

  DataInputBuffer in(kCm, out.data());
  IntWritable i;
  i.read_fields(in);
  EXPECT_EQ(i.value, 42);
  LongWritable l;
  l.read_fields(in);
  EXPECT_EQ(l.value, -7);
  VLongWritable vl;
  vl.read_fields(in);
  EXPECT_EQ(vl.value, 300);
  BooleanWritable b;
  b.read_fields(in);
  EXPECT_TRUE(b.value);
  Text t;
  t.read_fields(in);
  EXPECT_EQ(t.value, "xyz");
  BytesWritable bw;
  bw.read_fields(in);
  EXPECT_EQ(bw.value, (net::Bytes{1, 2, 3}));
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(ReadPastEnd, Throws) {
  DataOutputBuffer out(kCm);
  out.write_u16(7);
  DataInputBuffer in(kCm, out.data());
  EXPECT_EQ(in.read_u16(), 7);
  EXPECT_THROW(in.read_u32(), SerializationError);
}

TEST(CorruptLength, Throws) {
  DataOutputBuffer out(kCm);
  out.write_u32(1000000);  // bytes length far beyond buffer
  DataInputBuffer in(kCm, out.data());
  EXPECT_THROW(in.read_bytes(), SerializationError);
}

// --- Algorithm 1 ----------------------------------------------------------

TEST(Algorithm1, StartsAt32BytesAndDoubles) {
  DataOutputBuffer d(kCm);
  EXPECT_EQ(d.capacity(), 32u);
  net::Bytes payload(33, net::Byte{1});
  d.write_raw(payload);
  EXPECT_EQ(d.capacity(), 64u);
  EXPECT_EQ(d.stats().mem_adjustments, 1u);
}

TEST(Algorithm1, GrowsToExactWhenDoublingInsufficient) {
  DataOutputBuffer d(kCm);
  net::Bytes payload(1000, net::Byte{2});
  d.write_raw(payload);
  // max(32*2, 1000) = 1000.
  EXPECT_EQ(d.capacity(), 1000u);
  EXPECT_EQ(d.stats().mem_adjustments, 1u);
}

TEST(Algorithm1, ManySmallWritesCauseRepeatedAdjustments) {
  // The Writable pattern the paper highlights: many small field writes
  // force the buffer through the full doubling ladder.
  DataOutputBuffer d(kCm);
  for (int i = 0; i < 300; ++i) d.write_u32(static_cast<std::uint32_t>(i));
  // 1200 bytes through 32 -> 64 -> 128 -> 256 -> 512 -> 1024 -> 2048.
  EXPECT_EQ(d.stats().mem_adjustments, 6u);
  EXPECT_EQ(d.length(), 1200u);
  EXPECT_EQ(d.capacity(), 2048u);
}

TEST(Algorithm1, CopiedBytesExceedPayloadUnderGrowth) {
  DataOutputBuffer d(kCm);
  for (int i = 0; i < 300; ++i) d.write_u32(static_cast<std::uint32_t>(i));
  // Old-data copies on each adjustment mean total memcpy > payload.
  EXPECT_GT(d.stats().bytes_copied, d.length());
}

TEST(Algorithm1, LargeInitialBufferAvoidsAdjustments) {
  DataOutputBuffer d(kCm, kServerInitialBuffer);
  for (int i = 0; i < 300; ++i) d.write_u32(static_cast<std::uint32_t>(i));
  EXPECT_EQ(d.stats().mem_adjustments, 0u);
}

TEST(Algorithm1, ResetKeepsCapacity) {
  DataOutputBuffer d(kCm);
  net::Bytes payload(500, net::Byte{3});
  d.write_raw(payload);
  const std::size_t cap = d.capacity();
  d.reset();
  EXPECT_EQ(d.length(), 0u);
  EXPECT_EQ(d.capacity(), cap);
  d.write_raw(payload);
  EXPECT_EQ(d.stats().mem_adjustments, 1u);  // no new growth after reset
}

TEST(Algorithm1, AccruedCostGrowsWithAdjustments) {
  DataOutputBuffer small(kCm);
  DataOutputBuffer big(kCm, kServerInitialBuffer);
  sim::Dur small_cost = small.take_accrued();  // initial alloc only
  sim::Dur big_cost = big.take_accrued();
  net::Bytes payload(4096, net::Byte{1});
  for (int i = 0; i < 4096; i += 4) small.write_raw(net::ByteSpan(payload.data(), 4));
  for (int i = 0; i < 4096; i += 4) big.write_raw(net::ByteSpan(payload.data(), 4));
  small_cost = small.take_accrued();
  big_cost = big.take_accrued();
  // Same payload, but the 32-byte start pays reallocation copies.
  EXPECT_GT(small_cost, big_cost);
  EXPECT_GT(small.stats().mem_adjustments, 5u);
  EXPECT_EQ(big.stats().mem_adjustments, 0u);
}

// Property sweep: for any write pattern, capacity >= length, geometric
// adjustment count, and content integrity.
class Alg1Property : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Alg1Property, InvariantsHold) {
  const std::size_t total = GetParam();
  DataOutputBuffer d(kCm);
  net::Bytes expect;
  std::size_t written = 0;
  std::uint32_t x = 12345;
  while (written < total) {
    x = x * 1664525 + 1013904223;
    const std::size_t n = 1 + x % 97;
    net::Bytes chunk(std::min(n, total - written));
    for (auto& b : chunk) {
      x = x * 1664525 + 1013904223;
      b = static_cast<net::Byte>(x);
    }
    d.write_raw(chunk);
    expect.insert(expect.end(), chunk.begin(), chunk.end());
    written += chunk.size();
    ASSERT_GE(d.capacity(), d.length());
  }
  ASSERT_EQ(d.length(), total);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), d.data().begin()));
  // Adjustments are bounded by the doubling ladder from 32 to total.
  std::size_t ladder = 0, cap = 32;
  while (cap < total) {
    cap *= 2;
    ++ladder;
  }
  EXPECT_LE(d.stats().mem_adjustments, ladder + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Alg1Property,
                         ::testing::Values(1, 31, 32, 33, 64, 100, 1000, 4096, 65536,
                                           1u << 20));

// --- BufferedOutputStream --------------------------------------------------

TEST(BufferedStream, FlushMakesPendingAvailableOnce) {
  BufferedOutputStream out(kCm);
  out.write_u32(0xAABBCCDD);
  EXPECT_TRUE(out.take_pending().empty());  // nothing before flush
  out.write_u32(0x11223344);
  out.flush();
  net::Bytes p = out.take_pending();
  EXPECT_EQ(p.size(), 8u);
  EXPECT_TRUE(out.take_pending().empty());
}

TEST(BufferedStream, NativeCopyChargedOnFlush) {
  BufferedOutputStream out(kCm);
  (void)out.take_accrued();
  net::Bytes big(100000, net::Byte{9});
  out.write_raw(big);
  const sim::Dur before_flush = out.accrued();
  out.flush();
  // Flush adds the JVM-heap -> native copy on top of the buffering copy.
  EXPECT_GT(out.accrued(), before_flush);
  EXPECT_GE(out.take_pending().size(), big.size());
}

}  // namespace
}  // namespace rpcoib::rpc
