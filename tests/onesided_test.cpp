// One-sided RDMA READ fast path: hot read-mostly state exported into a
// versioned seqlock region, resolved client-side with a single READ.
//
// The gates here: a published entry is served without touching the
// server's handler chain; every fallback rung (seqlock conflict, stale
// generation after a growth re-export, entry miss, tombstone, staging
// lease refused) degrades to plain RPC with the pools balanced; retired
// region buffers fail closed (generation 0) instead of serving recycled
// bytes; and with the knob off the stack advertises nothing and the
// resilience report is byte-identical to a build that never heard of the
// feature. Chaos legs are seedable through RPCOIB_CHAOS_SEED /
// RPCOIB_SHARDS like the rest of the suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hbase/hbase.hpp"
#include "hdfs/dfs_client.hpp"
#include "hdfs/hdfs_cluster.hpp"
#include "net/fault.hpp"
#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpc/resilience.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/onesided.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9600};
constexpr const char* kProto = "test.OneSidedProtocol";
const rpc::MethodKey kGet{kProto, "get"};
const rpc::MethodKey kPut{kProto, "put"};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

int chaos_shards() {
  const char* env = std::getenv("RPCOIB_SHARDS");
  return env != nullptr ? static_cast<int>(std::strtoul(env, nullptr, 10)) : 1;
}

// RPCOIB_ONESIDED=0 runs the chaos leg with the one-sided plane off: the
// same kills/loss/re-publish workload rides plain RPC end to end and the
// resilience report must not mention the feature. The CI chaos matrix
// pins RPCOIB_ONESIDED=1 explicitly; default is on.
bool chaos_onesided() {
  const char* env = std::getenv("RPCOIB_ONESIDED");
  return env == nullptr || std::strtoul(env, nullptr, 10) != 0;
}

oib::OneSidedConfig onesided_on() {
  oib::OneSidedConfig o;
  o.enabled = true;
  return o;
}

/// Key-only lookup request, eligible for the one-sided plane on "get".
struct KeyParam final : rpc::Writable {
  std::string key;
  KeyParam() = default;
  explicit KeyParam(std::string k) : key(std::move(k)) {}
  void write(rpc::DataOutput& out) const override { out.write_text(key); }
  void read_fields(rpc::DataInput& in) override { key = in.read_text(); }
  std::optional<std::string> onesided_key(const std::string& protocol,
                                          const std::string& method) const override {
    if (protocol == kProto && method == "get") return key;
    return std::nullopt;
  }
};

struct KvPutParam final : rpc::Writable {
  std::string key;
  int value = 0;
  KvPutParam() = default;
  KvPutParam(std::string k, int v) : key(std::move(k)), value(v) {}
  void write(rpc::DataOutput& out) const override {
    out.write_text(key);
    out.write_vi32(value);
  }
  void read_fields(rpc::DataInput& in) override {
    key = in.read_text();
    value = in.read_vi32();
  }
};

/// A small KV server over the engine: get is the hot read path, put
/// mutates and republishes through the server's one-sided region —
/// exactly the pattern the NameNode and region servers use.
struct KvServer {
  std::unique_ptr<rpc::RpcServer> server;
  std::map<std::string, int> kv;
  std::uint64_t get_handler_calls = 0;
  // Every value ever published per key: the version-consistency ledger.
  std::map<std::string, std::set<int>> ledger;

  KvServer(RpcEngine& engine, cluster::Host& host, cluster::CostModel cm) {
    server = engine.make_server(host, kAddr);
    server->dispatcher().register_method(
        kGet.protocol, kGet.method,
        [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          KeyParam p;
          p.read_fields(in);
          ++get_handler_calls;
          rpc::IntWritable(lookup(p.key)).write(out);
          co_return;
        });
    server->dispatcher().register_method(
        kPut.protocol, kPut.method,
        [this, cm](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          KvPutParam p;
          p.read_fields(in);
          kv[p.key] = p.value;
          publish(cm, p.key);
          rpc::BooleanWritable(true).write(out);
          co_return;
        });
  }

  int lookup(const std::string& key) const {
    auto it = kv.find(key);
    return it == kv.end() ? 0 : it->second;
  }

  /// Publish the get-shaped response for `key` (what the NameNode does
  /// from its mutating handlers).
  void publish(const cluster::CostModel& cm, const std::string& key) {
    // The ledger records every committed value even with the plane off:
    // the chaos leg's version check runs in both matrix modes.
    ledger[key].insert(lookup(key));
    rpc::OneSidedPublisher* pub = server->onesided();
    if (pub == nullptr) return;
    rpc::IntWritable v(lookup(key));
    rpc::DataOutputBuffer buf(cm);
    v.write(buf);
    pub->publish(rpc::onesided_entry_key(kProto, "get", key), buf.data());
  }
  /// Tombstone: empty payload, so readers fall back to RPC.
  void tombstone(const std::string& key) {
    server->onesided()->publish(rpc::onesided_entry_key(kProto, "get", key), {});
  }
};

Co<void> one_get(rpc::RpcClient& client, const std::string& key, int& out, bool& err) {
  KeyParam p(key);
  rpc::IntWritable resp;
  try {
    co_await client.call(kAddr, kGet, p, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

Task get_task(rpc::RpcClient& client, const std::string& key, int& out, bool& err) {
  co_await one_get(client, key, out, err);
}

Co<void> one_put(rpc::RpcClient& client, const std::string& key, int value, bool& err) {
  KvPutParam p(key, value);
  rpc::BooleanWritable ok;
  try {
    co_await client.call(kAddr, kPut, p, &ok);
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

void expect_pools_balanced(rpc::RpcClient& client, rpc::RpcServer& server) {
  auto* rc = dynamic_cast<oib::RdmaRpcClient*>(&client);
  ASSERT_NE(rc, nullptr);
  rc->close_connections();
  EXPECT_EQ(rc->pool().native().stats().acquires, rc->pool().native().stats().releases);
  auto* rs = dynamic_cast<oib::RdmaRpcServer*>(&server);
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->pool().native().stats().acquires, rs->pool().native().stats().releases);
}

// --- The tentpole: published entries bypass the handler chain ----------------
TEST(OneSided, PublishedEntryServedByRdmaReadWithoutHandler) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.onesided = onesided_on();
  RpcEngine engine(tb, ec);
  KvServer kvs(engine, tb.host(1), tb.host(1).cost());
  kvs.server->start();
  kvs.kv["hot"] = 41;
  kvs.publish(tb.host(1).cost(), "hot");
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  // Ten lookups of the published key: every one resolves by RDMA READ.
  std::vector<int> outs(10, -1);
  bool err = false;
  s.spawn([](Scheduler& sc, rpc::RpcClient& c, std::vector<int>& o, bool& e) -> Task {
    for (std::size_t i = 0; i < o.size(); ++i) {
      co_await sim::delay(sc, sim::millis(1));
      co_await one_get(c, "hot", o[i], e);
    }
  }(s, *client, outs, err));
  s.run_until(sim::seconds(5));
  EXPECT_FALSE(err);
  for (int v : outs) EXPECT_EQ(v, 41);
  EXPECT_EQ(kvs.get_handler_calls, 0u) << "a one-sided hit must bypass the handler";
  EXPECT_EQ(client->stats().onesided_reads, 10u);
  EXPECT_EQ(client->stats().onesided_fallbacks, 0u);

  // An unpublished key misses the region and falls back to RPC.
  int cold = -1;
  s.spawn(get_task(*client, "cold", cold, err));
  s.run_until(sim::seconds(10));
  EXPECT_FALSE(err);
  EXPECT_EQ(cold, 0);
  EXPECT_EQ(kvs.get_handler_calls, 1u);
  EXPECT_GE(client->stats().onesided_misses, 1u);
  EXPECT_GE(client->stats().onesided_fallbacks, 1u);

  // A tombstone turns a published entry back into a miss.
  kvs.tombstone("hot");
  s.run_until(s.now() + sim::millis(1));
  int tomb = -1;
  s.spawn(get_task(*client, "hot", tomb, err));
  s.run_until(sim::seconds(15));
  EXPECT_FALSE(err);
  EXPECT_EQ(tomb, 41);  // the RPC handler still sees the value
  EXPECT_EQ(kvs.get_handler_calls, 2u);

  const std::string report = rpc::resilience_report(client->stats(), nullptr,
                                                    &kvs.server->stats());
  EXPECT_NE(report.find("onesided reads"), std::string::npos);
  EXPECT_NE(report.find("server onesided published"), std::string::npos);
  kvs.server->stop();
  expect_pools_balanced(*client, *kvs.server);
  s.drain_tasks();
}

// --- Default-off discipline --------------------------------------------------
TEST(OneSided, DisabledAdvertisesNothingAndKeepsReportsClean) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  RpcEngine engine(tb, ec);
  KvServer kvs(engine, tb.host(1), tb.host(1).cost());
  kvs.server->start();
  // No region, no advertisement, and publish hooks are dead ends.
  EXPECT_EQ(kvs.server->onesided(), nullptr);
  EXPECT_EQ(engine.verbs().onesided_service(kAddr), nullptr);
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool err = false;
  int out = -1;
  s.spawn([](rpc::RpcClient& c, int& o, bool& e) -> Task {
    co_await one_put(c, "k", 7, e);
    co_await one_get(c, "k", o, e);
  }(*client, out, err));
  s.run_until(sim::seconds(5));
  EXPECT_FALSE(err);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(kvs.get_handler_calls, 1u);
  EXPECT_EQ(client->stats().onesided_reads, 0u);
  EXPECT_EQ(client->stats().onesided_fallbacks, 0u);
  const std::string report = rpc::resilience_report(client->stats(), nullptr,
                                                    &kvs.server->stats());
  EXPECT_EQ(report.find("onesided"), std::string::npos)
      << "a disabled build must not grow report rows";
  kvs.server->stop();
  s.drain_tasks();
}

// --- Satellite 2: seqlock conflicts fall back, bounded, pools balanced -------
//
// A write-hot slot keeps its seqlock window open most of the time; readers
// must burn at most max_version_retries on it, degrade to RPC, and return
// the staging lease every single time — the pool-balance assert at the end
// is the regression gate for the leak this satellite fixes.
TEST(OneSided, ConflictFallbackIsBoundedAndReleasesStaging) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.onesided = onesided_on();
  ec.onesided.write_window_us = 400;  // windows dominate the timeline
  RpcEngine engine(tb, ec);
  KvServer kvs(engine, tb.host(1), tb.host(1).cost());
  kvs.server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  // Server-side writer: republish the hot key every 300 us, so the 400 us
  // window is effectively always open when a READ lands.
  s.spawn([](Scheduler& sc, KvServer& k, const cluster::CostModel& cm) -> Task {
    for (int v = 1; v <= 400; ++v) {
      k.kv["hot"] = v;
      k.publish(cm, "hot");
      co_await sim::delay(sc, sim::micros(300));
    }
  }(s, kvs, tb.host(1).cost()));

  int last = -1;
  bool err = false;
  std::vector<int> seen;
  s.spawn([](Scheduler& sc, rpc::RpcClient& c, std::vector<int>& observed, int& out,
             bool& e) -> Task {
    for (int i = 0; i < 60; ++i) {
      co_await sim::delay(sc, sim::micros(700));
      co_await one_get(c, "hot", out, e);
      observed.push_back(out);
    }
  }(s, *client, seen, last, err));
  s.run_until(sim::seconds(30));

  EXPECT_FALSE(err);
  // The reader observed monotone, published values regardless of which
  // plane served each lookup (READ sees the last closed window; a
  // conflicted or missed lookup sees the live map through RPC).
  int prev = -1;
  for (int v : seen) {
    EXPECT_GE(v, prev);
    prev = v;
    EXPECT_TRUE(v == 0 || kvs.ledger["hot"].contains(v)) << v;
  }
  EXPECT_GT(client->stats().onesided_conflict_fallbacks, 0u)
      << "the write-hot window was never observed; the gate proved nothing";
  EXPECT_EQ(client->stats().onesided_stale_refreshes, 0u);
  kvs.server->stop();
  expect_pools_balanced(*client, *kvs.server);
  s.drain_tasks();
}

// --- Satellite 3: growth re-export fails closed and refreshes ----------------
//
// Outgrowing the slot capacity retires the whole buffer under a new rkey
// and generation. A client still holding the old advertisement must see
// its READ fail closed on the poisoned generation word (never recycled
// payload bytes), refresh the advertisement once, and succeed against the
// new region.
TEST(OneSided, GrowthReexportInvalidatesCachedAdvertisements) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.onesided = onesided_on();
  ec.onesided.slot_payload = 64;  // small slots: easy to outgrow
  RpcEngine engine(tb, ec);
  KvServer kvs(engine, tb.host(1), tb.host(1).cost());
  kvs.server->start();
  kvs.kv["hot"] = 5;
  kvs.publish(tb.host(1).cost(), "hot");
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  // Warm read: caches the generation-1 advertisement.
  int warm = -1;
  bool err = false;
  s.spawn(get_task(*client, "hot", warm, err));
  s.run_until(sim::seconds(5));
  EXPECT_EQ(warm, 5);
  EXPECT_EQ(client->stats().onesided_reads, 1u);

  // Publish a payload bigger than the 64-byte slot: the region re-exports.
  {
    rpc::OneSidedPublisher* pub = kvs.server->onesided();
    net::Bytes big(256, net::Byte{0x11});
    pub->publish(rpc::onesided_entry_key(kProto, "get", "big"),
                 net::ByteSpan(big.data(), big.size()));
  }
  EXPECT_EQ(kvs.server->stats().onesided_reexports, 1u);

  // The next read runs against the stale rkey, fails closed on the
  // poisoned generation, refreshes, and lands in the new region.
  int after = -1;
  s.spawn(get_task(*client, "hot", after, err));
  s.run_until(sim::seconds(10));
  EXPECT_FALSE(err);
  EXPECT_EQ(after, 5);
  EXPECT_EQ(client->stats().onesided_stale_refreshes, 1u);
  EXPECT_EQ(client->stats().onesided_reads, 2u);

  kvs.server->stop();
  expect_pools_balanced(*client, *kvs.server);
  s.drain_tasks();
}

// --- Satellite 3/4: seeded chaos with kills, loss, and live re-exports -------
//
// Readers hammer hot keys over the one-sided plane while writers mutate
// them (seqlock windows + occasional growth re-exports) and the fault
// plan kills the RC connections under the READs and drops datagrams on
// the UD eager path. Execution-ledger gate: every observed value was
// genuinely published for that key, values are monotone per reader, the
// pools balance on both ends, and the merged report is byte-identical
// across runs of the same seed.
TEST(Chaos, OneSidedReadsSurviveKillsLossAndReexports) {
  auto run_once = [] {
    static constexpr cluster::HostId kClientHosts[] = {0, 2, 3};
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->set_datagram_loss(0.05);
    for (cluster::HostId h : kClientHosts) {
      plan->add_connection_kill(h, 1, sim::seconds(2));
      plan->add_connection_kill(h, 1, sim::seconds(4));
    }
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::millis(500);
    retry.max_retries = 10;
    retry.backoff_base = sim::millis(100);
    retry.non_idempotent.insert(kPut.to_string());
    retry.retry_non_idempotent_on_timeout = true;
    EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_handlers = 4,
                    .server_shards = chaos_shards(), .retry = retry};
    ec.overload.retry_cache_entries = 256;
    ec.session.enabled = true;
    ec.ud.enabled = true;
    ec.onesided = onesided_on();
    ec.onesided.enabled = chaos_onesided();
    ec.onesided.slot_payload = 64;
    ec.onesided.write_window_us = 50;
    RpcEngine engine(tb, ec);
    KvServer kvs(engine, tb.host(1), tb.host(1).cost());
    kvs.server->start();

    // Writer: mutate the hot keys through RPC puts; every put republishes.
    // Key "grow" outgrows its slot mid-run via a direct publish, forcing
    // generation bumps while READs are in flight.
    bool put_err = false;
    std::unique_ptr<rpc::RpcClient> writer = engine.make_client(tb.host(4));
    s.spawn([](Scheduler& sc, rpc::RpcClient& c, KvServer& k, bool& e) -> Task {
      for (int v = 1; v <= 40; ++v) {
        co_await sim::delay(sc, sim::millis(150));
        co_await one_put(c, "hot", v, e);
        if (rpc::OneSidedPublisher* pub = k.server->onesided();
            pub != nullptr && v % 10 == 0) {
          net::Bytes big(static_cast<std::size_t>(64) << (v / 10), net::Byte{0x22});
          pub->publish(rpc::onesided_entry_key(kProto, "get", "grow"),
                       net::ByteSpan(big.data(), big.size()));
        }
      }
    }(s, *writer, kvs, put_err));

    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    std::vector<std::vector<int>> observed(3);
    int errors = 0;
    for (int i = 0; i < 3; ++i) {
      clients.push_back(engine.make_client(tb.host(kClientHosts[i])));
      s.spawn([](Scheduler& sc, rpc::RpcClient& c, std::vector<int>& seen,
                 int& errs) -> Task {
        for (int j = 0; j < 80; ++j) {
          co_await sim::delay(sc, sim::millis(80));
          int out = -1;
          bool err = false;
          co_await one_get(c, "hot", out, err);
          if (err) {
            ++errs;
          } else {
            seen.push_back(out);
          }
        }
      }(s, *clients.back(), observed[i], errors));
    }
    s.run_until(sim::seconds(120));

    EXPECT_FALSE(put_err);
    EXPECT_EQ(errors, 0);
    // Plane off, the gets ride the connectionless UD eager path and the
    // RC kill schedule has nothing to bite; the loss plan still runs.
    if (chaos_onesided()) EXPECT_GT(plan->counters().kills, 0u);
    rpc::RpcStats merged;
    for (auto& c : clients) merged.merge_resilience(c->stats());
    if (chaos_onesided()) {
      EXPECT_GT(merged.onesided_reads, 0u);
      EXPECT_GT(merged.onesided_fallbacks, 0u);
    } else {
      EXPECT_EQ(merged.onesided_reads, 0u);
      EXPECT_EQ(merged.onesided_fallbacks, 0u);
    }
    // The ledger: every observed value was published for "hot" (0 = read
    // before the first put landed), monotone per reader.
    for (const auto& seen : observed) {
      EXPECT_EQ(seen.size(), 80u);
      int prev = -1;
      for (int v : seen) {
        EXPECT_TRUE(v == 0 || kvs.ledger["hot"].contains(v)) << v;
        EXPECT_GE(v, prev);
        prev = v;
      }
    }
    std::string report =
        rpc::resilience_report(merged, &plan->counters(), &kvs.server->stats());
    if (chaos_onesided()) {
      EXPECT_GE(kvs.server->stats().onesided_reexports, 1u)
          << "no re-export happened under load; the generation gate proved nothing";
      EXPECT_NE(report.find("onesided reads"), std::string::npos);
      EXPECT_NE(report.find("server onesided reexports"), std::string::npos);
    } else {
      // Plane off: the report is byte-for-byte what a build without the
      // feature prints — no onesided lines at all.
      EXPECT_EQ(report.find("onesided"), std::string::npos);
    }
    report += "\nfinished at " + std::to_string(s.now());
    kvs.server->stop();
    for (auto& c : clients) {
      auto* rc = dynamic_cast<oib::RdmaRpcClient*>(c.get());
      EXPECT_NE(rc, nullptr);
      if (rc != nullptr) {
        rc->close_connections();
        EXPECT_EQ(rc->pool().native().stats().acquires,
                  rc->pool().native().stats().releases);
      }
    }
    auto* rs = dynamic_cast<oib::RdmaRpcServer*>(kvs.server.get());
    EXPECT_NE(rs, nullptr);
    if (rs != nullptr) {
      EXPECT_EQ(rs->pool().native().stats().acquires,
                rs->pool().native().stats().releases);
    }
    s.drain_tasks();
    return report;
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
}

// --- HDFS integration: hot metadata lookups ride the one-sided plane ---------
TEST(OneSided, HdfsHotMetadataLookupsBypassTheNameNode) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(6));
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  ec.onesided = onesided_on();
  RpcEngine engine(tb, ec);
  hdfs::HdfsConfig hcfg;
  hcfg.block_size = 4 << 20;
  hdfs::HdfsCluster cluster(engine, 0, {1, 2, 3}, hdfs::DataMode::kSocketIPoIB, hcfg);
  cluster.start();
  std::unique_ptr<hdfs::DFSClient> dfs = cluster.make_client(tb.host(5), "c0");

  bool done = false;
  std::uint64_t len = 0, info_len = 0, loc_len = 0, blocks = 0;
  s.spawn([](Scheduler& sc, hdfs::DFSClient& d, std::uint64_t& l, std::uint64_t& il,
             std::uint64_t& ll, std::uint64_t& nb, bool& ok) -> Task {
    co_await sim::delay(sc, sim::millis(100));  // daemon registration
    co_await d.write_file("/data/hot.bin", 6 << 20);
    // Hot lookups: getFileInfo and the whole-file getBlockLocations both
    // resolve against the NameNode's exported region after the first miss.
    for (int i = 0; i < 20; ++i) {
      hdfs::FileStatusResult st = co_await d.get_file_info("/data/hot.bin");
      il = st.status.length;
      hdfs::LocatedBlocksResult lb =
          co_await d.get_block_locations("/data/hot.bin", 0, ~0ULL);
      ll = lb.file_length;
      nb = lb.blocks.size();
    }
    l = co_await d.read_file("/data/hot.bin");
    ok = true;
  }(s, *dfs, len, info_len, loc_len, blocks, done));
  s.run_until(sim::seconds(600));

  ASSERT_TRUE(done);
  EXPECT_EQ(len, 6u << 20);
  EXPECT_EQ(info_len, 6u << 20);
  EXPECT_EQ(loc_len, 6u << 20);
  EXPECT_EQ(blocks, 2u);
  // The write path's mutators (create/addBlock/blockReceived/complete)
  // published the entries, so the lookup loop rides READs.
  EXPECT_GT(dfs->rpc().stats().onesided_reads, 30u);
  EXPECT_GT(cluster.namenode().server().stats().onesided_published, 0u);
  cluster.stop();
  s.drain_tasks();
}

// --- HBase integration: hot row gets bypass the region server ----------------
TEST(OneSided, HBaseHotRowGetsBypassTheRegionServer) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(6));
  EngineConfig hadoop_ec{.mode = RpcMode::kSocketIPoIB};
  RpcEngine hadoop_engine(tb, hadoop_ec);
  EngineConfig hbase_ec{.mode = RpcMode::kRpcoIB, .server_shards = chaos_shards()};
  hbase_ec.onesided = onesided_on();
  RpcEngine hbase_engine(tb, hbase_ec);
  hdfs::HdfsConfig hcfg;
  hcfg.block_size = 4 << 20;
  hdfs::HdfsCluster hdfs_cluster(hadoop_engine, 0, {1, 2, 3, 4},
                                 hdfs::DataMode::kSocketIPoIB, hcfg);
  hbase::HBaseConfig bcfg;
  bcfg.memstore_flush_bytes = 256 * 1024;
  hbase::HBaseCluster hbase_cluster(hbase_engine, hdfs_cluster, {1, 2, 3, 4}, bcfg);
  hdfs_cluster.start();
  hbase_cluster.start();

  bool ok = false;
  s.spawn([](hbase::HBaseCluster& hb, Testbed& t, bool& done) -> Task {
    std::unique_ptr<hbase::HTable> table = hb.make_table(t.host(5));
    net::Bytes val(1024, net::Byte{7});
    co_await table->put("user100", val);
    for (int i = 0; i < 30; ++i) {
      hbase::GetResult r = co_await table->get("user100");
      if (!r.found || r.value.size() != 1024) co_return;
    }
    done = true;
  }(hbase_cluster, tb, ok));
  s.run_until(sim::seconds(300));

  ASSERT_TRUE(ok);
  // The put published the row; the 30 gets ride READs, so the region
  // server's get counter barely moves.
  std::uint64_t gets = 0;
  for (std::size_t i = 0; i < hbase_cluster.num_regions(); ++i) {
    gets += hbase_cluster.region(i).gets();
  }
  EXPECT_LT(gets, 5u) << "hot gets kept hitting the region server handler";
  hbase_cluster.stop();
  hdfs_cluster.stop();
  s.drain_tasks();
}

}  // namespace
}  // namespace rpcoib
